(* A tour of the bundled solver substrate as a standalone product:
   solving, models, get-value, incremental push/pop, unsat cores, versioned
   engines, and the coverage instrumentation.

   Run with:  dune exec examples/solver_tour.exe *)

let parse src = Result.get_ok (Smtlib.Parser.parse_script src)

let () =
  let cove = Solver.Engine.pure O4a_coverage.Coverage.Cove in

  (* --- basic solving with a model --- *)
  let script =
    parse
      {|(declare-fun x () Int)
(declare-fun s () (Set Int))
(assert (set.member x s))
(assert (= (set.card s) 2))
(assert (>= x 0))
(check-sat)|}
  in
  print_endline "-- solve with model --";
  (match Solver.Runner.run cove script with
  | Solver.Runner.R_sat model ->
    print_endline "sat";
    print_endline (Solver.Model.to_string script model);
    (* get-value over arbitrary terms *)
    let terms =
      List.map
        (fun s -> Result.get_ok (Smtlib.Parser.parse_term s))
        [ "(set.card s)"; "(+ x 1)"; "(set.member 0 s)" ]
    in
    List.iter
      (fun (t, v) -> Printf.printf "  value of %s = %s\n" (Smtlib.Printer.term t) v)
      (Solver.Model.eval_terms script model terms)
  | r -> print_endline (Solver.Runner.result_to_string r));

  (* --- incremental solving --- *)
  print_endline "\n-- incremental push/pop --";
  let inc =
    parse
      {|(declare-fun n () Int)
(assert (> n 0))
(check-sat)
(push 1)
(assert (< n 0))
(check-sat)
(pop 1)
(push 1)
(assert (= n 2))
(check-sat)
(pop 1)|}
  in
  List.iter
    (fun (step : Solver.Engine.incremental_step) ->
      Printf.printf "  check-sat #%d: %s\n" step.Solver.Engine.step_index
        (match step.Solver.Engine.step_outcome with
        | Solver.Engine.Sat _ -> "sat"
        | Solver.Engine.Unsat -> "unsat"
        | Solver.Engine.Resource_limit -> "unknown (resource limit)"
        | Solver.Engine.Unknown r -> "unknown (" ^ r ^ ")"
        | Solver.Engine.Error e -> "error (" ^ e ^ ")"))
    (Solver.Engine.solve_incremental cove inc);

  (* --- unsat cores --- *)
  print_endline "\n-- unsat core --";
  let unsat =
    parse
      {|(declare-fun a () Int)
(declare-fun b () Int)
(assert (= a 1))
(assert (< a b))
(assert (< b a))
(assert (>= b (- 2)))
(check-sat)|}
  in
  (match Solver.Engine.unsat_core cove unsat with
  | Some core ->
    Printf.printf "  core of %d assertions:\n" (List.length core);
    List.iter (fun t -> Printf.printf "    %s\n" (Smtlib.Printer.term t)) core
  | None -> print_endline "  (not unsat)");

  (* --- versioned engines and a historical bug --- *)
  print_endline "\n-- versioned engines --";
  (* probe variants until one reaches the historical seq defect at 1.1.0
     (the deep trigger condition depends on the formula's operator mix) *)
  let extras =
    [ ""; "(declare-fun k () Int)(assert (= (seq.len s) k))\n";
      "(assert (seq.contains s t))\n"; "(assert (not (seq.suffixof t s)))\n";
      "(assert (= (seq.nth s 0) 1))\n"; "(assert (= (seq.++ s t) t))\n";
      "(assert (distinct (seq.unit 0) t))\n";
      "(declare-fun k () Int)(assert (= (seq.indexof s t 0) k))\n";
      "(declare-fun k () Int)(assert (= (abs k) 1))\n";
      "(declare-fun k () Int)(assert (= (mod k 2) 0))\n" ]
  in
  let variants =
    List.concat_map
      (fun a -> List.map (fun b -> a ^ b) extras)
      extras
    |> List.map (fun extra ->
           Printf.sprintf
             {|(declare-fun s () (Seq Int))
(declare-fun t () (Seq Int))
%s(assert (seq.prefixof t (seq.rev s)))
(assert (distinct s t))
(check-sat)|}
             extra)
  in
  let old_engine = Solver.Engine.make O4a_coverage.Coverage.Cove ~commit:58 in
  let bug =
    match
      List.find_opt
        (fun src ->
          match Solver.Runner.run_source old_engine src with
          | Solver.Runner.R_crash _ -> true
          | _ -> false)
        variants
    with
    | Some src -> src
    | None -> List.hd variants
  in
  List.iter
    (fun commit ->
      let engine = Solver.Engine.make O4a_coverage.Coverage.Cove ~commit in
      Printf.printf "  %s: %s\n"
        (Solver.Engine.name engine)
        (Solver.Runner.result_to_string (Solver.Runner.run_source engine bug)))
    [ 58; 74; 100 ];

  (* --- coverage instrumentation --- *)
  print_endline "\n-- coverage accounting --";
  O4a_coverage.Coverage.reset ();
  ignore (Solver.Runner.run cove script);
  let snapshot = O4a_coverage.Coverage.snapshot O4a_coverage.Coverage.Cove in
  Printf.printf "  one query exercised %d/%d lines (%.1f%%), %d/%d functions (%.1f%%)\n"
    snapshot.O4a_coverage.Coverage.lines_hit snapshot.O4a_coverage.Coverage.lines_total
    (O4a_coverage.Coverage.line_pct snapshot)
    snapshot.O4a_coverage.Coverage.funcs_hit snapshot.O4a_coverage.Coverage.funcs_total
    (O4a_coverage.Coverage.func_pct snapshot)
