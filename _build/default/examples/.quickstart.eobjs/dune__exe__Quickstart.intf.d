examples/quickstart.mli:
