examples/generator_construction.ml: Gensynth List Llm_sim O4a_util Printf Solver Theories
