examples/extended_theories.ml: List Once4all Option Printf Seeds Smtlib Solver Theories
