examples/extended_theories.mli:
