examples/differential_campaign.mli:
