examples/solver_tour.ml: List O4a_coverage Printf Result Smtlib Solver
