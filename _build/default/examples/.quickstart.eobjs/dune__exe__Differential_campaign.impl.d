examples/differential_campaign.ml: List O4a_coverage Once4all Option Printf Reduce_kit Seeds Smtlib Solver
