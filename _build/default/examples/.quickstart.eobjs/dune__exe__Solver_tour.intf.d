examples/solver_tour.mli:
