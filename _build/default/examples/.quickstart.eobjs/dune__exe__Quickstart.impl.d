examples/quickstart.ml: Gensynth List Once4all Printf Reduce_kit Seeds Smtlib Solver String Theories
