examples/generator_construction.mli:
