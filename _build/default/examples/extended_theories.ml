(* Targeting newly added and solver-specific theories (paper §4.5).

   This example reproduces the three case studies of Figure 10 against our
   solver substrate, then runs a focused campaign that only uses the
   extension-theory generators (Sets/Relations, Bags, FiniteFields, Seq) —
   the bug class the paper says prior fuzzers are fundamentally unable to
   reach.

   Run with:  dune exec examples/extended_theories.exe *)

let show name source =
  let cove = Solver.Engine.cove () in
  let zeal = Solver.Engine.zeal () in
  Printf.printf "%s\n%s\n" name source;
  Printf.printf "  cove: %s\n" (Solver.Runner.result_to_string (Solver.Runner.run_source cove source));
  Printf.printf "  zeal: %s\n\n" (Solver.Runner.result_to_string (Solver.Runner.run_source zeal source))

let () =
  (* Figure 10a: finite-field bitsum (invalid models in cvc5) *)
  show "-- Figure 10a analog: ff.bitsum coefficient bug --"
    {|(declare-fun v () (_ FiniteField 3))
(assert (= (ff.bitsum v (ff.mul v v)) (as ff2 (_ FiniteField 3))))
(check-sat)|};

  (* Figure 10b: nullary relational join (type-check escape, then crash) *)
  show "-- Figure 10b analog: rel.join over nullary relations --"
    {|(declare-fun r () (Set UnitTuple))
(declare-fun q () (Set UnitTuple))
(assert (set.subset (rel.join r q) (rel.join q r)))
(check-sat)|};

  (* Figure 1: seq.rev / seq.nth under a quantifier *)
  show "-- Figure 1 analog: sequence model evaluation --"
    {|(declare-fun s () (Seq Int))
(assert (exists ((f Int))
  (distinct (seq.len (seq.rev s))
            (seq.nth (as seq.empty (Seq Int)) (div 0 0)))))
(check-sat)|};

  (* focused extension-theory campaign *)
  let extension_theories =
    List.filter
      (fun (t : Theories.Theory.info) -> not t.Theories.Theory.standard)
      Theories.Theory.all
  in
  let campaign =
    Once4all.Campaign.prepare ~seed:11 ~theories:extension_theories ()
  in
  let seeds =
    List.filter
      (fun s ->
        List.exists
          (fun key -> List.mem key (Smtlib.Script.theories_used s))
          [ "seq"; "sets"; "bags"; "finite_fields" ])
      (Seeds.Corpus.all ())
  in
  let report = Once4all.Campaign.fuzz ~seed:13 campaign ~seeds ~budget:600 in
  Printf.printf "-- focused extension campaign --\n";
  Printf.printf "%d tests, %d issues:\n"
    report.Once4all.Campaign.stats.Once4all.Fuzz.tests
    (List.length report.Once4all.Campaign.clusters);
  List.iter
    (fun (c : Once4all.Dedup.cluster) ->
      let spec = Option.bind c.Once4all.Dedup.bug_id Solver.Bug_db.find in
      Printf.printf "  [%s/%s] %s\n"
        (Solver.Bug_db.kind_to_string c.Once4all.Dedup.kind)
        c.Once4all.Dedup.theory
        (match spec with
        | Some s -> s.Solver.Bug_db.summary
        | None -> c.Once4all.Dedup.key))
    report.Once4all.Campaign.clusters
