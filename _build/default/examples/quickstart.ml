(* Quickstart: the whole Once4All pipeline in ~40 lines.

   1. Build the generator library (one-time LLM investment, Algorithm 1).
   2. Fuzz the two bundled solvers with skeleton-guided mutation (Algorithm 2).
   3. Print the de-duplicated issues.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* one-time generator construction against the trunk solvers *)
  let campaign = Once4all.Campaign.prepare ~seed:42 () in
  Printf.printf "generators ready: %s\n%!"
    (String.concat ", "
       (List.map
          (fun (g : Gensynth.Generator.t) -> g.Gensynth.Generator.theory.Theories.Theory.key)
          campaign.Once4all.Campaign.generators));

  (* seed corpus, with the paper's leakage filter *)
  let seeds =
    Seeds.Corpus.filtered ~zeal:campaign.Once4all.Campaign.zeal
      ~cove:campaign.Once4all.Campaign.cove ()
  in
  Printf.printf "seeds: %d formulas\n%!" (List.length seeds);

  (* a short fuzzing campaign *)
  let report = Once4all.Campaign.fuzz ~seed:7 campaign ~seeds ~budget:800 in
  let stats = report.Once4all.Campaign.stats in
  Printf.printf "ran %d tests; %d bug-triggering formulas, %d distinct issues\n\n"
    stats.Once4all.Fuzz.tests
    (List.length stats.Once4all.Fuzz.findings)
    (List.length report.Once4all.Campaign.clusters);

  List.iter
    (fun (c : Once4all.Dedup.cluster) ->
      Printf.printf "- [%s] %s (seen %d times)\n"
        (Solver.Bug_db.kind_to_string c.Once4all.Dedup.kind)
        c.Once4all.Dedup.key c.Once4all.Dedup.count)
    report.Once4all.Campaign.clusters;

  (* minimize one representative, like the paper's reporting workflow *)
  match report.Once4all.Campaign.clusters with
  | [] -> print_endline "(no bugs this run — try a larger budget)"
  | first :: _ -> (
    match Smtlib.Parser.parse_script first.Once4all.Dedup.representative.Once4all.Dedup.source with
    | Error _ -> ()
    | Ok script ->
      let zeal = campaign.Once4all.Campaign.zeal
      and cove = campaign.Once4all.Campaign.cove in
      let key_of s =
        match Once4all.Oracle.test ~zeal ~cove ~source:(Smtlib.Printer.script s) () with
        | { Once4all.Oracle.finding = Some f; _ } -> Some f.Once4all.Oracle.signature
        | _ -> None
      in
      let target = key_of script in
      let reduced, rstats =
        Reduce_kit.Ddsmt.reduce ~still_triggers:(fun c -> key_of c = target) script
      in
      Printf.printf "\nreduced the first issue from %d to %d nodes:\n%s\n"
        rstats.Reduce_kit.Ddsmt.initial_size rstats.Reduce_kit.Ddsmt.final_size
        (Smtlib.Printer.script reduced))
