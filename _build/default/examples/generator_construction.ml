(* A walkthrough of Algorithm 1 for a single hard theory (FiniteFields),
   showing the prompts, the validity trajectory of the self-correction loop,
   and the final generator's output.

   Run with:  dune exec examples/generator_construction.exe *)

let () =
  let theory = Theories.Theory.find Theories.Theory.Finite_fields in
  let client = Llm_sim.Client.create ~seed:9 Llm_sim.Profile.gpt4 in
  let solvers = [ Solver.Engine.zeal (); Solver.Engine.cove () ] in

  print_endline "== documentation fed to the summarization prompt ==";
  print_endline (Theories.Theory.doc theory.Theories.Theory.id);

  print_endline "== ground-truth grammar (what a perfect summary derives) ==";
  print_endline (Theories.Theory.ground_truth_cfg theory.Theories.Theory.id);

  (* phase 1 + 2: noisy construction *)
  let initial = Gensynth.Synthesis.initial_generator ~client theory in
  Printf.printf "\n== initial synthesized generator ==\n%s\n\n"
    (Gensynth.Generator.describe initial);

  (* phase 3: the self-correction loop *)
  let final, report = Gensynth.Synthesis.self_correct ~client ~solvers initial in
  print_endline "== validity trajectory (valid samples / 20 per iteration) ==";
  List.iter
    (fun (iter, valid) -> Printf.printf "  iteration %d: %d/20\n" iter valid)
    report.Gensynth.Synthesis.history;
  Printf.printf "converged after %d refinement rounds (%d LLM calls)\n\n"
    report.Gensynth.Synthesis.iterations report.Gensynth.Synthesis.llm_calls;

  print_endline "== final generator ==";
  print_endline (Gensynth.Generator.describe final);

  print_endline "\n== five samples from the corrected generator ==";
  let rng = O4a_util.Rng.create 2026 in
  for _ = 1 to 5 do
    match Gensynth.Generator.generate final ~rng with
    | e ->
      List.iter print_endline e.Gensynth.Generator.decls;
      Printf.printf "(assert %s)\n\n" e.Gensynth.Generator.term
    | exception Failure m -> Printf.printf "(generation failed: %s)\n" m
  done;

  print_endline "== LLM transcript ==";
  List.iter
    (fun (kind, first_line) -> Printf.printf "  [%s] %s\n" kind first_line)
    (Llm_sim.Client.transcript client)
