(* A full differential-testing campaign with triage — the workflow of §4.2:

   construct -> fuzz -> de-duplicate -> attribute -> reduce -> report.

   Also demonstrates cross-version differential testing: formulas using
   solver-specific features are compared across versions of the same solver,
   and the correcting-commit method locates when a historical bug was fixed.

   Run with:  dune exec examples/differential_campaign.exe *)

let () =
  let campaign = Once4all.Campaign.prepare ~seed:23 () in
  let zeal = campaign.Once4all.Campaign.zeal in
  let cove = campaign.Once4all.Campaign.cove in
  let seeds = Seeds.Corpus.filtered ~zeal ~cove () in
  let report = Once4all.Campaign.fuzz ~seed:29 campaign ~seeds ~budget:1500 in

  Printf.printf "campaign: %d tests, %d findings, %d issues after de-duplication\n\n"
    report.Once4all.Campaign.stats.Once4all.Fuzz.tests
    (List.length report.Once4all.Campaign.stats.Once4all.Fuzz.findings)
    (List.length report.Once4all.Campaign.clusters);

  (* triage report: one line per issue, with ground-truth attribution *)
  print_endline "triage:";
  List.iter
    (fun (c : Once4all.Dedup.cluster) ->
      let status =
        match Option.bind c.Once4all.Dedup.bug_id Solver.Bug_db.find with
        | Some spec -> Solver.Bug_db.status_to_string spec.Solver.Bug_db.status
        | None -> "unattributed"
      in
      Printf.printf "  %-13s %-14s x%-4d %s\n"
        (Solver.Bug_db.kind_to_string c.Once4all.Dedup.kind)
        c.Once4all.Dedup.theory c.Once4all.Dedup.count status)
    report.Once4all.Campaign.clusters;

  (* pick a crash and reduce the reproducer before "reporting" it *)
  (match
     List.find_opt
       (fun (c : Once4all.Dedup.cluster) -> c.Once4all.Dedup.kind = Solver.Bug_db.Crash)
       report.Once4all.Campaign.clusters
   with
  | None -> ()
  | Some crash -> (
    match Smtlib.Parser.parse_script crash.Once4all.Dedup.representative.Once4all.Dedup.source with
    | Error _ -> ()
    | Ok script ->
      let key_of s =
        match Once4all.Oracle.test ~zeal ~cove ~source:(Smtlib.Printer.script s) () with
        | { Once4all.Oracle.finding = Some f; _ } -> Some f.Once4all.Oracle.signature
        | _ -> None
      in
      let reduced, stats =
        Reduce_kit.Ddsmt.reduce
          ~still_triggers:(fun c -> key_of c = Some crash.Once4all.Dedup.key
                                    || key_of c = key_of script)
          script
      in
      Printf.printf "\nminimal reproducer (%d -> %d nodes) for\n  %s:\n%s\n"
        stats.Reduce_kit.Ddsmt.initial_size stats.final_size crash.Once4all.Dedup.key
        (Smtlib.Printer.script reduced)));

  (* historical-bug localization via correcting commits *)
  print_endline "\ncorrecting-commit demo (historical seq bug in Cove):";
  let formula =
    {|(declare-fun s () (Seq Int))
(declare-fun t () (Seq Int))
(assert (seq.prefixof t (seq.rev s)))
(assert (distinct s t))
(check-sat)|}
  in
  (match Smtlib.Parser.parse_script formula with
  | Error _ -> ()
  | Ok script ->
    let crashes_at commit =
      let engine = Solver.Engine.make O4a_coverage.Coverage.Cove ~commit in
      match Solver.Runner.run engine script with
      | Solver.Runner.R_crash _ -> true
      | _ -> false
    in
    (match
       Solver.Version.bisect_fix ~known:60 ~triggers:crashes_at
         Solver.Version.cove_history
     with
    | Some commit -> Printf.printf "  fixed at commit %d (binary search)\n" commit
    | None -> print_endline "  formula does not isolate a fixed bug on this seed"))
