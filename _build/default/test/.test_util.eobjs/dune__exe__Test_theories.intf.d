test/test_theories.mli:
