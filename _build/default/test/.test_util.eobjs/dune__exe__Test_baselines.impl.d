test/test_baselines.ml: Alcotest Baselines Lazy List Llm_sim O4a_util Once4all Option Parser Printer Printf Result Script Seeds Smtlib Solver Sort String Term Theories
