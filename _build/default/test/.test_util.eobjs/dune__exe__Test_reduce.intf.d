test/test_reduce.mli:
