test/test_smtlib.ml: Alcotest Command Fun Lexer List O4a_util Parser Printer QCheck QCheck_alcotest Result Script Smtlib Sort Term
