test/test_once4all.mli:
