test/test_bug_witnesses.mli:
