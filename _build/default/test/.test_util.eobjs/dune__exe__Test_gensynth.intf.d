test/test_gensynth.mli:
