test/test_theories.ml: Alcotest Grammar_kit List O4a_util Parser Printf Result Signature Smtlib Sort String Term Theories Theory Typecheck
