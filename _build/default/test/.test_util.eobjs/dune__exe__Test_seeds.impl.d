test/test_seeds.ml: Alcotest List O4a_coverage O4a_util Once4all Printer Printf Script Seeds Smtlib Solver Term Theories
