test/test_grammar.ml: Alcotest Grammar_kit List O4a_util QCheck QCheck_alcotest Result String Theories
