test/test_solver.ml: Alcotest Command List O4a_coverage O4a_util Parser Printer Printf QCheck QCheck_alcotest Result Script Seeds Smtlib Solver Sort String
