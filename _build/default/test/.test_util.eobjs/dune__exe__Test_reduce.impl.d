test/test_reduce.ml: Alcotest List Once4all Parser Printer Reduce_kit Result Script Smtlib Solver Term Theories
