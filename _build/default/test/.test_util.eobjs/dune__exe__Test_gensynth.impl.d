test/test_gensynth.ml: Alcotest Gensynth Grammar_kit Hashtbl List Llm_sim O4a_util Option Printf Result Smtlib Solver String Theories
