test/test_llm.ml: Alcotest List Llm_sim O4a_util Result Smtlib String Theories
