test/test_smtlib.mli:
