test/test_once4all.ml: Alcotest Gensynth Lazy List O4a_coverage O4a_util Once4all Parser Printf Result Script Seeds Smtlib Solver Sort String Term Theories
