test/test_experiments.ml: Alcotest Baselines Experiments Lazy List O4a_coverage O4a_util Once4all Option Printf Seeds Solver String
