test/test_seeds.mli:
