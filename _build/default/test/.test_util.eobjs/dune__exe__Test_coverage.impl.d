test/test_coverage.ml: Alcotest Array List O4a_coverage O4a_util Printf Solver
