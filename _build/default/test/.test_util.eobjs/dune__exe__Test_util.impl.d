test/test_util.ml: Alcotest List O4a_util QCheck QCheck_alcotest String
