test/test_bug_witnesses.ml: Alcotest List Option Parser Smtlib Solver Theories
