open Smtlib

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let parse_term_exn s =
  match Parser.parse_term s with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse failed: %s" (Parser.error_message e)

let parse_script_exn s =
  match Parser.parse_script s with
  | Ok sc -> sc
  | Error e -> Alcotest.failf "parse failed: %s" (Parser.error_message e)

(* ------------------------- Lexer ------------------------- *)

let test_lexer_atoms () =
  let sexps = Lexer.read_sexps "foo 42 2.5 #b101 #xAF \"hi\" :kw |quo ted|" in
  check_int "eight atoms" 8 (List.length sexps);
  match sexps with
  | [ Lexer.Atom (Sym "foo"); Atom (Num "42"); Atom (Dec "2.5"); Atom (Bin "101");
      Atom (Hex "AF"); Atom (Str "hi"); Atom (Kw "kw"); Atom (Sym "quo ted") ] ->
    ()
  | _ -> Alcotest.fail "wrong atom kinds"

let test_lexer_nesting () =
  match Lexer.read_sexps "(a (b c) ())" with
  | [ Lexer.List [ Atom (Sym "a"); List [ Atom (Sym "b"); Atom (Sym "c") ]; List [] ] ] -> ()
  | _ -> Alcotest.fail "wrong nesting"

let test_lexer_comments () =
  match Lexer.read_sexps "; a comment\nx ; more\ny" with
  | [ Lexer.Atom (Sym "x"); Lexer.Atom (Sym "y") ] -> ()
  | _ -> Alcotest.fail "comments not stripped"

let test_lexer_string_escape () =
  match Lexer.read_sexps {|"a""b"|} with
  | [ Lexer.Atom (Str {|a"b|}) ] -> ()
  | _ -> Alcotest.fail "doubled quote not unescaped"

let test_lexer_errors () =
  let bad input =
    match Lexer.read_sexps input with
    | exception Lexer.Lex_error _ -> true
    | _ -> false
  in
  check_bool "unbalanced open" true (bad "(a (b)");
  check_bool "unbalanced close" true (bad "a))");
  check_bool "unterminated string" true (bad {|"abc|});
  check_bool "bad hash" true (bad "#q12");
  check_bool "glued numeral" true (bad "3x")

(* ------------------------- Sorts ------------------------- *)

let sort_round_trip s =
  match Parser.parse_sort (Sort.to_string s) with
  | Ok s' -> Sort.equal s s'
  | Error _ -> false

let test_sort_round_trip () =
  List.iter
    (fun s -> check_bool (Sort.to_string s) true (sort_round_trip s))
    [
      Sort.Bool; Sort.Int; Sort.Real; Sort.String_sort; Sort.Reglan;
      Sort.Bitvec 8; Sort.Finite_field 7; Sort.Seq Sort.Int;
      Sort.Set (Sort.Tuple [ Sort.Int; Sort.Int ]); Sort.Bag Sort.Bool;
      Sort.Array (Sort.Int, Sort.Array (Sort.Int, Sort.Bool));
      Sort.Tuple []; Sort.Uninterpreted "U";
    ]

let test_sort_helpers () =
  check_bool "int numeric" true (Sort.is_numeric Sort.Int);
  check_bool "bool not numeric" false (Sort.is_numeric Sort.Bool);
  check_bool "seq container" true (Sort.is_container (Sort.Seq Sort.Int));
  check_bool "elem of set" true (Sort.element_sort (Sort.Set Sort.Real) = Some Sort.Real);
  check_bool "elem of array" true
    (Sort.element_sort (Sort.Array (Sort.Int, Sort.Bool)) = Some Sort.Bool);
  check_bool "elem of int" true (Sort.element_sort Sort.Int = None)

(* ------------------------- Terms: parsing ------------------------- *)

let test_parse_constants () =
  check_bool "true" true (parse_term_exn "true" = Term.tru);
  check_bool "int" true (parse_term_exn "42" = Term.int 42);
  check_bool "decimal" true (parse_term_exn "2.5" = Term.real 5 2);
  check_bool "binary bv" true (parse_term_exn "#b0101" = Term.bv ~width:4 5);
  check_bool "hex bv" true (parse_term_exn "#xA" = Term.bv ~width:4 10);
  check_bool "string" true (parse_term_exn {|"ab"|} = Term.str "ab")

let test_parse_ff_literal () =
  match parse_term_exn "(as ff3 (_ FiniteField 5))" with
  | Term.Const (Term.Ff_lit { order = 5; value = 3 }) -> ()
  | _ -> Alcotest.fail "ff literal not recognized"

let test_parse_indexed () =
  (match parse_term_exn "((_ divisible 3) x)" with
  | Term.Indexed_app ("divisible", [ Term.Idx_num 3 ], [ Term.Var "x" ]) -> ()
  | _ -> Alcotest.fail "divisible");
  match parse_term_exn "(_ bv5 8)" with
  | Term.Indexed_app ("bv5", [ Term.Idx_num 8 ], []) -> ()
  | _ -> Alcotest.fail "bv numeral"

let test_parse_quantifiers () =
  match parse_term_exn "(forall ((x Int) (y Bool)) (or y (= x 0)))" with
  | Term.Forall ([ ("x", Sort.Int); ("y", Sort.Bool) ], _) -> ()
  | _ -> Alcotest.fail "forall binder shape"

let test_parse_let () =
  match parse_term_exn "(let ((a 1) (b 2)) (+ a b))" with
  | Term.Let ([ ("a", _); ("b", _) ], Term.App ("+", _)) -> ()
  | _ -> Alcotest.fail "let shape"

let test_parse_annotation () =
  match parse_term_exn "(! (> x 0) :named p1)" with
  | Term.Annot (Term.App (">", _), [ ("named", Some "p1") ]) -> ()
  | _ -> Alcotest.fail "annotation shape"

let test_parse_placeholder () =
  let t = parse_term_exn "(or <placeholder> <placeholder>)" in
  check_bool "two holes numbered" true (Term.placeholders t = [ 0; 1 ])

let test_parse_qualified () =
  (match parse_term_exn "(as seq.empty (Seq Int))" with
  | Term.Qual ("seq.empty", Sort.Seq Sort.Int) -> ()
  | _ -> Alcotest.fail "qual");
  match parse_term_exn "((as const (Array Int Int)) 0)" with
  | Term.Qual_app ("const", Sort.Array (Sort.Int, Sort.Int), [ _ ]) -> ()
  | _ -> Alcotest.fail "qual app"

let test_parse_match () =
  let ctors = [ "nil"; "cons" ] in
  match
    Parser.parse_term ~datatypes:[ "Lst" ] ~ctors
      "(match l ((nil 0) ((cons h t) h) (rest 1) (_ 2)))"
  with
  | Ok (Term.Match (Term.Var "l", cases)) -> (
    match List.map fst cases with
    | [ Term.P_ctor ("nil", []); Term.P_ctor ("cons", [ "h"; "t" ]);
        Term.P_var "rest"; Term.P_wildcard ] ->
      ()
    | _ -> Alcotest.fail "pattern shapes wrong")
  | Ok _ -> Alcotest.fail "not a match term"
  | Error e -> Alcotest.failf "parse failed: %s" (Parser.error_message e)

let test_match_round_trip () =
  let src = "(match l ((nil 0) ((cons h t) (+ h 1)) (_ 2)))" in
  let ctors = [ "nil"; "cons" ] in
  let t = Result.get_ok (Parser.parse_term ~ctors src) in
  let t' = Result.get_ok (Parser.parse_term ~ctors (Printer.term t)) in
  check_bool "round trip" true (Term.equal t t')

let test_match_free_vars () =
  let ctors = [ "nil"; "cons" ] in
  let t =
    Result.get_ok
      (Parser.parse_term ~ctors "(match l (((cons h t) (+ h x)) (other other)))")
  in
  check_bool "pattern binders excluded" true (Term.free_vars t = [ "l"; "x" ])

let test_match_rename_respects_binders () =
  let ctors = [ "nil"; "cons" ] in
  let t =
    Result.get_ok (Parser.parse_term ~ctors "(match l (((cons h t) (+ h y)) (_ y)))")
  in
  let renamed = Term.rename_var ~old_name:"h" ~new_name:"z" t in
  check_bool "bound h untouched" true (Term.equal t renamed);
  let renamed = Term.rename_var ~old_name:"y" ~new_name:"z" t in
  check_bool "free y renamed" true (Term.free_vars renamed = [ "l"; "z" ])

let test_parse_errors () =
  let fails s = Result.is_error (Parser.parse_term s) in
  check_bool "empty" true (fails "");
  check_bool "two terms" true (fails "x y");
  check_bool "empty app" true (fails "()");
  check_bool "bad quant" true (fails "(forall () true)");
  check_bool "keyword in term" true (fails ":kw")

(* ------------------------- Commands / scripts ------------------------- *)

let fig1 =
  {|(declare-fun s () (Seq Int))
(assert (exists ((f Int))
  (distinct (seq.len (seq.rev s)) (seq.nth (as seq.empty (Seq Int)) (div 0 0)))))
(check-sat)|}

let test_parse_script_commands () =
  let script =
    parse_script_exn
      {|(set-logic ALL)
(set-info :status unknown)
(declare-sort U 0)
(declare-fun f (Int) U)
(declare-const c Int)
(define-fun g ((x Int)) Int (+ x 1))
(assert (= c (g c)))
(push 1)
(check-sat)
(get-model)
(pop 1)
(echo "done")
(exit)|}
  in
  check_int "all commands" 13 (List.length script)

let test_parse_datatypes () =
  let script =
    parse_script_exn
      {|(declare-datatypes ((Lst 0)) (((nil) (cons (head Int) (tail Lst)))))
(declare-fun l () Lst)
(assert ((_ is cons) l))
(check-sat)|}
  in
  let dts = Script.declared_datatypes script in
  check_int "one datatype" 1 (List.length dts);
  let funs = Script.declared_funs script in
  let names = List.map (fun (d : Script.fun_decl) -> d.Script.name) funs in
  List.iter
    (fun n -> check_bool ("declares " ^ n) true (List.mem n names))
    [ "nil"; "cons"; "head"; "tail"; "is-cons"; "is-nil"; "l" ]

let test_script_utilities () =
  let script = parse_script_exn fig1 in
  check_int "one assertion" 1 (List.length (Script.assertions script));
  check_bool "has check-sat" true (Script.has_check_sat script);
  check_bool "seq theory tagged" true (List.mem "seq" (Script.theories_used script));
  check_bool "quantifiers tagged" true
    (List.mem "quantifiers" (Script.theories_used script));
  check_bool "consts" true (Script.declared_consts script = [ ("s", Sort.Seq Sort.Int) ])

let test_fresh_name () =
  let script = parse_script_exn "(declare-fun x () Int)(declare-fun x0 () Int)" in
  check_str "avoids both" "x1" (Script.fresh_name script "x");
  check_str "free name" "y" (Script.fresh_name script "y")

let test_add_declarations () =
  let script = parse_script_exn "(declare-fun x () Int)(assert (= x 0))(check-sat)" in
  let added =
    Script.add_declarations script
      [ Command.Declare_fun ("y", [], Sort.Int); Command.Declare_fun ("x", [], Sort.Bool) ]
  in
  let consts = Script.declared_consts added in
  check_bool "y added" true (List.mem_assoc "y" consts);
  check_bool "x not duplicated" true (List.assoc "x" consts = Sort.Int);
  (* declaration must precede the assert *)
  let decl_idx = O4a_util.Listx.find_index (fun c -> c = Command.Declare_fun ("y", [], Sort.Int)) added in
  let assert_idx = O4a_util.Listx.find_index Command.is_assert added in
  check_bool "order" true (decl_idx < assert_idx)

let test_replace_assertions () =
  let script = parse_script_exn "(assert true)(assert false)(check-sat)" in
  let replaced = Script.replace_assertions script [ Term.fls ] in
  check_int "one left" 1 (List.length (Script.assertions replaced));
  let extended = Script.replace_assertions script [ Term.tru; Term.fls; Term.tru ] in
  check_int "extra inserted" 3 (List.length (Script.assertions extended));
  check_bool "check-sat last" true (O4a_util.Listx.last extended = Command.Check_sat)

(* ------------------------- Terms: structure ------------------------- *)

let sample = parse_term_exn "(and (or a (not b)) (= (+ x 1) 2))"

let test_term_size_depth () =
  check_int "size" 10 (Term.size sample);
  check_int "depth" 4 (Term.depth sample)

let test_children_with_children () =
  let cs = Term.children sample in
  check_int "two children" 2 (List.length cs);
  let rebuilt = Term.with_children sample cs in
  check_bool "identity rebuild" true (Term.equal sample rebuilt);
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Term.with_children: arity mismatch") (fun () ->
      ignore (Term.with_children sample []))

let test_paths () =
  let all = Term.all_paths sample in
  check_int "node count matches size" (Term.size sample) (List.length all);
  (* every reported path resolves to its reported subterm *)
  List.iter
    (fun (p, t) ->
      match Term.subterm_at sample p with
      | Some t' -> check_bool "path resolves" true (Term.equal t t')
      | None -> Alcotest.fail "dangling path")
    all;
  check_bool "bad path" true (Term.subterm_at sample [ 9; 9 ] = None)

let test_replace_at () =
  let replaced = Term.replace_at sample [ 0 ] Term.tru in
  (match replaced with
  | Term.App ("and", [ t; _ ]) -> check_bool "replaced" true (Term.equal t Term.tru)
  | _ -> Alcotest.fail "shape");
  check_bool "invalid path is identity" true
    (Term.equal sample (Term.replace_at sample [ 42 ] Term.tru))

let test_free_vars () =
  check_bool "flat" true (Term.free_vars sample = [ "a"; "b"; "x" ]);
  let t = parse_term_exn "(forall ((x Int)) (= x y))" in
  check_bool "bound excluded" true (Term.free_vars t = [ "y" ]);
  let t = parse_term_exn "(let ((x 1)) (+ x y))" in
  check_bool "let-bound excluded" true (Term.free_vars t = [ "y" ]);
  let t = parse_term_exn "(let ((x y)) x)" in
  check_bool "binding value free" true (Term.free_vars t = [ "y" ])

let test_rename_var () =
  let t = parse_term_exn "(and p (forall ((p Bool)) p))" in
  let renamed = Term.rename_var ~old_name:"p" ~new_name:"q" t in
  check_str "only free occurrence" "(and q (forall ((p Bool)) p))" (Printer.term renamed)

let test_is_atomic () =
  check_bool "comparison is atomic" true (Term.is_atomic (parse_term_exn "(< x 1)"));
  check_bool "var is atomic" true (Term.is_atomic (parse_term_exn "p"));
  check_bool "and is not" false (Term.is_atomic (parse_term_exn "(and p q)"));
  check_bool "quantifier is not" false
    (Term.is_atomic (parse_term_exn "(exists ((x Int)) (= x 0))"))

(* ------------------------- Printer round-trips ------------------------- *)

let round_trips_term s =
  let t = parse_term_exn s in
  let printed = Printer.term t in
  let t' = parse_term_exn printed in
  Term.equal t t'

let test_printer_round_trip_corpus () =
  List.iter
    (fun s -> check_bool s true (round_trips_term s))
    [
      "(and true false)";
      "(= (+ x 1) (- 2))";
      "(- 2.5)";
      "(bvadd #b0011 (_ bv1 4))";
      "((_ extract 3 1) v)";
      {|(str.++ "a" "b""c")|};
      "(as seq.empty (Seq Int))";
      "(forall ((x Int)) (exists ((y Int)) (< x y)))";
      "(let ((a (+ x 1))) (= a a))";
      "(! (> x 0) :named p)";
      "((as const (Array Int Bool)) false)";
      "(as ff2 (_ FiniteField 3))";
      "(set.member (tuple 1 2) r)";
      "((_ is cons) l)";
    ]

let test_script_round_trip () =
  let script = parse_script_exn fig1 in
  let script' = parse_script_exn (Printer.script script) in
  check_bool "script round trip" true (script = script')

(* random well-formed term generator for property round-trips *)
let gen_term =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map Term.int (int_range (-5) 5);
        return Term.tru;
        return Term.fls;
        map Term.var (oneofl [ "x"; "y"; "z" ]);
        map Term.str (oneofl [ ""; "a"; "b" ]);
        map (fun v -> Term.bv ~width:3 v) (int_range 0 7);
      ]
  in
  fix
    (fun self depth ->
      if depth <= 0 then leaf
      else
        frequency
          [
            (2, leaf);
            (2, map2 (fun a b -> Term.app "+" [ a; b ]) (self (depth - 1)) (self (depth - 1)));
            (2, map2 Term.eq (self (depth - 1)) (self (depth - 1)));
            (1, map Term.not_ (self (depth - 1)));
            (1, map (fun t -> Term.Forall ([ ("q", Sort.Int) ], t)) (self (depth - 1)));
            (1, map (fun t -> Term.Let ([ ("w", Term.int 1) ], t)) (self (depth - 1)));
            ( 1,
              map3 Term.ite (self (depth - 1)) (self (depth - 1)) (self (depth - 1)) );
          ])
    4

let arbitrary_term = QCheck.make ~print:Printer.term gen_term

let term_props =
  [
    QCheck.Test.make ~name:"print/parse round-trip" ~count:300 arbitrary_term (fun t ->
        match Parser.parse_term (Printer.term t) with
        | Ok t' -> Term.equal t t'
        | Error _ -> false);
    QCheck.Test.make ~name:"size = |all_paths|" ~count:200 arbitrary_term (fun t ->
        Term.size t = List.length (Term.all_paths t));
    QCheck.Test.make ~name:"map_bottom_up id is identity" ~count:200 arbitrary_term
      (fun t -> Term.equal t (Term.map_bottom_up Fun.id t));
    QCheck.Test.make ~name:"replace_at root" ~count:100 arbitrary_term (fun t ->
        Term.equal Term.tru (Term.replace_at t [] Term.tru));
    QCheck.Test.make ~name:"rename to fresh then back" ~count:200 arbitrary_term
      (fun t ->
        let there = Term.rename_var ~old_name:"x" ~new_name:"fresh_xyz" t in
        let back = Term.rename_var ~old_name:"fresh_xyz" ~new_name:"x" there in
        Term.equal t back);
  ]

let () =
  Alcotest.run "smtlib"
    [
      ( "lexer",
        [
          Alcotest.test_case "atoms" `Quick test_lexer_atoms;
          Alcotest.test_case "nesting" `Quick test_lexer_nesting;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "string escape" `Quick test_lexer_string_escape;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "sorts",
        [
          Alcotest.test_case "round trip" `Quick test_sort_round_trip;
          Alcotest.test_case "helpers" `Quick test_sort_helpers;
        ] );
      ( "term parsing",
        [
          Alcotest.test_case "constants" `Quick test_parse_constants;
          Alcotest.test_case "ff literal" `Quick test_parse_ff_literal;
          Alcotest.test_case "indexed" `Quick test_parse_indexed;
          Alcotest.test_case "quantifiers" `Quick test_parse_quantifiers;
          Alcotest.test_case "let" `Quick test_parse_let;
          Alcotest.test_case "annotation" `Quick test_parse_annotation;
          Alcotest.test_case "placeholder" `Quick test_parse_placeholder;
          Alcotest.test_case "qualified" `Quick test_parse_qualified;
          Alcotest.test_case "match patterns" `Quick test_parse_match;
          Alcotest.test_case "match round trip" `Quick test_match_round_trip;
          Alcotest.test_case "match free vars" `Quick test_match_free_vars;
          Alcotest.test_case "match rename" `Quick test_match_rename_respects_binders;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "scripts",
        [
          Alcotest.test_case "commands" `Quick test_parse_script_commands;
          Alcotest.test_case "datatypes" `Quick test_parse_datatypes;
          Alcotest.test_case "utilities" `Quick test_script_utilities;
          Alcotest.test_case "fresh name" `Quick test_fresh_name;
          Alcotest.test_case "add declarations" `Quick test_add_declarations;
          Alcotest.test_case "replace assertions" `Quick test_replace_assertions;
        ] );
      ( "term structure",
        [
          Alcotest.test_case "size/depth" `Quick test_term_size_depth;
          Alcotest.test_case "children" `Quick test_children_with_children;
          Alcotest.test_case "paths" `Quick test_paths;
          Alcotest.test_case "replace_at" `Quick test_replace_at;
          Alcotest.test_case "free vars" `Quick test_free_vars;
          Alcotest.test_case "rename" `Quick test_rename_var;
          Alcotest.test_case "is_atomic" `Quick test_is_atomic;
        ] );
      ( "printer",
        [
          Alcotest.test_case "round trip corpus" `Quick test_printer_round_trip_corpus;
          Alcotest.test_case "script round trip" `Quick test_script_round_trip;
        ]
        @ List.map QCheck_alcotest.to_alcotest term_props );
    ]
