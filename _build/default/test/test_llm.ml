module Client = Llm_sim.Client
module Prompt = Llm_sim.Prompt
module Profile = Llm_sim.Profile

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_profiles () =
  check_int "three profiles" 3 (List.length Profile.all);
  check_bool "lookup gpt-4" true (Profile.find "gpt-4" = Some Profile.gpt4);
  check_bool "lookup missing" true (Profile.find "gpt-9" = None);
  (* salts decorrelate profiles *)
  let salts = List.map (fun p -> p.Profile.seed_salt) Profile.all in
  check_int "distinct salts" 3 (List.length (O4a_util.Listx.dedup salts))

let test_prompt_rendering () =
  let p1 = Prompt.Summarize_grammar { theory = "Ints"; doc = "DOC TEXT" } in
  let r1 = Prompt.render p1 in
  check_bool "mentions CFG" true (O4a_util.Strx.contains_sub ~sub:"context-free grammar" r1);
  check_bool "embeds doc" true (O4a_util.Strx.contains_sub ~sub:"DOC TEXT" r1);
  let p2 = Prompt.Implement_generator { theory = "ints"; cfg_text = "bool ::= x" } in
  check_bool "names function" true
    (O4a_util.Strx.contains_sub ~sub:"generate_ints_formula_with_decls" (Prompt.render p2));
  let p3 = Prompt.Self_correct { theory = "ints"; errors = [ "E1"; "E2" ]; impl = "CODE" } in
  let r3 = Prompt.render p3 in
  check_bool "embeds errors" true (O4a_util.Strx.contains_sub ~sub:"E1" r3);
  check_bool "embeds impl" true (O4a_util.Strx.contains_sub ~sub:"CODE" r3);
  Alcotest.(check string) "kinds" "summarize,implement,correct,free"
    (String.concat ","
       (List.map Prompt.kind
          [ p1; p2; p3; Prompt.Free_form { instruction = "x" } ]))

let test_client_accounting () =
  let client = Client.create ~seed:1 Profile.gpt4 in
  check_int "no calls yet" 0 (Client.call_count client);
  let r = Client.query client (Prompt.Free_form { instruction = "hello world" }) in
  check_int "one call" 1 (Client.call_count client);
  check_bool "tokens counted" true (Client.token_count client > 0);
  check_bool "completion tokens from profile" true
    (r.Client.completion_tokens = Profile.gpt4.Profile.tokens_per_call);
  ignore (Client.query client (Prompt.Free_form { instruction = "again" }));
  check_int "two calls" 2 (Client.call_count client);
  check_int "transcript length" 2 (List.length (Client.transcript client))

let test_client_determinism () =
  let a = Client.create ~seed:9 Profile.gpt4 in
  let b = Client.create ~seed:9 Profile.gpt4 in
  check_bool "decide deterministic" true
    (Client.decide a ~key:"k" 0.5 = Client.decide b ~key:"k" 0.5);
  let ra = Client.rng_for a "stream" and rb = Client.rng_for b "stream" in
  check_bool "rng deterministic" true (O4a_util.Rng.bits64 ra = O4a_util.Rng.bits64 rb);
  (* different keys give different streams *)
  let r1 = Client.rng_for a "k1" and r2 = Client.rng_for a "k2" in
  check_bool "key-sensitive" true (O4a_util.Rng.bits64 r1 <> O4a_util.Rng.bits64 r2)

let test_client_profile_sensitivity () =
  let a = Client.create ~seed:9 Profile.gpt4 in
  let b = Client.create ~seed:9 Profile.claude45 in
  let ra = Client.rng_for a "x" and rb = Client.rng_for b "x" in
  check_bool "profiles decorrelated" true (O4a_util.Rng.bits64 ra <> O4a_util.Rng.bits64 rb)

let test_misspellings () =
  let client = Client.create ~seed:3 Profile.gpt4 in
  Alcotest.(check string) "curated misspelling" "seq.reverse"
    (Client.misspell_op client ~key:"t" "seq.rev");
  let wrong = Client.misspell_op client ~key:"t" "set.card" in
  check_bool "misspelling differs" true (wrong <> "set.card");
  (* prefix-based lookup knows the namespace, but the rank table rejects it *)
  check_bool "misspelling rejected by rank table" true
    (Result.is_error (Theories.Signature.app "seq.reverse" [ Smtlib.Sort.Seq Smtlib.Sort.Int ]))

let test_decide_extremes () =
  let client = Client.create ~seed:3 Profile.gpt4 in
  check_bool "p=0" false (Client.decide client ~key:"a" 0.);
  check_bool "p=1" true (Client.decide client ~key:"b" 1.)

let () =
  Alcotest.run "llm"
    [
      ( "profiles & prompts",
        [
          Alcotest.test_case "profiles" `Quick test_profiles;
          Alcotest.test_case "prompt templates" `Quick test_prompt_rendering;
        ] );
      ( "client",
        [
          Alcotest.test_case "usage accounting" `Quick test_client_accounting;
          Alcotest.test_case "determinism" `Quick test_client_determinism;
          Alcotest.test_case "profile sensitivity" `Quick test_client_profile_sensitivity;
          Alcotest.test_case "misspellings" `Quick test_misspellings;
          Alcotest.test_case "decide extremes" `Quick test_decide_extremes;
        ] );
    ]
