module E = Experiments

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains needle hay = O4a_util.Strx.contains_sub ~sub:needle hay

(* ------------------------- Render ------------------------- *)

let test_render_table () =
  let t = E.Render.table ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  check_bool "header" true (contains "a" t && contains "bb" t);
  check_bool "cells" true (contains "333" t);
  check_int "four lines" 4 (List.length (O4a_util.Strx.split_lines t))

let test_render_series () =
  let s = E.Render.series ~title:"T" ~x_label:"hour" [ ("f1", [ 1.; 2.5 ]) ] in
  check_bool "values" true (contains "2.5" s);
  check_bool "title" true (contains "T" s)

let test_render_sparkline () =
  check_int "one glyph per point" (3 * 3)
    (String.length (E.Render.sparkline [ 0.; 0.5; 1. ]));
  check_bool "empty ok" true (E.Render.sparkline [] = "")

(* ------------------------- Mini experiment runs ------------------------- *)

(* shared setup: one campaign, a small seed pool, two fuzzers *)
let setup =
  lazy
    (let campaign = Once4all.Campaign.prepare ~seed:3 () in
     let seeds = O4a_util.Listx.take 40 (Seeds.Corpus.all ()) in
     let client = campaign.Once4all.Campaign.client in
     let fuzzers =
       [ Baselines.Registry.once4all campaign;
         Option.get (Baselines.Registry.find ~client "opfuzz") ]
     in
     (campaign, seeds, fuzzers))

let test_coverage_growth_shapes () =
  let _, seeds, fuzzers = Lazy.force setup in
  let r =
    E.Coverage_growth.run ~seed:1 ~ticks:4 ~per_tick:10 ~title:"mini-f6" ~fuzzers ~seeds ()
  in
  check_int "one series per fuzzer" 2 (List.length r.E.Coverage_growth.series);
  List.iter
    (fun s ->
      check_int "one point per tick" 4 (List.length s.E.Coverage_growth.zeal_line);
      (* coverage is monotone over ticks *)
      let monotone values =
        let rec go = function
          | a :: (b :: _ as rest) -> a <= b +. 1e-9 && go rest
          | _ -> true
        in
        go values
      in
      check_bool (s.E.Coverage_growth.fuzzer ^ " monotone") true
        (monotone s.E.Coverage_growth.zeal_line && monotone s.E.Coverage_growth.cove_line);
      List.iter
        (fun v -> check_bool "percentage range" true (v >= 0. && v <= 100.))
        (s.E.Coverage_growth.zeal_line @ s.E.Coverage_growth.cove_func))
    r.E.Coverage_growth.series;
  check_bool "renders" true (contains "mini-f6" r.E.Coverage_growth.text)

let test_once4all_leads_coverage () =
  let _, seeds, fuzzers = Lazy.force setup in
  let r =
    E.Coverage_growth.run ~seed:2 ~ticks:6 ~per_tick:15 ~title:"lead" ~fuzzers ~seeds ()
  in
  let final s = O4a_util.Listx.last s.E.Coverage_growth.cove_line in
  match r.E.Coverage_growth.series with
  | [ once4all; opfuzz ] ->
    check_bool
      (Printf.sprintf "Once4All (%.1f) > OpFuzz (%.1f) on Cove" (final once4all)
         (final opfuzz))
      true
      (final once4all > final opfuzz)
  | _ -> Alcotest.fail "two series expected"

let test_unique_bugs_mini () =
  let _, seeds, fuzzers = Lazy.force setup in
  let r =
    E.Unique_bugs.run ~seed:3 ~budget:150 ~max_bisects:8 ~title:"mini-f7" ~fuzzers ~seeds ()
  in
  check_int "two rows" 2 (List.length r.E.Unique_bugs.rows);
  List.iter
    (fun row ->
      check_bool "bugs <= candidates" true
        (row.E.Unique_bugs.unique_bugs <= max 1 row.E.Unique_bugs.candidates);
      (* correcting commits are within history *)
      List.iter
        (fun (_, c) -> check_bool "commit in range" true (c > 0 && c <= 100))
        row.E.Unique_bugs.correcting_commits)
    r.E.Unique_bugs.rows

let test_validity_experiment () =
  let r = E.Validity.run ~seed:5 () in
  check_int "one row per theory" 12 (List.length r.E.Validity.rows);
  List.iter
    (fun row ->
      check_bool "final >= initial" true
        (row.E.Validity.final_pct >= row.E.Validity.initial_pct);
      check_bool "percentages" true
        (row.E.Validity.initial_pct >= 0. && row.E.Validity.final_pct <= 100.))
    r.E.Validity.rows;
  (* the headline claim: a hard theory starts low, ends high *)
  let ff = List.find (fun row -> row.E.Validity.theory = "finite_fields") r.E.Validity.rows in
  check_bool "ff lifted" true (ff.E.Validity.final_pct >= 80.);
  check_bool "renders" true (contains "finite_fields" r.E.Validity.text)

let test_bug_tables_mini () =
  let r = E.Bug_tables.run ~seed:4 ~budget:800 () in
  check_bool "found some specimens" true (r.E.Bug_tables.found <> []);
  check_bool "table1 renders" true (contains "Reported" r.E.Bug_tables.table1);
  check_bool "table2 renders" true (contains "Crash" r.E.Bug_tables.table2);
  check_bool "stats render" true (contains "test cases" r.E.Bug_tables.stats_text);
  (* found specimens are campaign bugs only (historical excluded) *)
  List.iter
    (fun (s : Solver.Bug_db.spec) ->
      check_bool "not historical" true (not s.Solver.Bug_db.historical))
    r.E.Bug_tables.found

let test_lifespan_rows () =
  (* with ground truth as "found", the lifespan table reproduces the shape *)
  let confirmed =
    List.filter
      (fun (s : Solver.Bug_db.spec) ->
        match s.Solver.Bug_db.status with
        | Solver.Bug_db.Fixed | Solver.Bug_db.Confirmed -> true
        | _ -> false)
      Solver.Bug_db.campaign_bugs
  in
  let r = E.Lifespan.run ~found:confirmed in
  check_int "zeal rows = releases + trunk" 7 (List.length r.E.Lifespan.zeal_rows);
  check_int "cove rows" 6 (List.length r.E.Lifespan.cove_rows);
  (* monotone: later versions are affected by at least as many bugs *)
  let counts = List.map (fun row -> row.E.Lifespan.affected) r.E.Lifespan.zeal_rows in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  check_bool "monotone growth" true (monotone counts);
  (* trunk carries every confirmed bug; the oldest release only the latent ones *)
  check_int "trunk affected = zeal confirmed" 25 (O4a_util.Listx.last counts);
  check_int "3 long-latent zeal bugs" 3 (List.hd counts);
  let latent = E.Lifespan.long_latent ~found:confirmed in
  check_int "long latent overall" 3
    (List.length
       (List.filter
          (fun (s : Solver.Bug_db.spec) -> s.Solver.Bug_db.solver = O4a_coverage.Coverage.Zeal)
          latent))

let test_ablation_iterations () =
  let r = E.Ablations.iterations ~seed:6 () in
  check_int "four budgets" 4 (List.length r.E.Ablations.rows);
  let at n =
    List.find (fun row -> row.E.Ablations.max_iter = n) r.E.Ablations.rows
  in
  check_bool "more iterations help" true
    ((at 10).E.Ablations.mean_final_pct >= (at 0).E.Ablations.mean_final_pct);
  check_bool "zero budget = initial" true
    (abs_float ((at 0).E.Ablations.mean_final_pct -. (at 0).E.Ablations.mean_initial_pct)
    < 1e-6)

let test_variants_lineup () =
  let variants = E.Variants.build ~seed:3 () in
  check_int "four variants" 4 (List.length variants);
  check_bool "names" true
    (List.map (fun v -> v.E.Variants.name) variants
    = [ "Once4All"; "Once4All_w/oS"; "Once4All_Gemini"; "Once4All_Claude" ])

let () =
  Alcotest.run "experiments"
    [
      ( "render",
        [
          Alcotest.test_case "table" `Quick test_render_table;
          Alcotest.test_case "series" `Quick test_render_series;
          Alcotest.test_case "sparkline" `Quick test_render_sparkline;
        ] );
      ( "harnesses",
        [
          Alcotest.test_case "coverage growth shapes" `Slow test_coverage_growth_shapes;
          Alcotest.test_case "Once4All leads coverage" `Slow test_once4all_leads_coverage;
          Alcotest.test_case "unique bugs mini" `Slow test_unique_bugs_mini;
          Alcotest.test_case "validity" `Slow test_validity_experiment;
          Alcotest.test_case "bug tables mini" `Slow test_bug_tables_mini;
          Alcotest.test_case "lifespan" `Quick test_lifespan_rows;
          Alcotest.test_case "iteration ablation" `Slow test_ablation_iterations;
          Alcotest.test_case "variants" `Slow test_variants_lineup;
        ] );
    ]
