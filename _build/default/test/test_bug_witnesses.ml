(* Ground-truth witnesses: one hand-written formula per campaign specimen
   whose structural trigger it satisfies. This pins down what each injected
   bug is about, documents a reproducer shape, and guards the trigger
   predicates against accidental narrowing (a specimen whose trigger no
   realistic formula can satisfy would silently fall out of every
   experiment). The rarity gate is deliberately NOT part of this test — it
   checks [trigger], not [fires]. *)

open Smtlib
module Bug_db = Solver.Bug_db

let dt = "(declare-datatypes ((Lst 0)) (((nil) (cons (head Int) (tail Lst)))))\n"

let witnesses =
  [
    (* ---------------- Zeal ---------------- *)
    ( "zeal-001",
      "(declare-fun x () Int)(assert (exists ((f Int)) (= (mod x 0) f)))(check-sat)" );
    ( "zeal-002",
      "(declare-fun r () Real)(assert (< (/ 1.0 r) (to_real (to_int r))))(check-sat)" );
    ( "zeal-003",
      {|(declare-fun s () String)(assert (= (str.replace_all s "" "a") s))(check-sat)|} );
    ( "zeal-004",
      {|(declare-fun s () String)(assert (str.in_re s (re.comp ((_ re.loop 1 3) (str.to_re "a")))))(check-sat)|}
    );
    ( "zeal-005",
      "(declare-fun s () (Seq Int))(assert (exists ((i Int)) (= (seq.nth (seq.rev s) i) 0)))(check-sat)"
    );
    ( "zeal-006",
      "(declare-fun s () (Seq Int))(assert (= (seq.update s 0 (seq.extract s 0 1)) s))(check-sat)"
    );
    ( "zeal-007",
      "(declare-fun v () (_ BitVec 2))(assert (= (bvurem v (bvshl v #b01)) v))(check-sat)"
    );
    ( "zeal-008",
      "(declare-fun v () (_ BitVec 4))(assert (= ((_ extract 1 0) (bvudiv v v)) #b00))(check-sat)"
    );
    ( "zeal-009",
      "(declare-fun a () (Array Int Int))(assert (= (store a 0 1) (store ((as const (Array Int Int)) 0) 1 2)))(check-sat)"
    );
    ( "zeal-010", dt ^ "(declare-fun l () Lst)(assert ((_ is cons) l))(check-sat)" );
    ( "zeal-011",
      "(declare-fun p () Bool)(assert (= (ite p 1 2) (ite p (ite p 3 4) 5)))(check-sat)"
    );
    ( "zeal-012",
      "(declare-fun x () Int)(assert ((_ divisible 3) (mod x 3)))(check-sat)" );
    ( "zeal-013",
      {|(declare-fun s () String)(assert (= (str.indexof s "a" (- 1)) 0))(check-sat)|} );
    ( "zeal-014",
      "(assert (forall ((x Int)) (exists ((y Int)) (< x y))))(check-sat)" );
    ( "zeal-015",
      "(assert (exists ((x Int)) (let ((y (+ x 1))) (= y 0))))(check-sat)" );
    ( "zeal-016",
      "(declare-fun a () (_ BitVec 2))(assert (= (bvxor (concat a a) #b0000) #b0000))(check-sat)"
    );
    ( "zeal-017",
      "(declare-fun r () Real)(assert (is_int (/ r 2.0)))(check-sat)" );
    ( "zeal-018",
      {|(declare-fun s () String)(assert (= (str.from_code (str.to_code s)) s))(check-sat)|}
    );
    ( "zeal-019",
      "(declare-fun s () (Seq Int))(assert (= (seq.indexof (seq.replace s s s) s 0) 0))(check-sat)"
    );
    ( "zeal-020",
      "(declare-fun a () (Array Int Int))(assert (= (select (store (store a 0 1) 1 2) 0) 1))(check-sat)"
    );
    ( "zeal-021", "(declare-fun x () Int)(assert (= (mod x (- 3)) 1))(check-sat)" );
    ( "zeal-022",
      {|(declare-fun s () String)(assert (= (str.substr s 2 2) "ab"))(check-sat)|} );
    ( "zeal-023",
      "(declare-fun v () (_ BitVec 3))(assert (= (bvashr (bvor v #b100) #b001) v))(check-sat)"
    );
    ( "zeal-024",
      "(declare-fun x () Int)(assert (forall ((k Int)) (distinct (div x 2) k)))(check-sat)"
    );
    ( "zeal-025",
      {|(declare-fun s () String)(assert (str.contains (str.++ s "a") s))(check-sat)|} );
    ( "zeal-026",
      "(declare-fun a () (Array Int Int))(assert (= (store a 0 1) a))(assert (= (select a 0) 1))(check-sat)"
    );
    ( "zeal-027",
      "(declare-fun s () (Seq Int))(assert (seq.contains (seq.++ s s) s))(check-sat)" );
    (* ---------------- Cove ---------------- *)
    ( "cove-001",
      "(declare-fun r () (Set UnitTuple))(assert (set.subset (rel.join r r) r))(check-sat)"
    );
    ( "cove-002",
      "(declare-fun s () (Seq Int))(assert (exists ((f Int)) (distinct (seq.len (seq.rev s)) (seq.nth (as seq.empty (Seq Int)) (div 0 0)))))(check-sat)"
    );
    ( "cove-003",
      "(declare-fun s () (Seq Int))(assert (= (seq.update (seq.++ s s) 0 s) (seq.++ s s)))(check-sat)"
    );
    ( "cove-004",
      "(declare-fun b () (Bag Int))(assert (= (bag.difference_remove (bag.setof b) b) b))(check-sat)"
    );
    ( "cove-005",
      "(declare-fun x () Int)(assert (= (bag.count x (bag x (- 2))) 0))(check-sat)" );
    ( "cove-006",
      "(declare-fun v () (_ FiniteField 3))(assert (= (ff.bitsum v v v) (as ff1 (_ FiniteField 3))))(check-sat)"
    );
    ( "cove-007",
      "(declare-fun a () (Set Int))(assert (set.is_empty (set.minus (set.complement a) a)))(check-sat)"
    );
    ( "cove-008",
      "(declare-fun r () (Set (Tuple Int Int)))(assert (= (rel.join (rel.transpose r) r) r))(check-sat)"
    );
    ( "cove-009",
      {|(declare-fun s () String)(assert (str.in_re s (re.diff re.all (re.inter re.allchar (str.to_re "a")))))(check-sat)|}
    );
    ( "cove-010",
      "(declare-fun a () (Array Int Int))(assert (= (select (store (store (store a 0 1) 1 2) 2 3) 0) 1))(check-sat)"
    );
    ( "cove-011",
      dt ^ "(declare-fun l () Lst)(assert ((_ is cons) (cons 1 (tail l))))(check-sat)" );
    ( "cove-012",
      "(declare-fun x () Int)(assert ((_ divisible 2) (mod x 4)))(check-sat)" );
    ( "cove-013",
      "(declare-fun a () (Set Int))(assert (forall ((k Int)) (=> (set.member k a) (< k 9))))(check-sat)"
    );
    ( "cove-014",
      {|(declare-fun s () String)(assert (= (str.replace_all s (str.at s 0) "b") s))(check-sat)|}
    );
    ( "cove-015",
      "(declare-fun s () (Seq Int))(assert (= (seq.len (seq.extract s 0 (seq.len s))) 1))(check-sat)"
    );
    ( "cove-016",
      "(declare-fun v () (_ FiniteField 3))(assert (= (ff.bitsum v (ff.mul v v)) (as ff2 (_ FiniteField 3))))(check-sat)"
    );
    ( "cove-017",
      "(declare-fun a () (Set Int))(declare-fun b () (Set Int))(assert (= (set.card (set.union a b)) 2))(check-sat)"
    );
    ( "cove-018",
      "(declare-fun a () (Bag Int))(declare-fun b () (Bag Int))(assert (bag.subbag (bag.inter_min a b) a))(check-sat)"
    );
  ]

let parse_exn src =
  match Parser.parse_script src with
  | Ok script -> script
  | Error e -> Alcotest.failf "witness parse error: %s" (Parser.error_message e)

let test_every_specimen_has_witness () =
  List.iter
    (fun (spec : Bug_db.spec) ->
      match List.assoc_opt spec.Bug_db.id witnesses with
      | None -> Alcotest.failf "no witness for %s" spec.Bug_db.id
      | Some src ->
        let script = parse_exn src in
        if not (spec.Bug_db.trigger script) then
          Alcotest.failf "witness does not satisfy the trigger of %s:\n%s"
            spec.Bug_db.id src)
    Bug_db.campaign_bugs

let test_witnesses_are_wellformed () =
  (* a reproducer that the buggy solver would reject outright is useless;
     all witnesses except the deliberate type-check-escape one must sort-check *)
  List.iter
    (fun (id, src) ->
      let script = parse_exn src in
      match Theories.Typecheck.check_script script with
      | Ok () -> ()
      | Error msg ->
        let spec = Option.get (Bug_db.find id) in
        if not spec.Bug_db.pre_check then
          Alcotest.failf "witness for %s ill-sorted (%s):\n%s" id msg src)
    witnesses

let test_witnesses_crash_when_gate_opens () =
  (* behavioral check on a sample: when [fires] holds, running the buggy
     solver on the witness actually produces the specimen's effect *)
  List.iter
    (fun (spec : Bug_db.spec) ->
      match List.assoc_opt spec.Bug_db.id witnesses with
      | None -> ()
      | Some src ->
        let script = parse_exn src in
        if spec.Bug_db.kind = Bug_db.Crash && Bug_db.fires spec script then (
          let engine =
            Solver.Engine.make spec.Bug_db.solver
              ~commit:(Solver.Version.history_of spec.Bug_db.solver).Solver.Version.trunk
          in
          match Solver.Runner.run engine script with
          | Solver.Runner.R_crash _ -> ()
          | r ->
            Alcotest.failf "%s fires on its witness but solver returned %s"
              spec.Bug_db.id
              (Solver.Runner.result_to_string r)))
    Bug_db.campaign_bugs

let test_witness_count () =
  Alcotest.(check int) "45 witnesses" 45 (List.length witnesses)

let () =
  Alcotest.run "bug_witnesses"
    [
      ( "witnesses",
        [
          Alcotest.test_case "count" `Quick test_witness_count;
          Alcotest.test_case "every specimen triggered" `Quick
            test_every_specimen_has_witness;
          Alcotest.test_case "well-formed" `Quick test_witnesses_are_wellformed;
          Alcotest.test_case "crash when gate opens" `Quick
            test_witnesses_crash_when_gate_opens;
        ] );
    ]
