open Smtlib
module Fuzzer = Baselines.Fuzzer
module Registry = Baselines.Registry

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let client = Llm_sim.Client.create ~seed:5 Llm_sim.Profile.gpt4
let seeds = lazy (Seeds.Corpus.all ())

let parse_rate ?(n = 60) (fuzzer : Fuzzer.t) =
  let rng = O4a_util.Rng.create 77 in
  let ok = ref 0 in
  for _ = 1 to n do
    let source = fuzzer.Fuzzer.generate ~rng ~seeds:(Lazy.force seeds) in
    if Result.is_ok (Parser.parse_script source) then incr ok
  done;
  float_of_int !ok /. float_of_int n

(* ------------------------- registry ------------------------- *)

let test_lineup () =
  let names = List.map (fun f -> f.Fuzzer.name) (Registry.baselines ~client) in
  check_bool "RQ2 lineup" true
    (List.sort compare names
    = List.sort compare [ "STORM"; "YinYang"; "OpFuzz"; "TypeFuzz"; "HistFuzz"; "Fuzz4All"; "ET" ]);
  check_bool "find by name" true (Registry.find ~client "opfuzz" <> None);
  check_bool "find missing" true (Registry.find ~client "nope" = None)

let test_throughputs () =
  let f4a = Option.get (Registry.find ~client "fuzz4all") in
  let op = Option.get (Registry.find ~client "opfuzz") in
  check_bool "LLM-in-the-loop is slower" true
    (f4a.Fuzzer.tests_per_tick < op.Fuzzer.tests_per_tick)

let test_standard_seed_filter () =
  let std = Fuzzer.standard_seeds (Lazy.force seeds) in
  check_bool "some filtered" true (List.length std < List.length (Lazy.force seeds));
  List.iter
    (fun s ->
      let tags = Script.theories_used s in
      check_bool "no extension tags" true
        (not (List.exists (fun t -> List.mem t [ "sets"; "bags"; "finite_fields" ]) tags)))
    std

(* ------------------------- individual baselines ------------------------- *)

let test_opfuzz_type_aware () =
  (* swapped operators stay within rank classes, so mutants sort-check *)
  let rng = O4a_util.Rng.create 3 in
  let seed_pool = Fuzzer.standard_seeds (Lazy.force seeds) in
  for _ = 1 to 60 do
    let seed = Fuzzer.mutate_seed ~rng seed_pool in
    let mutated = Script.map_assertions (Baselines.Opfuzz.mutate_term ~rng) seed in
    match Theories.Typecheck.check_script mutated with
    | Ok () -> ()
    | Error msg ->
      Alcotest.failf "OpFuzz mutant ill-sorted (%s):\n%s" msg (Printer.script mutated)
  done

let test_opfuzz_classes_share_rank () =
  List.iter
    (fun cls ->
      match cls with
      | op :: rest ->
        List.iter
          (fun other ->
            (* both defined over the same example argument lists *)
            ignore op;
            ignore other)
          rest
      | [] -> Alcotest.fail "empty class")
    Baselines.Opfuzz.op_classes;
  check_bool "has arith class" true
    (List.exists (fun c -> List.mem "+" c) Baselines.Opfuzz.op_classes)

let test_opfuzz_actually_mutates () =
  let rng = O4a_util.Rng.create 9 in
  let term = Result.get_ok (Parser.parse_term "(and (< a b) (< c d) (< e f))") in
  let changed = ref false in
  for _ = 1 to 30 do
    if not (Term.equal (Baselines.Opfuzz.mutate_term ~rng term) term) then changed := true
  done;
  check_bool "mutations happen" true !changed

let test_typefuzz_generates_sorted () =
  let rng = O4a_util.Rng.create 5 in
  let vars = [ ("x", Sort.Int); ("p", Sort.Bool); ("s", Sort.String_sort) ] in
  List.iter
    (fun sort ->
      for _ = 1 to 20 do
        match Baselines.Typefuzz.generate_of_sort ~rng ~vars ~depth:3 sort with
        | Some t -> (
          let env =
            List.fold_left
              (fun acc (n, s) -> Theories.Typecheck.add_var n s acc)
              (Theories.Typecheck.env_of_script [])
              vars
          in
          match Theories.Typecheck.infer env t with
          | Ok s ->
            check_bool "generated sort matches" true (Sort.equal s sort)
          | Error msg -> Alcotest.failf "ill-sorted generation: %s" msg)
        | None -> Alcotest.fail "generation failed for supported sort"
      done)
    [ Sort.Int; Sort.Bool; Sort.Real; Sort.String_sort; Sort.Bitvec 4 ]

let test_histfuzz_harvests_atoms () =
  let atoms = Baselines.Histfuzz.harvest_atoms (O4a_util.Listx.take 20 (Lazy.force seeds)) in
  check_bool "harvested" true (List.length atoms > 10);
  List.iter
    (fun a -> check_bool "atomic" true (Term.is_atomic a))
    (O4a_util.Listx.take 20 atoms)

let test_baselines_emit_parseable () =
  List.iter
    (fun (fuzzer : Fuzzer.t) ->
      let rate = parse_rate fuzzer in
      let minimum = if fuzzer.Fuzzer.name = "Fuzz4All" then 0.30 else 0.85 in
      check_bool
        (Printf.sprintf "%s parse rate %.2f >= %.2f" fuzzer.Fuzzer.name rate minimum)
        true (rate >= minimum))
    (Registry.baselines ~client)

let test_fuzz4all_invalid_rate () =
  (* direct LLM generation yields ~50% invalid inputs (paper §1/§5.1): here
     "invalid" means rejected by both solver front ends *)
  let f4a = Option.get (Registry.find ~client "fuzz4all") in
  let zeal = Solver.Engine.zeal () and cove = Solver.Engine.cove () in
  let rng = O4a_util.Rng.create 13 in
  let invalid = ref 0 in
  let n = 80 in
  for _ = 1 to n do
    let source = f4a.Fuzzer.generate ~rng ~seeds:(Lazy.force seeds) in
    let ok =
      Result.is_ok (Solver.Engine.parse_check zeal source)
      || Result.is_ok (Solver.Engine.parse_check cove source)
    in
    if not ok then incr invalid
  done;
  let rate = float_of_int !invalid /. float_of_int n in
  check_bool (Printf.sprintf "invalid rate %.2f in [0.3, 0.7]" rate) true
    (rate >= 0.3 && rate <= 0.7)

let test_fuzz4all_costs_llm_calls () =
  let local_client = Llm_sim.Client.create ~seed:21 Llm_sim.Profile.gpt4 in
  let f4a = Baselines.Fuzz4all_sim.make ~client:local_client in
  let rng = O4a_util.Rng.create 5 in
  for _ = 1 to 10 do
    ignore (f4a.Fuzzer.generate ~rng ~seeds:(Lazy.force seeds))
  done;
  check_int "one call per formula" 10 (Llm_sim.Client.call_count local_client)

let test_et_needs_no_seeds () =
  let rng = O4a_util.Rng.create 7 in
  let source = Baselines.Et_sim.fuzzer.Fuzzer.generate ~rng ~seeds:[] in
  check_bool "from-scratch generation" true (Result.is_ok (Parser.parse_script source))

let test_yinyang_fuses_two_seeds () =
  let rng = O4a_util.Rng.create 11 in
  let rec try_fusion n =
    if n = 0 then Alcotest.fail "fusion never produced z_fusion"
    else (
      let source = Baselines.Yinyang.fuzzer.Fuzzer.generate ~rng ~seeds:(Lazy.force seeds) in
      if O4a_util.Strx.contains_sub ~sub:"z_fusion" source then
        check_bool "parses" true (Result.is_ok (Parser.parse_script source))
      else try_fusion (n - 1))
  in
  try_fusion 40

let test_once4all_wrapper () =
  let campaign = Once4all.Campaign.prepare ~seed:3 () in
  let f = Registry.once4all campaign in
  let wos = Registry.once4all_wos campaign in
  let rng = O4a_util.Rng.create 15 in
  let s1 = f.Fuzzer.generate ~rng ~seeds:(Lazy.force seeds) in
  let s2 = wos.Fuzzer.generate ~rng ~seeds:(Lazy.force seeds) in
  check_bool "skeleton variant emits" true (String.length s1 > 0);
  check_bool "w/oS variant emits" true (String.length s2 > 0);
  check_bool "names differ" true (f.Fuzzer.name <> wos.Fuzzer.name)

let () =
  Alcotest.run "baselines"
    [
      ( "registry",
        [
          Alcotest.test_case "lineup" `Quick test_lineup;
          Alcotest.test_case "throughputs" `Quick test_throughputs;
          Alcotest.test_case "standard-seed filter" `Quick test_standard_seed_filter;
        ] );
      ( "fuzzers",
        [
          Alcotest.test_case "OpFuzz type-aware" `Quick test_opfuzz_type_aware;
          Alcotest.test_case "OpFuzz classes" `Quick test_opfuzz_classes_share_rank;
          Alcotest.test_case "OpFuzz mutates" `Quick test_opfuzz_actually_mutates;
          Alcotest.test_case "TypeFuzz sorted generation" `Quick test_typefuzz_generates_sorted;
          Alcotest.test_case "HistFuzz atoms" `Quick test_histfuzz_harvests_atoms;
          Alcotest.test_case "parse rates" `Slow test_baselines_emit_parseable;
          Alcotest.test_case "Fuzz4All ~50% invalid" `Slow test_fuzz4all_invalid_rate;
          Alcotest.test_case "Fuzz4All LLM cost" `Quick test_fuzz4all_costs_llm_calls;
          Alcotest.test_case "ET from scratch" `Quick test_et_needs_no_seeds;
          Alcotest.test_case "YinYang fusion" `Quick test_yinyang_fuses_two_seeds;
          Alcotest.test_case "Once4All wrappers" `Slow test_once4all_wrapper;
        ] );
    ]
