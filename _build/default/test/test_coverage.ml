module Coverage = O4a_coverage.Coverage

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* use a private namespace so the solver engines' registrations don't
   interfere with counts that matter here *)
let fresh_func =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "testfn_%d" !n

let test_register_idempotent () =
  let f = fresh_func () in
  let p1 = Coverage.register ~solver:Coverage.Zeal ~file:"t.cpp" ~func:f ~kind:Coverage.Line "x" in
  let p2 = Coverage.register ~solver:Coverage.Zeal ~file:"t.cpp" ~func:f ~kind:Coverage.Line "x" in
  Coverage.hit p1;
  check_int "same point" 1 (Coverage.hit_count p2)

let test_distinct_solvers_distinct_points () =
  let f = fresh_func () in
  let pz = Coverage.register ~solver:Coverage.Zeal ~file:"t.cpp" ~func:f ~kind:Coverage.Line "y" in
  let pc = Coverage.register ~solver:Coverage.Cove ~file:"t.cpp" ~func:f ~kind:Coverage.Line "y" in
  Coverage.hit pz;
  check_int "cove untouched" 0 (Coverage.hit_count pc);
  check_int "zeal hit" 1 (Coverage.hit_count pz)

let test_register_lines_function_chain () =
  let f = fresh_func () in
  let lines = Coverage.register_lines ~solver:Coverage.Zeal ~file:"chain.cpp" ~func:f 3 in
  check_int "three line points" 3 (Array.length lines);
  let before = Coverage.snapshot Coverage.Zeal in
  Coverage.hit lines.(0);
  let after = Coverage.snapshot Coverage.Zeal in
  (* hitting line 0 also marks the function as hit *)
  check_int "one more line hit" (before.Coverage.lines_hit + 1) after.Coverage.lines_hit;
  check_int "one more func hit" (before.Coverage.funcs_hit + 1) after.Coverage.funcs_hit

let test_snapshot_percentages () =
  let s = { Coverage.lines_total = 200; lines_hit = 50; funcs_total = 40; funcs_hit = 10 } in
  Alcotest.(check (float 0.001)) "line pct" 25.0 (Coverage.line_pct s);
  Alcotest.(check (float 0.001)) "func pct" 25.0 (Coverage.func_pct s)

let test_empty_snapshot_pct () =
  let s = { Coverage.lines_total = 0; lines_hit = 0; funcs_total = 0; funcs_hit = 0 } in
  Alcotest.(check (float 0.001)) "0 of 0" 0.0 (Coverage.line_pct s)

let test_reset () =
  let f = fresh_func () in
  let p = Coverage.register ~solver:Coverage.Cove ~file:"r.cpp" ~func:f ~kind:Coverage.Line "z" in
  Coverage.hit p;
  Coverage.hit p;
  check_int "counted" 2 (Coverage.hit_count p);
  Coverage.reset ();
  check_int "reset to zero" 0 (Coverage.hit_count p)

let test_hit_point_labels () =
  Coverage.reset ();
  let f = fresh_func () in
  let p = Coverage.register ~solver:Coverage.Cove ~file:"lbl.cpp" ~func:f ~kind:Coverage.Line "7" in
  Coverage.hit p;
  let labels = Coverage.hit_point_labels Coverage.Cove in
  check_bool "label present" true
    (List.mem (Printf.sprintf "lbl.cpp:%s:7" f) labels)

let test_totals_grow_with_registration () =
  let before = Coverage.total_points Coverage.Zeal in
  let f = fresh_func () in
  ignore (Coverage.register ~solver:Coverage.Zeal ~file:"g.cpp" ~func:f ~kind:Coverage.Function "e");
  check_int "one more" (before + 1) (Coverage.total_points Coverage.Zeal)

let test_engine_coverage_accumulates () =
  Coverage.reset ();
  let zeal = Solver.Engine.zeal () in
  let before = Coverage.snapshot Coverage.Zeal in
  ignore
    (Solver.Runner.run_source zeal
       "(declare-fun x () Int)\n(assert (< x 2))\n(check-sat)");
  let after = Coverage.snapshot Coverage.Zeal in
  check_bool "lines grew" true (after.Coverage.lines_hit > before.Coverage.lines_hit);
  check_bool "functions grew" true (after.Coverage.funcs_hit > before.Coverage.funcs_hit)

let test_extension_ops_only_hit_cove () =
  Coverage.reset ();
  let zeal = Solver.Engine.zeal () in
  let cove = Solver.Engine.cove () in
  let src = "(declare-fun a () (Set Int))\n(assert (set.member 1 a))\n(check-sat)" in
  ignore (Solver.Runner.run_source zeal src);
  ignore (Solver.Runner.run_source cove src);
  let cove_sets =
    List.filter
      (fun l -> O4a_util.Strx.contains_sub ~sub:"theory/sets" l)
      (Coverage.hit_point_labels Coverage.Cove)
  in
  let zeal_sets =
    List.filter
      (fun l -> O4a_util.Strx.contains_sub ~sub:"sets" l)
      (Coverage.hit_point_labels Coverage.Zeal)
  in
  check_bool "cove reaches sets code" true (cove_sets <> []);
  check_bool "zeal has no sets code" true (zeal_sets = [])

let test_cold_files_never_hit () =
  Coverage.reset ();
  let cove = Solver.Engine.cove () in
  ignore (Solver.Runner.run_source cove "(assert true)(check-sat)");
  let cold =
    List.filter
      (fun l -> O4a_util.Strx.contains_sub ~sub:"lfsc_printer" l)
      (Coverage.hit_point_labels Coverage.Cove)
  in
  check_bool "cold code untouched" true (cold = [])

let () =
  Alcotest.run "coverage"
    [
      ( "registry",
        [
          Alcotest.test_case "register idempotent" `Quick test_register_idempotent;
          Alcotest.test_case "solvers isolated" `Quick test_distinct_solvers_distinct_points;
          Alcotest.test_case "line->function chain" `Quick test_register_lines_function_chain;
          Alcotest.test_case "percentages" `Quick test_snapshot_percentages;
          Alcotest.test_case "empty percentages" `Quick test_empty_snapshot_pct;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "hit labels" `Quick test_hit_point_labels;
          Alcotest.test_case "totals grow" `Quick test_totals_grow_with_registration;
        ] );
      ( "integration",
        [
          Alcotest.test_case "engine accumulates" `Quick test_engine_coverage_accumulates;
          Alcotest.test_case "extension ops only in cove" `Quick test_extension_ops_only_hit_cove;
          Alcotest.test_case "cold files never hit" `Quick test_cold_files_never_hit;
        ] );
    ]
