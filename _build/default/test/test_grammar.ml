module Cfg = Grammar_kit.Cfg
module Ebnf = Grammar_kit.Ebnf
module Generate = Grammar_kit.Generate

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tiny =
  {|bool ::= "true" | "(not " bool ")" | @hook
int ::= "0" | "(succ " int ")"
|}

let parsed = Ebnf.parse_exn tiny

(* ------------------------- EBNF parsing ------------------------- *)

let test_parse_shape () =
  check_int "two productions" 2 (List.length parsed.Cfg.productions);
  Alcotest.(check string) "start" "bool" parsed.Cfg.start;
  match Cfg.find parsed "bool" with
  | Some p -> check_int "three alternatives" 3 (List.length p.Cfg.alternatives)
  | None -> Alcotest.fail "bool production missing"

let test_parse_symbols () =
  match Cfg.find parsed "bool" with
  | Some { Cfg.alternatives = [ [ Cfg.Lit "true" ];
                                [ Cfg.Lit "(not "; Cfg.Ref "bool"; Cfg.Lit ")" ];
                                [ Cfg.Hook "hook" ] ]; _ } -> ()
  | _ -> Alcotest.fail "alternative symbols wrong"

let test_parse_multiline_production () =
  let g = Ebnf.parse_exn "a ::= \"x\"\n  | \"y\"\n  | \"z\"\nb ::= a" in
  (match Cfg.find g "a" with
  | Some p -> check_int "three alts" 3 (List.length p.Cfg.alternatives)
  | None -> Alcotest.fail "a missing");
  check_int "two prods" 2 (List.length g.Cfg.productions)

let test_parse_errors () =
  check_bool "empty" true (Result.is_error (Ebnf.parse ""));
  check_bool "no def" true (Result.is_error (Ebnf.parse "\"just a literal\""));
  check_bool "empty hook" true (Result.is_error (Ebnf.parse "a ::= @"));
  check_bool "unterminated string" true (Result.is_error (Ebnf.parse "a ::= \"x"))

let test_round_trip () =
  let printed = Cfg.to_string parsed in
  let reparsed = Ebnf.parse_exn printed in
  check_bool "round trip" true (reparsed = parsed)

(* ------------------------- Validation ------------------------- *)

let test_validate_ok () =
  check_bool "tiny valid" true (Cfg.validate parsed = Ok ())

let test_validate_undefined_ref () =
  let g = Ebnf.parse_exn "a ::= b" in
  match Cfg.validate g with
  | Error msg -> check_bool "names b" true (O4a_util.Strx.contains_sub ~sub:"b" msg)
  | Ok () -> Alcotest.fail "undefined ref accepted"

let test_validate_unproductive () =
  let g = Ebnf.parse_exn "a ::= \"(\" a \")\"" in
  match Cfg.validate g with
  | Error msg -> check_bool "unproductive" true (O4a_util.Strx.contains_sub ~sub:"finite" msg)
  | Ok () -> Alcotest.fail "unproductive grammar accepted"

let test_min_depths () =
  let depths = Cfg.min_depths parsed in
  check_int "bool depth" 1 (List.assoc "bool" depths);
  check_int "int depth" 1 (List.assoc "int" depths);
  let g = Ebnf.parse_exn "a ::= \"x\" | b\nb ::= a \" \" a | \"y\"" in
  let depths = Cfg.min_depths g in
  check_int "a min" 1 (List.assoc "a" depths);
  check_int "b min" 1 (List.assoc "b" depths)

let test_hooks_listed () =
  check_bool "hook found" true (Cfg.hooks parsed = [ "hook" ])

let test_map_alternatives () =
  (* dropping every recursive alternative leaves only terminals *)
  let g =
    Cfg.map_alternatives
      (fun _ alt ->
        if List.exists (function Cfg.Ref _ -> true | _ -> false) alt then None
        else Some alt)
      parsed
  in
  match Cfg.find g "bool" with
  | Some p -> check_int "two alts left" 2 (List.length p.Cfg.alternatives)
  | None -> Alcotest.fail "bool dropped"

let test_add_alternative () =
  let g = Cfg.add_alternative parsed "bool" [ Cfg.Lit "false" ] in
  (match Cfg.find g "bool" with
  | Some p -> check_int "four alts" 4 (List.length p.Cfg.alternatives)
  | None -> Alcotest.fail "missing");
  let g2 = Cfg.add_alternative parsed "fresh" [ Cfg.Lit "new" ] in
  check_bool "new production" true (Cfg.find g2 "fresh" <> None)

(* ------------------------- Generation ------------------------- *)

let const_hook name = "<" ^ name ^ ">"

let test_generation_terminates_and_matches () =
  let rng = O4a_util.Rng.create 5 in
  for _ = 1 to 200 do
    match Generate.sentence ~cfg:parsed ~hook:const_hook ~rng "bool" with
    | Ok s ->
      check_bool "derivable text" true
        (s = "true" || s = "<hook>"
        || O4a_util.Strx.starts_with ~prefix:"(not " s)
    | Error msg -> Alcotest.failf "generation failed: %s" msg
  done

let test_generation_depth_budget () =
  let rng = O4a_util.Rng.create 5 in
  (* budget 1 cannot expand the recursive alternative *)
  for _ = 1 to 50 do
    match Generate.sentence ~max_depth:1 ~cfg:parsed ~hook:const_hook ~rng "bool" with
    | Ok s -> check_bool "leaf only" true (s = "true" || s = "<hook>")
    | Error msg -> Alcotest.failf "budget generation failed: %s" msg
  done

let test_generation_unknown_start () =
  let rng = O4a_util.Rng.create 5 in
  check_bool "unknown start" true
    (Result.is_error (Generate.sentence ~cfg:parsed ~hook:const_hook ~rng "nope"))

let test_generation_reaches_all_alternatives () =
  let rng = O4a_util.Rng.create 17 in
  let seen_not = ref false and seen_hook = ref false and seen_true = ref false in
  for _ = 1 to 300 do
    match Generate.sentence ~cfg:parsed ~hook:const_hook ~rng "bool" with
    | Ok s ->
      if s = "true" then seen_true := true;
      if s = "<hook>" then seen_hook := true;
      if O4a_util.Strx.starts_with ~prefix:"(not" s then seen_not := true
    | Error _ -> ()
  done;
  check_bool "true seen" true !seen_true;
  check_bool "hook seen" true !seen_hook;
  check_bool "recursion seen" true !seen_not

let test_sentences_batch () =
  let rng = O4a_util.Rng.create 23 in
  let out = Generate.sentences ~cfg:parsed ~hook:const_hook ~rng ~count:25 "bool" in
  check_int "all produced" 25 (List.length out)

let generation_props =
  [
    QCheck.Test.make ~name:"ground-truth grammars always derive" ~count:60
      QCheck.(pair small_int (int_range 0 11))
      (fun (seed, theory_idx) ->
        let theory = List.nth Theories.Theory.all theory_idx in
        let cfg =
          Ebnf.parse_exn (Theories.Theory.ground_truth_cfg theory.Theories.Theory.id)
        in
        let rng = O4a_util.Rng.create seed in
        match Generate.sentence ~cfg ~hook:const_hook ~rng cfg.Cfg.start with
        | Ok s -> String.length s > 0
        | Error _ -> false);
  ]

let () =
  Alcotest.run "grammar"
    [
      ( "ebnf",
        [
          Alcotest.test_case "shape" `Quick test_parse_shape;
          Alcotest.test_case "symbols" `Quick test_parse_symbols;
          Alcotest.test_case "multiline" `Quick test_parse_multiline_production;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "round trip" `Quick test_round_trip;
        ] );
      ( "validation",
        [
          Alcotest.test_case "valid" `Quick test_validate_ok;
          Alcotest.test_case "undefined ref" `Quick test_validate_undefined_ref;
          Alcotest.test_case "unproductive" `Quick test_validate_unproductive;
          Alcotest.test_case "min depths" `Quick test_min_depths;
          Alcotest.test_case "hooks" `Quick test_hooks_listed;
          Alcotest.test_case "map alternatives" `Quick test_map_alternatives;
          Alcotest.test_case "add alternative" `Quick test_add_alternative;
        ] );
      ( "generation",
        [
          Alcotest.test_case "terminates" `Quick test_generation_terminates_and_matches;
          Alcotest.test_case "depth budget" `Quick test_generation_depth_budget;
          Alcotest.test_case "unknown start" `Quick test_generation_unknown_start;
          Alcotest.test_case "covers alternatives" `Quick
            test_generation_reaches_all_alternatives;
          Alcotest.test_case "batch" `Quick test_sentences_batch;
        ]
        @ List.map QCheck_alcotest.to_alcotest generation_props );
    ]
