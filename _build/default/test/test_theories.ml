open Smtlib
open Theories

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ok_sort = function Ok s -> Sort.to_string s | Error e -> "ERROR: " ^ e

let check_app name args expected =
  Alcotest.(check string)
    (Printf.sprintf "(%s %s)" name (String.concat " " (List.map Sort.to_string args)))
    expected
    (ok_sort (Signature.app name args))

let check_app_err name args needle =
  match Signature.app name args with
  | Ok s -> Alcotest.failf "expected error, got %s" (Sort.to_string s)
  | Error msg ->
    check_bool
      (Printf.sprintf "error mentions %s (got: %s)" needle msg)
      true
      (O4a_util.Strx.contains_sub ~sub:needle msg)

(* ------------------------- Signature: core ------------------------- *)

let test_core_ops () =
  check_app "not" [ Sort.Bool ] "Bool";
  check_app "and" [ Sort.Bool; Sort.Bool; Sort.Bool ] "Bool";
  check_app "=" [ Sort.Int; Sort.Int ] "Bool";
  check_app "=" [ Sort.Seq Sort.Int; Sort.Seq Sort.Int ] "Bool";
  check_app "distinct" [ Sort.Bool; Sort.Bool ] "Bool";
  check_app "ite" [ Sort.Bool; Sort.Int; Sort.Int ] "Int";
  check_app_err "and" [ Sort.Bool ] "at least two";
  check_app_err "=" [ Sort.Int; Sort.Bool ] "same sort";
  check_app_err "ite" [ Sort.Bool; Sort.Int; Sort.Bool ] "same sort";
  check_app_err "not" [ Sort.Int ] "one Bool"

let test_numeric_coercion () =
  (* mixed Int/Real mirror solver permissiveness *)
  check_app "=" [ Sort.Int; Sort.Real ] "Bool";
  check_app "+" [ Sort.Int; Sort.Real ] "Real";
  check_app "+" [ Sort.Int; Sort.Int ] "Int";
  check_app "/" [ Sort.Int; Sort.Int ] "Real";
  check_app "<" [ Sort.Real; Sort.Int ] "Bool";
  check_app_err "+" [ Sort.Int; Sort.Bool ] "Int or Real"

let test_arith_ops () =
  check_app "-" [ Sort.Int ] "Int";
  check_app "-" [ Sort.Real ] "Real";
  check_app "div" [ Sort.Int; Sort.Int ] "Int";
  check_app "abs" [ Sort.Int ] "Int";
  check_app "to_real" [ Sort.Int ] "Real";
  check_app "to_int" [ Sort.Real ] "Int";
  check_app "is_int" [ Sort.Real ] "Bool";
  check_app_err "div" [ Sort.Real; Sort.Real ] "Int";
  check_app_err "abs" [ Sort.Real ] "Int"

(* ------------------------- Signature: bit-vectors ------------------------- *)

let bv n = Sort.Bitvec n

let test_bv_ops () =
  check_app "bvadd" [ bv 4; bv 4 ] "(_ BitVec 4)";
  check_app "concat" [ bv 3; bv 5 ] "(_ BitVec 8)";
  check_app "bvult" [ bv 4; bv 4 ] "Bool";
  check_app "bvcomp" [ bv 4; bv 4 ] "(_ BitVec 1)";
  check_app "bv2nat" [ bv 8 ] "Int";
  check_app_err "bvadd" [ bv 4; bv 8 ] "equal width";
  check_app_err "bvult" [ bv 2; bv 3 ] "equal width";
  check_app_err "bvadd" [ bv 4 ] "at least two"

let test_bv_indexed () =
  let chk name idxs args expected =
    Alcotest.(check string) name expected (ok_sort (Signature.indexed name idxs args))
  in
  chk "extract" [ Term.Idx_num 3; Term.Idx_num 1 ] [ bv 8 ] "(_ BitVec 3)";
  chk "zero_extend" [ Term.Idx_num 4 ] [ bv 4 ] "(_ BitVec 8)";
  chk "int2bv" [ Term.Idx_num 5 ] [ Sort.Int ] "(_ BitVec 5)";
  chk "repeat" [ Term.Idx_num 3 ] [ bv 2 ] "(_ BitVec 6)";
  (match Signature.indexed "extract" [ Term.Idx_num 9; Term.Idx_num 1 ] [ bv 8 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "extract beyond width accepted");
  match Signature.indexed "bv7" [ Term.Idx_num 4 ] [] with
  | Ok (Sort.Bitvec 4) -> ()
  | _ -> Alcotest.fail "(_ bv7 4)"

(* ------------------------- Signature: strings ------------------------- *)

let s = Sort.String_sort

let test_string_ops () =
  check_app "str.++" [ s; s; s ] "String";
  check_app "str.len" [ s ] "Int";
  check_app "str.substr" [ s; Sort.Int; Sort.Int ] "String";
  check_app "str.contains" [ s; s ] "Bool";
  check_app "str.in_re" [ s; Sort.Reglan ] "Bool";
  check_app "re.union" [ Sort.Reglan; Sort.Reglan ] "RegLan";
  check_app "re.*" [ Sort.Reglan ] "RegLan";
  check_app "re.range" [ s; s ] "RegLan";
  check_app_err "str.len" [ Sort.Int ] "str.len";
  check_app_err "str.++" [ s; Sort.Int ] "String"

(* ------------------------- Signature: containers ------------------------- *)

let test_seq_ops () =
  let si = Sort.Seq Sort.Int in
  check_app "seq.unit" [ Sort.Int ] "(Seq Int)";
  check_app "seq.len" [ si ] "Int";
  check_app "seq.nth" [ si; Sort.Int ] "Int";
  check_app "seq.rev" [ si ] "(Seq Int)";
  check_app "seq.update" [ si; Sort.Int; si ] "(Seq Int)";
  check_app_err "seq.nth" [ si; s ] "seq.nth";
  check_app_err "seq.contains" [ si; Sort.Seq Sort.Bool ] "seq.contains"

let test_set_ops () =
  let si = Sort.Set Sort.Int in
  check_app "set.singleton" [ Sort.Int ] "(Set Int)";
  check_app "set.member" [ Sort.Int; si ] "Bool";
  check_app "set.card" [ si ] "Int";
  check_app "set.insert" [ Sort.Int; Sort.Int; si ] "(Set Int)";
  check_app "set.complement" [ si ] "(Set Int)";
  check_app "set.choose" [ si ] "Int";
  check_app_err "set.member" [ Sort.Bool; si ] "set.member"

let test_relation_ops () =
  let rel = Sort.Set (Sort.Tuple [ Sort.Int; Sort.Int ]) in
  check_app "rel.transpose" [ rel ] "(Set (Tuple Int Int))";
  check_app "rel.join" [ rel; rel ] "(Set (Tuple Int Int))";
  check_app "rel.product" [ rel; rel ] "(Set (Tuple Int Int Int Int))";
  check_app "tuple" [ Sort.Int; Sort.Bool ] "(Tuple Int Bool)";
  (* the Figure 10b condition: joining nullary relations is a type error *)
  let urel = Sort.Set (Sort.Tuple []) in
  check_app_err "rel.join" [ urel; urel ] "non-nullary"

let test_bag_ops () =
  let bi = Sort.Bag Sort.Int in
  check_app "bag" [ Sort.Int; Sort.Int ] "(Bag Int)";
  check_app "bag.count" [ Sort.Int; bi ] "Int";
  check_app "bag.union_disjoint" [ bi; bi ] "(Bag Int)";
  check_app "bag.setof" [ bi ] "(Bag Int)";
  check_app "bag.subbag" [ bi; bi ] "Bool";
  check_app_err "bag.count" [ Sort.Bool; bi ] "bag.count"

let test_ff_ops () =
  let f3 = Sort.Finite_field 3 in
  let f5 = Sort.Finite_field 5 in
  check_app "ff.add" [ f3; f3 ] "(_ FiniteField 3)";
  check_app "ff.mul" [ f3; f3; f3 ] "(_ FiniteField 3)";
  check_app "ff.neg" [ f5 ] "(_ FiniteField 5)";
  check_app "ff.bitsum" [ f3; f3 ] "(_ FiniteField 3)";
  check_app_err "ff.add" [ f3; f5 ] "same finite field";
  check_app_err "ff.add" [ f3 ] "at least two"

let test_array_ops () =
  let a = Sort.Array (Sort.Int, Sort.Bool) in
  check_app "select" [ a; Sort.Int ] "Bool";
  check_app "store" [ a; Sort.Int; Sort.Bool ] "(Array Int Bool)";
  check_app_err "select" [ a; Sort.Bool ] "select";
  check_app_err "store" [ a; Sort.Int; Sort.Int ] "store"

let test_qual_and_nullary () =
  check_bool "seq.empty" true
    (Signature.qual "seq.empty" (Sort.Seq Sort.Int) [] = Ok (Sort.Seq Sort.Int));
  check_bool "const array" true
    (Signature.qual "const" (Sort.Array (Sort.Int, Sort.Int)) [ Sort.Int ]
    = Ok (Sort.Array (Sort.Int, Sort.Int)));
  check_bool "const mismatch" true
    (Result.is_error
       (Signature.qual "const" (Sort.Array (Sort.Int, Sort.Int)) [ Sort.Bool ]));
  check_bool "re.none" true (Signature.nullary "re.none" = Some Sort.Reglan);
  check_bool "unknown nullary" true (Signature.nullary "zzz" = None)

let test_is_known_op () =
  List.iter
    (fun op -> check_bool op true (Signature.is_known_op op))
    [ "and"; "bvadd"; "str.len"; "seq.rev"; "set.card"; "bag.count"; "ff.bitsum";
      "rel.join"; "select"; "divisible"; "re.none" ];
  List.iter
    (fun op -> check_bool op false (Signature.is_known_op op))
    [ "foo"; "my_var"; "x1" ]

let test_unknown_op_error () = check_app_err "frobnicate" [ Sort.Int ] "frobnicate"

(* ------------------------- Typecheck ------------------------- *)

let script_of src =
  match Parser.parse_script src with
  | Ok sc -> sc
  | Error e -> Alcotest.failf "parse: %s" (Parser.error_message e)

let check_script_ok src =
  match Typecheck.check_script (script_of src) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "expected well-sorted, got: %s" msg

let check_script_err src needle =
  match Typecheck.check_script (script_of src) with
  | Ok () -> Alcotest.failf "expected sort error (%s)" needle
  | Error msg ->
    check_bool
      (Printf.sprintf "mentions %s (got %s)" needle msg)
      true
      (O4a_util.Strx.contains_sub ~sub:needle msg)

let test_typecheck_ok_scripts () =
  check_script_ok "(declare-fun x () Int)(assert (< x 3))(check-sat)";
  check_script_ok
    "(declare-fun f (Int Int) Bool)(declare-fun a () Int)(assert (f a 1))(check-sat)";
  check_script_ok
    "(define-fun inc ((n Int)) Int (+ n 1))(assert (= (inc 1) 2))(check-sat)";
  check_script_ok
    "(declare-fun s () (Seq Int))(assert (exists ((f Int)) (distinct (seq.len (seq.rev s)) f)))(check-sat)";
  check_script_ok
    "(declare-datatypes ((Lst 0)) (((nil) (cons (head Int) (tail Lst)))))\n(declare-fun l () Lst)(assert ((_ is cons) l))(check-sat)";
  check_script_ok "(declare-fun b () Bool)(assert (let ((c (not b))) (or b c)))(check-sat)";
  check_script_ok
    "(declare-fun r () (Set (Tuple Int Int)))(assert (set.member (tuple 1 2) (rel.join r r)))(check-sat)"

let test_typecheck_errors () =
  check_script_err "(assert (= x 1))(check-sat)" "unknown constant";
  check_script_err "(declare-fun x () Int)(assert x)(check-sat)" "Bool";
  check_script_err
    "(declare-fun x () Int)(declare-fun x () Bool)(check-sat)" "already declared";
  check_script_err
    "(declare-fun f (Int) Int)(assert (= (f true) 0))(check-sat)" "wrong argument sorts";
  check_script_err
    "(declare-fun f (Int) Int)(assert (= f 0))(check-sat)" "used as a constant";
  check_script_err "(define-fun g () Int true)(check-sat)" "declared";
  check_script_err
    "(declare-fun v () (_ BitVec 2))(assert (= (bvadd v #b001) v))(check-sat)"
    "equal width";
  check_script_err
    "(declare-fun r () (Set UnitTuple))(assert (set.subset (rel.join r r) r))(check-sat)"
    "non-nullary"

let test_typecheck_placeholders () =
  let src = "(declare-fun p () Bool)(assert (or p <placeholder>))(check-sat)" in
  check_bool "rejected by default" true
    (Result.is_error (Typecheck.check_script (script_of src)));
  check_bool "allowed with flag" true
    (Result.is_ok (Typecheck.check_script ~allow_placeholders:true (script_of src)))

let test_typecheck_quantifier_scope () =
  check_script_ok "(assert (forall ((x Int)) (exists ((y Int)) (< x y))))(check-sat)";
  check_script_err "(assert (forall ((x Int)) x))(check-sat)" "Bool"

let test_typecheck_match () =
  let dt = "(declare-datatypes ((Lst 0)) (((nil) (cons (head Int) (tail Lst)))))\n" in
  check_script_ok
    (dt ^ "(declare-fun l () Lst)(assert (= (match l ((nil 0) ((cons h t) h))) 1))(check-sat)");
  check_script_ok
    (dt ^ "(declare-fun l () Lst)(assert (match l (((cons h t) (> h 0)) (_ false))))(check-sat)");
  check_script_ok
    (dt ^ "(declare-fun l () Lst)(assert (= l (match l ((other other)))))(check-sat)");
  (* non-exhaustive without a catch-all *)
  check_script_err
    (dt ^ "(declare-fun l () Lst)(assert (match l (((cons h t) true))))(check-sat)")
    "exhaustive";
  (* binder arity must match the constructor *)
  check_script_err
    (dt ^ "(declare-fun l () Lst)(assert (match l (((cons h) true) (_ false))))(check-sat)")
    "binders";
  (* case sorts must agree *)
  check_script_err
    (dt ^ "(declare-fun l () Lst)(assert (= 0 (match l ((nil 0) (_ false)))))(check-sat)")
    "disagree";
  (* scrutinee must be a datatype *)
  check_script_err
    "(declare-fun x () Int)(assert (= 0 (match x ((_ 0)))))(check-sat)" "datatype";
  (* foreign constructor *)
  check_script_err
    (dt ^ "(declare-fun l () Lst)(assert (match l (((mk a b) true) (_ false))))(check-sat)")
    "constructor"

let test_infer_shadowing () =
  let script = script_of "(declare-fun x () Int)(check-sat)" in
  let env = Typecheck.env_of_script script in
  let env' = Typecheck.add_var "x" Sort.Bool env in
  (match Typecheck.infer env' (Term.var "x") with
  | Ok Sort.Bool -> ()
  | _ -> Alcotest.fail "local binding should shadow the declaration");
  match Typecheck.infer env (Term.var "x") with
  | Ok Sort.Int -> ()
  | _ -> Alcotest.fail "declaration visible"

(* ------------------------- Theory registry ------------------------- *)

let test_registry_complete () =
  check_int "twelve theories" 12 (List.length Theory.all);
  List.iter
    (fun (t : Theory.info) ->
      check_bool (t.Theory.key ^ " doc nonempty") true
        (String.length (Theory.doc t.Theory.id) > 100);
      check_bool (t.Theory.key ^ " cfg nonempty") true
        (String.length (Theory.ground_truth_cfg t.Theory.id) > 40);
      check_bool (t.Theory.key ^ " find_by_key") true
        (Theory.find_by_key t.Theory.key = Some t))
    Theory.all

let test_registry_partition () =
  check_int "standard" 8 (List.length Theory.standard_theories);
  check_int "extensions" 4 (List.length Theory.extension_theories);
  List.iter
    (fun (t : Theory.info) ->
      check_bool (t.Theory.key ^ " marked cove") true (t.Theory.extension_of = Some "cove"))
    Theory.extension_theories

let test_ops_are_known () =
  List.iter
    (fun (t : Theory.info) ->
      List.iter
        (fun op ->
          check_bool
            (Printf.sprintf "%s/%s known" t.Theory.key op)
            true (Signature.is_known_op op))
        t.Theory.ops)
    Theory.all

let test_docs_mention_ops () =
  List.iter
    (fun (t : Theory.info) ->
      let doc = Theory.doc t.Theory.id in
      List.iter
        (fun op ->
          check_bool
            (Printf.sprintf "%s doc mentions %s" t.Theory.key op)
            true
            (O4a_util.Strx.contains_sub ~sub:op doc))
        t.Theory.ops)
    Theory.all

let test_ground_truth_cfgs_parse_and_validate () =
  List.iter
    (fun (t : Theory.info) ->
      match Grammar_kit.Ebnf.parse (Theory.ground_truth_cfg t.Theory.id) with
      | Error msg -> Alcotest.failf "%s grammar: %s" t.Theory.key msg
      | Ok cfg -> (
        match Grammar_kit.Cfg.validate cfg with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "%s grammar invalid: %s" t.Theory.key msg))
    Theory.all

let test_cfg_start_is_bool () =
  List.iter
    (fun (t : Theory.info) ->
      let cfg = Grammar_kit.Ebnf.parse_exn (Theory.ground_truth_cfg t.Theory.id) in
      Alcotest.(check string) (t.Theory.key ^ " start") "bool" cfg.Grammar_kit.Cfg.start)
    Theory.all

let () =
  Alcotest.run "theories"
    [
      ( "signature core/arith",
        [
          Alcotest.test_case "core ops" `Quick test_core_ops;
          Alcotest.test_case "numeric coercion" `Quick test_numeric_coercion;
          Alcotest.test_case "arith ops" `Quick test_arith_ops;
        ] );
      ( "signature bv/strings",
        [
          Alcotest.test_case "bv ops" `Quick test_bv_ops;
          Alcotest.test_case "bv indexed" `Quick test_bv_indexed;
          Alcotest.test_case "string ops" `Quick test_string_ops;
        ] );
      ( "signature extensions",
        [
          Alcotest.test_case "seq" `Quick test_seq_ops;
          Alcotest.test_case "sets" `Quick test_set_ops;
          Alcotest.test_case "relations" `Quick test_relation_ops;
          Alcotest.test_case "bags" `Quick test_bag_ops;
          Alcotest.test_case "finite fields" `Quick test_ff_ops;
          Alcotest.test_case "arrays" `Quick test_array_ops;
          Alcotest.test_case "qualified/nullary" `Quick test_qual_and_nullary;
          Alcotest.test_case "is_known_op" `Quick test_is_known_op;
          Alcotest.test_case "unknown op" `Quick test_unknown_op_error;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "well-sorted scripts" `Quick test_typecheck_ok_scripts;
          Alcotest.test_case "sort errors" `Quick test_typecheck_errors;
          Alcotest.test_case "placeholders" `Quick test_typecheck_placeholders;
          Alcotest.test_case "quantifier scope" `Quick test_typecheck_quantifier_scope;
          Alcotest.test_case "match" `Quick test_typecheck_match;
          Alcotest.test_case "shadowing" `Quick test_infer_shadowing;
        ] );
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "partition" `Quick test_registry_partition;
          Alcotest.test_case "ops known" `Quick test_ops_are_known;
          Alcotest.test_case "docs mention ops" `Quick test_docs_mention_ops;
          Alcotest.test_case "cfgs parse+validate" `Quick
            test_ground_truth_cfgs_parse_and_validate;
          Alcotest.test_case "cfg start symbol" `Quick test_cfg_start_is_bool;
        ] );
    ]
