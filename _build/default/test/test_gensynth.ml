module Flaw = Gensynth.Flaw
module Generator = Gensynth.Generator
module Synthesis = Gensynth.Synthesis
module Theory = Theories.Theory
module Cfg = Grammar_kit.Cfg

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let solvers = [ Solver.Engine.zeal (); Solver.Engine.cove () ]

(* ------------------------- Flaw categorization ------------------------- *)

let test_categorize_errors () =
  let cat msg = Flaw.category_to_string (Flaw.categorize_error msg) in
  Alcotest.(check string) "width" "width"
    (cat "the function 'bvadd' expects bit-vector arguments of equal width, got ...");
  Alcotest.(check string) "field" "field"
    (cat "the function 'ff.add' expects arguments in the same finite field, got ...");
  Alcotest.(check string) "nullary join" "nullary-join" (cat "Join requires non-nullary relations");
  Alcotest.(check string) "unknown sym" "unknown-symbol(seq.reverse)"
    (cat "unknown constant or function symbol 'seq.reverse'");
  Alcotest.(check string) "unknown op" "unknown-symbol(set.unite)"
    (cat "unknown set operator 'set.unite'");
  Alcotest.(check string) "parse" "parse" (cat "parse error: unbalanced parentheses");
  Alcotest.(check string) "arity" "arity" (cat "the function 'abs' expects %d arguments, got 2"
    |> fun s -> s);
  Alcotest.(check string) "literal" "literal" (cat "expected a term of sort Int, got Real")

let test_flaw_matching () =
  check_bool "width fix" true (Flaw.runtime_matches Flaw.C_width Flaw.Width_mismatch);
  check_bool "field fix" true (Flaw.runtime_matches Flaw.C_field Flaw.Field_mismatch);
  check_bool "var decl fix" true
    (Flaw.runtime_matches (Flaw.C_unknown_symbol "int3") Flaw.Missing_declaration);
  check_bool "op not a var" false
    (Flaw.runtime_matches (Flaw.C_unknown_symbol "seq.reverse") Flaw.Missing_declaration);
  check_bool "halluc fix" true
    (Flaw.defect_matches (Flaw.C_unknown_symbol "seq.reverse")
       (Flaw.Hallucinate { lhs = "seq"; alt_idx = 0; from_op = "seq.rev"; to_op = "seq.reverse" }));
  check_bool "halluc wrong target" false
    (Flaw.defect_matches (Flaw.C_unknown_symbol "other")
       (Flaw.Hallucinate { lhs = "seq"; alt_idx = 0; from_op = "seq.rev"; to_op = "seq.reverse" }));
  check_bool "omission never repaired" false
    (Flaw.defect_matches Flaw.C_parse (Flaw.Drop_alt { lhs = "bool"; alt_idx = 0 }));
  check_bool "unit join" true (Flaw.defect_matches Flaw.C_nullary_join Flaw.Unit_join)

(* ------------------------- Generator: perfect emission ------------------------- *)

(* the central invariant: a defect-free generator emits only valid terms *)
let test_perfect_generators_always_valid () =
  List.iter
    (fun (theory : Theory.info) ->
      let gen = Generator.perfect theory in
      let rng = O4a_util.Rng.create (Hashtbl.hash theory.Theory.key) in
      for i = 1 to 30 do
        match Generator.generate gen ~rng with
        | emitted ->
          let source = Generator.render_script [ emitted ] in
          let valid =
            List.exists
              (fun s -> Result.is_ok (Solver.Engine.parse_check s source))
              solvers
          in
          if not valid then
            Alcotest.failf "%s sample %d invalid:\n%s" theory.Theory.key i source
        | exception Failure msg ->
          Alcotest.failf "%s generation failed: %s" theory.Theory.key msg
      done)
    Theory.all

let test_generator_decls_cover_term_vars () =
  let gen = Generator.perfect (Theory.find Theory.Seq) in
  let rng = O4a_util.Rng.create 4 in
  for _ = 1 to 20 do
    let e = Generator.generate gen ~rng in
    match Smtlib.Parser.parse_term e.Generator.term with
    | Ok t ->
      let declared =
        List.filter_map
          (fun line ->
            match Smtlib.Parser.parse_script line with
            | Ok [ Smtlib.Command.Declare_fun (n, [], _) ] -> Some n
            | _ -> None)
          e.Generator.decls
      in
      List.iter
        (fun v ->
          check_bool (v ^ " declared") true
            (List.mem v declared || Theories.Signature.is_known_op v))
        (Smtlib.Term.free_vars t)
    | Error _ -> Alcotest.fail "perfect seq term should parse"
  done

let test_generate_of_sort_well_sorted () =
  (* the mixed-sorts extension: per-sort emission typechecks at the sort *)
  let cases =
    [ (Theory.Ints, Smtlib.Sort.Int); (Theory.Reals, Smtlib.Sort.Real);
      (Theory.Strings, Smtlib.Sort.String_sort);
      (Theory.Bitvectors, Smtlib.Sort.Bitvec 3);
      (Theory.Finite_fields, Smtlib.Sort.Finite_field 5);
      (Theory.Seq, Smtlib.Sort.Seq Smtlib.Sort.Int);
      (Theory.Sets, Smtlib.Sort.Set Smtlib.Sort.Int);
      (Theory.Bags, Smtlib.Sort.Bag Smtlib.Sort.Int);
      (Theory.Arrays, Smtlib.Sort.Array (Smtlib.Sort.Int, Smtlib.Sort.Int)) ]
  in
  let rng = O4a_util.Rng.create 31 in
  List.iter
    (fun (id, sort) ->
      let gen = Generator.perfect (Theory.find id) in
      check_bool (Smtlib.Sort.to_string sort ^ " supported") true
        (Generator.supports_sort gen sort);
      for _ = 1 to 10 do
        match Generator.generate_of_sort gen ~rng sort with
        | None -> Alcotest.failf "no emission for %s" (Smtlib.Sort.to_string sort)
        | Some e -> (
          let decls = String.concat "\n" e.Generator.decls in
          let source =
            Printf.sprintf "%s\n(define-fun probe () %s %s)\n(check-sat)" decls
              (Smtlib.Sort.to_string sort) e.Generator.term
          in
          match Smtlib.Parser.parse_script source with
          | Error err ->
            Alcotest.failf "parse (%s): %s\n%s" (Smtlib.Sort.to_string sort)
              (Smtlib.Parser.error_message err) source
          | Ok script -> (
            match Theories.Typecheck.check_script script with
            | Ok () -> ()
            | Error msg ->
              Alcotest.failf "sort mismatch (%s): %s\n%s" (Smtlib.Sort.to_string sort)
                msg source))
      done)
    cases

let test_generate_of_sort_unsupported () =
  let gen = Generator.perfect (Theory.find Theory.Core) in
  check_bool "core has no int production" true
    (Generator.generate_of_sort gen ~rng:(O4a_util.Rng.create 1) Smtlib.Sort.Int = None);
  check_bool "weird width unsupported" false
    (Generator.supports_sort
       (Generator.perfect (Theory.find Theory.Bitvectors))
       (Smtlib.Sort.Bitvec 17))

(* ------------------------- Defect application ------------------------- *)

let test_hallucination_defect () =
  let theory = Theory.find Theory.Seq in
  let base = Generator.effective_cfg (Generator.perfect theory) in
  let rev_idx =
    match Cfg.find base "seq" with
    | Some p ->
      Option.get
        (O4a_util.Listx.find_index
           (fun alt ->
             List.exists
               (function
                 | Cfg.Lit l -> O4a_util.Strx.contains_sub ~sub:"seq.rev" l
                 | _ -> false)
               alt)
           p.Cfg.alternatives)
    | None -> Alcotest.fail "no seq production"
  in
  let gen =
    {
      (Generator.perfect theory) with
      Generator.defects =
        [ Flaw.Hallucinate
            { lhs = "seq"; alt_idx = rev_idx; from_op = "seq.rev"; to_op = "seq.reverse" } ];
    }
  in
  let cfg = Generator.effective_cfg gen in
  let text = Cfg.to_string cfg in
  check_bool "misspelled op present" true
    (O4a_util.Strx.contains_sub ~sub:"seq.reverse" text);
  check_bool "original op replaced in that alt" true
    (not (O4a_util.Strx.contains_sub ~sub:"(seq.rev " text)
     || O4a_util.Strx.contains_sub ~sub:"seq.rev" text)

let test_arity_break_defect () =
  let theory = Theory.find Theory.Ints in
  (* break the abs alternative: int production, "(abs " int ")" *)
  let base = Generator.effective_cfg (Generator.perfect theory) in
  let abs_idx =
    match Cfg.find base "int" with
    | Some p ->
      O4a_util.Listx.find_index
        (fun alt ->
          List.exists
            (function Cfg.Lit l -> O4a_util.Strx.contains_sub ~sub:"abs" l | _ -> false)
            alt)
        p.Cfg.alternatives
      |> Option.get
    | None -> Alcotest.fail "no int production"
  in
  let gen =
    {
      (Generator.perfect theory) with
      Generator.defects = [ Flaw.Arity_break { lhs = "int"; alt_idx = abs_idx } ];
    }
  in
  let cfg = Generator.effective_cfg gen in
  let p = Option.get (Cfg.find cfg "int") in
  let broken = List.nth p.Cfg.alternatives abs_idx in
  let refs = List.length (List.filter (function Cfg.Ref _ -> true | _ -> false) broken) in
  check_int "one extra operand" 2 refs

let test_drop_alt_defect () =
  let theory = Theory.find Theory.Core in
  let base = Generator.effective_cfg (Generator.perfect theory) in
  let n_before = List.length (Option.get (Cfg.find base "bool")).Cfg.alternatives in
  let gen =
    {
      (Generator.perfect theory) with
      Generator.defects = [ Flaw.Drop_alt { lhs = "bool"; alt_idx = 2 } ];
    }
  in
  let n_after =
    List.length (Option.get (Cfg.find (Generator.effective_cfg gen) "bool")).Cfg.alternatives
  in
  check_int "one fewer alternative" (n_before - 1) n_after

let test_unit_join_defect () =
  let theory = Theory.find Theory.Sets in
  let gen =
    { (Generator.perfect theory) with Generator.defects = [ Flaw.Unit_join ] }
  in
  let cfg = Generator.effective_cfg gen in
  check_bool "urel production added" true (Cfg.find cfg "urel" <> None);
  check_bool "grammar still validates" true (Cfg.validate cfg = Ok ())

let test_flawed_generator_produces_invalid () =
  let theory = Theory.find Theory.Bitvectors in
  let gen =
    { (Generator.perfect theory) with Generator.runtime_flaws = [ Flaw.Width_mismatch ] }
  in
  let rng = O4a_util.Rng.create 21 in
  let invalid = ref 0 in
  for _ = 1 to 40 do
    match Generator.generate gen ~rng with
    | e ->
      let source = Generator.render_script [ e ] in
      if
        not
          (List.exists (fun s -> Result.is_ok (Solver.Engine.parse_check s source)) solvers)
      then incr invalid
    | exception Failure _ -> incr invalid
  done;
  check_bool "width mismatches rejected sometimes" true (!invalid > 0)

let test_is_clean () =
  let theory = Theory.find Theory.Core in
  check_bool "perfect is clean" true (Generator.is_clean (Generator.perfect theory));
  check_bool "omissions stay clean" true
    (Generator.is_clean
       { (Generator.perfect theory) with
         Generator.defects = [ Flaw.Drop_alt { lhs = "bool"; alt_idx = 0 } ] });
  check_bool "runtime flaw is dirty" false
    (Generator.is_clean
       { (Generator.perfect theory) with Generator.runtime_flaws = [ Flaw.Bad_int_literal ] })

(* ------------------------- Synthesis (Algorithm 1) ------------------------- *)

let test_construct_converges () =
  let client = Llm_sim.Client.create ~seed:7 Llm_sim.Profile.gpt4 in
  List.iter
    (fun theory ->
      let _, report = Synthesis.construct ~client ~solvers theory in
      check_bool
        (Printf.sprintf "%s final >= 70%% (got %d/%d)" report.Synthesis.theory_key
           report.final_valid report.sample_num)
        true
        (report.Synthesis.final_valid * 10 >= report.Synthesis.sample_num * 7);
      check_bool "final >= initial" true
        (report.Synthesis.final_valid >= report.Synthesis.initial_valid);
      check_bool "iterations bounded" true
        (report.Synthesis.iterations <= Synthesis.max_iter))
    Theory.all

let test_difficulty_drives_initial_validity () =
  let client = Llm_sim.Client.create ~seed:7 Llm_sim.Profile.gpt4 in
  let report_for id =
    snd (Synthesis.construct ~client ~solvers (Theory.find id))
  in
  let easy = report_for Theory.Reals in
  let hard = report_for Theory.Finite_fields in
  check_bool
    (Printf.sprintf "ff (%d) starts below reals (%d)" hard.Synthesis.initial_valid
       easy.Synthesis.initial_valid)
    true
    (hard.Synthesis.initial_valid <= easy.Synthesis.initial_valid)

let test_construct_deterministic () =
  let run () =
    let client = Llm_sim.Client.create ~seed:11 Llm_sim.Profile.gpt4 in
    let _, report = Synthesis.construct ~client ~solvers (Theory.find Theory.Bags) in
    (report.Synthesis.initial_valid, report.Synthesis.final_valid, report.Synthesis.iterations)
  in
  check_bool "same outcome" true (run () = run ())

let test_zero_iterations_budget () =
  let client = Llm_sim.Client.create ~seed:7 Llm_sim.Profile.gpt4 in
  let _, report =
    Synthesis.construct ~max_iter:0 ~client ~solvers (Theory.find Theory.Finite_fields)
  in
  check_int "no refinement rounds" 0 report.Synthesis.iterations

let test_validate_samples_counts () =
  let rng = O4a_util.Rng.create 3 in
  let valid, errors =
    Synthesis.validate_samples ~solvers ~rng
      (Generator.perfect (Theory.find Theory.Ints))
  in
  check_int "all valid" Synthesis.sample_num valid;
  check_int "no errors" 0 (List.length errors)

let test_llm_call_accounting () =
  let client = Llm_sim.Client.create ~seed:5 Llm_sim.Profile.gpt4 in
  let _ = Synthesis.construct ~client ~solvers (Theory.find Theory.Core) in
  (* at least summarize + implement *)
  check_bool "one-time calls recorded" true (Llm_sim.Client.call_count client >= 2)

let () =
  Alcotest.run "gensynth"
    [
      ( "flaws",
        [
          Alcotest.test_case "error categorization" `Quick test_categorize_errors;
          Alcotest.test_case "repair matching" `Quick test_flaw_matching;
        ] );
      ( "generator",
        [
          Alcotest.test_case "perfect generators always valid" `Slow
            test_perfect_generators_always_valid;
          Alcotest.test_case "declarations cover variables" `Quick
            test_generator_decls_cover_term_vars;
          Alcotest.test_case "per-sort emission well-sorted" `Quick
            test_generate_of_sort_well_sorted;
          Alcotest.test_case "per-sort unsupported" `Quick test_generate_of_sort_unsupported;
          Alcotest.test_case "hallucination defect" `Quick test_hallucination_defect;
          Alcotest.test_case "arity defect" `Quick test_arity_break_defect;
          Alcotest.test_case "omission defect" `Quick test_drop_alt_defect;
          Alcotest.test_case "unit-join defect" `Quick test_unit_join_defect;
          Alcotest.test_case "flawed output rejected" `Quick
            test_flawed_generator_produces_invalid;
          Alcotest.test_case "is_clean" `Quick test_is_clean;
        ] );
      ( "synthesis",
        [
          Alcotest.test_case "converges on every theory" `Slow test_construct_converges;
          Alcotest.test_case "difficulty ordering" `Quick test_difficulty_drives_initial_validity;
          Alcotest.test_case "deterministic" `Quick test_construct_deterministic;
          Alcotest.test_case "zero-iteration budget" `Quick test_zero_iterations_budget;
          Alcotest.test_case "validate_samples" `Quick test_validate_samples_counts;
          Alcotest.test_case "LLM accounting" `Quick test_llm_call_accounting;
        ] );
    ]
