open Smtlib
module Ddsmt = Reduce_kit.Ddsmt

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse_exn src = Result.get_ok (Parser.parse_script src)

(* ------------------------- declaration GC ------------------------- *)

let test_gc_drops_unused () =
  let script =
    parse_exn
      "(declare-fun used () Int)(declare-fun unused () Int)(assert (= used 0))(check-sat)"
  in
  let gcd = Ddsmt.gc_declarations script in
  let names = List.map fst (Script.declared_consts gcd) in
  check_bool "used kept" true (List.mem "used" names);
  check_bool "unused dropped" true (not (List.mem "unused" names))

let test_gc_keeps_datatype_in_use () =
  let script =
    parse_exn
      "(declare-datatypes ((Lst 0)) (((nil) (cons (head Int) (tail Lst)))))\n(declare-fun l () Lst)(assert ((_ is cons) l))(check-sat)"
  in
  let gcd = Ddsmt.gc_declarations script in
  check_bool "datatype kept" true (Script.declared_datatypes gcd <> [])

let test_gc_keeps_define_fun_deps () =
  let script =
    parse_exn
      "(declare-fun base () Int)(define-fun f () Int (+ base 1))(assert (= f 1))(check-sat)"
  in
  let gcd = Ddsmt.gc_declarations script in
  let names = List.map (fun (d : Script.fun_decl) -> d.Script.name) (Script.declared_funs gcd) in
  check_bool "base kept via define-fun body" true (List.mem "base" names)

(* ------------------------- assertion ddmin ------------------------- *)

let test_reduce_drops_irrelevant_assertions () =
  let script =
    parse_exn
      "(declare-fun x () Int)(declare-fun y () Int)\n(assert (= y 2))(assert (< x 0))(assert (> y 1))(check-sat)"
  in
  (* the "bug" only needs the (< x 0) assertion *)
  let still_triggers s =
    List.exists
      (fun a -> Term.exists_node (fun n -> n = Term.App ("<", [ Term.var "x"; Term.int 0 ])) a)
      (Script.assertions s)
  in
  let reduced, stats = Ddsmt.reduce ~still_triggers script in
  check_int "one assertion left" 1 (List.length (Script.assertions reduced));
  check_bool "still triggers" true (still_triggers reduced);
  check_bool "got smaller" true (stats.Ddsmt.final_size < stats.Ddsmt.initial_size)

let test_reduce_shrinks_terms () =
  let script =
    parse_exn
      "(declare-fun x () Int)(assert (and (= (+ x 1 2 3) 9) (or (< x 0) (> x 100))))(check-sat)"
  in
  (* trigger: any formula mentioning the < operator *)
  let still_triggers s =
    List.exists
      (fun a -> Term.exists_node (function Term.App ("<", _) -> true | _ -> false) a)
      (Script.assertions s)
  in
  let reduced, _ = Ddsmt.reduce ~still_triggers script in
  check_bool "triggering op kept" true (still_triggers reduced);
  check_bool "substantially smaller" true (Script.size reduced <= 5)

let test_reduce_respects_probe_budget () =
  let script =
    parse_exn "(declare-fun x () Int)(assert (< x 0))(assert (> x 1))(check-sat)"
  in
  let probes = ref 0 in
  let still_triggers _ =
    incr probes;
    true
  in
  let _, stats = Ddsmt.reduce ~max_probes:5 ~still_triggers script in
  check_bool "bounded" true (stats.Ddsmt.probes <= 6)

let test_reduce_never_breaks_trigger () =
  (* oracle-driven: reduce a real crash formula and confirm the signature is
     preserved end to end *)
  let zeal = Solver.Engine.zeal () in
  let cove = Solver.Engine.cove () in
  let source =
    "(declare-fun s () String)(declare-fun z () Int)(declare-fun x () Int)\n(assert (= (str.from_code (str.to_code s)) s))(assert (= z 0))(assert (< x 3))(check-sat)"
  in
  let signature_of script =
    match Once4all.Oracle.test ~zeal ~cove ~source:(Printer.script script) () with
    | { Once4all.Oracle.finding = Some f; _ } -> Some f.Once4all.Oracle.signature
    | _ -> None
  in
  let script = parse_exn source in
  match signature_of script with
  | None -> () (* rarity gate closed for this op set; nothing to reduce *)
  | Some signature ->
    let reduced, stats =
      Ddsmt.reduce ~still_triggers:(fun c -> signature_of c = Some signature) script
    in
    check_bool "signature preserved" true (signature_of reduced = Some signature);
    check_bool "not larger" true (stats.Ddsmt.final_size <= stats.Ddsmt.initial_size)

let test_reduce_keeps_wellformedness () =
  let script =
    parse_exn
      "(declare-fun a () Int)(declare-fun b () Int)(assert (= (* a b) (+ a b)))(check-sat)"
  in
  let still_triggers s =
    (* require well-sortedness as part of the trigger, like a real oracle *)
    Result.is_ok (Theories.Typecheck.check_script s)
    && List.exists
         (fun t -> Term.exists_node (function Term.App ("*", _) -> true | _ -> false) t)
         (Script.assertions s)
  in
  let reduced, _ = Ddsmt.reduce ~still_triggers script in
  check_bool "reduced result sort-checks" true
    (Result.is_ok (Theories.Typecheck.check_script reduced))

let () =
  Alcotest.run "reduce"
    [
      ( "gc",
        [
          Alcotest.test_case "drops unused" `Quick test_gc_drops_unused;
          Alcotest.test_case "keeps datatypes" `Quick test_gc_keeps_datatype_in_use;
          Alcotest.test_case "keeps define-fun deps" `Quick test_gc_keeps_define_fun_deps;
        ] );
      ( "ddmin",
        [
          Alcotest.test_case "drops irrelevant assertions" `Quick
            test_reduce_drops_irrelevant_assertions;
          Alcotest.test_case "shrinks terms" `Quick test_reduce_shrinks_terms;
          Alcotest.test_case "probe budget" `Quick test_reduce_respects_probe_budget;
          Alcotest.test_case "preserves real crash" `Quick test_reduce_never_breaks_trigger;
          Alcotest.test_case "keeps well-formedness" `Quick test_reduce_keeps_wellformedness;
        ] );
    ]
