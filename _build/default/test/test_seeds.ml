open Smtlib
module Corpus = Seeds.Corpus

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_corpus_size () =
  check_bool
    (Printf.sprintf "at least 100 seeds (got %d)" (Corpus.count ()))
    true
    (Corpus.count () >= 100)

let test_all_parse () =
  (* Corpus.all already fails hard on parse errors; also check source parity *)
  check_int "parsed = sources" (List.length (Corpus.sources ())) (Corpus.count ())

let test_all_sort_check () =
  List.iter
    (fun seed ->
      match Theories.Typecheck.check_script seed with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "seed ill-sorted (%s):\n%s" msg (Printer.script seed))
    (Corpus.all ())

let test_all_have_check_sat () =
  List.iter
    (fun seed -> check_bool "check-sat" true (Script.has_check_sat seed))
    (Corpus.all ())

let test_theory_coverage () =
  (* the corpus exercises every theory the registry knows; Reals_Ints has no
     tag of its own — its operators tag as ints/reals *)
  List.iter
    (fun (t : Theories.Theory.info) ->
      if t.Theories.Theory.key <> "reals_ints" then
        check_bool
          (Printf.sprintf "seeds for %s" t.Theories.Theory.key)
          true
          (Corpus.by_theory t.Theories.Theory.key <> []))
    Theories.Theory.all;
  check_bool "mixed int/real seeds" true
    (List.exists
       (fun s ->
         let tags = Smtlib.Script.theories_used s in
         List.mem "ints" tags && List.mem "reals" tags)
       (Corpus.all ()))

let test_quantifier_seeds_present () =
  let quantified =
    List.filter
      (fun s ->
        List.exists
          (fun a ->
            Term.exists_node
              (function Term.Forall _ | Term.Exists _ -> true | _ -> false)
              a)
          (Script.assertions s))
      (Corpus.all ())
  in
  check_bool "enough quantified skeleton donors" true (List.length quantified >= 10)

let test_boolean_structure_present () =
  (* seeds must offer atoms for skeletonization *)
  let rng = O4a_util.Rng.create 1 in
  let with_atoms =
    List.filter
      (fun s -> snd (Once4all.Skeleton.skeletonize ~rng s) > 0)
      (Corpus.all ())
  in
  check_bool "most seeds skeletonizable" true
    (List.length with_atoms * 10 >= Corpus.count () * 9)

let test_filter_drops_crashers () =
  let zeal = Solver.Engine.zeal () in
  let cove = Solver.Engine.cove () in
  let filtered = Corpus.filtered ~zeal ~cove () in
  check_bool "filter keeps most" true (List.length filtered * 10 >= Corpus.count () * 8);
  (* nothing in the filtered set crashes either trunk solver *)
  List.iter
    (fun seed ->
      List.iter
        (fun engine ->
          match Solver.Runner.run ~max_steps:40_000 engine seed with
          | Solver.Runner.R_crash { bug_id; _ } ->
            Alcotest.failf "filtered seed still triggers %s:\n%s" bug_id
              (Printer.script seed)
          | _ -> ())
        [ zeal; cove ])
    filtered

let test_solvable_fraction () =
  (* a healthy majority of seeds should get a definite verdict *)
  let cove = Solver.Engine.pure O4a_coverage.Coverage.Cove in
  let definite =
    List.filter
      (fun seed ->
        match Solver.Runner.run ~max_steps:60_000 cove seed with
        | Solver.Runner.R_sat _ | Solver.Runner.R_unsat -> true
        | _ -> false)
      (Corpus.all ())
  in
  check_bool
    (Printf.sprintf "definite on %d/%d" (List.length definite) (Corpus.count ()))
    true
    (List.length definite * 2 >= Corpus.count ())

let () =
  Alcotest.run "seeds"
    [
      ( "corpus",
        [
          Alcotest.test_case "size" `Quick test_corpus_size;
          Alcotest.test_case "all parse" `Quick test_all_parse;
          Alcotest.test_case "all sort-check" `Quick test_all_sort_check;
          Alcotest.test_case "all have check-sat" `Quick test_all_have_check_sat;
          Alcotest.test_case "theory coverage" `Quick test_theory_coverage;
          Alcotest.test_case "quantified donors" `Quick test_quantifier_seeds_present;
          Alcotest.test_case "skeletonizable" `Quick test_boolean_structure_present;
        ] );
      ( "filtering",
        [
          Alcotest.test_case "leakage filter" `Slow test_filter_drops_crashers;
          Alcotest.test_case "solvable fraction" `Slow test_solvable_fraction;
        ] );
    ]
