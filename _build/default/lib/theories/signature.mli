(** Rank (sort-signature) checking for every theory operator the system
    supports: the SMT-LIB standard theories (Core, Ints, Reals, Reals_Ints,
    FixedSizeBitVectors, Strings, ArraysEx) and the solver-specific
    extensions the paper targets (Seq, Sets/Relations, Bags, FiniteFields).

    Error messages mimic real solver diagnostics — they are surfaced to the
    self-correction loop. *)

open Smtlib

val app : string -> Sort.t list -> (Sort.t, string) result
(** Result sort of a plain application, or [Error message]. Unknown operator
    names yield an error mentioning the symbol. *)

val indexed : string -> Term.index list -> Sort.t list -> (Sort.t, string) result
(** Indexed applications: [(_ extract i j)], [(_ divisible n)],
    [(_ int2bv w)], [(_ re.loop i j)], [(_ bvN w)], [(_ tuple.select i)],
    [(_ is ctor)] is handled by the type checker (needs the datatype env). *)

val qual : string -> Sort.t -> Sort.t list -> (Sort.t, string) result
(** Qualified (["as"]) identifiers: [seq.empty], [set.empty], [set.universe],
    [bag.empty], [const] (arrays), and tuple projections. *)

val nullary : string -> Sort.t option
(** Theory constants usable bare: [re.none], [re.all], [re.allchar],
    [tuple.unit]. *)

val is_known_op : string -> bool
(** Whether the symbol is any theory operator (plain, indexed or qualified
    base name). Used to distinguish "undeclared variable" from "wrong rank"
    diagnostics and by the mutation baselines. *)
