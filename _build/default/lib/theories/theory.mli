(** Registry of SMT theories known to the system, with the metadata the
    Once4All pipeline consumes: operator inventories, documentation prose
    (the LLM's input for grammar summarization), ground-truth EBNF grammars
    (what a perfect summarization would produce), and a synthesis-difficulty
    rating that drives the simulated LLM's initial error rate (§5.1 reports
    <30% initial validity for finite fields vs >90% for reals). *)

open Smtlib

type id =
  | Core
  | Ints
  | Reals
  | Reals_ints
  | Bitvectors
  | Strings
  | Arrays
  | Datatypes
  | Seq
  | Sets
  | Bags
  | Finite_fields

type info = {
  id : id;
  name : string;  (** display name, e.g. ["Ints"] *)
  key : string;  (** short tag, e.g. ["ints"]; matches [Script.theories_used] *)
  standard : bool;  (** part of the SMT-LIB standard (vs solver extension) *)
  extension_of : string option;  (** e.g. [Some "cove"] for cvc5-style extensions *)
  ops : string list;  (** plain operator symbols contributed by the theory *)
  base_sorts : Sort.t list;  (** representative sorts for variable pools *)
  difficulty : float;  (** 0 = trivial syntax, 1 = very error-prone *)
  year_introduced : int;  (** when the theory landed in the solver (lifespan exp.) *)
}

val all : info list

val find : id -> info

val find_by_key : string -> info option

val standard_theories : info list

val extension_theories : info list

val doc : id -> string
(** Documentation prose for the theory (input to grammar summarization). *)

val ground_truth_cfg : id -> string
(** The EBNF a faithful summarization would produce. See {!Grammar_kit.Ebnf}
    for the concrete syntax: quoted literals, bare nonterminals, [@hooks]. *)

val id_to_string : id -> string

val of_string : string -> id option
