let core_doc =
  {|Theory: Core
Status: SMT-LIB standard theory.
The Core theory defines the Bool sort and the basic boolean connectives.
All other theories implicitly extend Core.

Sorts:
  Bool

Functions:
  (true Bool) and (false Bool) are the boolean constants.
  (not Bool Bool) — logical negation.
  (and Bool Bool Bool :left-assoc) — conjunction; variadic, at least two arguments.
  (or Bool Bool Bool :left-assoc) — disjunction; variadic.
  (xor Bool Bool Bool :left-assoc) — exclusive or.
  (=> Bool Bool Bool :right-assoc) — implication.
  (= A A Bool :chainable) — equality over any sort A; all arguments must have
    the same sort.
  (distinct A A Bool :pairwise) — pairwise disequality over any sort A.
  (ite Bool A A A) — if-then-else; both branches must have the same sort.
|}

let ints_doc =
  {|Theory: Ints
Status: SMT-LIB standard theory.
The theory of integer numbers. Numerals denote non-negative integer
constants; negative constants are written with unary minus, e.g. (- 5).

Sorts:
  Int

Functions:
  (- Int Int) — unary negation.
  (+ Int Int Int :left-assoc) — addition; variadic.
  (- Int Int Int :left-assoc) — subtraction; variadic.
  (* Int Int Int :left-assoc) — multiplication; variadic.
  (div Int Int Int) — integer (Euclidean) division; the divisor should not be
    zero, otherwise the result is underspecified but total.
  (mod Int Int Int) — integer modulus; (mod m n) is always non-negative for
    n != 0 under Euclidean semantics.
  (abs Int Int) — absolute value.
  (<= Int Int Bool :chainable), (< Int Int Bool :chainable),
  (>= Int Int Bool :chainable), (> Int Int Bool :chainable) — comparisons.
  ((_ divisible n) Int Bool) — indexed family: true iff the argument is
    divisible by the numeral n, which must be positive.
|}

let reals_doc =
  {|Theory: Reals
Status: SMT-LIB standard theory.
The theory of real numbers. Decimals like 2.5 denote rational constants.

Sorts:
  Real

Functions:
  (- Real Real) — unary negation.
  (+ Real Real Real :left-assoc) — addition; variadic.
  (- Real Real Real :left-assoc) — subtraction.
  (* Real Real Real :left-assoc) — multiplication.
  (/ Real Real Real :left-assoc) — division; division by zero is
    underspecified but total (solvers pick an arbitrary value).
  (<= Real Real Bool :chainable), (< Real Real Bool :chainable),
  (>= Real Real Bool :chainable), (> Real Real Bool :chainable) — comparisons.

Remark: real constants must be written with a decimal point (1.0, not 1);
many solvers however accept integer numerals in real positions and coerce.
|}

let reals_ints_doc =
  {|Theory: Reals_Ints
Status: SMT-LIB standard theory.
The combined theory of integers and reals with coercions. Includes all
functions of the Ints and Reals theories operating on their own sorts —
(+ - * div mod abs < <= > >=) on Int and (+ - * / < <= > >=) on Real —
plus the following conversion functions.

Sorts:
  Int, Real

Functions:
  (to_real Int Real) — injection of integers into the reals.
  (to_int Real Int) — floor conversion: the largest integer not greater
    than the argument.
  (is_int Real Bool) — true iff the argument is an integer-valued real.

Remark: mixed-sort applications like (+ x 1.5) with x : Int are not part of
the standard but are accepted by most solvers via implicit to_real coercion.
|}

let bitvectors_doc =
  {|Theory: FixedSizeBitVectors
Status: SMT-LIB standard theory.
The theory of fixed-width bit-vectors. The sort (_ BitVec m) is indexed by
the positive width m. Constants are written #b0101 (binary, width = number
of digits), #xA3 (hexadecimal, width = 4 * number of digits), or with the
indexed form (_ bvN m) denoting value N at width m.

Sorts:
  (_ BitVec m) for m >= 1.

Functions (all argument bit-vectors of an operation must have EQUAL width
unless stated otherwise):
  (concat (_ BitVec i) (_ BitVec j) (_ BitVec i+j)) — concatenation; widths add.
  ((_ extract i j) (_ BitVec m) (_ BitVec i-j+1)) — bits i down to j with
    m > i >= j >= 0.
  (bvnot (_ BitVec m) (_ BitVec m)) — bitwise negation.
  (bvneg (_ BitVec m) (_ BitVec m)) — two's-complement negation.
  (bvand bvor bvxor) — bitwise operations, variadic, equal widths.
  (bvadd bvsub bvmul) — modular arithmetic, equal widths.
  (bvudiv bvurem) — unsigned division/remainder; x/0 yields all-ones.
  (bvshl bvlshr bvashr) — shifts; the shift amount is a bit-vector of the
    same width as the shifted value.
  (bvult bvule bvugt bvuge (_ BitVec m) (_ BitVec m) Bool) — unsigned
    comparisons.
  (bvslt bvsle bvsgt bvsge (_ BitVec m) (_ BitVec m) Bool) — signed
    (two's-complement) comparisons.
  (bvcomp (_ BitVec m) (_ BitVec m) (_ BitVec 1)) — equality as a 1-bit vector.
  ((_ zero_extend k) / (_ sign_extend k)) — widen by k bits.
  ((_ rotate_left k) / (_ rotate_right k)) — rotations.
  (bv2nat (_ BitVec m) Int) — unsigned value as an integer.
  ((_ int2bv m) Int (_ BitVec m)) — integer to bit-vector modulo 2^m.

Common pitfall: bvadd, bvmul, bvand and the comparison predicates require
operands of exactly equal width; mixing #b01 with #b0001 is a sort error.
|}

let strings_doc =
  {|Theory: Strings
Status: SMT-LIB standard theory (Unicode strings, since SMT-LIB 2.6).
Strings are finite sequences of characters; RegLan is the sort of regular
languages used for membership constraints. String literals are written in
double quotes; a double quote inside a literal is escaped by doubling it.

Sorts:
  String, RegLan

Functions:
  (str.++ String String String :left-assoc) — concatenation; variadic.
  (str.len String Int) — length.
  (str.at String Int String) — character at an index, as a string of length
    one, or the empty string when out of range.
  (str.substr String Int Int String) — (str.substr s i n): substring starting
    at i of length at most n.
  (str.indexof String String Int Int) — first index of the second string in
    the first, at or after the given offset; -1 if absent.
  (str.contains String String Bool), (str.prefixof String String Bool),
  (str.suffixof String String Bool) — containment predicates. Note the
    argument order of prefixof/suffixof: (str.prefixof p s) is true iff p is
    a prefix of s.
  (str.replace String String String String) — replace the FIRST occurrence.
  (str.replace_all String String String String) — replace all occurrences.
  (str.< String String Bool), (str.<= String String Bool) — lexicographic order.
  (str.to_int String Int) — numeric value of a digit string, -1 otherwise.
  (str.from_int Int String) — decimal representation for non-negative inputs,
    the empty string otherwise.
  (str.to_code String Int), (str.from_code Int String) — code-point
    conversions for strings of length one.
  (str.is_digit String Bool) — single-digit test.
  (str.in_re String RegLan Bool) — regular-language membership.
  (str.to_re String RegLan) — the singleton language of a literal string.
  (re.none RegLan), (re.all RegLan), (re.allchar RegLan) — constants.
  (re.++ RegLan RegLan RegLan :left-assoc), (re.union ...), (re.inter ...).
  (re.* RegLan RegLan), (re.+ RegLan RegLan), (re.opt RegLan RegLan),
  (re.comp RegLan RegLan) — closure operators.
  (re.diff RegLan RegLan RegLan) — language difference.
  (re.range String String RegLan) — character ranges; both arguments must be
    single-character strings, otherwise the result is re.none.
  ((_ re.loop i j) RegLan RegLan) — bounded repetition.
|}

let arrays_doc =
  {|Theory: ArraysEx
Status: SMT-LIB standard theory.
The theory of functional arrays with extensionality. The sort
(Array X Y) is parameterized by an index sort X and an element sort Y.

Sorts:
  (Array X Y)

Functions:
  (select (Array X Y) X Y) — read the element stored at an index.
  (store (Array X Y) X Y (Array X Y)) — functional update: a new array equal
    to the first argument except at the given index.
  ((as const (Array X Y)) Y (Array X Y)) — the constant array mapping every
    index to the given element (a widely supported extension of the standard).

Axioms (informal): reading a stored index returns the stored value; reading
any other index returns the original content; two arrays equal at every
index are equal (extensionality).
|}

let datatypes_doc =
  {|Theory: Datatypes
Status: SMT-LIB standard feature (since 2.6).
Algebraic datatypes are declared with declare-datatypes. Each datatype has
constructors; each constructor has zero or more selectors.

Example:
  (declare-datatypes ((Lst 0))
    (((nil) (cons (head Int) (tail Lst)))))

Functions derived from a declaration:
  Each constructor, e.g. (cons Int Lst Lst) and (nil Lst).
  Each selector, e.g. (head Lst Int); applying a selector to a value built
    by a different constructor is underspecified but total.
  Testers written ((_ is cons) l) — true iff l was built with cons.

Pattern matching (SMT-LIB 2.6, extended in 2.7):
  (match t ((pattern body) ...)) dispatches on the constructor of t. A
  pattern is a nullary constructor, an application pattern (cons h tl)
  binding the fields, a variable (catch-all, binds t), or — since
  SMT-LIB 2.7 — the wildcard _ which matches without binding. Matches must
  be exhaustive; all case bodies must share one sort.

Nullary constructors of a datatype D may need qualification (as nil D) when
ambiguous.
|}

let seq_doc =
  {|Theory: Sequences (solver extension)
Status: NOT part of the SMT-LIB standard; an extension supported by cvc5
(and, with slightly different syntax, Z3). Documented informally.
A sequence is a finite ordered list of elements of an arbitrary element
sort. The sort is written (Seq X).

Sorts:
  (Seq X)

Functions:
  (as seq.empty (Seq X)) — the empty sequence; note it must always be
    annotated with its sort.
  (seq.unit X (Seq X)) — the singleton sequence.
  (seq.++ (Seq X) (Seq X) (Seq X) :left-assoc) — concatenation; variadic.
  (seq.len (Seq X) Int) — length.
  (seq.nth (Seq X) Int X) — element at an index; out-of-range access is
    underspecified but total (an uninterpreted value of sort X).
  (seq.extract (Seq X) Int Int (Seq X)) — (seq.extract s i n): subsequence
    of length at most n starting at i; empty when i is out of range.
  (seq.update (Seq X) Int (Seq X) (Seq X)) — overwrite starting at an index.
  (seq.at (Seq X) Int (Seq X)) — like seq.nth but returning a unit
    sequence, or the empty sequence when out of range.
  (seq.contains (Seq X) (Seq X) Bool) — subsequence containment.
  (seq.indexof (Seq X) (Seq X) Int Int) — first occurrence at or after an
    offset; -1 if absent.
  (seq.replace (Seq X) (Seq X) (Seq X) (Seq X)) — replace first occurrence.
  (seq.rev (Seq X) (Seq X)) — reversal (recently added).
  (seq.prefixof (Seq X) (Seq X) Bool), (seq.suffixof (Seq X) (Seq X) Bool).

Remark: model evaluation of nested sequence operations (e.g. seq.nth of
seq.rev) exercises recently added solver code paths.
|}

let sets_doc =
  {|Theory: Sets and Relations (solver extension)
Status: NOT part of the SMT-LIB standard; a cvc5-specific extension,
documented informally on the solver's website.
Finite sets over an element sort, written (Set X). Relations are sets of
tuples: (Relation X1 ... Xn) abbreviates (Set (Tuple X1 ... Xn)).

Sorts:
  (Set X), (Tuple X1 ... Xn), UnitTuple (the nullary tuple sort)

Functions:
  (as set.empty (Set X)) — the empty set; requires a sort annotation.
  (as set.universe (Set X)) — the universe set (finite-universe semantics).
  (set.singleton X (Set X)) — singleton.
  (set.insert X ... X (Set X) (Set X)) — insert one or more elements; the
    set argument comes LAST.
  (set.union (Set X) (Set X) (Set X)), (set.inter ...), (set.minus ...).
  (set.member X (Set X) Bool) — membership; element first.
  (set.subset (Set X) (Set X) Bool).
  (set.card (Set X) Int) — cardinality.
  (set.complement (Set X) (Set X)) — with respect to the universe.
  (set.choose (Set X) X) — an arbitrary element; underspecified on the
    empty set but total.
  (set.is_empty (Set X) Bool), (set.is_singleton (Set X) Bool).
  (tuple X1 ... Xn (Tuple X1 ... Xn)) — tuple construction.
  ((_ tuple.select i) (Tuple ...) Xi) — projection.
  (as tuple.unit UnitTuple) — the nullary tuple.
  (rel.transpose (Set (Tuple ...)) (Set (Tuple ...))) — reverse all tuples.
  (rel.product (Set (Tuple ...)) (Set (Tuple ...)) (Set (Tuple ...))) —
    cartesian product; tuple arities add.
  (rel.join (Set (Tuple X... A)) (Set (Tuple A Y...)) (Set (Tuple X... Y...)))
    — relational join on the shared middle column. Join requires non-nullary
    relations: joining sets of UnitTuple is a type error.
|}

let bags_doc =
  {|Theory: Bags (solver extension)
Status: NOT part of the SMT-LIB standard; a cvc5-specific extension,
documented informally. A bag (multiset) maps elements to non-negative
multiplicities; only finitely many elements have positive multiplicity.

Sorts:
  (Bag X)

Functions:
  (as bag.empty (Bag X)) — the empty bag; requires a sort annotation.
  (bag X Int (Bag X)) — (bag e n): the bag containing n occurrences of e;
    n < 0 behaves as the empty bag.
  (bag.union_max (Bag X) (Bag X) (Bag X)) — pointwise maximum.
  (bag.union_disjoint (Bag X) (Bag X) (Bag X)) — pointwise sum.
  (bag.inter_min (Bag X) (Bag X) (Bag X)) — pointwise minimum.
  (bag.difference_subtract (Bag X) (Bag X) (Bag X)) — truncated subtraction.
  (bag.difference_remove (Bag X) (Bag X) (Bag X)) — remove all occurrences
    of elements present in the second bag.
  (bag.count X (Bag X) Int) — multiplicity of an element; element FIRST.
  (bag.member X (Bag X) Bool) — positive-multiplicity test.
  (bag.card (Bag X) Int) — total multiplicity.
  (bag.setof (Bag X) (Bag X)) — collapse all positive multiplicities to 1.
  (bag.subbag (Bag X) (Bag X) Bool) — pointwise <=.
  (bag.choose (Bag X) X) — an arbitrary element; underspecified on the
    empty bag but total.
|}

let finite_fields_doc =
  {|Theory: FiniteFields (solver extension)
Status: NOT part of the SMT-LIB standard; a cvc5-specific extension added
in 2022, documented informally. The theory of prime-order finite fields
GF(p). The sort is written (_ FiniteField p) for a prime p.

Sorts:
  (_ FiniteField p)

Constants:
  Field constants are written with an 'as' annotation giving the field:
  (as ffN (_ FiniteField p)) denotes the residue N mod p; for example
  (as ff3 (_ FiniteField 5)). The shorthand ff0, ff1, ... must ALWAYS carry
  the annotation; a bare ff3 is not a valid term.

Functions (all arguments must belong to the SAME field):
  (ff.add (_ FiniteField p) (_ FiniteField p) (_ FiniteField p) :left-assoc)
    — field addition; variadic.
  (ff.mul ... :left-assoc) — field multiplication; variadic.
  (ff.neg (_ FiniteField p) (_ FiniteField p)) — additive inverse.
  (ff.bitsum ... :left-assoc) — weighted bit-sum: ff.bitsum(x0, x1, ..., xk)
    equals x0 + 2*x1 + 4*x2 + ... + 2^k*xk in the field; used to encode
    integers in bit decomposition form. Constant children contribute their
    value scaled by the positional coefficient.

Remark: there is no field division operator; equality and disequality come
from Core. Only prime orders are legal; solvers reject composite orders.
|}

let table =
  [
    ("core", core_doc);
    ("ints", ints_doc);
    ("reals", reals_doc);
    ("reals_ints", reals_ints_doc);
    ("bitvectors", bitvectors_doc);
    ("strings", strings_doc);
    ("arrays", arrays_doc);
    ("datatypes", datatypes_doc);
    ("seq", seq_doc);
    ("sets", sets_doc);
    ("bags", bags_doc);
    ("finite_fields", finite_fields_doc);
  ]

let doc key =
  match List.assoc_opt key table with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Docs.doc: unknown theory '%s'" key)

let known_keys = List.map fst table
