lib/theories/cfgs.mli:
