lib/theories/signature.ml: List O4a_util Printf Smtlib Sort String Term
