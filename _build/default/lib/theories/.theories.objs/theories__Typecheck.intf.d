lib/theories/typecheck.mli: Script Smtlib Sort Term
