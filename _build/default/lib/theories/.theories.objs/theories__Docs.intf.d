lib/theories/docs.mli:
