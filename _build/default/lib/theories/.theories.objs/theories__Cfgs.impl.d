lib/theories/cfgs.ml: List Printf
