lib/theories/docs.ml: List Printf
