lib/theories/typecheck.ml: Command List Printf Result Script Signature Smtlib Sort String Term
