lib/theories/theory.ml: Cfgs Docs List Option Smtlib Sort
