lib/theories/theory.mli: Smtlib Sort
