lib/theories/signature.mli: Smtlib Sort Term
