(** Ground-truth EBNF grammars per theory: what a faithful LLM grammar
    summarization would extract from the documentation in {!Docs}. The
    concrete syntax is the one parsed by [Grammar_kit.Ebnf]: productions are
    [name ::= alt | alt ...]; within an alternative, double-quoted tokens are
    literal text, bare identifiers are nonterminal references, and [@name]
    tokens are generator hooks (literals, variables, width/sort context).

    Every grammar's start symbol is [bool] and every [bool] sentence, with
    correct hook semantics, is a well-sorted Boolean term. Contextual
    constraints a CFG cannot express (equal bit-vector widths, matching field
    orders) are the hooks' responsibility — exactly the gap the paper's
    self-correction loop exists to close.

    Keyed by theory key; raises [Invalid_argument] on unknown keys. *)

val cfg : string -> string

val known_keys : string list
