open Smtlib

let ok s = Ok s
let err fmt = Printf.ksprintf (fun m -> Error m) fmt

let sort_str = Sort.to_string

let arity_error name expected got =
  err "the function '%s' expects %s arguments, got %d" name expected got

let all_same name sorts =
  match sorts with
  | [] -> err "the function '%s' expects at least one argument" name
  | s :: rest ->
    if List.for_all (Sort.equal s) rest then ok s
    else
      err "the function '%s' expects arguments of the same sort, got %s" name
        (String.concat " " (List.map sort_str sorts))

(* Arithmetic: all Int -> Int, otherwise all Int/Real (mixed coerces) -> Real,
   mirroring the permissive parsing of real solvers. *)
let arith_result name sorts =
  if sorts = [] then err "the function '%s' expects at least one argument" name
  else if List.for_all (Sort.equal Sort.Int) sorts then ok Sort.Int
  else if List.for_all (fun s -> Sort.is_numeric s) sorts then ok Sort.Real
  else
    err "the function '%s' expects Int or Real arguments, got %s" name
      (String.concat " " (List.map sort_str sorts))

let bool_args name sorts =
  if List.for_all (Sort.equal Sort.Bool) sorts then ok Sort.Bool
  else
    err "the function '%s' expects Bool arguments, got %s" name
      (String.concat " " (List.map sort_str sorts))

let same_width_bv name sorts =
  match sorts with
  | Sort.Bitvec w :: rest when List.for_all (Sort.equal (Sort.Bitvec w)) rest ->
    ok (Sort.Bitvec w)
  | _ ->
    err "the function '%s' expects bit-vector arguments of equal width, got %s" name
      (String.concat " " (List.map sort_str sorts))

let bv_predicate name sorts =
  match sorts with
  | [ Sort.Bitvec w; Sort.Bitvec w' ] when w = w' -> ok Sort.Bool
  | _ ->
    err "the predicate '%s' expects two bit-vectors of equal width, got %s" name
      (String.concat " " (List.map sort_str sorts))

let same_field name sorts =
  match sorts with
  | Sort.Finite_field p :: rest when List.for_all (Sort.equal (Sort.Finite_field p)) rest ->
    ok (Sort.Finite_field p)
  | [] -> err "the function '%s' expects at least one argument" name
  | _ ->
    err "the function '%s' expects arguments in the same finite field, got %s" name
      (String.concat " " (List.map sort_str sorts))

(* ------------------------------------------------------------------ *)

let core name sorts =
  match (name, sorts) with
  | "not", [ Sort.Bool ] -> ok Sort.Bool
  | "not", _ -> arity_error name "one Bool" (List.length sorts)
  | ("and" | "or" | "xor" | "=>"), _ :: _ :: _ -> bool_args name sorts
  | ("and" | "or" | "xor" | "=>"), _ -> arity_error name "at least two" (List.length sorts)
  | ("=" | "distinct"), _ :: _ :: _ -> (
    (* real solvers coerce mixed Int/Real equalities; mirror that *)
    if List.for_all Sort.is_numeric sorts then ok Sort.Bool
    else match all_same name sorts with Ok _ -> ok Sort.Bool | Error e -> Error e)
  | ("=" | "distinct"), _ -> arity_error name "at least two" (List.length sorts)
  | "ite", [ Sort.Bool; a; b ] when Sort.equal a b -> ok a
  | "ite", [ Sort.Bool; a; b ] ->
    err "the branches of 'ite' must have the same sort, got %s and %s" (sort_str a) (sort_str b)
  | "ite", _ -> arity_error name "three" (List.length sorts)
  | _ -> err "unknown core operator '%s'" name

let arith name sorts =
  match (name, sorts) with
  | "-", [ s ] when Sort.is_numeric s -> ok s
  | ("+" | "-" | "*"), _ :: _ :: _ -> arith_result name sorts
  | "/", _ :: _ :: _ -> (
    match arith_result name sorts with Ok _ -> ok Sort.Real | Error e -> Error e)
  | ("div" | "mod"), [ Sort.Int; Sort.Int ] -> ok Sort.Int
  | ("div" | "mod"), _ -> err "the function '%s' expects two Int arguments" name
  | "abs", [ Sort.Int ] -> ok Sort.Int
  | "abs", _ -> err "the function 'abs' expects one Int argument"
  | ("<" | "<=" | ">" | ">="), _ :: _ :: _ -> (
    match arith_result name sorts with Ok _ -> ok Sort.Bool | Error e -> Error e)
  | "to_real", [ Sort.Int ] -> ok Sort.Real
  | "to_int", [ Sort.Real ] -> ok Sort.Int
  | "is_int", [ Sort.Real ] -> ok Sort.Bool
  | ("to_real" | "to_int" | "is_int"), _ ->
    err "wrong argument sort for '%s': got %s" name
      (String.concat " " (List.map sort_str sorts))
  | _ -> err "unknown arithmetic operator '%s'" name

let bitvec name sorts =
  match (name, sorts) with
  | "concat", [ Sort.Bitvec m; Sort.Bitvec n ] -> ok (Sort.Bitvec (m + n))
  | "concat", _ -> err "the function 'concat' expects two bit-vector arguments"
  | ("bvnot" | "bvneg"), [ Sort.Bitvec w ] -> ok (Sort.Bitvec w)
  | ("bvnot" | "bvneg"), _ -> err "the function '%s' expects one bit-vector argument" name
  | ( ("bvand" | "bvor" | "bvxor" | "bvnand" | "bvnor" | "bvxnor" | "bvadd" | "bvsub"
      | "bvmul" | "bvudiv" | "bvurem" | "bvsdiv" | "bvsrem" | "bvsmod" | "bvshl"
      | "bvlshr" | "bvashr"),
      _ :: _ :: _ ) ->
    same_width_bv name sorts
  | ( ("bvand" | "bvor" | "bvxor" | "bvnand" | "bvnor" | "bvxnor" | "bvadd" | "bvsub"
      | "bvmul" | "bvudiv" | "bvurem" | "bvsdiv" | "bvsrem" | "bvsmod" | "bvshl"
      | "bvlshr" | "bvashr"),
      _ ) ->
    arity_error name "at least two" (List.length sorts)
  | ( ("bvult" | "bvule" | "bvugt" | "bvuge" | "bvslt" | "bvsle" | "bvsgt" | "bvsge"),
      _ ) ->
    bv_predicate name sorts
  | "bvcomp", [ Sort.Bitvec w; Sort.Bitvec w' ] when w = w' -> ok (Sort.Bitvec 1)
  | "bvcomp", _ -> err "the function 'bvcomp' expects two bit-vectors of equal width"
  | ("bv2nat" | "ubv_to_int"), [ Sort.Bitvec _ ] -> ok Sort.Int
  | ("bv2nat" | "ubv_to_int"), _ -> err "the function '%s' expects one bit-vector" name
  | _ -> err "unknown bit-vector operator '%s'" name

let strings name sorts =
  match (name, sorts) with
  | "str.++", Sort.String_sort :: _ :: _
    when List.for_all (Sort.equal Sort.String_sort) sorts ->
    ok Sort.String_sort
  | "str.++", _ -> err "the function 'str.++' expects String arguments"
  | "str.len", [ Sort.String_sort ] -> ok Sort.Int
  | "str.at", [ Sort.String_sort; Sort.Int ] -> ok Sort.String_sort
  | "str.substr", [ Sort.String_sort; Sort.Int; Sort.Int ] -> ok Sort.String_sort
  | "str.indexof", [ Sort.String_sort; Sort.String_sort; Sort.Int ] -> ok Sort.Int
  | ("str.contains" | "str.prefixof" | "str.suffixof"), [ Sort.String_sort; Sort.String_sort ]
    ->
    ok Sort.Bool
  | ("str.<" | "str.<="), [ Sort.String_sort; Sort.String_sort ] -> ok Sort.Bool
  | ("str.replace" | "str.replace_all"),
    [ Sort.String_sort; Sort.String_sort; Sort.String_sort ] ->
    ok Sort.String_sort
  | "str.to_int", [ Sort.String_sort ] -> ok Sort.Int
  | "str.from_int", [ Sort.Int ] -> ok Sort.String_sort
  | "str.to_code", [ Sort.String_sort ] -> ok Sort.Int
  | "str.from_code", [ Sort.Int ] -> ok Sort.String_sort
  | "str.is_digit", [ Sort.String_sort ] -> ok Sort.Bool
  | "str.in_re", [ Sort.String_sort; Sort.Reglan ] -> ok Sort.Bool
  | "str.to_re", [ Sort.String_sort ] -> ok Sort.Reglan
  | ("re.++" | "re.union" | "re.inter"), _ :: _ :: _
    when List.for_all (Sort.equal Sort.Reglan) sorts ->
    ok Sort.Reglan
  | ("re.*" | "re.+" | "re.opt" | "re.comp"), [ Sort.Reglan ] -> ok Sort.Reglan
  | "re.range", [ Sort.String_sort; Sort.String_sort ] -> ok Sort.Reglan
  | "re.diff", [ Sort.Reglan; Sort.Reglan ] -> ok Sort.Reglan
  | ( ("str.len" | "str.at" | "str.substr" | "str.indexof" | "str.contains"
      | "str.prefixof" | "str.suffixof" | "str.<" | "str.<=" | "str.replace"
      | "str.replace_all" | "str.to_int" | "str.from_int" | "str.to_code"
      | "str.from_code" | "str.is_digit" | "str.in_re" | "str.to_re" | "re.++"
      | "re.union" | "re.inter" | "re.*" | "re.+" | "re.opt" | "re.comp" | "re.range"
      | "re.diff"),
      _ ) ->
    err "wrong argument sorts for '%s': got %s" name
      (String.concat " " (List.map sort_str sorts))
  | _ -> err "unknown string operator '%s'" name

let arrays name sorts =
  match (name, sorts) with
  | "select", [ Sort.Array (i, e); i' ] when Sort.equal i i' -> ok e
  | "select", _ ->
    err "the function 'select' expects an array and a matching index, got %s"
      (String.concat " " (List.map sort_str sorts))
  | "store", [ Sort.Array (i, e); i'; e' ] when Sort.equal i i' && Sort.equal e e' ->
    ok (Sort.Array (i, e))
  | "store", _ ->
    err "the function 'store' expects an array, a matching index and element, got %s"
      (String.concat " " (List.map sort_str sorts))
  | _ -> err "unknown array operator '%s'" name

let seq name sorts =
  match (name, sorts) with
  | "seq.unit", [ e ] -> ok (Sort.Seq e)
  | "seq.++", Sort.Seq e :: _ :: _ when List.for_all (Sort.equal (Sort.Seq e)) sorts ->
    ok (Sort.Seq e)
  | "seq.len", [ Sort.Seq _ ] -> ok Sort.Int
  | "seq.nth", [ Sort.Seq e; Sort.Int ] -> ok e
  | "seq.extract", [ Sort.Seq e; Sort.Int; Sort.Int ] -> ok (Sort.Seq e)
  | "seq.update", [ Sort.Seq e; Sort.Int; Sort.Seq e' ] when Sort.equal e e' ->
    ok (Sort.Seq e)
  | "seq.at", [ Sort.Seq e; Sort.Int ] -> ok (Sort.Seq e)
  | ("seq.contains" | "seq.prefixof" | "seq.suffixof"), [ Sort.Seq e; Sort.Seq e' ]
    when Sort.equal e e' ->
    ok Sort.Bool
  | "seq.indexof", [ Sort.Seq e; Sort.Seq e'; Sort.Int ] when Sort.equal e e' -> ok Sort.Int
  | "seq.replace", [ Sort.Seq e; Sort.Seq e'; Sort.Seq e'' ]
    when Sort.equal e e' && Sort.equal e e'' ->
    ok (Sort.Seq e)
  | "seq.rev", [ Sort.Seq e ] -> ok (Sort.Seq e)
  | ( ("seq.unit" | "seq.++" | "seq.len" | "seq.nth" | "seq.extract" | "seq.update"
      | "seq.at" | "seq.contains" | "seq.prefixof" | "seq.suffixof" | "seq.indexof"
      | "seq.replace" | "seq.rev"),
      _ ) ->
    err "wrong argument sorts for '%s': got %s" name
      (String.concat " " (List.map sort_str sorts))
  | _ -> err "unknown sequence operator '%s'" name

let tuple_arity = function Sort.Tuple ss -> Some (List.length ss) | _ -> None

let sets name sorts =
  match (name, sorts) with
  | "set.singleton", [ e ] -> ok (Sort.Set e)
  | "set.insert", args when List.length args >= 2 -> (
    match O4a_util.Listx.last args with
    | Sort.Set e
      when List.for_all (Sort.equal e) (O4a_util.Listx.init_segment args) ->
      ok (Sort.Set e)
    | _ ->
      err "the function 'set.insert' expects elements followed by a matching set, got %s"
        (String.concat " " (List.map sort_str sorts)))
  | ("set.union" | "set.inter" | "set.minus"), [ Sort.Set e; Sort.Set e' ]
    when Sort.equal e e' ->
    ok (Sort.Set e)
  | "set.member", [ e; Sort.Set e' ] when Sort.equal e e' -> ok Sort.Bool
  | "set.subset", [ Sort.Set e; Sort.Set e' ] when Sort.equal e e' -> ok Sort.Bool
  | "set.card", [ Sort.Set _ ] -> ok Sort.Int
  | "set.complement", [ Sort.Set e ] -> ok (Sort.Set e)
  | "set.choose", [ Sort.Set e ] -> ok e
  | "set.is_empty", [ Sort.Set _ ] -> ok Sort.Bool
  | "set.is_singleton", [ Sort.Set _ ] -> ok Sort.Bool
  | "rel.transpose", [ Sort.Set (Sort.Tuple ss) ] -> ok (Sort.Set (Sort.Tuple (List.rev ss)))
  | "rel.product", [ Sort.Set (Sort.Tuple a); Sort.Set (Sort.Tuple b) ] ->
    ok (Sort.Set (Sort.Tuple (a @ b)))
  | "rel.join", [ Sort.Set (Sort.Tuple a); Sort.Set (Sort.Tuple b) ] -> (
    (* Join requires non-nullary relations: last column of the left relation
       matches the first column of the right. *)
    match (List.rev a, b) with
    | last_a :: rest_a, first_b :: rest_b when Sort.equal last_a first_b ->
      ok (Sort.Set (Sort.Tuple (List.rev rest_a @ rest_b)))
    | [], _ | _, [] -> err "Join requires non-nullary relations"
    | _ ->
      err "the function 'rel.join' expects relations with a matching join column, got %s"
        (String.concat " " (List.map sort_str sorts)))
  | "tuple", args -> ok (Sort.Tuple args)
  | ( ("set.singleton" | "set.insert" | "set.union" | "set.inter" | "set.minus"
      | "set.member" | "set.subset" | "set.card" | "set.complement" | "set.choose"
      | "set.is_empty" | "set.is_singleton" | "rel.transpose" | "rel.product" | "rel.join"),
      _ ) ->
    err "wrong argument sorts for '%s': got %s%s" name
      (String.concat " " (List.map sort_str sorts))
      (if List.exists (fun s -> tuple_arity s = Some 0) sorts then
         " (nullary tuple)"
       else "")
  | _ -> err "unknown set operator '%s'" name

let bags name sorts =
  match (name, sorts) with
  | "bag", [ e; Sort.Int ] -> ok (Sort.Bag e)
  | ( ("bag.union_max" | "bag.union_disjoint" | "bag.inter_min"
      | "bag.difference_subtract" | "bag.difference_remove"),
      [ Sort.Bag e; Sort.Bag e' ] )
    when Sort.equal e e' ->
    ok (Sort.Bag e)
  | "bag.count", [ e; Sort.Bag e' ] when Sort.equal e e' -> ok Sort.Int
  | "bag.member", [ e; Sort.Bag e' ] when Sort.equal e e' -> ok Sort.Bool
  | "bag.card", [ Sort.Bag _ ] -> ok Sort.Int
  | "bag.setof", [ Sort.Bag e ] -> ok (Sort.Bag e)
  | "bag.subbag", [ Sort.Bag e; Sort.Bag e' ] when Sort.equal e e' -> ok Sort.Bool
  | "bag.choose", [ Sort.Bag e ] -> ok e
  | ( ("bag" | "bag.union_max" | "bag.union_disjoint" | "bag.inter_min"
      | "bag.difference_subtract" | "bag.difference_remove" | "bag.count" | "bag.member"
      | "bag.card" | "bag.setof" | "bag.subbag" | "bag.choose"),
      _ ) ->
    err "wrong argument sorts for '%s': got %s" name
      (String.concat " " (List.map sort_str sorts))
  | _ -> err "unknown bag operator '%s'" name

let finite_fields name sorts =
  match name with
  | "ff.add" | "ff.mul" | "ff.bitsum" ->
    if List.length sorts >= 2 then same_field name sorts
    else arity_error name "at least two" (List.length sorts)
  | "ff.neg" -> (
    match sorts with
    | [ Sort.Finite_field p ] -> ok (Sort.Finite_field p)
    | _ -> err "the function 'ff.neg' expects one finite-field argument")
  | _ -> err "unknown finite-field operator '%s'" name

let families =
  [
    ( (fun n ->
        List.mem n
          [ "not"; "and"; "or"; "xor"; "=>"; "="; "distinct"; "ite" ]),
      core );
    ( (fun n ->
        List.mem n
          [ "+"; "-"; "*"; "/"; "div"; "mod"; "abs"; "<"; "<="; ">"; ">="; "to_real";
            "to_int"; "is_int" ]),
      arith );
    ((fun n -> O4a_util.Strx.starts_with ~prefix:"bv" n || n = "concat" || n = "ubv_to_int"), bitvec);
    ( (fun n ->
        O4a_util.Strx.starts_with ~prefix:"str." n || O4a_util.Strx.starts_with ~prefix:"re." n),
      strings );
    ((fun n -> n = "select" || n = "store"), arrays);
    ((fun n -> O4a_util.Strx.starts_with ~prefix:"seq." n), seq);
    ( (fun n ->
        O4a_util.Strx.starts_with ~prefix:"set." n
        || O4a_util.Strx.starts_with ~prefix:"rel." n
        || n = "tuple"),
      sets );
    ((fun n -> O4a_util.Strx.starts_with ~prefix:"bag" n), bags);
    ((fun n -> O4a_util.Strx.starts_with ~prefix:"ff." n), finite_fields);
  ]

let app name sorts =
  let rec try_families = function
    | [] -> err "unknown constant or function symbol '%s'" name
    | (matches, check) :: rest -> if matches name then check name sorts else try_families rest
  in
  try_families families

let is_bv_value name =
  String.length name > 2
  && name.[0] = 'b'
  && name.[1] = 'v'
  && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub name 2 (String.length name - 2))

let indexed name idxs sorts =
  match (name, idxs, sorts) with
  | "extract", [ Term.Idx_num i; Term.Idx_num j ], [ Sort.Bitvec w ] ->
    if i >= j && j >= 0 && i < w then ok (Sort.Bitvec (i - j + 1))
    else err "invalid extract indices [%d:%d] on a bit-vector of width %d" i j w
  | "extract", _, _ -> err "wrong usage of '(_ extract i j)'"
  | ("zero_extend" | "sign_extend"), [ Term.Idx_num k ], [ Sort.Bitvec w ] ->
    if k >= 0 then ok (Sort.Bitvec (w + k)) else err "negative extension amount"
  | ("rotate_left" | "rotate_right"), [ Term.Idx_num _ ], [ Sort.Bitvec w ] ->
    ok (Sort.Bitvec w)
  | "repeat", [ Term.Idx_num k ], [ Sort.Bitvec w ] ->
    if k >= 1 then ok (Sort.Bitvec (w * k)) else err "repeat count must be positive"
  | "int2bv", [ Term.Idx_num w ], [ Sort.Int ] ->
    if w >= 1 then ok (Sort.Bitvec w) else err "invalid bit-vector width %d" w
  | "divisible", [ Term.Idx_num n ], [ Sort.Int ] ->
    if n >= 1 then ok Sort.Bool else err "divisible requires a positive index"
  | "re.loop", [ Term.Idx_num _; Term.Idx_num _ ], [ Sort.Reglan ] -> ok Sort.Reglan
  | "char", [ Term.Idx_sym _ ], [] -> ok Sort.String_sort
  | "tuple.select", [ Term.Idx_num i ], [ Sort.Tuple ss ] -> (
    match List.nth_opt ss i with
    | Some s -> ok s
    | None -> err "tuple.select index %d out of bounds for %s" i (sort_str (Sort.Tuple ss)))
  | _, [ Term.Idx_num w ], [] when is_bv_value name ->
    if w >= 1 then ok (Sort.Bitvec w) else err "invalid bit-vector width %d" w
  | _ ->
    err "unknown or malformed indexed identifier '(_ %s %s)' applied to %s" name
      (String.concat " " (List.map (function Term.Idx_num n -> string_of_int n | Term.Idx_sym s -> s) idxs))
      (String.concat " " (List.map sort_str sorts))

let qual name sort sorts =
  match (name, sort, sorts) with
  | "seq.empty", Sort.Seq _, [] -> ok sort
  | "set.empty", Sort.Set _, [] -> ok sort
  | "set.universe", Sort.Set _, [] -> ok sort
  | "bag.empty", Sort.Bag _, [] -> ok sort
  | "tuple.unit", Sort.Tuple [], [] -> ok sort
  | "const", Sort.Array (_, e), [ e' ] when Sort.equal e e' -> ok sort
  | "const", Sort.Array (_, e), [ got ] ->
    err "the constant array's element sort %s does not match the value sort %s"
      (sort_str e) (sort_str got)
  | _ ->
    err "unknown or malformed qualified identifier '(as %s %s)' applied to %d arguments"
      name (sort_str sort) (List.length sorts)

let nullary = function
  | "re.none" | "re.all" | "re.allchar" -> Some Sort.Reglan
  | "tuple.unit" -> Some (Sort.Tuple [])
  | _ -> None

let known_plain =
  [ "not"; "and"; "or"; "xor"; "=>"; "="; "distinct"; "ite"; "+"; "-"; "*"; "/"; "div";
    "mod"; "abs"; "<"; "<="; ">"; ">="; "to_real"; "to_int"; "is_int"; "concat"; "select";
    "store"; "tuple"; "bag"; "ubv_to_int"; "bv2nat" ]

let known_prefixes = [ "bv"; "str."; "re."; "seq."; "set."; "rel."; "bag."; "ff." ]

let known_indexed =
  [ "extract"; "zero_extend"; "sign_extend"; "rotate_left"; "rotate_right"; "repeat";
    "int2bv"; "divisible"; "re.loop"; "char"; "tuple.select"; "is" ]

let known_qual = [ "seq.empty"; "set.empty"; "set.universe"; "bag.empty"; "tuple.unit"; "const" ]

let is_known_op name =
  List.mem name known_plain
  || List.mem name known_indexed
  || List.mem name known_qual
  || nullary name <> None
  || List.exists (fun p -> O4a_util.Strx.starts_with ~prefix:p name) known_prefixes
