(** Sort checking of terms and scripts against declared symbols and the
    theory signatures in {!Signature}. *)

open Smtlib

type env

val env_of_script : Script.t -> env
(** Collect declarations (functions, constants, datatypes, sorts) in order. *)

val env_vars : env -> (string * Sort.t) list
(** Zero-arity symbols visible in the environment. *)

val add_var : string -> Sort.t -> env -> env
(** Extend with a local binding (used when checking open terms). *)

val infer :
  ?allow_placeholders:bool -> env -> Term.t -> (Sort.t, string) result
(** Sort of a term. Placeholder holes are an error unless
    [allow_placeholders] is set, in which case they check as [Bool] (the
    paper's generators only produce Boolean terms for holes). *)

val check_bool : ?allow_placeholders:bool -> env -> Term.t -> (unit, string) result

val check_script : ?allow_placeholders:bool -> Script.t -> (unit, string) result
(** Check each command in sequence: assertion bodies must be [Bool],
    [define-fun] bodies must match their declared result sort, duplicate
    declarations are rejected. *)
