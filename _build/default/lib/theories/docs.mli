(** Documentation prose per theory — the input of the grammar-summarization
    prompt (Figure 3a in the paper). Mirrors the structure of the SMT-LIB
    standard theory pages and the informal solver-extension pages (cvc5's
    Sets/Bags/FiniteFields docs, Z3's sequence docs). Keyed by theory key
    (see {!Theory.info.key}); raises [Invalid_argument] on unknown keys. *)

val doc : string -> string

val known_keys : string list
