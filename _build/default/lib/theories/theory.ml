open Smtlib

type id =
  | Core
  | Ints
  | Reals
  | Reals_ints
  | Bitvectors
  | Strings
  | Arrays
  | Datatypes
  | Seq
  | Sets
  | Bags
  | Finite_fields

type info = {
  id : id;
  name : string;
  key : string;
  standard : bool;
  extension_of : string option;
  ops : string list;
  base_sorts : Sort.t list;
  difficulty : float;
  year_introduced : int;
}

let all =
  [
    {
      id = Core;
      name = "Core";
      key = "core";
      standard = true;
      extension_of = None;
      ops = [ "not"; "and"; "or"; "xor"; "=>"; "="; "distinct"; "ite" ];
      base_sorts = [ Sort.Bool ];
      difficulty = 0.05;
      year_introduced = 2010;
    };
    {
      id = Ints;
      name = "Ints";
      key = "ints";
      standard = true;
      extension_of = None;
      ops = [ "+"; "-"; "*"; "div"; "mod"; "abs"; "<"; "<="; ">"; ">=" ];
      base_sorts = [ Sort.Int ];
      difficulty = 0.1;
      year_introduced = 2010;
    };
    {
      id = Reals;
      name = "Reals";
      key = "reals";
      standard = true;
      extension_of = None;
      ops = [ "+"; "-"; "*"; "/"; "<"; "<="; ">"; ">=" ];
      base_sorts = [ Sort.Real ];
      difficulty = 0.08;
      year_introduced = 2010;
    };
    {
      id = Reals_ints;
      name = "Reals_Ints";
      key = "reals_ints";
      standard = true;
      extension_of = None;
      ops = [ "to_real"; "to_int"; "is_int"; "+"; "-"; "*"; "/"; "div"; "mod"; "<"; "<=" ];
      base_sorts = [ Sort.Int; Sort.Real ];
      difficulty = 0.2;
      year_introduced = 2010;
    };
    {
      id = Bitvectors;
      name = "FixedSizeBitVectors";
      key = "bitvectors";
      standard = true;
      extension_of = None;
      ops =
        [ "concat"; "bvnot"; "bvneg"; "bvand"; "bvor"; "bvxor"; "bvadd"; "bvsub"; "bvmul";
          "bvudiv"; "bvurem"; "bvshl"; "bvlshr"; "bvashr"; "bvult"; "bvule"; "bvugt";
          "bvuge"; "bvslt"; "bvsle"; "bvsgt"; "bvsge"; "bvcomp"; "bv2nat" ];
      base_sorts = [ Sort.Bitvec 4; Sort.Bitvec 8 ];
      difficulty = 0.55;
      year_introduced = 2010;
    };
    {
      id = Strings;
      name = "Strings";
      key = "strings";
      standard = true;
      extension_of = None;
      ops =
        [ "str.++"; "str.len"; "str.at"; "str.substr"; "str.indexof"; "str.contains";
          "str.prefixof"; "str.suffixof"; "str.replace"; "str.replace_all"; "str.<";
          "str.<="; "str.to_int"; "str.from_int"; "str.to_code"; "str.from_code";
          "str.is_digit"; "str.in_re"; "str.to_re"; "re.++"; "re.union"; "re.inter";
          "re.*"; "re.+"; "re.opt"; "re.comp"; "re.range"; "re.diff" ];
      base_sorts = [ Sort.String_sort ];
      difficulty = 0.35;
      year_introduced = 2020;
    };
    {
      id = Arrays;
      name = "ArraysEx";
      key = "arrays";
      standard = true;
      extension_of = None;
      ops = [ "select"; "store" ];
      base_sorts = [ Sort.Array (Sort.Int, Sort.Int); Sort.Array (Sort.Int, Sort.Bool) ];
      difficulty = 0.3;
      year_introduced = 2010;
    };
    {
      id = Datatypes;
      name = "Datatypes";
      key = "datatypes";
      standard = true;
      extension_of = None;
      ops = [];
      base_sorts = [];
      difficulty = 0.5;
      year_introduced = 2017;
    };
    {
      id = Seq;
      name = "Sequences";
      key = "seq";
      standard = false;
      extension_of = Some "cove";
      ops =
        [ "seq.unit"; "seq.++"; "seq.len"; "seq.nth"; "seq.extract"; "seq.update";
          "seq.at"; "seq.contains"; "seq.indexof"; "seq.replace"; "seq.rev";
          "seq.prefixof"; "seq.suffixof" ];
      base_sorts = [ Sort.Seq Sort.Int ];
      difficulty = 0.6;
      year_introduced = 2021;
    };
    {
      id = Sets;
      name = "Sets and Relations";
      key = "sets";
      standard = false;
      extension_of = Some "cove";
      ops =
        [ "set.singleton"; "set.insert"; "set.union"; "set.inter"; "set.minus";
          "set.member"; "set.subset"; "set.card"; "set.complement"; "set.choose";
          "set.is_empty"; "rel.join"; "rel.transpose"; "rel.product"; "tuple" ];
      base_sorts = [ Sort.Set Sort.Int; Sort.Set (Sort.Tuple [ Sort.Int; Sort.Int ]) ];
      difficulty = 0.65;
      year_introduced = 2019;
    };
    {
      id = Bags;
      name = "Bags";
      key = "bags";
      standard = false;
      extension_of = Some "cove";
      ops =
        [ "bag"; "bag.union_max"; "bag.union_disjoint"; "bag.inter_min";
          "bag.difference_subtract"; "bag.difference_remove"; "bag.count"; "bag.member";
          "bag.card"; "bag.setof"; "bag.subbag"; "bag.choose" ];
      base_sorts = [ Sort.Bag Sort.Int ];
      difficulty = 0.6;
      year_introduced = 2021;
    };
    {
      id = Finite_fields;
      name = "FiniteFields";
      key = "finite_fields";
      standard = false;
      extension_of = Some "cove";
      ops = [ "ff.add"; "ff.mul"; "ff.neg"; "ff.bitsum" ];
      base_sorts = [ Sort.Finite_field 3; Sort.Finite_field 5 ];
      difficulty = 0.8;
      year_introduced = 2022;
    };
  ]

let find id = List.find (fun t -> t.id = id) all

let find_by_key key = List.find_opt (fun t -> t.key = key) all

let standard_theories = List.filter (fun t -> t.standard) all

let extension_theories = List.filter (fun t -> not t.standard) all

let id_to_string id = (find id).key

let doc id = Docs.doc (id_to_string id)

let ground_truth_cfg id = Cfgs.cfg (id_to_string id)

let of_string key = Option.map (fun t -> t.id) (find_by_key key)
