let core_cfg =
  {|bool ::= @bool_lit | @var_bool
  | "(not " bool ")"
  | "(and " bool " " bool ")"
  | "(and " bool " " bool " " bool ")"
  | "(or " bool " " bool ")"
  | "(or " bool " " bool " " bool ")"
  | "(xor " bool " " bool ")"
  | "(=> " bool " " bool ")"
  | "(= " bool " " bool ")"
  | "(distinct " bool " " bool ")"
  | "(ite " bool " " bool " " bool ")"
|}

let ints_cfg =
  {|bool ::= "(= " int " " int ")"
  | "(distinct " int " " int ")"
  | "(< " int " " int ")"
  | "(<= " int " " int ")"
  | "(> " int " " int ")"
  | "(>= " int " " int ")"
  | "(<= " int " " int " " int ")"
  | "((_ divisible " @divisor ") " int ")"
  | "(not " bool ")"
int ::= @int_lit | @var_int
  | "(- " int ")"
  | "(+ " int " " int ")"
  | "(- " int " " int ")"
  | "(* " int " " int ")"
  | "(+ " int " " int " " int ")"
  | "(div " int " " int ")"
  | "(mod " int " " int ")"
  | "(abs " int ")"
  | "(ite " bool " " int " " int ")"
|}

let reals_cfg =
  {|bool ::= "(= " real " " real ")"
  | "(distinct " real " " real ")"
  | "(< " real " " real ")"
  | "(<= " real " " real ")"
  | "(> " real " " real ")"
  | "(>= " real " " real ")"
  | "(< " real " " real " " real ")"
  | "(not " bool ")"
real ::= @real_lit | @var_real
  | "(- " real ")"
  | "(+ " real " " real ")"
  | "(- " real " " real ")"
  | "(* " real " " real ")"
  | "(/ " real " " real ")"
  | "(ite " bool " " real " " real ")"
|}

let reals_ints_cfg =
  {|bool ::= "(= " int " " int ")"
  | "(= " real " " real ")"
  | "(< " real " " real ")"
  | "(<= " int " " int ")"
  | "(is_int " real ")"
  | "((_ divisible " @divisor ") " int ")"
  | "(not " bool ")"
int ::= @int_lit | @var_int
  | "(to_int " real ")"
  | "(+ " int " " int ")"
  | "(- " int " " int ")"
  | "(* " int " " int ")"
  | "(div " int " " int ")"
  | "(mod " int " " int ")"
  | "(abs " int ")"
real ::= @real_lit | @var_real
  | "(to_real " int ")"
  | "(+ " real " " real ")"
  | "(* " real " " real ")"
  | "(/ " real " " real ")"
|}

let bitvectors_cfg =
  {|bool ::= "(= " bv " " bv ")"
  | "(distinct " bv " " bv ")"
  | "(bvult " bv " " bv ")"
  | "(bvule " bv " " bv ")"
  | "(bvugt " bv " " bv ")"
  | "(bvuge " bv " " bv ")"
  | "(bvslt " bv " " bv ")"
  | "(bvsle " bv " " bv ")"
  | "(bvsgt " bv " " bv ")"
  | "(bvsge " bv " " bv ")"
  | "(bvult " bv2 " " bv2 ")"
  | "(= " bv2 " " bv2 ")"
  | "(= (bv2nat " bv ") " int ")"
  | "(not " bool ")"
bv ::= @bv_lit | @var_bv
  | "(bvnot " bv ")"
  | "(bvneg " bv ")"
  | "(bvand " bv " " bv ")"
  | "(bvor " bv " " bv ")"
  | "(bvxor " bv " " bv ")"
  | "(bvadd " bv " " bv ")"
  | "(bvsub " bv " " bv ")"
  | "(bvmul " bv " " bv ")"
  | "(bvudiv " bv " " bv ")"
  | "(bvurem " bv " " bv ")"
  | "(bvshl " bv " " bv ")"
  | "(bvlshr " bv " " bv ")"
  | "(bvashr " bv " " bv ")"
  | "((_ extract " @extract_hi " " @extract_lo ") " bv ")"
  | "((_ rotate_left 1) " bv ")"
  | "((_ rotate_right 2) " bv ")"
  | "((_ int2bv " @bv_width ") " int ")"
bv2 ::= "(concat " bv " " bv ")"
int ::= @int_lit | "(bv2nat " bv ")"
|}

let strings_cfg =
  {|bool ::= "(= " str " " str ")"
  | "(distinct " str " " str ")"
  | "(str.< " str " " str ")"
  | "(str.<= " str " " str ")"
  | "(str.contains " str " " str ")"
  | "(str.prefixof " str " " str ")"
  | "(str.suffixof " str " " str ")"
  | "(str.is_digit " str ")"
  | "(str.in_re " str " " regex ")"
  | "(= " int " " int ")"
  | "(< " int " " int ")"
  | "(not " bool ")"
str ::= @str_lit | @var_str
  | "(str.++ " str " " str ")"
  | "(str.++ " str " " str " " str ")"
  | "(str.at " str " " int ")"
  | "(str.substr " str " " int " " int ")"
  | "(str.replace " str " " str " " str ")"
  | "(str.replace_all " str " " str " " str ")"
  | "(str.from_int " int ")"
  | "(str.from_code " int ")"
int ::= @int_lit
  | "(str.len " str ")"
  | "(str.indexof " str " " str " " int ")"
  | "(str.to_int " str ")"
  | "(str.to_code " str ")"
regex ::= "re.none" | "re.all" | "re.allchar"
  | "(str.to_re " str ")"
  | "(re.++ " regex " " regex ")"
  | "(re.union " regex " " regex ")"
  | "(re.inter " regex " " regex ")"
  | "(re.* " regex ")"
  | "(re.+ " regex ")"
  | "(re.opt " regex ")"
  | "(re.comp " regex ")"
  | "(re.diff " regex " " regex ")"
  | "(re.range " @str_char " " @str_char ")"
  | "((_ re.loop 1 3) " regex ")"
|}

let arrays_cfg =
  {|bool ::= "(= " arr " " arr ")"
  | "(distinct " arr " " arr ")"
  | "(= " int " " int ")"
  | "(= (select " arr " " int ") " int ")"
  | "(< (select " arr " " int ") " int ")"
  | "(not " bool ")"
arr ::= @var_arr
  | "(store " arr " " int " " int ")"
  | "((as const (Array Int Int)) " int ")"
int ::= @int_lit | @var_int
  | "(select " arr " " int ")"
  | "(+ " int " " int ")"
|}

let datatypes_cfg =
  {|bool ::= "((_ is cons) " lst ")"
  | "((_ is nil) " lst ")"
  | "(= " lst " " lst ")"
  | "(distinct " lst " " lst ")"
  | "(= (head " lst ") " int ")"
  | "(= " int " " int ")"
  | "(= (match " lst " (((cons h t) (+ h 1)) (_ 0))) " int ")"
  | "(not " bool ")"
lst ::= @var_lst
  | "(as nil Lst)"
  | "(cons " int " " lst ")"
  | "(tail " lst ")"
  | "(match " lst " ((nil (as nil Lst)) ((cons h t) t)))"
int ::= @int_lit | @var_int | "(head " lst ")"
  | "(match " lst " ((nil 0) ((cons h t) h)))"
|}

let seq_cfg =
  {|bool ::= "(= " seq " " seq ")"
  | "(distinct " seq " " seq ")"
  | "(seq.contains " seq " " seq ")"
  | "(seq.prefixof " seq " " seq ")"
  | "(seq.suffixof " seq " " seq ")"
  | "(= " int " " int ")"
  | "(distinct " int " " int ")"
  | "(< " int " " int ")"
  | "(not " bool ")"
seq ::= "(as seq.empty (Seq Int))" | @var_seq
  | "(seq.unit " int ")"
  | "(seq.++ " seq " " seq ")"
  | "(seq.++ " seq " " seq " " seq ")"
  | "(seq.extract " seq " " int " " int ")"
  | "(seq.update " seq " " int " " seq ")"
  | "(seq.at " seq " " int ")"
  | "(seq.replace " seq " " seq " " seq ")"
  | "(seq.rev " seq ")"
int ::= @int_lit | @var_int
  | "(seq.len " seq ")"
  | "(seq.nth " seq " " int ")"
  | "(seq.indexof " seq " " seq " " int ")"
  | "(div " int " " int ")"
  | "(mod " int " " int ")"
|}

let sets_cfg =
  {|bool ::= "(set.member " int " " set ")"
  | "(set.subset " set " " set ")"
  | "(= " set " " set ")"
  | "(distinct " set " " set ")"
  | "(set.is_empty " set ")"
  | "(set.is_singleton " set ")"
  | "(= " int " " int ")"
  | "(set.member (tuple " int " " int ") " rel ")"
  | "(set.subset " rel " " rel ")"
  | "(= " rel " " rel ")"
  | "(not " bool ")"
set ::= "(as set.empty (Set Int))" | @var_set
  | "(set.singleton " int ")"
  | "(set.insert " int " " set ")"
  | "(set.insert " int " " int " " set ")"
  | "(set.union " set " " set ")"
  | "(set.inter " set " " set ")"
  | "(set.minus " set " " set ")"
  | "(set.complement " set ")"
rel ::= "(as set.empty (Set (Tuple Int Int)))" | @var_rel
  | "(set.singleton (tuple " int " " int "))"
  | "(set.union " rel " " rel ")"
  | "(set.inter " rel " " rel ")"
  | "(rel.transpose " rel ")"
  | "(rel.join " rel " " rel ")"
int ::= @int_lit | @var_int
  | "(set.card " set ")"
  | "(set.choose " set ")"
|}

let bags_cfg =
  {|bool ::= "(bag.member " int " " bag ")"
  | "(bag.subbag " bag " " bag ")"
  | "(= " bag " " bag ")"
  | "(distinct " bag " " bag ")"
  | "(= " int " " int ")"
  | "(< " int " " int ")"
  | "(not " bool ")"
bag ::= "(as bag.empty (Bag Int))" | @var_bag
  | "(bag " int " " int ")"
  | "(bag.union_max " bag " " bag ")"
  | "(bag.union_disjoint " bag " " bag ")"
  | "(bag.inter_min " bag " " bag ")"
  | "(bag.difference_subtract " bag " " bag ")"
  | "(bag.difference_remove " bag " " bag ")"
  | "(bag.setof " bag ")"
int ::= @int_lit | @var_int
  | "(bag.count " int " " bag ")"
  | "(bag.card " bag ")"
  | "(bag.choose " bag ")"
|}

let finite_fields_cfg =
  {|bool ::= "(= " ff " " ff ")"
  | "(distinct " ff " " ff ")"
  | "(not " bool ")"
  | "(and " bool " " bool ")"
ff ::= @ff_lit | @var_ff
  | "(ff.add " ff " " ff ")"
  | "(ff.add " ff " " ff " " ff ")"
  | "(ff.mul " ff " " ff ")"
  | "(ff.neg " ff ")"
  | "(ff.bitsum " ff " " ff ")"
  | "(ff.bitsum " ff " " ff " " ff ")"
|}

let table =
  [
    ("core", core_cfg);
    ("ints", ints_cfg);
    ("reals", reals_cfg);
    ("reals_ints", reals_ints_cfg);
    ("bitvectors", bitvectors_cfg);
    ("strings", strings_cfg);
    ("arrays", arrays_cfg);
    ("datatypes", datatypes_cfg);
    ("seq", seq_cfg);
    ("sets", sets_cfg);
    ("bags", bags_cfg);
    ("finite_fields", finite_fields_cfg);
  ]

let cfg key =
  match List.assoc_opt key table with
  | Some g -> g
  | None -> invalid_arg (Printf.sprintf "Cfgs.cfg: unknown theory '%s'" key)

let known_keys = List.map fst table
