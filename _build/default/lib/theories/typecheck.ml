open Smtlib

type env = {
  vars : (string * Sort.t) list;  (** innermost bindings first *)
  funs : Script.fun_decl list;
  datatypes : Command.datatype_decl list;
}

let env_of_script script =
  {
    vars = [];
    funs = Script.declared_funs script;
    datatypes = Script.declared_datatypes script;
  }

let env_vars env =
  env.vars
  @ List.filter_map
      (fun (d : Script.fun_decl) ->
        if d.arg_sorts = [] then Some (d.name, d.result_sort) else None)
      env.funs

let add_var name sort env = { env with vars = (name, sort) :: env.vars }

let err fmt = Printf.ksprintf (fun m -> Error m) fmt

let find_fun env name = List.find_opt (fun (d : Script.fun_decl) -> d.name = name) env.funs

let find_ctor env name =
  List.find_map
    (fun (dt : Command.datatype_decl) ->
      List.find_map
        (fun (c : Command.constructor) ->
          if c.ctor_name = name then Some (dt, c) else None)
        dt.constructors)
    env.datatypes

let rec sequence_results = function
  | [] -> Ok []
  | Error e :: _ -> Error e
  | Ok x :: rest -> (
    match sequence_results rest with Ok xs -> Ok (x :: xs) | Error e -> Error e)

let rec infer ?(allow_placeholders = false) env term =
  let infer_sub = infer ~allow_placeholders in
  match term with
  | Term.Const (Term.Bool_lit _) -> Ok Sort.Bool
  | Term.Const (Term.Int_lit _) -> Ok Sort.Int
  | Term.Const (Term.Real_lit _) -> Ok Sort.Real
  | Term.Const (Term.Bv_lit { width; _ }) -> Ok (Sort.Bitvec width)
  | Term.Const (Term.String_lit _) -> Ok Sort.String_sort
  | Term.Const (Term.Ff_lit { order; _ }) -> Ok (Sort.Finite_field order)
  | Term.Placeholder _ ->
    if allow_placeholders then Ok Sort.Bool
    else err "unfilled placeholder in term"
  | Term.Var name -> (
    match List.assoc_opt name env.vars with
    | Some sort -> Ok sort
    | None -> (
      match find_fun env name with
      | Some d when d.arg_sorts = [] -> Ok d.result_sort
      | Some d ->
        err "symbol '%s' expects %d arguments but is used as a constant" name
          (List.length d.arg_sorts)
      | None -> (
        match Signature.nullary name with
        | Some sort -> Ok sort
        | None -> err "unknown constant or function symbol '%s'" name)))
  | Term.App (name, args) -> (
    match sequence_results (List.map (infer_sub env) args) with
    | Error e -> Error e
    | Ok arg_sorts -> (
      match find_fun env name with
      | Some d ->
        if List.length d.arg_sorts <> List.length arg_sorts then
          err "the function '%s' expects %d arguments, got %d" name
            (List.length d.arg_sorts) (List.length arg_sorts)
        else if List.for_all2 Sort.equal d.arg_sorts arg_sorts then Ok d.result_sort
        else
          err "wrong argument sorts for '%s': expected (%s), got (%s)" name
            (String.concat " " (List.map Sort.to_string d.arg_sorts))
            (String.concat " " (List.map Sort.to_string arg_sorts))
      | None -> Signature.app name arg_sorts))
  | Term.Indexed_app ("is", [ Term.Idx_sym ctor ], args) -> (
    match sequence_results (List.map (infer_sub env) args) with
    | Error e -> Error e
    | Ok [ Sort.Datatype dt_name ] -> (
      match find_ctor env ctor with
      | Some (dt, _) when dt.dt_name = dt_name -> Ok Sort.Bool
      | Some (dt, _) ->
        err "tester '(_ is %s)' applied to datatype %s but %s belongs to %s" ctor dt_name
          ctor dt.dt_name
      | None -> err "unknown constructor '%s' in tester" ctor)
    | Ok sorts ->
      err "tester '(_ is %s)' expects one datatype argument, got %s" ctor
        (String.concat " " (List.map Sort.to_string sorts)))
  | Term.Indexed_app (name, idxs, args) -> (
    match sequence_results (List.map (infer_sub env) args) with
    | Error e -> Error e
    | Ok arg_sorts -> Signature.indexed name idxs arg_sorts)
  | Term.Qual (name, sort) -> (
    match Signature.qual name sort [] with
    | Ok s -> Ok s
    | Error _ -> (
      (* (as ctor Datatype) qualifications *)
      match find_ctor env name with
      | Some (dt, c) when Sort.equal sort (Sort.Datatype dt.dt_name) && c.selectors = [] ->
        Ok sort
      | _ -> Signature.qual name sort []))
  | Term.Qual_app (name, sort, args) -> (
    match sequence_results (List.map (infer_sub env) args) with
    | Error e -> Error e
    | Ok arg_sorts -> Signature.qual name sort arg_sorts)
  | Term.Let (bindings, body) -> (
    let binding_results =
      List.map (fun (name, value) -> (name, infer_sub env value)) bindings
    in
    match
      sequence_results
        (List.map (fun (name, r) -> Result.map (fun s -> (name, s)) r) binding_results)
    with
    | Error e -> Error e
    | Ok bound ->
      let env' = List.fold_left (fun acc (n, s) -> add_var n s acc) env bound in
      infer_sub env' body)
  | Term.Forall (binders, body) | Term.Exists (binders, body) -> (
    let env' = List.fold_left (fun acc (n, s) -> add_var n s acc) env binders in
    match infer_sub env' body with
    | Ok Sort.Bool -> Ok Sort.Bool
    | Ok other ->
      err "quantified body must be Bool, got %s" (Sort.to_string other)
    | Error e -> Error e)
  | Term.Annot (body, _) -> infer_sub env body
  | Term.Match (scrutinee, cases) -> (
    match infer_sub env scrutinee with
    | Error e -> Error e
    | Ok (Sort.Datatype dt_name) -> (
      let dt =
        List.find_opt
          (fun (d : Command.datatype_decl) -> d.Command.dt_name = dt_name)
          env.datatypes
      in
      match dt with
      | None -> err "unknown datatype '%s' in match" dt_name
      | Some dt -> (
        (* check each case under its pattern bindings *)
        let case_sort (pattern, body) =
          match pattern with
          | Term.P_wildcard -> infer_sub env body
          | Term.P_var name ->
            infer_sub (add_var name (Sort.Datatype dt_name) env) body
          | Term.P_ctor (ctor, binders) -> (
            match
              List.find_opt
                (fun (c : Command.constructor) -> c.Command.ctor_name = ctor)
                dt.Command.constructors
            with
            | None -> err "constructor '%s' does not belong to datatype %s" ctor dt_name
            | Some c ->
              if List.length binders <> List.length c.Command.selectors then
                err "pattern '%s' expects %d binders, got %d" ctor
                  (List.length c.Command.selectors) (List.length binders)
              else (
                let env' =
                  List.fold_left2
                    (fun e b (_, s) -> add_var b s e)
                    env binders c.Command.selectors
                in
                infer_sub env' body))
        in
        match sequence_results (List.map case_sort cases) with
        | Error e -> Error e
        | Ok [] -> err "match with no cases"
        | Ok (first :: rest) ->
          if not (List.for_all (Sort.equal first) rest) then
            err "match cases disagree on the result sort"
          else (
            (* exhaustiveness: a catch-all/wildcard, or every constructor *)
            let has_catch_all =
              List.exists
                (fun (p, _) ->
                  match p with
                  | Term.P_var _ | Term.P_wildcard -> true
                  | Term.P_ctor _ -> false)
                cases
            in
            let covered c =
              List.exists
                (fun (p, _) ->
                  match p with Term.P_ctor (name, _) -> name = c | _ -> false)
                cases
            in
            if
              has_catch_all
              || List.for_all
                   (fun (c : Command.constructor) -> covered c.Command.ctor_name)
                   dt.Command.constructors
            then Ok first
            else err "match is not exhaustive for datatype %s" dt_name)))
    | Ok other -> err "match scrutinee must be a datatype, got %s" (Sort.to_string other))

let check_bool ?(allow_placeholders = false) env term =
  match infer ~allow_placeholders env term with
  | Ok Sort.Bool -> Ok ()
  | Ok other -> err "expected a term of sort Bool, got %s" (Sort.to_string other)
  | Error e -> Error e

let check_script ?(allow_placeholders = false) script =
  let check_cmd (env, seen_names) cmd =
    let declare names k =
      match List.find_opt (fun n -> List.mem n seen_names) names with
      | Some dup -> Error (Printf.sprintf "symbol '%s' is already declared" dup)
      | None -> k (names @ seen_names)
    in
    match cmd with
    | Command.Declare_fun (name, _, _) | Command.Declare_const (name, _) ->
      declare [ name ] (fun seen -> Ok (env, seen))
    | Command.Define_fun (name, params, result_sort, body) ->
      declare [ name ] (fun seen ->
          let env' = List.fold_left (fun acc (n, s) -> add_var n s acc) env params in
          match infer ~allow_placeholders env' body with
          | Ok s when Sort.equal s result_sort -> Ok (env, seen)
          | Ok s ->
            err "define-fun '%s' body has sort %s but %s was declared" name
              (Sort.to_string s) (Sort.to_string result_sort)
          | Error e -> Error e)
    | Command.Declare_datatypes dts ->
      let names =
        List.concat_map
          (fun (dt : Command.datatype_decl) ->
            dt.dt_name
            :: List.concat_map
                 (fun (c : Command.constructor) ->
                   c.ctor_name :: List.map fst c.selectors)
                 dt.constructors)
          dts
      in
      declare names (fun seen -> Ok (env, seen))
    | Command.Declare_sort (name, arity) ->
      if arity <> 0 then err "only arity-0 declared sorts are supported, '%s' has %d" name arity
      else declare [ name ] (fun seen -> Ok (env, seen))
    | Command.Assert body -> (
      match check_bool ~allow_placeholders env body with
      | Ok () -> Ok (env, seen_names)
      | Error e -> Error e)
    | Command.Get_value terms -> (
      match sequence_results (List.map (infer ~allow_placeholders env) terms) with
      | Ok _ -> Ok (env, seen_names)
      | Error e -> Error e)
    | Command.Set_logic _ | Command.Set_option _ | Command.Set_info _
    | Command.Check_sat | Command.Get_model | Command.Push _ | Command.Pop _
    | Command.Echo _ | Command.Exit ->
      Ok (env, seen_names)
  in
  (* The env must see all declarations up to each command; rebuild it
     incrementally from the script prefix. *)
  let rec go prefix_rev remaining seen_names =
    match remaining with
    | [] -> Ok ()
    | cmd :: rest -> (
      let env = env_of_script (List.rev (cmd :: prefix_rev)) in
      match check_cmd (env, seen_names) cmd with
      | Ok (_, seen') -> go (cmd :: prefix_rev) rest seen'
      | Error e -> Error e)
  in
  go [] script []
