type runtime =
  | Width_mismatch
  | Field_mismatch
  | Bad_int_literal
  | Bad_real_literal
  | Bad_ff_literal
  | Bad_string_quotes
  | Missing_declaration
  | Unbalanced_output

type grammar_defect =
  | Hallucinate of { lhs : string; alt_idx : int; from_op : string; to_op : string }
  | Arity_break of { lhs : string; alt_idx : int }
  | Drop_alt of { lhs : string; alt_idx : int }
  | Unit_join

type category =
  | C_width
  | C_field
  | C_literal
  | C_declaration
  | C_parse
  | C_arity
  | C_unknown_symbol of string
  | C_nullary_join
  | C_other

let contains sub s = O4a_util.Strx.contains_sub ~sub s

let quoted_symbol msg =
  match String.index_opt msg '\'' with
  | Some i -> (
    match String.index_from_opt msg (i + 1) '\'' with
    | Some j -> String.sub msg (i + 1) (j - i - 1)
    | None -> "")
  | None -> ""

let categorize_error msg =
  if contains "equal width" msg || contains "bit-vector" msg then C_width
  else if contains "finite field" msg || contains "FiniteField" msg then
    if contains "same finite field" msg then C_field else C_literal
  else if contains "non-nullary" msg || contains "nullary" msg then C_nullary_join
  else if contains "expects" msg && contains "arguments, got" msg then C_arity
  else if contains "unknown constant or function symbol" msg then
    C_unknown_symbol (quoted_symbol msg)
  else if contains "unknown" msg && contains "operator" msg then
    C_unknown_symbol (quoted_symbol msg)
  else if contains "parse error" msg || contains "unbalanced" msg
          || contains "unterminated" msg || contains "invalid token" msg then C_parse
  else if contains "wrong argument sorts" msg || contains "wrong usage" msg then C_arity
  else if
    contains "sort" msg || contains "Int" msg || contains "Real" msg
    || contains "Bool" msg
  then C_literal
  else C_other

(* A generated-but-undeclared variable name (int3, seq0, ...) vs an operator:
   our generators use sort-prefixed counters, so a short alnum tail after a
   known prefix marks a variable. *)
let looks_like_generated_var sym =
  let prefixes =
    [ "int"; "real"; "str"; "bv"; "ff"; "seq"; "set"; "bag"; "arr"; "rel"; "urel";
      "lst"; "b"; "x" ]
  in
  List.exists
    (fun p ->
      O4a_util.Strx.starts_with ~prefix:p sym
      && String.length sym > String.length p
      && String.for_all
           (fun c -> c >= '0' && c <= '9')
           (String.sub sym (String.length p) (String.length sym - String.length p)))
    prefixes

let runtime_matches category runtime =
  match (category, runtime) with
  | C_width, Width_mismatch -> true
  | C_field, Field_mismatch -> true
  | ( (C_literal | C_arity),
      (Bad_int_literal | Bad_real_literal | Bad_ff_literal | Bad_string_quotes) ) ->
    true
  | C_parse, (Unbalanced_output | Bad_string_quotes | Bad_ff_literal) -> true
  | C_declaration, Missing_declaration -> true
  | C_unknown_symbol sym, Missing_declaration -> looks_like_generated_var sym
  | C_unknown_symbol sym, Bad_ff_literal ->
    O4a_util.Strx.starts_with ~prefix:"ff" sym
  | _ -> false

let defect_matches category defect =
  match (category, defect) with
  | _, Drop_alt _ -> false (* omissions produce no errors; never repaired *)
  | C_unknown_symbol sym, Hallucinate { to_op; _ } -> sym = to_op
  | (C_arity | C_literal | C_other), Arity_break _ -> true
  | C_nullary_join, Unit_join -> true
  | _ -> false

let runtime_to_string = function
  | Width_mismatch -> "width-mismatch"
  | Field_mismatch -> "field-mismatch"
  | Bad_int_literal -> "bad-int-literal"
  | Bad_real_literal -> "bad-real-literal"
  | Bad_ff_literal -> "bad-ff-literal"
  | Bad_string_quotes -> "bad-string-quotes"
  | Missing_declaration -> "missing-declaration"
  | Unbalanced_output -> "unbalanced-output"

let defect_to_string = function
  | Hallucinate { from_op; to_op; _ } ->
    Printf.sprintf "hallucinate(%s->%s)" from_op to_op
  | Arity_break { lhs; alt_idx } -> Printf.sprintf "arity-break(%s#%d)" lhs alt_idx
  | Drop_alt { lhs; alt_idx } -> Printf.sprintf "drop-alt(%s#%d)" lhs alt_idx
  | Unit_join -> "unit-join"

let category_to_string = function
  | C_width -> "width"
  | C_field -> "field"
  | C_literal -> "literal"
  | C_declaration -> "declaration"
  | C_parse -> "parse"
  | C_arity -> "arity"
  | C_unknown_symbol s -> Printf.sprintf "unknown-symbol(%s)" s
  | C_nullary_join -> "nullary-join"
  | C_other -> "other"
