(** Algorithm 1: LLM-assisted generator construction with self-correction.

    For each theory: (1) prompt the model to summarize a CFG from the
    documentation — simulated as the ground-truth grammar perturbed by the
    profile's omission/hallucination noise; (2) prompt it to implement a
    generator — simulated as runtime-flaw injection scaled by the theory's
    difficulty; (3) iterate the sample-validate-distill-refine loop
    (sample_num = 20, max_iter = 10) until all samples parse or the budget is
    exhausted, keeping the best version seen. *)

open Theories

type report = {
  theory_key : string;
  iterations : int;  (** refinement rounds performed (0 if initially clean) *)
  sample_num : int;
  initial_valid : int;  (** valid samples out of [sample_num] at iteration 0 *)
  final_valid : int;
  history : (int * int) list;  (** (iteration, valid count) including iter 0 *)
  llm_calls : int;  (** queries attributable to this theory's construction *)
}

val sample_num : int
val max_iter : int

val initial_generator :
  client:Llm_sim.Client.t -> Theory.info -> Generator.t
(** Phase 1+2: noisy summarization and synthesis (two LLM queries). *)

val validate_samples :
  solvers:Solver.Engine.t list ->
  rng:O4a_util.Rng.t ->
  Generator.t ->
  int * string list
(** Generate [sample_num] samples; return (valid count, error messages of
    the invalid ones). A sample is valid if {e at least one} solver parses
    and sort-checks it (paper, Algorithm 1 line 20). *)

val self_correct :
  ?max_iter:int ->
  client:Llm_sim.Client.t ->
  solvers:Solver.Engine.t list ->
  Generator.t ->
  Generator.t * report
(** The correction loop; returns the best generator and its report. *)

val construct :
  ?max_iter:int ->
  client:Llm_sim.Client.t ->
  solvers:Solver.Engine.t list ->
  Theory.info ->
  Generator.t * report

val construct_all :
  ?max_iter:int ->
  client:Llm_sim.Client.t ->
  solvers:Solver.Engine.t list ->
  Theory.info list ->
  (Generator.t * report) list
