open Theories
module Rng = O4a_util.Rng
module Cfg = Grammar_kit.Cfg

type t = {
  theory : Theory.info;
  defects : Flaw.grammar_defect list;
  runtime_flaws : Flaw.runtime list;
  version : int;
  profile_name : string;
}

type emitted = {
  decls : string list;
  term : string;
}

let perfect theory =
  { theory; defects = []; runtime_flaws = []; version = 0; profile_name = "perfect" }

(* ------------------------------------------------------------------ *)
(* Applying grammar defects                                            *)
(* ------------------------------------------------------------------ *)

let replace_op_in_alt ~from_op ~to_op alt =
  List.map
    (function
      | Cfg.Lit text ->
        Cfg.Lit
          (if O4a_util.Strx.contains_sub ~sub:from_op text then (
             (* replace the first occurrence *)
             let rec replace i =
               if i + String.length from_op > String.length text then text
               else if String.sub text i (String.length from_op) = from_op then
                 String.sub text 0 i ^ to_op
                 ^ String.sub text
                     (i + String.length from_op)
                     (String.length text - i - String.length from_op)
               else replace (i + 1)
             in
             replace 0)
           else text)
      | s -> s)
    alt

let break_arity alt =
  (* duplicate the first nonterminal reference, producing one extra operand *)
  match O4a_util.Listx.find_index (function Cfg.Ref _ -> true | _ -> false) alt with
  | None -> alt
  | Some i ->
    let r = List.nth alt i in
    O4a_util.Listx.take (i + 1) alt @ [ Cfg.Lit " "; r ] @ O4a_util.Listx.drop (i + 1) alt

let unit_join_production =
  {
    Cfg.lhs = "urel";
    alternatives =
      [ [ Cfg.Lit "(as set.empty (Set UnitTuple))" ]; [ Cfg.Hook "var_urel" ] ];
  }

let unit_join_bool_alt =
  [ Cfg.Lit "(set.subset (rel.join "; Cfg.Ref "urel"; Cfg.Lit " "; Cfg.Ref "urel";
    Cfg.Lit ") (rel.join "; Cfg.Ref "urel"; Cfg.Lit " "; Cfg.Ref "urel"; Cfg.Lit "))" ]

let apply_defect cfg defect =
  match defect with
  | Flaw.Drop_alt { lhs; alt_idx } ->
    (* remove only when another alternative remains *)
    let productions =
      List.map
        (fun p ->
          if p.Cfg.lhs = lhs && List.length p.Cfg.alternatives > 1 then
            { p with Cfg.alternatives = O4a_util.Listx.remove_nth alt_idx p.Cfg.alternatives }
          else p)
        cfg.Cfg.productions
    in
    { cfg with Cfg.productions = productions }
  | Flaw.Hallucinate { lhs; alt_idx; from_op; to_op } ->
    let productions =
      List.map
        (fun p ->
          if p.Cfg.lhs = lhs then
            {
              p with
              Cfg.alternatives =
                List.mapi
                  (fun i alt ->
                    if i = alt_idx then replace_op_in_alt ~from_op ~to_op alt else alt)
                  p.Cfg.alternatives;
            }
          else p)
        cfg.Cfg.productions
    in
    { cfg with Cfg.productions = productions }
  | Flaw.Arity_break { lhs; alt_idx } ->
    let productions =
      List.map
        (fun p ->
          if p.Cfg.lhs = lhs then
            {
              p with
              Cfg.alternatives =
                List.mapi
                  (fun i alt -> if i = alt_idx then break_arity alt else alt)
                  p.Cfg.alternatives;
            }
          else p)
        cfg.Cfg.productions
    in
    { cfg with Cfg.productions = productions }
  | Flaw.Unit_join ->
    let cfg = { cfg with Cfg.productions = cfg.Cfg.productions @ [ unit_join_production ] } in
    Cfg.add_alternative cfg cfg.Cfg.start unit_join_bool_alt

let effective_cfg t =
  let base = Grammar_kit.Ebnf.parse_exn (Theory.ground_truth_cfg t.theory.Theory.id) in
  List.fold_left apply_defect base t.defects

(* ------------------------------------------------------------------ *)
(* Hook interpretation                                                 *)
(* ------------------------------------------------------------------ *)

type gen_state = {
  rng : Rng.t;
  flaws : Flaw.runtime list;
  mutable pools : (string * string list) list;  (** sort text -> var names *)
  mutable decl_lines : string list;  (** reversed *)
  mutable counters : (string * int) list;
  width : int;  (** bit-vector width for this term *)
  order : int;  (** finite-field order for this term *)
}

let has_flaw st f = List.mem f st.flaws

let widths = [ 2; 3; 4 ]
let orders = [ 3; 5; 7 ]

let next_counter st prefix =
  let n = match List.assoc_opt prefix st.counters with Some n -> n | None -> 0 in
  st.counters <- (prefix, n + 1) :: List.remove_assoc prefix st.counters;
  n

let datatype_decl_line =
  "(declare-datatypes ((Lst 0)) (((nil) (cons (head Int) (tail Lst)))))"

let fresh_var st ~prefix ~sort_text =
  let name = Printf.sprintf "%s%d" prefix (next_counter st prefix) in
  let skip_decl = has_flaw st Flaw.Missing_declaration && Rng.chance st.rng 0.35 in
  if not skip_decl then (
    (match prefix with
    | "lst" when not (List.mem datatype_decl_line st.decl_lines) ->
      st.decl_lines <- datatype_decl_line :: st.decl_lines
    | _ -> ());
    st.decl_lines <-
      Printf.sprintf "(declare-fun %s () %s)" name sort_text :: st.decl_lines;
    let pool = match List.assoc_opt sort_text st.pools with Some p -> p | None -> [] in
    st.pools <- (sort_text, name :: pool) :: List.remove_assoc sort_text st.pools);
  name

let var st ~prefix ~sort_text =
  let pool = match List.assoc_opt sort_text st.pools with Some p -> p | None -> [] in
  if pool <> [] && Rng.chance st.rng 0.6 then Rng.choose st.rng pool
  else fresh_var st ~prefix ~sort_text

let term_width st = if has_flaw st Flaw.Width_mismatch then Rng.choose st.rng widths else st.width

let term_order st = if has_flaw st Flaw.Field_mismatch then Rng.choose st.rng orders else st.order

let bv_sort_text w = Printf.sprintf "(_ BitVec %d)" w

let ff_sort_text p = Printf.sprintf "(_ FiniteField %d)" p

let int_literal st =
  let n = Rng.int_in st.rng (-2) 3 in
  if has_flaw st Flaw.Bad_int_literal && Rng.chance st.rng 0.5 then
    Printf.sprintf "%d.0" (abs n)
  else if n < 0 then Printf.sprintf "(- %d)" (-n)
  else string_of_int n

let real_literal st =
  let choices = [ "0.0"; "1.0"; "1.5"; "2.0"; "0.5"; "(- 1.0)" ] in
  if has_flaw st Flaw.Bad_real_literal && Rng.chance st.rng 0.5 then
    string_of_int (Rng.int_in st.rng 0 3)
  else Rng.choose st.rng choices

let bv_literal st =
  let w = term_width st in
  let v = Rng.int st.rng (1 lsl w) in
  if Rng.chance st.rng 0.3 then Printf.sprintf "(_ bv%d %d)" v w
  else (
    let buf = Buffer.create (w + 2) in
    Buffer.add_string buf "#b";
    for i = w - 1 downto 0 do
      Buffer.add_char buf (if (v lsr i) land 1 = 1 then '1' else '0')
    done;
    Buffer.contents buf)

let str_literal st =
  let s = Rng.choose st.rng [ ""; "a"; "b"; "ab"; "ba"; "0"; "aa" ] in
  if has_flaw st Flaw.Bad_string_quotes && Rng.chance st.rng 0.5 then
    Printf.sprintf "'%s'" s
  else Printf.sprintf "\"%s\"" s

let ff_literal st =
  let p = term_order st in
  let v = Rng.int st.rng p in
  if has_flaw st Flaw.Bad_ff_literal && Rng.chance st.rng 0.5 then
    Printf.sprintf "ff%d" v
  else Printf.sprintf "(as ff%d (_ FiniteField %d))" v p

let hook st name =
  match name with
  | "bool_lit" -> if Rng.bool st.rng then "true" else "false"
  | "int_lit" -> int_literal st
  | "real_lit" -> real_literal st
  | "bv_lit" -> bv_literal st
  | "str_lit" -> str_literal st
  | "str_char" -> Printf.sprintf "\"%c\"" (Char.chr (97 + Rng.int st.rng 4))
  | "ff_lit" -> ff_literal st
  | "divisor" -> string_of_int (Rng.int_in st.rng 1 4)
  | "bv_width" -> string_of_int (term_width st)
  | "extract_hi" ->
    let w = term_width st in
    if has_flaw st Flaw.Width_mismatch then string_of_int (Rng.int st.rng (w + 1))
    else string_of_int (w - 1)
  | "extract_lo" -> "0"
  | "var_bool" -> var st ~prefix:"b" ~sort_text:"Bool"
  | "var_int" -> var st ~prefix:"int" ~sort_text:"Int"
  | "var_real" -> var st ~prefix:"real" ~sort_text:"Real"
  | "var_str" -> var st ~prefix:"str" ~sort_text:"String"
  | "var_bv" ->
    let w = term_width st in
    var st ~prefix:(Printf.sprintf "bv%d_" w) ~sort_text:(bv_sort_text w)
  | "var_ff" ->
    let p = term_order st in
    var st ~prefix:(Printf.sprintf "ff%d_" p) ~sort_text:(ff_sort_text p)
  | "var_seq" -> var st ~prefix:"seq" ~sort_text:"(Seq Int)"
  | "var_set" -> var st ~prefix:"set" ~sort_text:"(Set Int)"
  | "var_bag" -> var st ~prefix:"bag" ~sort_text:"(Bag Int)"
  | "var_arr" -> var st ~prefix:"arr" ~sort_text:"(Array Int Int)"
  | "var_rel" -> var st ~prefix:"rel" ~sort_text:"(Set (Tuple Int Int))"
  | "var_urel" -> var st ~prefix:"urel" ~sort_text:"(Set UnitTuple)"
  | "var_lst" -> var st ~prefix:"lst" ~sort_text:"Lst"
  | other -> failwith (Printf.sprintf "unknown generator hook '@%s'" other)

let generate_from ?(max_depth = 8) ?width ?order ~start t ~rng =
  let st =
    {
      rng;
      flaws = t.runtime_flaws;
      pools = [];
      decl_lines = [];
      counters = [];
      width = (match width with Some w -> w | None -> Rng.choose rng widths);
      order = (match order with Some p -> p | None -> Rng.choose rng orders);
    }
  in
  let cfg = effective_cfg t in
  let depth = max 3 (Rng.int_in rng (max_depth - 3) max_depth) in
  match
    Grammar_kit.Generate.sentence ~max_depth:depth ~cfg ~hook:(hook st) ~rng start
  with
  | Error msg -> failwith ("generator internal error: " ^ msg)
  | Ok sentence ->
    let term =
      if
        List.mem Flaw.Unbalanced_output t.runtime_flaws
        && Rng.chance rng 0.25
        && String.length sentence > 1
      then String.sub sentence 0 (String.length sentence - 1)
      else sentence
    in
    (* datatypes theory always needs its datatype declaration *)
    let decls = List.rev st.decl_lines in
    let decls =
      if
        t.theory.Theory.id = Theory.Datatypes
        && not (List.mem datatype_decl_line decls)
      then datatype_decl_line :: decls
      else decls
    in
    { decls; term }

let generate ?max_depth t ~rng =
  let cfg = effective_cfg t in
  generate_from ?max_depth ~start:cfg.Cfg.start t ~rng

(* The mixed-sorts extension (paper 5.3, future work): emit a term of a
   requested non-Boolean sort by starting the derivation at the matching
   nonterminal, with the width/order context pinned to the request. *)
let nonterminal_for_sort sort =
  match sort with
  | Smtlib.Sort.Bool -> Some ("bool", None, None)
  | Smtlib.Sort.Int -> Some ("int", None, None)
  | Smtlib.Sort.Real -> Some ("real", None, None)
  | Smtlib.Sort.String_sort -> Some ("str", None, None)
  | Smtlib.Sort.Reglan -> Some ("regex", None, None)
  | Smtlib.Sort.Bitvec w when List.mem w widths -> Some ("bv", Some w, None)
  | Smtlib.Sort.Finite_field p when List.mem p orders -> Some ("ff", None, Some p)
  | Smtlib.Sort.Seq Smtlib.Sort.Int -> Some ("seq", None, None)
  | Smtlib.Sort.Set Smtlib.Sort.Int -> Some ("set", None, None)
  | Smtlib.Sort.Set (Smtlib.Sort.Tuple [ Smtlib.Sort.Int; Smtlib.Sort.Int ]) ->
    Some ("rel", None, None)
  | Smtlib.Sort.Bag Smtlib.Sort.Int -> Some ("bag", None, None)
  | Smtlib.Sort.Array (Smtlib.Sort.Int, Smtlib.Sort.Int) -> Some ("arr", None, None)
  | Smtlib.Sort.Datatype "Lst" -> Some ("lst", None, None)
  | _ -> None

let supports_sort t sort =
  match nonterminal_for_sort sort with
  | Some (start, _, _) -> Cfg.find (effective_cfg t) start <> None
  | None -> false

let generate_of_sort ?max_depth t ~rng sort =
  match nonterminal_for_sort sort with
  | Some (start, width, order) when Cfg.find (effective_cfg t) start <> None ->
    (match generate_from ?max_depth ?width ?order ~start t ~rng with
    | emitted -> Some emitted
    | exception Failure _ -> None)
  | _ -> None

let render_script emissions =
  let decls =
    O4a_util.Listx.dedup (List.concat_map (fun e -> e.decls) emissions)
  in
  (* datatype declarations must precede any declaration that uses the sort *)
  let dt, others =
    List.partition (fun d -> O4a_util.Strx.starts_with ~prefix:"(declare-datatypes" d) decls
  in
  let asserts = List.map (fun e -> Printf.sprintf "(assert %s)" e.term) emissions in
  String.concat "\n" (dt @ others @ asserts @ [ "(check-sat)" ])

let describe t =
  let defects = String.concat ", " (List.map Flaw.defect_to_string t.defects) in
  let flaws = String.concat ", " (List.map Flaw.runtime_to_string t.runtime_flaws) in
  Printf.sprintf
    "def generate_%s_formula_with_decls():  # v%d by %s\n    # grammar defects: [%s]\n    # emission flaws: [%s]\n    ..."
    t.theory.Theory.key t.version t.profile_name defects flaws

let is_clean t =
  t.runtime_flaws = []
  && List.for_all (function Flaw.Drop_alt _ -> true | _ -> false) t.defects
