lib/gensynth/synthesis.ml: Flaw Generator Grammar_kit List Llm_sim O4a_util Printf Result Solver String Theories Theory
