lib/gensynth/flaw.ml: List O4a_util Printf String
