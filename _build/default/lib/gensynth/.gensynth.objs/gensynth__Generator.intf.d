lib/gensynth/generator.mli: Flaw Grammar_kit O4a_util Smtlib Theories Theory
