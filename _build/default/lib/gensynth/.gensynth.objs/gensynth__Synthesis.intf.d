lib/gensynth/synthesis.mli: Generator Llm_sim O4a_util Solver Theories Theory
