lib/gensynth/generator.ml: Buffer Char Flaw Grammar_kit List O4a_util Printf Smtlib String Theories Theory
