lib/gensynth/flaw.mli:
