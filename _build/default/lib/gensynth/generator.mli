(** LLM-synthesized term generators.

    A generator is the structured counterpart of the Python program the paper
    has the LLM write: the (possibly defective) summarized CFG plus a set of
    runtime flaws in its emission logic. [generate] derives one Boolean term
    and the declarations it needs — the exact interface of the paper's
    [generate_<theory>_formula_with_decls()]. *)

open Theories

type t = {
  theory : Theory.info;
  defects : Flaw.grammar_defect list;
  runtime_flaws : Flaw.runtime list;
  version : int;  (** refinement iteration that produced this generator *)
  profile_name : string;  (** which LLM profile synthesized it *)
}

type emitted = {
  decls : string list;  (** SMT-LIB declaration commands, in order *)
  term : string;  (** a Boolean term *)
}

val perfect : Theory.info -> t
(** Defect-free generator over the ground-truth grammar (what an ideal
    synthesis would produce; used as a test oracle and by ablations). *)

val effective_cfg : t -> Grammar_kit.Cfg.t
(** Ground-truth grammar with this generator's defects applied. *)

val generate : ?max_depth:int -> t -> rng:O4a_util.Rng.t -> emitted

(** {1 Mixed-sorts extension (paper 5.3, future work)} *)

val supports_sort : t -> Smtlib.Sort.t -> bool
(** Whether this generator's grammar has a nonterminal for the sort (over the
    bounded width/order menu). *)

val generate_of_sort :
  ?max_depth:int -> t -> rng:O4a_util.Rng.t -> Smtlib.Sort.t -> emitted option
(** Emit a term of the requested sort by starting the derivation at the
    matching nonterminal, pinning the bit-width / field-order context to the
    request. [None] when the grammar has no production for the sort. *)

val render_script : emitted list -> string
(** Wrap emissions into a full script: merged declarations, one assert per
    term, and a final [check-sat] — the harness used to validate samples. *)

val describe : t -> string
(** Pseudo-implementation digest included in self-correction prompts. *)

val is_clean : t -> bool
(** No validity-affecting defects remain (omissions are allowed — they only
    reduce diversity). *)
