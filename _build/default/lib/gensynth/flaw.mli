(** Defect model for LLM-synthesized generators.

    Two layers, matching how real LLM-written generators fail:

    - {b Grammar defects} live in the summarized CFG (hallucinated operator
      names, broken arities, omitted alternatives, an ill-typed nullary-join
      production) — what the paper attributes to incomplete/informal
      documentation and model hallucination.
    - {b Runtime flaws} live in the generator implementation (inconsistent
      bit-widths, mixed field orders, malformed literals, missing
      declarations, unbalanced output) — the contextual constraints a CFG
      cannot express (§3.2's bvadd/bvmul example).

    The self-correction loop classifies solver error messages back into these
    categories to decide what a refinement round may fix. *)

type runtime =
  | Width_mismatch  (** bit-vector widths drawn independently per position *)
  | Field_mismatch  (** finite-field orders drawn independently *)
  | Bad_int_literal  (** sometimes prints [2.0] where Int is required *)
  | Bad_real_literal  (** sometimes prints [2] where Real is required *)
  | Bad_ff_literal  (** prints bare [ff3] without the [as] annotation *)
  | Bad_string_quotes  (** prints ['a'] instead of ["a"] *)
  | Missing_declaration  (** uses a variable it never declares *)
  | Unbalanced_output  (** occasionally drops a closing parenthesis *)

type grammar_defect =
  | Hallucinate of { lhs : string; alt_idx : int; from_op : string; to_op : string }
  | Arity_break of { lhs : string; alt_idx : int }
      (** an extra argument duplicated into an application *)
  | Drop_alt of { lhs : string; alt_idx : int }
      (** omission: hurts diversity, not validity *)
  | Unit_join  (** sets: adds a production joining nullary relations *)

type category =
  | C_width
  | C_field
  | C_literal
  | C_declaration
  | C_parse
  | C_arity
  | C_unknown_symbol of string
  | C_nullary_join
  | C_other

val categorize_error : string -> category
(** Classify a solver/parser error message. *)

val runtime_matches : category -> runtime -> bool
(** Would fixing this runtime flaw address errors of this category? *)

val defect_matches : category -> grammar_defect -> bool

val runtime_to_string : runtime -> string
val defect_to_string : grammar_defect -> string
val category_to_string : category -> string
