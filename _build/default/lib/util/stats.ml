let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let sorted xs = List.sort compare xs

let percentile p = function
  | [] -> 0.
  | xs ->
    let s = Array.of_list (sorted xs) in
    let n = Array.length s in
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    let idx = max 0 (min (n - 1) (rank - 1)) in
    s.(idx)

let median xs = percentile 50. xs

let stddev = function
  | [] | [ _ ] -> 0.
  | xs ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.) xs) in
    sqrt var

let minimum = function [] -> 0. | x :: rest -> List.fold_left min x rest
let maximum = function [] -> 0. | x :: rest -> List.fold_left max x rest

let histogram ~buckets xs =
  if xs = [] || buckets <= 0 then []
  else (
    let lo = minimum xs and hi = maximum xs in
    let width = if hi = lo then 1. else (hi -. lo) /. float_of_int buckets in
    List.init buckets (fun i ->
        let blo = lo +. (float_of_int i *. width) in
        let bhi = blo +. width in
        let count =
          List.length
            (List.filter
               (fun x -> x >= blo && (x < bhi || (i = buckets - 1 && x <= bhi)))
               xs)
        in
        (blo, bhi, count)))
