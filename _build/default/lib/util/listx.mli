(** List helpers shared across the code base. *)

val take : int -> 'a list -> 'a list
(** First [n] elements (all of them if the list is shorter). *)

val drop : int -> 'a list -> 'a list

val last : 'a list -> 'a
(** Raises [Invalid_argument] on the empty list. *)

val init_segment : 'a list -> 'a list
(** All but the last element. Raises [Invalid_argument] on the empty list. *)

val dedup : ?eq:('a -> 'a -> bool) -> 'a list -> 'a list
(** Stable deduplication, keeping the first occurrence. *)

val group_by : ('a -> 'k) -> 'a list -> ('k * 'a list) list
(** Groups by key; group order follows first appearance, members keep order. *)

val count_by : ('a -> 'k) -> 'a list -> ('k * int) list

val find_index : ('a -> bool) -> 'a list -> int option

val replace_nth : int -> 'a -> 'a list -> 'a list
(** [replace_nth i x xs] substitutes position [i]; out-of-range is identity. *)

val remove_nth : int -> 'a list -> 'a list

val intersperse : 'a -> 'a list -> 'a list

val sum : int list -> int

val max_by : ('a -> int) -> 'a list -> 'a option

val cartesian : 'a list -> 'b list -> ('a * 'b) list

val range : int -> int -> int list
(** [range lo hi] is [\[lo; ...; hi\]] inclusive; empty if [hi < lo]. *)

val zip_with_index : 'a list -> (int * 'a) list
