(** String helpers. *)

val starts_with : prefix:string -> string -> bool
val contains_sub : sub:string -> string -> bool
val split_lines : string -> string list
val split_on : char -> string -> string list
val join : string -> string list -> string
val trim_lines : string -> string
(** Trim each line and drop empty leading/trailing lines. *)

val indent : int -> string -> string
(** Prefix every line with [n] spaces. *)

val truncate_mid : int -> string -> string
(** Shorten to at most [n] chars, eliding the middle with ["..."]. *)

val escape_smt_string : string -> string
(** Escape for an SMT-LIB string literal body (double every quote char). *)
