(** Small descriptive-statistics helpers used by the experiment harnesses. *)

val mean : float list -> float
(** 0. on the empty list. *)

val median : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,100\]], nearest-rank method. *)

val stddev : float list -> float

val minimum : float list -> float
val maximum : float list -> float

val histogram : buckets:int -> float list -> (float * float * int) list
(** [(lo, hi, count)] per bucket over the data range. *)
