lib/util/rng.mli:
