lib/util/strx.ml: Buffer List String
