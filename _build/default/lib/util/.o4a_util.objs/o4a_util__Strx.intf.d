lib/util/strx.mli:
