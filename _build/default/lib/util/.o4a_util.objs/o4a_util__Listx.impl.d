lib/util/listx.ml: List
