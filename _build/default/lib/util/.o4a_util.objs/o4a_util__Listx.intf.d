lib/util/listx.mli:
