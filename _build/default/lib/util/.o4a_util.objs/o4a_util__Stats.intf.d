lib/util/stats.mli:
