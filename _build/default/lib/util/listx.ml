let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

let rec drop n = function
  | [] -> []
  | _ :: rest as xs -> if n <= 0 then xs else drop (n - 1) rest

let rec last = function
  | [] -> invalid_arg "Listx.last: empty list"
  | [ x ] -> x
  | _ :: rest -> last rest

let rec init_segment = function
  | [] -> invalid_arg "Listx.init_segment: empty list"
  | [ _ ] -> []
  | x :: rest -> x :: init_segment rest

let dedup ?(eq = ( = )) xs =
  let rec go seen = function
    | [] -> []
    | x :: rest ->
      if List.exists (eq x) seen then go seen rest else x :: go (x :: seen) rest
  in
  go [] xs

let group_by key xs =
  let add groups x =
    let k = key x in
    match List.assoc_opt k groups with
    | Some _ -> List.map (fun (k', m) -> if k' = k then (k', x :: m) else (k', m)) groups
    | None -> groups @ [ (k, [ x ]) ]
  in
  List.fold_left add [] xs |> List.map (fun (k, m) -> (k, List.rev m))

let count_by key xs = group_by key xs |> List.map (fun (k, m) -> (k, List.length m))

let find_index pred xs =
  let rec go i = function
    | [] -> None
    | x :: rest -> if pred x then Some i else go (i + 1) rest
  in
  go 0 xs

let replace_nth i x xs = List.mapi (fun j y -> if j = i then x else y) xs

let remove_nth i xs = List.filteri (fun j _ -> j <> i) xs

let rec intersperse sep = function
  | [] -> []
  | [ x ] -> [ x ]
  | x :: rest -> x :: sep :: intersperse sep rest

let sum = List.fold_left ( + ) 0

let max_by score = function
  | [] -> None
  | x :: rest ->
    Some (List.fold_left (fun best y -> if score y > score best then y else best) x rest)

let cartesian xs ys = List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs

let range lo hi =
  let rec go i acc = if i < lo then acc else go (i - 1) (i :: acc) in
  go hi []

let zip_with_index xs = List.mapi (fun i x -> (i, x)) xs
