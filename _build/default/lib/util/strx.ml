let starts_with ~prefix s =
  let lp = String.length prefix in
  String.length s >= lp && String.sub s 0 lp = prefix

let contains_sub ~sub s =
  let ls = String.length s and lsub = String.length sub in
  if lsub = 0 then true
  else (
    let rec go i = i + lsub <= ls && (String.sub s i lsub = sub || go (i + 1)) in
    go 0)

let split_on c s = String.split_on_char c s

let split_lines s = split_on '\n' s

let join sep xs = String.concat sep xs

let trim_lines s =
  let lines = split_lines s |> List.map String.trim in
  let rec drop_empty = function "" :: rest -> drop_empty rest | l -> l in
  lines |> drop_empty |> List.rev |> drop_empty |> List.rev |> join "\n"

let indent n s =
  let pad = String.make n ' ' in
  split_lines s |> List.map (fun l -> if l = "" then l else pad ^ l) |> join "\n"

let truncate_mid n s =
  if String.length s <= n || n < 5 then s
  else (
    let half = (n - 3) / 2 in
    String.sub s 0 half ^ "..." ^ String.sub s (String.length s - half) half)

let escape_smt_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
    s;
  Buffer.contents buf
