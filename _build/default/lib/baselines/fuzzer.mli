(** Common interface for the comparison fuzzers of RQ2 (§4.3). Each baseline
    is reimplemented over the same substrate so the comparison is seed- and
    solver-controlled, exactly as the paper's setup prescribes.

    [tests_per_tick] is the fuzzer's relative throughput: how many test cases
    it produces in one simulated "hour" per 100 units of budget. The
    LLM-in-the-loop baseline (Fuzz4All-sim) is slower because every formula
    costs a model query; all mutation-based fuzzers run at full speed. *)

open Smtlib

type t = {
  name : string;
  tests_per_tick : int;  (** out of 100 (= full speed) *)
  generate : rng:O4a_util.Rng.t -> seeds:Script.t list -> string;
      (** produce one test case (SMT-LIB source) *)
}

val standard_seeds : Script.t list -> Script.t list
(** Seeds the baseline tools can parse: their frontends predate the cvc5
    extension theories, so Sets/Bags/FiniteFields seeds are rejected (the
    "fundamentally incapable" limitation of §4.2). Seq is kept — Z3-era
    tooling understands it. *)

val mutate_seed : rng:O4a_util.Rng.t -> Script.t list -> Script.t
(** Pick a random standard-theory seed (shared by several baselines). *)
