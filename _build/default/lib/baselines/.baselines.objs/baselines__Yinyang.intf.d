lib/baselines/yinyang.mli: Fuzzer
