lib/baselines/opfuzz.ml: Fuzzer List O4a_util Printer Script Smtlib Term
