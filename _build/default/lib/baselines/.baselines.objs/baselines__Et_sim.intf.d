lib/baselines/et_sim.mli: Fuzzer
