lib/baselines/histfuzz.mli: Fuzzer Script Smtlib Term
