lib/baselines/storm.mli: Fuzzer
