lib/baselines/skeleton_view.mli: Smtlib Term
