lib/baselines/et_sim.ml: Fuzzer Gensynth Lazy List O4a_util Theories
