lib/baselines/registry.ml: Et_sim Fuzz4all_sim Fuzzer Histfuzz List O4a_util Once4all Opfuzz Storm String Typefuzz Yinyang
