lib/baselines/fuzzer.ml: List O4a_util Script Smtlib
