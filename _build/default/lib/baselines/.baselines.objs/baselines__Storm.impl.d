lib/baselines/storm.ml: Fuzzer List O4a_util Printer Script Skeleton_view Smtlib Term
