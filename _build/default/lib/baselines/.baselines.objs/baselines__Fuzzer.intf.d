lib/baselines/fuzzer.mli: O4a_util Script Smtlib
