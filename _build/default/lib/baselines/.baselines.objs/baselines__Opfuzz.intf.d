lib/baselines/opfuzz.mli: Fuzzer O4a_util Smtlib Term
