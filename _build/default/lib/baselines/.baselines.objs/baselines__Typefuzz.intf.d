lib/baselines/typefuzz.mli: Fuzzer O4a_util Smtlib Sort Term
