lib/baselines/fuzz4all_sim.mli: Fuzzer Llm_sim
