lib/baselines/registry.mli: Fuzzer Llm_sim Once4all
