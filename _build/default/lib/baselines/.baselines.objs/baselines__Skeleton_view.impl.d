lib/baselines/skeleton_view.ml: List Once4all Smtlib Term
