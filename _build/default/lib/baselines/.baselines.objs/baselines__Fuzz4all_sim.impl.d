lib/baselines/fuzz4all_sim.ml: Fuzzer Gensynth Lazy List Llm_sim O4a_util String Theories
