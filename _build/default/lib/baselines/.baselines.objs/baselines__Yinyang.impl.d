lib/baselines/yinyang.ml: Command Fuzzer List O4a_util Printer Script Smtlib Sort Term
