lib/baselines/histfuzz.ml: Command Fuzzer List O4a_util Once4all Printer Script Skeleton_view Smtlib Sort Term
