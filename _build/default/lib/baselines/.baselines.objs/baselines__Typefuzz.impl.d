lib/baselines/typefuzz.ml: Fuzzer List O4a_util Option Printer Script Smtlib Sort Term Theories
