let baselines ~client =
  [
    Storm.fuzzer;
    Yinyang.fuzzer;
    Opfuzz.fuzzer;
    Typefuzz.fuzzer;
    Histfuzz.fuzzer;
    Fuzz4all_sim.make ~client;
    Et_sim.fuzzer;
  ]

let wrap_once4all ~name ~use_skeletons (campaign : Once4all.Campaign.t) =
  let generate ~rng ~seeds =
    let config =
      { Once4all.Fuzz.default_config with Once4all.Fuzz.use_skeletons }
    in
    let filled =
      if not use_skeletons then
        Once4all.Synthesize.direct ~rng
          ~generators:campaign.Once4all.Campaign.generators
          ~terms:(1 + O4a_util.Rng.int rng config.Once4all.Fuzz.direct_terms_max)
      else (
        let seed = O4a_util.Rng.choose rng seeds in
        let skeleton, holes =
          Once4all.Skeleton.skeletonize ~rng
            ~keep_prob:config.Once4all.Fuzz.keep_prob seed
        in
        if holes = 0 then
          Once4all.Synthesize.direct ~rng
            ~generators:campaign.Once4all.Campaign.generators ~terms:2
        else
          Once4all.Synthesize.fill ~rng
            ~generators:campaign.Once4all.Campaign.generators ~skeleton ~holes ())
    in
    filled.Once4all.Synthesize.source
  in
  { Fuzzer.name; tests_per_tick = 100; generate }

let once4all campaign = wrap_once4all ~name:"Once4All" ~use_skeletons:true campaign

let once4all_wos campaign =
  wrap_once4all ~name:"Once4All_w/oS" ~use_skeletons:false campaign

let find ~client name =
  let target = String.lowercase_ascii name in
  List.find_opt
    (fun f -> String.lowercase_ascii f.Fuzzer.name = target)
    (baselines ~client)
