module Rng = O4a_util.Rng
module Theory = Theories.Theory

(* direct generation: a defect-free standard-theory generator stands in for
   the model's best-case output... *)
let standard_generators =
  lazy
    (List.map Gensynth.Generator.perfect
       (List.filter
          (fun (t : Theory.info) ->
            t.Theory.standard && t.Theory.id <> Theory.Datatypes)
          Theory.all))

(* ...and a corruption pass reintroduces the ~50% invalid rate of raw LLM
   formula generation (paper §1, §5.1) *)
let corrupt ~rng source =
  match Rng.int rng 4 with
  | 0 -> String.sub source 0 (String.length source - 1) (* drop a paren *)
  | 1 ->
    (* misspell an operator-ish token *)
    (match String.index_opt source '(' with
    | Some i when i + 1 < String.length source ->
      String.sub source 0 (i + 1) ^ "smt." ^ String.sub source (i + 1) (String.length source - i - 1)
    | _ -> source ^ ")")
  | 2 -> source ^ "\n(assert (= x_undeclared 0))" (* undeclared symbol *)
  | _ ->
    (* ill-sorted equality *)
    "(declare-fun b () Bool)\n" ^ source ^ "\n(assert (= b 3))"

let make ~client =
  let generate ~rng ~seeds =
    ignore seeds;
    (* autoprompting + generation: every formula is a model call *)
    let _ =
      Llm_sim.Client.query client
        (Llm_sim.Prompt.Free_form
           { instruction = "Generate an SMT-LIB formula that stresses the solver." })
    in
    let generators = Lazy.force standard_generators in
    let n_terms = 1 + Rng.int rng 3 in
    let emissions =
      List.init n_terms (fun _ ->
          let g = Rng.choose rng generators in
          Gensynth.Generator.generate g ~rng)
    in
    let source = Gensynth.Generator.render_script emissions in
    if Rng.chance rng 0.5 then corrupt ~rng source else source
  in
  { Fuzzer.name = "Fuzz4All"; tests_per_tick = 25; generate }
