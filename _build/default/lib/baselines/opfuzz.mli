(** OpFuzz (Winterer et al., OOPSLA 2020): type-aware operator mutation.
    Every mutation swaps an operator occurrence for another operator of the
    same rank class, so mutants stay well-sorted by construction. *)

open Smtlib

val op_classes : string list list
(** Rank-equivalence classes used for swapping. *)

val mutate_term : rng:O4a_util.Rng.t -> Term.t -> Term.t
(** Swap 1–3 operator occurrences. *)

val fuzzer : Fuzzer.t
