module Rng = O4a_util.Rng
module Theory = Theories.Theory

let generators =
  lazy
    (List.map Gensynth.Generator.perfect
       (List.filter
          (fun (t : Theory.info) ->
            t.Theory.standard && t.Theory.id <> Theory.Datatypes)
          Theory.all))

(* A global enumeration cursor: depth grows slowly as the campaign proceeds,
   emulating size-bounded enumeration order. *)
let cursor = ref 0

let generate ~rng ~seeds =
  ignore seeds;
  incr cursor;
  let depth = 3 + min 3 (!cursor / 4000) in
  let g = Rng.choose rng (Lazy.force generators) in
  let emitted = Gensynth.Generator.generate ~max_depth:depth g ~rng in
  Gensynth.Generator.render_script [ emitted ]

let fuzzer = { Fuzzer.name = "ET"; tests_per_tick = 100; generate }
