open Smtlib
module Rng = O4a_util.Rng

let op_classes =
  [
    [ "<"; "<="; ">"; ">=" ];
    [ "+"; "-"; "*" ];
    [ "div"; "mod" ];
    [ "and"; "or"; "xor" ];
    [ "="; "distinct" ];
    [ "bvadd"; "bvsub"; "bvmul" ];
    [ "bvudiv"; "bvurem" ];
    [ "bvand"; "bvor"; "bvxor" ];
    [ "bvshl"; "bvlshr"; "bvashr" ];
    [ "bvult"; "bvule"; "bvugt"; "bvuge"; "bvslt"; "bvsle"; "bvsgt"; "bvsge" ];
    [ "str.contains"; "str.prefixof"; "str.suffixof" ];
    [ "str.<"; "str.<=" ];
    [ "str.replace"; "str.replace_all" ];
    [ "re.union"; "re.inter" ];
    [ "re.*"; "re.+"; "re.opt" ];
    [ "seq.contains"; "seq.prefixof"; "seq.suffixof" ];
    [ "set.union"; "set.inter"; "set.minus" ];
    [ "bag.union_max"; "bag.union_disjoint"; "bag.inter_min" ];
    [ "ff.add"; "ff.mul" ];
  ]

let class_of op = List.find_opt (fun cls -> List.mem op cls) op_classes

let swap_op ~rng op =
  match class_of op with
  | Some cls -> (
    match List.filter (fun o -> o <> op) cls with
    | [] -> op
    | others -> Rng.choose rng others)
  | None -> op

let mutate_term ~rng term =
  let mutations = 1 + Rng.int rng 3 in
  let budget = ref mutations in
  Term.map_bottom_up
    (fun node ->
      match node with
      | Term.App (op, args) when !budget > 0 && class_of op <> None && Rng.chance rng 0.3
        ->
        decr budget;
        Term.App (swap_op ~rng op, args)
      | _ -> node)
    term

let generate ~rng ~seeds =
  let seed = Fuzzer.mutate_seed ~rng seeds in
  let mutated = Script.map_assertions (mutate_term ~rng) seed in
  Printer.script mutated

let fuzzer = { Fuzzer.name = "OpFuzz"; tests_per_tick = 100; generate }
