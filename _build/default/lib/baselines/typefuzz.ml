open Smtlib
module Rng = O4a_util.Rng

let var_of_sort ~rng ~vars sort =
  match List.filter (fun (_, s) -> Sort.equal s sort) vars with
  | [] -> None
  | candidates -> Some (Term.var (fst (Rng.choose rng candidates)))

let rec generate_of_sort ~rng ~vars ~depth sort =
  let recurse s = generate_of_sort ~rng ~vars ~depth:(depth - 1) s in
  let leaf () =
    match var_of_sort ~rng ~vars sort with
    | Some v when Rng.chance rng 0.6 -> Some v
    | _ -> (
      match sort with
      | Sort.Bool -> Some (if Rng.bool rng then Term.tru else Term.fls)
      | Sort.Int -> Some (Term.int (Rng.int_in rng (-2) 3))
      | Sort.Real -> Some (Term.real (Rng.int_in rng 0 4) (1 + Rng.int rng 2))
      | Sort.String_sort -> Some (Term.str (Rng.choose rng [ ""; "a"; "b"; "ab" ]))
      | Sort.Bitvec w -> Some (Term.bv ~width:w (Rng.int rng (1 lsl min w 8)))
      | _ -> var_of_sort ~rng ~vars sort)
  in
  if depth <= 0 then leaf ()
  else (
    let binop ops s =
      let op = Rng.choose rng ops in
      match (recurse s, recurse s) with
      | Some a, Some b -> Some (Term.app op [ a; b ])
      | _ -> None
    in
    match sort with
    | Sort.Bool ->
      (match Rng.int rng 4 with
      | 0 -> binop [ "and"; "or"; "xor" ] Sort.Bool
      | 1 -> (
        match (recurse Sort.Int, recurse Sort.Int) with
        | Some a, Some b ->
          Some (Term.app (Rng.choose rng [ "<"; "<="; "=" ]) [ a; b ])
        | _ -> leaf ())
      | 2 -> Option.map Term.not_ (recurse Sort.Bool)
      | _ -> leaf ())
    | Sort.Int ->
      (match Rng.int rng 3 with
      | 0 -> binop [ "+"; "-"; "*" ] Sort.Int
      | 1 -> binop [ "div"; "mod" ] Sort.Int
      | _ -> leaf ())
    | Sort.Real ->
      (match Rng.int rng 3 with
      | 0 -> binop [ "+"; "-"; "*"; "/" ] Sort.Real
      | _ -> leaf ())
    | Sort.String_sort ->
      (match Rng.int rng 3 with
      | 0 -> binop [ "str.++" ] Sort.String_sort
      | 1 -> (
        match (recurse Sort.String_sort, recurse Sort.Int) with
        | Some s, Some i -> Some (Term.app "str.at" [ s; i ])
        | _ -> leaf ())
      | _ -> leaf ())
    | Sort.Bitvec _ ->
      (match Rng.int rng 3 with
      | 0 -> binop [ "bvadd"; "bvand"; "bvor"; "bvmul" ] sort
      | 1 -> Option.map (fun a -> Term.app "bvnot" [ a ]) (recurse sort)
      | _ -> leaf ())
    | _ -> leaf ())

let mutate ~rng script =
  let env = Theories.Typecheck.env_of_script script in
  let vars = Theories.Typecheck.env_vars env in
  Script.map_assertions
    (fun assertion ->
      let paths = Term.all_paths assertion in
      let candidates =
        List.filter
          (fun (path, sub) -> path <> [] && Term.size sub <= 12)
          paths
      in
      if candidates = [] || not (Rng.chance rng 0.8) then assertion
      else (
        let path, sub = Rng.choose rng candidates in
        match Theories.Typecheck.infer env sub with
        | Ok sort -> (
          match generate_of_sort ~rng ~vars ~depth:(1 + Rng.int rng 3) sort with
          | Some replacement -> Term.replace_at assertion path replacement
          | None -> assertion)
        | Error _ -> assertion))
    script

let generate ~rng ~seeds =
  let seed = Fuzzer.mutate_seed ~rng seeds in
  Printer.script (mutate ~rng seed)

let fuzzer = { Fuzzer.name = "TypeFuzz"; tests_per_tick = 95; generate }
