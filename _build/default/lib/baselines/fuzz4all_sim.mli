(** Fuzz4All-style baseline (Xia et al., ICSE 2024): direct whole-formula
    generation by the LLM with an autoprompting step. Each test case costs a
    model query (hence the low relative throughput) and roughly half of the
    raw outputs are syntactically or semantically invalid, matching the
    invalid-rate the paper reports for direct LLM generation. *)

val make : client:Llm_sim.Client.t -> Fuzzer.t
