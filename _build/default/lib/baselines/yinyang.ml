open Smtlib
module Rng = O4a_util.Rng

(* rename all symbols of [script] with a suffix to avoid clashes *)
let suffix_script suffix script =
  let renames =
    List.map (fun (n, _) -> (n, n ^ suffix)) (Script.declared_consts script)
  in
  let rename_term t =
    List.fold_left
      (fun t (old_name, new_name) -> Term.rename_var ~old_name ~new_name t)
      t renames
  in
  List.map
    (fun cmd ->
      match cmd with
      | Command.Declare_fun (n, args, r) when List.mem_assoc n renames ->
        Command.Declare_fun (List.assoc n renames, args, r)
      | Command.Declare_const (n, s) when List.mem_assoc n renames ->
        Command.Declare_const (List.assoc n renames, s)
      | Command.Assert t -> Command.Assert (rename_term t)
      | c -> c)
    script

let generate ~rng ~seeds =
  let a = Fuzzer.mutate_seed ~rng seeds in
  let b = Fuzzer.mutate_seed ~rng seeds in
  let a = suffix_script "_l" a and b = suffix_script "_r" b in
  let decls_a = List.filter (fun c -> not (Command.is_assert c || c = Command.Check_sat)) a in
  let decls_b =
    List.filter
      (fun c ->
        match c with
        | Command.Assert _ | Command.Check_sat | Command.Set_logic _ -> false
        | Command.Declare_datatypes _ -> false (* avoid duplicate datatype decls *)
        | _ -> true)
      b
  in
  let asserts = List.map (fun t -> Command.Assert t) (Script.assertions a @ Script.assertions b) in
  (* fusion: z = x + y over a shared sort *)
  let int_vars s =
    List.filter (fun (_, sort) -> Sort.equal sort Sort.Int) (Script.declared_consts s)
  in
  let fusion =
    match (int_vars a, int_vars b) with
    | (x, _) :: _, (y, _) :: _ ->
      [
        Command.Declare_fun ("z_fusion", [], Sort.Int);
        Command.Assert (Term.eq (Term.var "z_fusion") (Term.app "+" [ Term.var x; Term.var y ]));
      ]
    | _ -> []
  in
  let fused = decls_a @ decls_b @ fusion @ asserts @ [ Command.Check_sat ] in
  (* substitute some occurrences of x by (- z_fusion y) to entangle halves *)
  let fused =
    match (int_vars a, int_vars b, fusion) with
    | (x, _) :: _, (y, _) :: _, _ :: _ when Rng.chance rng 0.7 ->
      Script.map_assertions
        (fun t ->
          if Rng.chance rng 0.5 then
            Term.map_bottom_up
              (fun node ->
                match node with
                | Term.Var v when v = x && Rng.chance rng 0.5 ->
                  Term.app "-" [ Term.var "z_fusion"; Term.var y ]
                | _ -> node)
              t
          else t)
        fused
    | _ -> fused
  in
  Printer.script fused

let fuzzer = { Fuzzer.name = "YinYang"; tests_per_tick = 90; generate }
