open Smtlib
module Rng = O4a_util.Rng

let combine ~rng fragments =
  let pick () = Rng.choose rng fragments in
  match Rng.int rng 4 with
  | 0 -> Term.and_ [ pick (); pick () ]
  | 1 -> Term.or_ [ pick (); pick () ]
  | 2 -> Term.not_ (pick ())
  | _ -> Term.app "=>" [ pick (); pick () ]

let generate ~rng ~seeds =
  let seed = Fuzzer.mutate_seed ~rng seeds in
  let fragments =
    List.concat_map Skeleton_view.boolean_subterms (Script.assertions seed)
  in
  if fragments = [] then Printer.script seed
  else (
    let n_asserts = 1 + Rng.int rng 3 in
    let new_asserts = List.init n_asserts (fun _ -> combine ~rng fragments) in
    let rebuilt = Script.replace_assertions seed (Rng.shuffle rng new_asserts) in
    Printer.script rebuilt)

let fuzzer = { Fuzzer.name = "STORM"; tests_per_tick = 100; generate }
