(** HistFuzz (Sun et al., ICSE 2023): skeleton enumeration over historical
    bug-triggering formulas — skeletons come from one seed and the holes are
    filled with {e atoms harvested from other seeds} (not freshly generated
    terms; that difference from Once4All is the point of comparison). *)

open Smtlib

val harvest_atoms : Script.t list -> Term.t list
(** Atomic boolean sub-formulas across the corpus, deduplicated. *)

val fuzzer : Fuzzer.t
