open Smtlib

type t = {
  name : string;
  tests_per_tick : int;
  generate : rng:O4a_util.Rng.t -> seeds:Script.t list -> string;
}

let extension_keys = [ "sets"; "bags"; "finite_fields" ]

let standard_seeds seeds =
  List.filter
    (fun seed ->
      not
        (List.exists
           (fun key -> List.mem key (Smtlib.Script.theories_used seed))
           extension_keys))
    seeds

let mutate_seed ~rng seeds =
  match standard_seeds seeds with
  | [] -> O4a_util.Rng.choose rng seeds
  | std -> O4a_util.Rng.choose rng std
