open Smtlib

let atoms term =
  Once4all.Skeleton.boolean_atom_paths term
  |> List.filter_map (Term.subterm_at term)

let boolean_subterms term =
  let acc = ref [] in
  let rec walk in_bool t =
    if in_bool then acc := t :: !acc;
    match t with
    | Term.App (("and" | "or" | "not" | "xor" | "=>"), args) ->
      List.iter (walk true) args
    | Term.App ("ite", [ c; a; b ]) ->
      walk true c;
      walk in_bool a;
      walk in_bool b
    | Term.Forall (_, body) | Term.Exists (_, body) -> walk true body
    | Term.Annot (body, _) -> walk in_bool body
    | Term.Let (_, body) -> walk in_bool body
    | _ -> ()
  in
  walk true term;
  List.rev !acc
