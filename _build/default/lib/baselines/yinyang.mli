(** YinYang (Winterer et al., PLDI 2020): semantic fusion — two seed
    formulas are merged; a fresh fusion variable ties variables of the two
    halves together, and occurrences are substituted through the fusion
    function. *)

val fuzzer : Fuzzer.t
