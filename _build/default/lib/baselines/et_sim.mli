(** ET-style baseline (Winterer & Su, OOPSLA 2024): grammar-based bounded
    enumeration from scratch over the standard theories. Enumeration is
    systematic (depth-increasing), so diversity is high near the small end
    but deep solver states are expensive to reach — the weakness the paper
    attributes to from-scratch generation. *)

val fuzzer : Fuzzer.t
