(** All comparison fuzzers, plus a {!Fuzzer.t} wrapper around Once4All itself
    so the experiment harnesses can drive every tool uniformly. *)

val baselines : client:Llm_sim.Client.t -> Fuzzer.t list
(** STORM, YinYang, OpFuzz, TypeFuzz, HistFuzz, Fuzz4All(-sim), ET(-sim) —
    the RQ2 lineup. *)

val once4all : Once4all.Campaign.t -> Fuzzer.t
(** The full skeleton-guided pipeline as a fuzzer. *)

val once4all_wos : Once4all.Campaign.t -> Fuzzer.t
(** The Once4All_w/oS ablation (no skeletons). *)

val find : client:Llm_sim.Client.t -> string -> Fuzzer.t option
(** Lookup a baseline by (case-insensitive) name. *)
