(** STORM (Mansur et al., ESEC/FSE 2020): blackbox mutational fuzzing that
    recombines boolean sub-formulas of a seed into fresh assertion sets. *)

val fuzzer : Fuzzer.t
