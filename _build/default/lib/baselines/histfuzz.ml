open Smtlib
module Rng = O4a_util.Rng

let harvest_atoms seeds =
  seeds
  |> List.concat_map (fun seed ->
         List.concat_map
           (fun assertion ->
             Skeleton_view.atoms assertion)
           (Script.assertions seed))
  |> O4a_util.Listx.dedup ~eq:Term.equal

(* Rename an atom's free variables to sort-compatible variables of the target
   seed; atoms with unmatched variables are dropped. *)
let retarget ~rng ~target_vars ~atom_env atom =
  let frees = Term.free_vars atom in
  let rec rename term = function
    | [] -> Some term
    | name :: rest -> (
      match List.assoc_opt name atom_env with
      | None -> None
      | Some sort -> (
        match List.filter (fun (_, s) -> Sort.equal s sort) target_vars with
        | [] -> None
        | candidates ->
          let replacement = fst (Rng.choose rng candidates) in
          rename (Term.rename_var ~old_name:name ~new_name:replacement term) rest))
  in
  rename atom frees

let generate_with ~rng ~seeds =
  let seeds = Fuzzer.standard_seeds seeds in
  let seed = Fuzzer.mutate_seed ~rng seeds in
  let skeleton, holes =
    Once4all.Skeleton.skeletonize ~rng ~keep_prob:0.4 seed
  in
  if holes = 0 then Printer.script seed
  else (
    (* atom pool from other seeds, with their own variable sorts *)
    let pool =
      seeds
      |> List.concat_map (fun s ->
             if s == seed then []
             else (
               let env = Script.declared_consts s in
               List.concat_map
                 (fun a -> List.map (fun atom -> (atom, env)) (Skeleton_view.atoms a))
                 (Script.assertions s)))
    in
    let target_vars = Script.declared_consts seed in
    let extra_decls = ref [] in
    let fill _ =
      let rec attempt tries =
        if tries = 0 || pool = [] then Term.tru
        else (
          let atom, atom_env = Rng.choose rng pool in
          match retarget ~rng ~target_vars ~atom_env atom with
          | Some t -> t
          | None ->
            (* transplant the atom wholesale, importing its declarations *)
            let needed =
              List.filter (fun (n, _) -> List.mem n (Term.free_vars atom)) atom_env
            in
            if needed = [] then attempt (tries - 1)
            else (
              extra_decls :=
                List.map (fun (n, s) -> Command.Declare_fun (n, [], s)) needed
                @ !extra_decls;
              atom))
      in
      attempt 4
    in
    let filled =
      Script.map_assertions
        (Term.map_bottom_up (fun node ->
             match node with Term.Placeholder _ -> fill () | _ -> node))
        skeleton
    in
    let filled = Script.add_declarations filled !extra_decls in
    Printer.script filled)

let generate ~rng ~seeds = generate_with ~rng ~seeds

let fuzzer = { Fuzzer.name = "HistFuzz"; tests_per_tick = 90; generate }
