(** Shared structural helpers for the mutation baselines. *)

open Smtlib

val atoms : Term.t -> Term.t list
(** Atomic boolean sub-formulas of an assertion. *)

val boolean_subterms : Term.t -> Term.t list
(** All boolean-positioned subterms (atoms and composites). *)
