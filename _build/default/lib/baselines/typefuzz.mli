(** TypeFuzz (Park et al., OOPSLA 2021): generative type-aware mutation —
    replace a random subterm with a freshly generated expression of the same
    sort, built from the seed's variables and {e standard-theory} operators
    (extension theories are out of its vocabulary, which is exactly why it
    cannot reach cvc5-specific code, per the paper's coverage analysis). *)

open Smtlib

val generate_of_sort :
  rng:O4a_util.Rng.t -> vars:(string * Sort.t) list -> depth:int -> Sort.t ->
  Term.t option
(** Fresh expression of the sort, [None] for unsupported sorts. *)

val fuzzer : Fuzzer.t
