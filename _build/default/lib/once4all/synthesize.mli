(** Formula synthesis (Algorithm 2, lines 7–9): fill each skeleton hole with
    a term from a randomly chosen generator, adapting variables to the seed.

    Generated terms that fail to parse (generators are allowed a residue of
    ill-formed output — §3.2) are spliced {e textually}, so the flawed text
    still reaches the solver front ends exactly as a real fuzzer's output
    would; the solvers then reject it themselves. *)

open Smtlib

type filled = {
  source : string;  (** final SMT-LIB text *)
  parsed : Script.t option;  (** [Some] when the final text fully parses *)
  theories_spliced : string list;  (** theory keys of the generators used *)
}

val fill :
  ?swap_prob:float ->
  rng:O4a_util.Rng.t ->
  generators:Gensynth.Generator.t list ->
  skeleton:Script.t ->
  holes:int ->
  unit ->
  filled

val fill_typed :
  ?swap_prob:float ->
  rng:O4a_util.Rng.t ->
  generators:Gensynth.Generator.t list ->
  skeleton:Script.t ->
  hole_sorts:(int * Sort.t) list ->
  unit ->
  filled
(** Mixed-sorts extension (paper 5.3): fill typed holes with terms of the
    requested sorts via {!Gensynth.Generator.generate_of_sort}; sorts no
    generator covers fall back to a domain default constant. *)

val direct :
  rng:O4a_util.Rng.t ->
  generators:Gensynth.Generator.t list ->
  terms:int ->
  filled
(** Skeleton-free generation used by the Once4All_w/oS ablation variant:
    assert [terms] generated Boolean terms directly. *)
