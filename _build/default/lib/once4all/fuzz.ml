open Smtlib
module Rng = O4a_util.Rng

type schedule = Uniform | Coverage_guided

type config = {
  mutations_per_seed : int;
  keep_prob : float;
  adapt_prob : float;
  use_skeletons : bool;
  mixed_sorts : bool;
  schedule : schedule;
  direct_terms_max : int;
  max_steps : int;
  max_seed_growth : int;
}

let default_config =
  {
    mutations_per_seed = 10;
    keep_prob = 0.45;
    adapt_prob = 0.55;
    use_skeletons = true;
    mixed_sorts = false;
    schedule = Uniform;
    direct_terms_max = 3;
    max_steps = 60_000;
    max_seed_growth = 400;
  }

type stats = {
  tests : int;
  parse_ok : int;
  solved : int;
  bytes_total : int;
  findings : Dedup.found list;
}

let empty_stats = { tests = 0; parse_ok = 0; solved = 0; bytes_total = 0; findings = [] }

let record stats (filled : Synthesize.filled) (outcome : Oracle.outcome) =
  {
    tests = stats.tests + 1;
    parse_ok = (stats.parse_ok + if filled.Synthesize.parsed <> None then 1 else 0);
    solved = (stats.solved + if outcome.Oracle.solved then 1 else 0);
    bytes_total = stats.bytes_total + String.length filled.Synthesize.source;
    findings =
      (match outcome.Oracle.finding with
      | Some finding ->
        { Dedup.finding; source = filled.Synthesize.source } :: stats.findings
      | None -> stats.findings);
  }

(* Coverage-guided generator scheduling (paper 5.3: "incorporating
   solver-driven signals, such as coverage feedback"): an epsilon-greedy
   bandit over the generator pool, rewarding each pull with the number of new
   coverage points its formula reached. *)
module Bandit = struct
  type arm = { mutable plays : int; mutable gain : float }

  type t = {
    arms : (string, arm) Hashtbl.t;
    epsilon : float;
  }

  let create () = { arms = Hashtbl.create 16; epsilon = 0.2 }

  let arm t key =
    match Hashtbl.find_opt t.arms key with
    | Some a -> a
    | None ->
      let a = { plays = 0; gain = 0. } in
      Hashtbl.add t.arms key a;
      a

  let pick t ~rng generators =
    let unplayed =
      List.filter
        (fun g ->
          (arm t g.Gensynth.Generator.theory.Theories.Theory.key).plays = 0)
        generators
    in
    if unplayed <> [] then Rng.choose rng unplayed
    else if Rng.chance rng t.epsilon then Rng.choose rng generators
    else
      List.fold_left
        (fun best g ->
          let score g =
            let a = arm t g.Gensynth.Generator.theory.Theories.Theory.key in
            a.gain /. float_of_int (max 1 a.plays)
          in
          if score g > score best then g else best)
        (List.hd generators) generators

  let reward t keys gain =
    List.iter
      (fun key ->
        let a = arm t key in
        a.plays <- a.plays + 1;
        a.gain <- a.gain +. gain)
      keys
end

let coverage_hits () =
  let z = O4a_coverage.Coverage.snapshot O4a_coverage.Coverage.Zeal in
  let c = O4a_coverage.Coverage.snapshot O4a_coverage.Coverage.Cove in
  z.O4a_coverage.Coverage.lines_hit + c.O4a_coverage.Coverage.lines_hit

let one_mutation ~rng ~config ~generators current =
  if not config.use_skeletons then
    Synthesize.direct ~rng ~generators
      ~terms:(1 + Rng.int rng config.direct_terms_max)
  else if config.mixed_sorts then (
    let supported sort =
      List.exists (fun g -> Gensynth.Generator.supports_sort g sort) generators
    in
    let skeleton, hole_sorts =
      Skeleton.skeletonize_typed ~rng ~keep_prob:config.keep_prob ~supported current
    in
    if hole_sorts = [] then
      Synthesize.direct ~rng ~generators ~terms:(1 + Rng.int rng config.direct_terms_max)
    else
      Synthesize.fill_typed ~swap_prob:config.adapt_prob ~rng ~generators ~skeleton
        ~hole_sorts ())
  else (
    let skeleton, holes = Skeleton.skeletonize ~rng ~keep_prob:config.keep_prob current in
    if holes = 0 then
      Synthesize.direct ~rng ~generators ~terms:(1 + Rng.int rng config.direct_terms_max)
    else Synthesize.fill ~swap_prob:config.adapt_prob ~rng ~generators ~skeleton ~holes ())

let run ~rng ?(config = default_config) ~generators ~seeds ~zeal ~cove ~budget () =
  if generators = [] then invalid_arg "Fuzz.run: no generators";
  if seeds = [] then invalid_arg "Fuzz.run: no seeds";
  let bandit = Bandit.create () in
  let stats = ref empty_stats in
  while !stats.tests < budget do
    let seed = Rng.choose rng seeds in
    let current = ref seed in
    let rounds = min config.mutations_per_seed (budget - !stats.tests) in
    for _ = 1 to rounds do
      let mutation_generators =
        match config.schedule with
        | Uniform -> generators
        | Coverage_guided -> [ Bandit.pick bandit ~rng generators ]
      in
      let before = coverage_hits () in
      let filled = one_mutation ~rng ~config ~generators:mutation_generators !current in
      let outcome =
        Oracle.test ~max_steps:config.max_steps ~zeal ~cove
          ~source:filled.Synthesize.source ()
      in
      (match config.schedule with
      | Coverage_guided ->
        Bandit.reward bandit filled.Synthesize.theories_spliced
          (float_of_int (coverage_hits () - before))
      | Uniform -> ());
      stats := record !stats filled outcome;
      (* Algorithm 2, line 9: the synthesized formula becomes the next seed *)
      (match filled.Synthesize.parsed with
      | Some script when Script.size script <= config.max_seed_growth ->
        current := script
      | _ -> current := seed)
    done
  done;
  { !stats with findings = List.rev !stats.findings }

let run_sources ?(max_steps = 60_000) ~zeal ~cove sources =
  let stats =
    List.fold_left
      (fun stats source ->
        let outcome = Oracle.test ~max_steps ~zeal ~cove ~source () in
        let filled =
          {
            Synthesize.source;
            parsed = Result.to_option (Parser.parse_script source);
            theories_spliced = [];
          }
        in
        record stats filled outcome)
      empty_stats sources
  in
  { stats with findings = List.rev stats.findings }
