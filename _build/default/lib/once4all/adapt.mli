(** Sort-aware variable adaptation (Algorithm 2, step 2 of the example).

    Before a generated term is spliced into a skeleton, its fresh variables
    are — when a sort-compatible variable exists in the seed — randomly
    replaced by seed variables, increasing semantic interaction between the
    inserted content and the original structure (e.g. [int0] becomes the
    seed's [T] in Figure 4). *)

open Smtlib

val adapt :
  rng:O4a_util.Rng.t ->
  ?swap_prob:float ->
  seed_vars:(string * Sort.t) list ->
  term_vars:(string * Sort.t) list ->
  Term.t ->
  Term.t * string list
(** [adapt ~rng ~seed_vars ~term_vars term] renames each generated variable
    to a same-sorted seed variable with probability [swap_prob] (default
    0.55). Returns the adapted term and the generated variable names that
    remain (whose declarations must therefore be kept). *)
