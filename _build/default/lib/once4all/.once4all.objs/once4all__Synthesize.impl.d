lib/once4all/synthesize.ml: Adapt Buffer Command Fun Gensynth List O4a_util Parser Printer Printf Result Script Smtlib Solver String Term Theories
