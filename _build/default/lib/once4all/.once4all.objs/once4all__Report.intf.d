lib/once4all/report.mli: Dedup Solver
