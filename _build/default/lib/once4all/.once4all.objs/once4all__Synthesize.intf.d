lib/once4all/synthesize.mli: Gensynth O4a_util Script Smtlib Sort
