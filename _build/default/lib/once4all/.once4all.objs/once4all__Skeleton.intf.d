lib/once4all/skeleton.mli: O4a_util Script Smtlib Sort Term Theories
