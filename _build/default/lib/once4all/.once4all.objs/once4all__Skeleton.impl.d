lib/once4all/skeleton.ml: List O4a_util Script Smtlib Term Theories
