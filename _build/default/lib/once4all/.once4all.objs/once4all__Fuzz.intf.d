lib/once4all/fuzz.mli: Dedup Gensynth O4a_util Script Smtlib Solver
