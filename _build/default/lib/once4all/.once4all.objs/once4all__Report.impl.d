lib/once4all/report.ml: Buffer Dedup List O4a_coverage Option Oracle Parser Printer Printf Reduce_kit Smtlib Solver String
