lib/once4all/dedup.ml: Fun List O4a_coverage O4a_util Oracle Printf Solver String
