lib/once4all/oracle.mli: O4a_coverage Script Smtlib Solver
