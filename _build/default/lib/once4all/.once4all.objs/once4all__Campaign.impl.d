lib/once4all/campaign.ml: Dedup Fuzz Gensynth List Llm_sim Logs O4a_util Option Oracle Solver Theories
