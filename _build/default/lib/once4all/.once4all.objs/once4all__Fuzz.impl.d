lib/once4all/fuzz.ml: Dedup Gensynth Hashtbl List O4a_coverage O4a_util Oracle Parser Result Script Skeleton Smtlib String Synthesize Theories
