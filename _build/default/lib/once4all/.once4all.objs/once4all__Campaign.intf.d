lib/once4all/campaign.mli: Dedup Fuzz Gensynth Llm_sim Script Smtlib Solver Theories
