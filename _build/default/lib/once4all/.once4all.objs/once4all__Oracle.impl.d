lib/once4all/oracle.ml: List O4a_coverage Option Parser Printf Script Smtlib Solver
