lib/once4all/dedup.mli: O4a_coverage Oracle Solver
