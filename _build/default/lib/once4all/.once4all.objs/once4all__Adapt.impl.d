lib/once4all/adapt.ml: List O4a_util Smtlib Sort Term
