lib/once4all/adapt.mli: O4a_util Smtlib Sort Term
