(** Bug de-duplication (§4.2, "Bug Inspection and Reduction"): crashes are
    clustered by stack signature (all crashes reaching the same code location
    are one issue); soundness and invalid-model findings are grouped by the
    solver and the theory involved, with one representative kept per group. *)

type found = {
  finding : Oracle.finding;
  source : string;  (** the triggering formula *)
}

type cluster = {
  key : string;
  kind : Solver.Bug_db.kind;
  solver : O4a_coverage.Coverage.solver_tag;
  theory : string;
  bug_id : string option;  (** ground-truth attribution (majority vote) *)
  representative : found;  (** smallest triggering formula *)
  count : int;
}

val cluster : found list -> cluster list
(** Stable order: first-seen clusters first. *)

val distinct_bug_ids : cluster list -> string list
