(** Issue-style triage reports — the artifact the paper's semi-automated
    workflow hands to solver developers (§4.2): one report per de-duplicated
    cluster with a delta-debugged minimal reproducer, the observed and
    expected behavior, and the affected-version range. *)

type t = {
  title : string;
  body : string;  (** markdown *)
}

val of_cluster :
  ?max_probes:int ->
  zeal:Solver.Engine.t ->
  cove:Solver.Engine.t ->
  Dedup.cluster ->
  t
(** Reduce the cluster's representative (preserving its oracle signature) and
    render the report. [max_probes] bounds reduction effort (default 300). *)

val render : t -> string

val render_campaign :
  ?max_probes:int ->
  zeal:Solver.Engine.t ->
  cove:Solver.Engine.t ->
  Dedup.cluster list ->
  string
(** All reports concatenated, crash clusters first. *)
