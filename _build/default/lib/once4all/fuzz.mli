(** The main fuzzing loop of Algorithm 2: select a seed, then repeatedly
    skeletonize → generate → adapt → synthesize → differential-test, carrying
    the synthesized formula into the next mutation round (ten rounds per
    seed, as in the paper's configuration). *)

open Smtlib

type schedule =
  | Uniform  (** the paper's configuration: generators chosen at random *)
  | Coverage_guided
      (** 5.3 extension: an epsilon-greedy bandit over generators, rewarded
          by the new coverage points each formula reaches *)

type config = {
  mutations_per_seed : int;  (** 10, per §3.4 *)
  keep_prob : float;  (** per-atom skeletonization probability *)
  adapt_prob : float;  (** variable-adaptation probability (0. disables) *)
  use_skeletons : bool;  (** [false] = the Once4All_w/oS ablation variant *)
  mixed_sorts : bool;  (** typed (non-Boolean) holes — the 5.3 extension *)
  schedule : schedule;
  direct_terms_max : int;  (** terms per formula in the w/oS variant *)
  max_steps : int;  (** solver fuel per query (the 10 s timeout analog) *)
  max_seed_growth : int;  (** reset to the seed when formulas exceed this size *)
}

val default_config : config

type stats = {
  tests : int;
  parse_ok : int;  (** synthesized formulas that fully parse *)
  solved : int;  (** tests where at least one solver answered sat/unsat *)
  bytes_total : int;
  findings : Dedup.found list;  (** bug-triggering formulas, oldest first *)
}

val run :
  rng:O4a_util.Rng.t ->
  ?config:config ->
  generators:Gensynth.Generator.t list ->
  seeds:Script.t list ->
  zeal:Solver.Engine.t ->
  cove:Solver.Engine.t ->
  budget:int ->
  unit ->
  stats
(** Run [budget] tests. *)

val run_sources :
  ?max_steps:int ->
  zeal:Solver.Engine.t ->
  cove:Solver.Engine.t ->
  string list ->
  stats
(** Test pre-built sources through the same oracle (used by baselines and by
    re-validation of reduced formulas). *)
