type found = {
  finding : Oracle.finding;
  source : string;
}

type cluster = {
  key : string;
  kind : Solver.Bug_db.kind;
  solver : O4a_coverage.Coverage.solver_tag;
  theory : string;
  bug_id : string option;
  representative : found;
  count : int;
}

let cluster_key f =
  match f.finding.Oracle.kind with
  | Solver.Bug_db.Crash -> "crash:" ^ f.finding.Oracle.signature
  | Solver.Bug_db.Soundness | Solver.Bug_db.Invalid_model ->
    (* group by kind, solver and theory, as the paper does *)
    Printf.sprintf "%s:%s:%s"
      (Solver.Bug_db.kind_to_string f.finding.Oracle.kind)
      f.finding.Oracle.solver_name f.finding.Oracle.theory

let majority_bug_id members =
  members
  |> List.filter_map (fun f -> f.finding.Oracle.bug_id)
  |> O4a_util.Listx.count_by Fun.id
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> function
  | (id, _) :: _ -> Some id
  | [] -> None

let cluster founds =
  founds
  |> O4a_util.Listx.group_by cluster_key
  |> List.map (fun (key, members) ->
         let first = List.hd members in
         let representative =
           List.fold_left
             (fun best f ->
               if String.length f.source < String.length best.source then f else best)
             first members
         in
         {
           key;
           kind = first.finding.Oracle.kind;
           solver = first.finding.Oracle.solver;
           theory = first.finding.Oracle.theory;
           bug_id = majority_bug_id members;
           representative;
           count = List.length members;
         })

let distinct_bug_ids clusters =
  clusters |> List.filter_map (fun c -> c.bug_id) |> O4a_util.Listx.dedup
