(** Skeleton extraction (Algorithm 2, line 6).

    A skeleton is a seed formula with a random subset of its {e atomic}
    sub-formulas (boolean-sorted leaves of the logical structure: no [and]/
    [or]/[not]/quantifier/[let] at their root) replaced by numbered
    [<placeholder>] holes. Quantifiers, connectives and declarations are
    preserved — they are precisely the structure Observation 2 of the paper
    identifies as bug-critical. *)

open Smtlib

val boolean_atom_paths : Term.t -> Term.path list
(** Paths of atomic sub-formulas in boolean positions, pre-order. *)

val skeletonize_term :
  rng:O4a_util.Rng.t -> ?keep_prob:float -> next_hole:int ref -> Term.t -> Term.t
(** Replace a random non-empty subset of the atom paths (each selected with
    [keep_prob], default 0.45; at least one when any exists) with
    [Placeholder] holes numbered from [next_hole]. *)

val skeletonize :
  rng:O4a_util.Rng.t -> ?keep_prob:float -> Script.t -> Script.t * int
(** Skeletonize every assertion; returns the script and the hole count
    (0 when the seed offered no atomic positions). *)

(** {1 Mixed-sorts extension (paper 5.3, future work)} *)

val typed_candidate_paths :
  env:Theories.Typecheck.env ->
  supported:(Sort.t -> bool) ->
  Term.t ->
  (Term.path * Sort.t) list
(** Replaceable positions of {e any} sort: small subterms whose sort can be
    inferred in context (binders tracked) and is one the caller's generators
    can produce. Boolean atoms are included, so this strictly generalizes
    {!boolean_atom_paths}. *)

val skeletonize_typed :
  rng:O4a_util.Rng.t ->
  ?keep_prob:float ->
  supported:(Sort.t -> bool) ->
  Script.t ->
  Script.t * (int * Sort.t) list
(** Like {!skeletonize} but holes may be non-Boolean; returns each hole's
    expected sort. *)
