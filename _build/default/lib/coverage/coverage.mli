(** Coverage instrumentation for the solver substrate.

    The paper measures gcov line and function coverage of Z3 and cvc5 while
    fuzzing (Figures 6 and 8). Our solvers are OCaml libraries, so instead of
    gcov we instrument them directly: every solver module registers named
    coverage {e points} at load time, tagged with the solver they belong to,
    a file name, a function name, and a kind ([`Line] or [`Function]). During
    solving, the code calls {!hit} on the points it passes through. A global
    registry accumulates hit counts; {!snapshot} captures the current state
    so experiments can compute coverage growth over time. *)

type solver_tag = Zeal | Cove

type kind = Line | Function

type point
(** An opaque registered coverage point. [hit] on a point is O(1). *)

val register :
  solver:solver_tag -> file:string -> func:string -> kind:kind -> string -> point
(** [register ~solver ~file ~func ~kind label] creates (or retrieves, if the
    same identity was registered before) a coverage point. Call once at module
    load time and keep the [point] value. *)

val register_lines :
  solver:solver_tag -> file:string -> func:string -> int -> point array
(** [register_lines ~solver ~file ~func n] registers a [Function] point plus
    [n] [Line] points for a function body, returning the line points. The
    function point is hit automatically whenever line 0 is hit. *)

val hit : point -> unit

val hit_count : point -> int

(** {1 Snapshots and reporting} *)

type snapshot = {
  lines_total : int;
  lines_hit : int;
  funcs_total : int;
  funcs_hit : int;
}

val snapshot : solver_tag -> snapshot
(** Current totals for one solver. *)

val line_pct : snapshot -> float
val func_pct : snapshot -> float

val reset : unit -> unit
(** Zero all hit counters (registrations are kept). *)

val total_points : solver_tag -> int

val hit_point_labels : solver_tag -> string list
(** Labels ["file:func:label"] of every point hit at least once — used to
    compare which regions different fuzzers reach. *)
