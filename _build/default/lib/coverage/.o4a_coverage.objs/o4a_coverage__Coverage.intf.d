lib/coverage/coverage.mli:
