lib/coverage/coverage.ml: Array Hashtbl List Printf
