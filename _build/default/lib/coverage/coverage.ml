type solver_tag = Zeal | Cove

type kind = Line | Function

type point = {
  id : int;
  solver : solver_tag;
  file : string;
  func : string;
  kind : kind;
  label : string;
  mutable count : int;
  mutable chained : point option; (* function point hit alongside line 0 *)
}

let registry : (string, point) Hashtbl.t = Hashtbl.create 1024
let all_points : point list ref = ref []
let next_id = ref 0

let identity ~solver ~file ~func ~kind label =
  let s = match solver with Zeal -> "zeal" | Cove -> "cove" in
  let k = match kind with Line -> "l" | Function -> "f" in
  Printf.sprintf "%s|%s|%s|%s|%s" s file func k label

let register ~solver ~file ~func ~kind label =
  let key = identity ~solver ~file ~func ~kind label in
  match Hashtbl.find_opt registry key with
  | Some p -> p
  | None ->
    let p =
      { id = !next_id; solver; file; func; kind; label; count = 0; chained = None }
    in
    incr next_id;
    Hashtbl.add registry key p;
    all_points := p :: !all_points;
    p

let hit p =
  p.count <- p.count + 1;
  match p.chained with
  | Some f -> if p.count >= 1 then f.count <- f.count + 1
  | None -> ()

let hit_count p = p.count

let register_lines ~solver ~file ~func n =
  let fpoint = register ~solver ~file ~func ~kind:Function "entry" in
  let lines =
    Array.init n (fun i ->
        register ~solver ~file ~func ~kind:Line (string_of_int i))
  in
  if n > 0 then lines.(0).chained <- Some fpoint;
  lines

type snapshot = {
  lines_total : int;
  lines_hit : int;
  funcs_total : int;
  funcs_hit : int;
}

let snapshot solver =
  let init = { lines_total = 0; lines_hit = 0; funcs_total = 0; funcs_hit = 0 } in
  List.fold_left
    (fun acc p ->
      if p.solver <> solver then acc
      else (
        match p.kind with
        | Line ->
          {
            acc with
            lines_total = acc.lines_total + 1;
            lines_hit = (acc.lines_hit + if p.count > 0 then 1 else 0);
          }
        | Function ->
          {
            acc with
            funcs_total = acc.funcs_total + 1;
            funcs_hit = (acc.funcs_hit + if p.count > 0 then 1 else 0);
          }))
    init !all_points

let pct hit total = if total = 0 then 0. else 100. *. float_of_int hit /. float_of_int total

let line_pct s = pct s.lines_hit s.lines_total
let func_pct s = pct s.funcs_hit s.funcs_total

let reset () = List.iter (fun p -> p.count <- 0) !all_points

let total_points solver =
  List.length (List.filter (fun p -> p.solver = solver) !all_points)

let hit_point_labels solver =
  !all_points
  |> List.filter (fun p -> p.solver = solver && p.count > 0)
  |> List.map (fun p -> Printf.sprintf "%s:%s:%s" p.file p.func p.label)
  |> List.sort compare
