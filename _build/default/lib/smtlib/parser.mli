(** Elaboration of S-expressions into SMT-LIB scripts, terms and sorts.

    Error messages are deliberately phrased like a real solver's parser
    output, because the self-correction loop of Algorithm 1 feeds them back
    to the (simulated) LLM. *)

type error = { message : string }

val error_message : error -> string

val parse_script : string -> (Script.t, error) result

val parse_term :
  ?datatypes:string list -> ?ctors:string list -> string -> (Term.t, error) result
(** Parse a single term. [datatypes] lists sort names to resolve as
    [Sort.Datatype] rather than [Sort.Uninterpreted]; [ctors] lists
    constructor names, used to tell a nullary-constructor pattern from a
    catch-all variable pattern in [match]. *)

val parse_term_in : Script.t -> string -> (Term.t, error) result
(** Parse a term using the datatype context of an existing script. *)

val parse_sort : ?datatypes:string list -> string -> (Sort.t, error) result

val sort_of_sexp : datatypes:string list -> Lexer.sexp -> Sort.t
(** Raises [Failure] with a parser-style message on malformed input. *)

val term_of_sexp :
  ?ctors:string list -> datatypes:string list -> Lexer.sexp -> Term.t
(** Raises [Failure]. Placeholder symbols [<placeholder>] become numbered
    {!Term.Placeholder} nodes in left-to-right order. *)
