(** Concrete SMT-LIB syntax output. [Parser.parse_script (Printer.script s)]
    round-trips for every construct the parser supports. *)

val index : Term.index -> string

val term : Term.t -> string
(** Placeholder nodes print as the paper's [<placeholder>] marker. *)

val command : Command.t -> string

val script : Script.t -> string
(** One command per line. *)

val model_binding : string -> Sort.t list -> Sort.t -> string -> string
(** [(define-fun name ((x0 s)...) result body)] rendering used by the solvers'
    get-model output. *)
