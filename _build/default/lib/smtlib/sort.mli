(** SMT-LIB sorts, covering the standard theories plus the solver-specific
    extensions targeted by the paper (cvc5's Seq, Set/Relation, Bag, and
    FiniteField sorts). *)

type t =
  | Bool
  | Int
  | Real
  | String_sort
  | Reglan  (** regular-language sort [RegLan] from the Strings theory *)
  | Bitvec of int  (** [(_ BitVec n)], n >= 1 *)
  | Finite_field of int  (** cvc5 [(_ FiniteField p)], p prime *)
  | Seq of t  (** cvc5 [(Seq s)] *)
  | Set of t  (** cvc5 [(Set s)] *)
  | Bag of t  (** cvc5 [(Bag s)] *)
  | Array of t * t  (** [(Array index element)] *)
  | Tuple of t list  (** cvc5 [(Tuple s1 ... sn)]; [Tuple []] is [UnitTuple] *)
  | Datatype of string  (** named user datatype *)
  | Uninterpreted of string  (** user-declared sort of arity 0 *)

val equal : t -> t -> bool

val compare : t -> t -> int

val to_string : t -> string
(** Concrete SMT-LIB syntax, e.g. ["(_ BitVec 8)"], ["(Seq Int)"]. *)

val pp : Format.formatter -> t -> unit

val is_numeric : t -> bool
(** Int or Real. *)

val is_container : t -> bool
(** Seq, Set, Bag or Array. *)

val element_sort : t -> t option
(** Element sort of a container ([Array] gives its element sort). *)

val size_estimate : t -> int
(** Rough structural size, used to bound recursive sort generation. *)
