let index = function
  | Term.Idx_num n -> string_of_int n
  | Term.Idx_sym s -> s

let rec term t =
  match t with
  | Term.Const c -> Term.const_to_string c
  | Term.Var name -> name
  | Term.App (name, []) -> name
  | Term.App (name, args) ->
    Printf.sprintf "(%s %s)" name (String.concat " " (List.map term args))
  | Term.Indexed_app (name, idxs, []) ->
    Printf.sprintf "(_ %s %s)" name (String.concat " " (List.map index idxs))
  | Term.Indexed_app (name, idxs, args) ->
    Printf.sprintf "((_ %s %s) %s)" name
      (String.concat " " (List.map index idxs))
      (String.concat " " (List.map term args))
  | Term.Qual (name, sort) -> Printf.sprintf "(as %s %s)" name (Sort.to_string sort)
  | Term.Qual_app (name, sort, args) ->
    Printf.sprintf "((as %s %s) %s)" name (Sort.to_string sort)
      (String.concat " " (List.map term args))
  | Term.Let (bindings, body) ->
    let binding (name, value) = Printf.sprintf "(%s %s)" name (term value) in
    Printf.sprintf "(let (%s) %s)" (String.concat " " (List.map binding bindings)) (term body)
  | Term.Forall (binders, body) ->
    Printf.sprintf "(forall (%s) %s)" (binders_to_string binders) (term body)
  | Term.Exists (binders, body) ->
    Printf.sprintf "(exists (%s) %s)" (binders_to_string binders) (term body)
  | Term.Annot (body, attrs) ->
    let attr (key, value) =
      match value with
      | Some v -> Printf.sprintf ":%s %s" key v
      | None -> Printf.sprintf ":%s" key
    in
    Printf.sprintf "(! %s %s)" (term body) (String.concat " " (List.map attr attrs))
  | Term.Match (scrutinee, cases) ->
    let pattern = function
      | Term.P_ctor (ctor, []) -> ctor
      | Term.P_ctor (ctor, binders) ->
        Printf.sprintf "(%s %s)" ctor (String.concat " " binders)
      | Term.P_var name -> name
      | Term.P_wildcard -> "_"
    in
    Printf.sprintf "(match %s (%s))" (term scrutinee)
      (String.concat " "
         (List.map (fun (p, b) -> Printf.sprintf "(%s %s)" (pattern p) (term b)) cases))
  | Term.Placeholder _ -> "<placeholder>"

and binders_to_string binders =
  binders
  |> List.map (fun (name, sort) -> Printf.sprintf "(%s %s)" name (Sort.to_string sort))
  |> String.concat " "

let datatype_decl (d : Command.datatype_decl) =
  let ctor (c : Command.constructor) =
    if c.selectors = [] then Printf.sprintf "(%s)" c.ctor_name
    else
      Printf.sprintf "(%s %s)" c.ctor_name
        (String.concat " "
           (List.map
              (fun (sel, sort) -> Printf.sprintf "(%s %s)" sel (Sort.to_string sort))
              c.selectors))
  in
  ( Printf.sprintf "(%s 0)" d.dt_name,
    Printf.sprintf "(%s)" (String.concat " " (List.map ctor d.constructors)) )

let command cmd =
  match cmd with
  | Command.Set_logic logic -> Printf.sprintf "(set-logic %s)" logic
  | Command.Set_option (key, value) -> Printf.sprintf "(set-option :%s %s)" key value
  | Command.Set_info (key, value) -> Printf.sprintf "(set-info :%s %s)" key value
  | Command.Declare_sort (name, arity) -> Printf.sprintf "(declare-sort %s %d)" name arity
  | Command.Declare_fun (name, args, result) ->
    Printf.sprintf "(declare-fun %s (%s) %s)" name
      (String.concat " " (List.map Sort.to_string args))
      (Sort.to_string result)
  | Command.Declare_const (name, sort) ->
    Printf.sprintf "(declare-const %s %s)" name (Sort.to_string sort)
  | Command.Define_fun (name, params, result, body) ->
    Printf.sprintf "(define-fun %s (%s) %s %s)" name
      (binders_to_string params) (Sort.to_string result) (term body)
  | Command.Declare_datatypes decls ->
    let sort_parts, ctor_parts = List.split (List.map datatype_decl decls) in
    Printf.sprintf "(declare-datatypes (%s) (%s))"
      (String.concat " " sort_parts)
      (String.concat " " ctor_parts)
  | Command.Assert t -> Printf.sprintf "(assert %s)" (term t)
  | Command.Check_sat -> "(check-sat)"
  | Command.Get_model -> "(get-model)"
  | Command.Get_value ts ->
    Printf.sprintf "(get-value (%s))" (String.concat " " (List.map term ts))
  | Command.Push n -> Printf.sprintf "(push %d)" n
  | Command.Pop n -> Printf.sprintf "(pop %d)" n
  | Command.Echo s -> Printf.sprintf "(echo \"%s\")" (O4a_util.Strx.escape_smt_string s)
  | Command.Exit -> "(exit)"

let script commands = String.concat "\n" (List.map command commands)

let model_binding name arg_sorts result_sort body =
  let params =
    List.mapi (fun i s -> Printf.sprintf "(x!%d %s)" i (Sort.to_string s)) arg_sorts
  in
  Printf.sprintf "(define-fun %s (%s) %s %s)" name (String.concat " " params)
    (Sort.to_string result_sort) body
