(** SMT-LIB script commands. *)

type constructor = {
  ctor_name : string;
  selectors : (string * Sort.t) list;
}

type datatype_decl = {
  dt_name : string;
  constructors : constructor list;
}

type t =
  | Set_logic of string
  | Set_option of string * string
  | Set_info of string * string
  | Declare_sort of string * int
  | Declare_fun of string * Sort.t list * Sort.t
  | Declare_const of string * Sort.t
  | Define_fun of string * (string * Sort.t) list * Sort.t * Term.t
  | Declare_datatypes of datatype_decl list
  | Assert of Term.t
  | Check_sat
  | Get_model
  | Get_value of Term.t list
  | Push of int
  | Pop of int
  | Echo of string
  | Exit

val equal : t -> t -> bool

val is_assert : t -> bool

val assert_term : t -> Term.t option
