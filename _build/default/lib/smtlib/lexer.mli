(** SMT-LIB tokenizer and generic S-expression reader. *)

type atom =
  | Sym of string  (** symbol, including quoted [|sym|] (quotes stripped) *)
  | Kw of string  (** keyword [:kw] (colon stripped) *)
  | Num of string  (** numeral *)
  | Dec of string  (** decimal *)
  | Hex of string  (** [#xDEAD] (prefix stripped) *)
  | Bin of string  (** [#b0101] (prefix stripped) *)
  | Str of string  (** string literal (unescaped body) *)

type sexp = Atom of atom | List of sexp list

exception Lex_error of string
(** Raised on malformed input, with a human-readable message that mimics a
    solver's parser error (used by the self-correction loop). *)

val tokenize : string -> atom option list
(** Internal tokenization exposed for tests: [None] marks parens — see
    [read_sexps] for the useful entry point. *)

val read_sexps : string -> sexp list
(** Parse a whole input into top-level S-expressions.
    Raises {!Lex_error} on malformed input (unbalanced parens, bad string
    literal, stray characters). *)

val atom_to_string : atom -> string
