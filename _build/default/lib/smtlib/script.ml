type t = Command.t list

type fun_decl = {
  name : string;
  arg_sorts : Sort.t list;
  result_sort : Sort.t;
}

let datatype_fun_decls (dt : Command.datatype_decl) =
  let dt_sort = Sort.Datatype dt.dt_name in
  List.concat_map
    (fun (c : Command.constructor) ->
      let ctor =
        { name = c.ctor_name; arg_sorts = List.map snd c.selectors; result_sort = dt_sort }
      in
      let selectors =
        List.map
          (fun (sel_name, sel_sort) ->
            { name = sel_name; arg_sorts = [ dt_sort ]; result_sort = sel_sort })
          c.selectors
      in
      let tester =
        { name = "is-" ^ c.ctor_name; arg_sorts = [ dt_sort ]; result_sort = Sort.Bool }
      in
      (ctor :: selectors) @ [ tester ])
    dt.constructors

let declared_funs script =
  List.concat_map
    (fun cmd ->
      match cmd with
      | Command.Declare_fun (name, arg_sorts, result_sort) ->
        [ { name; arg_sorts; result_sort } ]
      | Command.Declare_const (name, sort) ->
        [ { name; arg_sorts = []; result_sort = sort } ]
      | Command.Define_fun (name, params, result_sort, _) ->
        [ { name; arg_sorts = List.map snd params; result_sort } ]
      | Command.Declare_datatypes dts -> List.concat_map datatype_fun_decls dts
      | Command.Set_logic _ | Command.Set_option _ | Command.Set_info _
      | Command.Declare_sort _ | Command.Assert _ | Command.Check_sat
      | Command.Get_model | Command.Get_value _ | Command.Push _ | Command.Pop _
      | Command.Echo _ | Command.Exit ->
        [])
    script

let declared_consts script =
  declared_funs script
  |> List.filter_map (fun d -> if d.arg_sorts = [] then Some (d.name, d.result_sort) else None)

let declared_datatypes script =
  List.concat_map
    (function Command.Declare_datatypes dts -> dts | _ -> [])
    script

let declared_sorts script =
  List.filter_map
    (function Command.Declare_sort (name, 0) -> Some name | _ -> None)
    script

let assertions script = List.filter_map Command.assert_term script

let map_assertions f script =
  List.map
    (fun cmd -> match cmd with Command.Assert t -> Command.Assert (f t) | _ -> cmd)
    script

let replace_assertions script new_asserts =
  let remaining = ref new_asserts in
  let substituted =
    List.filter_map
      (fun cmd ->
        match cmd with
        | Command.Assert _ -> (
          match !remaining with
          | [] -> None
          | t :: rest ->
            remaining := rest;
            Some (Command.Assert t))
        | _ -> Some cmd)
      script
  in
  let extras = List.map (fun t -> Command.Assert t) !remaining in
  if extras = [] then substituted
  else (
    let rec insert acc = function
      | [] -> List.rev_append acc extras
      | Command.Check_sat :: _ as rest -> List.rev_append acc (extras @ rest)
      | cmd :: rest -> insert (cmd :: acc) rest
    in
    insert [] substituted)

let symbol_names script = List.map (fun d -> d.name) (declared_funs script)

let add_declarations script decls =
  let existing = symbol_names script in
  let fresh_decls =
    List.filter
      (fun cmd ->
        match cmd with
        | Command.Declare_fun (name, _, _)
        | Command.Declare_const (name, _)
        | Command.Define_fun (name, _, _, _) ->
          not (List.mem name existing)
        | Command.Declare_datatypes dts ->
          not (List.exists (fun (dt : Command.datatype_decl) ->
                   List.mem dt.dt_name existing
                   || List.exists
                        (fun (c : Command.constructor) -> List.mem c.ctor_name existing)
                        dt.constructors) dts)
        | Command.Declare_sort (name, _) -> not (List.mem name existing)
        | _ -> true)
      decls
  in
  let is_body = function
    | Command.Assert _ | Command.Check_sat | Command.Get_model | Command.Get_value _ ->
      true
    | _ -> false
  in
  let rec insert acc = function
    | [] -> List.rev_append acc fresh_decls
    | cmd :: rest when is_body cmd -> List.rev_append acc (fresh_decls @ (cmd :: rest))
    | cmd :: rest -> insert (cmd :: acc) rest
  in
  insert [] script

let fresh_name script base =
  let used = symbol_names script in
  if not (List.mem base used) then base
  else (
    let rec go i =
      let candidate = Printf.sprintf "%s%d" base i in
      if List.mem candidate used then go (i + 1) else candidate
    in
    go 0)

let has_check_sat script = List.mem Command.Check_sat script

let ensure_check_sat script =
  if has_check_sat script then script else script @ [ Command.Check_sat ]

(* Heuristic theory tagging by operator prefixes and sorts; kept here (rather
   than in the theories library) because triage grouping must not depend on a
   full signature table. *)
let theories_used script =
  let tags = ref [] in
  let add tag = if not (List.mem tag !tags) then tags := tag :: !tags in
  let rec tag_sort = function
    | Sort.Bool -> add "core"
    | Sort.Int -> add "ints"
    | Sort.Real -> add "reals"
    | Sort.String_sort | Sort.Reglan -> add "strings"
    | Sort.Bitvec _ -> add "bitvectors"
    | Sort.Finite_field _ -> add "finite_fields"
    | Sort.Seq s ->
      add "seq";
      tag_sort s
    | Sort.Set s ->
      add "sets";
      tag_sort s
    | Sort.Bag s ->
      add "bags";
      tag_sort s
    | Sort.Array (i, e) ->
      add "arrays";
      tag_sort i;
      tag_sort e
    | Sort.Tuple ss ->
      add "sets";
      List.iter tag_sort ss
    | Sort.Datatype _ -> add "datatypes"
    | Sort.Uninterpreted _ -> add "uf"
  in
  let tag_op name =
    let has_prefix p = O4a_util.Strx.starts_with ~prefix:p name in
    if has_prefix "bv" then add "bitvectors"
    else if has_prefix "str." || has_prefix "re." then add "strings"
    else if has_prefix "seq." then add "seq"
    else if has_prefix "set." || has_prefix "rel." then add "sets"
    else if has_prefix "bag." || has_prefix "table." then add "bags"
    else if has_prefix "ff." then add "finite_fields"
    else if List.mem name [ "select"; "store" ] then add "arrays"
    else if List.mem name [ "div"; "mod"; "abs"; "divisible"; "to_real" ] then add "ints"
    else if List.mem name [ "/"; "to_int"; "is_int" ] then add "reals"
    else if List.mem name [ "+"; "-"; "*"; "<"; "<="; ">"; ">=" ] then add "arith"
  in
  let rec tag_term t =
    (match t with
    | Term.App (name, _) -> tag_op name
    | Term.Indexed_app (name, _, _) -> tag_op name
    | Term.Qual (_, sort) | Term.Qual_app (_, sort, _) -> tag_sort sort
    | Term.Forall (binders, _) | Term.Exists (binders, _) ->
      add "quantifiers";
      List.iter (fun (_, s) -> tag_sort s) binders
    | Term.Const (Term.Bv_lit _) -> add "bitvectors"
    | Term.Const (Term.String_lit _) -> add "strings"
    | Term.Const (Term.Ff_lit _) -> add "finite_fields"
    | Term.Match _ -> add "datatypes"
    | Term.Const _ | Term.Var _ | Term.Let _ | Term.Annot _ | Term.Placeholder _ -> ());
    List.iter tag_term (Term.children t)
  in
  List.iter (fun d -> List.iter tag_sort (d.result_sort :: d.arg_sorts)) (declared_funs script);
  List.iter tag_term (assertions script);
  List.rev !tags

let size script = O4a_util.Listx.sum (List.map Term.size (assertions script))
