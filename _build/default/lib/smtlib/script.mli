(** Whole SMT-LIB scripts and the symbol information they declare. *)

type t = Command.t list

type fun_decl = {
  name : string;
  arg_sorts : Sort.t list;
  result_sort : Sort.t;
}

val declared_funs : t -> fun_decl list
(** All [declare-fun]/[declare-const]/[define-fun] symbols, plus datatype
    constructors, selectors and testers, in declaration order. *)

val declared_consts : t -> (string * Sort.t) list
(** Zero-arity declared symbols (the fuzzer's variable pool). *)

val declared_datatypes : t -> Command.datatype_decl list

val declared_sorts : t -> string list
(** Names introduced by [declare-sort] (arity 0 only is supported). *)

val assertions : t -> Term.t list

val map_assertions : (Term.t -> Term.t) -> t -> t

val replace_assertions : t -> Term.t list -> t
(** Keep every non-assert command in place, substituting the assert bodies in
    order; extra new assertions are inserted before the first [check-sat]. *)

val add_declarations : t -> Command.t list -> t
(** Insert declarations after the existing declaration prefix (before the
    first [assert]/[check-sat]). Duplicate symbol names are skipped. *)

val symbol_names : t -> string list
(** Every symbol name the script declares or defines. *)

val fresh_name : t -> string -> string
(** [fresh_name script base] finds a name not declared in [script], by
    suffixing [base] with an integer if needed. *)

val has_check_sat : t -> bool

val ensure_check_sat : t -> t

val theories_used : t -> string list
(** Heuristic theory tags appearing in the script (by operator and sort
    usage): e.g. ["ints"; "strings"; "sets"]. Used for bug triage grouping. *)

val size : t -> int
(** Total number of term nodes across assertions. *)
