type t =
  | Bool
  | Int
  | Real
  | String_sort
  | Reglan
  | Bitvec of int
  | Finite_field of int
  | Seq of t
  | Set of t
  | Bag of t
  | Array of t * t
  | Tuple of t list
  | Datatype of string
  | Uninterpreted of string

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = Stdlib.compare a b

let rec to_string = function
  | Bool -> "Bool"
  | Int -> "Int"
  | Real -> "Real"
  | String_sort -> "String"
  | Reglan -> "RegLan"
  | Bitvec n -> Printf.sprintf "(_ BitVec %d)" n
  | Finite_field p -> Printf.sprintf "(_ FiniteField %d)" p
  | Seq s -> Printf.sprintf "(Seq %s)" (to_string s)
  | Set s -> Printf.sprintf "(Set %s)" (to_string s)
  | Bag s -> Printf.sprintf "(Bag %s)" (to_string s)
  | Array (i, e) -> Printf.sprintf "(Array %s %s)" (to_string i) (to_string e)
  | Tuple [] -> "UnitTuple"
  | Tuple ss -> Printf.sprintf "(Tuple %s)" (String.concat " " (List.map to_string ss))
  | Datatype name -> name
  | Uninterpreted name -> name

let pp fmt s = Format.pp_print_string fmt (to_string s)

let is_numeric = function Int | Real -> true | _ -> false

let is_container = function Seq _ | Set _ | Bag _ | Array _ -> true | _ -> false

let element_sort = function
  | Seq s | Set s | Bag s -> Some s
  | Array (_, e) -> Some e
  | Bool | Int | Real | String_sort | Reglan | Bitvec _ | Finite_field _
  | Tuple _ | Datatype _ | Uninterpreted _ ->
    None

let rec size_estimate = function
  | Bool | Int | Real | String_sort | Reglan | Bitvec _ | Finite_field _
  | Datatype _ | Uninterpreted _ ->
    1
  | Seq s | Set s | Bag s -> 1 + size_estimate s
  | Array (i, e) -> 1 + size_estimate i + size_estimate e
  | Tuple ss -> 1 + List.fold_left (fun acc s -> acc + size_estimate s) 0 ss
