(** SMT-LIB terms.

    The representation is name-based: operators are applied by their SMT-LIB
    symbol (["and"], ["bvadd"], ["seq.rev"], ...) and resolved against theory
    signatures at sort-checking time. Skeleton holes (the paper's
    [<placeholder>] markers) are first-class constructors so skeletonization,
    synthesis and reduction all operate on the same tree. *)

type const =
  | Bool_lit of bool
  | Int_lit of int
  | Real_lit of int * int  (** rational p/q with q > 0 *)
  | Bv_lit of { width : int; value : int }
  | String_lit of string
  | Ff_lit of { order : int; value : int }

type index = Idx_num of int | Idx_sym of string

type pattern =
  | P_ctor of string * string list
      (** constructor with binders; empty list for nullary constructors *)
  | P_var of string  (** catch-all binder *)
  | P_wildcard  (** SMT-LIB 2.7 [_] wildcard *)

type t =
  | Const of const
  | Var of string
  | App of string * t list
  | Indexed_app of string * index list * t list
      (** [((_ name i1 ... ik) args)]; nullary indexed identifiers like
          [(_ bv5 8)] have an empty argument list *)
  | Qual of string * Sort.t  (** [(as name sort)] *)
  | Qual_app of string * Sort.t * t list  (** e.g. [((as const (Array Int Int)) 0)] *)
  | Let of (string * t) list * t
  | Forall of (string * Sort.t) list * t
  | Exists of (string * Sort.t) list * t
  | Match of t * (pattern * t) list
      (** [(match t ((pat body) ...))] — SMT-LIB 2.6 datatype matching with
          2.7 wildcard patterns *)
  | Annot of t * attr list  (** [(! t :attr value ...)] *)
  | Placeholder of int  (** skeleton hole *)

and attr = string * string option

(** {1 Smart constructors} *)

val tru : t
val fls : t
val int : int -> t
val real : int -> int -> t
val bv : width:int -> int -> t
val str : string -> t
val ff : order:int -> int -> t
val var : string -> t
val app : string -> t list -> t
val not_ : t -> t
val and_ : t list -> t
val or_ : t list -> t
val eq : t -> t -> t
val ite : t -> t -> t -> t
val distinct : t list -> t

(** {1 Structure} *)

val children : t -> t list

val with_children : t -> t list -> t
(** Rebuild the node with new children (same arity expected; raises
    [Invalid_argument] on mismatch). *)

val size : t -> int
(** Number of nodes. *)

val depth : t -> int

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over every node. *)

val map_bottom_up : (t -> t) -> t -> t

val exists_node : (t -> bool) -> t -> bool

(** {1 Paths} *)

type path = int list
(** Indexes into {!children}, root-first. *)

val subterm_at : t -> path -> t option

val replace_at : t -> path -> t -> t
(** Returns the term unchanged if the path is invalid. *)

val all_paths : t -> (path * t) list
(** Pre-order enumeration of [(path, subterm)] pairs including the root. *)

(** {1 Variables} *)

val free_vars : t -> string list
(** Free variable names, deduplicated, in first-occurrence order. Bound
    variables of [let]/[forall]/[exists] are excluded within their scope. *)

val rename_var : old_name:string -> new_name:string -> t -> t
(** Capture-naive free-variable renaming (callers choose fresh names). *)

val placeholders : t -> int list
(** Hole numbers, in pre-order. *)

val has_placeholder : t -> bool

val equal : t -> t -> bool

val is_atomic : t -> bool
(** [true] when the term contains no boolean connective, quantifier or [let]
    at its root — the paper's notion of an atomic formula eligible for
    skeleton removal. *)

val const_to_string : const -> string
