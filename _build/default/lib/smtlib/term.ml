type const =
  | Bool_lit of bool
  | Int_lit of int
  | Real_lit of int * int
  | Bv_lit of { width : int; value : int }
  | String_lit of string
  | Ff_lit of { order : int; value : int }

type index = Idx_num of int | Idx_sym of string

type pattern =
  | P_ctor of string * string list
  | P_var of string
  | P_wildcard

type t =
  | Const of const
  | Var of string
  | App of string * t list
  | Indexed_app of string * index list * t list
  | Qual of string * Sort.t
  | Qual_app of string * Sort.t * t list
  | Let of (string * t) list * t
  | Forall of (string * Sort.t) list * t
  | Exists of (string * Sort.t) list * t
  | Match of t * (pattern * t) list
  | Annot of t * attr list
  | Placeholder of int

and attr = string * string option

let tru = Const (Bool_lit true)
let fls = Const (Bool_lit false)
let int n = Const (Int_lit n)

let real p q =
  if q <= 0 then invalid_arg "Term.real: denominator must be positive";
  Const (Real_lit (p, q))

let bv ~width value = Const (Bv_lit { width; value })
let str s = Const (String_lit s)
let ff ~order value = Const (Ff_lit { order; value })
let var name = Var name
let app name args = App (name, args)
let not_ t = App ("not", [ t ])
let and_ ts = App ("and", ts)
let or_ ts = App ("or", ts)
let eq a b = App ("=", [ a; b ])
let ite c a b = App ("ite", [ c; a; b ])
let distinct ts = App ("distinct", ts)

let children = function
  | Const _ | Var _ | Qual _ | Placeholder _ -> []
  | App (_, args) | Indexed_app (_, _, args) | Qual_app (_, _, args) -> args
  | Let (bindings, body) -> List.map snd bindings @ [ body ]
  | Forall (_, body) | Exists (_, body) | Annot (body, _) -> [ body ]
  | Match (scrutinee, cases) -> scrutinee :: List.map snd cases

let with_children t new_children =
  let arity_error () = invalid_arg "Term.with_children: arity mismatch" in
  match t with
  | Const _ | Var _ | Qual _ | Placeholder _ ->
    if new_children = [] then t else arity_error ()
  | App (name, args) ->
    if List.length args = List.length new_children then App (name, new_children)
    else arity_error ()
  | Indexed_app (name, idxs, args) ->
    if List.length args = List.length new_children then
      Indexed_app (name, idxs, new_children)
    else arity_error ()
  | Qual_app (name, sort, args) ->
    if List.length args = List.length new_children then
      Qual_app (name, sort, new_children)
    else arity_error ()
  | Let (bindings, _) ->
    let nb = List.length bindings in
    if List.length new_children <> nb + 1 then arity_error ()
    else (
      let binding_terms = O4a_util.Listx.take nb new_children in
      let body = List.nth new_children nb in
      let bindings' = List.map2 (fun (name, _) v -> (name, v)) bindings binding_terms in
      Let (bindings', body))
  | Forall (binders, _) -> (
    match new_children with [ body ] -> Forall (binders, body) | _ -> arity_error ())
  | Exists (binders, _) -> (
    match new_children with [ body ] -> Exists (binders, body) | _ -> arity_error ())
  | Annot (_, attrs) -> (
    match new_children with [ body ] -> Annot (body, attrs) | _ -> arity_error ())
  | Match (_, cases) -> (
    match new_children with
    | scrutinee :: bodies when List.length bodies = List.length cases ->
      Match (scrutinee, List.map2 (fun (p, _) b -> (p, b)) cases bodies)
    | _ -> arity_error ())

let rec size t = 1 + List.fold_left (fun acc c -> acc + size c) 0 (children t)

let rec depth t =
  match children t with
  | [] -> 1
  | cs -> 1 + List.fold_left (fun acc c -> max acc (depth c)) 0 cs

let rec fold f acc t = List.fold_left (fold f) (f acc t) (children t)

let rec map_bottom_up f t =
  let t' = with_children t (List.map (map_bottom_up f) (children t)) in
  f t'

let exists_node pred t = fold (fun found node -> found || pred node) false t

type path = int list

let rec subterm_at t = function
  | [] -> Some t
  | i :: rest -> (
    match List.nth_opt (children t) i with
    | Some c -> subterm_at c rest
    | None -> None)

let rec replace_at t path replacement =
  match path with
  | [] -> replacement
  | i :: rest ->
    let cs = children t in
    (match List.nth_opt cs i with
    | None -> t
    | Some c ->
      let c' = replace_at c rest replacement in
      with_children t (O4a_util.Listx.replace_nth i c' cs))

let all_paths t =
  let rec go path t acc =
    let acc = (List.rev path, t) :: acc in
    List.fold_left
      (fun (i, acc) c -> (i + 1, go (i :: path) c acc))
      (0, acc) (children t)
    |> snd
  in
  List.rev (go [] t [])

let free_vars t =
  let rec go bound t =
    match t with
    | Var name -> if List.mem name bound then [] else [ name ]
    | Const _ | Qual _ | Placeholder _ -> []
    | App (_, args) | Indexed_app (_, _, args) | Qual_app (_, _, args) ->
      List.concat_map (go bound) args
    | Let (bindings, body) ->
      let from_bindings = List.concat_map (fun (_, v) -> go bound v) bindings in
      let bound' = List.map fst bindings @ bound in
      from_bindings @ go bound' body
    | Forall (binders, body) | Exists (binders, body) ->
      go (List.map fst binders @ bound) body
    | Match (scrutinee, cases) ->
      go bound scrutinee
      @ List.concat_map
          (fun (pattern, body) ->
            let binders =
              match pattern with
              | P_ctor (_, names) -> names
              | P_var name -> [ name ]
              | P_wildcard -> []
            in
            go (binders @ bound) body)
          cases
    | Annot (body, _) -> go bound body
  in
  O4a_util.Listx.dedup (go [] t)

let rec rename_var ~old_name ~new_name t =
  let recurse = rename_var ~old_name ~new_name in
  match t with
  | Var name -> if name = old_name then Var new_name else t
  | Const _ | Qual _ | Placeholder _ -> t
  | App (name, args) -> App (name, List.map recurse args)
  | Indexed_app (name, idxs, args) -> Indexed_app (name, idxs, List.map recurse args)
  | Qual_app (name, sort, args) -> Qual_app (name, sort, List.map recurse args)
  | Let (bindings, body) ->
    let bindings' = List.map (fun (n, v) -> (n, recurse v)) bindings in
    if List.exists (fun (n, _) -> n = old_name) bindings then Let (bindings', body)
    else Let (bindings', recurse body)
  | Forall (binders, body) ->
    if List.exists (fun (n, _) -> n = old_name) binders then t
    else Forall (binders, recurse body)
  | Exists (binders, body) ->
    if List.exists (fun (n, _) -> n = old_name) binders then t
    else Exists (binders, recurse body)
  | Match (scrutinee, cases) ->
    let case (pattern, body) =
      let binds =
        match pattern with
        | P_ctor (_, names) -> List.mem old_name names
        | P_var name -> name = old_name
        | P_wildcard -> false
      in
      (pattern, if binds then body else recurse body)
    in
    Match (recurse scrutinee, List.map case cases)
  | Annot (body, attrs) -> Annot (recurse body, attrs)

let placeholders t =
  fold (fun acc node -> match node with Placeholder n -> n :: acc | _ -> acc) [] t
  |> List.rev

let has_placeholder t = placeholders t <> []

let equal (a : t) (b : t) = a = b

let is_atomic t =
  let is_structural = function
    | App (("and" | "or" | "not" | "=>" | "xor" | "ite"), _) -> true
    | Let _ | Forall _ | Exists _ | Match _ -> true
    | Const _ | Var _ | App _ | Indexed_app _ | Qual _ | Qual_app _ | Annot _
    | Placeholder _ ->
      false
  in
  not (is_structural t)

let const_to_string = function
  | Bool_lit b -> string_of_bool b
  | Int_lit n -> if n < 0 then Printf.sprintf "(- %d)" (-n) else string_of_int n
  | Real_lit (p, q) -> (
    let decimal_digits q =
      (* denominators whose only prime factors are 2 and 5 print exactly *)
      let rec strip d q = if q mod d = 0 then strip d (q / d) else q in
      if strip 5 (strip 2 q) = 1 then (
        let rec scale num den digits =
          if den = 1 then (num, digits)
          else if num * 10 / 10 <> num then (num, digits) (* overflow guard *)
          else (
            let g = if den mod 2 = 0 then 2 else 5 in
            scale (num * 10 / g) (den / g) (digits + 1))
        in
        Some (scale (abs p) q 0))
      else None
    in
    match decimal_digits q with
    | Some (scaled, digits) ->
      let text =
        if digits = 0 then Printf.sprintf "%d.0" scaled
        else (
          let s = Printf.sprintf "%0*d" (digits + 1) scaled in
          let cut = String.length s - digits in
          String.sub s 0 cut ^ "." ^ String.sub s cut digits)
      in
      if p < 0 then Printf.sprintf "(- %s)" text else text
    | None ->
      if p < 0 then Printf.sprintf "(- (/ %d.0 %d.0))" (-p) q
      else Printf.sprintf "(/ %d.0 %d.0)" p q)
  | Bv_lit { width; value } ->
    let buf = Buffer.create (width + 2) in
    Buffer.add_string buf "#b";
    for i = width - 1 downto 0 do
      Buffer.add_char buf (if (value lsr i) land 1 = 1 then '1' else '0')
    done;
    Buffer.contents buf
  | String_lit s -> Printf.sprintf "\"%s\"" (O4a_util.Strx.escape_smt_string s)
  | Ff_lit { order; value } -> Printf.sprintf "(as ff%d (_ FiniteField %d))" value order
