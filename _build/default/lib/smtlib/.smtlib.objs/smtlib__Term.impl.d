lib/smtlib/term.ml: Buffer List O4a_util Printf Sort String
