lib/smtlib/term.mli: Sort
