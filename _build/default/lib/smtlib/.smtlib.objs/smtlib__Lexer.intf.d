lib/smtlib/lexer.mli:
