lib/smtlib/script.mli: Command Sort Term
