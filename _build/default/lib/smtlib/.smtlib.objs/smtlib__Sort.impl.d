lib/smtlib/sort.ml: Format List Printf Stdlib String
