lib/smtlib/command.mli: Sort Term
