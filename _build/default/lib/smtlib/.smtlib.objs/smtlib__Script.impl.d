lib/smtlib/script.ml: Command List O4a_util Printf Sort Term
