lib/smtlib/sort.mli: Format
