lib/smtlib/printer.ml: Command List O4a_util Printf Sort String Term
