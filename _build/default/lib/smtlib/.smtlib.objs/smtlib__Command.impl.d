lib/smtlib/command.ml: Sort Term
