lib/smtlib/lexer.ml: Buffer List Printf String
