lib/smtlib/printer.mli: Command Script Sort Term
