lib/smtlib/parser.ml: Command Lexer List O4a_util Printf Script Sort String Term
