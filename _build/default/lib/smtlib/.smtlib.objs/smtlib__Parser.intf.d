lib/smtlib/parser.mli: Lexer Script Sort Term
