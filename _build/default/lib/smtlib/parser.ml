type error = { message : string }

let error_message e = e.message

let fail fmt = Printf.ksprintf (fun msg -> failwith msg) fmt

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let atom_text = Lexer.atom_to_string

let sexp_brief sexp =
  let rec go = function
    | Lexer.Atom a -> atom_text a
    | Lexer.List xs -> "(" ^ String.concat " " (List.map go xs) ^ ")"
  in
  O4a_util.Strx.truncate_mid 60 (go sexp)

(* ------------------------------------------------------------------ *)
(* Sorts                                                              *)
(* ------------------------------------------------------------------ *)

let rec sort_of_sexp ~datatypes sexp =
  match sexp with
  | Lexer.Atom (Lexer.Sym "Bool") -> Sort.Bool
  | Lexer.Atom (Lexer.Sym "Int") -> Sort.Int
  | Lexer.Atom (Lexer.Sym "Real") -> Sort.Real
  | Lexer.Atom (Lexer.Sym "String") -> Sort.String_sort
  | Lexer.Atom (Lexer.Sym "RegLan") -> Sort.Reglan
  | Lexer.Atom (Lexer.Sym "UnitTuple") -> Sort.Tuple []
  | Lexer.Atom (Lexer.Sym name) ->
    if List.mem name datatypes then Sort.Datatype name else Sort.Uninterpreted name
  | Lexer.List [ Lexer.Atom (Lexer.Sym "_"); Lexer.Atom (Lexer.Sym "BitVec"); Lexer.Atom (Lexer.Num n) ] ->
    let width = int_of_string n in
    if width < 1 then fail "invalid bit-vector width %d" width;
    Sort.Bitvec width
  | Lexer.List
      [ Lexer.Atom (Lexer.Sym "_"); Lexer.Atom (Lexer.Sym "FiniteField"); Lexer.Atom (Lexer.Num p) ] ->
    let order = int_of_string p in
    if order < 2 then fail "invalid finite-field order %d" order;
    Sort.Finite_field order
  | Lexer.List [ Lexer.Atom (Lexer.Sym "Seq"); elt ] -> Sort.Seq (sort_of_sexp ~datatypes elt)
  | Lexer.List [ Lexer.Atom (Lexer.Sym "Set"); elt ] -> Sort.Set (sort_of_sexp ~datatypes elt)
  | Lexer.List [ Lexer.Atom (Lexer.Sym "Bag"); elt ] -> Sort.Bag (sort_of_sexp ~datatypes elt)
  | Lexer.List [ Lexer.Atom (Lexer.Sym "Array"); idx; elt ] ->
    Sort.Array (sort_of_sexp ~datatypes idx, sort_of_sexp ~datatypes elt)
  | Lexer.List (Lexer.Atom (Lexer.Sym "Tuple") :: elts) ->
    Sort.Tuple (List.map (sort_of_sexp ~datatypes) elts)
  | Lexer.List (Lexer.Atom (Lexer.Sym "Relation") :: elts) ->
    (* cvc5 sugar: (Relation s1 ... sn) = (Set (Tuple s1 ... sn)) *)
    Sort.Set (Sort.Tuple (List.map (sort_of_sexp ~datatypes) elts))
  | other -> fail "expected sort, got '%s'" (sexp_brief other)

(* ------------------------------------------------------------------ *)
(* Terms                                                              *)
(* ------------------------------------------------------------------ *)

let decimal_to_rational text =
  match String.index_opt text '.' with
  | None -> (int_of_string text, 1)
  | Some dot ->
    let whole = String.sub text 0 dot in
    let frac = String.sub text (dot + 1) (String.length text - dot - 1) in
    let denom = int_of_float (10. ** float_of_int (String.length frac)) in
    let numer = (int_of_string whole * denom) + int_of_string frac in
    let g = gcd numer denom in
    if g = 0 then (0, 1) else (numer / g, denom / g)

let hex_to_bv body =
  let width = 4 * String.length body in
  (width, int_of_string ("0x" ^ body))

let bin_to_bv body =
  let width = String.length body in
  (width, int_of_string ("0b" ^ body))

let index_of_sexp = function
  | Lexer.Atom (Lexer.Num n) -> Term.Idx_num (int_of_string n)
  | Lexer.Atom (Lexer.Sym s) -> Term.Idx_sym s
  | Lexer.Atom (Lexer.Hex h) -> Term.Idx_sym ("#x" ^ h)
  | other -> fail "expected index, got '%s'" (sexp_brief other)

let is_ff_value name =
  String.length name > 2
  && name.[0] = 'f'
  && name.[1] = 'f'
  && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub name 2 (String.length name - 2))

let placeholder_counter = ref 0

let term_of_sexp ?(ctors = []) ~datatypes sexp =
  let sort = sort_of_sexp ~datatypes in
  let rec term sexp =
    match sexp with
    | Lexer.Atom (Lexer.Sym "true") -> Term.tru
    | Lexer.Atom (Lexer.Sym "false") -> Term.fls
    | Lexer.Atom (Lexer.Sym "<placeholder>") ->
      let n = !placeholder_counter in
      incr placeholder_counter;
      Term.Placeholder n
    | Lexer.Atom (Lexer.Sym name) -> Term.Var name
    | Lexer.Atom (Lexer.Num n) -> Term.int (int_of_string n)
    | Lexer.Atom (Lexer.Dec d) ->
      let p, q = decimal_to_rational d in
      Term.real p q
    | Lexer.Atom (Lexer.Hex h) ->
      let width, value = hex_to_bv h in
      Term.bv ~width value
    | Lexer.Atom (Lexer.Bin b) ->
      let width, value = bin_to_bv b in
      Term.bv ~width value
    | Lexer.Atom (Lexer.Str s) -> Term.str s
    | Lexer.Atom (Lexer.Kw k) -> fail "unexpected keyword ':%s' in term position" k
    | Lexer.List [] -> fail "empty application '()'"
    | Lexer.List (Lexer.Atom (Lexer.Sym "_") :: Lexer.Atom (Lexer.Sym name) :: idxs) ->
      Term.Indexed_app (name, List.map index_of_sexp idxs, [])
    | Lexer.List [ Lexer.Atom (Lexer.Sym "as"); Lexer.Atom (Lexer.Sym name); sort_sexp ] -> (
      let s = sort sort_sexp in
      match s with
      | Sort.Finite_field order when is_ff_value name ->
        let value = int_of_string (String.sub name 2 (String.length name - 2)) in
        Term.ff ~order value
      | _ -> Term.Qual (name, s))
    | Lexer.List (Lexer.List [ Lexer.Atom (Lexer.Sym "as"); Lexer.Atom (Lexer.Sym name); sort_sexp ] :: args) ->
      Term.Qual_app (name, sort sort_sexp, List.map term args)
    | Lexer.List (Lexer.List (Lexer.Atom (Lexer.Sym "_") :: Lexer.Atom (Lexer.Sym name) :: idxs) :: args) ->
      Term.Indexed_app (name, List.map index_of_sexp idxs, List.map term args)
    | Lexer.List [ Lexer.Atom (Lexer.Sym "let"); Lexer.List bindings; body ] ->
      let binding = function
        | Lexer.List [ Lexer.Atom (Lexer.Sym name); value ] -> (name, term value)
        | other -> fail "malformed let binding '%s'" (sexp_brief other)
      in
      Term.Let (List.map binding bindings, term body)
    | Lexer.List [ Lexer.Atom (Lexer.Sym (("forall" | "exists") as quant)); Lexer.List binders; body ] ->
      let binder = function
        | Lexer.List [ Lexer.Atom (Lexer.Sym name); sort_sexp ] -> (name, sort sort_sexp)
        | other -> fail "malformed quantifier binder '%s'" (sexp_brief other)
      in
      let bs = List.map binder binders in
      if bs = [] then fail "quantifier with no bound variables";
      if quant = "forall" then Term.Forall (bs, term body) else Term.Exists (bs, term body)
    | Lexer.List [ Lexer.Atom (Lexer.Sym "match"); scrutinee; Lexer.List cases ] ->
      let parse_pattern = function
        | Lexer.Atom (Lexer.Sym "_") -> Term.P_wildcard
        | Lexer.Atom (Lexer.Sym s) ->
          if List.mem s ctors then Term.P_ctor (s, []) else Term.P_var s
        | Lexer.List (Lexer.Atom (Lexer.Sym c) :: binders) ->
          let binder = function
            | Lexer.Atom (Lexer.Sym b) -> b
            | other -> fail "malformed match binder '%s'" (sexp_brief other)
          in
          Term.P_ctor (c, List.map binder binders)
        | other -> fail "malformed match pattern '%s'" (sexp_brief other)
      in
      let parse_case = function
        | Lexer.List [ pattern; body ] -> (parse_pattern pattern, term body)
        | other -> fail "malformed match case '%s'" (sexp_brief other)
      in
      if cases = [] then fail "match with no cases";
      Term.Match (term scrutinee, List.map parse_case cases)
    | Lexer.List (Lexer.Atom (Lexer.Sym "!") :: body :: attrs) ->
      let rec parse_attrs = function
        | [] -> []
        | Lexer.Atom (Lexer.Kw k) :: Lexer.Atom v :: rest when not (is_kw_atom v) ->
          (k, Some (atom_text v)) :: parse_attrs rest
        | Lexer.Atom (Lexer.Kw k) :: rest -> (k, None) :: parse_attrs rest
        | other :: _ -> fail "malformed attribute '%s'" (sexp_brief other)
      in
      Term.Annot (term body, parse_attrs attrs)
    | Lexer.List (Lexer.Atom (Lexer.Sym name) :: args) -> (
      match (name, List.map term args) with
      (* fold unary minus on literals, as solver frontends do *)
      | "-", [ Term.Const (Term.Int_lit n) ] -> Term.int (-n)
      | "-", [ Term.Const (Term.Real_lit (p, q)) ] -> Term.real (-p) q
      | _, ts -> Term.App (name, ts))
    | other -> fail "cannot parse term '%s'" (sexp_brief other)
  and is_kw_atom = function Lexer.Kw _ -> true | _ -> false in
  term sexp

(* ------------------------------------------------------------------ *)
(* Commands                                                           *)
(* ------------------------------------------------------------------ *)

let command_of_sexp ?(ctors = []) ~datatypes sexp =
  let sort = sort_of_sexp ~datatypes in
  let term = term_of_sexp ~ctors ~datatypes in
  match sexp with
  | Lexer.List [ Lexer.Atom (Lexer.Sym "set-logic"); Lexer.Atom (Lexer.Sym logic) ] ->
    Command.Set_logic logic
  | Lexer.List [ Lexer.Atom (Lexer.Sym "set-option"); Lexer.Atom (Lexer.Kw key); Lexer.Atom value ] ->
    Command.Set_option (key, atom_text value)
  | Lexer.List [ Lexer.Atom (Lexer.Sym "set-info"); Lexer.Atom (Lexer.Kw key); Lexer.Atom value ] ->
    Command.Set_info (key, atom_text value)
  | Lexer.List [ Lexer.Atom (Lexer.Sym "declare-sort"); Lexer.Atom (Lexer.Sym name); Lexer.Atom (Lexer.Num n) ] ->
    Command.Declare_sort (name, int_of_string n)
  | Lexer.List [ Lexer.Atom (Lexer.Sym "declare-fun"); Lexer.Atom (Lexer.Sym name); Lexer.List args; result ] ->
    Command.Declare_fun (name, List.map sort args, sort result)
  | Lexer.List [ Lexer.Atom (Lexer.Sym "declare-const"); Lexer.Atom (Lexer.Sym name); result ] ->
    Command.Declare_const (name, sort result)
  | Lexer.List [ Lexer.Atom (Lexer.Sym "define-fun"); Lexer.Atom (Lexer.Sym name); Lexer.List params; result; body ] ->
    let param = function
      | Lexer.List [ Lexer.Atom (Lexer.Sym p); s ] -> (p, sort s)
      | other -> fail "malformed parameter '%s'" (sexp_brief other)
    in
    Command.Define_fun (name, List.map param params, sort result, term body)
  | Lexer.List [ Lexer.Atom (Lexer.Sym "declare-datatypes"); Lexer.List sort_decls; Lexer.List ctor_lists ] ->
    let names =
      List.map
        (function
          | Lexer.List [ Lexer.Atom (Lexer.Sym name); Lexer.Atom (Lexer.Num "0") ] -> name
          | other -> fail "unsupported datatype declaration '%s' (only arity 0)" (sexp_brief other))
        sort_decls
    in
    let datatypes = names @ datatypes in
    let sort = sort_of_sexp ~datatypes in
    let ctor = function
      | Lexer.List (Lexer.Atom (Lexer.Sym cname) :: sels) ->
        let sel = function
          | Lexer.List [ Lexer.Atom (Lexer.Sym sname); s ] -> (sname, sort s)
          | other -> fail "malformed selector '%s'" (sexp_brief other)
        in
        { Command.ctor_name = cname; selectors = List.map sel sels }
      | Lexer.Atom (Lexer.Sym cname) -> { Command.ctor_name = cname; selectors = [] }
      | other -> fail "malformed constructor '%s'" (sexp_brief other)
    in
    let decls =
      List.map2
        (fun name ctors_sexp ->
          match ctors_sexp with
          | Lexer.List ctors -> { Command.dt_name = name; constructors = List.map ctor ctors }
          | other -> fail "malformed constructor list '%s'" (sexp_brief other))
        names ctor_lists
    in
    Command.Declare_datatypes decls
  | Lexer.List [ Lexer.Atom (Lexer.Sym "assert"); body ] -> Command.Assert (term body)
  | Lexer.List [ Lexer.Atom (Lexer.Sym "check-sat") ] -> Command.Check_sat
  | Lexer.List [ Lexer.Atom (Lexer.Sym "get-model") ] -> Command.Get_model
  | Lexer.List [ Lexer.Atom (Lexer.Sym "get-value"); Lexer.List terms ] ->
    Command.Get_value (List.map term terms)
  | Lexer.List [ Lexer.Atom (Lexer.Sym "push") ] -> Command.Push 1
  | Lexer.List [ Lexer.Atom (Lexer.Sym "push"); Lexer.Atom (Lexer.Num n) ] ->
    Command.Push (int_of_string n)
  | Lexer.List [ Lexer.Atom (Lexer.Sym "pop") ] -> Command.Pop 1
  | Lexer.List [ Lexer.Atom (Lexer.Sym "pop"); Lexer.Atom (Lexer.Num n) ] ->
    Command.Pop (int_of_string n)
  | Lexer.List [ Lexer.Atom (Lexer.Sym "echo"); Lexer.Atom (Lexer.Str s) ] -> Command.Echo s
  | Lexer.List [ Lexer.Atom (Lexer.Sym "exit") ] -> Command.Exit
  | Lexer.List (Lexer.Atom (Lexer.Sym cmd) :: _) -> fail "unknown or malformed command '%s'" cmd
  | other -> fail "expected command, got '%s'" (sexp_brief other)

let wrap f =
  placeholder_counter := 0;
  match f () with
  | value -> Ok value
  | exception Failure msg -> Error { message = "parse error: " ^ msg }
  | exception Lexer.Lex_error msg -> Error { message = "parse error: " ^ msg }

let parse_script input =
  wrap (fun () ->
      let sexps = Lexer.read_sexps input in
      let _, commands =
        List.fold_left
          (fun ((datatypes, ctors), acc) sexp ->
            let cmd = command_of_sexp ~ctors ~datatypes sexp in
            let context' =
              match cmd with
              | Command.Declare_datatypes dts ->
                ( List.map (fun (d : Command.datatype_decl) -> d.dt_name) dts @ datatypes,
                  List.concat_map
                    (fun (d : Command.datatype_decl) ->
                      List.map
                        (fun (c : Command.constructor) -> c.ctor_name)
                        d.constructors)
                    dts
                  @ ctors )
              | _ -> (datatypes, ctors)
            in
            (context', cmd :: acc))
          (([], []), []) sexps
      in
      List.rev commands)

let parse_term ?(datatypes = []) ?(ctors = []) input =
  wrap (fun () ->
      match Lexer.read_sexps input with
      | [ sexp ] -> term_of_sexp ~ctors ~datatypes sexp
      | [] -> fail "empty input where a term was expected"
      | _ -> fail "expected a single term, got multiple S-expressions")

let parse_term_in script input =
  let dts = Script.declared_datatypes script in
  let datatypes = List.map (fun (d : Command.datatype_decl) -> d.Command.dt_name) dts in
  let ctors =
    List.concat_map
      (fun (d : Command.datatype_decl) ->
        List.map (fun (c : Command.constructor) -> c.Command.ctor_name) d.Command.constructors)
      dts
  in
  parse_term ~datatypes ~ctors input

let parse_sort ?(datatypes = []) input =
  wrap (fun () ->
      match Lexer.read_sexps input with
      | [ sexp ] -> sort_of_sexp ~datatypes sexp
      | _ -> fail "expected a single sort")
