type atom =
  | Sym of string
  | Kw of string
  | Num of string
  | Dec of string
  | Hex of string
  | Bin of string
  | Str of string

type sexp = Atom of atom | List of sexp list

exception Lex_error of string

type token = Lparen | Rparen | Tatom of atom

let is_digit c = c >= '0' && c <= '9'

let is_symbol_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || is_digit c
  || String.contains "~!@$%^&*_-+=<>.?/" c

let lex_tokens input =
  let n = String.length input in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  let peek () = if !i < n then Some input.[!i] else None in
  let advance () = incr i in
  let read_while pred =
    let start = !i in
    while !i < n && pred input.[!i] do
      advance ()
    done;
    String.sub input start (!i - start)
  in
  while !i < n do
    match input.[!i] with
    | ' ' | '\t' | '\n' | '\r' -> advance ()
    | ';' ->
      while !i < n && input.[!i] <> '\n' do
        advance ()
      done
    | '(' ->
      advance ();
      emit Lparen
    | ')' ->
      advance ();
      emit Rparen
    | '"' ->
      advance ();
      let buf = Buffer.create 16 in
      let rec go () =
        if !i >= n then raise (Lex_error "unterminated string literal")
        else (
          match input.[!i] with
          | '"' ->
            advance ();
            (* doubled quote is an escaped quote *)
            if peek () = Some '"' then (
              Buffer.add_char buf '"';
              advance ();
              go ())
          | c ->
            Buffer.add_char buf c;
            advance ();
            go ())
      in
      go ();
      emit (Tatom (Str (Buffer.contents buf)))
    | '|' ->
      advance ();
      let body = read_while (fun c -> c <> '|') in
      if !i >= n then raise (Lex_error "unterminated quoted symbol");
      advance ();
      emit (Tatom (Sym body))
    | ':' ->
      advance ();
      let body = read_while is_symbol_char in
      if body = "" then raise (Lex_error "empty keyword after ':'");
      emit (Tatom (Kw body))
    | '#' ->
      advance ();
      (match peek () with
      | Some 'x' ->
        advance ();
        let body = read_while (fun c -> is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')) in
        if body = "" then raise (Lex_error "empty hexadecimal literal");
        emit (Tatom (Hex body))
      | Some 'b' ->
        advance ();
        let body = read_while (fun c -> c = '0' || c = '1') in
        if body = "" then raise (Lex_error "empty binary literal");
        emit (Tatom (Bin body))
      | _ -> raise (Lex_error "expected 'x' or 'b' after '#'"))
    | c when is_digit c ->
      let whole = read_while is_digit in
      if peek () = Some '.' then (
        advance ();
        let frac = read_while is_digit in
        if frac = "" then raise (Lex_error "malformed decimal literal");
        emit (Tatom (Dec (whole ^ "." ^ frac))))
      else if (match peek () with Some c when is_symbol_char c -> true | _ -> false)
      then (
        (* numeral glued to symbol chars, e.g. "bv5" parsed elsewhere; here a
           token like "3x" is a lexical error in strict SMT-LIB *)
        let rest = read_while is_symbol_char in
        raise (Lex_error (Printf.sprintf "invalid token '%s%s'" whole rest)))
      else emit (Tatom (Num whole))
    | c when is_symbol_char c ->
      let body = read_while is_symbol_char in
      emit (Tatom (Sym body))
    | c -> raise (Lex_error (Printf.sprintf "unexpected character '%c'" c))
  done;
  List.rev !tokens

let tokenize input =
  lex_tokens input
  |> List.map (function Lparen | Rparen -> None | Tatom a -> Some a)

let read_sexps input =
  let tokens = lex_tokens input in
  let rec parse_many acc = function
    | [] -> (List.rev acc, [])
    | Rparen :: _ as rest -> (List.rev acc, rest)
    | Lparen :: rest ->
      let inner, rest' = parse_many [] rest in
      (match rest' with
      | Rparen :: rest'' -> parse_many (List inner :: acc) rest''
      | _ -> raise (Lex_error "unbalanced parentheses: missing ')'"))
    | Tatom a :: rest -> parse_many (Atom a :: acc) rest
  in
  let sexps, rest = parse_many [] tokens in
  if rest <> [] then raise (Lex_error "unbalanced parentheses: extra ')'");
  sexps

let atom_to_string = function
  | Sym s -> s
  | Kw s -> ":" ^ s
  | Num s | Dec s -> s
  | Hex s -> "#x" ^ s
  | Bin s -> "#b" ^ s
  | Str s -> Printf.sprintf "\"%s\"" s
