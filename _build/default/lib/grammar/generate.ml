type hook_fn = string -> string

let sentence ?(max_depth = 8) ~cfg ~hook ~rng start =
  let depths = Cfg.min_depths cfg in
  let buf = Buffer.create 128 in
  let exception Gen_error of string in
  let rec derive budget name =
    match Cfg.find cfg name with
    | None -> raise (Gen_error (Printf.sprintf "unknown nonterminal '%s'" name))
    | Some production ->
      let feasible =
        List.filter
          (fun alt -> Cfg.alternative_min_depth depths alt < budget)
          production.Cfg.alternatives
      in
      (match feasible with
      | [] ->
        raise
          (Gen_error
             (Printf.sprintf "no alternative of '%s' fits depth budget %d" name budget))
      | alts ->
        let alt = O4a_util.Rng.choose rng alts in
        List.iter
          (function
            | Cfg.Lit text -> Buffer.add_string buf text
            | Cfg.Hook h -> Buffer.add_string buf (hook h)
            | Cfg.Ref r -> derive (budget - 1) r)
          alt)
  in
  match derive max_depth start with
  | () -> Ok (Buffer.contents buf)
  | exception Gen_error msg -> Error msg

let sentences ?max_depth ~cfg ~hook ~rng ~count start =
  List.init count (fun _ -> sentence ?max_depth ~cfg ~hook ~rng start)
  |> List.filter_map Result.to_option
