lib/grammar/ebnf.ml: Buffer Cfg List O4a_util Printf String
