lib/grammar/generate.mli: Cfg O4a_util
