lib/grammar/ebnf.mli: Cfg
