lib/grammar/generate.ml: Buffer Cfg List O4a_util Printf Result
