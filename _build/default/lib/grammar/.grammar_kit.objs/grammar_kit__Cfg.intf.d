lib/grammar/cfg.mli:
