lib/grammar/cfg.ml: Hashtbl List O4a_util Printf String
