(** Concrete EBNF syntax for {!Cfg.t}:

    {v
    bool ::= "(not " bool ")" | @bool_lit | @var_bool
    int  ::= @int_lit | "(+ " int " " int ")"
    v}

    Double-quoted tokens are literal text, bare identifiers are nonterminal
    references, [@name] tokens are hooks, and [|] separates alternatives.
    A production may span several lines; a new production starts at a line
    containing [::=]. The first production's left-hand side is the start
    symbol. *)

val parse : string -> (Cfg.t, string) result

val parse_exn : string -> Cfg.t
(** Raises [Failure]. *)
