(** Random sentence generation from a {!Cfg.t}.

    Derivation is depth-budgeted: once the remaining budget cannot cover an
    alternative's minimal derivation depth, that alternative is excluded, so
    generation always terminates on a validated grammar. Hooks are rendered
    through a caller-supplied function that owns all context-sensitive state
    (variable pools, bit-widths, field orders). *)

type hook_fn = string -> string
(** Maps a hook name to the text to substitute. May raise. *)

val sentence :
  ?max_depth:int ->
  cfg:Cfg.t ->
  hook:hook_fn ->
  rng:O4a_util.Rng.t ->
  string ->
  (string, string) result
(** [sentence ~cfg ~hook ~rng start] derives one sentence from [start]
    (default depth budget 8). [Error] on unknown start symbols or grammars
    where no alternative fits the budget. *)

val sentences :
  ?max_depth:int ->
  cfg:Cfg.t ->
  hook:hook_fn ->
  rng:O4a_util.Rng.t ->
  count:int ->
  string ->
  string list
(** Best-effort batch: failures are skipped. *)
