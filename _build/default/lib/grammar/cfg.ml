type symbol =
  | Lit of string
  | Ref of string
  | Hook of string

type alternative = symbol list

type production = {
  lhs : string;
  alternatives : alternative list;
}

type t = {
  start : string;
  productions : production list;
}

let find g name = List.find_opt (fun p -> p.lhs = name) g.productions

let nonterminals g = List.map (fun p -> p.lhs) g.productions

let hooks g =
  g.productions
  |> List.concat_map (fun p -> List.concat p.alternatives)
  |> List.filter_map (function Hook h -> Some h | Lit _ | Ref _ -> None)
  |> O4a_util.Listx.dedup

let unproductive = max_int

let min_depths g =
  let depths = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace depths p.lhs unproductive) g.productions;
  let symbol_depth = function
    | Lit _ | Hook _ -> 0
    | Ref name -> ( match Hashtbl.find_opt depths name with Some d -> d | None -> unproductive)
  in
  let alt_depth alt =
    List.fold_left
      (fun acc s ->
        let d = symbol_depth s in
        if acc = unproductive || d = unproductive then unproductive else max acc d)
      0 alt
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun p ->
        let best =
          List.fold_left
            (fun acc alt ->
              let d = alt_depth alt in
              if d = unproductive then acc else min acc (d + 1))
            unproductive p.alternatives
        in
        if best < Hashtbl.find depths p.lhs then (
          Hashtbl.replace depths p.lhs best;
          changed := true))
      g.productions
  done;
  List.map (fun p -> (p.lhs, Hashtbl.find depths p.lhs)) g.productions

let alternative_min_depth depths alt =
  List.fold_left
    (fun acc s ->
      match s with
      | Lit _ | Hook _ -> acc
      | Ref name -> (
        match List.assoc_opt name depths with
        | Some d when d <> unproductive && acc <> unproductive -> max acc d
        | _ -> unproductive))
    0 alt

let validate g =
  match find g g.start with
  | None -> Error (Printf.sprintf "start symbol '%s' is not defined" g.start)
  | Some _ ->
    let defined = nonterminals g in
    let missing =
      g.productions
      |> List.concat_map (fun p -> List.concat p.alternatives)
      |> List.filter_map (function
           | Ref name when not (List.mem name defined) -> Some name
           | Ref _ | Lit _ | Hook _ -> None)
      |> O4a_util.Listx.dedup
    in
    if missing <> [] then
      Error
        (Printf.sprintf "undefined nonterminal(s): %s" (String.concat ", " missing))
    else (
      let depths = min_depths g in
      match List.find_opt (fun (_, d) -> d = unproductive) depths with
      | Some (name, _) ->
        Error (Printf.sprintf "nonterminal '%s' derives no finite sentence" name)
      | None -> Ok ())

let map_alternatives f g =
  let productions =
    g.productions
    |> List.filter_map (fun p ->
           let alternatives = List.filter_map (f p.lhs) p.alternatives in
           if alternatives = [] then None else Some { p with alternatives })
  in
  { g with productions }

let add_alternative g lhs alt =
  let found = ref false in
  let productions =
    List.map
      (fun p ->
        if p.lhs = lhs then (
          found := true;
          { p with alternatives = p.alternatives @ [ alt ] })
        else p)
      g.productions
  in
  if !found then { g with productions }
  else { g with productions = g.productions @ [ { lhs; alternatives = [ alt ] } ] }

let symbol_to_string = function
  | Lit text -> Printf.sprintf "%S" text
  | Ref name -> name
  | Hook name -> "@" ^ name

let to_string g =
  g.productions
  |> List.map (fun p ->
         let alts =
           p.alternatives
           |> List.map (fun alt -> String.concat " " (List.map symbol_to_string alt))
           |> String.concat "\n  | "
         in
         Printf.sprintf "%s ::= %s" p.lhs alts)
  |> String.concat "\n"
