let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.'

type token = Tlit of string | Tref of string | Thook of string | Tbar | Tdef of string

(* One production's text -> token list. [Tdef lhs] appears first. *)
let tokenize_production text =
  let n = String.length text in
  let tokens = ref [] in
  let i = ref 0 in
  let emit t = tokens := t :: !tokens in
  while !i < n do
    let c = text.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '|' then (
      emit Tbar;
      incr i)
    else if c = '"' then (
      incr i;
      let buf = Buffer.create 16 in
      let rec go () =
        if !i >= n then failwith "unterminated string literal in grammar"
        else if text.[!i] = '\\' && !i + 1 < n then (
          Buffer.add_char buf text.[!i + 1];
          i := !i + 2;
          go ())
        else if text.[!i] = '"' then incr i
        else (
          Buffer.add_char buf text.[!i];
          incr i;
          go ())
      in
      go ();
      emit (Tlit (Buffer.contents buf)))
    else if c = '@' then (
      incr i;
      let start = !i in
      while !i < n && is_ident_char text.[!i] do
        incr i
      done;
      if !i = start then failwith "empty hook name after '@'";
      emit (Thook (String.sub text start (!i - start))))
    else if is_ident_char c then (
      let start = !i in
      while !i < n && is_ident_char text.[!i] do
        incr i
      done;
      let word = String.sub text start (!i - start) in
      (* '::=' immediately after an identifier marks a definition *)
      let rest_starts_with_def =
        let j = ref !i in
        while !j < n && (text.[!j] = ' ' || text.[!j] = '\t') do
          incr j
        done;
        !j + 3 <= n && String.sub text !j 3 = "::="
      in
      if rest_starts_with_def then (
        while !i < n && text.[!i] <> '=' do
          incr i
        done;
        incr i;
        emit (Tdef word))
      else emit (Tref word))
    else failwith (Printf.sprintf "unexpected character '%c' in grammar" c)
  done;
  List.rev !tokens

let split_productions text =
  (* group lines: a new production starts at a line containing "::=" *)
  let lines = O4a_util.Strx.split_lines text in
  let groups = ref [] in
  let current = Buffer.create 64 in
  let flush () =
    if Buffer.length current > 0 then (
      groups := Buffer.contents current :: !groups;
      Buffer.clear current)
  in
  List.iter
    (fun line ->
      if O4a_util.Strx.contains_sub ~sub:"::=" line then flush ();
      Buffer.add_string current line;
      Buffer.add_char current '\n')
    lines;
  flush ();
  List.rev !groups

let production_of_tokens tokens =
  match tokens with
  | Tdef lhs :: rest ->
    let alternatives =
      List.fold_left
        (fun alts token ->
          match (token, alts) with
          | Tbar, _ -> [] :: alts
          | Tlit s, current :: others -> (Cfg.Lit s :: current) :: others
          | Tref s, current :: others -> (Cfg.Ref s :: current) :: others
          | Thook s, current :: others -> (Cfg.Hook s :: current) :: others
          | _, [] -> failwith "internal: empty alternative stack"
          | Tdef _, _ -> failwith "unexpected '::=' inside production body")
        [ [] ] rest
      |> List.rev_map List.rev
    in
    let alternatives = List.filter (fun a -> a <> []) alternatives in
    if alternatives = [] then failwith (Printf.sprintf "production '%s' has no alternatives" lhs);
    { Cfg.lhs; alternatives }
  | _ -> failwith "expected 'name ::= ...' at the start of a production"

let parse_exn text =
  let groups = split_productions text in
  let groups = List.filter (fun g -> String.trim g <> "") groups in
  if groups = [] then failwith "empty grammar";
  let productions = List.map (fun g -> production_of_tokens (tokenize_production g)) groups in
  match productions with
  | [] -> failwith "empty grammar"
  | first :: _ -> { Cfg.start = first.Cfg.lhs; productions }

let parse text =
  match parse_exn text with
  | g -> Ok g
  | exception Failure msg -> Error msg
