(** Context-free grammars with generator hooks.

    A grammar maps nonterminal names to alternatives; each alternative is a
    sequence of symbols: literal text, a nonterminal reference, or a [Hook]
    to be filled by the interpreter (literals, variables, width/sort context
    — the contextual constraints a CFG cannot express). *)

type symbol =
  | Lit of string
  | Ref of string
  | Hook of string

type alternative = symbol list

type production = {
  lhs : string;
  alternatives : alternative list;
}

type t = {
  start : string;
  productions : production list;
}

val find : t -> string -> production option

val nonterminals : t -> string list

val hooks : t -> string list
(** All hook names used, deduplicated. *)

val validate : t -> (unit, string) result
(** Every [Ref] resolves; the start symbol exists; every nonterminal is
    productive (derives a finite sentence). *)

val min_depths : t -> (string * int) list
(** Minimal derivation depth per nonterminal ([max_int] if unproductive);
    used to steer random generation toward termination. *)

val alternative_min_depth : (string * int) list -> alternative -> int

val map_alternatives : (string -> alternative -> alternative option) -> t -> t
(** Transform (or drop, via [None]) each alternative; productions left with
    no alternatives are removed. Used by the simulated LLM's noise model. *)

val add_alternative : t -> string -> alternative -> t

val to_string : t -> string
(** Round-trips through {!Ebnf.parse}. *)
