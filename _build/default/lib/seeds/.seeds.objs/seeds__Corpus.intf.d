lib/seeds/corpus.mli: Script Smtlib Solver
