lib/seeds/corpus.ml: Lazy List Parser Printer Printf Script Smtlib Solver
