(** The seed corpus.

    The paper seeds its campaigns with ~3,700 historical bug-triggering
    formulas curated from the Z3/cvc5 issue trackers. We build the analog
    programmatically: a corpus of formulas styled after real bug reports —
    heavy on quantifiers, boolean structure, lets, and per-theory operator
    mixes — expanded parametrically over constants and sizes. Every seed is
    guaranteed to parse. *)

open Smtlib

val sources : unit -> string list
(** Raw SMT-LIB source of every seed. *)

val all : unit -> Script.t list
(** Parsed corpus (memoized). Seeds that fail to parse are a bug; an
    assertion guards this in the test suite. *)

val by_theory : string -> Script.t list
(** Seeds whose {!Script.theories_used} includes the key. *)

val filtered :
  zeal:Solver.Engine.t -> cove:Solver.Engine.t -> unit -> Script.t list
(** The paper's data-leakage guard (§4.1): re-execute all seed formulas on
    the target solver versions and drop any that still trigger a bug. *)

val count : unit -> int
