open Smtlib

(* ------------------------------------------------------------------ *)
(* Template expansion                                                  *)
(* ------------------------------------------------------------------ *)

let ints = [ 0; 1; 2; 3 ]

let expand1 template values = List.map (fun v -> Printf.sprintf template v) values

let expand2 template values =
  List.concat_map
    (fun a -> List.map (fun b -> Printf.sprintf template a b) values)
    values

(* ------------------------------------------------------------------ *)
(* Core / quantifier-heavy seeds (boolean skeleton donors)             *)
(* ------------------------------------------------------------------ *)

let core_seeds =
  [
    {|(declare-fun p () Bool)
(declare-fun q () Bool)
(assert (or (and p q) (not (or p q))))
(check-sat)|};
    {|(declare-fun p () Bool)
(declare-fun q () Bool)
(declare-fun r () Bool)
(assert (=> (and p q) (or r (not p))))
(assert (xor q r))
(check-sat)|};
    {|(declare-fun p () Bool)
(assert (ite p (not p) p))
(check-sat)|};
    {|(declare-fun a () Bool)
(declare-fun b () Bool)
(assert (let ((c (and a b))) (or c (not c))))
(assert (distinct a b))
(check-sat)|};
  ]
  @ expand2
      {|(declare-fun T () Int)
(assert (or (= T %d) (< T %d)))
(check-sat)|}
      ints

let quantifier_seeds =
  expand1
    {|(declare-fun x () Int)
(assert (exists ((f Int)) (and (< f x) (> f (- %d)))))
(check-sat)|}
    ints
  @ expand1
      {|(declare-fun y () Int)
(assert (forall ((z Int)) (=> (< z %d) (<= z y))))
(check-sat)|}
      ints
  @ [
      {|(declare-fun v () Real)
(declare-fun x9 () Bool)
(declare-fun x () Real)
(assert (forall ((r Real)) (or x9 (= (+ r 1.0) (mod 0 (to_int x))))))
(assert (< x (/ 1.0 (* v x))))
(check-sat)|};
      {|(declare-fun a () Int)
(assert (exists ((b Int) (c Int)) (and (= (+ b c) a) (distinct b c))))
(check-sat)|};
      {|(declare-fun u () Bool)
(assert (forall ((p Bool)) (or p u (not p))))
(check-sat)|};
      {|(declare-fun n () Int)
(assert (exists ((m Int)) (and (forall ((k Int)) (=> (< k m) (< k n))) (> m 0))))
(check-sat)|};
      {|(declare-fun x () Int)
(assert (forall ((k Int)) (let ((twice (* 2 k))) (or (= twice x) (< twice x) (> twice x)))))
(check-sat)|};
      {|(declare-fun p () Bool)
(assert (exists ((q Bool)) (let ((both (and p q))) (or both (not both) p))))
(check-sat)|};
    ]

(* ------------------------------------------------------------------ *)
(* Arithmetic                                                          *)
(* ------------------------------------------------------------------ *)

let int_seeds =
  expand2
    {|(declare-fun x () Int)
(declare-fun y () Int)
(assert (and (< x %d) (> y %d)))
(assert (= (mod (+ x y) 3) 1))
(check-sat)|}
    ints
  @ expand1
      {|(declare-fun a () Int)
(assert ((_ divisible %d) (abs a)))
(assert (> a 0))
(check-sat)|}
      [ 1; 2; 3; 4 ]
  @ [
      {|(declare-fun x () Int)
(assert (= (div x 2) (- (div (- x) 2))))
(check-sat)|};
      {|(declare-fun x () Int)
(declare-fun y () Int)
(assert (= (* x y) (+ x y)))
(assert (distinct x 0))
(check-sat)|};
      {|(declare-fun k () Int)
(assert (let ((twice (* 2 k))) (= (mod twice 2) 0)))
(check-sat)|};
    ]

let real_seeds =
  expand1
    {|(declare-fun r () Real)
(assert (and (> (* r r) %d.0) (< r 3.0)))
(check-sat)|}
    [ 0; 1; 2 ]
  @ [
      {|(declare-fun a () Real)
(declare-fun b () Real)
(assert (= (/ a b) 2.0))
(assert (distinct b 0.0))
(check-sat)|};
      {|(declare-fun x () Real)
(assert (is_int (* x 2.0)))
(assert (not (is_int x)))
(check-sat)|};
      {|(declare-fun x () Real)
(declare-fun n () Int)
(assert (= (to_real n) x))
(assert (< (to_int x) 2))
(check-sat)|};
    ]

(* ------------------------------------------------------------------ *)
(* Bit-vectors                                                         *)
(* ------------------------------------------------------------------ *)

let bv_seeds =
  [
    {|(declare-fun a () (_ BitVec 4))
(declare-fun b () (_ BitVec 4))
(assert (= (bvadd a b) (bvmul a b)))
(assert (bvult a b))
(check-sat)|};
    {|(declare-fun x () (_ BitVec 3))
(assert (= (bvnot (bvnot x)) x))
(assert (bvugt x #b001))
(check-sat)|};
    {|(declare-fun v () (_ BitVec 2))
(assert (distinct (bvshl v #b01) (bvlshr v #b01)))
(check-sat)|};
    {|(declare-fun a () (_ BitVec 4))
(assert (bvslt a (bvneg a)))
(check-sat)|};
    {|(declare-fun a () (_ BitVec 2))
(declare-fun b () (_ BitVec 2))
(assert (= (concat a b) #b0110))
(check-sat)|};
    {|(declare-fun x () (_ BitVec 4))
(assert (= ((_ extract 2 1) x) #b10))
(assert (= (bv2nat x) 5))
(check-sat)|};
    {|(declare-fun x () (_ BitVec 3))
(assert (exists ((y (_ BitVec 3))) (= (bvand x y) #b101)))
(check-sat)|};
  ]

(* ------------------------------------------------------------------ *)
(* Strings                                                             *)
(* ------------------------------------------------------------------ *)

let string_seeds =
  [
    {|(declare-fun s () String)
(assert (= (str.++ s "a") (str.++ "a" s)))
(assert (> (str.len s) 0))
(check-sat)|};
    {|(declare-fun s () String)
(declare-fun t () String)
(assert (str.contains s t))
(assert (not (str.prefixof t s)))
(check-sat)|};
    {|(declare-fun s () String)
(assert (str.in_re s (re.* (str.to_re "ab"))))
(assert (= (str.len s) 2))
(check-sat)|};
    {|(declare-fun s () String)
(assert (= (str.at s 0) "b"))
(assert (str.suffixof "a" s))
(check-sat)|};
    {|(declare-fun x () String)
(assert (= (str.to_int x) 0))
(assert (distinct x "0"))
(check-sat)|};
    {|(declare-fun s () String)
(assert (str.in_re s (re.union (str.to_re "a") (re.range "b" "d"))))
(check-sat)|};
    {|(declare-fun s () String)
(declare-fun i () Int)
(assert (= (str.indexof s "a" i) 1))
(assert (>= i 0))
(check-sat)|};
    {|(declare-fun s () String)
(assert (exists ((t String)) (= (str.replace s "a" "b") (str.++ t t))))
(check-sat)|};
  ]

(* ------------------------------------------------------------------ *)
(* Arrays                                                              *)
(* ------------------------------------------------------------------ *)

let array_seeds =
  [
    {|(declare-fun a () (Array Int Int))
(declare-fun i () Int)
(assert (= (select (store a i 1) i) 1))
(check-sat)|};
    {|(declare-fun a () (Array Int Int))
(declare-fun b () (Array Int Int))
(assert (distinct a b))
(assert (= (select a 0) (select b 0)))
(check-sat)|};
    {|(declare-fun a () (Array Int Bool))
(assert (select a 2))
(assert (not (select a 1)))
(check-sat)|};
    {|(declare-fun a () (Array Int Int))
(assert (= a ((as const (Array Int Int)) 0)))
(assert (= (select a 3) 0))
(check-sat)|};
    {|(declare-fun a () (Array Int Int))
(declare-fun i () Int)
(assert (forall ((j Int)) (<= (select a j) (select a i))))
(check-sat)|};
  ]

(* ------------------------------------------------------------------ *)
(* Datatypes                                                           *)
(* ------------------------------------------------------------------ *)

let datatype_seeds =
  [
    {|(declare-datatypes ((Lst 0)) (((nil) (cons (head Int) (tail Lst)))))
(declare-fun l () Lst)
(assert ((_ is cons) l))
(assert (= (head l) 2))
(check-sat)|};
    {|(declare-datatypes ((Lst 0)) (((nil) (cons (head Int) (tail Lst)))))
(declare-fun l () Lst)
(assert (distinct l (as nil Lst)))
(assert ((_ is nil) (tail l)))
(check-sat)|};
    {|(declare-datatypes ((Pair 0)) (((mk (fst Int) (snd Bool)))))
(declare-fun p () Pair)
(assert (snd p))
(assert (> (fst p) 1))
(check-sat)|};
    {|(declare-datatypes ((Lst 0)) (((nil) (cons (head Int) (tail Lst)))))
(declare-fun l () Lst)
(assert (= (match l ((nil 0) ((cons h t) h))) 1))
(check-sat)|};
    {|(declare-datatypes ((Lst 0)) (((nil) (cons (head Int) (tail Lst)))))
(declare-fun l () Lst)
(assert (match l (((cons h t) (> h 0)) (_ false))))
(check-sat)|};
    {|(declare-datatypes ((Lst 0)) (((nil) (cons (head Int) (tail Lst)))))
(declare-fun l () Lst)
(assert (= (match l ((nil (as nil Lst)) (other other))) l))
(check-sat)|};
  ]

(* ------------------------------------------------------------------ *)
(* Sequences (solver extension; the Figure 1 shape included)           *)
(* ------------------------------------------------------------------ *)

let seq_seeds =
  [
    {|(declare-fun s () (Seq Int))
(assert (exists ((f Int)) (distinct (seq.len (seq.rev s)) f)))
(check-sat)|};
    {|(declare-fun s () (Seq Int))
(assert (= (seq.len s) 2))
(assert (= (seq.nth s 0) 1))
(check-sat)|};
    {|(declare-fun s () (Seq Int))
(declare-fun t () (Seq Int))
(assert (seq.contains s t))
(assert (distinct t (as seq.empty (Seq Int))))
(check-sat)|};
    {|(declare-fun s () (Seq Int))
(assert (= (seq.++ s (seq.unit 1)) (seq.++ (seq.unit 1) s)))
(assert (> (seq.len s) 0))
(check-sat)|};
    {|(declare-fun s () (Seq Int))
(assert (seq.prefixof (seq.unit 0) (seq.rev s)))
(check-sat)|};
  ]

(* ------------------------------------------------------------------ *)
(* Sets / relations (cvc5 extension)                                   *)
(* ------------------------------------------------------------------ *)

let set_seeds =
  [
    {|(declare-fun a () (Set Int))
(assert (set.member 1 (set.union a (set.singleton 2))))
(assert (not (set.member 2 a)))
(check-sat)|};
    {|(declare-fun a () (Set Int))
(declare-fun b () (Set Int))
(assert (set.subset a b))
(assert (distinct (set.card a) (set.card b)))
(check-sat)|};
    {|(declare-fun r () (Set (Tuple Int Int)))
(assert (set.member (tuple 1 2) r))
(assert (set.member (tuple 2 1) (rel.transpose r)))
(check-sat)|};
    {|(declare-fun a () (Set Int))
(assert (set.is_empty (set.inter a (set.complement a))))
(check-sat)|};
    {|(declare-fun r () (Set (Tuple Int Int)))
(declare-fun q () (Set (Tuple Int Int)))
(assert (set.subset (rel.join r q) (rel.join q r)))
(assert (not (set.is_empty r)))
(check-sat)|};
  ]

(* ------------------------------------------------------------------ *)
(* Bags (cvc5 extension)                                               *)
(* ------------------------------------------------------------------ *)

let bag_seeds =
  [
    {|(declare-fun b () (Bag Int))
(assert (= (bag.count 1 b) 2))
(check-sat)|};
    {|(declare-fun a () (Bag Int))
(declare-fun b () (Bag Int))
(assert (bag.subbag a b))
(assert (> (bag.card b) (bag.card a)))
(check-sat)|};
    {|(declare-fun b () (Bag Int))
(assert (= (bag.setof b) b))
(assert (bag.member 0 b))
(check-sat)|};
    {|(declare-fun a () (Bag Int))
(assert (= (bag.union_disjoint a a) (bag.union_max a a)))
(assert (distinct a (as bag.empty (Bag Int))))
(check-sat)|};
  ]

(* ------------------------------------------------------------------ *)
(* Finite fields (cvc5 extension; the Figure 10a shape included)       *)
(* ------------------------------------------------------------------ *)

let ff_seeds =
  [
    {|(declare-fun v () (_ FiniteField 3))
(assert (= (ff.bitsum v (ff.mul v v)) (as ff2 (_ FiniteField 3))))
(check-sat)|};
    {|(declare-fun a () (_ FiniteField 5))
(declare-fun b () (_ FiniteField 5))
(assert (= (ff.add a b) (as ff0 (_ FiniteField 5))))
(assert (distinct a b))
(check-sat)|};
    {|(declare-fun x () (_ FiniteField 7))
(assert (= (ff.mul x x) (as ff2 (_ FiniteField 7))))
(check-sat)|};
    {|(declare-fun x () (_ FiniteField 3))
(assert (= (ff.neg x) x))
(assert (distinct x (as ff0 (_ FiniteField 3))))
(check-sat)|};
  ]

(* ------------------------------------------------------------------ *)
(* Mixed-theory seeds (rich skeletons)                                 *)
(* ------------------------------------------------------------------ *)

let mixed_seeds =
  [
    {|(declare-fun x () Int)
(declare-fun s () String)
(assert (or (= (str.len s) x) (< x 0)))
(assert (exists ((k Int)) (= (str.to_int s) k)))
(check-sat)|};
    {|(declare-fun a () (Array Int Int))
(declare-fun x () Int)
(assert (and (= (select a x) x) (or (> x 0) (= x (- 1)))))
(check-sat)|};
    {|(declare-fun b () Bool)
(declare-fun v () (_ BitVec 2))
(assert (ite b (= v #b00) (distinct v #b11)))
(check-sat)|};
    {|(declare-fun x () Int)
(declare-fun r () Real)
(assert (let ((y (+ x 1))) (or (< (to_real y) r) (= x 0))))
(check-sat)|};
    {|(declare-fun s () (Seq Int))
(declare-fun x () Int)
(assert (and (= (seq.len s) x) (exists ((i Int)) (= (seq.nth s i) 0))))
(check-sat)|};
  ]

(* ------------------------------------------------------------------ *)
(* Deeper structural donors: alternating quantifiers, implication      *)
(* chains, nested containers — the shapes Observation 2 cares about    *)
(* ------------------------------------------------------------------ *)

let structure_seeds =
  expand1
    {|(declare-fun a () Int)
(declare-fun b () Int)
(assert (=> (< a %d) (exists ((c Int)) (and (< a c) (< c b)))))
(check-sat)|}
    ints
  @ List.map
      (fun n ->
        Printf.sprintf
          {|(declare-fun p () Bool)
(declare-fun x () Int)
(assert (ite p (forall ((k Int)) (distinct k (- x %d))) (= x %d)))
(check-sat)|}
          n n)
      [ 0; 1 ]
  @ [
      {|(declare-fun x () Int)
(declare-fun y () Int)
(declare-fun z () Int)
(assert (=> (< x y) (=> (< y z) (< x z))))
(assert (distinct x y z))
(check-sat)|};
      {|(declare-fun f (Int) Int)
(declare-fun x () Int)
(assert (= (f (f x)) x))
(assert (distinct (f x) x))
(check-sat)|};
      {|(declare-fun f (Int) Bool)
(assert (exists ((a Int) (b Int)) (and (f a) (not (f b)))))
(check-sat)|};
      {|(declare-fun a () (Array Int (Array Int Int)))
(assert (= (select (select a 0) 1) 2))
(check-sat)|};
      {|(declare-fun s () (Seq Int))
(assert (forall ((i Int)) (=> (and (<= 0 i) (< i (seq.len s))) (<= (seq.nth s i) 3))))
(assert (> (seq.len s) 1))
(check-sat)|};
      {|(declare-fun v () (_ BitVec 2))
(declare-fun w () (_ BitVec 2))
(assert (xor (bvult v w) (bvult w v) (= v w)))
(check-sat)|};
      {|(declare-fun s () String)
(declare-fun t () String)
(assert (and (str.prefixof s t) (str.suffixof s t) (distinct s t)))
(check-sat)|};
      {|(declare-fun b () (Bag Int))
(declare-fun c () (Bag Int))
(assert (= (bag.union_disjoint b c) (bag.union_max b c)))
(assert (not (bag.subbag b c)))
(check-sat)|};
      {|(declare-fun r () (Set (Tuple Int Int)))
(assert (= (rel.join r (rel.transpose r)) (rel.join (rel.transpose r) r)))
(assert (not (set.is_empty r)))
(check-sat)|};
      {|(declare-fun a () (_ FiniteField 5))
(declare-fun b () (_ FiniteField 5))
(assert (= (ff.mul a b) (ff.add a b)))
(assert (distinct a (as ff0 (_ FiniteField 5))))
(check-sat)|};
      {|(declare-datatypes ((Pair 0)) (((mk (fst Int) (snd Bool)))))
(declare-fun p () Pair)
(declare-fun q () Pair)
(assert (=> (= (fst p) (fst q)) (= (snd p) (snd q))))
(assert (distinct p q))
(check-sat)|};
      {|(declare-fun s () (Set Int))
(assert (forall ((k Int)) (=> (set.member k s) (set.member (- k) s))))
(assert (set.member 1 s))
(check-sat)|};
      {|(declare-fun x () Real)
(declare-fun y () Real)
(assert (let ((m (* x y)) (a (+ x y))) (and (< m a) (> m 0.0))))
(check-sat)|};
      {|(declare-fun s () String)
(assert (str.in_re s (re.inter (re.* (re.range "a" "b")) (re.comp (str.to_re "")))))
(check-sat)|};
      {|(declare-fun x () Int)
(assert (exists ((v (_ BitVec 3))) (= (bv2nat v) x)))
(assert (> x 3))
(check-sat)|};
    ]

let sources_list =
  core_seeds @ quantifier_seeds @ int_seeds @ real_seeds @ bv_seeds @ string_seeds
  @ array_seeds @ datatype_seeds @ seq_seeds @ set_seeds @ bag_seeds @ ff_seeds
  @ mixed_seeds @ structure_seeds

let sources () = sources_list

let parsed = lazy (
  List.map
    (fun src ->
      match Parser.parse_script src with
      | Ok script -> script
      | Error e ->
        failwith
          (Printf.sprintf "seed corpus bug: %s in seed:\n%s" (Parser.error_message e)
             src))
    sources_list)

let all () = Lazy.force parsed

let by_theory key =
  List.filter (fun s -> List.mem key (Script.theories_used s)) (all ())

let filtered ~zeal ~cove () =
  List.filter
    (fun seed ->
      let source = Printer.script seed in
      let outcome = ref true in
      (try
         let zr = Solver.Runner.run ~max_steps:40_000 zeal seed in
         let cr = Solver.Runner.run ~max_steps:40_000 cove seed in
         (match (zr, cr) with
         | Solver.Runner.R_crash _, _ | _, Solver.Runner.R_crash _ -> outcome := false
         | _ -> ())
       with _ -> ());
      ignore source;
      !outcome)
    (all ())

let count () = List.length (all ())
