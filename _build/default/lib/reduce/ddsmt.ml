open Smtlib

type stats = {
  initial_size : int;
  final_size : int;
  probes : int;
}

let used_symbols script =
  let add_term acc t =
    Term.fold
      (fun acc node ->
        match node with
        | Term.Var n -> n :: acc
        | Term.App (n, _) | Term.Indexed_app (n, _, _) | Term.Qual (n, _)
        | Term.Qual_app (n, _, _) ->
          n :: acc
        | _ -> acc)
      acc t
  in
  let from_asserts = List.fold_left add_term [] (Script.assertions script) in
  (* defined functions may reference other symbols *)
  let from_defs =
    List.fold_left
      (fun acc cmd ->
        match cmd with
        | Command.Define_fun (_, _, _, body) -> add_term acc body
        | _ -> acc)
      [] script
  in
  from_asserts @ from_defs

let gc_declarations script =
  let used = used_symbols script in
  let needed_sorts =
    (* datatype sorts referenced by remaining declarations *)
    List.concat_map
      (fun (d : Script.fun_decl) ->
        List.filter_map
          (function Sort.Datatype n -> Some n | _ -> None)
          (d.result_sort :: d.arg_sorts))
      (Script.declared_funs script)
  in
  List.filter
    (fun cmd ->
      match cmd with
      | Command.Declare_fun (n, _, _) | Command.Declare_const (n, _)
      | Command.Define_fun (n, _, _, _) ->
        List.mem n used
      | Command.Declare_sort (n, _) -> List.mem n used || List.mem n needed_sorts
      | Command.Declare_datatypes dts ->
        List.exists
          (fun (dt : Command.datatype_decl) ->
            List.mem dt.dt_name needed_sorts
            || List.exists
                 (fun (c : Command.constructor) ->
                   List.mem c.ctor_name used
                   || List.exists (fun (s, _) -> List.mem s used) c.selectors)
                 dt.constructors)
          dts
      | _ -> true)
    script

(* ------------------------------------------------------------------ *)

type reducer_state = {
  mutable probes : int;
  max_probes : int;
  still_triggers : Script.t -> bool;
}

let probe st candidate =
  if st.probes >= st.max_probes then false
  else (
    st.probes <- st.probes + 1;
    st.still_triggers candidate)

(* classic ddmin over the assertion list *)
let ddmin_assertions st script =
  let asserts = Script.assertions script in
  let rebuild kept =
    let remaining = ref kept in
    List.filter
      (fun cmd ->
        match cmd with
        | Command.Assert t -> (
          match !remaining with
          | t' :: rest when Term.equal t t' ->
            remaining := rest;
            true
          | _ -> false)
        | _ -> true)
      script
  in
  let rec go asserts granularity =
    let n = List.length asserts in
    if n <= 1 || granularity > n then rebuild asserts
    else (
      let chunk = max 1 (n / granularity) in
      let rec chunks i =
        if i >= n then None
        else (
          let candidate =
            List.filteri (fun j _ -> j < i || j >= i + chunk) asserts
          in
          if candidate <> [] && probe st (rebuild candidate) then Some candidate
          else chunks (i + chunk))
      in
      match chunks 0 with
      | Some smaller -> go smaller (max 2 (granularity - 1))
      | None -> if granularity >= n then rebuild asserts else go asserts (granularity * 2))
  in
  go asserts 2

(* shrink candidates for a subterm *)
let shrink_candidates term =
  let leaves =
    [ Term.tru; Term.fls; Term.int 0 ]
  in
  let children = Term.children term in
  let hoists = List.filter (fun c -> Term.size c < Term.size term) children in
  hoists @ List.filter (fun l -> not (Term.equal l term)) leaves

let replace_assertion_at script idx replacement =
  let counter = ref (-1) in
  Script.map_assertions
    (fun a ->
      incr counter;
      if !counter = idx then replacement else a)
    script

let shrink_terms st script =
  let current_script = ref script in
  let n_asserts = List.length (Script.assertions script) in
  for idx = 0 to n_asserts - 1 do
    let continue_ = ref true in
    while !continue_ && st.probes < st.max_probes do
      continue_ := false;
      let assertion = List.nth (Script.assertions !current_script) idx in
      (* visit larger subterms first *)
      let paths =
        Term.all_paths assertion
        |> List.filter (fun (_, t) -> Term.size t > 1)
        |> List.sort (fun (_, a) (_, b) -> compare (Term.size b) (Term.size a))
      in
      let try_path (path, sub) =
        List.exists
          (fun replacement ->
            let candidate = Term.replace_at assertion path replacement in
            if Term.equal candidate assertion then false
            else (
              let rebuilt =
                gc_declarations (replace_assertion_at !current_script idx candidate)
              in
              if probe st rebuilt then (
                current_script := rebuilt;
                true)
              else false))
          (shrink_candidates sub)
      in
      if List.exists try_path paths then continue_ := true
    done
  done;
  !current_script

let reduce ?(max_probes = 600) ~still_triggers script =
  let st = { probes = 0; max_probes; still_triggers } in
  let initial_size = Script.size script in
  let script = ddmin_assertions st script in
  let script = shrink_terms st script in
  let script =
    let gcd = gc_declarations script in
    if probe st gcd then gcd else script
  in
  ({ initial_size; final_size = Script.size script; probes = st.probes }, script)
  |> fun (stats, s) -> (s, stats)
