lib/reduce/ddsmt.ml: Command List Script Smtlib Sort Term
