lib/reduce/ddsmt.mli: Script Smtlib
