(** ddSMT-style delta debugging for SMT-LIB scripts (§4.2: reduction of
    bug-triggering formulas before reporting).

    The reducer is oracle-driven: the caller supplies [still_triggers], a
    predicate that replays the candidate against the solvers and checks that
    the {e same} bug (same crash signature / cluster key) still fires.
    Reduction interleaves three passes to a fixpoint:

    - {b assertion ddmin} — drop halves/quarters/... of the assertion list;
    - {b term shrinking} — hoist a child over its parent, or collapse a
      subterm to a canonical leaf;
    - {b declaration GC} — drop declarations no remaining assertion uses. *)

open Smtlib

type stats = {
  initial_size : int;  (** term nodes before *)
  final_size : int;
  probes : int;  (** oracle invocations *)
}

val reduce :
  ?max_probes:int ->
  still_triggers:(Script.t -> bool) ->
  Script.t ->
  Script.t * stats
(** [max_probes] bounds oracle calls (default 600). The input script is
    assumed to trigger; the result always triggers. *)

val gc_declarations : Script.t -> Script.t
(** Drop declarations not referenced by any assertion (exposed for tests). *)
