type t = {
  name : string;
  seed_salt : int;
  omission_rate : float;
  hallucination_rate : float;
  flaw_scale : float;
  repair_skill : float;
  tokens_per_call : int;
}

let gpt4 =
  {
    name = "gpt-4";
    seed_salt = 17;
    omission_rate = 0.08;
    hallucination_rate = 0.06;
    flaw_scale = 1.0;
    repair_skill = 0.75;
    tokens_per_call = 900;
  }

let gemini25pro =
  {
    name = "gemini-2.5-pro";
    seed_salt = 29;
    omission_rate = 0.10;
    hallucination_rate = 0.05;
    flaw_scale = 1.1;
    repair_skill = 0.72;
    tokens_per_call = 1100;
  }

let claude45 =
  {
    name = "claude-4.5-sonnet";
    seed_salt = 41;
    omission_rate = 0.07;
    hallucination_rate = 0.07;
    flaw_scale = 0.95;
    repair_skill = 0.78;
    tokens_per_call = 1000;
  }

let all = [ gpt4; gemini25pro; claude45 ]

let find name = List.find_opt (fun p -> p.name = name) all
