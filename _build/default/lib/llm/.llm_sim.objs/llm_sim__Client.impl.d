lib/llm/client.ml: Hashtbl List O4a_util Printf Profile Prompt String
