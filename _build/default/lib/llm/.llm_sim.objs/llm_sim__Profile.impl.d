lib/llm/profile.ml: List
