lib/llm/profile.mli:
