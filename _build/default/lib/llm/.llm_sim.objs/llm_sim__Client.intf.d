lib/llm/client.mli: O4a_util Profile Prompt
