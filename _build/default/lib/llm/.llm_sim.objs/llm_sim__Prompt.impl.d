lib/llm/prompt.ml: Printf String
