lib/llm/prompt.mli:
