(** The simulated LLM client.

    Deterministic: all "model behavior" derives from (campaign seed, profile
    salt, purpose key), so experiments are exactly reproducible. The client
    tracks calls and synthetic token usage — the cost ledger behind the
    paper's "one-time LLM interaction investment" claim and the recurring
    cost of the Fuzz4All-style baseline. *)

type t

type response = {
  text : string;
  prompt_tokens : int;
  completion_tokens : int;
}

val create : ?seed:int -> Profile.t -> t

val profile : t -> Profile.t

val query : t -> Prompt.t -> response
(** Records the exchange; the textual response is a plausible rendering (the
    structured effects of a query are produced by the noise primitives
    below, which the generator-synthesis pipeline calls). *)

val rng_for : t -> string -> O4a_util.Rng.t
(** Deterministic stream for a purpose key, e.g. ["summarize:ints"]. *)

val decide : t -> key:string -> float -> bool
(** [decide t ~key p] is a reproducible biased coin. *)

val misspell_op : t -> key:string -> string -> string
(** Plausible operator hallucination (["seq.rev"] -> ["seq.reverse"], ...). *)

(** {1 Usage accounting} *)

val call_count : t -> int
val token_count : t -> int
val transcript : t -> (string * string) list
(** [(prompt kind, first line of prompt)] per call, oldest first. *)
