type t =
  | Summarize_grammar of { theory : string; doc : string }
  | Implement_generator of { theory : string; cfg_text : string }
  | Self_correct of { theory : string; errors : string list; impl : string }
  | Free_form of { instruction : string }

let render = function
  | Summarize_grammar { theory; doc } ->
    Printf.sprintf
      "### Please generate a context-free grammar (CFG) in BNF or EBNF format \
       that produces Boolean terms valid in the SMT-LIB syntax for the %s \
       theory. The grammar should accurately reflect the following \
       theory-specific constructs and constraints:\n\n### Documentation\n%s\n"
      theory doc
  | Implement_generator { theory; cfg_text } ->
    Printf.sprintf
      "Please implement a random formula generator for %s using the provided \
       context-free grammar. The `generate_%s_formula_with_decls()` function \
       should return two strings: symbol declarations and the formula terms \
       (without commands like `assert`). The generated Boolean terms must \
       conform to the grammar, include necessary declarations such as \
       declare-fun, and adhere to the SMT-LIB specification.\n\n\
       ### Context-free grammar\n%s\n"
      theory theory cfg_text
  | Self_correct { theory; errors; impl } ->
    Printf.sprintf
      "The provided code for an SMT formula generator (theory: %s) is \
       producing syntactically invalid terms and causing solver errors. Your \
       task is to correct the code to ensure it generates syntactically valid \
       terms. Focus solely on fixing the errors and improving the validity of \
       the generated terms. Provide only the complete, corrected \
       implementation.\n\n### Invalid terms and the corresponding errors:\n%s\n\n\
       ### Current generator implementation\n%s\n"
      theory
      (String.concat "\n" errors)
      impl
  | Free_form { instruction } -> instruction

let kind = function
  | Summarize_grammar _ -> "summarize"
  | Implement_generator _ -> "implement"
  | Self_correct _ -> "correct"
  | Free_form _ -> "free"
