type t = {
  profile : Profile.t;
  seed : int;
  mutable calls : int;
  mutable tokens : int;
  mutable transcript_rev : (string * string) list;
}

type response = {
  text : string;
  prompt_tokens : int;
  completion_tokens : int;
}

let create ?(seed = 42) profile =
  { profile; seed; calls = 0; tokens = 0; transcript_rev = [] }

let profile t = t.profile

let hash_key t key =
  let h = Hashtbl.hash (t.seed, t.profile.Profile.seed_salt, key) in
  h land 0x3FFFFFFF

let rng_for t key = O4a_util.Rng.create (hash_key t key)

let decide t ~key p =
  let rng = rng_for t ("decide:" ^ key) in
  O4a_util.Rng.chance rng p

let word_count s =
  List.length (List.filter (fun w -> w <> "") (String.split_on_char ' ' s))

let first_line s =
  match O4a_util.Strx.split_lines s with
  | [] -> ""
  | l :: _ -> O4a_util.Strx.truncate_mid 80 l

let query t prompt =
  let text_prompt = Prompt.render prompt in
  let prompt_tokens = word_count text_prompt * 4 / 3 in
  let completion_tokens = t.profile.Profile.tokens_per_call in
  t.calls <- t.calls + 1;
  t.tokens <- t.tokens + prompt_tokens + completion_tokens;
  t.transcript_rev <- (Prompt.kind prompt, first_line text_prompt) :: t.transcript_rev;
  let text =
    match prompt with
    | Prompt.Summarize_grammar { theory; _ } ->
      Printf.sprintf "; CFG for theory %s (synthesized)\n" theory
    | Prompt.Implement_generator { theory; _ } ->
      Printf.sprintf
        "def generate_%s_formula_with_decls():\n    # synthesized generator\n    ..."
        theory
    | Prompt.Self_correct { theory; _ } ->
      Printf.sprintf
        "def generate_%s_formula_with_decls():\n    # corrected generator\n    ..."
        theory
    | Prompt.Free_form _ -> "(assert true)\n(check-sat)"
  in
  { text; prompt_tokens; completion_tokens }

(* plausible operator-name hallucinations observed from real LLM output *)
let known_misspellings =
  [
    ("seq.rev", "seq.reverse");
    ("seq.nth", "seq.get");
    ("seq.++", "seq.concat");
    ("set.union", "set.unite");
    ("set.member", "set.contains");
    ("set.minus", "set.difference");
    ("bag.count", "bag.multiplicity");
    ("bag.setof", "bag.to_set");
    ("ff.add", "ff.plus");
    ("ff.bitsum", "ff.bit_sum");
    ("str.++", "str.concat");
    ("str.len", "str.length");
    ("str.indexof", "str.index_of");
    ("bvadd", "bv.add");
    ("bvmul", "bv.mul");
    ("re.union", "re.or");
    ("rel.join", "rel.natural_join");
  ]

let misspell_op t ~key name =
  match List.assoc_opt name known_misspellings with
  | Some wrong -> wrong
  | None ->
    let rng = rng_for t ("misspell:" ^ key ^ ":" ^ name) in
    if O4a_util.Rng.bool rng then name ^ "s"
    else (
      (* drop the namespace dot: "set.card" -> "setcard" *)
      match String.index_opt name '.' with
      | Some i when i < String.length name - 1 ->
        String.sub name 0 i ^ String.sub name (i + 1) (String.length name - i - 1)
      | _ -> "_" ^ name)

let call_count t = t.calls
let token_count t = t.tokens
let transcript t = List.rev t.transcript_rev
