(** Model profiles for the simulated LLM.

    The paper evaluates Once4All with GPT-4 and, in the sensitivity analysis
    (RQ3), with Gemini 2.5 Pro and Claude 4.5 Sonnet, finding comparable
    end-to-end results. Profiles differ in noise characteristics — how often
    grammar summarization omits or hallucinates constructs, how many flaws
    initial generator synthesis carries, and how reliably a self-correction
    round repairs a reported flaw — but all land in the same effectiveness
    band once the correction loop converges, reproducing Finding 3. *)

type t = {
  name : string;
  seed_salt : int;  (** decorrelates profiles under the same campaign seed *)
  omission_rate : float;  (** P(drop a grammar alternative) *)
  hallucination_rate : float;  (** P(misspell an operator in some alternative) *)
  flaw_scale : float;  (** multiplies per-theory difficulty into initial flaw count *)
  repair_skill : float;  (** P(a reported flaw class is fixed in one round) *)
  tokens_per_call : int;  (** synthetic completion-size for cost accounting *)
}

val gpt4 : t
val gemini25pro : t
val claude45 : t

val all : t list

val find : string -> t option
