(** Prompt templates from Figure 3 of the paper, rendered as the text the
    client "sends". Kept verbatim-close to the paper so transcripts read like
    the real pipeline's. *)

type t =
  | Summarize_grammar of { theory : string; doc : string }
  | Implement_generator of { theory : string; cfg_text : string }
  | Self_correct of { theory : string; errors : string list; impl : string }
  | Free_form of { instruction : string }
      (** used by the Fuzz4All-style baseline's autoprompting step *)

val render : t -> string

val kind : t -> string
(** Short tag for transcripts: "summarize" | "implement" | "correct" | "free". *)
