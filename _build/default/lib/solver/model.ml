open Smtlib

type t = {
  consts : (string * Value.t) list;
  fun_defaults : (string * Value.t) list;
}

let empty = { consts = []; fun_defaults = [] }

let lookup model name =
  match List.assoc_opt name model.consts with
  | Some v -> Some v
  | None -> List.assoc_opt name model.fun_defaults

let to_string script model =
  let decls = Script.declared_funs script in
  let binding (d : Script.fun_decl) =
    match lookup model d.name with
    | Some v ->
      Some
        (Printer.model_binding d.name d.arg_sorts d.result_sort (Value.to_term_string v))
    | None -> None
  in
  let lines = List.filter_map binding decls in
  "(\n  " ^ String.concat "\n  " lines ^ "\n)"

type check_result =
  | Holds
  | Fails of Term.t
  | Check_unknown of string

let check ?(config = Domain.default_config) ?(max_steps = 400_000) script model =
  let ctx = Eval.make_ctx ~config ~max_steps ~fun_defaults:model.fun_defaults script in
  let rec go = function
    | [] -> Holds
    | assertion :: rest -> (
      match Eval.eval_bool ctx model.consts assertion with
      | true -> go rest
      | false -> Fails assertion
      | exception Eval.Out_of_fuel -> Check_unknown "resource limit during model check"
      | exception Eval.Eval_failure msg -> Check_unknown msg)
  in
  go (Script.assertions script)

let eval_terms ?(config = Domain.default_config) ?(max_steps = 200_000) script model terms =
  let ctx = Eval.make_ctx ~config ~max_steps ~fun_defaults:model.fun_defaults script in
  List.map
    (fun term ->
      let result =
        match Eval.eval ctx model.consts term with
        | v -> Value.to_term_string v
        | exception Eval.Out_of_fuel -> "(resource limit)"
        | exception Eval.Eval_failure msg -> Printf.sprintf "(error \"%s\")" msg
      in
      (term, result))
    terms
