type release = {
  version : string;
  commit : int;
  year : int;
}

type history = {
  solver : O4a_coverage.Coverage.solver_tag;
  releases : release list;
  trunk : int;
}

let zeal_history =
  {
    solver = O4a_coverage.Coverage.Zeal;
    releases =
      [
        { version = "4.8.1"; commit = 10; year = 2018 };
        { version = "4.9.1"; commit = 20; year = 2020 };
        { version = "4.10.2"; commit = 30; year = 2022 };
        { version = "4.11.2"; commit = 42; year = 2022 };
        { version = "4.12.2"; commit = 56; year = 2023 };
        { version = "4.13.0"; commit = 70; year = 2024 };
      ];
    trunk = 100;
  }

let cove_history =
  {
    solver = O4a_coverage.Coverage.Cove;
    releases =
      [
        { version = "0.0.2"; commit = 14; year = 2021 };
        { version = "1.0.0"; commit = 28; year = 2022 };
        { version = "1.0.5"; commit = 44; year = 2023 };
        { version = "1.1.0"; commit = 58; year = 2023 };
        { version = "1.2.0"; commit = 74; year = 2024 };
      ];
    trunk = 100;
  }

let history_of = function
  | O4a_coverage.Coverage.Zeal -> zeal_history
  | O4a_coverage.Coverage.Cove -> cove_history

let release_commit history version =
  List.find_map
    (fun r -> if r.version = version then Some r.commit else None)
    history.releases

let bisect_fix ?known ~triggers history =
  if triggers history.trunk then None
  else (
    (* find any triggering commit first *)
    let first_triggering () =
      match known with
      | Some c when triggers c -> Some c
      | _ ->
        let rec scan c =
          if c > history.trunk then None
          else if triggers c then Some c
          else scan (c + 10)
        in
        scan 0
    in
    match first_triggering () with
    | None -> None
    | Some lo ->
      (* invariant: triggers lo, not (triggers hi) *)
      let rec go lo hi =
        if hi - lo <= 1 then Some hi
        else (
          let mid = (lo + hi) / 2 in
          if triggers mid then go mid hi else go lo mid)
      in
      go lo history.trunk)
