
type result =
  | R_sat of Model.t
  | R_unsat
  | R_unknown of string
  | R_error of string
  | R_crash of { signature : string; bug_id : string }
  | R_timeout

let of_outcome = function
  | Engine.Sat model -> R_sat model
  | Engine.Unsat -> R_unsat
  | Engine.Unknown reason ->
    if O4a_util.Strx.contains_sub ~sub:"resource limit" reason then R_timeout
    else R_unknown reason
  | Engine.Error msg -> R_error msg

let run ?max_steps engine script =
  match Engine.solve_script ?max_steps engine script with
  | outcome -> of_outcome outcome
  | exception Engine.Crash { signature; bug_id; _ } -> R_crash { signature; bug_id }

let run_source ?max_steps engine source =
  match Engine.solve_source ?max_steps engine source with
  | outcome -> of_outcome outcome
  | exception Engine.Crash { signature; bug_id; _ } -> R_crash { signature; bug_id }

let result_to_string = function
  | R_sat _ -> "sat"
  | R_unsat -> "unsat"
  | R_unknown reason -> Printf.sprintf "unknown (%s)" reason
  | R_error msg -> Printf.sprintf "error (%s)" msg
  | R_crash { signature; _ } -> Printf.sprintf "crash (%s)" signature
  | R_timeout -> "timeout"

let same_verdict a b =
  match (a, b) with
  | R_sat _, R_sat _ -> true
  | R_unsat, R_unsat -> true
  | R_unknown _, R_unknown _ -> true
  | R_error _, R_error _ -> true
  | R_crash _, R_crash _ -> true
  | R_timeout, R_timeout -> true
  | _ -> false
