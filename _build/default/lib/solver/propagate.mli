(** Integer bounds propagation — Zeal's presolving pass.

    Top-level assertions of the forms [(< x c)], [(<= x c)], [(> x c)],
    [(>= x c)], [(= x c)] (either operand order, possibly under a top-level
    [and]) refine the enumeration window of the constrained constants before
    model search. Pruning is sound under the bounded semantics: a pruned
    value falsifies a top-level conjunct, so no model is lost, and [unsat]
    answers are unaffected.

    This pass is one of the deliberate implementation differences between
    the two solvers (Zeal runs it, Cove does not), giving them genuinely
    different code paths and performance profiles, as Z3's and cvc5's
    preprocessing stacks differ. *)

open Smtlib

type interval = {
  lo : int option;  (** inclusive *)
  hi : int option;  (** inclusive *)
}

val unconstrained : interval

val intersect : interval -> interval -> interval

val is_empty_within : interval -> window_lo:int -> window_hi:int -> bool
(** No value of the bounded window survives the interval. *)

val analyze : Script.t -> (string * interval) list
(** Bounds implied by the top-level conjuncts, per declared Int constant.
    Constants without derivable bounds are omitted. *)

val restrict_domain : interval -> Value.t list -> Value.t list
(** Filter an Int domain by the interval (non-Int values pass through). *)
