(** Term simplification.

    Zeal and Cove run {e different} rewrite pipelines — this is one of the
    places where the two solvers genuinely diverge in code paths (and hence
    coverage profiles), like Z3's and cvc5's rewriters do. Soundness bugs are
    injected at this layer by the bug database. *)

open Smtlib

type rule = {
  rule_name : string;
  apply : Term.t -> Term.t option;  (** [Some t'] when the rule fires *)
}

val shared_rules : rule list
(** Rules both pipelines include. *)

val zeal_rules : rule list
(** Aggressive constant folding and flattening (Z3-style). *)

val cove_rules : rule list
(** Normalization-oriented pipeline with extension-theory rules (cvc5-style). *)

val simplify :
  ?max_passes:int -> rules:rule list -> fired:(string -> unit) -> Term.t -> Term.t
(** Bottom-up rewriting to a fixpoint (or [max_passes], default 4). [fired]
    is called with the rule name each time a rule rewrites a node — the
    solver front ends use it for coverage accounting. *)

val rule_names : rule list -> string list
