(** Bounded value domains.

    Both solvers search for models over the same bounded domains, giving the
    differential oracle a common semantics: a [sat]/[unsat] disagreement under
    identical bounded semantics indicates a genuine implementation divergence
    (see DESIGN.md, "Bounded semantics"). *)

open Smtlib

type config = {
  int_lo : int;
  int_hi : int;
  max_container_elems : int;  (** elements drawn for Seq/Set/Bag domains *)
  max_seq_len : int;
  max_bag_mult : int;
  max_domain_size : int;  (** hard cap per sort *)
  uninterpreted_card : int;  (** cardinality of uninterpreted sorts *)
  datatype_depth : int;
}

val default_config : config

val enumerate :
  ?config:config -> datatypes:Command.datatype_decl list -> Sort.t -> Value.t list
(** Every candidate value of the sort under the bounded semantics, capped at
    [max_domain_size]. Never empty for supported sorts; [Reglan] yields a
    small set of regex values. *)

val default_value :
  ?config:config -> datatypes:Command.datatype_decl list -> Sort.t -> Value.t
(** Canonical "zero" of a sort — used for underspecified-but-total operators
    (selector misapplication, [set.choose] on the empty set, ...). *)
