open Smtlib

type t =
  | Bool of bool
  | Int of int
  | Real of int * int
  | Bv of { width : int; value : int }
  | Str of string
  | Ff of { order : int; value : int }
  | Seq of Sort.t * t list
  | Set of Sort.t * t list
  | Bag of Sort.t * (t * int) list
  | Arr of { idx : Sort.t; elt : Sort.t; default : t; entries : (t * t) list }
  | Tuple of t list
  | Dt of string * string * t list
  | Un of string * int
  | Re of Regex.t

let rec compare a b =
  match (a, b) with
  | Bool x, Bool y -> Stdlib.compare x y
  | Int x, Int y -> Stdlib.compare x y
  | Real (p, q), Real (p', q') -> Stdlib.compare (p * q') (p' * q)
  | Bv x, Bv y -> Stdlib.compare (x.width, x.value) (y.width, y.value)
  | Str x, Str y -> Stdlib.compare x y
  | Ff x, Ff y -> Stdlib.compare (x.order, x.value) (y.order, y.value)
  | Seq (_, xs), Seq (_, ys) | Set (_, xs), Set (_, ys) -> compare_lists xs ys
  | Bag (_, xs), Bag (_, ys) ->
    compare_lists (List.map fst xs) (List.map fst ys) |> fun c ->
    if c <> 0 then c else Stdlib.compare (List.map snd xs) (List.map snd ys)
  | Arr x, Arr y ->
    let c = compare x.default y.default in
    if c <> 0 then c
    else
      compare_lists (List.map fst x.entries) (List.map fst y.entries) |> fun c ->
      if c <> 0 then c else compare_lists (List.map snd x.entries) (List.map snd y.entries)
  | Tuple xs, Tuple ys -> compare_lists xs ys
  | Dt (d, c, xs), Dt (d', c', ys) ->
    let cc = Stdlib.compare (d, c) (d', c') in
    if cc <> 0 then cc else compare_lists xs ys
  | Un (s, k), Un (s', k') -> Stdlib.compare (s, k) (s', k')
  | Re x, Re y -> Stdlib.compare (Regex.size x) (Regex.size y)
  | _ -> Stdlib.compare (tag a) (tag b)

and compare_lists xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: xs', y :: ys' ->
    let c = compare x y in
    if c <> 0 then c else compare_lists xs' ys'

and tag = function
  | Bool _ -> 0
  | Int _ -> 1
  | Real _ -> 2
  | Bv _ -> 3
  | Str _ -> 4
  | Ff _ -> 5
  | Seq _ -> 6
  | Set _ -> 7
  | Bag _ -> 8
  | Arr _ -> 9
  | Tuple _ -> 10
  | Dt _ -> 11
  | Un _ -> 12
  | Re _ -> 13

let equal a b = compare a b = 0

let rec sort_of = function
  | Bool _ -> Sort.Bool
  | Int _ -> Sort.Int
  | Real _ -> Sort.Real
  | Bv { width; _ } -> Sort.Bitvec width
  | Str _ -> Sort.String_sort
  | Ff { order; _ } -> Sort.Finite_field order
  | Seq (elt, _) -> Sort.Seq elt
  | Set (elt, _) -> Sort.Set elt
  | Bag (elt, _) -> Sort.Bag elt
  | Arr { idx; elt; _ } -> Sort.Array (idx, elt)
  | Tuple vs -> Sort.Tuple (List.map sort_of vs)
  | Dt (dt, _, _) -> Sort.Datatype dt
  | Un (name, _) -> Sort.Uninterpreted name
  | Re _ -> Sort.Reglan

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let mk_real p q =
  if q = 0 then invalid_arg "Value.mk_real: zero denominator";
  let sign = if q < 0 then -1 else 1 in
  let p = p * sign and q = q * sign in
  let g = gcd p q in
  if g = 0 then Real (0, 1) else Real (p / g, q / g)

let mk_ff ~order value =
  let v = ((value mod order) + order) mod order in
  Ff { order; value = v }

let mk_bv ~width value =
  let mask = if width >= 62 then max_int else (1 lsl width) - 1 in
  Bv { width; value = value land mask }

let mk_set elt elems =
  Set (elt, O4a_util.Listx.dedup ~eq:equal (List.sort compare elems))

let mk_bag elt entries =
  let merged =
    List.fold_left
      (fun acc (v, n) ->
        if n <= 0 then acc
        else (
          match List.find_opt (fun (v', _) -> equal v v') acc with
          | Some (_, m) -> (v, m + n) :: List.filter (fun (v', _) -> not (equal v v')) acc
          | None -> (v, n) :: acc))
      [] entries
  in
  Bag (elt, List.sort (fun (a, _) (b, _) -> compare a b) merged)

let normalize_entries entries =
  let deduped =
    List.fold_left
      (fun acc (k, v) -> (k, v) :: List.filter (fun (k', _) -> not (equal k k')) acc)
      []
      (List.rev entries)
  in
  List.sort (fun (a, _) (b, _) -> compare a b) deduped

let rec to_term_string = function
  | Bool b -> string_of_bool b
  | Int n -> if n < 0 then Printf.sprintf "(- %d)" (-n) else string_of_int n
  | Real (p, q) -> Term.const_to_string (Term.Real_lit (p, q))
  | Bv { width; value } -> Term.const_to_string (Term.Bv_lit { width; value })
  | Str s -> Printf.sprintf "\"%s\"" (O4a_util.Strx.escape_smt_string s)
  | Ff { order; value } -> Printf.sprintf "(as ff%d (_ FiniteField %d))" value order
  | Seq (elt, []) -> Printf.sprintf "(as seq.empty %s)" (Sort.to_string (Sort.Seq elt))
  | Seq (elt, vs) ->
    let units = List.map (fun v -> Printf.sprintf "(seq.unit %s)" (to_term_string v)) vs in
    (match units with
    | [ one ] -> one
    | _ ->
      ignore elt;
      Printf.sprintf "(seq.++ %s)" (String.concat " " units))
  | Set (elt, []) -> Printf.sprintf "(as set.empty %s)" (Sort.to_string (Sort.Set elt))
  | Set (_, [ v ]) -> Printf.sprintf "(set.singleton %s)" (to_term_string v)
  | Set (_, v :: rest) ->
    Printf.sprintf "(set.insert %s (set.singleton %s))"
      (String.concat " " (List.map to_term_string (List.rev rest)))
      (to_term_string v)
  | Bag (elt, []) -> Printf.sprintf "(as bag.empty %s)" (Sort.to_string (Sort.Bag elt))
  | Bag (elt, [ (v, n) ]) ->
    ignore elt;
    Printf.sprintf "(bag %s %d)" (to_term_string v) n
  | Bag (elt, (v, n) :: rest) ->
    Printf.sprintf "(bag.union_disjoint (bag %s %d) %s)" (to_term_string v) n
      (to_term_string (Bag (elt, rest)))
  | Arr { idx; elt; default; entries } ->
    let base =
      Printf.sprintf "((as const %s) %s)"
        (Sort.to_string (Sort.Array (idx, elt)))
        (to_term_string default)
    in
    List.fold_left
      (fun acc (k, v) ->
        Printf.sprintf "(store %s %s %s)" acc (to_term_string k) (to_term_string v))
      base entries
  | Tuple [] -> "(as tuple.unit UnitTuple)"
  | Tuple vs -> Printf.sprintf "(tuple %s)" (String.concat " " (List.map to_term_string vs))
  | Dt (dt, ctor, []) -> Printf.sprintf "(as %s %s)" ctor dt
  | Dt (_, ctor, args) ->
    Printf.sprintf "(%s %s)" ctor (String.concat " " (List.map to_term_string args))
  | Un (name, k) -> Printf.sprintf "(as @%s!%d %s)" name k name
  | Re _ -> "re.all"
