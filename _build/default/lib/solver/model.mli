(** Solver models: assignments to declared constants plus constant
    interpretations for non-nullary uninterpreted functions. *)

open Smtlib

type t = {
  consts : (string * Value.t) list;
  fun_defaults : (string * Value.t) list;
      (** default result per n-ary uninterpreted function (constant
          interpretation — the bounded search strategy of DESIGN.md) *)
}

val empty : t

val lookup : t -> string -> Value.t option

val to_string : Script.t -> t -> string
(** get-model style output: a parenthesized list of define-fun bindings. *)

type check_result =
  | Holds
  | Fails of Term.t  (** the first assertion the model falsifies *)
  | Check_unknown of string  (** evaluation failed or ran out of fuel *)

val check :
  ?config:Domain.config -> ?max_steps:int -> Script.t -> t -> check_result
(** Evaluate every assertion of the script under the model with the
    {e reference} evaluator (no injected bugs) — the oracle's ground truth
    for classifying soundness vs invalid-model discrepancies. *)

val eval_terms :
  ?config:Domain.config ->
  ?max_steps:int ->
  Script.t ->
  t ->
  Term.t list ->
  (Term.t * string) list
(** get-value support: evaluate each term under the model, rendering the
    result in SMT-LIB syntax (or an error marker). *)
