type t =
  | Empty
  | Epsilon
  | Any_char
  | All
  | Lit of string
  | Range of char * char
  | Concat of t * t
  | Union of t * t
  | Inter of t * t
  | Star of t
  | Complement of t

let plus r = Concat (r, Star r)

let opt r = Union (Epsilon, r)

let rec loop i j r =
  if j < i || j < 0 then Empty
  else if i > 0 then Concat (r, loop (i - 1) (j - 1) r)
  else if j = 0 then Epsilon
  else Union (Epsilon, Concat (r, loop 0 (j - 1) r))

let diff a b = Inter (a, Complement b)

let rec nullable = function
  | Empty -> false
  | Epsilon -> true
  | Any_char -> false
  | All -> true
  | Lit s -> s = ""
  | Range _ -> false
  | Concat (a, b) -> nullable a && nullable b
  | Union (a, b) -> nullable a || nullable b
  | Inter (a, b) -> nullable a && nullable b
  | Star _ -> true
  | Complement r -> not (nullable r)

let rec deriv c = function
  | Empty -> Empty
  | Epsilon -> Empty
  | Any_char -> Epsilon
  | All -> All
  | Lit s ->
    if s <> "" && s.[0] = c then Lit (String.sub s 1 (String.length s - 1)) else Empty
  | Range (lo, hi) -> if c >= lo && c <= hi then Epsilon else Empty
  | Concat (a, b) ->
    let da = Concat (deriv c a, b) in
    if nullable a then Union (da, deriv c b) else da
  | Union (a, b) -> Union (deriv c a, deriv c b)
  | Inter (a, b) -> Inter (deriv c a, deriv c b)
  | Star r as star -> Concat (deriv c r, star)
  | Complement r -> Complement (deriv c r)

let matches r s =
  let rec go r i = if i >= String.length s then nullable r else go (deriv s.[i] r) (i + 1) in
  go r 0

let rec size = function
  | Empty | Epsilon | Any_char | All | Lit _ | Range _ -> 1
  | Concat (a, b) | Union (a, b) | Inter (a, b) -> 1 + size a + size b
  | Star r | Complement r -> 1 + size r
