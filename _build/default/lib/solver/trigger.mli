(** Small combinator language for the structural predicates that decide
    whether a formula triggers an injected bug. Triggers deliberately mirror
    the flavor of real bug conditions — specific operator combinations under
    specific structure (cf. Figure 1 of the paper: [seq.rev] + [seq.nth] of
    an empty sequence under an [exists]). *)

open Smtlib

type t = Script.t -> bool

val always : t
val never : t
val all_of : t list -> t
val any_of : t list -> t
val not_ : t -> t

val has_op : string -> t
(** Operator name appears anywhere (plain, indexed or qualified). *)

val has_any_op : string list -> t
val has_all_ops : string list -> t

val has_exists : t
val has_forall : t
val has_quantifier : t
val has_let : t
val has_annotation : t

val has_sort : (Sort.t -> bool) -> t
(** Some declared symbol or quantified binder uses a matching sort. *)

val has_int_lit : (int -> bool) -> t

val has_string_lit : (string -> bool) -> t

val min_asserts : int -> t

val min_term_depth : int -> t

val op_count_at_least : string -> int -> t
(** The operator occurs at least [n] times across assertions. *)

val has_div_by_zero : t
(** A [div], [mod] or [/] whose divisor is the literal 0. *)

val has_datatypes : t
