open Smtlib

type interval = {
  lo : int option;
  hi : int option;
}

let unconstrained = { lo = None; hi = None }

let max_opt a b =
  match (a, b) with
  | Some x, Some y -> Some (max x y)
  | Some x, None | None, Some x -> Some x
  | None, None -> None

let min_opt a b =
  match (a, b) with
  | Some x, Some y -> Some (min x y)
  | Some x, None | None, Some x -> Some x
  | None, None -> None

let intersect a b = { lo = max_opt a.lo b.lo; hi = min_opt a.hi b.hi }

let is_empty_within interval ~window_lo ~window_hi =
  let lo = match interval.lo with Some l -> max l window_lo | None -> window_lo in
  let hi = match interval.hi with Some h -> min h window_hi | None -> window_hi in
  lo > hi

(* a single comparison conjunct over (variable, literal) *)
let bound_of_conjunct term =
  match term with
  | Term.App (op, [ Term.Var x; Term.Const (Term.Int_lit c) ]) -> (
    match op with
    | "<" -> Some (x, { lo = None; hi = Some (c - 1) })
    | "<=" -> Some (x, { lo = None; hi = Some c })
    | ">" -> Some (x, { lo = Some (c + 1); hi = None })
    | ">=" -> Some (x, { lo = Some c; hi = None })
    | "=" -> Some (x, { lo = Some c; hi = Some c })
    | _ -> None)
  | Term.App (op, [ Term.Const (Term.Int_lit c); Term.Var x ]) -> (
    match op with
    | "<" -> Some (x, { lo = Some (c + 1); hi = None })
    | "<=" -> Some (x, { lo = Some c; hi = None })
    | ">" -> Some (x, { lo = None; hi = Some (c - 1) })
    | ">=" -> Some (x, { lo = None; hi = Some c })
    | "=" -> Some (x, { lo = Some c; hi = Some c })
    | _ -> None)
  | _ -> None

let top_level_conjuncts script =
  let rec flatten t =
    match t with
    | Term.App ("and", args) -> List.concat_map flatten args
    | _ -> [ t ]
  in
  List.concat_map flatten (Script.assertions script)

let analyze script =
  let int_consts =
    Script.declared_consts script
    |> List.filter_map (fun (n, s) -> if s = Sort.Int then Some n else None)
  in
  let bounds =
    List.fold_left
      (fun acc conjunct ->
        match bound_of_conjunct conjunct with
        | Some (x, interval) when List.mem x int_consts ->
          let current =
            Option.value (List.assoc_opt x acc) ~default:unconstrained
          in
          (x, intersect current interval) :: List.remove_assoc x acc
        | _ -> acc)
      [] (top_level_conjuncts script)
  in
  List.rev bounds

let restrict_domain interval values =
  List.filter
    (fun v ->
      match v with
      | Value.Int n ->
        (match interval.lo with Some l -> n >= l | None -> true)
        && (match interval.hi with Some h -> n <= h | None -> true)
      | _ -> true)
    values
