(** Regular expressions over strings, supporting the SMT-LIB [RegLan]
    operators. Matching uses Brzozowski derivatives, which keeps the
    implementation total on the small bounded strings the solvers handle. *)

type t =
  | Empty  (** re.none — matches nothing *)
  | Epsilon  (** the empty string only *)
  | Any_char  (** re.allchar *)
  | All  (** re.all *)
  | Lit of string  (** str.to_re of a literal *)
  | Range of char * char
  | Concat of t * t
  | Union of t * t
  | Inter of t * t
  | Star of t
  | Complement of t

val plus : t -> t
val opt : t -> t
val loop : int -> int -> t -> t
(** [loop i j r] matches between [i] and [j] repetitions. *)

val diff : t -> t -> t

val nullable : t -> bool
(** Whether the language contains the empty string. *)

val deriv : char -> t -> t

val matches : t -> string -> bool

val size : t -> int
