(** Commit and release model of the two solvers.

    Each solver has a linear commit history [0 .. trunk]. Injected bugs carry
    an [introduced] and an optional [fixed] commit, which makes three of the
    paper's experiments reproducible: the bug-lifespan analysis (Figure 5),
    the correcting-commit bisection used to count unique known bugs
    (Figures 7 and 9), and campaign runs "on the latest trunk". *)

type release = {
  version : string;  (** e.g. "4.8.1" *)
  commit : int;
  year : int;  (** release year, for lifespan narration *)
}

type history = {
  solver : O4a_coverage.Coverage.solver_tag;
  releases : release list;  (** oldest first *)
  trunk : int;
}

val zeal_history : history
(** Z3-analog: releases 4.8.1 .. 4.13.0 (paper's Figure 5 x-axis). *)

val cove_history : history
(** cvc5-analog: releases 0.0.2 .. 1.2.0. *)

val history_of : O4a_coverage.Coverage.solver_tag -> history

val release_commit : history -> string -> int option

val bisect_fix : ?known:int -> triggers:(int -> bool) -> history -> int option
(** [bisect_fix ?known ~triggers h] finds, by binary search over [0 .. trunk]
    (seeded at the [known]-triggering commit when given), the
    earliest commit [c] such that [triggers (c-1)] holds and [not (triggers c)]
    — the correcting commit. Returns [None] when the formula still triggers at
    trunk or never triggered. Mirrors the paper's Correcting Commit method. *)
