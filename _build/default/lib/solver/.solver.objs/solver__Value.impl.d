lib/solver/value.ml: List O4a_util Printf Regex Smtlib Sort Stdlib String Term
