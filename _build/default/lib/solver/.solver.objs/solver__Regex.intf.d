lib/solver/regex.mli:
