lib/solver/propagate.ml: List Option Script Smtlib Sort Term Value
