lib/solver/rewrite.mli: Smtlib Term
