lib/solver/domain.ml: Command List O4a_util Regex Smtlib Sort Value
