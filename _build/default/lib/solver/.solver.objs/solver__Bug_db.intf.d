lib/solver/bug_db.mli: O4a_coverage Script Smtlib
