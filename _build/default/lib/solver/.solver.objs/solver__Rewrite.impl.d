lib/solver/rewrite.ml: List Option Smtlib String Term
