lib/solver/trigger.ml: List Script Smtlib Sort Term
