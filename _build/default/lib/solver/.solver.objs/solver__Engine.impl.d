lib/solver/engine.ml: Array Bug_db Command Domain Hashtbl List Model O4a_coverage O4a_util Option Parser Printf Propagate Result Rewrite Script Search Smtlib Sort Term Theories Value Version
