lib/solver/bug_db.ml: Hashtbl List O4a_coverage Printf Script Smtlib Sort Term Trigger
