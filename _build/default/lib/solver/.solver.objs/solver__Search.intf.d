lib/solver/search.mli: Domain Model Propagate Script Smtlib
