lib/solver/runner.mli: Engine Model Smtlib
