lib/solver/eval.ml: Array Buffer Char Command Domain List O4a_util Printf Regex Script Signature Smtlib Sort String Term Theories Value
