lib/solver/engine.mli: Model O4a_coverage Script Smtlib Term
