lib/solver/model.ml: Domain Eval List Printer Printf Script Smtlib String Term Value
