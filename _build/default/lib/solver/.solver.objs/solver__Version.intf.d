lib/solver/version.mli: O4a_coverage
