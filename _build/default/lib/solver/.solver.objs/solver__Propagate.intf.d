lib/solver/propagate.mli: Script Smtlib Value
