lib/solver/search.ml: Command Domain Eval List Model Option Propagate Script Smtlib Sort
