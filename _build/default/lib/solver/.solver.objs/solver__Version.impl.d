lib/solver/version.ml: List O4a_coverage
