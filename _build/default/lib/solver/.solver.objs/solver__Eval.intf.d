lib/solver/eval.mli: Command Domain Script Smtlib Sort Term Value
