lib/solver/domain.mli: Command Smtlib Sort Value
