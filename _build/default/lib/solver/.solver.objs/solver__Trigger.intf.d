lib/solver/trigger.mli: Script Smtlib Sort
