lib/solver/runner.ml: Engine Model O4a_util Printf
