lib/solver/regex.ml: String
