lib/solver/value.mli: Regex Smtlib Sort
