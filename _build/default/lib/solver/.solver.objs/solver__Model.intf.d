lib/solver/model.mli: Domain Script Smtlib Term Value
