open Smtlib

type rule = {
  rule_name : string;
  apply : Term.t -> Term.t option;
}

let rule name apply = { rule_name = name; apply }

let is_true = function Term.Const (Term.Bool_lit true) -> true | _ -> false
let is_false = function Term.Const (Term.Bool_lit false) -> true | _ -> false

let int_lit = function Term.Const (Term.Int_lit n) -> Some n | _ -> None

let shared_rules =
  [
    rule "not-not" (function
      | Term.App ("not", [ Term.App ("not", [ t ]) ]) -> Some t
      | _ -> None);
    rule "not-const" (function
      | Term.App ("not", [ t ]) when is_true t -> Some Term.fls
      | Term.App ("not", [ t ]) when is_false t -> Some Term.tru
      | _ -> None);
    rule "and-elim" (function
      | Term.App ("and", args) when List.exists is_false args -> Some Term.fls
      | Term.App ("and", args) when List.exists is_true args -> (
        match List.filter (fun t -> not (is_true t)) args with
        | [] -> Some Term.tru
        | [ t ] -> Some t
        | rest -> Some (Term.and_ rest))
      | _ -> None);
    rule "or-elim" (function
      | Term.App ("or", args) when List.exists is_true args -> Some Term.tru
      | Term.App ("or", args) when List.exists is_false args -> (
        match List.filter (fun t -> not (is_false t)) args with
        | [] -> Some Term.fls
        | [ t ] -> Some t
        | rest -> Some (Term.or_ rest))
      | _ -> None);
    rule "eq-refl" (function
      | Term.App ("=", [ a; b ]) when Term.equal a b && Term.size a <= 8 -> Some Term.tru
      | _ -> None);
    rule "ite-const" (function
      | Term.App ("ite", [ c; a; _ ]) when is_true c -> Some a
      | Term.App ("ite", [ c; _; b ]) when is_false c -> Some b
      | Term.App ("ite", [ _; a; b ]) when Term.equal a b -> Some a
      | _ -> None);
    rule "implies-true" (function
      | Term.App ("=>", [ a; b ]) when is_false a || is_true b -> Some Term.tru
      | Term.App ("=>", [ a; b ]) when is_true a -> Some b
      | _ -> None);
    rule "xor-self" (function
      | Term.App ("xor", [ a; b ]) when Term.equal a b -> Some Term.fls
      | _ -> None);
  ]

let arith_fold_rules =
  [
    rule "add-zero" (function
      | Term.App ("+", args) when List.exists (fun t -> int_lit t = Some 0) args
                                  && List.length args > 1 -> (
        match List.filter (fun t -> int_lit t <> Some 0) args with
        | [] -> Some (Term.int 0)
        | [ t ] -> Some t
        | rest -> Some (Term.app "+" rest))
      | _ -> None);
    rule "mul-one" (function
      | Term.App ("*", args) when List.exists (fun t -> int_lit t = Some 1) args
                                  && List.length args > 1 -> (
        match List.filter (fun t -> int_lit t <> Some 1) args with
        | [] -> Some (Term.int 1)
        | [ t ] -> Some t
        | rest -> Some (Term.app "*" rest))
      | _ -> None);
    rule "mul-zero" (function
      | Term.App ("*", args) when List.exists (fun t -> int_lit t = Some 0) args ->
        Some (Term.int 0)
      | _ -> None);
    rule "fold-int-add" (function
      | Term.App ("+", args) -> (
        match List.map int_lit args with
        | lits when List.for_all Option.is_some lits ->
          Some (Term.int (List.fold_left (fun a v -> a + Option.get v) 0 lits))
        | _ -> None)
      | _ -> None);
    rule "fold-int-cmp" (function
      | Term.App (("<" | "<=" | ">" | ">=") as op, [ a; b ]) -> (
        match (int_lit a, int_lit b) with
        | Some x, Some y ->
          let r =
            match op with "<" -> x < y | "<=" -> x <= y | ">" -> x > y | _ -> x >= y
          in
          Some (if r then Term.tru else Term.fls)
        | _ -> None)
      | _ -> None);
    rule "neg-neg" (function
      | Term.App ("-", [ Term.App ("-", [ t ]) ]) -> Some t
      | _ -> None);
  ]

let flatten_rules =
  [
    rule "flatten-and" (function
      | Term.App ("and", args)
        when List.exists (function Term.App ("and", _) -> true | _ -> false) args ->
        let flat =
          List.concat_map
            (function Term.App ("and", inner) -> inner | t -> [ t ])
            args
        in
        Some (Term.and_ flat)
      | _ -> None);
    rule "flatten-or" (function
      | Term.App ("or", args)
        when List.exists (function Term.App ("or", _) -> true | _ -> false) args ->
        let flat =
          List.concat_map (function Term.App ("or", inner) -> inner | t -> [ t ]) args
        in
        Some (Term.or_ flat)
      | _ -> None);
  ]

let string_rules =
  [
    rule "concat-str-lits" (function
      | Term.App ("str.++", args)
        when List.for_all
               (function Term.Const (Term.String_lit _) -> true | _ -> false)
               args ->
        let text =
          String.concat ""
            (List.map
               (function Term.Const (Term.String_lit s) -> s | _ -> "")
               args)
        in
        Some (Term.str text)
      | _ -> None);
    rule "len-str-lit" (function
      | Term.App ("str.len", [ Term.Const (Term.String_lit s) ]) ->
        Some (Term.int (String.length s))
      | _ -> None);
  ]

let extension_rules =
  [
    rule "seq-rev-rev" (function
      | Term.App ("seq.rev", [ Term.App ("seq.rev", [ s ]) ]) -> Some s
      | _ -> None);
    rule "seq-len-empty" (function
      | Term.App ("seq.len", [ Term.Qual ("seq.empty", _) ]) -> Some (Term.int 0)
      | _ -> None);
    rule "set-union-idem" (function
      | Term.App ("set.union", [ a; b ]) when Term.equal a b -> Some a
      | _ -> None);
    rule "set-inter-idem" (function
      | Term.App ("set.inter", [ a; b ]) when Term.equal a b -> Some a
      | _ -> None);
    rule "bag-count-empty" (function
      | Term.App ("bag.count", [ _; Term.Qual ("bag.empty", _) ]) -> Some (Term.int 0)
      | _ -> None);
    rule "ff-neg-neg" (function
      | Term.App ("ff.neg", [ Term.App ("ff.neg", [ t ]) ]) -> Some t
      | _ -> None);
  ]

let bv_rules =
  [
    rule "bvnot-bvnot" (function
      | Term.App ("bvnot", [ Term.App ("bvnot", [ t ]) ]) -> Some t
      | _ -> None);
    rule "bvxor-self" (function
      | Term.App ("bvxor", [ a; b ]) when Term.equal a b -> (
        match a with
        | Term.Const (Term.Bv_lit { width; _ }) -> Some (Term.bv ~width 0)
        | _ -> None)
      | _ -> None);
  ]

let normalize_rules =
  [
    rule "gt-to-lt" (function
      | Term.App (">", [ a; b ]) -> Some (Term.App ("<", [ b; a ]))
      | Term.App (">=", [ a; b ]) -> Some (Term.App ("<=", [ b; a ]))
      | _ -> None);
    rule "push-not-cmp" (function
      | Term.App ("not", [ Term.App ("<", [ a; b ]) ]) -> Some (Term.App ("<=", [ b; a ]))
      | Term.App ("not", [ Term.App ("<=", [ a; b ]) ]) -> Some (Term.App ("<", [ b; a ]))
      | _ -> None);
  ]

let zeal_rules = shared_rules @ arith_fold_rules @ flatten_rules @ string_rules @ bv_rules

let cove_rules = shared_rules @ normalize_rules @ string_rules @ extension_rules

let apply_first rules fired t =
  let rec go = function
    | [] -> None
    | r :: rest -> (
      match r.apply t with
      | Some t' when not (Term.equal t t') ->
        fired r.rule_name;
        Some t'
      | Some _ | None -> go rest)
  in
  go rules

let simplify ?(max_passes = 4) ~rules ~fired term =
  let changed = ref false in
  let rewrite_node t =
    match apply_first rules fired t with
    | Some t' ->
      changed := true;
      t'
    | None -> t
  in
  let rec passes n t =
    if n <= 0 then t
    else (
      changed := false;
      let t' = Term.map_bottom_up rewrite_node t in
      if !changed then passes (n - 1) t' else t')
  in
  passes max_passes term

let rule_names rules = List.map (fun r -> r.rule_name) rules
