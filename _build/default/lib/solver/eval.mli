(** Total, bounded evaluation of terms to {!Value.t}.

    The evaluator implements SMT-LIB semantics with the bounded-domain
    conventions of DESIGN.md: quantifiers expand over {!Domain.enumerate};
    underspecified-but-total operators (division by zero, selector
    misapplication, out-of-range accesses) return fixed defaults so both
    solvers agree in the absence of injected bugs.

    Coverage instrumentation is threaded through the [cov] callback so each
    solver front-end can attribute evaluation work to its own coverage
    points. *)

open Smtlib

type ctx = {
  config : Domain.config;
  datatypes : Command.datatype_decl list;
  defined : (string * (string * Sort.t) list * Term.t) list;
      (** define-fun bodies, substituted on application *)
  fun_decls : Script.fun_decl list;
  mutable fun_defaults : (string * Value.t) list;
      (** constant interpretations for non-nullary uninterpreted functions *)
  cov : string -> int -> unit;  (** (operator, branch) coverage callback *)
  mutable steps : int;
  max_steps : int;
}

exception Out_of_fuel
(** Raised when [steps] exceeds [max_steps]; the caller reports [Unknown]
    (our analog of a solver timeout). *)

exception Eval_failure of string
(** Raised on genuinely ill-sorted input that slipped past checking; the
    front end converts it into an error result. *)

val make_ctx :
  ?config:Domain.config ->
  ?max_steps:int ->
  ?cov:(string -> int -> unit) ->
  ?fun_defaults:(string * Value.t) list ->
  Script.t ->
  ctx

val eval : ctx -> (string * Value.t) list -> Term.t -> Value.t
(** [eval ctx env term] under the variable assignment [env]. *)

val eval_bool : ctx -> (string * Value.t) list -> Term.t -> bool
(** Like {!eval} but insists on a boolean result. *)

(** {1 Arithmetic helpers exposed for tests} *)

val ediv : int -> int -> int
(** Euclidean division with [ediv x 0 = 0]. *)

val emod : int -> int -> int
(** Euclidean remainder with [emod x 0 = x]. *)

val to_signed : int -> int -> int
(** [to_signed width v] reads an unsigned bit-pattern as two's complement. *)
