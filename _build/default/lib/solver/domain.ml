open Smtlib

type config = {
  int_lo : int;
  int_hi : int;
  max_container_elems : int;
  max_seq_len : int;
  max_bag_mult : int;
  max_domain_size : int;
  uninterpreted_card : int;
  datatype_depth : int;
}

let default_config =
  {
    int_lo = -2;
    int_hi = 3;
    max_container_elems = 3;
    max_seq_len = 2;
    max_bag_mult = 2;
    max_domain_size = 16;
    uninterpreted_card = 3;
    datatype_depth = 2;
  }

let cap config values = O4a_util.Listx.take config.max_domain_size values

let rec enumerate_uncapped config ~datatypes sort =
  match sort with
  | Sort.Bool -> [ Value.Bool false; Value.Bool true ]
  | Sort.Int -> List.map (fun n -> Value.Int n) (O4a_util.Listx.range config.int_lo config.int_hi)
  | Sort.Real ->
    [ Value.mk_real (-1) 1; Value.mk_real (-1) 2; Value.mk_real 0 1; Value.mk_real 1 2;
      Value.mk_real 1 1; Value.mk_real 2 1 ]
  | Sort.String_sort -> List.map (fun s -> Value.Str s) [ ""; "a"; "b"; "ab"; "ba"; "0"; "aa" ]
  | Sort.Reglan ->
    [ Value.Re Regex.Empty; Value.Re Regex.Epsilon; Value.Re Regex.Any_char;
      Value.Re Regex.All; Value.Re (Regex.Lit "a") ]
  | Sort.Bitvec w ->
    let full = w <= 3 in
    let values =
      if full then O4a_util.Listx.range 0 ((1 lsl w) - 1)
      else (
        let top = (1 lsl min w 30) - 1 in
        O4a_util.Listx.dedup [ 0; 1; 2; 3; 5; top / 2; top - 1; top ])
    in
    List.map (fun v -> Value.mk_bv ~width:w v) values
  | Sort.Finite_field p ->
    let values = if p <= 11 then O4a_util.Listx.range 0 (p - 1) else [ 0; 1; 2; p - 2; p - 1 ] in
    List.map (fun v -> Value.mk_ff ~order:p v) values
  | Sort.Seq elt ->
    let elems =
      O4a_util.Listx.take config.max_container_elems
        (enumerate_uncapped config ~datatypes elt)
    in
    let rec seqs len =
      if len = 0 then [ [] ]
      else (
        let shorter = seqs (len - 1) in
        shorter @ List.concat_map (fun s -> List.map (fun e -> e :: s) elems)
                    (List.filter (fun s -> List.length s = len - 1) shorter))
    in
    List.map (fun s -> Value.Seq (elt, s)) (seqs config.max_seq_len)
  | Sort.Set elt ->
    let elems =
      O4a_util.Listx.take config.max_container_elems
        (enumerate_uncapped config ~datatypes elt)
    in
    let rec subsets = function
      | [] -> [ [] ]
      | x :: rest ->
        let without = subsets rest in
        without @ List.map (fun s -> x :: s) without
    in
    List.map (fun s -> Value.mk_set elt s) (subsets elems)
  | Sort.Bag elt ->
    let elems =
      O4a_util.Listx.take 2 (enumerate_uncapped config ~datatypes elt)
    in
    let mults = O4a_util.Listx.range 0 config.max_bag_mult in
    let rec assignments = function
      | [] -> [ [] ]
      | x :: rest ->
        let tails = assignments rest in
        List.concat_map (fun m -> List.map (fun t -> (x, m) :: t) tails) mults
    in
    List.map
      (fun entries -> Value.mk_bag elt (List.filter (fun (_, m) -> m > 0) entries))
      (assignments elems)
  | Sort.Array (idx, elt) ->
    let elt_values =
      O4a_util.Listx.take 3 (enumerate_uncapped config ~datatypes elt)
    in
    let idx_values = O4a_util.Listx.take 2 (enumerate_uncapped config ~datatypes idx) in
    let constants =
      List.map
        (fun d -> Value.Arr { idx; elt; default = d; entries = [] })
        elt_values
    in
    let with_store =
      match (idx_values, elt_values) with
      | i0 :: _, d :: alt :: _ when not (Value.equal d alt) ->
        [ Value.Arr { idx; elt; default = d; entries = [ (i0, alt) ] } ]
      | _ -> []
    in
    constants @ with_store
  | Sort.Tuple sorts ->
    let rec products = function
      | [] -> [ [] ]
      | s :: rest ->
        let values = O4a_util.Listx.take 3 (enumerate_uncapped config ~datatypes s) in
        let tails = products rest in
        List.concat_map (fun v -> List.map (fun t -> v :: t) tails) values
    in
    List.map (fun vs -> Value.Tuple vs) (products sorts)
  | Sort.Datatype name -> enumerate_datatype config ~datatypes name config.datatype_depth
  | Sort.Uninterpreted name ->
    List.init config.uninterpreted_card (fun k -> Value.Un (name, k))

and enumerate_datatype config ~datatypes name depth =
  match
    List.find_opt (fun (d : Command.datatype_decl) -> d.dt_name = name) datatypes
  with
  | None -> [ Value.Un (name, 0) ]
  | Some decl ->
    let build_ctor (c : Command.constructor) =
      if depth <= 0 && c.selectors <> [] then []
      else (
        let rec fields = function
          | [] -> [ [] ]
          | (_, s) :: rest ->
            let values =
              match s with
              | Sort.Datatype n when n = name ->
                enumerate_datatype config ~datatypes name (depth - 1)
              | _ -> O4a_util.Listx.take 2 (enumerate_uncapped config ~datatypes s)
            in
            let tails = fields rest in
            List.concat_map (fun v -> List.map (fun t -> v :: t) tails)
              (O4a_util.Listx.take 2 values)
        in
        List.map (fun vs -> Value.Dt (name, c.ctor_name, vs)) (fields c.selectors))
    in
    (match List.concat_map build_ctor decl.constructors with
    | [] -> [ Value.Un (name, 0) ]
    | vs -> vs)

let enumerate ?(config = default_config) ~datatypes sort =
  cap config (enumerate_uncapped config ~datatypes sort)

let default_value ?(config = default_config) ~datatypes sort =
  match enumerate ~config ~datatypes sort with
  | [] -> Value.Un (Sort.to_string sort, 0)
  | v :: _ -> v
