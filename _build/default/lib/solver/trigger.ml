open Smtlib

type t = Script.t -> bool

let always _ = true
let never _ = false
let all_of ts script = List.for_all (fun t -> t script) ts
let any_of ts script = List.exists (fun t -> t script) ts
let not_ t script = not (t script)

let fold_terms f init script =
  List.fold_left
    (fun acc assertion -> Term.fold f acc assertion)
    init (Script.assertions script)

let exists_term pred script =
  List.exists (fun a -> Term.exists_node pred a) (Script.assertions script)

let term_op_matches name = function
  | Term.App (n, _) -> n = name
  | Term.Indexed_app (n, _, _) -> n = name
  | Term.Qual (n, _) | Term.Qual_app (n, _, _) -> n = name
  | Term.Var n -> n = name (* nullary theory constants parse as vars *)
  | _ -> false

let has_op name = exists_term (term_op_matches name)

let has_any_op names script = List.exists (fun n -> has_op n script) names

let has_all_ops names script = List.for_all (fun n -> has_op n script) names

let has_exists = exists_term (function Term.Exists _ -> true | _ -> false)

let has_forall = exists_term (function Term.Forall _ -> true | _ -> false)

let has_quantifier = any_of [ has_exists; has_forall ]

let has_let = exists_term (function Term.Let _ -> true | _ -> false)

let has_annotation = exists_term (function Term.Annot _ -> true | _ -> false)

let has_sort pred script =
  let decl_sorts =
    List.concat_map
      (fun (d : Script.fun_decl) -> d.result_sort :: d.arg_sorts)
      (Script.declared_funs script)
  in
  let rec sort_matches s =
    pred s
    ||
    match s with
    | Sort.Seq s' | Sort.Set s' | Sort.Bag s' -> sort_matches s'
    | Sort.Array (i, e) -> sort_matches i || sort_matches e
    | Sort.Tuple ss -> List.exists sort_matches ss
    | _ -> false
  in
  List.exists sort_matches decl_sorts
  || exists_term
       (function
         | Term.Forall (binders, _) | Term.Exists (binders, _) ->
           List.exists (fun (_, s) -> sort_matches s) binders
         | Term.Qual (_, s) | Term.Qual_app (_, s, _) -> sort_matches s
         | _ -> false)
       script

let has_int_lit pred =
  exists_term (function Term.Const (Term.Int_lit n) -> pred n | _ -> false)

let has_string_lit pred =
  exists_term (function Term.Const (Term.String_lit s) -> pred s | _ -> false)

let min_asserts n script = List.length (Script.assertions script) >= n

let min_term_depth n script =
  List.exists (fun a -> Term.depth a >= n) (Script.assertions script)

let op_count_at_least name n script =
  let count =
    fold_terms
      (fun acc t -> if term_op_matches name t then acc + 1 else acc)
      0 script
  in
  count >= n

let has_div_by_zero =
  exists_term (function
    | Term.App (("div" | "mod" | "/"), [ _; Term.Const (Term.Int_lit 0) ]) -> true
    | Term.App ("/", [ _; Term.Const (Term.Real_lit (0, _)) ]) -> true
    | _ -> false)

let has_datatypes script = Script.declared_datatypes script <> []
