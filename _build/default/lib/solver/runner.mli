(** Process-style execution of a solver on a script: crashes become data
    (with their stack signature) instead of exceptions, and the fuel limit
    plays the role of the paper's 10-second per-query timeout. *)



type result =
  | R_sat of Model.t
  | R_unsat
  | R_unknown of string
  | R_error of string
  | R_crash of { signature : string; bug_id : string }
  | R_timeout

val run : ?max_steps:int -> Engine.t -> Smtlib.Script.t -> result

val run_source : ?max_steps:int -> Engine.t -> string -> result

val result_to_string : result -> string

val same_verdict : result -> result -> bool
(** sat=sat, unsat=unsat; everything else compares by constructor. *)
