(** Concrete values computed by the solvers' evaluators and reported in
    models. Values carry enough sort information to be re-printed as
    SMT-LIB terms (for get-model output) and re-parsed by the oracle. *)

open Smtlib

type t =
  | Bool of bool
  | Int of int
  | Real of int * int  (** normalized rational p/q, q > 0 *)
  | Bv of { width : int; value : int }
  | Str of string
  | Ff of { order : int; value : int }  (** 0 <= value < order *)
  | Seq of Sort.t * t list  (** element sort + elements *)
  | Set of Sort.t * t list  (** element sort + sorted distinct elements *)
  | Bag of Sort.t * (t * int) list  (** sorted elements with multiplicity > 0 *)
  | Arr of { idx : Sort.t; elt : Sort.t; default : t; entries : (t * t) list }
      (** finite exceptions over a constant default; entries sorted by index *)
  | Tuple of t list
  | Dt of string * string * t list  (** datatype name, constructor, fields *)
  | Un of string * int  (** k-th element of an uninterpreted sort *)
  | Re of Regex.t  (** intermediate RegLan value *)

val compare : t -> t -> int
(** Total order used to normalize sets/bags; [Re] values compare by size. *)

val equal : t -> t -> bool

val sort_of : t -> Sort.t

val to_term_string : t -> string
(** SMT-LIB surface syntax for the value (what get-model prints). *)

(** {1 Rational helpers} *)

val mk_real : int -> int -> t
(** Normalized rational; raises [Invalid_argument] on zero denominator. *)

val mk_ff : order:int -> int -> t
(** Canonical residue. *)

val mk_bv : width:int -> int -> t
(** Truncated to width. *)

val mk_set : Sort.t -> t list -> t
(** Sorts and dedupes. *)

val mk_bag : Sort.t -> (t * int) list -> t
(** Merges duplicates, drops non-positive multiplicities, sorts. *)

val normalize_entries : (t * t) list -> (t * t) list
(** For arrays: last write wins, sorted by index. *)
