type t = {
  name : string;
  campaign : Once4all.Campaign.t;
  fuzzer : Baselines.Fuzzer.t;
}

let build ?(seed = 42) () =
  let base = Once4all.Campaign.prepare ~seed ~profile:Llm_sim.Profile.gpt4 () in
  let gemini =
    Once4all.Campaign.prepare ~seed ~profile:Llm_sim.Profile.gemini25pro ()
  in
  let claude = Once4all.Campaign.prepare ~seed ~profile:Llm_sim.Profile.claude45 () in
  [
    { name = "Once4All"; campaign = base; fuzzer = Baselines.Registry.once4all base };
    {
      name = "Once4All_w/oS";
      campaign = base;
      fuzzer = Baselines.Registry.once4all_wos base;
    };
    {
      name = "Once4All_Gemini";
      campaign = gemini;
      fuzzer =
        (let f = Baselines.Registry.once4all gemini in
         { f with Baselines.Fuzzer.name = "Once4All_Gemini" });
    };
    {
      name = "Once4All_Claude";
      campaign = claude;
      fuzzer =
        (let f = Baselines.Registry.once4all claude in
         { f with Baselines.Fuzzer.name = "Once4All_Claude" });
    };
  ]
