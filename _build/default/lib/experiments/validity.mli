(** §5.1 — impact of the self-correction mechanism: proportion of valid
    formulas per theory before and after correction, across LLM profiles. *)

type row = {
  theory : string;
  difficulty : float;
  initial_pct : float;
  final_pct : float;
  iterations : int;
}

type result = {
  profile : string;
  rows : row list;
  text : string;
}

val run : ?seed:int -> ?profile:Llm_sim.Profile.t -> ?max_iter:int -> unit -> result

val run_all_profiles : ?seed:int -> unit -> result list
(** gpt-4, gemini-2.5-pro, claude-4.5-sonnet (the RQ3 lineup). *)
