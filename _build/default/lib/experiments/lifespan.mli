(** Figure 5 — bug lifespan: how many confirmed bugs affect each release
    version of the two solvers. A bug affects a release when its trigger
    formula still fires there (equivalently, when the release's commit lies
    in the bug's live range), reproducing the paper's re-execution protocol
    (most bugs are trunk-only; three Zeal bugs predate the oldest release). *)

type row = {
  version : string;
  year : int;
  affected : int;
}

type result = {
  zeal_rows : row list;  (** + trunk as the last row *)
  cove_rows : row list;
  text : string;
}

val run : found:Solver.Bug_db.spec list -> result
(** [found] — the confirmed campaign bugs (from {!Bug_tables}). *)

val long_latent : found:Solver.Bug_db.spec list -> Solver.Bug_db.spec list
(** Bugs affecting the oldest release (the paper's ">6 years latent" set). *)
