(** The RQ3 variant lineup: Once4All, Once4All_w/oS (no skeletons), and the
    alternative-LLM variants (Gemini 2.5 Pro, Claude 4.5 Sonnet profiles). *)

type t = {
  name : string;
  campaign : Once4all.Campaign.t;
  fuzzer : Baselines.Fuzzer.t;
}

val build : ?seed:int -> unit -> t list
(** Prepares all four variants (each runs its own one-time generator
    construction). *)
