(** Plain-text rendering of the reproduced tables and figures. *)

val table : header:string list -> string list list -> string
(** Aligned ASCII table. *)

val series : title:string -> x_label:string -> (string * float list) list -> string
(** One row per named series, values aligned per x position — the textual
    form of a line chart. *)

val sparkline : float list -> string
(** Unicode mini-chart for quick visual inspection of a series. *)

val heading : string -> string

val pct : float -> string
