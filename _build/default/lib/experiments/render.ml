let pad width s =
  if String.length s >= width then s else s ^ String.make (width - String.length s) ' '

let table ~header rows =
  let all_rows = header :: rows in
  let n_cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all_rows in
  let col_width i =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row i with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all_rows
  in
  let widths = List.init n_cols col_width in
  let render_row row =
    List.mapi
      (fun i w ->
        let cell = Option.value (List.nth_opt row i) ~default:"" in
        pad w cell)
      widths
    |> String.concat "  "
    |> String.trim
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (render_row header :: sep :: List.map render_row rows)

let series ~title ~x_label named =
  let n = List.fold_left (fun acc (_, v) -> max acc (List.length v)) 0 named in
  let header = x_label :: List.init n (fun i -> string_of_int (i + 1)) in
  let rows =
    List.map
      (fun (name, values) ->
        name :: List.map (fun v -> Printf.sprintf "%.1f" v) values)
      named
  in
  title ^ "\n" ^ table ~header rows

let sparkline values =
  if values = [] then ""
  else (
    let lo = O4a_util.Stats.minimum values and hi = O4a_util.Stats.maximum values in
    let blocks = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                    "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |] in
    values
    |> List.map (fun v ->
           let t = if hi = lo then 1. else (v -. lo) /. (hi -. lo) in
           blocks.(max 0 (min 7 (int_of_float (t *. 7.99)))))
    |> String.concat "")

let heading text =
  let bar = String.make (String.length text) '=' in
  Printf.sprintf "%s\n%s" text bar

let pct v = Printf.sprintf "%.1f%%" v
