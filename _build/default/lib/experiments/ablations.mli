(** Ablation benches for the design choices DESIGN.md calls out (beyond the
    paper's own w/oS variant):

    - {b A1}: sort-aware variable adaptation on/off/always — does replacing
      generated variables with seed variables matter for bug finding?
    - {b A2}: self-correction budget sweep (max_iter 0/1/3/10) — how much of
      the validity lift needs how many refinement rounds? *)

type adapt_row = {
  adapt_prob : float;
  findings : int;
  distinct_bugs : int;
  solved_pct : float;
}

type adapt_result = {
  rows : adapt_row list;
  text : string;
}

val adaptation : ?seed:int -> ?budget:int -> unit -> adapt_result

type iter_row = {
  max_iter : int;
  mean_initial_pct : float;
  mean_final_pct : float;
  llm_calls : int;
}

type iter_result = {
  rows : iter_row list;
  text : string;
}

val iterations : ?seed:int -> unit -> iter_result

(** {1 5.3-extension benches} *)

type mode_row = {
  mode : string;
  findings : int;
  distinct_bugs : int;
  cove_line_pct : float;
}

type mode_result = {
  rows : mode_row list;
  text : string;
}

val mixed_sorts : ?seed:int -> ?budget:int -> unit -> mode_result
(** Boolean-only holes (the paper's configuration) vs typed holes. *)

val scheduling : ?seed:int -> ?budget:int -> unit -> mode_result
(** Uniform generator choice vs the coverage-guided bandit. *)
