lib/experiments/ablations.ml: Gensynth List Llm_sim O4a_coverage O4a_util Once4all Printf Render Seeds Solver Theories
