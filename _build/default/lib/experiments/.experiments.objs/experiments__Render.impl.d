lib/experiments/render.ml: Array List O4a_util Option Printf String
