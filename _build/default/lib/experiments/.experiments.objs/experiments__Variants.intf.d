lib/experiments/variants.mli: Baselines Once4all
