lib/experiments/variants.ml: Baselines Llm_sim Once4all
