lib/experiments/unique_bugs.ml: Baselines Hashtbl List O4a_coverage O4a_util Option Parser Printf Render Smtlib Solver String
