lib/experiments/render.mli:
