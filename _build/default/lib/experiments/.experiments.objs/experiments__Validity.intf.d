lib/experiments/validity.mli: Llm_sim
