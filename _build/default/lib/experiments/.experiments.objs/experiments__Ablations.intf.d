lib/experiments/ablations.mli:
