lib/experiments/lifespan.ml: List Printf Render Solver String
