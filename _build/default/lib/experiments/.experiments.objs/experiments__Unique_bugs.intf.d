lib/experiments/unique_bugs.mli: Baselines Script Smtlib
