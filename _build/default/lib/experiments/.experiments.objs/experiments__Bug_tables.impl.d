lib/experiments/bug_tables.ml: List O4a_coverage Once4all Printf Render Seeds Solver String
