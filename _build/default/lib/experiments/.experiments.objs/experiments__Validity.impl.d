lib/experiments/validity.ml: Gensynth List Llm_sim Printf Render Solver Theories
