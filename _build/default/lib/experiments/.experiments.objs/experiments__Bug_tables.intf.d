lib/experiments/bug_tables.mli: Once4all Solver
