lib/experiments/lifespan.mli: Solver
