lib/experiments/coverage_growth.mli: Baselines Script Smtlib
