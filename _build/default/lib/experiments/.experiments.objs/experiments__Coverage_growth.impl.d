lib/experiments/coverage_growth.ml: Baselines Hashtbl List O4a_coverage O4a_util Option Printf Render Solver String
