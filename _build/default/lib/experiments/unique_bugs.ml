open Smtlib
module Coverage = O4a_coverage.Coverage
module Engine = Solver.Engine
module Runner = Solver.Runner
module Version = Solver.Version
module Fuzzer = Baselines.Fuzzer

type row = {
  fuzzer : string;
  unique_bugs : int;
  correcting_commits : (string * int) list;
  candidates : int;
}

type result = {
  rows : row list;
  text : string;
}

let solver_label = function Coverage.Zeal -> "zeal" | Coverage.Cove -> "cove"

(* the bug-free reference verdict, memoized per script *)
let reference_verdict ~max_steps pure_engine script =
  match Runner.run ~max_steps pure_engine script with
  | Runner.R_sat _ -> Some `Sat
  | Runner.R_unsat -> Some `Unsat
  | _ -> None

(* does this solver misbehave on the script at the given commit? *)
let misbehaves ~max_steps tag script reference commit =
  let engine = Engine.make tag ~commit in
  if not (Engine.supports_script engine script) then false
  else (
    match Runner.run ~max_steps engine script with
    | Runner.R_crash _ -> true
    | Runner.R_sat model -> (
      match Solver.Model.check script model with
      | Solver.Model.Fails _ -> true
      | _ -> reference = Some `Unsat)
    | Runner.R_unsat -> reference = Some `Sat
    | Runner.R_unknown _ | Runner.R_error _ | Runner.R_timeout -> false)

let run ?(seed = 77) ?(budget = 1200) ?(max_bisects = 40) ?(max_steps = 40_000)
    ~title ~fuzzers ~seeds () =
  let zeal_release =
    Option.get (Version.release_commit Version.zeal_history "4.13.0")
  in
  let cove_release = Option.get (Version.release_commit Version.cove_history "1.2.0") in
  let release_commit = function
    | Coverage.Zeal -> zeal_release
    | Coverage.Cove -> cove_release
  in
  let pure_zeal = Engine.pure Coverage.Zeal in
  let pure_cove = Engine.pure Coverage.Cove in
  let pure_for = function Coverage.Zeal -> pure_zeal | Coverage.Cove -> pure_cove in
  let run_fuzzer (fuzzer : Fuzzer.t) =
    let rng = O4a_util.Rng.create (seed + Hashtbl.hash fuzzer.Fuzzer.name) in
    let cases = budget * fuzzer.Fuzzer.tests_per_tick / 100 in
    let candidates = ref [] in
    for _ = 1 to cases do
      let source = fuzzer.Fuzzer.generate ~rng ~seeds in
      match Parser.parse_script source with
      | Error _ -> ()
      | Ok script ->
        List.iter
          (fun tag ->
            if List.length !candidates < max_bisects then (
              let reference = reference_verdict ~max_steps (pure_for tag) script in
              if misbehaves ~max_steps tag script reference (release_commit tag) then
                candidates := (tag, script, reference) :: !candidates))
          [ Coverage.Zeal; Coverage.Cove ]
    done;
    let commits =
      List.filter_map
        (fun (tag, script, reference) ->
          let history = Version.history_of tag in
          Version.bisect_fix ~known:(release_commit tag)
            ~triggers:(fun c -> misbehaves ~max_steps tag script reference c)
            history
          |> Option.map (fun c -> (solver_label tag, c)))
        !candidates
      |> O4a_util.Listx.dedup
    in
    {
      fuzzer = fuzzer.Fuzzer.name;
      unique_bugs = List.length commits;
      correcting_commits = commits;
      candidates = List.length !candidates;
    }
  in
  let rows = List.map run_fuzzer fuzzers in
  let text =
    Render.heading title ^ "\n"
    ^ Render.table
        ~header:[ "fuzzer"; "unique known bugs"; "candidates"; "correcting commits" ]
        (List.map
           (fun r ->
             [
               r.fuzzer;
               string_of_int r.unique_bugs;
               string_of_int r.candidates;
               String.concat ", "
                 (List.map (fun (s, c) -> Printf.sprintf "%s@%d" s c) r.correcting_commits);
             ])
           rows)
  in
  { rows; text }
