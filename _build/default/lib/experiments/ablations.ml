type adapt_row = {
  adapt_prob : float;
  findings : int;
  distinct_bugs : int;
  solved_pct : float;
}

type adapt_result = {
  rows : adapt_row list;
  text : string;
}

let adaptation ?(seed = 42) ?(budget = 1500) () =
  let campaign = Once4all.Campaign.prepare ~seed () in
  let seeds =
    Seeds.Corpus.filtered ~zeal:campaign.Once4all.Campaign.zeal
      ~cove:campaign.Once4all.Campaign.cove ()
  in
  let rows =
    List.map
      (fun adapt_prob ->
        let config =
          { Once4all.Fuzz.default_config with Once4all.Fuzz.adapt_prob }
        in
        let report =
          Once4all.Campaign.fuzz ~seed:(seed + 1) ~config campaign ~seeds ~budget
        in
        let s = report.Once4all.Campaign.stats in
        {
          adapt_prob;
          findings = List.length s.Once4all.Fuzz.findings;
          distinct_bugs = List.length report.Once4all.Campaign.found_bug_ids;
          solved_pct =
            (if s.Once4all.Fuzz.tests = 0 then 0.
             else
               100. *. float_of_int s.Once4all.Fuzz.solved
               /. float_of_int s.Once4all.Fuzz.tests);
        })
      [ 0.0; 0.55; 1.0 ]
  in
  let text =
    Render.heading "Ablation A1: sort-aware variable adaptation"
    ^ "\n"
    ^ Render.table
        ~header:[ "adapt prob"; "bug-triggering"; "distinct bugs"; "solved %" ]
        (List.map
           (fun r ->
             [
               Printf.sprintf "%.2f" r.adapt_prob;
               string_of_int r.findings;
               string_of_int r.distinct_bugs;
               Render.pct r.solved_pct;
             ])
           rows)
  in
  { rows; text }

type iter_row = {
  max_iter : int;
  mean_initial_pct : float;
  mean_final_pct : float;
  llm_calls : int;
}

type iter_result = {
  rows : iter_row list;
  text : string;
}

let iterations ?(seed = 42) () =
  let rows =
    List.map
      (fun max_iter ->
        let client = Llm_sim.Client.create ~seed Llm_sim.Profile.gpt4 in
        let solvers = [ Solver.Engine.zeal (); Solver.Engine.cove () ] in
        let reports =
          List.map
            (fun theory ->
              snd (Gensynth.Synthesis.construct ~max_iter ~client ~solvers theory))
            Theories.Theory.all
        in
        let mean extract =
          O4a_util.Stats.mean
            (List.map
               (fun (r : Gensynth.Synthesis.report) ->
                 100. *. float_of_int (extract r)
                 /. float_of_int r.Gensynth.Synthesis.sample_num)
               reports)
        in
        {
          max_iter;
          mean_initial_pct = mean (fun r -> r.Gensynth.Synthesis.initial_valid);
          mean_final_pct = mean (fun r -> r.Gensynth.Synthesis.final_valid);
          llm_calls = Llm_sim.Client.call_count client;
        })
      [ 0; 1; 3; 10 ]
  in
  let text =
    Render.heading "Ablation A2: self-correction iteration budget"
    ^ "\n"
    ^ Render.table
        ~header:[ "max_iter"; "mean initial valid"; "mean final valid"; "LLM calls" ]
        (List.map
           (fun r ->
             [
               string_of_int r.max_iter;
               Render.pct r.mean_initial_pct;
               Render.pct r.mean_final_pct;
               string_of_int r.llm_calls;
             ])
           rows)
  in
  { rows; text }

(* ------------------------------------------------------------------ *)
(* A3: mixed-sorts holes (paper 5.3, term-type extension)              *)
(* A4: coverage-guided generator scheduling (paper 5.3, solver-driven  *)
(*     signals)                                                        *)
(* ------------------------------------------------------------------ *)

type mode_row = {
  mode : string;
  findings : int;
  distinct_bugs : int;
  cove_line_pct : float;
}

type mode_result = {
  rows : mode_row list;
  text : string;
}

let run_mode ~campaign ~seeds ~seed ~budget ~mode ~config =
  O4a_coverage.Coverage.reset ();
  let report = Once4all.Campaign.fuzz ~seed ~config campaign ~seeds ~budget in
  let snapshot = O4a_coverage.Coverage.snapshot O4a_coverage.Coverage.Cove in
  {
    mode;
    findings = List.length report.Once4all.Campaign.stats.Once4all.Fuzz.findings;
    distinct_bugs = List.length report.Once4all.Campaign.found_bug_ids;
    cove_line_pct = O4a_coverage.Coverage.line_pct snapshot;
  }

let render_modes ~title rows =
  Render.heading title
  ^ "\n"
  ^ Render.table
      ~header:[ "mode"; "bug-triggering"; "distinct bugs"; "cove line cov" ]
      (List.map
         (fun r ->
           [ r.mode; string_of_int r.findings; string_of_int r.distinct_bugs;
             Render.pct r.cove_line_pct ])
         rows)

let mixed_sorts ?(seed = 42) ?(budget = 1500) () =
  let campaign = Once4all.Campaign.prepare ~seed () in
  let seeds =
    Seeds.Corpus.filtered ~zeal:campaign.Once4all.Campaign.zeal
      ~cove:campaign.Once4all.Campaign.cove ()
  in
  let base = Once4all.Fuzz.default_config in
  let rows =
    [
      run_mode ~campaign ~seeds ~seed:(seed + 1) ~budget ~mode:"boolean holes (paper)"
        ~config:base;
      run_mode ~campaign ~seeds ~seed:(seed + 1) ~budget ~mode:"mixed-sort holes (5.3)"
        ~config:{ base with Once4all.Fuzz.mixed_sorts = true };
    ]
  in
  { rows; text = render_modes ~title:"Extension A3: mixed-sort holes" rows }

let scheduling ?(seed = 42) ?(budget = 1500) () =
  let campaign = Once4all.Campaign.prepare ~seed () in
  let seeds =
    Seeds.Corpus.filtered ~zeal:campaign.Once4all.Campaign.zeal
      ~cove:campaign.Once4all.Campaign.cove ()
  in
  let base = Once4all.Fuzz.default_config in
  let rows =
    [
      run_mode ~campaign ~seeds ~seed:(seed + 1) ~budget ~mode:"uniform (paper)"
        ~config:base;
      run_mode ~campaign ~seeds ~seed:(seed + 1) ~budget ~mode:"coverage-guided (5.3)"
        ~config:{ base with Once4all.Fuzz.schedule = Once4all.Fuzz.Coverage_guided };
    ]
  in
  {
    rows;
    text = render_modes ~title:"Extension A4: coverage-guided generator scheduling" rows;
  }
