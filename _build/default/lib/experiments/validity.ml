module Theory = Theories.Theory
module Synthesis = Gensynth.Synthesis

type row = {
  theory : string;
  difficulty : float;
  initial_pct : float;
  final_pct : float;
  iterations : int;
}

type result = {
  profile : string;
  rows : row list;
  text : string;
}

let run ?(seed = 42) ?(profile = Llm_sim.Profile.gpt4) ?max_iter () =
  let client = Llm_sim.Client.create ~seed profile in
  let solvers = [ Solver.Engine.zeal (); Solver.Engine.cove () ] in
  let rows =
    List.map
      (fun (theory : Theory.info) ->
        let _, report = Synthesis.construct ?max_iter ~client ~solvers theory in
        let pct n = 100. *. float_of_int n /. float_of_int report.Synthesis.sample_num in
        {
          theory = theory.Theory.key;
          difficulty = theory.Theory.difficulty;
          initial_pct = pct report.Synthesis.initial_valid;
          final_pct = pct report.Synthesis.final_valid;
          iterations = report.Synthesis.iterations;
        })
      Theory.all
  in
  let text =
    Render.heading
      (Printf.sprintf "Validity before/after self-correction (%s)"
         profile.Llm_sim.Profile.name)
    ^ "\n"
    ^ Render.table
        ~header:[ "theory"; "difficulty"; "initial valid"; "final valid"; "iters" ]
        (List.map
           (fun r ->
             [
               r.theory;
               Printf.sprintf "%.2f" r.difficulty;
               Render.pct r.initial_pct;
               Render.pct r.final_pct;
               string_of_int r.iterations;
             ])
           rows)
    ^ "\n(paper: hard theories <30% initially, >80% after; reals >90% initially, \
       ~100% after)"
  in
  { profile = profile.Llm_sim.Profile.name; rows; text }

let run_all_profiles ?(seed = 42) () =
  List.map (fun p -> run ~seed ~profile:p ()) Llm_sim.Profile.all
