module Bug_db = Solver.Bug_db
module Version = Solver.Version

type row = {
  version : string;
  year : int;
  affected : int;
}

type result = {
  zeal_rows : row list;
  cove_rows : row list;
  text : string;
}

let confirmed (s : Bug_db.spec) =
  match s.Bug_db.status with
  | Bug_db.Fixed | Bug_db.Confirmed -> true
  | Bug_db.Reported | Bug_db.Duplicate_of _ -> false

let affects (s : Bug_db.spec) commit =
  s.Bug_db.introduced <= commit
  && match s.Bug_db.fixed_commit with None -> true | Some f -> commit < f

let rows_for found history =
  let bugs =
    List.filter
      (fun (s : Bug_db.spec) -> s.Bug_db.solver = history.Version.solver && confirmed s)
      found
  in
  let release_rows =
    List.map
      (fun (r : Version.release) ->
        {
          version = r.Version.version;
          year = r.Version.year;
          affected = List.length (List.filter (fun s -> affects s r.Version.commit) bugs);
        })
      history.Version.releases
  in
  release_rows
  @ [
      {
        version = "trunk";
        year = 2026;
        affected = List.length (List.filter (fun s -> affects s history.Version.trunk) bugs);
      };
    ]

let long_latent ~found =
  List.filter
    (fun (s : Bug_db.spec) ->
      confirmed s
      &&
      let history = Version.history_of s.Bug_db.solver in
      match history.Version.releases with
      | oldest :: _ -> affects s oldest.Version.commit
      | [] -> false)
    found

let run ~found =
  let zeal_rows = rows_for found Version.zeal_history in
  let cove_rows = rows_for found Version.cove_history in
  let render name rows =
    Render.table
      ~header:[ name ^ " version"; "year"; "# confirmed bugs affecting it" ]
      (List.map
         (fun r -> [ r.version; string_of_int r.year; string_of_int r.affected ])
         rows)
  in
  let latent = long_latent ~found in
  let text =
    Render.heading "Figure 5: confirmed bugs affecting each release version"
    ^ "\n" ^ render "Zeal" zeal_rows ^ "\n\n" ^ render "Cove" cove_rows ^ "\n\n"
    ^ Printf.sprintf
        "long-latent bugs (present in the oldest release): %d (paper: 3 in Z3)\n%s"
        (List.length latent)
        (String.concat "\n"
           (List.map
              (fun (s : Bug_db.spec) ->
                Printf.sprintf "  %s: %s" s.Bug_db.id s.Bug_db.summary)
              latent))
  in
  { zeal_rows; cove_rows; text }
