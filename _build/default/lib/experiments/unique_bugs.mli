(** Figures 7 and 9 — unique known bugs detected per fuzzer, identified by
    the paper's Correcting Commit method.

    Each fuzzer runs against the {e latest release} versions of the two
    solvers (Zeal 4.13.0, Cove 1.2.0). For every misbehaving formula
    (crash, verdict differing from the bug-free reference engine, or an
    invalid model), the fix commit is located by binary search over the
    commit history; distinct correcting commits count as distinct bugs.
    Formulas that still misbehave at trunk are excluded (the experiment
    targets already-resolved bugs, per §4.3). *)

open Smtlib

type row = {
  fuzzer : string;
  unique_bugs : int;
  correcting_commits : (string * int) list;  (** (solver name, commit) *)
  candidates : int;  (** misbehaving formulas observed before bisection *)
}

type result = {
  rows : row list;
  text : string;
}

val run :
  ?seed:int ->
  ?budget:int ->
  ?max_bisects:int ->
  ?max_steps:int ->
  title:string ->
  fuzzers:Baselines.Fuzzer.t list ->
  seeds:Script.t list ->
  unit ->
  result
(** Defaults: budget 1200 cases per fuzzer, at most 40 bisections each. *)
