(* once4all_cli — the Once4All fuzzing tool.

   Subcommands:
     construct   run Algorithm 1 (generator construction + self-correction)
     fuzz        run a differential fuzzing campaign (Algorithm 2)
     reduce      delta-debug a bug-triggering .smt2 file
     lineup      list the comparison fuzzers and variants *)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let profile_of_name name =
  match Llm_sim.Profile.find name with
  | Some p -> p
  | None ->
    Printf.eprintf "unknown profile '%s', using gpt-4\n" name;
    Llm_sim.Profile.gpt4

(* ---------------- construct ---------------- *)

let construct seed profile_name verbose =
  let profile = profile_of_name profile_name in
  let client = Llm_sim.Client.create ~seed profile in
  let solvers = [ Solver.Engine.zeal (); Solver.Engine.cove () ] in
  Printf.printf "Constructing generators with %s (seed %d)...\n\n"
    profile.Llm_sim.Profile.name seed;
  List.iter
    (fun theory ->
      let gen, report = Gensynth.Synthesis.construct ~client ~solvers theory in
      Printf.printf "%-14s initial %2d/%d  final %2d/%d  iterations %d%s\n"
        report.Gensynth.Synthesis.theory_key report.initial_valid report.sample_num
        report.final_valid report.sample_num report.iterations
        (if Gensynth.Generator.is_clean gen then "" else "  (residual defects)");
      if verbose then (
        let rng = O4a_util.Rng.create (seed * 31) in
        match Gensynth.Generator.generate gen ~rng with
        | e ->
          List.iter (fun d -> Printf.printf "    %s\n" d) e.Gensynth.Generator.decls;
          Printf.printf "    term: %s\n" e.Gensynth.Generator.term
        | exception Failure m -> Printf.printf "    (sample failed: %s)\n" m))
    Theories.Theory.all;
  Printf.printf "\nLLM usage: %d calls, %d tokens (one-time investment)\n"
    (Llm_sim.Client.call_count client)
    (Llm_sim.Client.token_count client);
  0

(* ---------------- fuzz ---------------- *)

let fuzz seed budget profile_name no_skeletons show_formulas verbose =
  setup_logs verbose;
  let profile = profile_of_name profile_name in
  let campaign = Once4all.Campaign.prepare ~seed ~profile () in
  let seeds =
    Seeds.Corpus.filtered ~zeal:campaign.Once4all.Campaign.zeal
      ~cove:campaign.Once4all.Campaign.cove ()
  in
  Printf.printf "Generators ready (%d); fuzzing with %d seeds, budget %d...\n%!"
    (List.length campaign.Once4all.Campaign.generators)
    (List.length seeds) budget;
  let config =
    { Once4all.Fuzz.default_config with Once4all.Fuzz.use_skeletons = not no_skeletons }
  in
  let report = Once4all.Campaign.fuzz ~seed:(seed + 1) ~config campaign ~seeds ~budget in
  let stats = report.Once4all.Campaign.stats in
  Printf.printf "tests: %d  parse-ok: %d  solved: %d  bug-triggering: %d\n"
    stats.Once4all.Fuzz.tests stats.parse_ok stats.solved
    (List.length stats.findings);
  Printf.printf "\n%d de-duplicated issues:\n" (List.length report.clusters);
  List.iter
    (fun (c : Once4all.Dedup.cluster) ->
      Printf.printf "  [%s] %s  x%d%s\n"
        (Solver.Bug_db.kind_to_string c.Once4all.Dedup.kind)
        c.Once4all.Dedup.key c.count
        (match c.bug_id with Some id -> "  -> " ^ id | None -> "");
      if show_formulas then
        print_endline
          (O4a_util.Strx.indent 6 c.representative.Once4all.Dedup.source))
    report.clusters;
  0

(* ---------------- reduce ---------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let reduce path =
  let source = read_file path in
  match Smtlib.Parser.parse_script source with
  | Error e ->
    Printf.eprintf "parse error: %s\n" (Smtlib.Parser.error_message e);
    1
  | Ok script ->
    let zeal = Solver.Engine.zeal () in
    let cove = Solver.Engine.cove () in
    let signature_of script =
      match
        Once4all.Oracle.test ~zeal ~cove ~source:(Smtlib.Printer.script script) ()
      with
      | { Once4all.Oracle.finding = Some f; _ } -> Some f.Once4all.Oracle.signature
      | _ -> None
    in
    (match signature_of script with
    | None ->
      print_endline "input does not trigger any bug; nothing to reduce";
      1
    | Some signature ->
      Printf.printf "reducing against signature: %s\n%!" signature;
      let reduced, stats =
        Reduce_kit.Ddsmt.reduce
          ~still_triggers:(fun candidate -> signature_of candidate = Some signature)
          script
      in
      Printf.printf "size %d -> %d nodes (%d probes)\n\n"
        stats.Reduce_kit.Ddsmt.initial_size stats.final_size stats.probes;
      print_endline (Smtlib.Printer.script reduced);
      0)

(* ---------------- report ---------------- *)

let report seed budget =
  let campaign = Once4all.Campaign.prepare ~seed () in
  let seeds =
    Seeds.Corpus.filtered ~zeal:campaign.Once4all.Campaign.zeal
      ~cove:campaign.Once4all.Campaign.cove ()
  in
  Printf.printf "fuzzing (budget %d) before writing reports...\n%!" budget;
  let r = Once4all.Campaign.fuzz ~seed:(seed + 1) campaign ~seeds ~budget in
  print_endline
    (Once4all.Report.render_campaign ~zeal:campaign.Once4all.Campaign.zeal
       ~cove:campaign.Once4all.Campaign.cove r.Once4all.Campaign.clusters);
  0

(* ---------------- lineup ---------------- *)

let lineup () =
  let client = Llm_sim.Client.create Llm_sim.Profile.gpt4 in
  print_endline "Comparison fuzzers (RQ2):";
  List.iter
    (fun (f : Baselines.Fuzzer.t) ->
      Printf.printf "  %-12s throughput %3d/100\n" f.Baselines.Fuzzer.name
        f.tests_per_tick)
    (Baselines.Registry.baselines ~client);
  print_endline "Variants (RQ3): Once4All, Once4All_w/oS, Once4All_Gemini, Once4All_Claude";
  0

(* ---------------- command wiring ---------------- *)

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N")
let profile_arg =
  Arg.(value & opt string "gpt-4" & info [ "profile" ] ~docv:"NAME"
         ~doc:"LLM profile: gpt-4, gemini-2.5-pro, claude-4.5-sonnet")

let construct_cmd =
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"print a sample per theory") in
  Cmd.v
    (Cmd.info "construct" ~doc:"run LLM-assisted generator construction (Algorithm 1)")
    Term.(const construct $ seed_arg $ profile_arg $ verbose)

let fuzz_cmd =
  let budget = Arg.(value & opt int 2000 & info [ "budget" ] ~docv:"N" ~doc:"test cases") in
  let no_skel = Arg.(value & flag & info [ "no-skeletons" ] ~doc:"the w/oS ablation") in
  let show = Arg.(value & flag & info [ "show-formulas" ] ~doc:"print representative formulas") in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"log campaign progress") in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"run a skeleton-guided differential campaign (Algorithm 2)")
    Term.(const fuzz $ seed_arg $ budget $ profile_arg $ no_skel $ show $ verbose)

let reduce_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v (Cmd.info "reduce" ~doc:"delta-debug a bug-triggering formula")
    Term.(const reduce $ file)

let report_cmd =
  let budget = Arg.(value & opt int 800 & info [ "budget" ] ~docv:"N") in
  Cmd.v
    (Cmd.info "report" ~doc:"fuzz, then emit issue-style triage reports with reduced reproducers")
    Term.(const report $ seed_arg $ budget)

let lineup_cmd =
  Cmd.v (Cmd.info "lineup" ~doc:"list comparison fuzzers") Term.(const lineup $ const ())

let main =
  Cmd.group
    (Cmd.info "once4all" ~doc:"skeleton-guided SMT solver fuzzing with LLM-synthesized generators")
    [ construct_cmd; fuzz_cmd; reduce_cmd; report_cmd; lineup_cmd ]

let () = exit (Cmd.eval' main)
