#!/usr/bin/env bash
# Tier-1 verification: build, unit tests, and a CLI smoke run that exercises
# the telemetry pipeline end to end (fuzz --telemetry, then stats --strict).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== CLI smoke: fuzz 200 tests with telemetry =="
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT
dune exec bin/once4all_cli.exe -- fuzz --budget 200 --telemetry "$out/run.jsonl" \
  > "$out/fuzz.log"
grep -q "tests: 200" "$out/fuzz.log" || {
  echo "FAIL: fuzz did not report 200 tests"; cat "$out/fuzz.log"; exit 1; }

echo "== CLI smoke: stats --strict validates the JSONL log =="
dune exec bin/once4all_cli.exe -- stats --strict "$out/run.jsonl"

echo "OK"
