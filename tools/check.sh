#!/usr/bin/env bash
# Tier-1 verification: build, unit tests, and a CLI smoke run that exercises
# the telemetry pipeline end to end (fuzz --telemetry, then stats --strict).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== CLI smoke: fuzz 200 tests with telemetry =="
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT
dune exec bin/once4all_cli.exe -- fuzz --budget 200 --telemetry "$out/run.jsonl" \
  > "$out/fuzz.log"
grep -q "tests: 200" "$out/fuzz.log" || {
  echo "FAIL: fuzz did not report 200 tests"; cat "$out/fuzz.log"; exit 1; }

echo "== CLI smoke: stats --strict validates the JSONL log =="
dune exec bin/once4all_cli.exe -- stats --strict "$out/run.jsonl"

echo "== Parallel determinism: --jobs 2 reproduces --jobs 1 =="
dune exec bin/once4all_cli.exe -- fuzz --budget 400 --shard-size 100 --jobs 1 \
  > "$out/jobs1.log"
dune exec bin/once4all_cli.exe -- fuzz --budget 400 --shard-size 100 --jobs 2 \
  > "$out/jobs2.log"
diff "$out/jobs1.log" "$out/jobs2.log" || {
  echo "FAIL: --jobs 2 report differs from --jobs 1"; exit 1; }

echo "== Parallel telemetry: stats --strict on a --jobs 2 log =="
dune exec bin/once4all_cli.exe -- fuzz --budget 400 --shard-size 100 --jobs 2 \
  --telemetry "$out/jobs2.jsonl" > /dev/null
dune exec bin/once4all_cli.exe -- stats --strict "$out/jobs2.jsonl"

echo "== Repro bundles: jobs-invariant trace tree, repro.sh replays =="
dune exec bin/once4all_cli.exe -- fuzz --budget 400 --shard-size 100 --jobs 1 \
  --trace-dir "$out/t1" > /dev/null
dune exec bin/once4all_cli.exe -- fuzz --budget 400 --shard-size 100 --jobs 2 \
  --trace-dir "$out/t2" > /dev/null
diff -r "$out/t1" "$out/t2" || {
  echo "FAIL: --jobs 2 trace tree differs from --jobs 1"; exit 1; }
dune exec bin/once4all_cli.exe -- triage "$out/t1" > "$out/triage1.log"
dune exec bin/once4all_cli.exe -- triage "$out/t2" > "$out/triage2.log"
diff "$out/triage1.log" "$out/triage2.log" || {
  echo "FAIL: triage clusters differ between --jobs 1 and --jobs 2"; exit 1; }
# head closing the pipe early can SIGPIPE sort/find under pipefail
repro="$(find "$out/t1" -name repro.sh | sort | head -n 1)" || true
[ -n "$repro" ] || { echo "FAIL: campaign wrote no repro bundles"; exit 1; }
ONCE4ALL="$PWD/_build/default/bin/once4all_cli.exe" "$repro" > "$out/repro.log" || {
  echo "FAIL: $repro exited nonzero"; cat "$out/repro.log"; exit 1; }
grep -q "expected signature reproduced" "$out/repro.log" || {
  echo "FAIL: repro.sh did not reproduce its finding"; cat "$out/repro.log"; exit 1; }

echo "== Checkpoint/resume: stop after 2 shards, resume, same report =="
dune exec bin/once4all_cli.exe -- fuzz --budget 400 --shard-size 100 --jobs 1 \
  --checkpoint "$out/cp.json" --stop-after 2 > /dev/null
dune exec bin/once4all_cli.exe -- resume --checkpoint "$out/cp.json" --jobs 2 \
  > "$out/resumed.log"
grep -v '^resumed ' "$out/resumed.log" | diff "$out/jobs1.log" - || {
  echo "FAIL: resumed report differs from the uninterrupted run"; exit 1; }

echo "== Chaos determinism: --chaos all --jobs 4 reproduces --jobs 1 =="
dune exec bin/once4all_cli.exe -- fuzz --budget 400 --shard-size 100 --jobs 1 \
  --chaos all --chaos-seed 5 --trace-dir "$out/c1" > "$out/chaos1.log"
dune exec bin/once4all_cli.exe -- fuzz --budget 400 --shard-size 100 --jobs 4 \
  --chaos all --chaos-seed 5 --trace-dir "$out/c4" > "$out/chaos4.log"
# the report is identical up to the trace-dir path it names
diff <(grep -v '^wrote ' "$out/chaos1.log") <(grep -v '^wrote ' "$out/chaos4.log") || {
  echo "FAIL: chaos --jobs 4 report differs from --jobs 1"; exit 1; }
diff -r "$out/c1" "$out/c4" || {
  echo "FAIL: chaos --jobs 4 trace tree differs from --jobs 1"; exit 1; }

echo "== Chaos kill/resume: resumed chaos run matches uninterrupted =="
dune exec bin/once4all_cli.exe -- fuzz --budget 400 --shard-size 100 --jobs 1 \
  --chaos all --chaos-seed 5 --checkpoint "$out/ccp.json" --stop-after 2 \
  > /dev/null
dune exec bin/once4all_cli.exe -- resume --checkpoint "$out/ccp.json" --jobs 2 \
  > "$out/cresumed.log"
grep -v '^resumed ' "$out/cresumed.log" | diff <(grep -v '^wrote ' "$out/chaos1.log") - || {
  echo "FAIL: resumed chaos report differs from the uninterrupted chaos run"; exit 1; }

echo "== Chaos quarantine: rate 1.0 quarantines every shard, exits 0 =="
dune exec bin/once4all_cli.exe -- fuzz --budget 200 --shard-size 100 --jobs 2 \
  --chaos workers --chaos-rate 1.0 --chaos-seed 3 --telemetry "$out/quar.jsonl" \
  > "$out/quar.log" || {
  echo "FAIL: quarantined campaign exited nonzero"; cat "$out/quar.log"; exit 1; }
grep -q "quarantined: 2 shards" "$out/quar.log" || {
  echo "FAIL: quarantine missing from the campaign report"; cat "$out/quar.log"; exit 1; }
dune exec bin/once4all_cli.exe -- stats "$out/quar.jsonl" > "$out/quarstats.log"
grep -q "quarantined shards:" "$out/quarstats.log" || {
  echo "FAIL: quarantine missing from stats"; cat "$out/quarstats.log"; exit 1; }

echo "== Corrupt checkpoint: resume fails with a byte-offset diagnostic =="
head -c "$(( $(wc -c < "$out/cp.json") / 2 ))" "$out/cp.json" > "$out/bad.json"
if dune exec bin/once4all_cli.exe -- resume --checkpoint "$out/bad.json" \
     > "$out/bad.log" 2>&1; then
  echo "FAIL: resume on a truncated checkpoint exited 0"; exit 1
fi
grep -q "byte offset" "$out/bad.log" || {
  echo "FAIL: diagnostic does not name the byte offset"; cat "$out/bad.log"; exit 1; }

cli="$PWD/_build/default/bin/once4all_cli.exe"

echo "== Graceful shutdown: SIGTERM drains, checkpoints, resumes identically =="
"$cli" fuzz --budget 2000 --shard-size 100 --jobs 2 \
  --checkpoint "$out/gfull_cp.json" > "$out/g_full.log"
"$cli" fuzz --budget 2000 --shard-size 100 --jobs 2 \
  --checkpoint "$out/gcp.json" > "$out/g_stop.log" &
gpid=$!
sleep 1
kill -TERM "$gpid" 2>/dev/null || true
wait "$gpid" || {
  echo "FAIL: SIGTERM-stopped campaign exited nonzero"; cat "$out/g_stop.log"; exit 1; }
grep -q "stopped gracefully" "$out/g_stop.log" || {
  echo "FAIL: campaign finished before the signal landed (or drain message missing)"
  cat "$out/g_stop.log"; exit 1; }
"$cli" resume --checkpoint "$out/gcp.json" --jobs 2 \
  > "$out/g_resumed.log"
grep -v '^resumed ' "$out/g_resumed.log" | diff "$out/g_full.log" - || {
  echo "FAIL: resume after SIGTERM differs from the uninterrupted run"; exit 1; }
# the resumed checkpoint's analytics series must equal the uninterrupted one
"$cli" analyze "$out/gfull_cp.json" --csv "$out/gfull.csv" > /dev/null
"$cli" analyze "$out/gcp.json" --csv "$out/gresumed.csv" > /dev/null
diff "$out/gfull.csv" "$out/gresumed.csv" || {
  echo "FAIL: analytics series after SIGTERM+resume differs from the \
uninterrupted run"; exit 1; }

echo "== Sick solver: breakers trip identically at --jobs 1 and --jobs 4 =="
sick_flags="--chaos solver_hang --chaos-rate 1.0 --chaos-seed 7 \
  --breaker-window 4 --breaker-threshold 2"
"$cli" fuzz --budget 400 --shard-size 100 --jobs 1 $sick_flags \
  --telemetry "$out/sick.jsonl" > "$out/sick1.log"
"$cli" fuzz --budget 400 --shard-size 100 --jobs 4 $sick_flags \
  --telemetry "$out/sick4.jsonl" > "$out/sick4.log"
# the reports are identical up to the telemetry path each names
diff <(grep -v '^telemetry written' "$out/sick1.log") \
     <(grep -v '^telemetry written' "$out/sick4.log") || {
  echo "FAIL: sick-solver --jobs 4 report differs from --jobs 1"; exit 1; }
awk '/^breakers:/ { if ($3 > 0 && $5 > 0) found = 1 }
     END { exit(found ? 0 : 1) }' "$out/sick1.log" || {
  echo "FAIL: expected at least one breaker trip and one re-close"
  cat "$out/sick1.log"; exit 1; }
dune exec bin/once4all_cli.exe -- stats --strict "$out/sick.jsonl" > /dev/null

echo "== Degraded oracle: open breakers never yield a soundness finding =="
# single-pattern greps: `grep | grep -q` would SIGPIPE under pipefail
grep -q '"event":"health.breaker".*"to":"open"' "$out/sick.jsonl" || {
  echo "FAIL: no breaker-open events in the sick-solver telemetry"; exit 1; }
grep -q '"event":"health.breaker".*"to":"closed"' "$out/sick.jsonl" || {
  echo "FAIL: no half-open probe ever re-closed a breaker"; exit 1; }
if grep -q '"event":"oracle.finding".*"kind":"soundness".*"mode":"degraded' \
     "$out/sick.jsonl"; then
  echo "FAIL: a degraded-mode (single-solver) soundness finding was reported"
  exit 1
fi

echo "== HUD purity: --progress changes no report and no telemetry =="
"$cli" fuzz --budget 400 --shard-size 100 --jobs 2 \
  --telemetry "$out/hud_off.jsonl" > "$out/hud_off.log"
"$cli" fuzz --budget 400 --shard-size 100 --jobs 2 --progress \
  --telemetry "$out/hud_on.jsonl" > "$out/hud_on.log" 2> /dev/null
# the reports are identical up to the telemetry path each names
diff <(grep -v '^telemetry written' "$out/hud_off.log") \
     <(grep -v '^telemetry written' "$out/hud_on.log") || {
  echo "FAIL: --progress changed the campaign report"; exit 1; }
diff <(grep -o '"event":"[^"]*"' "$out/hud_off.jsonl" | sort | uniq -c) \
     <(grep -o '"event":"[^"]*"' "$out/hud_on.jsonl" | sort | uniq -c) || {
  echo "FAIL: --progress changed the telemetry event stream"; exit 1; }

echo "== Campaign server: concurrent jobs byte-identical to standalone =="
ssock="$out/srv.sock"
sstate="$out/srv-state"
"$cli" serve --socket "$ssock" --state-dir "$sstate" --pool 2 \
  > "$out/serve1.log" 2>&1 &
spid=$!
for _ in $(seq 1 100); do [ -S "$ssock" ] && break; sleep 0.1; done
"$cli" submit --socket "$ssock" --name s-alpha --seed 7 --budget 400 \
  --shard-size 100 --trace > /dev/null
"$cli" submit --socket "$ssock" --name s-beta --seed 11 --budget 400 \
  --shard-size 100 --trace > /dev/null
# watch exits when the job reaches a terminal state (late attach replays the
# backlog, so watching an already-finished job returns immediately)
"$cli" watch --socket "$ssock" s-alpha > /dev/null
"$cli" watch --socket "$ssock" s-beta > /dev/null
# live metrics snapshot of the finished job, before the server goes away
"$cli" metrics --socket "$ssock" s-alpha > "$out/sa_metrics.json"
"$cli" metrics --socket "$ssock" s-alpha --prom > "$out/sa_metrics.prom"
grep -q '^once4all_tests_total ' "$out/sa_metrics.prom" || {
  echo "FAIL: Prometheus exposition lacks once4all_tests_total"; exit 1; }
"$cli" shutdown --socket "$ssock" > /dev/null
wait "$spid" || { echo "FAIL: server exited nonzero"; cat "$out/serve1.log"; exit 1; }
"$cli" fuzz --seed 7 --budget 400 --shard-size 100 --jobs 2 \
  --trace-dir "$out/sa_trace" --checkpoint "$out/sa_cp.json" > "$out/sa.log"
"$cli" fuzz --seed 11 --budget 400 --shard-size 100 --jobs 2 \
  --trace-dir "$out/sb_trace" > "$out/sb.log"
# the reports are identical up to the trace-dir path each names
for pair in "s-alpha sa" "s-beta sb"; do
  job="${pair% *}"; std="${pair#* }"
  diff <(grep -v '^wrote ' "$sstate/$job/report.txt") \
       <(grep -v '^wrote ' "$out/$std.log") || {
    echo "FAIL: server report for $job differs from standalone fuzz"; exit 1; }
  diff -r "$sstate/$job/trace" "$out/${std}_trace" || {
    echo "FAIL: server trace tree for $job differs from standalone fuzz"; exit 1; }
done
# the live metrics snapshot is the same canonical JSON analyze reads from the
# equivalent standalone campaign's checkpoint
"$cli" analyze "$out/sa_cp.json" --json "$out/sa_analyze.json" > /dev/null
diff "$out/sa_metrics.json" "$out/sa_analyze.json" || {
  echo "FAIL: server metrics snapshot differs from analyze --json on the \
standalone checkpoint"; exit 1; }

echo "== Campaign server: SIGTERM drains both jobs, resume lands identically =="
"$cli" serve --socket "$ssock" --state-dir "$sstate" --pool 2 \
  > "$out/serve2.log" 2>&1 &
spid=$!
for _ in $(seq 1 100); do [ -S "$ssock" ] && break; sleep 0.1; done
"$cli" submit --socket "$ssock" --name s-gamma --seed 5 --budget 2000 \
  --shard-size 100 > /dev/null
"$cli" submit --socket "$ssock" --name s-delta --seed 9 --budget 2000 \
  --shard-size 100 > /dev/null
# wait until BOTH jobs have merged at least one shard, so each checkpoint
# resumes > 0 shards and the resumed-provenance line below is guaranteed
for _ in $(seq 1 300); do
  done_counts="$("$cli" jobs --socket "$ssock" \
    | awk '$1 ~ /^s-(gamma|delta)$/ { split($3, a, "/"); print a[1] }')"
  [ "$(echo "$done_counts" | sort -n | head -1)" -ge 1 ] 2>/dev/null && break
  sleep 0.2
done
kill -TERM "$spid" 2>/dev/null || true
wait "$spid" || { echo "FAIL: SIGTERM drain exited nonzero"; cat "$out/serve2.log"; exit 1; }
for job in s-gamma s-delta; do
  [ "$(cat "$sstate/$job/status")" = "paused" ] || {
    echo "FAIL: $job not paused after SIGTERM (campaign finished before the \
signal landed?)"; cat "$sstate/$job/status"; exit 1; }
  "$cli" checkpoint info "$sstate/$job/checkpoint.json" > /dev/null || {
    echo "FAIL: $job checkpoint unreadable after drain"; exit 1; }
done
"$cli" serve --socket "$ssock" --state-dir "$sstate" --pool 2 \
  > "$out/serve3.log" 2>&1 &
spid=$!
for _ in $(seq 1 100); do [ -S "$ssock" ] && break; sleep 0.1; done
"$cli" resume-job --socket "$ssock" s-gamma > /dev/null
"$cli" resume-job --socket "$ssock" s-delta > /dev/null
"$cli" watch --socket "$ssock" s-gamma > /dev/null
"$cli" watch --socket "$ssock" s-delta > /dev/null
"$cli" shutdown --socket "$ssock" > /dev/null
wait "$spid" || { echo "FAIL: server exited nonzero after resume"; exit 1; }
"$cli" fuzz --seed 5 --budget 2000 --shard-size 100 --jobs 2 > "$out/sg.log"
"$cli" fuzz --seed 9 --budget 2000 --shard-size 100 --jobs 2 > "$out/sd.log"
# resumed reports carry a "resumed N completed shards" provenance line
for pair in "s-gamma sg" "s-delta sd"; do
  job="${pair% *}"; std="${pair#* }"
  grep -q '^resumed ' "$sstate/$job/report.txt" || {
    echo "FAIL: $job report lacks the resumed-shards line"; exit 1; }
  diff <(grep -v '^resumed ' "$sstate/$job/report.txt") "$out/$std.log" || {
    echo "FAIL: resumed server report for $job differs from uninterrupted \
standalone run"; exit 1; }
done

echo "== Distributed fabric: TCP serve + remote worker equals standalone =="
dstate="$out/dist-state"
dsock="$out/dist.sock"
# --pool 0: the coordinator runs nothing locally, every shard must travel
# the wire to the remote worker pool and back
"$cli" serve --socket "$dsock" --state-dir "$dstate" --pool 0 \
  --tcp 127.0.0.1:0 > "$out/dserve.log" 2>&1 &
dpid=$!
for _ in $(seq 1 100); do [ -s "$dstate/tcp.port" ] && break; sleep 0.1; done
daddr="127.0.0.1:$(cat "$dstate/tcp.port")"
"$cli" worker --connect "$daddr" --slots 2 --connect-timeout 10 \
  > "$out/dworker.log" 2>&1 &
wpid=$!
"$cli" submit --connect "$daddr" --connect-timeout 10 --name d-alpha --seed 7 \
  --budget 400 --shard-size 100 --trace > /dev/null
"$cli" watch --connect "$daddr" d-alpha > /dev/null
"$cli" metrics --connect "$daddr" d-alpha > "$out/da_metrics.json"
# report, repro bundles, and analytics: the same bytes standalone fuzz
# produced above (reports differ only in the trace-dir path each names)
diff <(grep -v '^wrote ' "$dstate/d-alpha/report.txt") \
     <(grep -v '^wrote ' "$out/sa.log") || {
  echo "FAIL: TCP-fabric report differs from standalone fuzz"; exit 1; }
diff -r "$dstate/d-alpha/trace" "$out/sa_trace" || {
  echo "FAIL: TCP-fabric trace tree differs from standalone fuzz"; exit 1; }
diff "$out/da_metrics.json" "$out/sa_analyze.json" || {
  echo "FAIL: TCP-fabric metrics differ from analyze --json on the \
standalone checkpoint"; exit 1; }

echo "== Distributed fabric: worker SIGKILLed mid-lease, report unchanged =="
"$cli" worker --connect "$daddr" --slots 1 --connect-timeout 10 \
  > "$out/dvictim.log" 2>&1 &
vpid=$!
"$cli" submit --connect "$daddr" --name d-beta --seed 5 --budget 2000 \
  --shard-size 100 > /dev/null
sleep 1
kill -KILL "$vpid" 2>/dev/null || true
wait "$vpid" || true
"$cli" watch --connect "$daddr" d-beta > /dev/null
diff "$dstate/d-beta/report.txt" "$out/sg.log" || {
  echo "FAIL: report after SIGKILLed worker differs from standalone fuzz"; exit 1; }

echo "== Distributed fabric: --chaos net over TCP equals standalone chaos =="
"$cli" fuzz --seed 7 --budget 400 --shard-size 100 --jobs 1 \
  --chaos net --chaos-seed 2 > "$out/net1.log"
"$cli" fuzz --seed 7 --budget 400 --shard-size 100 --jobs 4 \
  --chaos net --chaos-seed 2 > "$out/net4.log"
diff "$out/net1.log" "$out/net4.log" || {
  echo "FAIL: --chaos net --jobs 4 report differs from --jobs 1"; exit 1; }
"$cli" submit --connect "$daddr" --name d-chaos --seed 7 --budget 400 \
  --shard-size 100 --chaos net --chaos-seed 2 > /dev/null
"$cli" watch --connect "$daddr" d-chaos > /dev/null
diff "$dstate/d-chaos/report.txt" "$out/net1.log" || {
  echo "FAIL: --chaos net over the TCP fabric differs from standalone"; exit 1; }
"$cli" shutdown --connect "$daddr" > /dev/null
wait "$wpid" || { echo "FAIL: remote worker exited nonzero on drain"; exit 1; }
wait "$dpid" || { echo "FAIL: coordinator exited nonzero"; cat "$out/dserve.log"; exit 1; }

echo "== Checkpoint info: typed diagnostics, exit 2 on unreadable files =="
if "$cli" checkpoint info "$out/does-not-exist.json" 2> "$out/ci.log"; then
  echo "FAIL: checkpoint info on a missing file exited 0"; exit 1
fi
if "$cli" stats "$out/does-not-exist.jsonl" 2>> "$out/ci.log"; then
  echo "FAIL: stats on a missing file exited 0"; exit 1
fi
grep -q "does-not-exist" "$out/ci.log" || {
  echo "FAIL: diagnostics do not name the offending path"; cat "$out/ci.log"; exit 1; }

echo "== Campaign analytics: analyze output byte-identical across --jobs =="
"$cli" fuzz --budget 400 --shard-size 100 --jobs 1 \
  --checkpoint "$out/an1.json" > /dev/null
"$cli" fuzz --budget 400 --shard-size 100 --jobs 4 \
  --checkpoint "$out/an4.json" > /dev/null
"$cli" analyze "$out/an1.json" --csv "$out/an1.csv" --json "$out/an1.series.json" \
  > "$out/an1.log"
"$cli" analyze "$out/an4.json" --csv "$out/an4.csv" --json "$out/an4.series.json" \
  > "$out/an4.log"
diff "$out/an1.csv" "$out/an4.csv" || {
  echo "FAIL: analyze --csv differs between --jobs 1 and --jobs 4"; exit 1; }
diff "$out/an1.series.json" "$out/an4.series.json" || {
  echo "FAIL: analyze --json differs between --jobs 1 and --jobs 4"; exit 1; }
# the rendered report too, up to the file paths each run names
diff <(grep -v '^checkpoint: \|^wrote ' "$out/an1.log") \
     <(grep -v '^checkpoint: \|^wrote ' "$out/an4.log") || {
  echo "FAIL: analyze report differs between --jobs 1 and --jobs 4"; exit 1; }
grep -q '^analytics: ' "$out/an1.log" || {
  echo "FAIL: analyze printed no analytics summary"; cat "$out/an1.log"; exit 1; }

echo "== Checkpoint info: v4 files name their observability artifacts =="
"$cli" checkpoint info "$out/an1.json" > "$out/an_info.log"
grep -q '^observability: telemetry no  trace no  analytics yes$' "$out/an_info.log" || {
  echo "FAIL: checkpoint info lacks the observability artifact flags"
  cat "$out/an_info.log"; exit 1; }
grep -q '^analytics: ' "$out/an_info.log" || {
  echo "FAIL: checkpoint info lacks the analytics sample count"
  cat "$out/an_info.log"; exit 1; }

echo "== Bench curves: deterministic coverage/yield artifact =="
# lands in gitignored bench/out/ where CI uploads it alongside the bench json
dune exec bench/main.exe -- curves -o bench/out/curves \
  --budget 400 --shard-size 100 --jobs 1,2
for f in series.csv analytics.json metrics.prom; do
  [ -s "bench/out/curves/$f" ] || {
    echo "FAIL: curves artifact missing bench/out/curves/$f"; exit 1; }
done

echo "== Bench throughput: regression gate vs committed trajectory =="
# latest committed trajectory point; the fresh json lands in gitignored
# bench/out/ where CI picks it up as an artifact
baseline="$(ls BENCH_*.json 2>/dev/null | sort | tail -n 1)" || true
if [ -n "${baseline:-}" ]; then
  dune exec bench/main.exe -- throughput -o bench/out/bench-fresh.json \
    --check "$baseline"
else
  echo "(no committed BENCH_*.json yet; gate skipped)"
fi

echo "OK"
