#!/usr/bin/env bash
# Tier-1 verification: build, unit tests, and a CLI smoke run that exercises
# the telemetry pipeline end to end (fuzz --telemetry, then stats --strict).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== CLI smoke: fuzz 200 tests with telemetry =="
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT
dune exec bin/once4all_cli.exe -- fuzz --budget 200 --telemetry "$out/run.jsonl" \
  > "$out/fuzz.log"
grep -q "tests: 200" "$out/fuzz.log" || {
  echo "FAIL: fuzz did not report 200 tests"; cat "$out/fuzz.log"; exit 1; }

echo "== CLI smoke: stats --strict validates the JSONL log =="
dune exec bin/once4all_cli.exe -- stats --strict "$out/run.jsonl"

echo "== Parallel determinism: --jobs 2 reproduces --jobs 1 =="
dune exec bin/once4all_cli.exe -- fuzz --budget 400 --shard-size 100 --jobs 1 \
  --progress 0 > "$out/jobs1.log"
dune exec bin/once4all_cli.exe -- fuzz --budget 400 --shard-size 100 --jobs 2 \
  --progress 0 > "$out/jobs2.log"
diff "$out/jobs1.log" "$out/jobs2.log" || {
  echo "FAIL: --jobs 2 report differs from --jobs 1"; exit 1; }

echo "== Parallel telemetry: stats --strict on a --jobs 2 log =="
dune exec bin/once4all_cli.exe -- fuzz --budget 400 --shard-size 100 --jobs 2 \
  --telemetry "$out/jobs2.jsonl" --progress 0 > /dev/null
dune exec bin/once4all_cli.exe -- stats --strict "$out/jobs2.jsonl"

echo "== Checkpoint/resume: stop after 2 shards, resume, same report =="
dune exec bin/once4all_cli.exe -- fuzz --budget 400 --shard-size 100 --jobs 1 \
  --checkpoint "$out/cp.json" --stop-after 2 --progress 0 > /dev/null
dune exec bin/once4all_cli.exe -- resume --checkpoint "$out/cp.json" --jobs 2 \
  --progress 0 > "$out/resumed.log"
grep -v '^resumed ' "$out/resumed.log" | diff "$out/jobs1.log" - || {
  echo "FAIL: resumed report differs from the uninterrupted run"; exit 1; }

echo "OK"
