module Rng = O4a_util.Rng

type site =
  | Solver_hang
  | Solver_crash
  | Sink_write
  | Worker_death
  | Checkpoint_corrupt
  | Conn_drop
  | Stream_stall
  | Lease_dup

(* new sites append with fresh codes: a site's fault-plan stream is keyed by
   its code, so older sites keep their decisions under any existing chaos
   seed *)
let all_sites =
  [
    Solver_hang;
    Solver_crash;
    Sink_write;
    Worker_death;
    Checkpoint_corrupt;
    Conn_drop;
    Stream_stall;
    Lease_dup;
  ]

let n_sites = List.length all_sites

let site_code = function
  | Solver_hang -> 0
  | Solver_crash -> 1
  | Sink_write -> 2
  | Worker_death -> 3
  | Checkpoint_corrupt -> 4
  | Conn_drop -> 5
  | Stream_stall -> 6
  | Lease_dup -> 7

let site_name = function
  | Solver_hang -> "solver_hang"
  | Solver_crash -> "solver_crash"
  | Sink_write -> "sink_write"
  | Worker_death -> "worker_death"
  | Checkpoint_corrupt -> "checkpoint_corrupt"
  | Conn_drop -> "conn_drop"
  | Stream_stall -> "stream_stall"
  | Lease_dup -> "lease_dup"

let site_of_name = function
  | "solver_hang" -> Some Solver_hang
  | "solver_crash" -> Some Solver_crash
  | "sink_write" -> Some Sink_write
  | "worker_death" -> Some Worker_death
  | "checkpoint_corrupt" -> Some Checkpoint_corrupt
  | "conn_drop" -> Some Conn_drop
  | "stream_stall" -> Some Stream_stall
  | "lease_dup" -> Some Lease_dup
  | _ -> None

type profile = Off | Solver | Io | Workers | Net | All | Sick_solver

let net_sites = [ Conn_drop; Stream_stall; Lease_dup ]

let profile_sites = function
  | Off -> []
  | Solver -> [ Solver_hang; Solver_crash ]
  | Io -> [ Sink_write; Checkpoint_corrupt ]
  | Workers -> [ Worker_death ]
  | Net -> net_sites
  | All -> all_sites
  | Sick_solver -> [ Solver_hang ]

let profile_to_string = function
  | Off -> "off"
  | Solver -> "solver"
  | Io -> "io"
  | Workers -> "workers"
  | Net -> "net"
  | All -> "all"
  | Sick_solver -> "solver_hang"

let profile_of_string = function
  | "off" -> Some Off
  | "solver" -> Some Solver
  | "io" -> Some Io
  | "workers" -> Some Workers
  | "net" -> Some Net
  | "all" -> Some All
  | "solver_hang" -> Some Sick_solver
  | _ -> None

type plan = { chaos_seed : int; profile : profile; rate : float }

let default_rate = 0.5
let plan ?(rate = default_rate) ?(chaos_seed = 1) profile =
  { chaos_seed; profile; rate }

let enabled p = p.profile <> Off

(* The sick-solver profile simulates a solver gone sick for a stretch of the
   campaign rather than corrupting a single answer: its hangs are the
   subject under test for the health/breaker layer, not pollution, so they
   do not taint the attempt and the shard's results merge as-is. *)
let taints p _site = p.profile <> Sick_solver

(* How many consecutive consults of Solver_hang stay sick under the
   sick-solver profile: long enough to trip per-(solver, theory) breakers,
   short enough that the shard heals and Half_open probes can re-close
   them within the same shard. *)
let sick_stretch = 120

let max_retries = 3
let retry_decay = 0.5

(* How many consults of a site a fault may wait before firing. Small enough
   that armed faults actually fire within a shard (every site is consulted at
   least once per tick and shards are tens of ticks long). The network sites
   are consulted exactly once per shard attempt — a result either survives
   its trip to the merge owner or it does not — so their window collapses to
   a single consult; a wider window would silently divide the effective fire
   rate by its width. *)
let fire_window = 16

let site_window = function
  | Conn_drop | Stream_stall | Lease_dup -> 1
  | Solver_hang | Solver_crash | Sink_write | Worker_death | Checkpoint_corrupt
    -> fire_window

(* Stream derivation mirrors shard RNGs and trace ids: (site, attempt) picks a
   sub-campaign seed in O(1), then the shard index picks the stream inside it.
   Purely arithmetic, so the plan is identical at any --jobs N. *)
let site_rng p ~site ~shard ~attempt =
  let sub_seed =
    Int64.to_int
      (Rng.bits64
         (Rng.split_indexed ~seed:p.chaos_seed
            ~index:((site_code site * 64) + attempt)))
  in
  Rng.split_indexed ~seed:sub_seed ~index:shard

let decide p ~site ~shard ~attempt =
  if not (List.mem site (profile_sites p.profile)) then None
  else
    let g = site_rng p ~site ~shard ~attempt in
    let prob =
      if p.rate >= 1.0 then 1.0
      else p.rate *. (retry_decay ** float_of_int attempt)
    in
    if Rng.chance g prob then Some (Rng.int g (site_window site)) else None

module Injector = struct
  type armed = {
    shard : int;
    attempt : int;
    fire_at : int option array; (* indexed by site_code *)
    stretch : int array; (* consults a fired site stays fired for *)
    hits : int array;
    mutable fired_rev : site list;
  }

  type t = Disabled | Armed of armed

  let disabled = Disabled

  let create p ~shard ~attempt =
    if not (enabled p) then Disabled
    else
      Armed
        {
          shard;
          attempt;
          fire_at =
            Array.of_list
              (List.map (fun site -> decide p ~site ~shard ~attempt) all_sites);
          stretch =
            Array.of_list
              (List.map
                 (fun site ->
                   if p.profile = Sick_solver && site = Solver_hang then
                     sick_stretch
                   else 1)
                 all_sites);
          hits = Array.make n_sites 0;
          fired_rev = [];
        }

  let check t site =
    match t with
    | Disabled -> false
    | Armed a ->
        let c = site_code site in
        let h = a.hits.(c) in
        a.hits.(c) <- h + 1;
        (match a.fire_at.(c) with
        | Some k when h >= k && h < k + a.stretch.(c) ->
            if not (List.mem site a.fired_rev) then
              a.fired_rev <- site :: a.fired_rev;
            true
        | _ -> false)

  let fired = function Disabled -> [] | Armed a -> List.rev a.fired_rev
  let shard = function Disabled -> 0 | Armed a -> a.shard
  let attempt = function Disabled -> 0 | Armed a -> a.attempt
end

exception Injected of { site : site; shard : int; attempt : int }

let () =
  Printexc.register_printer (function
    | Injected { site; shard; attempt } ->
        Some
          (Printf.sprintf "Faults.Injected(%s, shard %d, attempt %d)"
             (site_name site) shard attempt)
    | _ -> None)

let ambient_key : Injector.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Injector.disabled)

let ambient () = Domain.DLS.get ambient_key
let set_ambient inj = Domain.DLS.set ambient_key inj

let using inj f =
  let prev = ambient () in
  set_ambient inj;
  Fun.protect ~finally:(fun () -> set_ambient prev) f

let triggered site = Injector.check (ambient ()) site

let raise_injected site =
  let inj = ambient () in
  raise
    (Injected
       { site; shard = Injector.shard inj; attempt = Injector.attempt inj })

let tick () = if triggered Worker_death then raise_injected Worker_death

(* One consult of each in-path network site, made by the supervisor after an
   attempt finishes and before its payload is handed to the merge owner: a
   fired site means the result was lost in transit (connection dropped, or
   the stream stalled past its deadline). No exception is needed — the fired
   record alone taints the attempt, so the payload is discarded and the
   shard deterministically re-executed. Consulted identically by standalone
   campaigns, the server's local pool, and remote workers, which is what
   keeps a [--chaos net] run byte-identical across venues and job counts. *)
let transit () =
  ignore (triggered Conn_drop : bool);
  ignore (triggered Stream_stall : bool)

let backoff_base_fuel = 1_000

let backoff ~attempt =
  let fuel = backoff_base_fuel * (1 lsl min attempt 10) in
  (* burn generator fuel instead of sleeping: deterministic under any
     scheduler, and proportional work still exercises contention paths *)
  let g = Rng.create fuel in
  for _ = 1 to fuel do
    ignore (Rng.bits64 g)
  done;
  fuel

let chaos_namespace = "chaos:"
let crash_signature = "chaos:injected-solver-crash"
let crash_bug_id = "chaos-injected"
let is_injected_signature s = String.starts_with ~prefix:chaos_namespace s
