(** Deterministic fault injection for chaos testing.

    A chaos campaign must be byte-for-byte reproducible at any [--jobs N], so
    faults cannot be decided by wall-clock time, scheduling order, or a shared
    mutable RNG. Instead the whole fault plan is a pure function of a chaos
    seed: for every (site, shard, attempt) triple, [decide] derives an
    independent stream via {!O4a_util.Rng.split_indexed} — the same convention
    used for shard RNGs and trace ids — and rolls whether (and after how many
    consults of that site) the fault fires. Workers carry an ambient
    {!Injector} for the shard attempt they are executing; instrumented sites
    consult it with {!triggered} / {!tick} and otherwise cost one branch.

    The supervision contract built on top: any attempt during which at least
    one fault fired is {e tainted} — its results are discarded wholesale and
    the shard is retried with the next attempt index (which re-rolls every
    site). Only an attempt with zero fired faults may merge, which is exactly
    what makes a chaos run whose retries eventually succeed identical to the
    fault-free run. *)

type site =
  | Solver_hang  (** force fuel exhaustion inside [Solver.Runner] *)
  | Solver_crash  (** synthesize a spurious crash result in [Solver.Runner] *)
  | Sink_write  (** fail a telemetry sink write *)
  | Worker_death  (** kill the worker mid-shard, between two ticks *)
  | Checkpoint_corrupt  (** tear a checkpoint write, leaving truncated JSON *)
  | Conn_drop
      (** drop the connection carrying a finished shard result before it
          reaches the merge owner; the attempt is lost in transit *)
  | Stream_stall
      (** stall the result stream past its deadline — indistinguishable from
          a loss downstream, so the attempt is likewise discarded *)
  | Lease_dup
      (** deliver a lease grant twice (a retransmitted/duplicated grant);
          consulted by the coordinator at grant time, never by workers *)

val all_sites : site list
(** In site-code order; stable, used to index fault-plan streams. *)

val net_sites : site list
(** The network fault sites: {!Conn_drop}, {!Stream_stall}, {!Lease_dup}. *)

val site_name : site -> string
val site_of_name : string -> site option

type profile = Off | Solver | Io | Workers | Net | All | Sick_solver
(** [Sick_solver] (spelled ["solver_hang"] on the CLI) arms only
    {!Solver_hang}, and with different semantics: instead of corrupting a
    single answer, a fired hang stays stuck for {!sick_stretch} consecutive
    consults — a solver gone sick for a stretch of the shard. Its firings do
    not {!taints} the attempt, because the resulting timeouts are the
    subject under test for the health/breaker layer, not pollution. *)

val profile_sites : profile -> site list
val profile_to_string : profile -> string
val profile_of_string : string -> profile option

type plan = { chaos_seed : int; profile : profile; rate : float }
(** [rate] is the probability that a given site fires during attempt 0 of a
    shard. Retries decay the probability by {!retry_decay} per attempt so
    campaigns converge; as a special case [rate >= 1.0] fires every armed
    site on every attempt, guaranteeing quarantine (useful in tests). *)

val default_rate : float

val plan : ?rate:float -> ?chaos_seed:int -> profile -> plan

val enabled : plan -> bool
(** [false] exactly when the profile is [Off]. *)

val taints : plan -> site -> bool
(** Whether a firing of [site] under this plan taints the attempt (discard
    and retry). [true] for every profile except [Sick_solver]. *)

val sick_stretch : int
(** Consults a [Sick_solver] hang stays stuck for once fired. *)

val max_retries : int
(** A shard is attempted at most [max_retries + 1] times before quarantine. *)

val retry_decay : float

val decide : plan -> site:site -> shard:int -> attempt:int -> int option
(** [decide plan ~site ~shard ~attempt] is [Some k] when the fault plan calls
    for [site] to fire on the [k]-th consult of that site during the given
    shard attempt, [None] otherwise. Pure: equal arguments always yield the
    same decision, independent of [--jobs], scheduling, or call order. *)

val site_window : site -> int
(** How many consults of the site a scheduled fault may wait before firing:
    {!fire_window} for in-shard sites, [1] for the single-consult network
    sites ([decide] then always answers [Some 0] when it fires). *)

val fire_window : int

(** The per-(shard, attempt) injector a worker arms while executing a shard.
    Each instrumented site consults it once per potential fault point; the
    injector counts consults and fires each armed site exactly once, at the
    consult index chosen by {!decide}. *)
module Injector : sig
  type t

  val disabled : t
  (** Never fires; the ambient default outside chaos runs. *)

  val create : plan -> shard:int -> attempt:int -> t

  val check : t -> site -> bool
  (** [check t site] consumes one consult of [site] and returns whether the
      fault fires now. Fires at most once per site per injector, except
      under [Sick_solver], where a fired hang stays stuck for
      {!sick_stretch} consecutive consults (still listed once in
      {!fired}). *)

  val fired : t -> site list
  (** Sites that have fired so far, in firing order. Non-empty means the
      attempt is tainted and its results must be discarded. *)

  val shard : t -> int
  val attempt : t -> int
end

exception
  Injected of {
    site : site;
    shard : int;
    attempt : int;
  }
(** Raised by sites whose fault is a failure (sink write, worker death) as
    opposed to a wrong-but-returned result (solver hang/crash). *)

val ambient : unit -> Injector.t
(** The calling domain's injector; {!Injector.disabled} unless inside
    {!using}. *)

val set_ambient : Injector.t -> unit

val using : Injector.t -> (unit -> 'a) -> 'a
(** [using inj f] runs [f] with [inj] ambient on this domain, restoring the
    previous injector afterwards (also on exception). *)

val triggered : site -> bool
(** [Injector.check] against the ambient injector. *)

val raise_injected : site -> 'a
(** Raise {!Injected} for [site], stamped with the ambient injector's shard
    and attempt. *)

val tick : unit -> unit
(** Worker-death probe for the fuzz loop: consults [Worker_death] on the
    ambient injector and raises {!Injected} when it fires. *)

val transit : unit -> unit
(** Result-in-transit probe for the supervisor: one consult each of
    {!Conn_drop} and {!Stream_stall}, made after an attempt completes and
    before its payload reaches the merge owner. A firing taints the attempt
    (the result was lost on the wire), so the shard is discarded and
    deterministically re-executed — identically in standalone campaigns, the
    server's local pool, and remote workers. *)

val backoff : attempt:int -> int
(** Deterministic, fuel-based backoff: burns [1000 * 2^attempt] units of
    generator fuel (no wall-clock sleeping, so retried runs stay
    reproducible) and returns the amount burned, for telemetry. *)

val crash_signature : string
(** Signature carried by injected spurious crashes. Lives in the reserved
    ["chaos:"] namespace so it can never collide with a ground-truth bug
    signature from the solver. *)

val crash_bug_id : string

val is_injected_signature : string -> bool
(** [true] for signatures in the ["chaos:"] namespace. The oracle uses this
    to keep injected crashes out of ground-truth bug attribution. *)
