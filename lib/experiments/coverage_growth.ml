
module Coverage = O4a_coverage.Coverage
module Fuzzer = Baselines.Fuzzer

type series = {
  fuzzer : string;
  zeal_line : float list;
  zeal_func : float list;
  cove_line : float list;
  cove_func : float list;
}

type result = {
  series : series list;
  text : string;
}

(* per-fuzzer extension-file labels recorded at the end of its run; guarded
   because fuzzers may run on parallel domains *)
let extension_hits : (string, string list) Hashtbl.t = Hashtbl.create 16
let extension_hits_mutex = Mutex.create ()

let is_extension_label label =
  List.exists
    (fun dir -> O4a_util.Strx.contains_sub ~sub:dir label)
    [ "theory/sets"; "theory/bags"; "theory/finite_fields" ]

let run_fuzzer ~seed ~ticks ~per_tick ~max_steps ~seeds (fuzzer : Fuzzer.t) =
  (* each fuzzer accumulates hits in a private ledger: starts from zero (the
     historical [Coverage.reset] behavior) and stays isolated from fuzzers
     running concurrently on other domains *)
  Coverage.with_ledger (Coverage.make_ledger ()) @@ fun () ->
  let rng = O4a_util.Rng.create (seed + Hashtbl.hash fuzzer.Fuzzer.name) in
  let zeal = Solver.Engine.zeal () in
  let cove = Solver.Engine.cove () in
  let zeal_line = ref [] and zeal_func = ref [] in
  let cove_line = ref [] and cove_func = ref [] in
  for _tick = 1 to ticks do
    let cases = max 1 (per_tick * fuzzer.Fuzzer.tests_per_tick / 100) in
    for _ = 1 to cases do
      let source = fuzzer.Fuzzer.generate ~rng ~seeds in
      ignore (Solver.Runner.run_source ~max_steps zeal source);
      ignore (Solver.Runner.run_source ~max_steps cove source)
    done;
    let zs = Coverage.snapshot Coverage.Zeal in
    let cs = Coverage.snapshot Coverage.Cove in
    zeal_line := Coverage.line_pct zs :: !zeal_line;
    zeal_func := Coverage.func_pct zs :: !zeal_func;
    cove_line := Coverage.line_pct cs :: !cove_line;
    cove_func := Coverage.func_pct cs :: !cove_func
  done;
  let ext_labels =
    List.filter is_extension_label (Coverage.hit_point_labels Coverage.Cove)
  in
  Mutex.protect extension_hits_mutex (fun () ->
      Hashtbl.replace extension_hits fuzzer.Fuzzer.name ext_labels);
  {
    fuzzer = fuzzer.Fuzzer.name;
    zeal_line = List.rev !zeal_line;
    zeal_func = List.rev !zeal_func;
    cove_line = List.rev !cove_line;
    cove_func = List.rev !cove_func;
  }

let render ~title series =
  let block label extract =
    Render.series ~title:label ~x_label:"fuzzer \\ hour"
      (List.map (fun s -> (s.fuzzer, extract s)) series)
  in
  let spark label extract =
    String.concat "\n"
      (List.map
         (fun s ->
           Printf.sprintf "  %-14s %s %.1f%%" s.fuzzer
             (Render.sparkline (extract s))
             (match List.rev (extract s) with v :: _ -> v | [] -> 0.))
         series)
    |> fun body -> label ^ "\n" ^ body
  in
  Render.heading title ^ "\n"
  ^ block "Zeal line coverage (%)" (fun s -> s.zeal_line)
  ^ "\n\n"
  ^ block "Cove line coverage (%)" (fun s -> s.cove_line)
  ^ "\n\n"
  ^ spark "Zeal function coverage (final %)" (fun s -> s.zeal_func)
  ^ "\n\n"
  ^ spark "Cove function coverage (final %)" (fun s -> s.cove_func)

let run ?(seed = 2024) ?(ticks = 24) ?(per_tick = 60) ?(max_steps = 40_000)
    ?(jobs = 1) ~title ~fuzzers ~seeds () =
  Solver.Engine.prewarm ();
  let series =
    Orchestrator.parallel_map ~jobs
      (run_fuzzer ~seed ~ticks ~per_tick ~max_steps ~seeds)
      fuzzers
  in
  { series; text = render ~title series }

let exclusive_regions result =
  let rows =
    List.map
      (fun s ->
        let labels =
          Mutex.protect extension_hits_mutex (fun () ->
              Option.value (Hashtbl.find_opt extension_hits s.fuzzer) ~default:[])
        in
        let files =
          labels
          |> List.filter_map (fun l ->
                 match String.index_opt l ':' with
                 | Some i -> Some (String.sub l 0 i)
                 | None -> None)
          |> O4a_util.Listx.dedup
        in
        [ s.fuzzer; string_of_int (List.length labels); String.concat " " files ])
      result.series
  in
  Render.heading "Solver-specific theory files reached (Cove)"
  ^ "\n"
  ^ Render.table ~header:[ "fuzzer"; "ext. points hit"; "files" ] rows
