(** Figures 6 and 8 — line and function coverage growth over a simulated
    24-hour run, one curve per fuzzer per solver.

    The paper's wall-clock hours become budget {e ticks}: each fuzzer spends
    one tick producing [per_tick] test cases scaled by its relative
    throughput (the LLM-in-the-loop baseline produces fewer cases per tick,
    as in reality), feeding every case to both solvers. Coverage is
    snapshotted after every tick from the instrumentation registry. *)

open Smtlib

type series = {
  fuzzer : string;
  zeal_line : float list;
  zeal_func : float list;
  cove_line : float list;
  cove_func : float list;
}

type result = {
  series : series list;
  text : string;
}

val run :
  ?seed:int ->
  ?ticks:int ->
  ?per_tick:int ->
  ?max_steps:int ->
  ?jobs:int ->
  title:string ->
  fuzzers:Baselines.Fuzzer.t list ->
  seeds:Script.t list ->
  unit ->
  result
(** Defaults: 24 ticks, 60 cases per tick at full speed. [jobs] fans the
    fuzzers out over that many domains (each already runs in a private
    coverage ledger with its own engines, so the curves are identical at any
    job count). *)

val exclusive_regions : result -> string
(** For the final tick: which fuzzers reach solver-specific theory files that
    no baseline reaches (the paper's src/theory/sets observation). This re-runs
    nothing; it reports from the last snapshot's hit labels. *)
