module Bug_db = Solver.Bug_db
module Coverage = O4a_coverage.Coverage

type result = {
  report : Once4all.Campaign.report;
  found : Bug_db.spec list;
  table1 : string;
  table2 : string;
  stats_text : string;
}

let count pred specs = List.length (List.filter pred specs)

let status_counts specs solver =
  let of_solver = List.filter (fun (s : Bug_db.spec) -> s.Bug_db.solver = solver) specs in
  let reported = List.length of_solver in
  let confirmed =
    count
      (fun (s : Bug_db.spec) ->
        match s.Bug_db.status with
        | Bug_db.Fixed | Bug_db.Confirmed -> true
        | Bug_db.Reported | Bug_db.Duplicate_of _ -> false)
      of_solver
  in
  let fixed = count (fun s -> s.Bug_db.status = Bug_db.Fixed) of_solver in
  let duplicate =
    count
      (fun (s : Bug_db.spec) ->
        match s.Bug_db.status with Bug_db.Duplicate_of _ -> true | _ -> false)
      of_solver
  in
  (reported, confirmed, fixed, duplicate)

let kind_counts specs solver =
  let of_solver = List.filter (fun (s : Bug_db.spec) -> s.Bug_db.solver = solver) specs in
  ( count (fun s -> s.Bug_db.kind = Bug_db.Crash) of_solver,
    count (fun s -> s.Bug_db.kind = Bug_db.Invalid_model) of_solver,
    count (fun s -> s.Bug_db.kind = Bug_db.Soundness) of_solver )

let render_table1 found =
  let zr, zc, zf, zd = status_counts found Coverage.Zeal in
  let cr, cc, cf, cd = status_counts found Coverage.Cove in
  let row label z c = [ label; string_of_int z; string_of_int c; string_of_int (z + c) ] in
  Render.heading "Table 1: Status of bugs found in the solvers"
  ^ "\n"
  ^ Render.table
      ~header:[ "Status"; "Zeal"; "Cove"; "Total" ]
      [
        row "Reported" zr cr;
        row "Confirmed" zc cc;
        row "Fixed" zf cf;
        row "Duplicate" zd cd;
      ]
  ^ "\n(paper: reported 27/18/45, confirmed 25/18/43, fixed 24/16/40, duplicate 2/0/2)"

let render_table2 found =
  let zcr, zim, zs = kind_counts found Coverage.Zeal in
  let ccr, cim, cs = kind_counts found Coverage.Cove in
  let row label z c = [ label; string_of_int z; string_of_int c; string_of_int (z + c) ] in
  Render.heading "Table 2: Bug types among the reported bugs"
  ^ "\n"
  ^ Render.table
      ~header:[ "Type"; "Zeal"; "Cove"; "Total" ]
      [
        row "Crash" zcr ccr;
        row "Invalid model" zim cim;
        row "Soundness" zs cs;
      ]
  ^ "\n(paper: crash 20/15/35, invalid model 4/2/6, soundness 3/1/4)"

let render_stats (report : Once4all.Campaign.report) found =
  let s = report.Once4all.Campaign.stats in
  let extension = count Bug_db.is_extension_theory_bug found in
  Render.heading "Campaign statistics (paper 4.2)"
  ^ "\n"
  ^ String.concat "\n"
      [
        Printf.sprintf "test cases generated:        %d" s.Once4all.Fuzz.tests;
        Printf.sprintf "mean formula size:           %d bytes (paper: 4,828)"
          (if s.Once4all.Fuzz.tests = 0 then 0
           else s.Once4all.Fuzz.bytes_total / s.Once4all.Fuzz.tests);
        Printf.sprintf "bug-triggering formulas:     %d (paper: 727 over ~10M cases)"
          (List.length s.Once4all.Fuzz.findings);
        Printf.sprintf "distinct bugs hit:           %d of %d specimens"
          (List.length found)
          (List.length Bug_db.campaign_bugs);
        Printf.sprintf "extension-theory bugs:       %d (paper: 11)" extension;
        Printf.sprintf "LLM calls (one-time):        %d" report.Once4all.Campaign.llm_calls;
        Printf.sprintf "LLM tokens (one-time):       %d" report.Once4all.Campaign.llm_tokens;
      ]

let run ?(seed = 42) ?(budget = 6000) ?jobs () =
  let campaign = Once4all.Campaign.prepare ~seed () in
  let seeds =
    Seeds.Corpus.filtered ~zeal:campaign.Once4all.Campaign.zeal
      ~cove:campaign.Once4all.Campaign.cove ()
  in
  let report =
    match jobs with
    | None -> Once4all.Campaign.fuzz ~seed:(seed + 1) campaign ~seeds ~budget
    | Some jobs ->
      (* the sharded pipeline: same generator pool, per-worker engines *)
      let r =
        Orchestrator.run ~jobs ~seed:(seed + 1) ~budget
          ~generators:campaign.Once4all.Campaign.generators ~seeds ()
      in
      {
        Once4all.Campaign.stats = r.Orchestrator.stats;
        clusters = r.Orchestrator.clusters;
        found_bug_ids = r.Orchestrator.found_bug_ids;
        llm_calls = Llm_sim.Client.call_count campaign.Once4all.Campaign.client;
        llm_tokens = Llm_sim.Client.token_count campaign.Once4all.Campaign.client;
      }
  in
  let found =
    report.Once4all.Campaign.found_bug_ids
    |> List.filter_map Bug_db.find
    |> List.filter (fun (s : Bug_db.spec) -> not s.Bug_db.historical)
  in
  {
    report;
    found;
    table1 = render_table1 found;
    table2 = render_table2 found;
    stats_text = render_stats report found;
  }
