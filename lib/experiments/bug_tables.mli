(** RQ1 — Tables 1 and 2, plus the campaign statistics of §4.2.

    A trunk campaign is run with the full Once4All pipeline; clusters are
    mapped back to ground-truth specimens, and the tables are rendered from
    the triage metadata (status, kind) of the bugs the campaign hit. Paper
    values are printed alongside for comparison. *)

type result = {
  report : Once4all.Campaign.report;
  found : Solver.Bug_db.spec list;  (** distinct campaign specimens hit *)
  table1 : string;
  table2 : string;
  stats_text : string;
}

val run : ?seed:int -> ?budget:int -> ?jobs:int -> unit -> result
(** Default budget 6000 test cases. Omitting [jobs] runs the historical
    single-stream campaign ({!Once4all.Campaign.fuzz}); [~jobs:n] routes the
    same budget through the sharded {!Orchestrator.run} pipeline on [n]
    domains (any [n] yields the same bug set, see {!Orchestrator}). *)
