open Theories
module Rng = O4a_util.Rng
module Cfg = Grammar_kit.Cfg
module Telemetry = O4a_telemetry.Telemetry
module Json = O4a_telemetry.Json

type report = {
  theory_key : string;
  iterations : int;
  sample_num : int;
  initial_valid : int;
  final_valid : int;
  history : (int * int) list;
  llm_calls : int;
}

let sample_num = 20
let max_iter = 10

(* runtime-flaw pools per theory: which emission mistakes an LLM plausibly
   makes when implementing this theory's generator *)
let flaw_pool (theory : Theory.info) =
  match theory.Theory.id with
  | Theory.Core -> [ Flaw.Unbalanced_output ]
  | Theory.Ints -> [ Flaw.Bad_int_literal; Flaw.Missing_declaration ]
  | Theory.Reals -> [ Flaw.Bad_real_literal ]
  | Theory.Reals_ints -> [ Flaw.Bad_int_literal; Flaw.Bad_real_literal ]
  | Theory.Bitvectors ->
    [ Flaw.Width_mismatch; Flaw.Bad_int_literal; Flaw.Unbalanced_output ]
  | Theory.Strings ->
    [ Flaw.Bad_string_quotes; Flaw.Missing_declaration; Flaw.Bad_int_literal ]
  | Theory.Arrays -> [ Flaw.Missing_declaration; Flaw.Bad_int_literal ]
  | Theory.Datatypes -> [ Flaw.Missing_declaration; Flaw.Unbalanced_output ]
  | Theory.Seq ->
    [ Flaw.Missing_declaration; Flaw.Bad_int_literal; Flaw.Unbalanced_output ]
  | Theory.Sets -> [ Flaw.Missing_declaration; Flaw.Unbalanced_output ]
  | Theory.Bags ->
    [ Flaw.Missing_declaration; Flaw.Bad_int_literal; Flaw.Unbalanced_output ]
  | Theory.Finite_fields ->
    [ Flaw.Field_mismatch; Flaw.Bad_ff_literal; Flaw.Missing_declaration;
      Flaw.Unbalanced_output ]

(* first operator symbol inside an alternative, e.g. "(seq.rev " -> seq.rev *)
let alt_first_op alt =
  List.find_map
    (function
      | Cfg.Lit text when String.length text > 1 && text.[0] = '(' ->
        let body = String.sub text 1 (String.length text - 1) in
        let op =
          match String.index_opt body ' ' with
          | Some i -> String.sub body 0 i
          | None -> body
        in
        let op =
          if O4a_util.Strx.starts_with ~prefix:"(_ " (String.sub text 0 (min 3 (String.length text))) then op
          else op
        in
        if op = "" || op = "_" || op = "as" || op = "let" then None else Some op
      | _ -> None)
    alt

let initial_generator ~client theory =
  let profile = Llm_sim.Client.profile client in
  (* phase 1: grammar summarization *)
  let _ =
    Llm_sim.Client.query client
      (Llm_sim.Prompt.Summarize_grammar
         { theory = theory.Theory.name; doc = Theory.doc theory.Theory.id })
  in
  let base = Grammar_kit.Ebnf.parse_exn (Theory.ground_truth_cfg theory.Theory.id) in
  let difficulty = theory.Theory.difficulty in
  let rng =
    Llm_sim.Client.rng_for client ("summarize:" ^ theory.Theory.key)
  in
  let defects = ref [] in
  List.iter
    (fun p ->
      List.iteri
        (fun alt_idx alt ->
          let halluc_p =
            profile.Llm_sim.Profile.hallucination_rate *. (0.5 +. difficulty)
          in
          if Rng.chance rng halluc_p then (
            match alt_first_op alt with
            | Some op when Theories.Signature.is_known_op op ->
              let to_op =
                Llm_sim.Client.misspell_op client ~key:theory.Theory.key op
              in
              defects :=
                Flaw.Hallucinate { lhs = p.Cfg.lhs; alt_idx; from_op = op; to_op }
                :: !defects
            | _ -> ())
          else if Rng.chance rng profile.Llm_sim.Profile.omission_rate then
            defects := Flaw.Drop_alt { lhs = p.Cfg.lhs; alt_idx } :: !defects
          else if
            Rng.chance rng (profile.Llm_sim.Profile.hallucination_rate *. difficulty)
          then defects := Flaw.Arity_break { lhs = p.Cfg.lhs; alt_idx } :: !defects)
        p.Cfg.alternatives)
    base.Cfg.productions;
  (* the informally documented nullary-join corner (sets only) *)
  if
    theory.Theory.id = Theory.Sets
    && Llm_sim.Client.decide client ~key:("unitjoin:" ^ theory.Theory.key) 0.6
  then defects := Flaw.Unit_join :: !defects;
  (* phase 2: generator implementation *)
  let _ =
    Llm_sim.Client.query client
      (Llm_sim.Prompt.Implement_generator
         { theory = theory.Theory.name; cfg_text = Cfg.to_string base })
  in
  let frng = Llm_sim.Client.rng_for client ("implement:" ^ theory.Theory.key) in
  let flaw_p =
    min 0.95 (difficulty *. profile.Llm_sim.Profile.flaw_scale)
  in
  let runtime_flaws = List.filter (fun _ -> Rng.chance frng flaw_p) (flaw_pool theory) in
  {
    Generator.theory;
    defects = !defects;
    runtime_flaws;
    version = 0;
    profile_name = profile.Llm_sim.Profile.name;
  }

let validate_one ~solvers source =
  let rec try_solvers errors = function
    | [] -> Error (List.rev errors)
    | solver :: rest -> (
      match Solver.Engine.parse_check solver source with
      | Ok _ -> Ok ()
      | Error msg -> try_solvers (msg :: errors) rest)
  in
  try_solvers [] solvers

(* prefer the error from a solver that supports the theory: the last solver
   in the list is Cove, which implements every extension *)
let preferred_error = function
  | [] -> "unknown error"
  | msgs ->
    (match
       List.find_opt
         (fun m -> not (O4a_util.Strx.contains_sub ~sub:"unknown constant or function symbol 'set" m))
         (List.rev msgs)
     with
    | Some m -> m
    | None -> O4a_util.Listx.last msgs)

let validate_samples ~solvers ~rng gen =
  let results =
    List.init sample_num (fun _ ->
        match Generator.generate gen ~rng with
        | emitted -> (
          let source = Generator.render_script [ emitted ] in
          match validate_one ~solvers source with
          | Ok () -> Ok ()
          | Error msgs -> Error (preferred_error msgs))
        | exception Failure msg -> Error ("parse error: generator crashed: " ^ msg))
  in
  let valid = List.length (List.filter Result.is_ok results) in
  let errors = List.filter_map (function Error m -> Some m | Ok () -> None) results in
  (valid, errors)

(* LLM-side distillation: deduplicate error messages by category *)
let distill errors =
  errors
  |> List.map (fun m -> (Flaw.category_to_string (Flaw.categorize_error m), m))
  |> O4a_util.Listx.group_by fst
  |> List.map (fun (_, group) -> snd (List.hd group))

let repair ~client gen categories iteration =
  let profile = Llm_sim.Client.profile client in
  let rng =
    Llm_sim.Client.rng_for client
      (Printf.sprintf "repair:%s:%d" gen.Generator.theory.Theory.key iteration)
  in
  let skill = profile.Llm_sim.Profile.repair_skill in
  let fix_runtime flaw =
    let addressed = List.exists (fun c -> Flaw.runtime_matches c flaw) categories in
    not (addressed && Rng.chance rng skill)
  in
  let fix_defect defect =
    let addressed = List.exists (fun c -> Flaw.defect_matches c defect) categories in
    not (addressed && Rng.chance rng skill)
  in
  (* occasional regression, as real refinement rounds sometimes introduce *)
  let regression =
    if Rng.chance rng 0.05 then
      (match flaw_pool gen.Generator.theory with
      | [] -> []
      | pool -> [ Rng.choose rng pool ])
    else []
  in
  {
    gen with
    Generator.runtime_flaws =
      O4a_util.Listx.dedup
        (List.filter fix_runtime gen.Generator.runtime_flaws @ regression);
    defects = List.filter fix_defect gen.Generator.defects;
    version = iteration;
  }

let self_correct ?(max_iter = max_iter) ~client ~solvers gen =
  let tel = Telemetry.global () in
  let calls_before = Llm_sim.Client.call_count client in
  let tokens_before = Llm_sim.Client.token_count client in
  let theory_key = gen.Generator.theory.Theory.key in
  let rng_at iter =
    Llm_sim.Client.rng_for client (Printf.sprintf "samples:%s:%d" theory_key iter)
  in
  (* iterate: validate the current generator; refine while samples fail and
     budget remains; keep the best version seen (Algorithm 1, line 31) *)
  let rec loop iter gen valid errors best best_valid history =
    Telemetry.incr tel ~labels:[ ("theory", theory_key) ] "synthesis.iterations";
    Telemetry.emit tel "synthesis.iteration"
      [
        ("theory", Json.String theory_key);
        ("iteration", Json.Int iter);
        ("valid", Json.Int valid);
        ("samples", Json.Int sample_num);
      ];
    let best, best_valid = if valid > best_valid then (gen, valid) else (best, best_valid) in
    let history = (iter, valid) :: history in
    if valid >= sample_num || iter >= max_iter then
      (best, iter, best_valid, List.rev history)
    else (
      let distilled = distill errors in
      let categories = List.map Flaw.categorize_error distilled in
      let _ =
        Llm_sim.Client.query client
          (Llm_sim.Prompt.Self_correct
             { theory = theory_key; errors = distilled; impl = Generator.describe gen })
      in
      let gen' = repair ~client gen categories (iter + 1) in
      let valid', errors' = validate_samples ~solvers ~rng:(rng_at (iter + 1)) gen' in
      loop (iter + 1) gen' valid' errors' best best_valid history)
  in
  let initial_valid, initial_errors = validate_samples ~solvers ~rng:(rng_at 0) gen in
  let best, iterations, final_valid, history =
    loop 0 gen initial_valid initial_errors gen (-1) []
  in
  let llm_calls = Llm_sim.Client.call_count client - calls_before in
  Telemetry.incr tel ~by:llm_calls "llm.calls";
  Telemetry.incr tel
    ~by:(Llm_sim.Client.token_count client - tokens_before)
    "llm.tokens";
  ( best,
    {
      theory_key;
      iterations;
      sample_num;
      initial_valid;
      final_valid;
      history;
      llm_calls;
    } )

let construct ?max_iter ~client ~solvers theory =
  let gen = initial_generator ~client theory in
  self_correct ?max_iter ~client ~solvers gen

let construct_all ?max_iter ~client ~solvers theories =
  List.map (construct ?max_iter ~client ~solvers) theories
