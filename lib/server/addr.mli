(** Endpoint addressing shared by the daemon's TCP listener, the client, and
    the remote worker. *)

type t =
  | Unix_path of string  (** local Unix-domain socket file *)
  | Tcp of string * int  (** remote coordinator: host, port *)

val to_string : t -> string

val default_host : string
(** ["127.0.0.1"] — the daemon binds loopback unless told otherwise. *)

val parse_tcp :
  ?default_host:string -> string -> (string * int, string) result
(** Parse a ["PORT"] or ["HOST:PORT"] spec. Ports must be in [0..65535];
    port [0] asks the kernel for an ephemeral port (the daemon writes the
    one it got to [state_dir/tcp.port]). *)

val resolve : host:string -> port:int -> (Unix.sockaddr, string) result
(** Numeric addresses parse directly; anything else goes through
    [getaddrinfo]. *)
