(** Wire codecs for complete shard outcomes — what a remote worker streams
    back to the coordinator over a lease.

    Everything a {!Orchestrator.Merge.t} absorbs must round-trip losslessly:
    the merged report, repro bundles, telemetry, and analytics are
    byte-compared against the standalone run, so a codec that dropped so
    much as a histogram bucket would break the identity. Wherever a
    subsystem already persists the value (checkpoints, telemetry events,
    trace bundles, analytics series) its codec is reused; only metric
    entries (the telemetry log's histogram form is a lossy sum/count
    summary) and profile exports get wire-specific encodings here. *)

val metric_entry_to_json : O4a_telemetry.Metrics.entry -> O4a_telemetry.Json.t
val metric_entry_of_json :
  O4a_telemetry.Json.t -> (O4a_telemetry.Metrics.entry, string) result
(** Lossless, including full histogram bounds and bucket counts. *)

val profile_of_json :
  O4a_telemetry.Json.t -> (O4a_profile.Profile.t, string) result
(** Inverse of {!O4a_profile.Profile.to_json}. *)

val payload_to_json : Orchestrator.shard_payload -> O4a_telemetry.Json.t
val payload_of_json :
  O4a_telemetry.Json.t -> (Orchestrator.shard_payload, string) result

val attempt_log_to_json : Orchestrator.attempt_log -> O4a_telemetry.Json.t
val attempt_log_of_json :
  O4a_telemetry.Json.t -> (Orchestrator.attempt_log, string) result

val outcome_to_json : Orchestrator.shard_outcome -> O4a_telemetry.Json.t
val outcome_of_json :
  O4a_telemetry.Json.t -> (Orchestrator.shard_outcome, string) result
