(** Shared NDJSON framing for the server's listeners and clients.

    Byte streams deliver frames torn across reads or several to a chunk; a
    framer carries the partial tail between {!feed}s and enforces the
    inbound line cap (the mirror of the daemon's outbound buffer bound), so
    a peer streaming one endless line cannot grow server memory without
    limit. Used identically by the Unix-socket listener, the TCP listener,
    and the remote worker's read path — one framing implementation, every
    transport. *)

type error = Line_too_long of int  (** the cap that was exceeded, in bytes *)

val error_to_string : error -> string

val default_max_line : int
(** 1 MiB, matching the daemon's outbound [max_out] bound. *)

type t

val create : ?max_line:int -> unit -> t

val max_line : t -> int

val pending : t -> int
(** Bytes of partial line currently carried. *)

val feed : t -> string -> (string list, error) result
(** [feed t chunk] appends [chunk] and returns the complete lines now
    available, oldest first (without their terminating newline); a partial
    final line is carried into the next feed. Once any line exceeds the cap
    the framer is poisoned — the stream cannot be re-synchronized — and this
    and every subsequent feed return [Error]: drop the connection. *)
