(** Fair round-robin shard scheduling across concurrent campaigns.

    Plain mutable data with no internal locking: the daemon guards one
    instance behind its pool mutex; tests drive one directly.

    A {e round} gives every runnable job up to its [quota] shard dispatches.
    Within a round, picks rotate job-to-job, so jobs with equal quotas
    interleave shard-for-shard rather than running quota-sized bursts. When
    no job is pickable under the current round's spends but runnable work
    remains, a new round begins. Consequences: every runnable job with
    pending work dispatches at least one shard per round (no starvation),
    and jobs with equal quotas and equal shard counts finish within one
    round of each other. *)

type t

val create : unit -> t

val add : t -> key:string -> quota:int -> Orchestrator.Shard.t list -> unit
(** Register a job with its pending shards in dispatch order. Raises
    [Invalid_argument] on a duplicate key or a quota < 1. *)

val set_runnable : t -> key:string -> bool -> unit
(** Pause/unpause: a non-runnable job is never picked, its pending shards
    stay queued. Unknown keys are ignored. *)

val remove : t -> key:string -> unit
(** Drop a job and its pending shards (cancel). *)

val pending : t -> key:string -> int

val requeue : t -> key:string -> Orchestrator.Shard.t -> unit
(** Hand a shard back after its lease expired: it goes to the front of the
    job's pending queue, so the reassignment is the job's next dispatch.
    Unknown keys are ignored (the job was cancelled meanwhile). *)

val next : t -> (string * Orchestrator.Shard.t) option
(** The next [(job, shard)] to dispatch under the fairness discipline, or
    [None] when no runnable job has pending work. *)

val idle : t -> bool
(** No runnable job has pending shards. *)

val stats : t -> key:string -> (int * int) option
(** [(pending, dispatched)] for a job, if registered. *)
