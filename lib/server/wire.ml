module Json = O4a_telemetry.Json
module Event = O4a_telemetry.Event
module Metrics = O4a_telemetry.Metrics
module Trace = O4a_trace.Trace
module Health = O4a_health.Health
module Profile = O4a_profile.Profile
module Analytics = O4a_analytics.Analytics
module Faults = O4a_faults.Faults
module Checkpoint = Orchestrator.Checkpoint

(* Wire codecs for a complete shard outcome — what a remote worker streams
   back to the coordinator. Everything a {!Orchestrator.Merge.t} absorbs must
   round-trip losslessly: the merged report, bundles, telemetry, and
   analytics are byte-compared against the standalone run, so a codec that
   drops so much as a histogram bucket would break the identity. Wherever a
   subsystem already persists the value (checkpoints, telemetry logs, trace
   bundles) its codec is reused; the only encodings defined here are the ones
   no file format needed before: full metric entries (the telemetry log's
   histogram rendering is a lossy sum/count summary) and profile exports. *)

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let req name conv json =
  match Option.bind (Json.member name json) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "wire: missing or invalid field %S" name)

let list_field name json =
  match Json.member name json with
  | Some (Json.List l) -> Ok l
  | _ -> Error (Printf.sprintf "wire: missing or invalid field %S" name)

(* ------------------------------------------------------------------ *)
(* Metric entries (lossless, unlike the telemetry log's summary form)   *)
(* ------------------------------------------------------------------ *)

let metric_entry_to_json (e : Metrics.entry) =
  let value =
    match e.Metrics.value with
    | Metrics.Counter n -> [ ("counter", Json.Int n) ]
    | Metrics.Gauge v -> [ ("gauge", Json.Float v) ]
    | Metrics.Histogram h ->
      [
        ( "histogram",
          Json.Obj
            [
              ( "bounds",
                Json.List
                  (List.map (fun b -> Json.Float b) (Array.to_list h.Metrics.bounds)) );
              ( "counts",
                Json.List
                  (List.map (fun c -> Json.Int c) (Array.to_list h.Metrics.counts)) );
              ("sum", Json.Float h.Metrics.sum);
              ("count", Json.Int h.Metrics.count);
            ] );
      ]
  in
  Json.Obj
    ([
       ("name", Json.String e.Metrics.name);
       ( "labels",
         Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) e.Metrics.labels) );
     ]
    @ value)

let metric_entry_of_json json =
  let* name = req "name" Json.to_str json in
  let* labels =
    match Json.member "labels" json with
    | Some (Json.Obj kvs) ->
      map_result
        (fun (k, v) ->
          match Json.to_str v with
          | Some s -> Ok (k, s)
          | None -> Error (Printf.sprintf "wire: label %S not a string" k))
        kvs
    | _ -> Error "wire: metric entry without a \"labels\" object"
  in
  let* value =
    match
      ( Json.member "counter" json,
        Json.member "gauge" json,
        Json.member "histogram" json )
    with
    | Some c, _, _ -> (
      match Json.to_int c with
      | Some n -> Ok (Metrics.Counter n)
      | None -> Error "wire: counter value not an int")
    | _, Some g, _ -> (
      match Json.to_float g with
      | Some v -> Ok (Metrics.Gauge v)
      | None -> Error "wire: gauge value not a number")
    | _, _, Some h ->
      let* bounds = list_field "bounds" h in
      let* bounds =
        map_result
          (fun b ->
            match Json.to_float b with
            | Some f -> Ok f
            | None -> Error "wire: histogram bound not a number")
          bounds
      in
      let* counts = list_field "counts" h in
      let* counts =
        map_result
          (fun c ->
            match Json.to_int c with
            | Some n -> Ok n
            | None -> Error "wire: histogram count not an int")
          counts
      in
      let* sum = req "sum" Json.to_float h in
      let* count = req "count" Json.to_int h in
      Ok
        (Metrics.Histogram
           {
             Metrics.bounds = Array.of_list bounds;
             counts = Array.of_list counts;
             sum;
             count;
           })
    | None, None, None -> Error "wire: metric entry without a value"
  in
  Ok { Metrics.name; labels; value }

(* ------------------------------------------------------------------ *)
(* Profile exports                                                     *)
(* ------------------------------------------------------------------ *)

let profile_entry_of_json json =
  let* stage = req "stage" Json.to_str json in
  let* calls = req "calls" Json.to_int json in
  let* wall_ns = req "wall_ns" Json.to_int json in
  let* alloc_words = req "alloc_words" Json.to_int json in
  let* promoted_words = req "promoted_words" Json.to_int json in
  let* consults = req "consults" Json.to_int json in
  let* fuel = req "fuel" Json.to_int json in
  Ok
    {
      Profile.stage;
      calls;
      wall_ns;
      alloc_words;
      promoted_words;
      consults;
      fuel;
    }

let profile_of_json json =
  let* ticks = req "ticks" Json.to_int json in
  let* alloc_words = req "alloc_words" Json.to_int json in
  let* stages = list_field "stages" json in
  let* stages = map_result profile_entry_of_json stages in
  Ok { Profile.ticks; alloc_words; stages }

(* ------------------------------------------------------------------ *)
(* Shard payloads                                                      *)
(* ------------------------------------------------------------------ *)

let payload_to_json (p : Orchestrator.shard_payload) =
  Json.Obj
    [
      ("sr", Checkpoint.shard_result_to_json p.Orchestrator.sr);
      ("events", Json.List (List.map Event.to_json p.Orchestrator.events));
      ( "metrics",
        Json.List (List.map metric_entry_to_json p.Orchestrator.metric_entries)
      );
      ( "coverage",
        Json.Obj
          (List.map (fun (k, c) -> (k, Json.Int c)) p.Orchestrator.cov_export)
      );
      ( "promoted",
        Json.List (List.map Trace.promoted_to_json p.Orchestrator.promoted) );
      ( "health",
        Json.List (List.map Health.entry_to_json p.Orchestrator.health_export)
      );
      ("profile", Profile.to_json p.Orchestrator.profile_export);
      ("analytics", Analytics.to_json p.Orchestrator.analytics_export);
    ]

let payload_of_json json =
  let* sr =
    match Json.member "sr" json with
    | Some j -> Checkpoint.shard_result_of_json j
    | None -> Error "wire: payload missing \"sr\""
  in
  let* events = list_field "events" json in
  let* events = map_result Event.of_json events in
  let* metric_entries = list_field "metrics" json in
  let* metric_entries = map_result metric_entry_of_json metric_entries in
  let* cov_export =
    match Json.member "coverage" json with
    | Some (Json.Obj kvs) ->
      map_result
        (fun (k, v) ->
          match Json.to_int v with
          | Some c -> Ok (k, c)
          | None -> Error (Printf.sprintf "wire: coverage count %S not an int" k))
        kvs
    | _ -> Error "wire: payload missing \"coverage\""
  in
  let* promoted = list_field "promoted" json in
  let* promoted = map_result Trace.promoted_of_json promoted in
  let* health_export = list_field "health" json in
  let* health_export = map_result Health.entry_of_json health_export in
  let* profile_export =
    match Json.member "profile" json with
    | Some j -> profile_of_json j
    | None -> Error "wire: payload missing \"profile\""
  in
  let* analytics_export =
    match Json.member "analytics" json with
    | Some j -> Analytics.of_json j
    | None -> Error "wire: payload missing \"analytics\""
  in
  Ok
    {
      Orchestrator.sr;
      events;
      metric_entries;
      cov_export;
      promoted;
      health_export;
      profile_export;
      analytics_export;
    }

(* ------------------------------------------------------------------ *)
(* Attempt logs and outcomes                                            *)
(* ------------------------------------------------------------------ *)

let attempt_log_to_json (l : Orchestrator.attempt_log) =
  Json.Obj
    [
      ("attempt", Json.Int l.Orchestrator.attempt);
      ( "fired",
        Json.List
          (List.map
             (fun s -> Json.String (Faults.site_name s))
             l.Orchestrator.fired) );
    ]

let site_of_json j =
  match Option.bind (Json.to_str j) Faults.site_of_name with
  | Some s -> Ok s
  | None -> Error "wire: unknown fault site"

let attempt_log_of_json json =
  let* attempt = req "attempt" Json.to_int json in
  let* fired = list_field "fired" json in
  let* fired = map_result site_of_json fired in
  Ok { Orchestrator.attempt; fired }

let outcome_to_json (o : Orchestrator.shard_outcome) =
  match o with
  | Orchestrator.Merged (payload, retries, fired) ->
    Json.Obj
      [
        ("outcome", Json.String "merged");
        ("payload", payload_to_json payload);
        ("retries", Json.List (List.map attempt_log_to_json retries));
        ( "fired",
          Json.List
            (List.map (fun s -> Json.String (Faults.site_name s)) fired) );
      ]
  | Orchestrator.Quarantined logs ->
    Json.Obj
      [
        ("outcome", Json.String "quarantined");
        ("attempts", Json.List (List.map attempt_log_to_json logs));
      ]
  | Orchestrator.Failed msg ->
    Json.Obj [ ("outcome", Json.String "failed"); ("error", Json.String msg) ]

let outcome_of_json json =
  let* kind = req "outcome" Json.to_str json in
  match kind with
  | "merged" ->
    let* payload =
      match Json.member "payload" json with
      | Some j -> payload_of_json j
      | None -> Error "wire: merged outcome missing \"payload\""
    in
    let* retries = list_field "retries" json in
    let* retries = map_result attempt_log_of_json retries in
    let* fired = list_field "fired" json in
    let* fired = map_result site_of_json fired in
    Ok (Orchestrator.Merged (payload, retries, fired))
  | "quarantined" ->
    let* logs = list_field "attempts" json in
    let* logs = map_result attempt_log_of_json logs in
    Ok (Orchestrator.Quarantined logs)
  | "failed" ->
    let* msg = req "error" Json.to_str json in
    Ok (Orchestrator.Failed msg)
  | other -> Error (Printf.sprintf "wire: unknown outcome kind %S" other)
