(** Lease bookkeeping for shards dispatched to remote worker pools.

    A lease is the coordinator's claim that one remote worker owes it one
    shard result, bounded by a heartbeat deadline: a worker that misses its
    deadline (or whose connection drops) forfeits the lease and the shard is
    requeued for deterministic re-execution elsewhere. Deadlines are the
    campaign path's only wall-clock, and that is safe because a lease only
    ever decides {e which} worker executes a shard, never what the shard
    computes — a shard outcome is a pure function of [(env, shard)], so
    expiry timing can perturb latency but not one byte of the merged
    campaign.

    Owned by the daemon's main domain; plain data, no locking. *)

type grant = {
  lease : int;  (** unique per coordinator lifetime *)
  job : string;
  shard : Orchestrator.Shard.t;
  worker : int;  (** connection id of the remote pool holding the lease *)
  grant_attempt : int;
      (** 0 for the shard's first grant, +1 per reassignment or
          chaos-duplicated grant — the [attempt] axis of the
          {!O4a_faults.Faults.Lease_dup} fault stream *)
  mutable deadline : float;
}

type t

val create : timeout:float -> t
(** [timeout] is the heartbeat deadline extension, in seconds. *)

val timeout : t -> float

val grant :
  t -> now:float -> job:string -> shard:Orchestrator.Shard.t -> worker:int ->
  grant
(** Issue a lease with deadline [now + timeout]. *)

val heartbeat : t -> now:float -> worker:int -> leases:int list -> unit
(** Extend the named leases' deadlines to [now + timeout] — but only those
    [worker] actually owns; a worker cannot keep another pool's (or its own
    previous connection's) leases alive by guessing ids. *)

val expired : t -> now:float -> grant list
(** Remove and return every lease whose deadline has passed, in lease-id
    order. The caller requeues each shard (unless a duplicate lease for the
    same shard is still live — see {!has_lease_for}). *)

val drop_worker : t -> worker:int -> grant list
(** Remove and return every lease held by a worker whose connection died —
    the immediate-reassignment path, no need to wait out the deadline. *)

val drop_job : t -> job:string -> grant list
(** Remove every lease of a cancelled job. *)

val complete : t -> lease:int -> (grant * grant list) option
(** Settle a lease against an arriving result. [None] means the lease is
    stale — expired, reassigned, or granted on a previous connection — and
    the result must be dropped. [Some (g, siblings)] returns the settled
    grant plus any revoked sibling leases for the same shard (from a
    chaos-duplicated grant): their results, when they arrive, will be stale,
    which is exactly what keeps a duplicated grant from double-merging. *)

val find : t -> lease:int -> grant option
val has_lease_for : t -> job:string -> shard_index:int -> bool
val live_count : t -> int
