(* Shared NDJSON framing for every listener and client the server library
   owns. TCP (and even Unix-socket) reads deliver arbitrary byte chunks: a
   frame can arrive torn across several reads, or several frames can land in
   one. The framer carries the partial tail between feeds and enforces the
   inbound line cap — the mirror of the daemon's outbound [max_out] bound —
   so a peer that streams an endless line cannot grow a buffer without
   limit. *)

type error = Line_too_long of int

let error_to_string = function
  | Line_too_long cap ->
    Printf.sprintf "request line exceeds the %d-byte frame cap" cap

(* matches the daemon's outbound cap: no legitimate request or result line
   approaches a mebibyte, but a full shard-outcome payload stays well under
   it *)
let default_max_line = 1 lsl 20

type t = {
  max_line : int;
  buf : Buffer.t;  (* the partial line carried between feeds *)
  mutable dead : bool;
}

let create ?(max_line = default_max_line) () =
  { max_line; buf = Buffer.create 256; dead = false }

let max_line t = t.max_line
let pending t = Buffer.length t.buf

(* Feed a chunk; complete lines out, partial tail carried. Once a line
   exceeds the cap the stream can never be re-synchronized (the rest of the
   oversized line would parse as garbage frames), so the framer goes dead
   and every later feed keeps failing — callers drop the connection. *)
let feed t chunk =
  if t.dead then Error (Line_too_long t.max_line)
  else (
    Buffer.add_string t.buf chunk;
    let data = Buffer.contents t.buf in
    let len = String.length data in
    let lines = ref [] in
    let start = ref 0 in
    let overflow = ref false in
    let continue = ref true in
    while !continue && not !overflow do
      match String.index_from_opt data !start '\n' with
      | None -> continue := false
      | Some nl ->
        if nl - !start > t.max_line then overflow := true
        else (
          lines := String.sub data !start (nl - !start) :: !lines;
          start := nl + 1)
    done;
    if !overflow || len - !start > t.max_line then (
      t.dead <- true;
      Buffer.clear t.buf;
      Error (Line_too_long t.max_line))
    else (
      Buffer.clear t.buf;
      Buffer.add_substring t.buf data !start (len - !start);
      Ok (List.rev !lines)))
