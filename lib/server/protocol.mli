(** The campaign server's wire protocol: newline-delimited JSON over a Unix
    domain socket.

    Framing: every message is one compact JSON object on one line. On
    accept, the server writes a {!hello} header line declaring its protocol
    and telemetry-schema versions — the same versioned-header convention the
    JSONL telemetry logs use — and clients {!check_hello} before sending
    anything, refusing servers newer than they understand. After that the
    client sends one {!request} per line; the server answers each with one
    {!ok}/{!error} reply line, except [Watch], whose reply is followed by an
    unbounded stream of {!stream_line} events (backlog first, then live). *)

val version : int
(** Protocol version this library speaks. *)

val hello : O4a_telemetry.Json.t
(** The header line the server writes on every accepted connection. *)

val check_hello : O4a_telemetry.Json.t -> (int, string) result
(** Validate a server's header; the server's protocol version on success. *)

type request =
  | Hello of int  (** optional client echo of its protocol version *)
  | Submit of Jobspec.t
  | Jobs  (** list all jobs *)
  | Watch of { job : string; from : int }
      (** subscribe to a job's event stream, replaying the backlog from line
          [from] first — a late subscriber catches up to exactly what an
          early one saw *)
  | Pause of string
      (** stop dispatching the job's shards; in-flight shards still merge
          and checkpoint, so pause is always consistent *)
  | Resume_job of string
      (** unpause a live job, or revive one from its on-disk spec +
          checkpoint after a server restart *)
  | Cancel of string
  | Metrics of string
      (** snapshot the job's merged analytics series: the reply carries
          {!O4a_analytics.Analytics.to_json} under ["analytics"] (plus the
          Prometheus text rendering under ["prometheus"]), computed at the
          merge barrier — so a snapshot of a finished job is byte-identical
          to what [once4all analyze] reads from its checkpoint *)
  | Shutdown
      (** graceful drain: finish in-flight shards, checkpoint every
          campaign, then exit — the request-level twin of SIGTERM *)

val request_to_json : request -> O4a_telemetry.Json.t
val request_of_json : O4a_telemetry.Json.t -> (request, string) result

type job_state = Queued | Running | Paused | Done | Failed of string | Cancelled

val job_state_to_string : job_state -> string

val job_state_terminal : job_state -> bool
(** [Done]/[Failed]/[Cancelled]: no further stream events will follow. *)

type job_view = {
  v_id : string;
  v_name : string;
  v_state : job_state;
  v_shards_done : int;  (** merged or quarantined by this server process *)
  v_shards_total : int;
  v_findings : int;
  v_quota : int;
}

val job_view_to_json : job_view -> O4a_telemetry.Json.t
val job_view_of_json : O4a_telemetry.Json.t -> (job_view, string) result

val ok : (string * O4a_telemetry.Json.t) list -> O4a_telemetry.Json.t
val error : string -> O4a_telemetry.Json.t

val reply_error : O4a_telemetry.Json.t -> string option
(** [None] when the reply is [ok:true]; the error message otherwise. *)

val stream_line :
  job:string -> kind:string -> O4a_telemetry.Json.t -> O4a_telemetry.Json.t
(** One subscriber event: [{"job";"kind";"data"}]. Kinds: ["telemetry"] (a
    forwarded campaign event), ["finding"], ["health"], ["quarantine"],
    ["progress"], ["state"]. *)
