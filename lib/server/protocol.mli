(** The campaign server's wire protocol: newline-delimited JSON over a Unix
    domain socket.

    Framing: every message is one compact JSON object on one line. On
    accept, the server writes a {!hello} header line declaring its protocol
    and telemetry-schema versions — the same versioned-header convention the
    JSONL telemetry logs use — and clients {!check_hello} before sending
    anything, refusing servers newer than they understand. After that the
    client sends one {!request} per line; the server answers each with one
    {!ok}/{!error} reply line, except [Watch], whose reply is followed by an
    unbounded stream of {!stream_line} events (backlog first, then live). *)

val version : int
(** Protocol version this library speaks. *)

val hello : O4a_telemetry.Json.t
(** The header line the server writes on every accepted connection. *)

val check_hello : O4a_telemetry.Json.t -> (int, string) result
(** Validate a server's header; the server's protocol version on success. *)

type request =
  | Hello of int  (** optional client echo of its protocol version *)
  | Submit of Jobspec.t
  | Jobs  (** list all jobs *)
  | Watch of { job : string; from : int }
      (** subscribe to a job's event stream, replaying the backlog from line
          [from] first — a late subscriber catches up to exactly what an
          early one saw *)
  | Pause of string
      (** stop dispatching the job's shards; in-flight shards still merge
          and checkpoint, so pause is always consistent *)
  | Resume_job of string
      (** unpause a live job, or revive one from its on-disk spec +
          checkpoint after a server restart *)
  | Cancel of string
  | Metrics of string
      (** snapshot the job's merged analytics series: the reply carries
          {!O4a_analytics.Analytics.to_json} under ["analytics"] (plus the
          Prometheus text rendering under ["prometheus"]), computed at the
          merge barrier — so a snapshot of a finished job is byte-identical
          to what [once4all analyze] reads from its checkpoint *)
  | Shutdown
      (** graceful drain: finish in-flight shards, checkpoint every
          campaign, then exit — the request-level twin of SIGTERM *)
  | Worker_register of { slots : int }
      (** enroll this connection as a remote worker pool with [slots]
          concurrent shard slots; after the [ok] reply the server pushes
          {!worker_msg} lines at it *)
  | Worker_heartbeat of { leases : int list }
      (** extend the named leases' deadlines; an empty list is a pure
          liveness beacon. No reply — the post-registration channel is
          message-oriented *)
  | Worker_result of { lease : int; outcome : O4a_telemetry.Json.t }
      (** a finished shard: [outcome] is a {!Wire}-encoded
          {!Orchestrator.shard_outcome}. No reply; a stale lease (expired,
          reassigned, or from a previous connection) is silently dropped *)

val request_to_json : request -> O4a_telemetry.Json.t
val request_of_json : O4a_telemetry.Json.t -> (request, string) result

type job_state = Queued | Running | Paused | Done | Failed of string | Cancelled

val job_state_to_string : job_state -> string

val job_state_terminal : job_state -> bool
(** [Done]/[Failed]/[Cancelled]: no further stream events will follow. *)

type job_view = {
  v_id : string;
  v_name : string;
  v_state : job_state;
  v_shards_done : int;  (** merged or quarantined by this server process *)
  v_shards_total : int;
  v_findings : int;
  v_quota : int;
}

val job_view_to_json : job_view -> O4a_telemetry.Json.t
val job_view_of_json : O4a_telemetry.Json.t -> (job_view, string) result

val ok : (string * O4a_telemetry.Json.t) list -> O4a_telemetry.Json.t
val error : string -> O4a_telemetry.Json.t

val error_coded : code:string -> string -> O4a_telemetry.Json.t
(** An [ok:false] reply carrying a machine-readable ["code"] next to the
    prose, for failures a client may want to branch on. *)

val code_line_too_long : string
(** The typed code sent (with a disconnect) when a request line exceeds the
    daemon's inbound frame cap. *)

val code_handshake_timeout : string
val code_idle_timeout : string

val error_code : O4a_telemetry.Json.t -> string option

val reply_error : O4a_telemetry.Json.t -> string option
(** [None] when the reply is [ok:true]; the error message otherwise. *)

val stream_line :
  job:string -> kind:string -> O4a_telemetry.Json.t -> O4a_telemetry.Json.t
(** One subscriber event: [{"job";"kind";"data"}]. Kinds: ["telemetry"] (a
    forwarded campaign event), ["finding"], ["health"], ["quarantine"],
    ["progress"], ["plateau"], ["lease"], ["state"]. *)

(** {1 Coordinator → worker push messages}

    Replies carry an ["ok"] field and pushes a ["msg"] field, so both can
    share a registered worker's connection without ambiguity. *)

val shard_to_json : Orchestrator.Shard.t -> O4a_telemetry.Json.t
val shard_of_json : O4a_telemetry.Json.t -> (Orchestrator.Shard.t, string) result

type worker_msg =
  | Grant of {
      lease : int;
      job : string;
      grant_attempt : int;
          (** 0 for the first grant of the shard, +1 per reassignment (or
              chaos-injected duplicate) — coordinator bookkeeping, echoed
              for observability *)
      shard : Orchestrator.Shard.t;
      spec : Jobspec.t;
          (** the full job spec rides along so a worker can rebuild the
              campaign environment from scratch — same
              generators/seeds/fault plan as the coordinator's own pool *)
    }
  | Drain  (** finish in-flight shards, send their results, disconnect *)

val worker_msg_to_json : worker_msg -> O4a_telemetry.Json.t
val worker_msg_of_json : O4a_telemetry.Json.t -> (worker_msg, string) result
