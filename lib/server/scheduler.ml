module Shard = Orchestrator.Shard

(* Fair round-robin over jobs with per-job quotas. Plain data, no locking —
   the daemon guards one instance with its pool mutex, and the tests drive
   one directly.

   A *round* gives every runnable job up to [quota] shard dispatches; within
   a round, picks rotate job-to-job (not quota-at-a-time), so two jobs with
   equal quotas interleave shard-for-shard. When no job can be picked under
   the current round's spends but runnable work remains, a new round begins.
   Every runnable job with pending work therefore dispatches at least one
   shard per round regardless of the other jobs' quotas — no job can be
   starved — and jobs with equal quotas and equal shard counts finish within
   one round of each other. *)

type slot = {
  key : string;
  quota : int;
  mutable pending : Shard.t list;  (* in dispatch order *)
  mutable runnable : bool;
  mutable round_spent : int;
  mutable dispatched : int;
}

type t = { mutable slots : slot list; mutable cursor : int }

let create () = { slots = []; cursor = 0 }

let find t key = List.find_opt (fun s -> s.key = key) t.slots

let add t ~key ~quota shards =
  if quota < 1 then invalid_arg "Scheduler.add: quota must be >= 1";
  match find t key with
  | Some _ -> invalid_arg (Printf.sprintf "Scheduler.add: duplicate key %S" key)
  | None ->
    t.slots <-
      t.slots
      @ [
          {
            key;
            quota;
            pending = shards;
            runnable = true;
            round_spent = 0;
            dispatched = 0;
          };
        ]

let set_runnable t ~key runnable =
  match find t key with Some s -> s.runnable <- runnable | None -> ()

let remove t ~key =
  t.slots <- List.filter (fun s -> s.key <> key) t.slots;
  if t.cursor >= List.length t.slots then t.cursor <- 0

let pending t ~key =
  match find t key with Some s -> List.length s.pending | None -> 0

(* An expired lease hands its shard back; it goes to the queue's front so a
   reassignment is the very next dispatch for that job. The shard's result
   is a pure function of (env, shard), so where it lands in the dispatch
   order cannot perturb the campaign. *)
let requeue t ~key shard =
  match find t key with
  | Some s -> s.pending <- shard :: s.pending
  | None -> ()

let has_work s = s.runnable && s.pending <> []
let eligible s = has_work s && s.round_spent < s.quota

let idle t = not (List.exists has_work t.slots)

let pick_from slot =
  match slot.pending with
  | [] -> assert false
  | shard :: rest ->
    slot.pending <- rest;
    slot.round_spent <- slot.round_spent + 1;
    slot.dispatched <- slot.dispatched + 1;
    Some (slot.key, shard)

(* scan the rotation starting after the cursor; [pred] selects candidates *)
let scan t pred =
  let arr = Array.of_list t.slots in
  let n = Array.length arr in
  let rec go i =
    if i >= n then None
    else (
      let idx = (t.cursor + i) mod n in
      if pred arr.(idx) then (
        t.cursor <- (idx + 1) mod n;
        pick_from arr.(idx))
      else go (i + 1))
  in
  if n = 0 then None else go 0

let next t =
  match scan t eligible with
  | Some pick -> Some pick
  | None ->
    if idle t then None
    else (
      (* new round: everyone's fair share resets *)
      List.iter (fun s -> s.round_spent <- 0) t.slots;
      scan t eligible)

let stats t ~key =
  match find t key with
  | Some s -> Some (List.length s.pending, s.dispatched)
  | None -> None
