(** A remote worker pool: the executing half of the distributed campaign
    fabric ([once4all worker --connect HOST:PORT]).

    Connects to a coordinator, registers [slots] executor domains, and runs
    granted shards with the exact pipeline the coordinator's local pool
    uses — {!Once4all.Campaign.prepare} from the granted spec,
    {!Orchestrator.make_env}, {!Orchestrator.exec_shard} — so a shard
    executed remotely is bit-for-bit the shard the coordinator would have
    executed itself. Results stream back as they finish; heartbeats carry
    the in-flight lease ids on a timer owned by the socket thread, so a
    shard may legitimately take longer than the lease timeout without
    forfeiting it. *)

type config = {
  addr : Addr.t;  (** coordinator endpoint *)
  slots : int;  (** executor domains (>= 1) *)
  connect_timeout : float;
      (** total retry budget for the initial connect, seconds *)
  heartbeat_interval : float;
      (** seconds between heartbeats; keep well under the coordinator's
          lease timeout (default: a third of it) *)
  quit_after : int option;
      (** test hook: after sending N results, die abruptly with the next
          lease unsettled — the coordinator sees the connection drop and
          reassigns the shard. [None] in production. *)
}

val default_heartbeat_interval : float

val run : config -> int
(** Run until the coordinator sends [Drain] (exit 0, after delivering every
    in-flight result) or the connection is lost / [quit_after] trips
    (exit 1). Exit 2 on bad configuration. *)
