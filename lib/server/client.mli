(** Blocking client for the campaign server's socket protocol — what the
    [submit]/[jobs]/[watch]/[pause]/[resume-job]/[cancel] subcommands and
    the server tests are built on. Speaks the identical protocol over a
    Unix-domain socket ({!Addr.Unix_path}) or TCP ({!Addr.Tcp}). *)

type t

val connect : ?timeout:float -> Addr.t -> (t, string) result
(** Connect and validate the server's hello header ({!Protocol.check_hello});
    refuses servers speaking a newer protocol.

    [timeout] (default 0 = one attempt) is a total retry budget in seconds:
    transient transport errors — no socket file yet, connection refused,
    host briefly unreachable — retry with doubling backoff until the budget
    runs out. The final error distinguishes a socket file that does not
    exist (server not running / still starting: waiting can help) from one
    that exists but refuses connections (stale socket left by a dead
    server: waiting cannot). *)

val send : t -> Protocol.request -> (unit, string) result
(** Write one request line without reading a reply — building block for
    asymmetric exchanges (the remote worker's result/heartbeat pushes). *)

val request :
  t -> Protocol.request -> (O4a_telemetry.Json.t, string) result
(** Send one request, read its one-line reply. [Error] covers transport
    failures and [ok:false] replies alike (the server's error message). *)

val stream :
  t ->
  Protocol.request ->
  on_line:(O4a_telemetry.Json.t -> bool) ->
  (O4a_telemetry.Json.t, string) result
(** Send a streaming request (Watch): after its [ok] reply — returned on
    success — every subsequent line is handed to [on_line] until it returns
    [false] or the server closes the stream. *)

val fd : t -> Unix.file_descr
(** The underlying descriptor, for callers that multiplex the connection
    with [select] after the handshake (the remote worker's socket loop).
    Mixing raw-fd reads with {!request} is only safe once no buffered reply
    can be pending — the hello header is the last line this module reads on
    the worker path. *)

val close : t -> unit
