(** Blocking client for the campaign server's socket protocol — what the
    [submit]/[jobs]/[watch]/[pause]/[resume-job]/[cancel] subcommands and
    the server tests are built on. *)

type t

val connect : socket:string -> (t, string) result
(** Connect and validate the server's hello header ({!Protocol.check_hello});
    refuses servers speaking a newer protocol. *)

val request :
  t -> Protocol.request -> (O4a_telemetry.Json.t, string) result
(** Send one request, read its one-line reply. [Error] covers transport
    failures and [ok:false] replies alike (the server's error message). *)

val stream :
  t ->
  Protocol.request ->
  on_line:(O4a_telemetry.Json.t -> bool) ->
  (O4a_telemetry.Json.t, string) result
(** Send a streaming request (Watch): after its [ok] reply — returned on
    success — every subsequent line is handed to [on_line] until it returns
    [false] or the server closes the stream. *)

val close : t -> unit
