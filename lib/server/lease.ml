module Shard = Orchestrator.Shard

(* Lease bookkeeping for shards dispatched to remote worker pools.

   A lease is the coordinator's claim that one remote worker owes it one
   shard result, bounded by a heartbeat deadline. Deadlines use wall-clock
   time — the only wall-clock in the whole campaign path — and that is safe
   because a lease only ever decides WHICH worker executes a shard, never
   what the shard computes: a shard outcome is a pure function of
   (env, shard), so expiring early, late, or never cannot perturb the merged
   campaign, only its latency.

   Owned by the daemon's main domain; plain data, no locking. *)

type grant = {
  lease : int;  (* unique per coordinator lifetime *)
  job : string;
  shard : Shard.t;
  worker : int;  (* connection id of the remote pool *)
  grant_attempt : int;  (* 0 first grant, +1 per reassignment/duplicate *)
  mutable deadline : float;
}

type t = {
  timeout : float;
  mutable next_lease : int;
  live : (int, grant) Hashtbl.t;  (* lease id -> grant *)
  grants_made : (string * int, int) Hashtbl.t;
      (* (job, shard index) -> grants issued so far, for attempt numbering *)
}

let create ~timeout =
  {
    timeout;
    next_lease = 1;
    live = Hashtbl.create 64;
    grants_made = Hashtbl.create 64;
  }

let timeout t = t.timeout
let live_count t = Hashtbl.length t.live
let find t ~lease = Hashtbl.find_opt t.live lease

let grant t ~now ~job ~shard ~worker =
  let key = (job, shard.Shard.index) in
  let grant_attempt =
    Option.value ~default:0 (Hashtbl.find_opt t.grants_made key)
  in
  Hashtbl.replace t.grants_made key (grant_attempt + 1);
  let g =
    {
      lease = t.next_lease;
      job;
      shard;
      worker;
      grant_attempt;
      deadline = now +. t.timeout;
    }
  in
  t.next_lease <- t.next_lease + 1;
  Hashtbl.replace t.live g.lease g;
  g

(* a heartbeat extends only leases the beating worker actually owns: a
   worker cannot keep another pool's (or its own previous connection's)
   leases alive by guessing ids *)
let heartbeat t ~now ~worker ~leases =
  List.iter
    (fun lease ->
      match Hashtbl.find_opt t.live lease with
      | Some g when g.worker = worker -> g.deadline <- now +. t.timeout
      | Some _ | None -> ())
    leases

let take_matching t pred =
  let gone =
    Hashtbl.fold (fun _ g acc -> if pred g then g :: acc else acc) t.live []
  in
  List.iter (fun g -> Hashtbl.remove t.live g.lease) gone;
  List.sort (fun a b -> compare a.lease b.lease) gone

let expired t ~now = take_matching t (fun g -> g.deadline < now)
let drop_worker t ~worker = take_matching t (fun g -> g.worker = worker)

let siblings t g =
  take_matching t (fun s ->
      s.lease <> g.lease && s.job = g.job
      && s.shard.Shard.index = g.shard.Shard.index)

let complete t ~lease =
  match Hashtbl.find_opt t.live lease with
  | None -> None  (* stale: expired, reassigned, or a prior connection's *)
  | Some g ->
    Hashtbl.remove t.live g.lease;
    (* a duplicated grant means a sibling worker may still deliver the same
       shard; revoke the sibling leases now so that result arrives stale and
       is dropped instead of double-merging *)
    Some (g, siblings t g)

let has_lease_for t ~job ~shard_index =
  Hashtbl.fold
    (fun _ g acc ->
      acc || (g.job = job && g.shard.Shard.index = shard_index))
    t.live false

let drop_job t ~job = take_matching t (fun g -> g.job = job)
