module Json = O4a_telemetry.Json

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

(* Blocking line-oriented client over the daemon's Unix socket or TCP
   listener. One request per line out, one JSON document per line in — the
   only subtlety is the hello handshake: the first line on every connection
   is the server's versioned header, checked before anything else is sent. *)

let fd t = t.fd

let close t =
  (try close_out_noerr t.oc with _ -> ());
  (try close_in_noerr t.ic with _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let read_json t =
  match input_line t.ic with
  | exception End_of_file -> Error "server closed the connection"
  | exception Sys_error msg -> Error msg
  | line -> Json.parse line

(* The two ways a connect can fail before the server is even involved get
   distinct diagnostics, because they call for opposite reactions:
   - no socket file yet: the daemon is not running (or is still binding) —
     waiting can help, so say so;
   - the file exists but nothing accepts: a dead server left its socket
     behind — waiting is useless, the file needs removing (a fresh server
     unlinks it itself). *)
let diagnose addr err =
  match (addr, err) with
  | Addr.Unix_path path, Unix.ENOENT ->
    Printf.sprintf
      "cannot connect to %s: no such socket file (server not running, or \
       still starting — --connect-timeout waits for it)"
      path
  | Addr.Unix_path path, Unix.ECONNREFUSED when Sys.file_exists path ->
    Printf.sprintf
      "socket file %s exists but nothing is accepting on it — stale socket \
       left by a dead server? remove it or restart the server"
      path
  | addr, err ->
    Printf.sprintf "cannot connect to %s: %s (is the server running?)"
      (Addr.to_string addr) (Unix.error_message err)

let sockaddr_of = function
  | Addr.Unix_path path -> Ok (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Addr.Tcp (host, port) ->
    Result.map
      (fun sa -> (Unix.domain_of_sockaddr sa, sa))
      (Addr.resolve ~host ~port)

let transient = function
  | Unix.ENOENT | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ETIMEDOUT
  | Unix.EHOSTUNREACH | Unix.ENETUNREACH | Unix.EAGAIN | Unix.EINTR ->
    true
  | _ -> false

let connect_once addr =
  match sockaddr_of addr with
  | Error msg -> Error (`Fatal msg)
  | Ok (domain, sa) -> (
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd sa with
    | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if transient err then Error (`Transient err) else Error (`Fatal (diagnose addr err))
    | () -> (
      let t =
        {
          fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
        }
      in
      match Result.bind (read_json t) Protocol.check_hello with
      | Error msg ->
        close t;
        Error (`Fatal msg)
      | Ok _proto -> Ok t))

(* Bounded retry with backoff: [timeout] is the total budget in seconds
   (0 = exactly one attempt). Only pre-handshake transport errors retry — a
   server that answers with a bad hello is not going to get better. *)
let connect ?(timeout = 0.) addr =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go delay =
    match connect_once addr with
    | Ok t -> Ok t
    | Error (`Fatal msg) -> Error msg
    | Error (`Transient err) ->
      let now = Unix.gettimeofday () in
      if now >= deadline then Error (diagnose addr err)
      else (
        let sleep = Float.min delay (Float.max 0. (deadline -. now)) in
        Unix.sleepf sleep;
        go (Float.min (delay *. 2.) 0.5))
  in
  go 0.05

let send t req =
  match
    output_string t.oc (Json.to_string (Protocol.request_to_json req) ^ "\n");
    flush t.oc
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg

(* one request, one reply; Error for transport failures AND ok:false replies *)
let request t req =
  Result.bind (send t req) (fun () ->
      Result.bind (read_json t) (fun reply ->
          match Protocol.reply_error reply with
          | Some msg -> Error msg
          | None -> Ok reply))

let stream t req ~on_line =
  Result.bind (request t req) (fun reply ->
      let rec go () =
        match read_json t with
        | Error _ -> Ok ()  (* stream ended: server closed or drained *)
        | Ok json -> if on_line json then go () else Ok ()
      in
      Result.map (fun () -> reply) (go ()))
