module Json = O4a_telemetry.Json

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

(* Blocking line-oriented client over the daemon's Unix socket. One request
   per line out, one JSON document per line in — the only subtlety is the
   hello handshake: the first line on every connection is the server's
   versioned header, checked before anything else is sent. *)

let close t =
  (try close_out_noerr t.oc with _ -> ());
  (try close_in_noerr t.ic with _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let read_json t =
  match input_line t.ic with
  | exception End_of_file -> Error "server closed the connection"
  | exception Sys_error msg -> Error msg
  | line -> Json.parse line

let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "cannot connect to %s: %s (is the server running?)"
         socket (Unix.error_message err))
  | () -> (
    let t =
      {
        fd;
        ic = Unix.in_channel_of_descr fd;
        oc = Unix.out_channel_of_descr fd;
      }
    in
    match Result.bind (read_json t) Protocol.check_hello with
    | Error msg ->
      close t;
      Error msg
    | Ok _proto -> Ok t)

let send t req =
  match
    output_string t.oc (Json.to_string (Protocol.request_to_json req) ^ "\n");
    flush t.oc
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg

(* one request, one reply; Error for transport failures AND ok:false replies *)
let request t req =
  Result.bind (send t req) (fun () ->
      Result.bind (read_json t) (fun reply ->
          match Protocol.reply_error reply with
          | Some msg -> Error msg
          | None -> Ok reply))

let stream t req ~on_line =
  Result.bind (request t req) (fun reply ->
      let rec go () =
        match read_json t with
        | Error _ -> Ok ()  (* stream ended: server closed or drained *)
        | Ok json -> if on_line json then go () else Ok ()
      in
      Result.map (fun () -> reply) (go ()))
