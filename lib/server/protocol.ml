module Json = O4a_telemetry.Json
module Event = O4a_telemetry.Event

let version = 1

(* ------------------------------------------------------------------ *)
(* Handshake                                                           *)
(* ------------------------------------------------------------------ *)

(* Mirrors the telemetry schema-header convention: the first line on every
   accepted connection declares the wire versions, and clients refuse to talk
   to a server whose protocol is newer than they understand rather than
   misparse it. *)
let hello_event = "server.hello"

let hello =
  Json.Obj
    [
      ("event", Json.String hello_event);
      ("proto", Json.Int version);
      ("schema", Json.Int Event.schema_version);
    ]

let check_hello json =
  match
    ( Option.bind (Json.member "event" json) Json.to_str,
      Option.bind (Json.member "proto" json) Json.to_int )
  with
  | Some ev, Some proto when ev = hello_event ->
    if proto > version then
      Error
        (Printf.sprintf
           "server speaks protocol %d, newer than this client understands \
            (%d); refusing to misparse it"
           proto version)
    else Ok proto
  | _ -> Error "not a once4all server (no hello header on connect)"

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type request =
  | Hello of int
  | Submit of Jobspec.t
  | Jobs
  | Watch of { job : string; from : int }
  | Pause of string
  | Resume_job of string
  | Cancel of string
  | Metrics of string
  | Shutdown
  | Worker_register of { slots : int }
  | Worker_heartbeat of { leases : int list }
  | Worker_result of { lease : int; outcome : Json.t }

let request_to_json = function
  | Hello proto ->
    Json.Obj [ ("req", Json.String "hello"); ("proto", Json.Int proto) ]
  | Submit spec ->
    Json.Obj [ ("req", Json.String "submit"); ("spec", Jobspec.to_json spec) ]
  | Jobs -> Json.Obj [ ("req", Json.String "jobs") ]
  | Watch { job; from } ->
    Json.Obj
      [
        ("req", Json.String "watch");
        ("job", Json.String job);
        ("from", Json.Int from);
      ]
  | Pause job ->
    Json.Obj [ ("req", Json.String "pause"); ("job", Json.String job) ]
  | Resume_job job ->
    Json.Obj [ ("req", Json.String "resume"); ("job", Json.String job) ]
  | Cancel job ->
    Json.Obj [ ("req", Json.String "cancel"); ("job", Json.String job) ]
  | Metrics job ->
    Json.Obj [ ("req", Json.String "metrics"); ("job", Json.String job) ]
  | Shutdown -> Json.Obj [ ("req", Json.String "shutdown") ]
  | Worker_register { slots } ->
    Json.Obj [ ("req", Json.String "worker"); ("slots", Json.Int slots) ]
  | Worker_heartbeat { leases } ->
    Json.Obj
      [
        ("req", Json.String "heartbeat");
        ("leases", Json.List (List.map (fun l -> Json.Int l) leases));
      ]
  | Worker_result { lease; outcome } ->
    Json.Obj
      [
        ("req", Json.String "result");
        ("lease", Json.Int lease);
        ("outcome", outcome);
      ]

let job_field json =
  match Option.bind (Json.member "job" json) Json.to_str with
  | Some j -> Ok j
  | None -> Error "request: missing or invalid field \"job\""

let request_of_json json =
  match Option.bind (Json.member "req" json) Json.to_str with
  | None -> Error "request: missing or invalid field \"req\""
  | Some "hello" -> (
    match Option.bind (Json.member "proto" json) Json.to_int with
    | Some p -> Ok (Hello p)
    | None -> Error "request: hello without a \"proto\" version")
  | Some "submit" -> (
    match Json.member "spec" json with
    | None -> Error "request: submit without a \"spec\" object"
    | Some spec_json ->
      Result.map (fun spec -> Submit spec) (Jobspec.of_json spec_json))
  | Some "jobs" -> Ok Jobs
  | Some "watch" ->
    Result.map
      (fun job ->
        let from =
          Option.value ~default:0
            (Option.bind (Json.member "from" json) Json.to_int)
        in
        Watch { job; from = max 0 from })
      (job_field json)
  | Some "pause" -> Result.map (fun j -> Pause j) (job_field json)
  | Some "resume" -> Result.map (fun j -> Resume_job j) (job_field json)
  | Some "cancel" -> Result.map (fun j -> Cancel j) (job_field json)
  | Some "metrics" -> Result.map (fun j -> Metrics j) (job_field json)
  | Some "shutdown" -> Ok Shutdown
  | Some "worker" ->
    let slots =
      Option.value ~default:1
        (Option.bind (Json.member "slots" json) Json.to_int)
    in
    if slots < 1 then Error "request: worker registration needs slots >= 1"
    else Ok (Worker_register { slots })
  | Some "heartbeat" -> (
    match Json.member "leases" json with
    | Some (Json.List ls) ->
      let leases = List.filter_map Json.to_int ls in
      Ok (Worker_heartbeat { leases })
    | None -> Ok (Worker_heartbeat { leases = [] })
    | Some _ -> Error "request: heartbeat \"leases\" must be a list")
  | Some "result" -> (
    match
      ( Option.bind (Json.member "lease" json) Json.to_int,
        Json.member "outcome" json )
    with
    | Some lease, Some outcome -> Ok (Worker_result { lease; outcome })
    | _ -> Error "request: result needs \"lease\" and \"outcome\"")
  | Some other -> Error (Printf.sprintf "request: unknown verb %S" other)

(* ------------------------------------------------------------------ *)
(* Job views                                                           *)
(* ------------------------------------------------------------------ *)

type job_state =
  | Queued
  | Running
  | Paused
  | Done
  | Failed of string
  | Cancelled

let job_state_to_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Paused -> "paused"
  | Done -> "done"
  | Failed _ -> "failed"
  | Cancelled -> "cancelled"

let job_state_terminal = function
  | Done | Failed _ | Cancelled -> true
  | Queued | Running | Paused -> false

type job_view = {
  v_id : string;
  v_name : string;
  v_state : job_state;
  v_shards_done : int;
  v_shards_total : int;
  v_findings : int;
  v_quota : int;
}

let job_view_to_json v =
  Json.Obj
    ([
       ("id", Json.String v.v_id);
       ("name", Json.String v.v_name);
       ("state", Json.String (job_state_to_string v.v_state));
       ("shards_done", Json.Int v.v_shards_done);
       ("shards_total", Json.Int v.v_shards_total);
       ("findings", Json.Int v.v_findings);
       ("quota", Json.Int v.v_quota);
     ]
    @ match v.v_state with Failed msg -> [ ("error", Json.String msg) ] | _ -> [])

let job_view_of_json json =
  let str k = Option.bind (Json.member k json) Json.to_str in
  let int k =
    Option.value ~default:0 (Option.bind (Json.member k json) Json.to_int)
  in
  match (str "id", str "name", str "state") with
  | Some v_id, Some v_name, Some state ->
    let v_state =
      match state with
      | "queued" -> Ok Queued
      | "running" -> Ok Running
      | "paused" -> Ok Paused
      | "done" -> Ok Done
      | "cancelled" -> Ok Cancelled
      | "failed" ->
        Ok (Failed (Option.value ~default:"unknown failure" (str "error")))
      | other -> Error (Printf.sprintf "job view: unknown state %S" other)
    in
    Result.map
      (fun v_state ->
        {
          v_id;
          v_name;
          v_state;
          v_shards_done = int "shards_done";
          v_shards_total = int "shards_total";
          v_findings = int "findings";
          v_quota = int "quota";
        })
      v_state
  | _ -> Error "job view: missing id/name/state"

(* ------------------------------------------------------------------ *)
(* Replies and stream lines                                            *)
(* ------------------------------------------------------------------ *)

let ok fields = Json.Obj (("ok", Json.Bool true) :: fields)
let error msg = Json.Obj [ ("ok", Json.Bool false); ("error", Json.String msg) ]

(* typed errors carry a machine-readable code next to the prose, so clients
   (and tests) can distinguish e.g. an oversized-line disconnect from a
   malformed request without parsing English *)
let error_coded ~code msg =
  Json.Obj
    [
      ("ok", Json.Bool false);
      ("code", Json.String code);
      ("error", Json.String msg);
    ]

let code_line_too_long = "line_too_long"
let code_handshake_timeout = "handshake_timeout"
let code_idle_timeout = "idle_timeout"

let error_code json = Option.bind (Json.member "code" json) Json.to_str

let reply_error json =
  match Option.bind (Json.member "ok" json) Json.to_bool with
  | Some true -> None
  | _ ->
    Some
      (Option.value ~default:"malformed reply from server"
         (Option.bind (Json.member "error" json) Json.to_str))

let stream_line ~job ~kind data =
  Json.Obj [ ("job", Json.String job); ("kind", Json.String kind); ("data", data) ]

(* ------------------------------------------------------------------ *)
(* Coordinator -> worker push messages                                  *)
(* ------------------------------------------------------------------ *)

(* Replies carry an ["ok"] field and pushes a ["msg"] field, so the two can
   share a registered worker's connection without ambiguity. *)

module Shard = Orchestrator.Shard

let shard_to_json (s : Shard.t) =
  Json.Obj
    [
      ("index", Json.Int s.Shard.index);
      ("first_tick", Json.Int s.Shard.first_tick);
      ("ticks", Json.Int s.Shard.ticks);
    ]

let shard_of_json json =
  match
    ( Option.bind (Json.member "index" json) Json.to_int,
      Option.bind (Json.member "first_tick" json) Json.to_int,
      Option.bind (Json.member "ticks" json) Json.to_int )
  with
  | Some index, Some first_tick, Some ticks ->
    Ok { Shard.index; first_tick; ticks }
  | _ -> Error "shard: missing index/first_tick/ticks"

type worker_msg =
  | Grant of {
      lease : int;
      job : string;
      grant_attempt : int;
      shard : Shard.t;
      spec : Jobspec.t;
    }
  | Drain

let worker_msg_to_json = function
  | Grant { lease; job; grant_attempt; shard; spec } ->
    Json.Obj
      [
        ("msg", Json.String "grant");
        ("lease", Json.Int lease);
        ("job", Json.String job);
        ("attempt", Json.Int grant_attempt);
        ("shard", shard_to_json shard);
        ("spec", Jobspec.to_json spec);
      ]
  | Drain -> Json.Obj [ ("msg", Json.String "drain") ]

let worker_msg_of_json json =
  match Option.bind (Json.member "msg" json) Json.to_str with
  | None -> Error "worker message: missing field \"msg\""
  | Some "drain" -> Ok Drain
  | Some "grant" -> (
    match
      ( Option.bind (Json.member "lease" json) Json.to_int,
        Option.bind (Json.member "job" json) Json.to_str,
        Json.member "shard" json,
        Json.member "spec" json )
    with
    | Some lease, Some job, Some shard_json, Some spec_json ->
      Result.bind (shard_of_json shard_json) (fun shard ->
          Result.map
            (fun spec ->
              Grant
                {
                  lease;
                  job;
                  grant_attempt =
                    Option.value ~default:0
                      (Option.bind (Json.member "attempt" json) Json.to_int);
                  shard;
                  spec;
                })
            (Jobspec.of_json spec_json))
    | _ -> Error "worker message: grant needs lease/job/shard/spec")
  | Some other -> Error (Printf.sprintf "worker message: unknown kind %S" other)
