(** The campaign server: a persistent daemon multiplexing many concurrent
    fuzzing campaigns over one shared worker-domain pool and any number of
    remote worker pools connected over TCP.

    Architecture — the same pieces {!Orchestrator.run} assembles for one
    campaign, assembled for many:

    - One {e main domain} owns everything: the accept/select loop (Unix
      socket, plus an optional TCP listener carrying the identical
      protocol), every job's {!Orchestrator.Merge.t} (single-owner merge,
      exactly as in the standalone orchestrator), the job table, the lease
      table, and all subscriber fan-out. Workers wake it through a
      self-pipe after pushing results.
    - A fixed pool of {e local worker domains} (possibly zero) pulls
      [(job, shard)] pairs from one {!Scheduler} (fair round-robin with
      per-job quotas) and executes them with {!Orchestrator.exec_shard}.
    - {e Remote worker pools} ([once4all worker --connect HOST:PORT])
      register over the same protocol and are granted shards under
      heartbeat-deadlined {!Lease}s; a missed heartbeat or dropped
      connection forfeits the lease and the shard is requeued. A shard
      outcome is a pure function of [(env, shard)], so which worker —
      local, remote, or a reassignment after a mid-shard death — runs it
      cannot perturb any campaign's results: every job lands on the report
      the standalone run produces, byte for byte.
    - Each job lives under [state_dir/<id>/]: [spec.json],
      [checkpoint.json] (updated after every merged shard), [report.txt]
      (written through {!Render} on completion — the standalone run's
      stdout), optional [trace/] bundles and [telemetry.jsonl], and a
      [status] file. When the TCP listener is enabled the bound port is
      written to [state_dir/tcp.port] (useful with port 0).

    Inbound robustness: request lines are length-capped (the mirror of the
    outbound slow-subscriber cap) — an oversized line earns a typed
    [line_too_long] error and a disconnect; a connection that never sends a
    valid request within the handshake deadline, or idles past the idle
    deadline (watch subscribers exempt), is dropped with a typed error.

    Shutdown: SIGTERM (via {!Orchestrator.Stop}, installed by the CLI) or a
    protocol [Shutdown] request both drain gracefully — local workers
    finish their in-flight shard, every result merges and checkpoints,
    remote pools are sent [Drain] (their in-flight shards are forfeited;
    the checkpoint re-runs them on revive), and every live job is left
    paused and resumable ([Resume_job] revives it, even after a server
    restart). *)

type config = {
  socket_path : string;  (** Unix-domain socket to listen on *)
  state_dir : string;  (** per-job state root, created if missing *)
  pool : int;
      (** local worker domains shared by all campaigns (>= 0; 0 means
          every shard runs on remote worker pools) *)
  tcp : string option;
      (** optional TCP listener spec, ["PORT"] or ["HOST:PORT"]; port 0
          binds an ephemeral port, recorded in [state_dir/tcp.port] *)
  handshake_timeout : float;
      (** seconds a connection may live without one valid request *)
  idle_timeout : float;
      (** seconds a non-subscriber connection may sit silent *)
  lease_timeout : float;
      (** heartbeat deadline for remote shard leases, in seconds *)
}

val default_handshake_timeout : float
val default_idle_timeout : float
val default_lease_timeout : float

val run : config -> int
(** Run the daemon until SIGTERM/SIGINT ({!Orchestrator.Stop.requested}) or
    a [Shutdown] request, then drain and return the exit code (0; 1 if a
    listener could not be bound). Installs no signal handlers itself beyond
    ignoring SIGPIPE — callers that want the two-signal contract install
    {!Orchestrator.Stop.install_handlers}. *)
