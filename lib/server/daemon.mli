(** The campaign server: a persistent daemon multiplexing many concurrent
    fuzzing campaigns over one shared worker-domain pool.

    Architecture — the same pieces {!Orchestrator.run} assembles for one
    campaign, assembled for many:

    - One {e main domain} owns everything: the Unix-socket accept/select
      loop, every job's {!Orchestrator.Merge.t} (single-owner merge, exactly
      as in the standalone orchestrator), the job table, and all subscriber
      fan-out. Workers wake it through a self-pipe after pushing results.
    - A fixed pool of {e worker domains} pulls [(job, shard)] pairs from one
      {!Scheduler} (fair round-robin with per-job quotas) and executes them
      with {!Orchestrator.exec_shard}. A shard outcome is a pure function of
      [(env, shard)], so which worker runs it, and which other campaigns'
      shards interleave around it, cannot perturb any campaign's results —
      every job lands on the report the standalone run produces.
    - Each job lives under [state_dir/<id>/]: [spec.json], [checkpoint.json]
      (updated after every merged shard), [report.txt] (written through
      {!Render} on completion — the standalone run's stdout), optional
      [trace/] bundles and [telemetry.jsonl], and a [status] file.

    Shutdown: SIGTERM (via {!Orchestrator.Stop}, installed by the CLI) or a
    protocol [Shutdown] request both drain gracefully — workers finish their
    in-flight shard, every result merges and checkpoints, every live job is
    left paused and resumable ([Resume_job] revives it, even after a server
    restart). *)

type config = {
  socket_path : string;  (** Unix-domain socket to listen on *)
  state_dir : string;  (** per-job state root, created if missing *)
  pool : int;  (** worker domains shared by all campaigns (>= 1) *)
}

val run : config -> int
(** Run the daemon until SIGTERM/SIGINT ({!Orchestrator.Stop.requested}) or
    a [Shutdown] request, then drain and return the exit code (0). Installs
    no signal handlers itself beyond ignoring SIGPIPE — callers that want
    the two-signal contract install {!Orchestrator.Stop.install_handlers}. *)
