module Json = O4a_telemetry.Json
module Faults = O4a_faults.Faults
module Health = O4a_health.Health
module Checkpoint = Orchestrator.Checkpoint

type t = {
  name : string;
  seed : int;
  budget : int;
  shard_size : int;
  quota : int;
  profile : string;
  use_skeletons : bool;
  trace : bool;
  telemetry : bool;
  chaos_profile : string;
  chaos_seed : int;
  chaos_rate : float;
  breakers : bool;
  breaker_window : int;
  breaker_threshold : int;
}

let default ~name =
  {
    name;
    seed = 42;
    budget = 2000;
    shard_size = Orchestrator.default_shard_size;
    quota = 1;
    profile = "gpt-4";
    use_skeletons = true;
    trace = false;
    telemetry = false;
    chaos_profile = "off";
    chaos_seed = 1;
    chaos_rate = Faults.default_rate;
    breakers = true;
    breaker_window = Health.default_config.Health.window;
    breaker_threshold = Health.default_config.Health.threshold;
  }

(* job names become state-directory names and wire identifiers, so keep them
   to a filesystem- and JSON-safe alphabet *)
let name_ok name =
  name <> ""
  && String.length name <= 64
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true
         | _ -> false)
       name
  && name.[0] <> '.'

let validate t =
  if not (name_ok t.name) then
    Error
      (Printf.sprintf
         "invalid job name %S (want 1-64 chars of [a-zA-Z0-9._-], not \
          starting with a dot)"
         t.name)
  else if t.budget < 1 then Error "budget must be >= 1"
  else if t.shard_size < 1 then Error "shard_size must be >= 1"
  else if t.quota < 1 then Error "quota must be >= 1"
  else if t.breaker_window < 1 || t.breaker_threshold < 1 then
    Error "breaker_window and breaker_threshold must be >= 1"
  else if Option.is_none (Llm_sim.Profile.find t.profile) then
    Error (Printf.sprintf "unknown LLM profile %S" t.profile)
  else (
    match Faults.profile_of_string t.chaos_profile with
    | None -> Error (Printf.sprintf "unknown chaos profile %S" t.chaos_profile)
    | Some _ -> Ok ())

let llm_profile t =
  match Llm_sim.Profile.find t.profile with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Jobspec.llm_profile: %S" t.profile)

let chaos t =
  match Faults.profile_of_string t.chaos_profile with
  | None | Some Faults.Off -> None
  | Some profile ->
    Some (Faults.plan ~rate:t.chaos_rate ~chaos_seed:t.chaos_seed profile)

let health t =
  if not t.breakers then None
  else
    Some
      {
        Health.default_config with
        Health.window = t.breaker_window;
        threshold = t.breaker_threshold;
        (* cooldown tracks the window, as the CLI's --breaker-window does *)
        cooldown = t.breaker_window;
      }

let config t =
  { Once4all.Fuzz.default_config with Once4all.Fuzz.use_skeletons = t.use_skeletons }

let fuzz_seed t = t.seed + 1

(* Checkpoint provenance. This list IS the campaign's identity beyond
   (seed, budget, shard_size): the CLI and the server both derive it from a
   spec through this one function, which is what makes their checkpoints
   interchangeable — a campaign submitted to the server can be resumed by
   `once4all resume` and vice versa. *)
let extra t =
  [
    ("cli_seed", string_of_int t.seed);
    ("profile", (llm_profile t).Llm_sim.Profile.name);
    ("use_skeletons", if t.use_skeletons then "true" else "false");
  ]
  @ (match chaos t with
    | None -> []
    | Some (plan : Faults.plan) ->
      [
        ("chaos_profile", Faults.profile_to_string plan.Faults.profile);
        ("chaos_seed", string_of_int plan.Faults.chaos_seed);
        ("chaos_rate", Printf.sprintf "%g" plan.Faults.rate);
      ])
  @
  match health t with
  | None -> [ ("breakers", "off") ]
  | Some (cfg : Health.config) ->
    [
      ("breakers", "on");
      ("breaker_window", string_of_int cfg.Health.window);
      ("breaker_threshold", string_of_int cfg.Health.threshold);
    ]

(* The inverse derivation: rebuild the spec a checkpoint was written under,
   from its provenance record — how `resume`, `resume-job`, and a restarted
   server re-arm the exact generator pool, fault plan, and breaker config. *)
let of_checkpoint ~name (cp : Checkpoint.t) =
  let find key d =
    Option.value (List.assoc_opt key cp.Checkpoint.extra) ~default:d
  in
  let d = default ~name in
  {
    d with
    seed =
      (match int_of_string_opt (find "cli_seed" "") with
      | Some s -> s
      | None -> cp.Checkpoint.seed - 1);
    budget = cp.Checkpoint.budget;
    shard_size = cp.Checkpoint.shard_size;
    profile = find "profile" "gpt-4";
    use_skeletons = find "use_skeletons" "true" <> "false";
    chaos_profile = find "chaos_profile" "off";
    chaos_seed =
      Option.value ~default:1 (int_of_string_opt (find "chaos_seed" "1"));
    chaos_rate =
      Option.value ~default:Faults.default_rate
        (float_of_string_opt
           (find "chaos_rate" (string_of_float Faults.default_rate)));
    breakers = find "breakers" "off" = "on";
    breaker_window =
      Option.value
        ~default:Health.default_config.Health.window
        (int_of_string_opt (find "breaker_window" ""));
    breaker_threshold =
      Option.value
        ~default:Health.default_config.Health.threshold
        (int_of_string_opt (find "breaker_threshold" ""));
  }

let to_json t =
  Json.Obj
    [
      ("name", Json.String t.name);
      ("seed", Json.Int t.seed);
      ("budget", Json.Int t.budget);
      ("shard_size", Json.Int t.shard_size);
      ("quota", Json.Int t.quota);
      ("profile", Json.String t.profile);
      ("use_skeletons", Json.Bool t.use_skeletons);
      ("trace", Json.Bool t.trace);
      ("telemetry", Json.Bool t.telemetry);
      ("chaos", Json.String t.chaos_profile);
      ("chaos_seed", Json.Int t.chaos_seed);
      ("chaos_rate", Json.Float t.chaos_rate);
      ("breakers", Json.Bool t.breakers);
      ("breaker_window", Json.Int t.breaker_window);
      ("breaker_threshold", Json.Int t.breaker_threshold);
    ]

(* lenient decode: only "name" is required, everything else defaults — a
   submission can be as terse as {"name":"smoke","budget":500} *)
let of_json json =
  match Option.bind (Json.member "name" json) Json.to_str with
  | None -> Error "job spec: missing or invalid field \"name\""
  | Some name ->
    let d = default ~name in
    let int k dv = Option.value ~default:dv (Option.bind (Json.member k json) Json.to_int) in
    let flt k dv = Option.value ~default:dv (Option.bind (Json.member k json) Json.to_float) in
    let str k dv = Option.value ~default:dv (Option.bind (Json.member k json) Json.to_str) in
    let bool k dv = Option.value ~default:dv (Option.bind (Json.member k json) Json.to_bool) in
    let t =
      {
        name;
        seed = int "seed" d.seed;
        budget = int "budget" d.budget;
        shard_size = int "shard_size" d.shard_size;
        quota = int "quota" d.quota;
        profile = str "profile" d.profile;
        use_skeletons = bool "use_skeletons" d.use_skeletons;
        trace = bool "trace" d.trace;
        telemetry = bool "telemetry" d.telemetry;
        chaos_profile = str "chaos" d.chaos_profile;
        chaos_seed = int "chaos_seed" d.chaos_seed;
        chaos_rate = flt "chaos_rate" d.chaos_rate;
        breakers = bool "breakers" d.breakers;
        breaker_window = int "breaker_window" d.breaker_window;
        breaker_threshold = int "breaker_threshold" d.breaker_threshold;
      }
    in
    Result.map (fun () -> t) (validate t)
