(** The canonical text rendering of a campaign — one definition shared by the
    CLI's stdout and the server's per-job [report.txt].

    Every function here is a pure function of the merged
    {!Orchestrator.report} (plus static campaign facts), never of timing,
    worker count, or scheduling. That is what makes "a campaign run through
    the server is byte-identical to the same spec run standalone" checkable
    with [diff]: both sides print through this module, so they cannot
    drift apart. *)

val header : generators:int -> seeds:int -> budget:int -> string
(** The "Generators ready …" line the CLI prints before fuzzing begins. *)

val campaign :
  ?show_formulas:bool ->
  chaos:O4a_faults.Faults.plan option ->
  Orchestrator.report ->
  string
(** The full campaign summary block: totals, de-duplicated issues, distinct
    bugs, coverage, then the chaos and breaker sections when applicable.
    [chaos] is the plan the campaign ran under — it prints the profile
    banner; quarantine and breaker lines come from the report itself. *)

val resumed_line : int -> string
(** ["resumed N completed shards from checkpoint"], or [""] for [0]. *)

val stopped_line : checkpoint:string option -> Orchestrator.report -> string
(** The graceful-stop / interrupted banner with its resume hint. *)

val bundles_line : dir:string -> int -> string
(** ["wrote N repro bundles to DIR"]. *)
