(* Endpoint addressing shared by the daemon's TCP listener, the client, and
   the remote worker: one parser for "PORT" / "HOST:PORT" specs so every
   subcommand accepts the same notation, and one resolver so numeric
   addresses never touch the resolver while hostnames still work. *)

type t = Unix_path of string | Tcp of string * int

let to_string = function
  | Unix_path p -> p
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let default_host = "127.0.0.1"

let parse_tcp ?(default_host = default_host) spec =
  let fail () =
    Error
      (Printf.sprintf "invalid TCP endpoint %S (expected PORT or HOST:PORT)"
         spec)
  in
  let parse_port s =
    match int_of_string_opt s with
    | Some p when p >= 0 && p <= 65535 -> Some p
    | Some _ | None -> None
  in
  match String.rindex_opt spec ':' with
  | None -> (
    match parse_port spec with
    | Some p -> Ok (default_host, p)
    | None -> fail ())
  | Some i -> (
    let host = String.sub spec 0 i in
    let port = String.sub spec (i + 1) (String.length spec - i - 1) in
    match parse_port port with
    | Some p when host <> "" -> Ok (host, p)
    | Some _ | None -> fail ())

let resolve ~host ~port =
  match Unix.inet_addr_of_string host with
  | addr -> Ok (Unix.ADDR_INET (addr, port))
  | exception Failure _ -> (
    match Unix.getaddrinfo host "" [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] with
    | { Unix.ai_addr = Unix.ADDR_INET (addr, _); _ } :: _ ->
      Ok (Unix.ADDR_INET (addr, port))
    | _ -> Error (Printf.sprintf "cannot resolve host %S" host)
    | exception Not_found -> Error (Printf.sprintf "cannot resolve host %S" host))
