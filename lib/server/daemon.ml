module Json = O4a_telemetry.Json
module Event = O4a_telemetry.Event
module Telemetry = O4a_telemetry.Telemetry
module Sink = O4a_telemetry.Sink
module Faults = O4a_faults.Faults
module Hud = O4a_profile.Hud
module Engine = Solver.Engine
module Shard = Orchestrator.Shard
module Checkpoint = Orchestrator.Checkpoint
module Merge = Orchestrator.Merge
module Stop = Orchestrator.Stop

let log_src = Logs.Src.create "once4all.server" ~doc:"Campaign server daemon"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  socket_path : string;
  state_dir : string;
  pool : int;
  tcp : string option;
  handshake_timeout : float;
  idle_timeout : float;
  lease_timeout : float;
}

let default_handshake_timeout = 10.
let default_idle_timeout = 300.
let default_lease_timeout = 30.

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

(* A connection enrolled as a remote worker pool: [slots] concurrent shard
   slots, [inflight] leases currently charged against them. *)
type worker_state = { w_slots : int; mutable w_inflight : int }

(* Non-blocking buffered writer: stream lines append to [out], the select
   loop flushes when the fd turns writable. A subscriber that stops reading
   grows its buffer until [max_out], then is disconnected — one slow watcher
   must never stall the merge path or the other subscribers. *)
type conn = {
  id : int;
  fd : Unix.file_descr;
  fr : Framing.t;
  created : float;
  mutable last_activity : float;
  mutable hello_ok : bool;  (* completed the handshake: sent a valid request *)
  mutable subscriber : bool;  (* watch subscriber: exempt from idle reaping *)
  mutable worker : worker_state option;
  mutable out : string;
  mutable closed : bool;
}

let max_out = 1 lsl 20

let try_flush c =
  if (not c.closed) && c.out <> "" then (
    match Unix.write_substring c.fd c.out 0 (String.length c.out) with
    | 0 -> ()
    | n -> c.out <- String.sub c.out n (String.length c.out - n)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
    | exception Unix.Unix_error _ -> c.closed <- true)

let conn_send c line =
  if not c.closed then
    if String.length c.out + String.length line + 1 > max_out then (
      Log.warn (fun m -> m "dropping slow subscriber (>%d bytes queued)" max_out);
      c.closed <- true)
    else (
      c.out <- c.out ^ line ^ "\n";
      try_flush c)

let conn_send_json c json = conn_send c (Json.to_string json)

(* ------------------------------------------------------------------ *)
(* Jobs                                                                *)
(* ------------------------------------------------------------------ *)

type job = {
  id : string;
  spec : Jobspec.t;
  dir : string;
  chaos : Faults.plan option;
  tel : Telemetry.t;
  gen_count : int;
  seed_count : int;
  plan_total : int;  (* full plan, including shards resumed from disk *)
  total : int;  (* shards this server process must execute *)
  resumed : int;
  mutable merge : Merge.t option;  (* set right after registration *)
  mutable state : Protocol.job_state;
  mutable shards_done : int;
  mutable findings : int;
  mutable backlog_rev : string list;  (* streamed lines, newest first *)
  mutable backlog_len : int;
  mutable subscribers : conn list;
}

type t = {
  cfg : config;
  (* shared with the worker pool, guarded by [lock] *)
  sched : Scheduler.t;
  envs : (string, Orchestrator.exec_env) Hashtbl.t;
  lock : Mutex.t;
  work : Condition.t;
  drain : bool Atomic.t;  (* protocol-level shutdown; SIGTERM uses Stop *)
  (* worker -> main results, guarded by [rlock]; [pipe_w] wakes the select *)
  results : (string * Shard.t * Orchestrator.shard_outcome) Queue.t;
  rlock : Mutex.t;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  (* main-domain-only state *)
  jobs : (string, job) Hashtbl.t;
  mutable order : string list;  (* submission order *)
  mutable conns : conn list;
  mutable next_conn : int;
  leases : Lease.t;
}

let stopping t = Stop.requested () || Atomic.get t.drain

let wake t =
  try ignore (Unix.write_substring t.pipe_w "x" 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _) -> ()

(* ------------------------------------------------------------------ *)
(* Event streaming                                                     *)
(* ------------------------------------------------------------------ *)

(* Append one line to the job's backlog and deliver it to every live
   subscriber. The backlog is the catch-up source: a Watch with [from=n]
   replays lines n.. first, so a late subscriber sees exactly the stream an
   early one saw. *)
let push_line job json =
  let line = Json.to_string json in
  job.backlog_rev <- line :: job.backlog_rev;
  job.backlog_len <- job.backlog_len + 1;
  List.iter (fun c -> conn_send c line) job.subscribers;
  job.subscribers <- List.filter (fun c -> not c.closed) job.subscribers

let stream job ~kind data = push_line job (Protocol.stream_line ~job:job.id ~kind data)

let write_file path contents =
  Out_channel.with_open_bin path (fun oc -> output_string oc contents)

let set_state job st =
  if job.state <> st then (
    job.state <- st;
    (match st with
    | Protocol.Failed msg ->
      stream job ~kind:"state"
        (Json.Obj
           [
             ("state", Json.String (Protocol.job_state_to_string st));
             ("error", Json.String msg);
           ])
    | _ ->
      stream job ~kind:"state"
        (Json.Obj [ ("state", Json.String (Protocol.job_state_to_string st)) ]));
    write_file
      (Filename.concat job.dir "status")
      (Protocol.job_state_to_string job.state ^ "\n"))

(* every campaign event a Merge forwards (or emits) lands here, on the main
   domain; interesting ones are re-tagged so watchers can filter without
   parsing the full telemetry stream *)
let on_event t id (ev : Event.t) =
  match Hashtbl.find_opt t.jobs id with
  | None -> ()
  | Some job ->
    stream job ~kind:"telemetry" (Event.to_json ev);
    let finding =
      ev.Event.name = "fuzz.test"
      &&
      match Event.field "finding" ev with Some (Json.String _) -> true | _ -> false
    in
    if finding then stream job ~kind:"finding" (Event.to_json ev)
    else if ev.Event.name = "health.breaker" then
      stream job ~kind:"health" (Event.to_json ev)
    else if ev.Event.name = "shard.quarantined" then
      stream job ~kind:"quarantine" (Event.to_json ev)
    else if ev.Event.name = O4a_analytics.Analytics.plateau_event_name then
      stream job ~kind:"plateau" (Event.to_json ev)

(* merge-time progress, minus [elapsed_s]: the streamed progress lines are a
   pure function of merged state, so the backlog two subscribers compare is
   identical no matter when they attached *)
let on_progress t id (p : Hud.progress) =
  match Hashtbl.find_opt t.jobs id with
  | None -> ()
  | Some job ->
    job.shards_done <- p.Hud.shards_done;
    job.findings <- p.Hud.findings;
    stream job ~kind:"progress"
      (Json.Obj
         [
           ("shards_done", Json.Int p.Hud.shards_done);
           ("shards_total", Json.Int p.Hud.shards_total);
           ("ticks_done", Json.Int p.Hud.ticks_done);
           ("budget", Json.Int p.Hud.budget);
           ("findings", Json.Int p.Hud.findings);
           ("coverage_points", Json.Int p.Hud.coverage_points);
           ( "cov_rate",
             match p.Hud.cov_rate with
             | None -> Json.Null
             | Some r -> Json.Float r );
           ("quarantined", Json.Int p.Hud.quarantined);
           ("breaker_trips", Json.Int p.Hud.breaker_trips);
         ])

(* ------------------------------------------------------------------ *)
(* Job lifecycle                                                       *)
(* ------------------------------------------------------------------ *)

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then (
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  in
  go dir

let fresh_id t name =
  let taken id =
    Hashtbl.mem t.jobs id || Sys.file_exists (Filename.concat t.cfg.state_dir id)
  in
  if not (taken name) then name
  else (
    let rec go n =
      let id = Printf.sprintf "%s-%d" name n in
      if taken id then go (n + 1) else id
    in
    go 2)

let finish_job job =
  let merge = Option.get job.merge in
  let trace_dir =
    if job.spec.Jobspec.trace then Some (Filename.concat job.dir "trace")
    else None
  in
  (match Merge.finalize ?trace_dir ~interrupted:false ~stopped:false merge with
  | exception Failure msg ->
    Log.err (fun m -> m "job %s failed: %s" job.id msg);
    set_state job (Protocol.Failed msg)
  | report ->
    (* report.txt is the standalone run's stdout, written through the same
       Render module the CLI prints with — byte-identical by construction,
       modulo the path-bearing "wrote …"/"resumed …" lines check.sh strips *)
    let text =
      Render.header ~generators:job.gen_count ~seeds:job.seed_count
        ~budget:job.spec.Jobspec.budget
      ^ Render.resumed_line report.Orchestrator.shards_resumed
      ^ Render.campaign ~chaos:job.chaos report
      ^
      match trace_dir with
      | Some dir -> Render.bundles_line ~dir report.Orchestrator.bundles_written
      | None -> ""
    in
    write_file (Filename.concat job.dir "report.txt") text;
    set_state job Protocol.Done);
  Telemetry.flush job.tel

(* Build and register a job from its spec (and, when resuming, the loaded
   checkpoint), then hand its remaining shards to the shared scheduler. The
   pipeline here is exactly the CLI's fuzz path — Campaign.prepare,
   Seeds.Corpus.filtered, make_env on [fuzz_seed] — so a shard executed for
   this job is indistinguishable from one executed by `once4all fuzz`. *)
let start_job t ~id ~dir ~spec ~base =
  mkdir_p dir;
  write_file (Filename.concat dir "spec.json")
    (Json.to_string (Jobspec.to_json spec) ^ "\n");
  let profile = Jobspec.llm_profile spec in
  let campaign = Once4all.Campaign.prepare ~seed:spec.Jobspec.seed ~profile () in
  let seeds =
    Seeds.Corpus.filtered ~zeal:campaign.Once4all.Campaign.zeal
      ~cove:campaign.Once4all.Campaign.cove ()
  in
  let chaos = Jobspec.chaos spec in
  let env =
    Orchestrator.make_env ~config:(Jobspec.config spec) ~tel_enabled:true
      ~tracing:spec.Jobspec.trace ?chaos ?health:(Jobspec.health spec)
      ~gen_profile:profile.Llm_sim.Profile.name
      ~seed:(Jobspec.fuzz_seed spec)
      ~generators:campaign.Once4all.Campaign.generators ~seeds ()
  in
  let callback = Sink.callback (fun ev -> on_event t id ev) in
  let sink =
    if spec.Jobspec.telemetry then
      Sink.fanout
        [ Sink.open_jsonl (Filename.concat dir "telemetry.jsonl"); callback ]
    else callback
  in
  let tel =
    Telemetry.create ~sink ~clock:(Telemetry.monotonic_clock ()) ()
  in
  let plan =
    Shard.plan ~budget:spec.Jobspec.budget ~shard_size:spec.Jobspec.shard_size
  in
  let remaining =
    match base with
    | None -> plan
    | Some cp ->
      let covered =
        List.map (fun (r : Checkpoint.shard_result) -> r.Checkpoint.shard)
          cp.Checkpoint.completed
        @ List.map (fun (q : Checkpoint.quarantine) -> q.Checkpoint.q_shard)
            cp.Checkpoint.quarantined
      in
      List.filter (fun s -> not (List.mem s.Shard.index covered)) plan
  in
  let job =
    {
      id;
      spec;
      dir;
      chaos;
      tel;
      gen_count = List.length campaign.Once4all.Campaign.generators;
      seed_count = List.length seeds;
      plan_total = List.length plan;
      total = List.length remaining;
      resumed =
        (match base with
        | Some cp ->
          List.length cp.Checkpoint.completed
          + List.length cp.Checkpoint.quarantined
        | None -> 0);
      merge = None;
      state = Protocol.Queued;
      shards_done = 0;
      findings = 0;
      backlog_rev = [];
      backlog_len = 0;
      subscribers = [];
    }
  in
  (* register before Merge.create so its campaign.start event reaches the
     backlog through the sink callback *)
  Hashtbl.replace t.jobs id job;
  t.order <- t.order @ [ id ];
  let merge =
    Merge.create ~env ~tel
      ~checkpoint_path:(Filename.concat dir "checkpoint.json")
      ?base ~on_progress:(fun p -> on_progress t id p)
      ~jobs:t.cfg.pool ~budget:spec.Jobspec.budget
      ~shard_size:spec.Jobspec.shard_size ~extra:(Jobspec.extra spec) ()
  in
  job.merge <- Some merge;
  if job.total > 0 then (
    (* the orchestrator's before-any-shard-runs save, so even a job killed
       seconds after submission leaves a resumable checkpoint *)
    Merge.checkpoint_now merge;
    Merge.notify_progress merge;
    set_state job Protocol.Running;
    Mutex.protect t.lock (fun () ->
        Hashtbl.replace t.envs id env;
        Scheduler.add t.sched ~key:id ~quota:spec.Jobspec.quota remaining;
        Condition.broadcast t.work))
  else (
    Merge.notify_progress merge;
    finish_job job);
  job

(* ------------------------------------------------------------------ *)
(* Result merging (main domain = single owner for every job's merge)    *)
(* ------------------------------------------------------------------ *)

let drain_pipe t =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read t.pipe_r buf 0 64 with
    | 0 -> ()
    | _ -> go ()
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
  in
  go ()

let drain_results t =
  let rec go () =
    match Mutex.protect t.rlock (fun () -> Queue.take_opt t.results) with
    | None -> ()
    | Some (id, shard, outcome) ->
      (match Hashtbl.find_opt t.jobs id with
      | None -> ()
      | Some job when Protocol.job_state_terminal job.state ->
        (* a cancelled job's in-flight shards complete but merge nowhere *)
        ()
      | Some job -> (
        let merge = Option.get job.merge in
        match Merge.absorb merge shard outcome with
        | exception Failure msg ->
          (* checkpoint verify-after-save is the only raiser here *)
          set_state job (Protocol.Failed msg);
          Telemetry.flush job.tel
        | () -> if Merge.processed merge >= job.total then finish_job job));
      go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Worker pool                                                         *)
(* ------------------------------------------------------------------ *)

let worker t wid () =
  Printexc.record_backtrace (Printexc.backtrace_status ());
  let zeal = Engine.zeal () and cove = Engine.cove () in
  let claim () =
    Mutex.lock t.lock;
    let rec go () =
      if stopping t then (
        Mutex.unlock t.lock;
        None)
      else (
        match Scheduler.next t.sched with
        | Some (key, shard) -> (
          (* an env can only be missing if cancellation raced the scheduler;
             skip the orphan shard rather than die holding [t.lock] *)
          match Hashtbl.find_opt t.envs key with
          | Some env ->
            Mutex.unlock t.lock;
            Some (key, env, shard)
          | None -> go ())
        | None ->
          Condition.wait t.work t.lock;
          go ())
    in
    go ()
  in
  let rec loop () =
    match claim () with
    | None -> ()
    | Some (key, env, shard) ->
      let outcome = Orchestrator.exec_shard ~env ~worker_id:wid ~zeal ~cove shard in
      Mutex.protect t.rlock (fun () -> Queue.push (key, shard, outcome) t.results);
      wake t;
      loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Remote worker pools: leases, dispatch, reassignment                 *)
(* ------------------------------------------------------------------ *)

(* Lease lifecycle events ride the watch stream under kind "lease" — they
   are observability, not campaign data, so they must never land in the
   job's telemetry (telemetry.jsonl stays byte-identical to a standalone
   run no matter how many leases expired along the way). *)
let lease_event job fields = stream job ~kind:"lease" (Json.Obj fields)

let conn_by_id t id = List.find_opt (fun (c : conn) -> c.id = id) t.conns

let release_slot t worker_id =
  match conn_by_id t worker_id with
  | Some { worker = Some w; _ } -> w.w_inflight <- max 0 (w.w_inflight - 1)
  | Some _ | None -> ()

(* Hand a leased shard back to the scheduler — unless a sibling lease for
   the same shard is still live (chaos-duplicated grant) or the job has
   meanwhile reached a terminal state. Requeued shards go to the front of
   the job's queue, and because a shard outcome is a pure function of
   (env, shard), re-executing it elsewhere cannot change one byte of the
   merged campaign. *)
let requeue_shard t (g : Lease.grant) =
  match Hashtbl.find_opt t.jobs g.Lease.job with
  | None -> ()
  | Some job ->
    if
      (not (Protocol.job_state_terminal job.state))
      && not
           (Lease.has_lease_for t.leases ~job:g.Lease.job
              ~shard_index:g.Lease.shard.Shard.index)
    then (
      Mutex.protect t.lock (fun () ->
          Scheduler.requeue t.sched ~key:g.Lease.job g.Lease.shard;
          Condition.broadcast t.work);
      lease_event job
        [
          ("event", Json.String "lease.reassigned");
          ("lease", Json.Int g.Lease.lease);
          ("shard", Json.Int g.Lease.shard.Shard.index);
        ])

let reassign t ~reason (g : Lease.grant) =
  release_slot t g.Lease.worker;
  (match Hashtbl.find_opt t.jobs g.Lease.job with
  | None -> ()
  | Some job ->
    lease_event job
      [
        ("event", Json.String reason);
        ("lease", Json.Int g.Lease.lease);
        ("shard", Json.Int g.Lease.shard.Shard.index);
        ("worker", Json.Int g.Lease.worker);
      ]);
  requeue_shard t g

let send_grant t job shard c =
  let w = match c.worker with Some w -> w | None -> assert false in
  let g =
    Lease.grant t.leases ~now:(Unix.gettimeofday ()) ~job:job.id ~shard
      ~worker:c.id
  in
  w.w_inflight <- w.w_inflight + 1;
  conn_send_json c
    (Protocol.worker_msg_to_json
       (Protocol.Grant
          {
            lease = g.Lease.lease;
            job = job.id;
            grant_attempt = g.Lease.grant_attempt;
            shard;
            spec = job.spec;
          }));
  lease_event job
    [
      ("event", Json.String "lease.granted");
      ("lease", Json.Int g.Lease.lease);
      ("shard", Json.Int shard.Shard.index);
      ("worker", Json.Int c.id);
      ("attempt", Json.Int g.Lease.grant_attempt);
    ];
  g

(* The Lease_dup chaos site fires at grant time, on the coordinator: the
   same shard is granted twice, exercising the revoke-the-sibling path in
   Lease.complete. Whichever result lands first settles the shard; the
   sibling's arrives stale and is dropped, so the duplicate can never
   double-merge. Consulted once per primary grant (never on the duplicate
   itself), keyed by the pure (site, shard, attempt) fault stream. *)
let maybe_duplicate t job shard c (g : Lease.grant) =
  match job.chaos with
  | None -> ()
  | Some plan -> (
    match
      Faults.decide plan ~site:Faults.Lease_dup ~shard:shard.Shard.index
        ~attempt:g.Lease.grant_attempt
    with
    | None -> ()
    | Some _ ->
      let g2 = send_grant t job shard c in
      lease_event job
        [
          ("event", Json.String "lease.duplicated");
          ("lease", Json.Int g2.Lease.lease);
          ("of", Json.Int g.Lease.lease);
          ("shard", Json.Int shard.Shard.index);
        ])

let free_worker t =
  List.fold_left
    (fun best c ->
      if c.closed then best
      else
        match c.worker with
        | Some w when w.w_inflight < w.w_slots -> (
          match best with
          | Some b -> (
            match b.worker with
            | Some bw when bw.w_slots - bw.w_inflight >= w.w_slots - w.w_inflight
              -> best
            | _ -> Some c)
          | None -> Some c)
        | _ -> best)
    None t.conns

(* Pull shards off the shared scheduler and lease them to whichever remote
   pool has the most free slots. Runs on the main domain; the local pool
   competes for the same scheduler under [t.lock], so a coordinator with
   both local and remote workers load-balances naturally. *)
let rec dispatch_remote t =
  if not (stopping t) then
    match free_worker t with
    | None -> ()
    | Some c -> (
      match Mutex.protect t.lock (fun () -> Scheduler.next t.sched) with
      | None -> ()
      | Some (key, shard) -> (
        match Hashtbl.find_opt t.jobs key with
        | None -> dispatch_remote t  (* cancellation raced the scheduler *)
        | Some job ->
          let g = send_grant t job shard c in
          maybe_duplicate t job shard c g;
          dispatch_remote t))

let reap_leases t now =
  match Lease.expired t.leases ~now with
  | [] -> ()
  | gone ->
    List.iter (fun g -> reassign t ~reason:"lease.expired" g) gone;
    dispatch_remote t

(* Handshake and idle deadlines: a connection that never sends a valid
   request is dropped after [handshake_timeout]; one that goes quiet after
   the handshake is dropped after [idle_timeout]. Watch subscribers are
   exempt (they legitimately only read); worker pools are reaped on a
   heartbeat-scaled deadline instead, so a half-open TCP peer cannot keep
   soaking up grants forever. *)
let reap_conns t now =
  List.iter
    (fun c ->
      if not c.closed then
        if (not c.hello_ok) && now -. c.created > t.cfg.handshake_timeout then (
          conn_send_json c
            (Protocol.error_coded ~code:Protocol.code_handshake_timeout
               "closing: no request within the handshake deadline");
          c.closed <- true)
        else if
          c.worker <> None
          && now -. c.last_activity
             > Float.max t.cfg.idle_timeout (3. *. t.cfg.lease_timeout)
        then (
          Log.warn (fun m -> m "worker pool conn#%d silent; dropping" c.id);
          c.closed <- true)
        else if
          (not c.subscriber) && c.worker = None
          && now -. c.last_activity > t.cfg.idle_timeout
        then (
          conn_send_json c
            (Protocol.error_coded ~code:Protocol.code_idle_timeout
               "closing: idle past the deadline");
          c.closed <- true))
    t.conns

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

let job_view (job : job) =
  {
    Protocol.v_id = job.id;
    v_name = job.spec.Jobspec.name;
    v_state = job.state;
    v_shards_done = job.shards_done;
    v_shards_total = job.plan_total;
    v_findings = job.findings;
    v_quota = job.spec.Jobspec.quota;
  }

let submit t spec =
  match Jobspec.validate spec with
  | Error msg -> Protocol.error msg
  | Ok () ->
    let id = fresh_id t spec.Jobspec.name in
    let dir = Filename.concat t.cfg.state_dir id in
    let job = start_job t ~id ~dir ~spec ~base:None in
    Log.info (fun m ->
        m "job %s submitted: budget %d, %d shards, quota %d" id
          spec.Jobspec.budget job.total spec.Jobspec.quota);
    Protocol.ok
      [
        ("job", Json.String id);
        ("shards", Json.Int job.total);
        ("state", Json.String (Protocol.job_state_to_string job.state));
      ]

let pause t id =
  match Hashtbl.find_opt t.jobs id with
  | None -> Protocol.error (Printf.sprintf "no such job %S" id)
  | Some job when job.state <> Protocol.Running ->
    Protocol.error
      (Printf.sprintf "job %S is %s, not running" id
         (Protocol.job_state_to_string job.state))
  | Some job ->
    Mutex.protect t.lock (fun () -> Scheduler.set_runnable t.sched ~key:id false);
    set_state job Protocol.Paused;
    Protocol.ok [ ("job", Json.String id) ]

(* Revive a job from its on-disk spec + checkpoint — the path a restarted
   server (or a SIGTERM-drained one) uses to pick campaigns back up. The
   checkpoint's provenance must match the spec's, same rule as `resume`. *)
let revive t id =
  let dir = Filename.concat t.cfg.state_dir id in
  let spec_path = Filename.concat dir "spec.json" in
  let cp_path = Filename.concat dir "checkpoint.json" in
  if not (Sys.file_exists spec_path) then
    Protocol.error (Printf.sprintf "no such job %S (no %s)" id spec_path)
  else (
    match In_channel.with_open_text spec_path In_channel.input_all with
    | exception Sys_error msg -> Protocol.error msg
    | contents -> (
      match Result.bind (Json.parse contents) Jobspec.of_json with
      | Error msg -> Protocol.error (Printf.sprintf "%s: %s" spec_path msg)
      | Ok spec -> (
        match Checkpoint.load ~path:cp_path with
        | Error err ->
          Protocol.error (Checkpoint.load_error_to_string ~path:cp_path err)
        | Ok cp ->
          if
            cp.Checkpoint.seed <> Jobspec.fuzz_seed spec
            || cp.Checkpoint.budget <> spec.Jobspec.budget
            || cp.Checkpoint.shard_size <> spec.Jobspec.shard_size
          then
            Protocol.error
              (Printf.sprintf
                 "checkpoint %s does not match the job's spec (seed/budget/\
                  shard_size differ)"
                 cp_path)
          else (
            let job = start_job t ~id ~dir ~spec ~base:(Some cp) in
            Log.info (fun m ->
                m "job %s revived: %d shards left of %d" id job.total
                  job.plan_total);
            Protocol.ok
              [
                ("job", Json.String id);
                ("shards", Json.Int job.total);
                ("resumed", Json.Int job.resumed);
              ]))))

let resume_job t id =
  match Hashtbl.find_opt t.jobs id with
  | Some job when job.state = Protocol.Paused ->
    Mutex.protect t.lock (fun () ->
        Scheduler.set_runnable t.sched ~key:id true;
        Condition.broadcast t.work);
    set_state job Protocol.Running;
    Protocol.ok [ ("job", Json.String id) ]
  | Some job ->
    Protocol.error
      (Printf.sprintf "job %S is %s, not paused" id
         (Protocol.job_state_to_string job.state))
  | None -> revive t id

let cancel t id =
  match Hashtbl.find_opt t.jobs id with
  | None -> Protocol.error (Printf.sprintf "no such job %S" id)
  | Some job when Protocol.job_state_terminal job.state ->
    Protocol.error
      (Printf.sprintf "job %S already %s" id
         (Protocol.job_state_to_string job.state))
  | Some job ->
    Mutex.protect t.lock (fun () ->
        Scheduler.remove t.sched ~key:id;
        Hashtbl.remove t.envs id);
    (* revoke outstanding leases: any result still in flight arrives stale *)
    List.iter
      (fun (g : Lease.grant) -> release_slot t g.Lease.worker)
      (Lease.drop_job t.leases ~job:id);
    set_state job Protocol.Cancelled;
    Telemetry.flush job.tel;
    Protocol.ok [ ("job", Json.String id) ]

let watch t c id from =
  match Hashtbl.find_opt t.jobs id with
  | None -> conn_send_json c (Protocol.error (Printf.sprintf "no such job %S" id))
  | Some job ->
    conn_send_json c
      (Protocol.ok
         [
           ("job", Json.String id);
           ("backlog", Json.Int job.backlog_len);
           ("state", Json.String (Protocol.job_state_to_string job.state));
         ]);
    (* replay the backlog from [from], oldest first, then subscribe for the
       live tail — catch-up and live delivery use the same lines, so every
       subscriber sees the same stream *)
    let backlog = List.rev job.backlog_rev in
    List.iteri (fun i line -> if i >= from then conn_send c line) backlog;
    if not (Protocol.job_state_terminal job.state) then (
      c.subscriber <- true;  (* read-only from here on: exempt from idle *)
      job.subscribers <- c :: job.subscribers)

let handle_request t c = function
  | Protocol.Hello proto ->
    if proto > Protocol.version then (
      conn_send_json c
        (Protocol.error
           (Printf.sprintf "client protocol %d is newer than this server (%d)"
              proto Protocol.version));
      c.closed <- true)
    else conn_send_json c (Protocol.ok [ ("proto", Json.Int Protocol.version) ])
  | Protocol.Submit spec -> conn_send_json c (submit t spec)
  | Protocol.Jobs ->
    let views =
      t.order
      |> List.filter_map (fun id -> Hashtbl.find_opt t.jobs id)
      |> List.map (fun j -> Protocol.job_view_to_json (job_view j))
    in
    conn_send_json c (Protocol.ok [ ("jobs", Json.List views) ])
  | Protocol.Watch { job; from } -> watch t c job from
  | Protocol.Pause id -> conn_send_json c (pause t id)
  | Protocol.Resume_job id -> conn_send_json c (resume_job t id)
  | Protocol.Cancel id -> conn_send_json c (cancel t id)
  | Protocol.Metrics id -> (
    match Hashtbl.find_opt t.jobs id with
    | None -> conn_send_json c (Protocol.error (Printf.sprintf "no job %S" id))
    | Some job -> (
      match job.merge with
      | None ->
        conn_send_json c
          (Protocol.error (Printf.sprintf "job %S has no merged state yet" id))
      | Some merge ->
        (* the snapshot is read on the main domain — the merge owner — so it
           is exactly the state the last shard barrier left behind *)
        let a = Merge.analytics_snapshot merge in
        conn_send_json c
          (Protocol.ok
             [
               ("job", Json.String id);
               ("analytics", O4a_analytics.Analytics.to_json a);
               ( "prometheus",
                 Json.String (O4a_analytics.Analytics.to_prometheus a) );
             ])))
  | Protocol.Worker_register { slots } -> (
    match c.worker with
    | Some _ ->
      conn_send_json c
        (Protocol.error "connection already registered as a worker pool")
    | None ->
      c.worker <- Some { w_slots = slots; w_inflight = 0 };
      Log.info (fun m -> m "worker pool conn#%d joined (%d slots)" c.id slots);
      conn_send_json c
        (Protocol.ok [ ("worker", Json.Int c.id); ("slots", Json.Int slots) ]);
      dispatch_remote t)
  | Protocol.Worker_heartbeat { leases } -> (
    match c.worker with
    | None -> conn_send_json c (Protocol.error "not a registered worker pool")
    | Some _ ->
      Lease.heartbeat t.leases ~now:(Unix.gettimeofday ()) ~worker:c.id ~leases)
  | Protocol.Worker_result { lease; outcome } -> (
    match c.worker with
    | None -> conn_send_json c (Protocol.error "not a registered worker pool")
    | Some w -> (
      match Lease.complete t.leases ~lease with
      | None ->
        (* Stale: the lease expired, was revoked as a duplicate's sibling,
           or belonged to a previous connection. Its shard is (or will be)
           settled by the replacement lease, and the slot was already
           released when the lease left the table — merging this result
           would double-count, so it is dropped on the floor. *)
        Log.debug (fun m -> m "stale result for lease %d dropped" lease)
      | Some (g, siblings) -> (
        w.w_inflight <- max 0 (w.w_inflight - 1);
        (match Hashtbl.find_opt t.jobs g.Lease.job with
        | None -> ()
        | Some job ->
          List.iter
            (fun (s : Lease.grant) ->
              release_slot t s.Lease.worker;
              lease_event job
                [
                  ("event", Json.String "lease.stale_result");
                  ("lease", Json.Int s.Lease.lease);
                  ("shard", Json.Int s.Lease.shard.Shard.index);
                ])
            siblings);
        match Wire.outcome_of_json outcome with
        | Error msg ->
          (* a worker that ships garbage forfeits the shard like an expiry *)
          Log.warn (fun m -> m "malformed result for lease %d: %s" lease msg);
          requeue_shard t g
        | Ok oc ->
          (match Hashtbl.find_opt t.jobs g.Lease.job with
          | None -> ()
          | Some job ->
            lease_event job
              [
                ("event", Json.String "lease.completed");
                ("lease", Json.Int g.Lease.lease);
                ("shard", Json.Int g.Lease.shard.Shard.index);
                ("worker", Json.Int g.Lease.worker);
              ]);
          Mutex.protect t.rlock (fun () ->
              Queue.push (g.Lease.job, g.Lease.shard, oc) t.results);
          drain_results t;
          dispatch_remote t)))
  | Protocol.Shutdown ->
    Log.info (fun m -> m "shutdown requested; draining");
    conn_send_json c (Protocol.ok [ ("draining", Json.Bool true) ]);
    Atomic.set t.drain true;
    Mutex.protect t.lock (fun () -> Condition.broadcast t.work)

let process_line t c line =
  if String.trim line <> "" then (
    match Result.bind (Json.parse line) Protocol.request_of_json with
    | Error msg -> conn_send_json c (Protocol.error msg)
    | Ok req ->
      (* any well-formed request completes the handshake — the deadline is
         there to shed dead and garbage-spewing peers, not to police the
         order of first requests *)
      c.hello_ok <- true;
      handle_request t c req)

let handle_readable t c =
  let buf = Bytes.create 4096 in
  match Unix.read c.fd buf 0 4096 with
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
    ()
  | exception Unix.Unix_error _ -> c.closed <- true
  | 0 -> c.closed <- true
  | n -> (
    c.last_activity <- Unix.gettimeofday ();
    match Framing.feed c.fr (Bytes.sub_string buf 0 n) with
    | Ok lines ->
      List.iter (fun line -> if not c.closed then process_line t c line) lines
    | Error err ->
      (* the inbound mirror of [max_out]: a peer that streams an unbounded
         line gets a typed error and the boot, not an unbounded buffer *)
      conn_send_json c
        (Protocol.error_coded ~code:Protocol.code_line_too_long
           (Framing.error_to_string err));
      c.closed <- true)

(* ------------------------------------------------------------------ *)
(* The server loop                                                     *)
(* ------------------------------------------------------------------ *)

let accept_conn t listen_fd =
  match Unix.accept listen_fd with
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
    ()
  | fd, _ ->
    Unix.set_nonblock fd;
    let now = Unix.gettimeofday () in
    let c =
      {
        id = t.next_conn;
        fd;
        fr = Framing.create ();
        created = now;
        last_activity = now;
        hello_ok = false;
        subscriber = false;
        worker = None;
        out = "";
        closed = false;
      }
    in
    t.next_conn <- t.next_conn + 1;
    (* versioned hello header, first line on every connection *)
    conn_send_json c Protocol.hello;
    t.conns <- c :: t.conns

let close_conn c =
  c.closed <- true;
  try Unix.close c.fd with Unix.Unix_error _ -> ()

let prune_conns t =
  let closed, live = List.partition (fun c -> c.closed) t.conns in
  t.conns <- live;
  List.iter
    (fun c ->
      (try Unix.close c.fd with Unix.Unix_error _ -> ());
      (* a dropped worker connection forfeits its leases immediately — no
         need to wait out the heartbeat deadline when the transport already
         told us the pool is gone *)
      if c.worker <> None then (
        Log.info (fun m -> m "worker pool conn#%d lost" c.id);
        List.iter
          (reassign t ~reason:"lease.worker_lost")
          (Lease.drop_worker t.leases ~worker:c.id)))
    closed;
  if closed <> [] then dispatch_remote t

let create cfg =
  let pipe_r, pipe_w = Unix.pipe () in
  Unix.set_nonblock pipe_r;
  Unix.set_nonblock pipe_w;
  {
    cfg;
    sched = Scheduler.create ();
    envs = Hashtbl.create 16;
    lock = Mutex.create ();
    work = Condition.create ();
    drain = Atomic.make false;
    results = Queue.create ();
    rlock = Mutex.create ();
    pipe_r;
    pipe_w;
    jobs = Hashtbl.create 16;
    order = [];
    conns = [];
    next_conn = 1;
    leases = Lease.create ~timeout:cfg.lease_timeout;
  }

(* Bind the optional TCP listener. Port 0 asks the kernel for an ephemeral
   port; whatever was actually bound is written to [state_dir/tcp.port] so
   scripts (and tests) can find it without racing the log output. *)
let bind_tcp cfg =
  match cfg.tcp with
  | None -> Ok None
  | Some spec ->
    Result.bind (Addr.parse_tcp spec) (fun (host, port) ->
        Result.bind (Addr.resolve ~host ~port) (fun sockaddr ->
            let fd =
              Unix.socket (Unix.domain_of_sockaddr sockaddr) Unix.SOCK_STREAM 0
            in
            Unix.setsockopt fd Unix.SO_REUSEADDR true;
            match Unix.bind fd sockaddr with
            | exception Unix.Unix_error (e, _, _) ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Error
                (Printf.sprintf "cannot bind %s:%d: %s" host port
                   (Unix.error_message e))
            | () ->
              Unix.listen fd 16;
              Unix.set_nonblock fd;
              let actual =
                match Unix.getsockname fd with
                | Unix.ADDR_INET (_, p) -> p
                | _ -> port
              in
              Ok (Some (fd, host, actual))))

let rec run cfg =
  mkdir_p cfg.state_dir;
  (* a subscriber vanishing mid-write must surface as EPIPE, not kill the
     daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  Engine.prewarm ();
  let t = create cfg in
  match bind_tcp cfg with
  | Error msg ->
    Log.err (fun m -> m "%s" msg);
    prerr_endline ("once4all: " ^ msg);
    1
  | Ok tcp ->
    let port_file = Filename.concat cfg.state_dir "tcp.port" in
    (match tcp with
    | Some (_, host, port) ->
      write_file port_file (string_of_int port ^ "\n");
      Log.info (fun m -> m "TCP listener on %s:%d" host port)
    | None -> ());
    let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (if Sys.file_exists cfg.socket_path then
       try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
    Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
    Unix.listen listen_fd 16;
    Unix.set_nonblock listen_fd;
    Log.info (fun m ->
        m "listening on %s (pool %d, state %s)" cfg.socket_path cfg.pool
          cfg.state_dir);
    let listeners =
      listen_fd :: (match tcp with Some (fd, _, _) -> [ fd ] | None -> [])
    in
    (* pool 0 is legitimate: a coordinator-only daemon whose shards all run
       on remote worker pools *)
    let workers =
      List.init cfg.pool (fun wid -> Domain.spawn (worker t wid))
    in
    let rec loop () =
      if not (stopping t) then (
        let reads = listeners @ (t.pipe_r :: List.map (fun c -> c.fd) t.conns) in
        let writes =
          t.conns
          |> List.filter (fun c -> c.out <> "")
          |> List.map (fun c -> c.fd)
        in
        (match Unix.select reads writes [] 0.25 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | readable, writable, _ ->
          if List.mem t.pipe_r readable then drain_pipe t;
          drain_results t;
          List.iter
            (fun c -> if List.mem c.fd writable then try_flush c)
            t.conns;
          List.iter
            (fun c -> if List.mem c.fd readable then handle_readable t c)
            t.conns;
          List.iter
            (fun lfd -> if List.mem lfd readable then accept_conn t lfd)
            listeners);
        let now = Unix.gettimeofday () in
        reap_conns t now;
        reap_leases t now;
        prune_conns t;
        dispatch_remote t;
        loop ())
    in
    loop ();
    finish t ~workers ~listeners ~port_file ~tcp

and finish t ~workers ~listeners ~port_file ~tcp =
  (* Graceful drain — same contract whether the trigger was SIGTERM
     ({!Orchestrator.Stop}) or a Shutdown request: local workers finish the
     shard they are executing and exit, every in-flight local result merges
     and checkpoints, and every live campaign lands paused with a resumable
     checkpoint on disk. Remote pools are told to drain; their in-flight
     shards are simply forfeited — the checkpoint records them as not done,
     so a revive re-runs them deterministically. *)
  List.iter
    (fun c ->
      if c.worker <> None && not c.closed then
        conn_send_json c (Protocol.worker_msg_to_json Protocol.Drain))
    t.conns;
  Mutex.protect t.lock (fun () -> Condition.broadcast t.work);
  List.iter Domain.join workers;
  drain_pipe t;
  drain_results t;
  List.iter
    (fun id ->
      match Hashtbl.find_opt t.jobs id with
      | Some job when not (Protocol.job_state_terminal job.state) ->
        (match job.merge with
        | Some merge -> Merge.checkpoint_now merge
        | None -> ());
        set_state job Protocol.Paused;
        Telemetry.flush job.tel;
        Log.info (fun m ->
            m "job %s drained at %d/%d shards; resumable from its checkpoint"
              job.id job.shards_done job.plan_total)
      | _ -> ())
    t.order;
  List.iter try_flush t.conns;
  List.iter close_conn t.conns;
  t.conns <- [];
  List.iter
    (fun lfd -> try Unix.close lfd with Unix.Unix_error _ -> ())
    listeners;
  (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ());
  (match tcp with
  | Some _ -> ( try Sys.remove port_file with Sys_error _ -> ())
  | None -> ());
  (try Unix.close t.pipe_r with Unix.Unix_error _ -> ());
  (try Unix.close t.pipe_w with Unix.Unix_error _ -> ());
  Log.info (fun m -> m "server drained; exiting");
  0
