module Faults = O4a_faults.Faults
module Health = O4a_health.Health
module Coverage = O4a_coverage.Coverage
module Checkpoint = Orchestrator.Checkpoint
module Analytics = O4a_analytics.Analytics

(* Every string built here is a pure function of the merged report — never of
   timing, worker count, or scheduling. The CLI prints these to stdout and
   the campaign server writes them to each job's report.txt, so one
   definition is what makes "server output = standalone output" a diff in
   check.sh rather than a hope. *)

let header ~generators ~seeds ~budget =
  Printf.sprintf "Generators ready (%d); fuzzing with %d seeds, budget %d...\n"
    generators seeds budget

let chaos_block ~chaos (r : Orchestrator.report) =
  let buf = Buffer.create 256 in
  (match chaos with
  | None -> ()
  | Some (plan : Faults.plan) ->
    Buffer.add_string buf
      (Printf.sprintf "\nchaos: profile %s  seed %d  rate %.2f\n"
         (Faults.profile_to_string plan.Faults.profile)
         plan.Faults.chaos_seed plan.Faults.rate));
  (match r.Orchestrator.quarantined with
  | [] -> ()
  | qs ->
    let ticks =
      List.fold_left (fun acc q -> acc + q.Checkpoint.q_ticks) 0 qs
    in
    Buffer.add_string buf
      (Printf.sprintf
         "quarantined: %d shard%s, %d tick%s excluded from merge\n"
         (List.length qs)
         (if List.length qs = 1 then "" else "s")
         ticks
         (if ticks = 1 then "" else "s"));
    List.iter
      (fun (q : Checkpoint.quarantine) ->
        Buffer.add_string buf
          (Printf.sprintf "  shard %d  ticks %d-%d  after %d attempt%s  [%s]\n"
             q.Checkpoint.q_shard q.Checkpoint.q_first_tick
             (q.Checkpoint.q_first_tick + q.Checkpoint.q_ticks - 1)
             q.Checkpoint.q_attempts
             (if q.Checkpoint.q_attempts = 1 then "" else "s")
             (String.concat " " q.Checkpoint.q_sites)))
      qs);
  Buffer.contents buf

let health_block (r : Orchestrator.report) =
  match r.Orchestrator.health with
  | [] -> ""
  | entries ->
    let buf = Buffer.create 256 in
    let total f = List.fold_left (fun acc e -> acc + f e) 0 entries in
    Buffer.add_string buf
      (Printf.sprintf "\nbreakers: trips %d  recloses %d  suppressed %d\n"
         (total (fun (e : Health.entry) -> e.Health.opened))
         (total (fun (e : Health.entry) -> e.Health.reclosed))
         (total (fun (e : Health.entry) -> e.Health.suppressed)));
    List.iter
      (fun (e : Health.entry) ->
        if e.Health.opened > 0 || e.Health.suppressed > 0 then
          Buffer.add_string buf
            (Printf.sprintf
               "  %s/%s  queries %d  timeouts %d  crashes %d  opened %d  \
                reclosed %d  suppressed %d  probes %d\n"
               e.Health.e_solver e.Health.e_theory e.Health.queries
               e.Health.timeouts e.Health.crashes e.Health.opened
               e.Health.reclosed e.Health.suppressed e.Health.probes))
      entries;
    Buffer.contents buf

let analytics_block (r : Orchestrator.report) =
  match Analytics.series r.Orchestrator.analytics with
  | [] -> ""
  | pts ->
    let last = List.nth pts (List.length pts - 1) in
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf
         "\nanalytics: %d sample%s  %d coverage points  %d cluster%s\n"
         (List.length pts)
         (if List.length pts = 1 then "" else "s")
         last.Analytics.p_cum_cov last.Analytics.p_cum_clusters
         (if last.Analytics.p_cum_clusters = 1 then "" else "s"));
    (match r.Orchestrator.plateaus with
    | [] ->
      Buffer.add_string buf "  no plateau: curves still growing at the end\n"
    | pls ->
      List.iter
        (fun (pl : Analytics.plateau) ->
          Buffer.add_string buf
            (Printf.sprintf
               "  %s plateaued at tick %d (flat at %d across a %d-shard \
                window)\n"
               pl.Analytics.pl_series pl.Analytics.pl_tick
               pl.Analytics.pl_value pl.Analytics.pl_window))
        pls);
    Buffer.contents buf

let campaign ?(show_formulas = false) ~chaos (r : Orchestrator.report) =
  let buf = Buffer.create 1024 in
  let stats = r.Orchestrator.stats in
  Buffer.add_string buf
    (Printf.sprintf "tests: %d  parse-ok: %d  solved: %d  bug-triggering: %d\n"
       stats.Once4all.Fuzz.tests stats.parse_ok stats.solved
       (List.length stats.findings));
  Buffer.add_string buf
    (Printf.sprintf "\n%d de-duplicated issues:\n"
       (List.length r.Orchestrator.clusters));
  List.iter
    (fun (c : Once4all.Dedup.cluster) ->
      Buffer.add_string buf
        (Printf.sprintf "  [%s] %s  x%d%s\n"
           (Solver.Bug_db.kind_to_string c.Once4all.Dedup.kind)
           c.Once4all.Dedup.key c.count
           (match c.bug_id with Some id -> "  -> " ^ id | None -> ""));
      if show_formulas then (
        Buffer.add_string buf
          (O4a_util.Strx.indent 6 c.representative.Once4all.Dedup.source);
        Buffer.add_char buf '\n'))
    r.Orchestrator.clusters;
  Buffer.add_string buf
    (Printf.sprintf "\ndistinct bugs: %s\n"
       (match r.Orchestrator.found_bug_ids with
       | [] -> "(none)"
       | ids -> String.concat " " ids));
  Buffer.add_string buf
    (Printf.sprintf
       "coverage: zeal %.2f%% lines %.2f%% funcs, cove %.2f%% lines %.2f%% \
        funcs\n"
       (Coverage.line_pct r.Orchestrator.coverage_zeal)
       (Coverage.func_pct r.Orchestrator.coverage_zeal)
       (Coverage.line_pct r.Orchestrator.coverage_cove)
       (Coverage.func_pct r.Orchestrator.coverage_cove));
  Buffer.add_string buf (chaos_block ~chaos r);
  Buffer.add_string buf (health_block r);
  Buffer.add_string buf (analytics_block r);
  Buffer.contents buf

let resumed_line n =
  if n <= 0 then ""
  else
    Printf.sprintf "resumed %d completed shard%s from checkpoint\n" n
      (if n = 1 then "" else "s")

let stopped_line ~checkpoint (r : Orchestrator.report) =
  Printf.sprintf
    "stopped%s after %d shard%s (%d of %d done); resume with: once4all \
     resume --checkpoint %s\n"
    (if r.Orchestrator.stopped then " gracefully" else "")
    r.Orchestrator.shards_run
    (if r.Orchestrator.shards_run = 1 then "" else "s")
    (r.Orchestrator.shards_run + r.Orchestrator.shards_resumed)
    r.Orchestrator.shards_total
    (Option.value checkpoint ~default:"CHECKPOINT")

let bundles_line ~dir n =
  Printf.sprintf "wrote %d repro bundle%s to %s\n" n
    (if n = 1 then "" else "s")
    dir
