(** A campaign submission: everything that determines a campaign's identity
    and outputs, as one JSON-serializable record.

    Both entry points derive their campaign from a spec through the same
    functions here — the CLI's [fuzz] from its flags, the server from a
    submitted JSON object — so a spec names {e one} campaign: same
    generators, same shard plan, same fault plan, same breaker config, same
    checkpoint provenance ({!extra}). That sharing is what makes a server-run
    campaign byte-identical to the standalone run, and their checkpoints
    interchangeable. *)

type t = {
  name : string;  (** job identifier: 1-64 chars of [a-zA-Z0-9._-] *)
  seed : int;  (** the CLI-facing seed; fuzzing itself uses {!fuzz_seed} *)
  budget : int;
  shard_size : int;
  quota : int;
      (** fair-share weight: shards this job may run per scheduling round
          when the server pool is contended (>= 1) *)
  profile : string;  (** LLM profile name, e.g. ["gpt-4"] *)
  use_skeletons : bool;  (** [false] is the w/oS ablation *)
  trace : bool;  (** record provenance traces and write repro bundles *)
  telemetry : bool;  (** write a JSONL event log next to the job *)
  chaos_profile : string;  (** fault-injection profile name, ["off"] = none *)
  chaos_seed : int;
  chaos_rate : float;
  breakers : bool;
  breaker_window : int;
  breaker_threshold : int;
}

val default : name:string -> t
(** The CLI [fuzz] defaults (seed 42, budget 2000, breakers on, chaos off). *)

val validate : t -> (unit, string) result
(** Reject malformed specs with a message fit for the wire: bad name, non-
    positive numbers, unknown LLM or chaos profile. *)

val llm_profile : t -> Llm_sim.Profile.t
(** Resolve [profile]. Raises [Invalid_argument] on unknown names — call
    {!validate} first. *)

val chaos : t -> O4a_faults.Faults.plan option
(** The fault plan, [None] when the profile is ["off"] (or unknown). *)

val health : t -> O4a_health.Health.config option
(** The breaker config ([cooldown] tracks [breaker_window], as the CLI's
    flag does), [None] when [breakers] is false. *)

val config : t -> Once4all.Fuzz.config

val fuzz_seed : t -> int
(** [seed + 1] — the orchestrator seed, matching the CLI's convention (the
    construction phase consumes [seed] itself). *)

val extra : t -> (string * string) list
(** The checkpoint provenance record. One definition for both entry points,
    so checkpoints written by either can be resumed by either. *)

val of_checkpoint : name:string -> Orchestrator.Checkpoint.t -> t
(** Rebuild the spec a checkpoint was written under from its {!extra}
    record — the resume path's inverse of {!extra}. [quota], [trace], and
    [telemetry] take defaults: they are runtime choices, not campaign
    identity. *)

val to_json : t -> O4a_telemetry.Json.t

val of_json : O4a_telemetry.Json.t -> (t, string) result
(** Lenient: only ["name"] is required, every other field defaults. The
    result is {!validate}d. *)
