module Json = O4a_telemetry.Json
module Engine = Solver.Engine
module Shard = Orchestrator.Shard

let log_src = Logs.Src.create "once4all.worker" ~doc:"Remote campaign worker"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* A remote worker pool: connects to a coordinator's TCP (or Unix) listener,
   registers its slot count, and executes granted shards with the exact
   pipeline the coordinator's local pool uses — Campaign.prepare from the
   granted spec, Seeds.Corpus.filtered, make_env on the spec's fuzz seed,
   Orchestrator.exec_shard. A shard outcome is a pure function of
   (env, shard) and the env is a pure function of the spec, so a shard
   executed here is bit-for-bit the shard the coordinator would have
   executed itself; the network moves work, never results' content.

   Threading: the main thread owns the socket — reads grants, sends
   heartbeats — and [slots] executor domains pull grants off a local queue
   and push results back through a writer lock. Heartbeats therefore keep
   flowing while every slot is busy crunching, which is what lets a shard
   legitimately outlive the lease timeout. *)

type config = {
  addr : Addr.t;
  slots : int;
  connect_timeout : float;
  heartbeat_interval : float;
  quit_after : int option;
      (** test hook: die abruptly — connection dropped, no drain — instead
          of sending result number N+1. [Some 0] dies before the first. *)
}

let default_heartbeat_interval = Daemon.default_lease_timeout /. 3.

type task = { lease : int; job : string; spec : Jobspec.t; shard : Shard.t }

type state = {
  cfg : config;
  client : Client.t;
  wlock : Mutex.t;  (* guards writes to the shared connection *)
  elock : Mutex.t;  (* guards [envs]; held across a build, so heartbeats
                       (under [qlock]) never stall on env construction *)
  qlock : Mutex.t;  (* guards everything below *)
  qcond : Condition.t;
  queue : task Queue.t;
  inflight : (int, unit) Hashtbl.t;  (* lease ids being executed *)
  envs : (string, Orchestrator.exec_env) Hashtbl.t;
  mutable sent : int;  (* results delivered, for [quit_after] *)
  mutable draining : bool;  (* coordinator said Drain: finish and exit *)
  mutable dead : bool;  (* connection lost or quit_after tripped *)
}

let push_request st req =
  Mutex.protect st.wlock (fun () ->
      match Client.send st.client req with
      | Ok () -> ()
      | Error msg ->
        Log.warn (fun m -> m "send failed: %s" msg);
        Mutex.protect st.qlock (fun () ->
            st.dead <- true;
            Condition.broadcast st.qcond))

(* env construction mirrors the daemon's start_job step for step — that
   mirror is the whole byte-identity argument, so change both or neither *)
let env_for st (task : task) =
  Mutex.protect st.elock (fun () ->
      match Hashtbl.find_opt st.envs task.job with
      | Some env -> env
      | None ->
        let spec = task.spec in
        let profile = Jobspec.llm_profile spec in
        let campaign =
          Once4all.Campaign.prepare ~seed:spec.Jobspec.seed ~profile ()
        in
        let seeds =
          Seeds.Corpus.filtered ~zeal:campaign.Once4all.Campaign.zeal
            ~cove:campaign.Once4all.Campaign.cove ()
        in
        let env =
          Orchestrator.make_env ~config:(Jobspec.config spec)
            ~tel_enabled:true ~tracing:spec.Jobspec.trace
            ?chaos:(Jobspec.chaos spec) ?health:(Jobspec.health spec)
            ~gen_profile:profile.Llm_sim.Profile.name
            ~seed:(Jobspec.fuzz_seed spec)
            ~generators:campaign.Once4all.Campaign.generators ~seeds ()
        in
        Hashtbl.replace st.envs task.job env;
        env)

let executor st slot () =
  Printexc.record_backtrace (Printexc.backtrace_status ());
  let zeal = Engine.zeal () and cove = Engine.cove () in
  let claim () =
    Mutex.protect st.qlock (fun () ->
        let rec go () =
          if st.dead then None
          else
            match Queue.take_opt st.queue with
            | Some task ->
              Hashtbl.replace st.inflight task.lease ();
              Some task
            | None ->
              if st.draining then None
              else (
                Condition.wait st.qcond st.qlock;
                go ())
        in
        go ())
  in
  let rec loop () =
    match claim () with
    | None -> ()
    | Some task ->
      let env = env_for st task in
      let outcome =
        Orchestrator.exec_shard ~env ~worker_id:slot ~zeal ~cove task.shard
      in
      let quit =
        Mutex.protect st.qlock (fun () ->
            Hashtbl.remove st.inflight task.lease;
            match st.cfg.quit_after with
            | Some n when st.sent >= n ->
              (* die with the lease unsettled: the coordinator sees the
                 connection drop and reassigns the shard — the scenario the
                 byte-identity tests kill workers to produce *)
              st.dead <- true;
              Condition.broadcast st.qcond;
              true
            | _ ->
              st.sent <- st.sent + 1;
              false)
      in
      if quit then ()
      else (
        push_request st
          (Protocol.Worker_result
             { lease = task.lease; outcome = Wire.outcome_to_json outcome });
        Mutex.protect st.qlock (fun () -> Condition.broadcast st.qcond);
        loop ())
  in
  loop ()

let heartbeat st =
  let leases =
    Mutex.protect st.qlock (fun () ->
        Hashtbl.fold (fun l () acc -> l :: acc) st.inflight []
        @ Queue.fold (fun acc t -> t.lease :: acc) [] st.queue)
  in
  push_request st (Protocol.Worker_heartbeat { leases = List.sort compare leases })

let handle_line st line =
  match Json.parse line with
  | Error msg -> Log.warn (fun m -> m "unparseable line from coordinator: %s" msg)
  | Ok json -> (
    match Protocol.worker_msg_of_json json with
    | Ok (Protocol.Grant { lease; job; grant_attempt = _; shard; spec }) ->
      Log.info (fun m ->
          m "granted lease %d: job %s shard %d" lease job shard.Shard.index);
      Mutex.protect st.qlock (fun () ->
          Queue.push { lease; job; spec; shard } st.queue;
          Condition.broadcast st.qcond)
    | Ok Protocol.Drain ->
      Log.info (fun m -> m "coordinator draining; finishing in-flight shards");
      Mutex.protect st.qlock (fun () ->
          st.draining <- true;
          Condition.broadcast st.qcond)
    | Error _ -> (
      (* not a coordinator push: a late reply (ok) or an error report *)
      match Protocol.reply_error json with
      | Some msg ->
        Log.warn (fun m -> m "coordinator error: %s" msg);
        Mutex.protect st.qlock (fun () ->
            st.dead <- true;
            Condition.broadcast st.qcond)
      | None -> ()))

let finished st =
  Mutex.protect st.qlock (fun () ->
      st.dead
      || (st.draining && Queue.is_empty st.queue && Hashtbl.length st.inflight = 0))

(* main-thread socket loop: grants in, heartbeats out, on a select timer so
   heartbeats flow even when nothing is arriving *)
let socket_loop st fd =
  let fr = Framing.create () in
  let buf = Bytes.create 4096 in
  let last_beat = ref (Unix.gettimeofday ()) in
  let rec loop () =
    if finished st then ()
    else (
      let tick = Float.max 0.05 (st.cfg.heartbeat_interval /. 4.) in
      (match Unix.select [ fd ] [] [] tick with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [], _, _ -> ()
      | _ -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | exception
            Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          -> ()
        | exception Unix.Unix_error _ | 0 ->
          Log.warn (fun m -> m "connection to coordinator lost");
          Mutex.protect st.qlock (fun () ->
              st.dead <- true;
              Condition.broadcast st.qcond)
        | n -> (
          match Framing.feed fr (Bytes.sub_string buf 0 n) with
          | Ok lines -> List.iter (handle_line st) lines
          | Error err ->
            Log.err (fun m -> m "%s" (Framing.error_to_string err));
            Mutex.protect st.qlock (fun () ->
                st.dead <- true;
                Condition.broadcast st.qcond))));
      let now = Unix.gettimeofday () in
      if now -. !last_beat >= st.cfg.heartbeat_interval then (
        last_beat := now;
        if not (finished st) then heartbeat st);
      loop ())
  in
  loop ()

let run cfg =
  if cfg.slots < 1 then (
    prerr_endline "once4all: worker --slots must be >= 1";
    2)
  else (
    Engine.prewarm ();
    match Client.connect ~timeout:cfg.connect_timeout cfg.addr with
    | Error msg ->
      prerr_endline ("once4all: " ^ msg);
      1
    | Ok client -> (
      (* the register reply is consumed by the framing loop, not here: a
         buffered request-reply read could swallow a grant the coordinator
         pushes in the same instant it acknowledges registration *)
      match Client.send client (Protocol.Worker_register { slots = cfg.slots }) with
      | Error msg ->
        prerr_endline ("once4all: cannot register with coordinator: " ^ msg);
        Client.close client;
        1
      | Ok () ->
        Log.info (fun m ->
            m "registering with %s (%d slots)" (Addr.to_string cfg.addr)
              cfg.slots);
        let st =
          {
            cfg;
            client;
            wlock = Mutex.create ();
            elock = Mutex.create ();
            qlock = Mutex.create ();
            qcond = Condition.create ();
            queue = Queue.create ();
            inflight = Hashtbl.create 16;
            envs = Hashtbl.create 4;
            sent = 0;
            draining = false;
            dead = false;
          }
        in
        let fd = Client.fd client in
        let executors =
          List.init cfg.slots (fun slot -> Domain.spawn (executor st slot))
        in
        socket_loop st fd;
        Mutex.protect st.qlock (fun () -> Condition.broadcast st.qcond);
        List.iter Domain.join executors;
        let abrupt = Mutex.protect st.qlock (fun () -> st.dead) in
        Client.close client;
        if abrupt then (
          Log.warn (fun m -> m "worker exiting abruptly (%d results sent)" st.sent);
          1)
        else (
          Log.info (fun m -> m "worker drained (%d results sent)" st.sent);
          0)))
