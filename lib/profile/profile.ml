module Telemetry = O4a_telemetry.Telemetry
module Json = O4a_telemetry.Json

type entry = {
  stage : string;
  calls : int;
  wall_ns : int;
  alloc_words : int;
  promoted_words : int;
  consults : int;
  fuel : int;
}

type t = { ticks : int; alloc_words : int; stages : entry list }

let empty = { ticks = 0; alloc_words = 0; stages = [] }

let sort_stages = List.sort (fun a b -> compare a.stage b.stage)

let merge a b =
  let tbl : (string, entry) Hashtbl.t = Hashtbl.create 16 in
  let add e =
    match Hashtbl.find_opt tbl e.stage with
    | None -> Hashtbl.replace tbl e.stage e
    | Some p ->
      Hashtbl.replace tbl e.stage
        {
          stage = e.stage;
          calls = p.calls + e.calls;
          wall_ns = p.wall_ns + e.wall_ns;
          alloc_words = p.alloc_words + e.alloc_words;
          promoted_words = p.promoted_words + e.promoted_words;
          consults = p.consults + e.consults;
          fuel = p.fuel + e.fuel;
        }
  in
  List.iter add a.stages;
  List.iter add b.stages;
  {
    ticks = a.ticks + b.ticks;
    alloc_words = a.alloc_words + b.alloc_words;
    stages = sort_stages (Hashtbl.fold (fun _ e acc -> e :: acc) tbl []);
  }

let strip_timing t =
  {
    t with
    stages =
      List.map
        (fun e -> { e with wall_ns = 0; alloc_words = 0; promoted_words = 0 })
        t.stages;
  }

let total f t = List.fold_left (fun acc e -> acc + f e) 0 t.stages
let total_wall_ns = total (fun e -> e.wall_ns)
let total_alloc_words t = t.alloc_words
let total_consults = total (fun e -> e.consults)
let total_fuel = total (fun e -> e.fuel)

let display_name = function
  | "synthesize" -> "fill"
  | "adapt" -> "sort-adapt"
  | "solver.run" -> "solve"
  | "oracle.compare" -> "oracle"
  | "seed.select" -> "seed-select"
  | s -> s

let entry_to_json e =
  Json.Obj
    [
      ("stage", Json.String e.stage);
      ("calls", Json.Int e.calls);
      ("wall_ns", Json.Int e.wall_ns);
      ("alloc_words", Json.Int e.alloc_words);
      ("promoted_words", Json.Int e.promoted_words);
      ("consults", Json.Int e.consults);
      ("fuel", Json.Int e.fuel);
    ]

let to_json t =
  Json.Obj
    [
      ("ticks", Json.Int t.ticks);
      ("alloc_words", Json.Int t.alloc_words);
      ("stages", Json.List (List.map entry_to_json t.stages));
    ]

(* ------------------------------------------------------------------ *)
(* Ledgers                                                             *)
(* ------------------------------------------------------------------ *)

type cell = {
  mutable c_calls : int;
  mutable c_wall : float;  (* seconds *)
  mutable c_alloc : float;  (* words *)
  mutable c_promoted : float;
  mutable c_consults : int;
  mutable c_fuel : int;
}

type ledger = {
  live : bool;
  cells : (string, cell) Hashtbl.t;
  mutable stack : cell list;
  mutable last_wall : float;
  mutable last_alloc : float;
  mutable last_promoted : float;
  mutable l_ticks : int;
  mutable l_alloc_exact : int;  (* accumulated exact {!using}-scope totals *)
}

let make_ledger () =
  {
    live = true;
    cells = Hashtbl.create 16;
    stack = [];
    last_wall = 0.;
    last_alloc = 0.;
    last_promoted = 0.;
    l_ticks = 0;
    l_alloc_exact = 0;
  }

(* every operation checks [live] before touching state, so one shared
   disabled ledger is safe across domains *)
let disabled =
  {
    live = false;
    cells = Hashtbl.create 1;
    stack = [];
    last_wall = 0.;
    last_alloc = 0.;
    last_promoted = 0.;
    l_ticks = 0;
    l_alloc_exact = 0;
  }

let enabled l = l.live

let cell_for l stage =
  match Hashtbl.find_opt l.cells stage with
  | Some c -> c
  | None ->
    let c =
      { c_calls = 0; c_wall = 0.; c_alloc = 0.; c_promoted = 0.; c_consults = 0; c_fuel = 0 }
    in
    Hashtbl.replace l.cells stage c;
    c

(* [minor + major - promoted] counts the words this domain's code allocated:
   promoted words appear in both the minor and major totals, so subtracting
   them cancels promotion out of the sum. The raw counter is still only
   approximate — the runtime's [minor_words] misses part of the minor heap's
   current fill, an error that moves with the GC schedule (and, on OCaml 5,
   with the stop-the-world collections other domains trigger). Raw samples
   are therefore good enough for per-stage attribution but not for a
   deterministic counter; see {!exact_alloc}. *)
let sample () =
  let wall = Unix.gettimeofday () in
  let minor, promoted, major = Gc.counters () in
  (wall, minor +. major -. promoted, promoted)

(* The deterministic reading: an empty minor heap has no fill term, so
   forcing a minor collection immediately before sampling makes the counter
   exact — byte-identical for the same workload at any [--jobs], regardless
   of what other domains do. Only taken at {!using} boundaries (per shard
   attempt), where a minor collection costs nothing measurable. *)
let exact_alloc () =
  Gc.minor ();
  let minor, promoted, major = Gc.counters () in
  minor +. major -. promoted

(* charge the delta since the last sample to the stage on top of the stack *)
let charge l =
  let wall, alloc, promoted = sample () in
  (match l.stack with
  | top :: _ ->
    top.c_wall <- top.c_wall +. (wall -. l.last_wall);
    top.c_alloc <- top.c_alloc +. (alloc -. l.last_alloc);
    top.c_promoted <- top.c_promoted +. (promoted -. l.last_promoted)
  | [] -> ());
  l.last_wall <- wall;
  l.last_alloc <- alloc;
  l.last_promoted <- promoted

let enter l stage =
  if l.live then (
    charge l;
    let c = cell_for l stage in
    c.c_calls <- c.c_calls + 1;
    l.stack <- c :: l.stack)

let leave l _stage =
  if l.live then (
    charge l;
    match l.stack with _ :: rest -> l.stack <- rest | [] -> ())

let export l =
  let stages =
    Hashtbl.fold
      (fun stage c acc ->
        {
          stage;
          calls = c.c_calls;
          wall_ns = int_of_float (c.c_wall *. 1e9);
          alloc_words = int_of_float c.c_alloc;
          promoted_words = int_of_float c.c_promoted;
          consults = c.c_consults;
          fuel = c.c_fuel;
        }
        :: acc)
      l.cells []
  in
  { ticks = l.l_ticks; alloc_words = l.l_alloc_exact; stages = sort_stages stages }

let ambient_key : ledger Domain.DLS.key = Domain.DLS.new_key (fun () -> disabled)
let ambient () = Domain.DLS.get ambient_key
let recording () = (Domain.DLS.get ambient_key).live

let consult ?(fuel = 0) () =
  let l = Domain.DLS.get ambient_key in
  if l.live then (
    match l.stack with
    | top :: _ ->
      top.c_consults <- top.c_consults + 1;
      top.c_fuel <- top.c_fuel + fuel
    | [] -> ())

let tick () =
  let l = Domain.DLS.get ambient_key in
  if l.live then l.l_ticks <- l.l_ticks + 1

let using l f =
  if not l.live then f ()
  else (
    let saved = Domain.DLS.get ambient_key in
    Domain.DLS.set ambient_key l;
    let hook = { Telemetry.on_enter = enter l; on_leave = leave l } in
    (* warm up this domain's first-touch state (span-hook DLS slot growth,
       counter-sample boxing) before the baseline: a fresh worker domain's
       first shard must count the same words as every later one *)
    Telemetry.with_span_hook hook (fun () -> ());
    ignore (Sys.opaque_identity (sample ()));
    let alloc0 = exact_alloc () in
    let wall, alloc, promoted = sample () in
    l.last_wall <- wall;
    l.last_alloc <- alloc;
    l.last_promoted <- promoted;
    let root = cell_for l "other" in
    root.c_calls <- root.c_calls + 1;
    l.stack <- [ root ];
    Fun.protect
      ~finally:(fun () ->
        charge l;
        l.stack <- [];
        l.l_alloc_exact <-
          l.l_alloc_exact + int_of_float (exact_alloc () -. alloc0);
        Domain.DLS.set ambient_key saved)
      (fun () -> Telemetry.with_span_hook hook f))
