(** Deterministic per-stage campaign profiling.

    A profile ledger rides the existing telemetry span boundaries (via
    {!O4a_telemetry.Telemetry.with_span_hook}) and attributes {e exclusive}
    ("self") cost to whichever stage is on top of the span stack: wall time,
    words allocated by this domain ([Gc.counters]), solver consults and the
    evaluator fuel they burned. Time spent outside any span is charged to the
    synthetic root stage ["other"], so a shard's whole execution is accounted
    for.

    Like the coverage and health ledgers, a profile ledger is created fresh
    per shard attempt, installed ambient on the worker domain with {!using},
    exported as plain sorted counters, and merged commutatively by the single
    merge owner — so the campaign profile does not depend on shard completion
    order.

    {b Determinism.} The exported fields split into two tiers. {e Counts} —
    [calls], [consults], [fuel], [ticks], and the ledger-level
    [alloc_words] total — are pure functions of the executed code:
    {!strip_timing}, the projection the determinism gates compare, keeps
    exactly these and is byte-identical across [--jobs] values.
    {e Measurements} — per-stage [wall_ns], [alloc_words], and
    [promoted_words] — ride the GC and the clock and are zeroed by the
    projection. Per-stage allocation is a measurement because the runtime's
    raw [Gc.counters] reading carries an error term that moves with the GC
    schedule (on OCaml 5, even other domains' stop-the-world minor
    collections shift it). The ledger total escapes this: sampling behind a
    forced minor collection at the {!using} boundaries — where a collection
    costs nothing measurable — empties the minor heap's fill term, making
    the per-shard total [minor + major - promoted] words exact, per-domain,
    and independent of the shard schedule. *)

type entry = {
  stage : string;  (** telemetry span name, or ["other"] for the root *)
  calls : int;  (** span entries (for ["other"]: {!using} scopes) *)
  wall_ns : int;  (** exclusive wall time; measurement, not deterministic *)
  alloc_words : int;
      (** exclusive words allocated ([minor + major - promoted]), from raw
          counter samples at span boundaries; a measurement — see the
          determinism note above *)
  promoted_words : int;
      (** exclusive words promoted out of the minor heap; GC-timing
          dependent, excluded from {!strip_timing} *)
  consults : int;  (** solver queries recorded while this stage was on top *)
  fuel : int;  (** evaluator steps those queries burned *)
}

type t = {
  ticks : int;  (** fuzz-loop tests executed under this profile *)
  alloc_words : int;
      (** total words allocated across the profile's {!using} scopes,
          sampled behind forced minor collections at the scope boundaries:
          exact and deterministic, unlike the per-stage figures *)
  stages : entry list;  (** canonical: sorted by [stage], no duplicates *)
}

val empty : t

val merge : t -> t -> t
(** Pointwise sum by stage; commutative and associative, output canonical. *)

val strip_timing : t -> t
(** The deterministic projection: per-stage [wall_ns], [alloc_words], and
    [promoted_words] zeroed; [ticks], the ledger-level [alloc_words] total,
    and per-stage [calls]/[consults]/[fuel] kept. Byte-identical across
    [--jobs] values for the same campaign. *)

val total_wall_ns : t -> int

val total_alloc_words : t -> int
(** The deterministic ledger-level total ([t.alloc_words]), {e not} the sum
    of the per-stage measurements. *)

val total_consults : t -> int
val total_fuel : t -> int

val display_name : string -> string
(** The paper's stage vocabulary for reports: ["synthesize"] → ["fill"],
    ["adapt"] → ["sort-adapt"], ["solver.run"] → ["solve"],
    ["oracle.compare"] → ["oracle"], ["seed.select"] → ["seed-select"];
    everything else unchanged. *)

val entry_to_json : entry -> O4a_telemetry.Json.t
val to_json : t -> O4a_telemetry.Json.t

(** {1 Ledgers} *)

type ledger

val make_ledger : unit -> ledger
(** A live ledger. Single-owner: one domain, one shard attempt. *)

val disabled : ledger
(** Records nothing; the ambient default. Safe to share across domains. *)

val enabled : ledger -> bool

val export : ledger -> t
(** The accumulated profile, canonical. {!empty} for {!disabled}. *)

val using : ledger -> (unit -> 'a) -> 'a
(** Run [f] with [ledger] ambient on this domain {e and} installed as the
    domain's telemetry span hook, restoring both afterwards (also on
    exception). Opens the root ["other"] frame for the duration, so cost
    outside any span is still attributed. A {!disabled} ledger installs no
    hook and adds no overhead beyond one branch. *)

val ambient : unit -> ledger

val recording : unit -> bool
(** Whether the calling domain's ambient ledger is live — the cheap guard
    instrumentation sites check before computing attribution inputs. *)

val consult : ?fuel:int -> unit -> unit
(** Record one solver query (and the fuel it burned) against the stage
    currently on top of the ambient ledger's span stack. No-op when not
    {!recording}. *)

val tick : unit -> unit
(** Count one fuzz-loop test against the ambient ledger. *)
