type progress = {
  shards_done : int;
  shards_total : int;
  ticks_done : int;
  budget : int;
  findings : int;
  coverage_points : int;
  cov_rate : float option;
  quarantined : int;
  breaker_trips : int;
  elapsed_s : float;
}

let render ?(width = 24) p =
  let frac =
    if p.shards_total <= 0 then 1.
    else float_of_int p.shards_done /. float_of_int p.shards_total
  in
  let filled = min width (max 0 (int_of_float (frac *. float_of_int width))) in
  let bar = String.make filled '#' ^ String.make (width - filled) '-' in
  let tps =
    if p.elapsed_s > 0. then float_of_int p.ticks_done /. p.elapsed_s else 0.
  in
  let rate =
    (* no sample has merged yet: show an explicit placeholder, not a bogus
       0.0 that only corrects itself after the first shard lands *)
    match p.cov_rate with
    | None -> "\xe2\x80\x93" (* – *)
    | Some r -> Printf.sprintf "%.1f" r
  in
  Printf.sprintf
    "[%s] %d/%d shards  %d/%d ticks  %.0f t/s  cov %d (%s/kt)  findings %d  \
     quar %d  breakers %d"
    bar p.shards_done p.shards_total p.ticks_done p.budget tps
    p.coverage_points rate p.findings p.quarantined p.breaker_trips

let profile_line (p : Profile.t) =
  let word_bytes = Sys.word_size / 8 in
  let ticks = max 1 p.Profile.ticks in
  let total_wall = max 1 (Profile.total_wall_ns p) in
  let shares =
    p.Profile.stages
    |> List.sort (fun (a : Profile.entry) b ->
           compare b.Profile.wall_ns a.Profile.wall_ns)
    |> List.filter_map (fun (e : Profile.entry) ->
           let pct = e.Profile.wall_ns * 100 / total_wall in
           if pct < 1 then None
           else
             Some
               (Printf.sprintf "%s %d%%"
                  (Profile.display_name e.Profile.stage)
                  pct))
  in
  Printf.sprintf "profile: %s | %d B/tick  %.2f consults/tick  (%d ticks)"
    (String.concat "  " shares)
    (Profile.total_alloc_words p * word_bytes / ticks)
    (float_of_int (Profile.total_consults p) /. float_of_int ticks)
    p.Profile.ticks
