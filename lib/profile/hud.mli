(** Pure rendering for the live campaign progress HUD.

    The orchestrator's merge owner builds a {!progress} snapshot after every
    merged shard; the CLI decides how to paint it (in-place [\r] rewrite on a
    TTY, one line per update otherwise). Rendering is pure — the HUD itself
    never emits telemetry or touches campaign state, which is what keeps a
    [--progress] run's reports and logs byte-identical to one without it. *)

type progress = {
  shards_done : int;  (** merged + quarantined + resumed *)
  shards_total : int;
  ticks_done : int;
  budget : int;
  findings : int;
  coverage_points : int;  (** merged campaign coverage ledger size *)
  cov_rate : float option;
      (** coverage points per 1000 ticks, derived from the analytics series;
          [None] until the first sample has merged *)
  quarantined : int;
  breaker_trips : int;  (** health-breaker transitions into Open so far *)
  elapsed_s : float;
}

val render : ?width:int -> progress -> string
(** One status line: progress bar ([width] cells, default 24), shard and tick
    counts, ticks/sec, coverage (count plus rate per kilotick, "–" before the
    first merged sample), findings, quarantines, breaker trips. No trailing
    newline. *)

val profile_line : Profile.t -> string
(** End-of-campaign one-liner from the merged profile: the top stages by
    exclusive wall share (paper vocabulary, {!Profile.display_name}), plus
    allocated bytes/tick and solver consults/tick. *)
