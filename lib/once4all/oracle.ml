open Smtlib
module Coverage = O4a_coverage.Coverage
module Engine = Solver.Engine
module Runner = Solver.Runner
module Bug_db = Solver.Bug_db
module Telemetry = O4a_telemetry.Telemetry
module Trace = O4a_trace.Trace

type finding = {
  kind : Bug_db.kind;
  solver : Coverage.solver_tag;
  solver_name : string;
  signature : string;
  bug_id : string option;
  theory : string;
}

type outcome = {
  finding : finding option;
  results : (string * string) list;
  solved : bool;
}

let primary_theory script =
  let tags = Script.theories_used script in
  let extension_first =
    List.filter (fun t -> List.mem t [ "finite_fields"; "sets"; "bags"; "seq" ]) tags
  in
  match (extension_first, tags) with
  | t :: _, _ -> t
  | [], t :: _ -> t
  | [], [] -> "core"

let attribute engine script ~kind =
  Bug_db.active ~solver:(Engine.tag engine) ~commit:(Engine.commit engine)
  |> List.find_opt
       (fun (b : Bug_db.spec) -> b.Bug_db.kind = kind && Bug_db.fires b script)
  |> Option.map (fun (b : Bug_db.spec) -> b.Bug_db.id)

let previous_release_engine engine =
  let tag = Engine.tag engine in
  let history = Solver.Version.history_of tag in
  match List.rev history.Solver.Version.releases with
  | last :: _ -> Engine.make tag ~commit:last.Solver.Version.commit
  | [] -> engine

let crash_finding engine script signature bug_id =
  (* a crash whose signature lives in the reserved "chaos:" namespace was
     injected by the fault layer, not produced by the solver: it must never
     be attributed to a ground-truth bug-registry entry *)
  let injected = O4a_faults.Faults.is_injected_signature signature in
  let theory =
    match (if injected then None else Bug_db.find bug_id) with
    | Some spec -> spec.Bug_db.theory
    | None -> ( match script with Some s -> primary_theory s | None -> "core")
  in
  {
    kind = Bug_db.Crash;
    solver = Engine.tag engine;
    solver_name = Engine.name engine;
    signature;
    bug_id = (if injected then None else Some bug_id);
    theory;
  }

(* validate a model against the parsed script with the reference evaluator *)
let model_verdict script model =
  match Solver.Model.check script model with
  | Solver.Model.Holds -> `Holds
  | Solver.Model.Fails _ -> `Fails
  | Solver.Model.Check_unknown _ -> `Unknown

let test ?(max_steps = 200_000) ?telemetry ~zeal ~cove ~source () =
  let tel = match telemetry with Some t -> t | None -> Telemetry.global () in
  Telemetry.with_span tel "oracle.compare" @@ fun () ->
  match Telemetry.with_span tel "parse" (fun () -> Parser.parse_script source) with
  | Error e ->
    Telemetry.incr tel "oracle.parse_errors";
    if Trace.noting () then
      Trace.note (Trace.Parse_rejected { error = Parser.error_message e });
    {
      finding = None;
      results = [ ("parser", Parser.error_message e) ];
      solved = false;
    }
  | Ok script ->
    let zeal_supports = Engine.supports_script zeal script in
    let engines =
      if zeal_supports then [ zeal; cove ]
      else [ cove; previous_release_engine cove ]
    in
    let runs =
      List.map (fun e -> (e, Runner.run ~max_steps ~telemetry:tel e script)) engines
    in
    if Trace.noting () then
      List.iter
        (fun (e, r) ->
          let q = Engine.last_query_stats e in
          Trace.note
            (Trace.Solver_run
               {
                 solver = Engine.name e;
                 commit = Engine.commit e;
                 verdict = Runner.verdict_label r;
                 steps = q.Engine.steps;
                 decisions = q.Engine.decisions;
                 propagations = q.Engine.propagations;
               }))
        runs;
    let results =
      List.map (fun (e, r) -> (Engine.name e, Runner.result_to_string r)) runs
    in
    let solved =
      List.exists
        (fun (_, r) -> match r with Runner.R_sat _ | Runner.R_unsat -> true | _ -> false)
        runs
    in
    (* 1. crashes *)
    let crash =
      List.find_map
        (fun (e, r) ->
          match r with
          | Runner.R_crash { signature; bug_id } ->
            Some (crash_finding e (Some script) signature bug_id)
          | _ -> None)
        runs
    in
    let theory = primary_theory script in
    let mk_finding kind engine signature =
      {
        kind;
        solver = Engine.tag engine;
        solver_name = Engine.name engine;
        signature;
        bug_id = attribute engine script ~kind;
        theory;
      }
    in
    (* 2. sat/unsat discrepancy *)
    let discrepancy =
      let sat_side =
        List.find_opt (fun (_, r) -> match r with Runner.R_sat _ -> true | _ -> false) runs
      in
      let unsat_side = List.find_opt (fun (_, r) -> r = Runner.R_unsat) runs in
      match (sat_side, unsat_side) with
      | Some (sat_engine, Runner.R_sat model), Some (unsat_engine, _) -> (
        match model_verdict script model with
        | `Holds ->
          Some
            (mk_finding Bug_db.Soundness unsat_engine
               (Printf.sprintf "soundness:%s:%s" (Engine.name unsat_engine) theory))
        | `Fails ->
          Some
            (mk_finding Bug_db.Invalid_model sat_engine
               (Printf.sprintf "invalid-model:%s:%s" (Engine.name sat_engine) theory))
        | `Unknown -> None)
      | _ -> None
    in
    (* 3. model validation on agreement (model_validate / --check-models) *)
    let invalid_model =
      List.find_map
        (fun (e, r) ->
          match r with
          | Runner.R_sat model when model_verdict script model = `Fails ->
            Some
              (mk_finding Bug_db.Invalid_model e
                 (Printf.sprintf "invalid-model:%s:%s" (Engine.name e) theory))
          | _ -> None)
        runs
    in
    let finding =
      match (crash, discrepancy, invalid_model) with
      | Some f, _, _ -> Some f
      | None, Some f, _ -> Some f
      | None, None, f -> f
    in
    if Trace.noting () then (
      let kind, solver, signature, bug_id, theory =
        match finding with
        | Some f ->
          ( Some (Bug_db.kind_to_string f.kind),
            Some f.solver_name,
            Some f.signature,
            f.bug_id,
            Some f.theory )
        | None -> (None, None, None, None, None)
      in
      Trace.note (Trace.Oracle_verdict { kind; solver; signature; bug_id; theory }));
    (match finding with
    | Some f ->
      let kind = Bug_db.kind_to_string f.kind in
      Telemetry.incr tel
        ~labels:[ ("kind", kind); ("solver", f.solver_name) ]
        "oracle.findings";
      Telemetry.emit tel "oracle.finding"
        [
          ("kind", O4a_telemetry.Json.String kind);
          ("solver", O4a_telemetry.Json.String f.solver_name);
          ("signature", O4a_telemetry.Json.String f.signature);
          ("theory", O4a_telemetry.Json.String f.theory);
          ( "bug_id",
            match f.bug_id with
            | Some id -> O4a_telemetry.Json.String id
            | None -> O4a_telemetry.Json.Null );
        ]
    | None -> ());
    { finding; results; solved }
