open Smtlib
module Coverage = O4a_coverage.Coverage
module Engine = Solver.Engine
module Runner = Solver.Runner
module Bug_db = Solver.Bug_db
module Telemetry = O4a_telemetry.Telemetry
module Trace = O4a_trace.Trace
module Health = O4a_health.Health

type mode = Differential | Degraded of string

let mode_to_string = function
  | Differential -> "differential"
  | Degraded solvers -> "degraded:" ^ solvers

let mode_of_string s =
  if s = "differential" then Some Differential
  else (
    let prefix = "degraded:" in
    if String.starts_with ~prefix s then
      Some
        (Degraded (String.sub s (String.length prefix)
                     (String.length s - String.length prefix)))
    else None)

type finding = {
  kind : Bug_db.kind;
  solver : Coverage.solver_tag;
  solver_name : string;
  signature : string;
  bug_id : string option;
  theory : string;
  mode : mode;
}

type outcome = {
  finding : finding option;
  results : (string * string) list;
  solved : bool;
}

let primary_theory script =
  let tags = Script.theories_used script in
  let extension_first =
    List.filter (fun t -> List.mem t [ "finite_fields"; "sets"; "bags"; "seq" ]) tags
  in
  match (extension_first, tags) with
  | t :: _, _ -> t
  | [], t :: _ -> t
  | [], [] -> "core"

let attribute engine script ~kind =
  Bug_db.active ~solver:(Engine.tag engine) ~commit:(Engine.commit engine)
  |> List.find_opt
       (fun (b : Bug_db.spec) -> b.Bug_db.kind = kind && Bug_db.fires b script)
  |> Option.map (fun (b : Bug_db.spec) -> b.Bug_db.id)

let previous_release_engine engine =
  let tag = Engine.tag engine in
  let history = Solver.Version.history_of tag in
  match List.rev history.Solver.Version.releases with
  | last :: _ -> Some (Engine.make tag ~commit:last.Solver.Version.commit)
  | [] -> None

let crash_finding engine script signature bug_id ~mode =
  (* a crash whose signature lives in the reserved "chaos:" namespace was
     injected by the fault layer, not produced by the solver: it must never
     be attributed to a ground-truth bug-registry entry *)
  let injected = O4a_faults.Faults.is_injected_signature signature in
  let theory =
    match (if injected then None else Bug_db.find bug_id) with
    | Some spec -> spec.Bug_db.theory
    | None -> ( match script with Some s -> primary_theory s | None -> "core")
  in
  {
    kind = Bug_db.Crash;
    solver = Engine.tag engine;
    solver_name = Engine.name engine;
    signature;
    bug_id = (if injected then None else Some bug_id);
    theory;
    mode;
  }

(* validate a model against the parsed script with the reference evaluator *)
let model_verdict script model =
  match Solver.Model.check script model with
  | Solver.Model.Holds -> `Holds
  | Solver.Model.Fails _ -> `Fails
  | Solver.Model.Check_unknown _ -> `Unknown

let test ?(max_steps = 200_000) ?telemetry ~zeal ~cove ~source () =
  let tel = match telemetry with Some t -> t | None -> Telemetry.global () in
  Telemetry.with_span tel "oracle.compare" @@ fun () ->
  match Telemetry.with_span tel "parse" (fun () -> Parser.parse_script source) with
  | Error e ->
    Telemetry.incr tel "oracle.parse_errors";
    if Trace.noting () then
      Trace.note (Trace.Parse_rejected { error = Parser.error_message e });
    {
      finding = None;
      results = [ ("parser", Parser.error_message e) ];
      solved = false;
    }
  | Ok script ->
    let theory = primary_theory script in
    let zeal_supports = Engine.supports_script zeal script in
    let engines =
      if zeal_supports then [ zeal; cove ]
      else (
        match previous_release_engine cove with
        | Some prev -> [ cove; prev ]
        | None ->
          (* no release history: the cross-version comparison would pit the
             engine against itself, so skip the bisection pairing and fall
             back to single-solver + model-validation *)
          Telemetry.incr tel "oracle.no_history";
          Telemetry.emit tel "oracle.no_history"
            [ ("solver", O4a_telemetry.Json.String (Engine.name cove)) ];
          [ cove ])
    in
    let ledger = Health.ambient () in
    let emit_transition solver = function
      | None -> ()
      | Some st ->
        let st_name = Health.state_name st in
        Telemetry.incr tel
          ~labels:[ ("solver", solver); ("theory", theory); ("to", st_name) ]
          "health.transitions";
        Telemetry.emit tel "health.breaker"
          [
            ("solver", O4a_telemetry.Json.String solver);
            ("theory", O4a_telemetry.Json.String theory);
            ("to", O4a_telemetry.Json.String st_name);
          ]
    in
    let decisions =
      List.map
        (fun e ->
          let d, transition = Health.admit ledger ~solver:(Engine.name e) ~theory in
          emit_transition (Engine.name e) transition;
          (e, d))
        engines
    in
    let admitted, suppressed =
      List.partition (fun (_, d) -> d <> Health.Suppress) decisions
    in
    let mode =
      match suppressed with
      | [] -> Differential
      | es ->
        Degraded (String.concat "+" (List.map (fun (e, _) -> Engine.name e) es))
    in
    if mode <> Differential then
      Telemetry.incr tel ~labels:[ ("theory", theory) ] "oracle.degraded";
    let classify = function
      | Runner.R_timeout -> Health.Timeout
      | Runner.R_crash _ -> Health.Crash
      | Runner.R_error _ -> Health.Error
      | Runner.R_sat _ | Runner.R_unsat | Runner.R_unknown _ -> Health.Good
    in
    let runs =
      List.map
        (fun (e, d) ->
          let r = Runner.run ~max_steps ~telemetry:tel e script in
          if Health.enabled ledger then (
            let q = Engine.last_query_stats e in
            let transition =
              Health.record ledger ~solver:(Engine.name e) ~theory
                ~probe:(d = Health.Probe) ~fuel:q.Engine.steps (classify r)
            in
            emit_transition (Engine.name e) transition);
          (e, r))
        admitted
    in
    if Trace.noting () then
      List.iter
        (fun (e, r) ->
          let q = Engine.last_query_stats e in
          Trace.note
            (Trace.Solver_run
               {
                 solver = Engine.name e;
                 commit = Engine.commit e;
                 verdict = Runner.verdict_label r;
                 steps = q.Engine.steps;
                 decisions = q.Engine.decisions;
                 propagations = q.Engine.propagations;
               }))
        runs;
    let results =
      List.map (fun (e, r) -> (Engine.name e, Runner.result_to_string r)) runs
      @ List.map
          (fun (e, _) -> (Engine.name e, "suppressed (breaker open)"))
          suppressed
    in
    let solved =
      List.exists
        (fun (_, r) -> match r with Runner.R_sat _ | Runner.R_unsat -> true | _ -> false)
        runs
    in
    (* 1. crashes *)
    let crash =
      List.find_map
        (fun (e, r) ->
          match r with
          | Runner.R_crash { signature; bug_id } ->
            Some (crash_finding e (Some script) signature bug_id ~mode)
          | _ -> None)
        runs
    in
    let mk_finding kind engine signature =
      {
        kind;
        solver = Engine.tag engine;
        solver_name = Engine.name engine;
        signature;
        bug_id = attribute engine script ~kind;
        theory;
        mode;
      }
    in
    (* 2. sat/unsat discrepancy *)
    let discrepancy =
      let sat_side =
        List.find_opt (fun (_, r) -> match r with Runner.R_sat _ -> true | _ -> false) runs
      in
      let unsat_side = List.find_opt (fun (_, r) -> r = Runner.R_unsat) runs in
      match (sat_side, unsat_side) with
      | Some (sat_engine, Runner.R_sat model), Some (unsat_engine, _) -> (
        match model_verdict script model with
        | `Holds ->
          Some
            (mk_finding Bug_db.Soundness unsat_engine
               (Printf.sprintf "soundness:%s:%s" (Engine.name unsat_engine) theory))
        | `Fails ->
          Some
            (mk_finding Bug_db.Invalid_model sat_engine
               (Printf.sprintf "invalid-model:%s:%s" (Engine.name sat_engine) theory))
        | `Unknown -> None)
      | _ -> None
    in
    (* 3. model validation on agreement (model_validate / --check-models) *)
    let invalid_model =
      List.find_map
        (fun (e, r) ->
          match r with
          | Runner.R_sat model when model_verdict script model = `Fails ->
            Some
              (mk_finding Bug_db.Invalid_model e
                 (Printf.sprintf "invalid-model:%s:%s" (Engine.name e) theory))
          | _ -> None)
        runs
    in
    let finding =
      match (crash, discrepancy, invalid_model) with
      | Some f, _, _ -> Some f
      | None, Some f, _ -> Some f
      | None, None, f -> f
    in
    if Trace.noting () then (
      let kind, solver, signature, bug_id, theory =
        match finding with
        | Some f ->
          ( Some (Bug_db.kind_to_string f.kind),
            Some f.solver_name,
            Some f.signature,
            f.bug_id,
            Some f.theory )
        | None -> (None, None, None, None, None)
      in
      Trace.note
        (Trace.Oracle_verdict
           {
             kind;
             solver;
             signature;
             bug_id;
             theory;
             mode = Some (mode_to_string mode);
           }));
    (match finding with
    | Some f ->
      let kind = Bug_db.kind_to_string f.kind in
      Telemetry.incr tel
        ~labels:[ ("kind", kind); ("solver", f.solver_name) ]
        "oracle.findings";
      Telemetry.emit tel "oracle.finding"
        [
          ("kind", O4a_telemetry.Json.String kind);
          ("solver", O4a_telemetry.Json.String f.solver_name);
          ("signature", O4a_telemetry.Json.String f.signature);
          ("theory", O4a_telemetry.Json.String f.theory);
          ( "bug_id",
            match f.bug_id with
            | Some id -> O4a_telemetry.Json.String id
            | None -> O4a_telemetry.Json.Null );
          ("mode", O4a_telemetry.Json.String (mode_to_string f.mode));
        ]
    | None -> ());
    { finding; results; solved }
