let log_src = Logs.Src.create "once4all" ~doc:"Once4All campaign events"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Telemetry = O4a_telemetry.Telemetry
module Json = O4a_telemetry.Json

type t = {
  generators : Gensynth.Generator.t list;
  generator_reports : Gensynth.Synthesis.report list;
  client : Llm_sim.Client.t;
  zeal : Solver.Engine.t;
  cove : Solver.Engine.t;
}

let prepare ?(seed = 42) ?(profile = Llm_sim.Profile.gpt4) ?zeal ?cove ?theories
    ?telemetry () =
  let tel = match telemetry with Some t -> t | None -> Telemetry.global () in
  let zeal = Option.value zeal ~default:(Solver.Engine.zeal ()) in
  let cove = Option.value cove ~default:(Solver.Engine.cove ()) in
  let theories = Option.value theories ~default:Theories.Theory.all in
  let client = Llm_sim.Client.create ~seed profile in
  Log.info (fun m ->
      m "constructing %d generators with %s (seed %d)" (List.length theories)
        profile.Llm_sim.Profile.name seed);
  let built =
    List.map
      (fun theory ->
        let result =
          Telemetry.with_span tel
            ~labels:[ ("theory", theory.Theories.Theory.key) ]
            "construct"
            (fun () ->
              Gensynth.Synthesis.construct ~client ~solvers:[ zeal; cove ] theory)
        in
        let report = snd result in
        Telemetry.emit tel "gen.construct"
          [
            ("theory", Json.String report.Gensynth.Synthesis.theory_key);
            ("initial_valid", Json.Int report.Gensynth.Synthesis.initial_valid);
            ("final_valid", Json.Int report.Gensynth.Synthesis.final_valid);
            ("samples", Json.Int report.Gensynth.Synthesis.sample_num);
            ("iterations", Json.Int report.Gensynth.Synthesis.iterations);
            ("llm_calls", Json.Int report.Gensynth.Synthesis.llm_calls);
          ];
        Log.info (fun m ->
            m "generator %-14s initial %2d/%d final %2d/%d iterations %d"
              report.Gensynth.Synthesis.theory_key report.initial_valid
              report.sample_num report.final_valid report.sample_num
              report.iterations);
        result)
      theories
  in
  {
    generators = List.map fst built;
    generator_reports = List.map snd built;
    client;
    zeal;
    cove;
  }

type report = {
  stats : Fuzz.stats;
  clusters : Dedup.cluster list;
  found_bug_ids : string list;
  llm_calls : int;
  llm_tokens : int;
}

let fuzz ?(seed = 1337) ?config ?telemetry t ~seeds ~budget =
  let tel = match telemetry with Some t -> t | None -> Telemetry.global () in
  let rng = O4a_util.Rng.create seed in
  let stats =
    Fuzz.run ~rng ?config ~telemetry:tel ~generators:t.generators ~seeds
      ~zeal:t.zeal ~cove:t.cove ~budget ()
  in
  Log.info (fun m ->
      m "campaign finished: %d tests, %d solved, %d bug-triggering formulas"
        stats.Fuzz.tests stats.Fuzz.solved
        (List.length stats.Fuzz.findings));
  let clusters =
    Telemetry.with_span tel "dedup" (fun () -> Dedup.cluster stats.Fuzz.findings)
  in
  List.iter
    (fun (c : Dedup.cluster) ->
      Log.debug (fun m ->
          m "cluster [%s] %s x%d"
            (Solver.Bug_db.kind_to_string c.Dedup.kind)
            c.Dedup.key c.Dedup.count))
    clusters;
  (* specimens hit: every ground-truth id observed, not just cluster
     majorities — duplicate bugs share a crash site with their original *)
  let found_bug_ids =
    stats.Fuzz.findings
    |> List.filter_map (fun f -> f.Dedup.finding.Oracle.bug_id)
    |> O4a_util.Listx.dedup
  in
  let report =
    {
      stats;
      clusters;
      found_bug_ids;
      llm_calls = Llm_sim.Client.call_count t.client;
      llm_tokens = Llm_sim.Client.token_count t.client;
    }
  in
  Telemetry.emit tel "campaign.report"
    [
      ("clusters", Json.Int (List.length clusters));
      ("found_bug_ids", Json.Int (List.length found_bug_ids));
      ("llm_calls", Json.Int report.llm_calls);
      ("llm_tokens", Json.Int report.llm_tokens);
    ];
  report
