open Smtlib
module Bug_db = Solver.Bug_db
module Engine = Solver.Engine

type t = {
  title : string;
  body : string;
}

let kind_label = function
  | Bug_db.Crash -> "Crash"
  | Bug_db.Soundness -> "Soundness issue"
  | Bug_db.Invalid_model -> "Invalid model"

let affected_versions (spec : Bug_db.spec) =
  let history = Solver.Version.history_of spec.Bug_db.solver in
  let affected =
    List.filter
      (fun (r : Solver.Version.release) ->
        spec.Bug_db.introduced <= r.Solver.Version.commit
        &&
        match spec.Bug_db.fixed_commit with
        | None -> true
        | Some f -> r.Solver.Version.commit < f)
      history.Solver.Version.releases
  in
  match affected with
  | [] -> "trunk only"
  | rs ->
    Printf.sprintf "%s .. trunk"
      (String.concat ", " (List.map (fun r -> r.Solver.Version.version) rs))

let reduce_representative ?(max_probes = 300) ~zeal ~cove (cluster : Dedup.cluster) =
  match Parser.parse_script cluster.Dedup.representative.Dedup.source with
  | Error _ -> (cluster.Dedup.representative.Dedup.source, None)
  | Ok script ->
    let signature_of s =
      match Oracle.test ~zeal ~cove ~source:(Printer.script s) () with
      | { Oracle.finding = Some f; _ } -> Some f.Oracle.signature
      | _ -> None
    in
    (match signature_of script with
    | None -> (cluster.Dedup.representative.Dedup.source, None)
    | Some signature ->
      let reduced, stats =
        Reduce_kit.Ddsmt.reduce ~max_probes
          ~still_triggers:(fun c -> signature_of c = Some signature)
          script
      in
      (Printer.script reduced, Some stats))

let observed_behavior ~zeal ~cove source =
  match Parser.parse_script source with
  | Error e -> [ ("parser", Parser.error_message e) ]
  | Ok script ->
    [ zeal; cove ]
    |> List.filter (fun e -> Engine.supports_script e script)
    |> List.map (fun e ->
           (Engine.name e, Solver.Runner.result_to_string (Solver.Runner.run e script)))

let of_cluster ?max_probes ~zeal ~cove (cluster : Dedup.cluster) =
  let spec = Option.bind cluster.Dedup.bug_id Bug_db.find in
  let solver_label =
    match cluster.Dedup.solver with
    | O4a_coverage.Coverage.Zeal -> "zeal"
    | O4a_coverage.Coverage.Cove -> "cove"
  in
  let title =
    match spec with
    | Some s -> Printf.sprintf "[%s] %s: %s" solver_label (kind_label s.Bug_db.kind) s.Bug_db.summary
    | None ->
      Printf.sprintf "[%s] %s in theory %s" solver_label (kind_label cluster.Dedup.kind)
        cluster.Dedup.theory
  in
  let reduced_source, reduction = reduce_representative ?max_probes ~zeal ~cove cluster in
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "### Reproducer";
  line "```smt2";
  line "%s" reduced_source;
  line "```";
  (match reduction with
  | Some stats when stats.Reduce_kit.Ddsmt.final_size < stats.Reduce_kit.Ddsmt.initial_size ->
    line "(reduced from %d to %d nodes in %d probes)" stats.Reduce_kit.Ddsmt.initial_size
      stats.Reduce_kit.Ddsmt.final_size stats.Reduce_kit.Ddsmt.probes
  | _ -> ());
  line "";
  line "### Observed behavior";
  List.iter
    (fun (name, result) -> line "- `%s`: %s" name result)
    (observed_behavior ~zeal ~cove reduced_source);
  line "";
  line "### Details";
  line "- kind: %s" (Bug_db.kind_to_string cluster.Dedup.kind);
  line "- theory: %s" cluster.Dedup.theory;
  line "- oracle mode: %s"
    (Oracle.mode_to_string
       cluster.Dedup.representative.Dedup.finding.Oracle.mode);
  line "- crash/cluster signature: `%s`"
    (Dedup.signature_to_string cluster.Dedup.signature);
  line "- occurrences in this campaign: %d" cluster.Dedup.count;
  (match spec with
  | Some s ->
    line "- affected releases: %s" (affected_versions s);
    line "- triage status: %s" (Bug_db.status_to_string s.Bug_db.status)
  | None -> line "- triage status: unattributed (new behavior?)");
  { title; body = Buffer.contents buf }

let render t = Printf.sprintf "## %s\n\n%s" t.title t.body

let render_campaign ?max_probes ~zeal ~cove clusters =
  let crashes, others =
    List.partition (fun c -> c.Dedup.kind = Bug_db.Crash) clusters
  in
  crashes @ others
  |> List.map (fun c -> render (of_cluster ?max_probes ~zeal ~cove c))
  |> String.concat "\n\n---\n\n"
