type found = {
  finding : Oracle.finding;
  source : string;
}

type signature =
  | Crash_site of string
  | Verdict_group of {
      kind : Solver.Bug_db.kind;
      solver_name : string;
      theory : string;
    }

type cluster = {
  key : string;
  signature : signature;
  kind : Solver.Bug_db.kind;
  solver : O4a_coverage.Coverage.solver_tag;
  theory : string;
  bug_id : string option;
  representative : found;
  count : int;
}

let signature (finding : Oracle.finding) =
  match finding.Oracle.kind with
  | Solver.Bug_db.Crash -> Crash_site finding.Oracle.signature
  | (Solver.Bug_db.Soundness | Solver.Bug_db.Invalid_model) as kind ->
    (* group by kind, solver and theory, as the paper does *)
    Verdict_group
      {
        kind;
        solver_name = finding.Oracle.solver_name;
        theory = finding.Oracle.theory;
      }

let signature_to_string = function
  | Crash_site site -> "crash:" ^ site
  | Verdict_group { kind; solver_name; theory } ->
    Printf.sprintf "%s:%s:%s" (Solver.Bug_db.kind_to_string kind) solver_name
      theory

let cluster_key f = signature_to_string (signature f.finding)

let majority_bug_id members =
  members
  |> List.filter_map (fun f -> f.finding.Oracle.bug_id)
  |> O4a_util.Listx.count_by Fun.id
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> function
  | (id, _) :: _ -> Some id
  | [] -> None

let cluster founds =
  founds
  |> O4a_util.Listx.group_by cluster_key
  |> List.map (fun (key, members) ->
         let first = List.hd members in
         let representative =
           List.fold_left
             (fun best f ->
               if String.length f.source < String.length best.source then f else best)
             first members
         in
         {
           key;
           signature = signature first.finding;
           kind = first.finding.Oracle.kind;
           solver = first.finding.Oracle.solver;
           theory = first.finding.Oracle.theory;
           bug_id = majority_bug_id members;
           representative;
           count = List.length members;
         })

let distinct_bug_ids clusters =
  clusters |> List.filter_map (fun c -> c.bug_id) |> O4a_util.Listx.dedup
