open Smtlib
module Trace = O4a_trace.Trace

let note_hole ~hole ~path ~sort =
  if Trace.noting () then
    Trace.note
      (Trace.Skeleton_hole
         { hole; path = String.concat "." (List.map string_of_int path); sort })

(* positions whose children are boolean-sorted, by construction of SMT-LIB *)
let boolean_atom_paths term =
  let acc = ref [] in
  let rec walk path in_bool term =
    if in_bool && Term.is_atomic term then acc := List.rev path :: !acc
    else (
      match term with
      | Term.App (("and" | "or" | "not" | "xor" | "=>") , args) ->
        List.iteri (fun i t -> walk (i :: path) true t) args
      | Term.App ("ite", [ c; a; b ]) ->
        walk (0 :: path) true c;
        (* branches inherit the ite's sort: boolean iff this ite is *)
        walk (1 :: path) in_bool a;
        walk (2 :: path) in_bool b
      | Term.Forall (_, body) | Term.Exists (_, body) -> walk (0 :: path) true body
      | Term.Annot (body, _) -> walk (0 :: path) in_bool body
      | Term.Let (bindings, body) ->
        (* binding values have unknown sorts; only the body keeps context *)
        walk (List.length bindings :: path) in_bool body
      | Term.Match (_, cases) ->
        (* case bodies inherit the match's sort *)
        List.iteri (fun i (_, body) -> walk ((i + 1) :: path) in_bool body) cases
      | Term.Const _ | Term.Var _ | Term.App _ | Term.Indexed_app _ | Term.Qual _
      | Term.Qual_app _ | Term.Placeholder _ ->
        ())
  in
  walk [] true term;
  List.rev !acc

let skeletonize_term ~rng ?(keep_prob = 0.45) ~next_hole term =
  let paths = boolean_atom_paths term in
  match paths with
  | [] -> term
  | _ ->
    let selected = O4a_util.Rng.subset rng keep_prob paths in
    let selected =
      if selected = [] then [ O4a_util.Rng.choose rng paths ] else selected
    in
    List.fold_left
      (fun t path ->
        let hole = Term.Placeholder !next_hole in
        note_hole ~hole:!next_hole ~path ~sort:None;
        incr next_hole;
        Term.replace_at t path hole)
      term selected

let skeletonize ~rng ?keep_prob script =
  let next_hole = ref 0 in
  let script' =
    Script.map_assertions (skeletonize_term ~rng ?keep_prob ~next_hole) script
  in
  (script', !next_hole)

(* ------------------------------------------------------------------ *)
(* Mixed-sorts extension: typed holes                                  *)
(* ------------------------------------------------------------------ *)

let max_replaced_size = 8

let typed_candidate_paths ~env ~supported term =
  let acc = ref [] in
  let consider path env node =
    if Term.size node <= max_replaced_size && not (Term.has_placeholder node) then (
      match Theories.Typecheck.infer env node with
      | Ok sort when supported sort -> acc := (List.rev path, sort) :: !acc
      | Ok _ | Error _ -> ())
  in
  let rec walk path env node =
    (* structural boolean nodes are kept as skeleton; their leaves and every
       theory-term argument position are candidates *)
    (match node with
    | Term.App (("and" | "or" | "not" | "xor" | "=>"), _)
    | Term.Forall _ | Term.Exists _ | Term.Let _ | Term.Annot _ ->
      ()
    | _ -> consider path env node);
    match node with
    | Term.Let (bindings, body) ->
      List.iteri (fun i (_, v) -> walk (i :: path) env v) bindings;
      let env' =
        List.fold_left
          (fun e (n, v) ->
            match Theories.Typecheck.infer e v with
            | Ok s -> Theories.Typecheck.add_var n s e
            | Error _ -> e)
          env bindings
      in
      walk (List.length bindings :: path) env' body
    | Term.Forall (binders, body) | Term.Exists (binders, body) ->
      let env' =
        List.fold_left (fun e (n, s) -> Theories.Typecheck.add_var n s e) env binders
      in
      walk (0 :: path) env' body
    | _ -> List.iteri (fun i c -> walk (i :: path) env c) (Term.children node)
  in
  walk [] env term;
  (* drop nested candidates: keep outermost ones only so replacements never
     overlap (a path that extends another is nested) *)
  let outermost = List.rev !acc in
  let is_prefix p q =
    List.length p < List.length q && O4a_util.Listx.take (List.length p) q = p
  in
  List.filter
    (fun (p, _) -> not (List.exists (fun (p', _) -> is_prefix p' p) outermost))
    outermost

let skeletonize_typed ~rng ?(keep_prob = 0.35) ~supported script =
  let env = Theories.Typecheck.env_of_script script in
  let next_hole = ref 0 in
  let hole_sorts = ref [] in
  let hollow assertion =
    let candidates = typed_candidate_paths ~env ~supported assertion in
    match candidates with
    | [] -> assertion
    | _ ->
      let selected = O4a_util.Rng.subset rng keep_prob candidates in
      let selected =
        if selected = [] then [ O4a_util.Rng.choose rng candidates ] else selected
      in
      List.fold_left
        (fun t (path, sort) ->
          let n = !next_hole in
          incr next_hole;
          hole_sorts := (n, sort) :: !hole_sorts;
          note_hole ~hole:n ~path ~sort:(Some (Sort.to_string sort));
          Term.replace_at t path (Term.Placeholder n))
        assertion selected
  in
  let script' = Script.map_assertions hollow script in
  (script', List.rev !hole_sorts)
