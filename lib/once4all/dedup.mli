(** Bug de-duplication (§4.2, "Bug Inspection and Reduction"): crashes are
    clustered by stack signature (all crashes reaching the same code location
    are one issue); soundness and invalid-model findings are grouped by the
    solver and the theory involved, with one representative kept per group. *)

type found = {
  finding : Oracle.finding;
  source : string;  (** the triggering formula *)
}

(** A finding's cluster identity: crashes by stack signature, verdict
    disagreements by (kind, solver, theory). *)
type signature =
  | Crash_site of string
  | Verdict_group of {
      kind : Solver.Bug_db.kind;
      solver_name : string;
      theory : string;
    }

type cluster = {
  key : string;  (** [signature_to_string signature] *)
  signature : signature;
  kind : Solver.Bug_db.kind;
  solver : O4a_coverage.Coverage.solver_tag;
  theory : string;
  bug_id : string option;  (** ground-truth attribution (majority vote) *)
  representative : found;  (** smallest triggering formula *)
  count : int;
}

val signature : Oracle.finding -> signature

val signature_to_string : signature -> string
(** Canonical cluster-key rendering — ["crash:<site>"] or
    ["<kind>:<solver>:<theory>"]. Every surface that names a cluster (the
    campaign report, checkpoints, [triage], repro-bundle metadata) uses this
    string, so keys compare equal across all of them. *)

val cluster : found list -> cluster list
(** Stable order: first-seen clusters first. *)

val distinct_bug_ids : cluster list -> string list
