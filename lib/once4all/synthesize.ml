open Smtlib
module Rng = O4a_util.Rng
module Generator = Gensynth.Generator
module Trace = O4a_trace.Trace

(* the adapt stage is deep inside hole-filling, far from any [?telemetry]
   parameter, so it reads the ambient handle *)
let adapt_span f = O4a_telemetry.Telemetry.with_span (O4a_telemetry.Telemetry.global ()) "adapt" f

type filled = {
  source : string;
  parsed : Script.t option;
  theories_spliced : string list;
}

(* one hole's content after generation *)
type hole_fill =
  | Ast of { term : Term.t; decls : Command.t list }
  | Raw of { text : string; decl_lines : string list }

let note_fill ~hole ~theory ~sort fill =
  if Trace.noting () then
    Trace.note
      (Trace.Hole_filled
         {
           hole;
           theory;
           sort;
           raw = (match fill with Raw _ -> true | Ast _ -> false);
         })

let parse_decl_commands lines =
  match Parser.parse_script (String.concat "\n" lines) with
  | Ok cmds -> Some cmds
  | Error _ -> None

let decl_vars cmds =
  List.filter_map
    (function
      | Command.Declare_fun (n, [], s) | Command.Declare_const (n, s) -> Some (n, s)
      | _ -> None)
    cmds

let rename_clashes ~taken term decls =
  (* suffix generated names that clash with seed symbols *)
  List.fold_left
    (fun (term, decls, taken) (name, _sort) ->
      if List.mem name taken then (
        let rec fresh i =
          let candidate = Printf.sprintf "%s_g%d" name i in
          if List.mem candidate taken then fresh (i + 1) else candidate
        in
        let name' = fresh 0 in
        let term = Term.rename_var ~old_name:name ~new_name:name' term in
        let decls =
          List.map
            (function
              | Command.Declare_fun (n, [], s) when n = name ->
                Command.Declare_fun (name', [], s)
              | Command.Declare_const (n, s) when n = name ->
                Command.Declare_const (name', s)
              | c -> c)
            decls
        in
        (term, decls, name' :: taken))
      else (term, decls, name :: taken))
    (term, decls, taken)
    (decl_vars decls)
  |> fun (term, decls, taken) -> (term, decls, taken)

let generate_fill ~rng ~swap_prob ~seed_vars ~taken generator =
  match Generator.generate generator ~rng with
  | exception Failure _ -> (Raw { text = "true"; decl_lines = [] }, taken)
  | emitted -> (
    let datatypes =
      if generator.Generator.theory.Theories.Theory.id = Theories.Theory.Datatypes then
        [ "Lst" ]
      else []
    in
    match
      ( Parser.parse_term ~datatypes emitted.Generator.term,
        parse_decl_commands emitted.Generator.decls )
    with
    | Ok term, Some decls ->
      let term, decls, taken = rename_clashes ~taken term decls in
      let term_vars = decl_vars decls in
      let term, remaining =
        adapt_span (fun () -> Adapt.adapt ~rng ~swap_prob ~seed_vars ~term_vars term)
      in
      (* drop declarations of variables adapted away *)
      let decls =
        List.filter
          (function
            | Command.Declare_fun (n, [], _) | Command.Declare_const (n, _) ->
              List.mem n remaining
            | _ -> true)
          decls
      in
      (Ast { term; decls }, taken)
    | _, _ ->
      (* ill-formed generator output: splice the raw text *)
      (Raw { text = emitted.Generator.term; decl_lines = emitted.Generator.decls }, taken))

let substitute_raw source fills =
  (* replace the i-th textual "<placeholder>" with the i-th raw text *)
  let marker = "<placeholder>" in
  let buf = Buffer.create (String.length source) in
  let n = String.length source and m = String.length marker in
  let rec go i idx =
    if i >= n then ()
    else if i + m <= n && String.sub source i m = marker then (
      (match List.nth_opt fills idx with
      | Some (Raw { text; _ }) -> Buffer.add_string buf text
      | Some (Ast _) | None -> Buffer.add_string buf "true");
      go (i + m) (idx + 1))
    else (
      Buffer.add_char buf source.[i];
      go (i + 1) idx)
  in
  go 0 0;
  Buffer.contents buf

let assemble ~skeleton ~fills =
  let theories_spliced = O4a_util.Listx.dedup (List.map fst fills) in
  let fill_terms = List.map snd fills in
  (* splice AST fills; leave raw fills as placeholders for the text pass *)
  let counter = ref (-1) in
  let script_with_ast =
    Script.map_assertions
      (fun assertion ->
        Term.map_bottom_up
          (fun node ->
            match node with
            | Term.Placeholder _ ->
              incr counter;
              (match List.nth_opt fill_terms !counter with
              | Some (Ast { term; _ }) -> term
              | Some (Raw _) | None -> node)
            | _ -> node)
          assertion)
      skeleton
  in
  (* add declarations needed by AST fills *)
  let ast_decls =
    List.concat_map (function Ast { decls; _ } -> decls | Raw _ -> []) fill_terms
  in
  let script_with_ast = Script.add_declarations script_with_ast ast_decls in
  let text = Printer.script script_with_ast in
  let raw_decl_lines =
    List.concat_map
      (function Raw { decl_lines; _ } -> decl_lines | Ast _ -> [])
      fill_terms
  in
  let raw_fills = List.filter (function Raw _ -> true | Ast _ -> false) fill_terms in
  let source =
    if raw_fills = [] then text
    else (
      let substituted = substitute_raw text raw_fills in
      String.concat "\n" (O4a_util.Listx.dedup raw_decl_lines @ [ substituted ]))
  in
  let parsed = Result.to_option (Parser.parse_script source) in
  if Trace.noting () then
    Trace.note
      (Trace.Synthesized
         {
           bytes = String.length source;
           parse_ok = parsed <> None;
           theories = theories_spliced;
         });
  { source; parsed; theories_spliced }

let fill ?(swap_prob = 0.55) ~rng ~generators ~skeleton ~holes () =
  let seed_vars = Script.declared_consts skeleton in
  let taken = Script.symbol_names skeleton in
  let fills_rev, _ =
    List.fold_left
      (fun (fills, taken) hole ->
        let generator = Rng.choose rng generators in
        let fill, taken = generate_fill ~rng ~swap_prob ~seed_vars ~taken generator in
        let theory = generator.Generator.theory.Theories.Theory.key in
        note_fill ~hole ~theory ~sort:None fill;
        ((theory, fill) :: fills, taken))
      ([], taken)
      (O4a_util.Listx.range 0 (holes - 1))
  in
  assemble ~skeleton ~fills:(List.rev fills_rev)

(* ---------------- Mixed-sorts extension (paper 5.3) ---------------- *)

let generate_fill_of_sort ~rng ~swap_prob ~seed_vars ~taken generator sort =
  match Generator.generate_of_sort generator ~rng sort with
  | None -> None
  | Some emitted -> (
    let datatypes =
      if sort = Smtlib.Sort.Datatype "Lst" then [ "Lst" ] else []
    in
    match
      ( Parser.parse_term ~datatypes emitted.Generator.term,
        parse_decl_commands emitted.Generator.decls )
    with
    | Ok term, Some decls ->
      let term, decls, taken = rename_clashes ~taken term decls in
      let term_vars = decl_vars decls in
      let term, remaining =
        adapt_span (fun () -> Adapt.adapt ~rng ~swap_prob ~seed_vars ~term_vars term)
      in
      let decls =
        List.filter
          (function
            | Command.Declare_fun (n, [], _) | Command.Declare_const (n, _) ->
              List.mem n remaining
            | _ -> true)
          decls
      in
      Some (Ast { term; decls }, taken)
    | _, _ ->
      Some (Raw { text = emitted.Generator.term; decl_lines = emitted.Generator.decls }, taken))

(* a last-resort constant of the requested sort when no generator covers it *)
let fallback_term_of_sort sort =
  Solver.Domain.default_value ~datatypes:[] sort |> Solver.Value.to_term_string

let fill_typed ?(swap_prob = 0.55) ~rng ~generators ~skeleton ~hole_sorts () =
  let seed_vars = Script.declared_consts skeleton in
  let taken = Script.symbol_names skeleton in
  let fills_rev, _ =
    List.fold_left
      (fun (fills, taken) (hole, sort) ->
        let sort_str = Some (Sort.to_string sort) in
        let fallback () =
          let fill = Raw { text = fallback_term_of_sort sort; decl_lines = [] } in
          note_fill ~hole ~theory:"core" ~sort:sort_str fill;
          (("core", fill) :: fills, taken)
        in
        let candidates =
          List.filter (fun g -> Generator.supports_sort g sort) generators
        in
        match candidates with
        | [] -> fallback ()
        | _ -> (
          let generator = Rng.choose rng candidates in
          match generate_fill_of_sort ~rng ~swap_prob ~seed_vars ~taken generator sort with
          | Some (fill, taken) ->
            let theory = generator.Generator.theory.Theories.Theory.key in
            note_fill ~hole ~theory ~sort:sort_str fill;
            ((theory, fill) :: fills, taken)
          | None -> fallback ()))
      ([], taken) hole_sorts
  in
  let fills = List.rev fills_rev in
  assemble ~skeleton ~fills

let direct ~rng ~generators ~terms =
  let emissions_and_keys =
    List.init (max 1 terms) (fun _ ->
        let generator = Rng.choose rng generators in
        match Generator.generate generator ~rng with
        | emitted -> Some (generator.Generator.theory.Theories.Theory.key, emitted)
        | exception Failure _ -> None)
    |> List.filter_map Fun.id
  in
  let source =
    Generator.render_script (List.map snd emissions_and_keys)
  in
  let parsed = Result.to_option (Parser.parse_script source) in
  let theories_spliced = O4a_util.Listx.dedup (List.map fst emissions_and_keys) in
  if Trace.noting () then (
    Trace.note
      (Trace.Direct_generated
         { terms = List.length emissions_and_keys; theories = theories_spliced });
    Trace.note
      (Trace.Synthesized
         {
           bytes = String.length source;
           parse_ok = parsed <> None;
           theories = theories_spliced;
         }));
  { source; parsed; theories_spliced }
