(** End-to-end Once4All campaign: Algorithm 1 (one-time generator
    construction) followed by Algorithm 2 (skeleton-guided fuzzing), then
    de-duplication and ground-truth attribution. This is the top-level entry
    point the CLI, the examples and every experiment build on. *)

open Smtlib

type t = {
  generators : Gensynth.Generator.t list;
  generator_reports : Gensynth.Synthesis.report list;
  client : Llm_sim.Client.t;
  zeal : Solver.Engine.t;
  cove : Solver.Engine.t;
}

val prepare :
  ?seed:int ->
  ?profile:Llm_sim.Profile.t ->
  ?zeal:Solver.Engine.t ->
  ?cove:Solver.Engine.t ->
  ?theories:Theories.Theory.info list ->
  ?telemetry:O4a_telemetry.Telemetry.t ->
  unit ->
  t
(** Build the generator library (the one-time LLM investment). Defaults:
    gpt-4 profile, trunk solvers, all theories. When telemetry is enabled,
    each theory's construction runs under a ["construct"] span and emits a
    ["gen.construct"] event with its validity trajectory. *)

type report = {
  stats : Fuzz.stats;
  clusters : Dedup.cluster list;
  found_bug_ids : string list;  (** distinct ground-truth specimens hit *)
  llm_calls : int;
  llm_tokens : int;
}

val fuzz :
  ?seed:int ->
  ?config:Fuzz.config ->
  ?telemetry:O4a_telemetry.Telemetry.t ->
  t ->
  seeds:Script.t list ->
  budget:int ->
  report
(** Run the campaign (see {!Fuzz.run} for the telemetry it produces); the
    final de-duplication runs under a ["dedup"] span and the whole run is
    summarized by a ["campaign.report"] event. *)
