open Smtlib

let adapt ~rng ?(swap_prob = 0.55) ~seed_vars ~term_vars term =
  let remaining = ref [] in
  let swapped = ref [] in
  let term' =
    List.fold_left
      (fun t (name, sort) ->
        let candidates =
          List.filter (fun (_, s) -> Sort.equal s sort) seed_vars |> List.map fst
        in
        if candidates <> [] && O4a_util.Rng.chance rng swap_prob then (
          let replacement = O4a_util.Rng.choose rng candidates in
          swapped := (name, replacement) :: !swapped;
          Term.rename_var ~old_name:name ~new_name:replacement t)
        else (
          remaining := name :: !remaining;
          t))
      term term_vars
  in
  if !swapped <> [] && O4a_trace.Trace.noting () then
    O4a_trace.Trace.note
      (O4a_trace.Trace.Adapted { substitutions = List.rev !swapped });
  (term', List.rev !remaining)
