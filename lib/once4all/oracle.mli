(** Differential + model-validation oracle (Algorithm 2, lines 10–12 and the
    discrepancy-attribution protocol of §3.3):

    - a crash in any solver is a {e crash bug};
    - on a sat/unsat split, the sat-side model is re-evaluated with the
      reference evaluator: if it definitely satisfies the formula the unsat
      solver has a {e soundness bug}, otherwise the sat solver returned an
      {e invalid model};
    - even without a split, every model is validated (the analog of running
      with [model_validate=true] / [--check-models]).

    Formulas using solver-specific theories are compared {e across versions
    of the supporting solver} (trunk vs the previous release), as the paper
    does for solver-specific features. *)

open Smtlib

(** Which oracle produced a finding. [Degraded] names the solver(s) whose
    open circuit breaker ({!O4a_health.Health}) suppressed them for this
    query, leaving single-solver + model-validation: degraded-mode findings
    are tagged so triage can discount soundness claims made without a full
    differential comparison (structurally, a degraded query cannot even
    produce one — a soundness finding needs a sat/unsat split across two
    solvers). *)
type mode = Differential | Degraded of string

val mode_to_string : mode -> string
(** ["differential"], or ["degraded:" ^ suppressed_solvers]. *)

val mode_of_string : string -> mode option

type finding = {
  kind : Solver.Bug_db.kind;
  solver : O4a_coverage.Coverage.solver_tag;
  solver_name : string;
  signature : string;  (** crash site, or a synthesized signature for others *)
  bug_id : string option;  (** ground-truth specimen id when attributable *)
  theory : string;  (** primary theory tag for triage grouping *)
  mode : mode;  (** oracle mode the finding was produced under *)
}

type outcome = {
  finding : finding option;
  results : (string * string) list;  (** solver name -> printable result *)
  solved : bool;  (** at least one solver produced sat/unsat *)
}

val test :
  ?max_steps:int ->
  ?telemetry:O4a_telemetry.Telemetry.t ->
  zeal:Solver.Engine.t ->
  cove:Solver.Engine.t ->
  source:string ->
  unit ->
  outcome
(** Run the differential test on SMT-LIB source text. [telemetry] defaults
    to the ambient global handle; when enabled the test is wrapped in an
    ["oracle.compare"] span with nested ["parse"] and per-solver
    ["solver.run"] spans, and each solver run emits an ["oracle.verdict"]
    event (see {!Solver.Runner.run}).

    When the ambient {!O4a_health.Health} ledger is live, every query first
    consults the per-(solver, theory) circuit breaker: suppressed solvers
    are skipped (degrading the oracle to single-solver + model-validation,
    with findings tagged [Degraded]), Half_open probes run normally, and
    each admitted run's outcome and fuel are recorded back into the ledger.
    Breaker transitions emit ["health.breaker"] events. *)

val attribute :
  Solver.Engine.t -> Script.t -> kind:Solver.Bug_db.kind -> string option
(** Ground-truth attribution: the first active bug of [kind] in the engine
    whose trigger matches the script. *)
