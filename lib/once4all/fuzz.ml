open Smtlib
module Rng = O4a_util.Rng
module Telemetry = O4a_telemetry.Telemetry
module Json = O4a_telemetry.Json
module Trace = O4a_trace.Trace
module Analytics = O4a_analytics.Analytics

let log_src = Logs.Src.create "once4all.fuzz" ~doc:"Once4All fuzzing loop"

module Log = (val Logs.src_log log_src : Logs.LOG)

type schedule = Uniform | Coverage_guided

type config = {
  mutations_per_seed : int;
  keep_prob : float;
  adapt_prob : float;
  use_skeletons : bool;
  mixed_sorts : bool;
  schedule : schedule;
  direct_terms_max : int;
  max_steps : int;
  max_seed_growth : int;
  progress_every : int;
}

let default_config =
  {
    mutations_per_seed = 10;
    keep_prob = 0.45;
    adapt_prob = 0.55;
    use_skeletons = true;
    mixed_sorts = false;
    schedule = Uniform;
    direct_terms_max = 3;
    max_steps = 60_000;
    max_seed_growth = 400;
    progress_every = 500;
  }

type stats = {
  tests : int;
  parse_ok : int;
  solved : int;
  bytes_total : int;
  findings : Dedup.found list;
}

let empty_stats = { tests = 0; parse_ok = 0; solved = 0; bytes_total = 0; findings = [] }

let record stats (filled : Synthesize.filled) (outcome : Oracle.outcome) =
  {
    tests = stats.tests + 1;
    parse_ok = (stats.parse_ok + if filled.Synthesize.parsed <> None then 1 else 0);
    solved = (stats.solved + if outcome.Oracle.solved then 1 else 0);
    bytes_total = stats.bytes_total + String.length filled.Synthesize.source;
    findings =
      (match outcome.Oracle.finding with
      | Some finding ->
        { Dedup.finding; source = filled.Synthesize.source } :: stats.findings
      | None -> stats.findings);
  }

(* Coverage-guided generator scheduling (paper 5.3: "incorporating
   solver-driven signals, such as coverage feedback"): an epsilon-greedy
   bandit over the generator pool, rewarding each pull with the number of new
   coverage points its formula reached. *)
module Bandit = struct
  type arm = { mutable plays : int; mutable gain : float }

  type t = {
    arms : (string, arm) Hashtbl.t;
    epsilon : float;
  }

  let create () = { arms = Hashtbl.create 16; epsilon = 0.2 }

  let arm t key =
    match Hashtbl.find_opt t.arms key with
    | Some a -> a
    | None ->
      let a = { plays = 0; gain = 0. } in
      Hashtbl.add t.arms key a;
      a

  let pick t ~rng generators =
    let unplayed =
      List.filter
        (fun g ->
          (arm t g.Gensynth.Generator.theory.Theories.Theory.key).plays = 0)
        generators
    in
    if unplayed <> [] then Rng.choose rng unplayed
    else if Rng.chance rng t.epsilon then Rng.choose rng generators
    else
      List.fold_left
        (fun best g ->
          let score g =
            let a = arm t g.Gensynth.Generator.theory.Theories.Theory.key in
            a.gain /. float_of_int (max 1 a.plays)
          in
          if score g > score best then g else best)
        (List.hd generators) generators

  let reward t keys gain =
    List.iter
      (fun key ->
        let a = arm t key in
        a.plays <- a.plays + 1;
        a.gain <- a.gain +. gain)
      keys
end

let coverage_hits () =
  let z = O4a_coverage.Coverage.snapshot O4a_coverage.Coverage.Zeal in
  let c = O4a_coverage.Coverage.snapshot O4a_coverage.Coverage.Cove in
  z.O4a_coverage.Coverage.lines_hit + c.O4a_coverage.Coverage.lines_hit

let one_mutation ~tel ~rng ~config ~generators current =
  let direct () =
    Telemetry.with_span tel "generate" (fun () ->
        Synthesize.direct ~rng ~generators
          ~terms:(1 + Rng.int rng config.direct_terms_max))
  in
  let note_skeletonized ~mode ~holes =
    if Trace.noting () then Trace.note (Trace.Skeletonized { mode; holes })
  in
  if not config.use_skeletons then direct ()
  else if config.mixed_sorts then (
    let supported sort =
      List.exists (fun g -> Gensynth.Generator.supports_sort g sort) generators
    in
    let skeleton, hole_sorts =
      Telemetry.with_span tel "skeletonize" (fun () ->
          Skeleton.skeletonize_typed ~rng ~keep_prob:config.keep_prob ~supported
            current)
    in
    note_skeletonized ~mode:"typed" ~holes:(List.length hole_sorts);
    if hole_sorts = [] then direct ()
    else
      Telemetry.with_span tel "synthesize" (fun () ->
          Synthesize.fill_typed ~swap_prob:config.adapt_prob ~rng ~generators
            ~skeleton ~hole_sorts ()))
  else (
    let skeleton, holes =
      Telemetry.with_span tel "skeletonize" (fun () ->
          Skeleton.skeletonize ~rng ~keep_prob:config.keep_prob current)
    in
    note_skeletonized ~mode:"boolean" ~holes;
    if holes = 0 then direct ()
    else
      Telemetry.with_span tel "synthesize" (fun () ->
          Synthesize.fill ~swap_prob:config.adapt_prob ~rng ~generators ~skeleton
            ~holes ()))

(* per-test telemetry: overall and per-generator counters plus one
   ["fuzz.test"] event *)
let record_test tel (filled : Synthesize.filled) (outcome : Oracle.outcome) =
  if Telemetry.enabled tel then (
    let parse_ok = filled.Synthesize.parsed <> None in
    let found = outcome.Oracle.finding <> None in
    Telemetry.incr tel "fuzz.tests";
    if parse_ok then Telemetry.incr tel "fuzz.parse_ok";
    if outcome.Oracle.solved then Telemetry.incr tel "fuzz.solved";
    if found then Telemetry.incr tel "fuzz.findings";
    Telemetry.incr tel ~by:(String.length filled.Synthesize.source) "fuzz.bytes";
    List.iter
      (fun key ->
        let labels = [ ("generator", key) ] in
        Telemetry.incr tel ~labels "fuzz.generator.picks";
        if parse_ok then Telemetry.incr tel ~labels "fuzz.generator.parse_ok";
        if found then Telemetry.incr tel ~labels "fuzz.generator.findings")
      filled.Synthesize.theories_spliced;
    Telemetry.emit tel "fuzz.test"
      [
        ( "gens",
          Json.List
            (List.map (fun k -> Json.String k) filled.Synthesize.theories_spliced)
        );
        ("parse_ok", Json.Bool parse_ok);
        ("solved", Json.Bool outcome.Oracle.solved);
        ("bytes", Json.Int (String.length filled.Synthesize.source));
        ( "finding",
          match outcome.Oracle.finding with
          | Some f -> Json.String (Solver.Bug_db.kind_to_string f.Oracle.kind)
          | None -> Json.Null );
      ])

let report_progress tel ~config ~started ~generators stats =
  if config.progress_every > 0 && stats.tests mod config.progress_every = 0 then (
    let elapsed = Telemetry.now tel -. started in
    let tps = if elapsed > 0. then float_of_int stats.tests /. elapsed else 0. in
    let parse_pct =
      if stats.tests = 0 then 0.
      else 100. *. float_of_int stats.parse_ok /. float_of_int stats.tests
    in
    (* per-generator pick counts live in the metrics registry, so they are
       only available on a live handle; the log line works either way *)
    let picks =
      if not (Telemetry.enabled tel) then []
      else
        List.map
          (fun g ->
            let key = g.Gensynth.Generator.theory.Theories.Theory.key in
            ( key,
              Telemetry.counter_value tel
                ~labels:[ ("generator", key) ]
                "fuzz.generator.picks" ))
          generators
    in
    Log.info (fun m ->
        m "progress: %d tests (%.0f/s), parse-ok %.1f%%, %d findings%s"
          stats.tests tps parse_pct
          (List.length stats.findings)
          (if picks = [] then ""
           else
             Printf.sprintf ", picks [%s]"
               (String.concat " "
                  (List.map (fun (k, n) -> Printf.sprintf "%s:%d" k n) picks))));
    Telemetry.emit tel "progress"
      [
        ("tests", Json.Int stats.tests);
        ("elapsed_s", Json.Float elapsed);
        ("tests_per_s", Json.Float tps);
        ("parse_ok_pct", Json.Float parse_pct);
        ("findings", Json.Int (List.length stats.findings));
        ("picks", Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) picks));
      ])

let stats_fields stats =
  [
    ("tests", Json.Int stats.tests);
    ("parse_ok", Json.Int stats.parse_ok);
    ("solved", Json.Int stats.solved);
    ("bytes_total", Json.Int stats.bytes_total);
    ("findings", Json.Int (List.length stats.findings));
  ]

(* the promoted-trace rendering of a finding, with the same dedup key the
   campaign report and [triage] print *)
let finding_info (f : Oracle.finding) =
  {
    Trace.kind = Solver.Bug_db.kind_to_string f.Oracle.kind;
    solver =
      (match f.Oracle.solver with
      | O4a_coverage.Coverage.Zeal -> "zeal"
      | O4a_coverage.Coverage.Cove -> "cove");
    solver_name = f.Oracle.solver_name;
    signature = f.Oracle.signature;
    bug_id = f.Oracle.bug_id;
    theory = f.Oracle.theory;
    dedup_key = Dedup.signature_to_string (Dedup.signature f);
    mode = Oracle.mode_to_string f.Oracle.mode;
  }

(* The Algorithm 2 loop proper, shared by the whole-campaign entry point
   ({!run}) and the orchestrator's shard entry point ({!run_shard}).
   [first_tick] anchors this loop's tests in the campaign-global tick stream
   so trace ids are identical however the budget is sharded. *)
let run_loop ~rng ~config ~tel ~first_tick ~generators ~seeds ~zeal ~cove
    ~budget =
  let bandit = Bandit.create () in
  let recorder = Trace.Recorder.ambient () in
  let stats = ref empty_stats in
  let started = Telemetry.now tel in
  while !stats.tests < budget do
    let seed = Telemetry.with_span tel "seed.select" (fun () -> Rng.choose rng seeds) in
    (* yield-attribution key: the seed's cluster identity, hashed once per
       mutation batch — every test in the batch descends from this pick *)
    let seed_cluster =
      if Analytics.recording () then
        String.sub (Digest.to_hex (Digest.string (Printer.script seed))) 0 8
      else ""
    in
    let current = ref seed in
    let rounds = min config.mutations_per_seed (budget - !stats.tests) in
    for _ = 1 to rounds do
      (* chaos probe: a planned worker death fires here, between two tests,
         so the killed attempt never leaves a half-recorded trace open *)
      O4a_faults.Faults.tick ();
      (* one profile tick per test: the denominator for bytes/tick and
         consults/tick in the campaign profile *)
      O4a_profile.Profile.tick ();
      Trace.Recorder.start recorder ~tick:(first_tick + !stats.tests);
      if Trace.noting () then (
        let printed = Printer.script !current in
        Trace.note
          (Trace.Seed_selected
             {
               hash = Digest.to_hex (Digest.string printed);
               bytes = String.length printed;
               size = Script.size !current;
             }));
      let mutation_generators =
        match config.schedule with
        | Uniform -> generators
        | Coverage_guided -> [ Bandit.pick bandit ~rng generators ]
      in
      (* the snapshot walk behind [coverage_hits] is only worth paying for
         when the schedule consumes the reward signal *)
      let before =
        match config.schedule with
        | Coverage_guided -> coverage_hits ()
        | Uniform -> 0
      in
      let filled =
        one_mutation ~tel ~rng ~config ~generators:mutation_generators !current
      in
      let outcome =
        Oracle.test ~max_steps:config.max_steps ~telemetry:tel ~zeal ~cove
          ~source:filled.Synthesize.source ()
      in
      (match outcome.Oracle.finding with
      | Some f when Trace.Recorder.enabled recorder ->
        Trace.Recorder.promote recorder ~source:filled.Synthesize.source
          ~finding:(finding_info f)
      | _ -> ());
      Trace.Recorder.finish recorder;
      (match config.schedule with
      | Coverage_guided ->
        Bandit.reward bandit filled.Synthesize.theories_spliced
          (float_of_int (coverage_hits () - before))
      | Uniform -> ());
      stats := record !stats filled outcome;
      Analytics.record_test ~theories:filled.Synthesize.theories_spliced
        ~seed_cluster ~parse_ok:(filled.Synthesize.parsed <> None)
        ~found:(outcome.Oracle.finding <> None) ();
      record_test tel filled outcome;
      report_progress tel ~config ~started ~generators !stats;
      (* Algorithm 2, line 9: the synthesized formula becomes the next seed *)
      (match filled.Synthesize.parsed with
      | Some script when Script.size script <= config.max_seed_growth ->
        current := script
      | _ -> current := seed)
    done
  done;
  { !stats with findings = List.rev !stats.findings }

let run ~rng ?(config = default_config) ?telemetry ~generators ~seeds ~zeal ~cove
    ~budget () =
  if generators = [] then invalid_arg "Fuzz.run: no generators";
  if seeds = [] then invalid_arg "Fuzz.run: no seeds";
  let tel = match telemetry with Some t -> t | None -> Telemetry.global () in
  Telemetry.emit tel "campaign.start"
    [
      ("budget", Json.Int budget);
      ("seeds", Json.Int (List.length seeds));
      ("generators", Json.Int (List.length generators));
      ("skeletons", Json.Bool config.use_skeletons);
    ];
  let stats =
    run_loop ~rng ~config ~tel ~first_tick:0 ~generators ~seeds ~zeal ~cove
      ~budget
  in
  Telemetry.emit tel "campaign.end" (stats_fields stats);
  stats

let run_shard ~rng ?(config = default_config) ?telemetry ~shard_index ~first_tick
    ~generators ~seeds ~zeal ~cove ~budget () =
  if generators = [] then invalid_arg "Fuzz.run_shard: no generators";
  if seeds = [] then invalid_arg "Fuzz.run_shard: no seeds";
  let tel = match telemetry with Some t -> t | None -> Telemetry.global () in
  Telemetry.emit tel "shard.start"
    [
      ("shard", Json.Int shard_index);
      ("first_tick", Json.Int first_tick);
      ("ticks", Json.Int budget);
    ];
  let stats =
    run_loop ~rng ~config ~tel ~first_tick ~generators ~seeds ~zeal ~cove
      ~budget
  in
  Telemetry.emit tel "shard.end" (("shard", Json.Int shard_index) :: stats_fields stats);
  stats

let run_sources ?(max_steps = 60_000) ?telemetry ~zeal ~cove sources =
  let tel = match telemetry with Some t -> t | None -> Telemetry.global () in
  let stats =
    List.fold_left
      (fun stats source ->
        let outcome = Oracle.test ~max_steps ~telemetry:tel ~zeal ~cove ~source () in
        let filled =
          {
            Synthesize.source;
            parsed = Result.to_option (Parser.parse_script source);
            theories_spliced = [];
          }
        in
        record_test tel filled outcome;
        record stats filled outcome)
      empty_stats sources
  in
  { stats with findings = List.rev stats.findings }
