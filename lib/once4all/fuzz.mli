(** The main fuzzing loop of Algorithm 2: select a seed, then repeatedly
    skeletonize → generate → adapt → synthesize → differential-test, carrying
    the synthesized formula into the next mutation round (ten rounds per
    seed, as in the paper's configuration). *)

open Smtlib

type schedule =
  | Uniform  (** the paper's configuration: generators chosen at random *)
  | Coverage_guided
      (** 5.3 extension: an epsilon-greedy bandit over generators, rewarded
          by the new coverage points each formula reaches *)

type config = {
  mutations_per_seed : int;  (** 10, per §3.4 *)
  keep_prob : float;  (** per-atom skeletonization probability *)
  adapt_prob : float;  (** variable-adaptation probability (0. disables) *)
  use_skeletons : bool;  (** [false] = the Once4All_w/oS ablation variant *)
  mixed_sorts : bool;  (** typed (non-Boolean) holes — the 5.3 extension *)
  schedule : schedule;
  direct_terms_max : int;  (** terms per formula in the w/oS variant *)
  max_steps : int;  (** solver fuel per query (the 10 s timeout analog) *)
  max_seed_growth : int;  (** reset to the seed when formulas exceed this size *)
  progress_every : int;
      (** emit a ["progress"] event + [Logs.info] line every N tests when
          telemetry is enabled (0 disables the reporter) *)
}

val default_config : config

type stats = {
  tests : int;
  parse_ok : int;  (** synthesized formulas that fully parse *)
  solved : int;  (** tests where at least one solver answered sat/unsat *)
  bytes_total : int;
  findings : Dedup.found list;  (** bug-triggering formulas, oldest first *)
}

val stats_fields : stats -> (string * O4a_telemetry.Json.t) list
(** The event-field rendering of a stats record — the payload of
    ["campaign.end"] / ["shard.end"] events, shared with the orchestrator so
    a merged campaign ends with the same schema as a sequential one. *)

val run :
  rng:O4a_util.Rng.t ->
  ?config:config ->
  ?telemetry:O4a_telemetry.Telemetry.t ->
  generators:Gensynth.Generator.t list ->
  seeds:Script.t list ->
  zeal:Solver.Engine.t ->
  cove:Solver.Engine.t ->
  budget:int ->
  unit ->
  stats
(** Run [budget] tests. [telemetry] (default: the ambient global handle)
    receives stage spans ([seed.select], [skeletonize], [generate],
    [synthesize], and the oracle's nested spans), the [fuzz.*] counters
    — whose snapshot mirrors the returned {!stats} — one ["fuzz.test"]
    event per test, and periodic ["progress"] events. *)

val run_shard :
  rng:O4a_util.Rng.t ->
  ?config:config ->
  ?telemetry:O4a_telemetry.Telemetry.t ->
  shard_index:int ->
  first_tick:int ->
  generators:Gensynth.Generator.t list ->
  seeds:Script.t list ->
  zeal:Solver.Engine.t ->
  cove:Solver.Engine.t ->
  budget:int ->
  unit ->
  stats
(** One shard of a sharded campaign: the same loop as {!run} over [budget]
    ticks, but bracketed by ["shard.start"]/["shard.end"] events (carrying
    [shard_index] and [first_tick]) instead of campaign events — the
    orchestrator emits the single campaign pair itself. Callers supply an
    [rng] split for this shard (see {!O4a_util.Rng.split_indexed}) so the
    shard's tick stream is a deterministic function of the campaign seed and
    the shard index alone. *)

val run_sources :
  ?max_steps:int ->
  ?telemetry:O4a_telemetry.Telemetry.t ->
  zeal:Solver.Engine.t ->
  cove:Solver.Engine.t ->
  string list ->
  stats
(** Test pre-built sources through the same oracle (used by baselines and by
    re-validation of reduced formulas). *)
