type t = {
  enabled : bool;
  metrics : Metrics.t;
  sink : Sink.t;
  clock : unit -> float;
  mutable span_stack : string list;
}

let disabled =
  {
    enabled = false;
    metrics = Metrics.create ();
    sink = Sink.null;
    clock = Unix.gettimeofday;
    span_stack = [];
  }

let create ?(sink = Sink.null) ?(clock = Unix.gettimeofday) () =
  { enabled = true; metrics = Metrics.create (); sink; clock; span_stack = [] }

let enabled t = t.enabled
let metrics t = t.metrics
let sink t = t.sink
let now t = t.clock ()

let emit t name fields =
  if t.enabled then Sink.emit t.sink (Event.make ~ts:(t.clock ()) ~name fields)

let incr t ?(labels = []) ?(by = 1) name =
  if t.enabled then Metrics.incr_named t.metrics ~labels ~by name

let set_gauge t ?(labels = []) name value =
  if t.enabled then Metrics.set_named t.metrics ~labels name value

let observe t ?(labels = []) name x =
  if t.enabled then Metrics.observe_named t.metrics ~labels name x

let with_span t ?(labels = []) stage f =
  if not t.enabled then f ()
  else (
    let parent = match t.span_stack with [] -> None | p :: _ -> Some p in
    let depth = List.length t.span_stack in
    t.span_stack <- stage :: t.span_stack;
    let start = t.clock () in
    let finish () =
      let dur = t.clock () -. start in
      t.span_stack <- (match t.span_stack with _ :: rest -> rest | [] -> []);
      Metrics.observe_named t.metrics
        ~labels:(("stage", stage) :: labels)
        "stage.duration" dur;
      emit t "span"
        (("stage", Json.String stage)
        :: ("dur_us", Json.Float (dur *. 1e6))
        :: (match parent with
           | Some p -> [ ("parent", Json.String p); ("depth", Json.Int depth) ]
           | None -> [])
        @ List.map (fun (k, v) -> (k, Json.String v)) labels)
    in
    Fun.protect ~finally:finish f)

let snapshot t = Metrics.snapshot t.metrics

let counter_value t ?(labels = []) name = Metrics.get_counter t.metrics ~labels name

let flush t = Sink.close t.sink

let ambient = ref disabled

let global () = !ambient
let set_global t = ambient := t

let using t f =
  let saved = !ambient in
  ambient := t;
  Fun.protect ~finally:(fun () -> ambient := saved) f
