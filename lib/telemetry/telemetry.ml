type t = {
  enabled : bool;
  metrics : Metrics.t;
  sink : Sink.t;
  clock : unit -> float;
  labels : (string * string) list;
  mutable span_stack : string list;
}

let disabled =
  {
    enabled = false;
    metrics = Metrics.create ();
    sink = Sink.null;
    clock = Unix.gettimeofday;
    labels = [];
    span_stack = [];
  }

let create ?(sink = Sink.null) ?(clock = Unix.gettimeofday) ?(labels = []) () =
  { enabled = true; metrics = Metrics.create (); sink; clock; labels; span_stack = [] }

let monotonic_clock () =
  (* Wall-clock time nudged forward so successive reads never tie or go
     backwards — keeps per-worker event streams totally ordered even if the
     system clock steps. *)
  let last = ref neg_infinity in
  fun () ->
    let t = Unix.gettimeofday () in
    let t = if t <= !last then !last +. 1e-6 else t in
    last := t;
    t

let enabled t = t.enabled
let metrics t = t.metrics
let sink t = t.sink
let now t = t.clock ()
let base_labels t = t.labels

let label_fields t fields =
  fields @ List.map (fun (k, v) -> (k, Json.String v)) t.labels

let emit t name fields =
  if t.enabled then
    Sink.emit t.sink (Event.make ~ts:(t.clock ()) ~name (label_fields t fields))

let forward t event = if t.enabled then Sink.emit t.sink event

(* Counters stay unlabeled by the handle's base labels so that absorbing
   several workers' registries sums them into one campaign total; gauges and
   histograms carry the base labels so per-worker cells never collide. *)
let incr t ?(labels = []) ?(by = 1) name =
  if t.enabled then Metrics.incr_named t.metrics ~labels ~by name

let set_gauge t ?(labels = []) name value =
  if t.enabled then Metrics.set_named t.metrics ~labels:(labels @ t.labels) name value

let observe t ?(labels = []) name x =
  if t.enabled then Metrics.observe_named t.metrics ~labels:(labels @ t.labels) name x

(* Span hooks are domain-local and independent of any handle, so a profiling
   layer can observe every span boundary on its domain — including spans taken
   through the [disabled] handle — without the telemetry pipeline itself being
   live, and without this library depending on the profiler. *)
type span_hook = { on_enter : string -> unit; on_leave : string -> unit }

let span_hook_key : span_hook option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let with_span_hook hook f =
  let saved = Domain.DLS.get span_hook_key in
  Domain.DLS.set span_hook_key (Some hook);
  Fun.protect ~finally:(fun () -> Domain.DLS.set span_hook_key saved) f

let instrumented_span t labels stage f =
  let parent = match t.span_stack with [] -> None | p :: _ -> Some p in
  let depth = List.length t.span_stack in
  t.span_stack <- stage :: t.span_stack;
  let start = t.clock () in
  let finish () =
    let dur = t.clock () -. start in
    t.span_stack <- (match t.span_stack with _ :: rest -> rest | [] -> []);
    Metrics.observe_named t.metrics
      ~labels:(("stage", stage) :: (labels @ t.labels))
      "stage.duration" dur;
    emit t "span"
      (("stage", Json.String stage)
      :: ("dur_us", Json.Float (dur *. 1e6))
      :: (match parent with
         | Some p -> [ ("parent", Json.String p); ("depth", Json.Int depth) ]
         | None -> [])
      @ List.map (fun (k, v) -> (k, Json.String v)) labels)
  in
  Fun.protect ~finally:finish f

let with_span t ?(labels = []) stage f =
  let body () =
    if not t.enabled then f () else instrumented_span t labels stage f
  in
  match Domain.DLS.get span_hook_key with
  | None -> body ()
  | Some h ->
    h.on_enter stage;
    Fun.protect ~finally:(fun () -> h.on_leave stage) body

let snapshot t = Metrics.snapshot t.metrics

let absorb_metrics t entries = if t.enabled then Metrics.absorb t.metrics entries

let counter_value t ?(labels = []) name = Metrics.get_counter t.metrics ~labels name

let flush t = Sink.close t.sink

(* Domain-local so a worker installing its private handle with [using] never
   disturbs the main domain's (or another worker's) ambient handle. *)
let ambient : t Domain.DLS.key = Domain.DLS.new_key (fun () -> disabled)

let global () = Domain.DLS.get ambient
let set_global t = Domain.DLS.set ambient t

let using t f =
  let saved = Domain.DLS.get ambient in
  Domain.DLS.set ambient t;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient saved) f
