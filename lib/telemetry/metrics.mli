(** A process-local metrics registry: monotonic counters, gauges, and
    fixed-bucket histograms, keyed by name + labels.

    Hot-path updates are O(1): either pre-register a cell once and update it
    through its handle ({!counter} / {!gauge} / {!histogram}), or use the
    [*_named] conveniences, which cost one hashtable lookup. Registering the
    same name + labels twice returns the same cell; re-registering under a
    different metric kind raises [Invalid_argument].

    {b Thread safety.} The registry itself (registration, the [*_named]
    conveniences, {!snapshot}, {!get_counter}, {!absorb}) is mutex-guarded and
    safe to share between domains. Updates through a cell {e handle} are not
    synchronized: a handle is meant to have a single owning domain. Parallel
    workers therefore keep a private registry each and the merge stage folds
    worker snapshots into the campaign registry with {!absorb}. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

(** {1 Cell registration and updates} *)

val counter : t -> ?labels:(string * string) list -> string -> counter
val inc : counter -> unit
val add : counter -> int -> unit
(** Negative increments raise [Invalid_argument]: counters are monotonic. *)

val counter_value : counter -> int

val gauge : t -> ?labels:(string * string) list -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val default_latency_bounds : float array
(** Log-spaced 1–2.5–5 bucket upper bounds from 1 µs to 10 s, in seconds. *)

val histogram :
  t -> ?labels:(string * string) list -> ?bounds:float array -> string -> histogram
(** [bounds] are inclusive upper bounds of the finite buckets, strictly
    increasing; one implicit overflow bucket catches the rest. Defaults to
    {!default_latency_bounds}. *)

val observe : histogram -> float -> unit

(** {1 Name-based conveniences (one lookup per call)} *)

val incr_named : t -> ?labels:(string * string) list -> ?by:int -> string -> unit
val set_named : t -> ?labels:(string * string) list -> string -> float -> unit
val observe_named : t -> ?labels:(string * string) list -> string -> float -> unit

(** {1 Snapshots} *)

type hist_snapshot = {
  bounds : float array;
  counts : int array;  (** one longer than [bounds]: the overflow bucket *)
  sum : float;
  count : int;
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of hist_snapshot

type entry = { name : string; labels : (string * string) list; value : value }

val snapshot : t -> entry list
(** A consistent copy, sorted by name then labels. *)

val get_counter : t -> ?labels:(string * string) list -> string -> int
(** 0 when the counter was never registered. *)

val absorb : t -> entry list -> unit
(** Fold a snapshot of another registry into this one: counters add, gauges
    take the absorbed value, histograms add bucket-wise (absorbing a histogram
    whose bounds differ from the resident cell's raises [Invalid_argument]).
    Counter and histogram absorption commute, so merging worker snapshots in
    completion order yields a deterministic result. *)

val hist_quantile : hist_snapshot -> float -> float
(** [hist_quantile h q] with [q] in [[0,1]]: the upper bound of the bucket
    holding the q-th observation (the usual bucketed-histogram estimate);
    0. on an empty histogram. *)

val entry_to_json : entry -> Json.t
(** [{"name":…,"labels":{…},"counter":…}] /  [… "gauge":…] /
    [… "histogram":{"sum":…,"count":…}] — the wire form used by the final
    ["metrics"] event of a JSONL log. *)
