type cell =
  | C_counter of { mutable count : int }
  | C_gauge of { mutable value : float }
  | C_hist of {
      bounds : float array;
      counts : int array;  (* length bounds + 1; last = overflow *)
      mutable sum : float;
      mutable n : int;
    }

type key = { k_name : string; k_labels : (string * string) list }

(* The registry (cell lookup + creation) is mutex-guarded so workers on
   different domains may share one registry safely. Updates through a cell
   HANDLE obtained from {!counter}/{!gauge}/{!histogram} are deliberately
   unsynchronized: a handle is meant to have a single owner (one domain). *)
type t = { cells : (key, cell) Hashtbl.t; lock : Mutex.t }

type counter = cell
type gauge = cell
type histogram = cell

let create () = { cells = Hashtbl.create 64; lock = Mutex.create () }

let normalize_labels labels = List.sort compare labels

let key name labels = { k_name = name; k_labels = normalize_labels labels }

let kind_name = function
  | C_counter _ -> "counter"
  | C_gauge _ -> "gauge"
  | C_hist _ -> "histogram"

let register_unlocked t name labels fresh check =
  let key = key name labels in
  match Hashtbl.find_opt t.cells key with
  | Some cell ->
    if not (check cell) then
      invalid_arg
        (Printf.sprintf "Metrics: %s already registered as a %s" name
           (kind_name cell));
    cell
  | None ->
    let cell = fresh () in
    Hashtbl.add t.cells key cell;
    cell

let register t name labels fresh check =
  Mutex.protect t.lock (fun () -> register_unlocked t name labels fresh check)

let counter t ?(labels = []) name =
  register t name labels
    (fun () -> C_counter { count = 0 })
    (function C_counter _ -> true | _ -> false)

let add cell by =
  if by < 0 then invalid_arg "Metrics.add: counters are monotonic";
  match cell with
  | C_counter c -> c.count <- c.count + by
  | _ -> assert false

let inc cell = add cell 1

let counter_value = function C_counter c -> c.count | _ -> assert false

let gauge t ?(labels = []) name =
  register t name labels
    (fun () -> C_gauge { value = 0. })
    (function C_gauge _ -> true | _ -> false)

let set cell value =
  match cell with C_gauge g -> g.value <- value | _ -> assert false

let gauge_value = function C_gauge g -> g.value | _ -> assert false

(* 1µs .. 10s in a 1-2.5-5 progression, in seconds *)
let default_latency_bounds =
  [|
    1e-6; 2.5e-6; 5e-6; 1e-5; 2.5e-5; 5e-5; 1e-4; 2.5e-4; 5e-4; 1e-3; 2.5e-3;
    5e-3; 1e-2; 2.5e-2; 5e-2; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10.;
  |]

let validate_bounds bounds =
  if Array.length bounds = 0 then
    invalid_arg "Metrics.histogram: empty bounds";
  for i = 1 to Array.length bounds - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Metrics.histogram: bounds must be strictly increasing"
  done

let histogram t ?(labels = []) ?(bounds = default_latency_bounds) name =
  validate_bounds bounds;
  register t name labels
    (fun () ->
      C_hist
        {
          bounds = Array.copy bounds;
          counts = Array.make (Array.length bounds + 1) 0;
          sum = 0.;
          n = 0;
        })
    (function
      | C_hist h -> h.bounds = bounds || Array.to_list h.bounds = Array.to_list bounds
      | _ -> false)

let observe cell x =
  match cell with
  | C_hist h ->
    let nb = Array.length h.bounds in
    let rec bucket i = if i >= nb || x <= h.bounds.(i) then i else bucket (i + 1) in
    let i = bucket 0 in
    h.counts.(i) <- h.counts.(i) + 1;
    h.sum <- h.sum +. x;
    h.n <- h.n + 1
  | _ -> assert false

(* the named conveniences keep lookup and update inside one critical section,
   so they are safe to call concurrently from several domains *)
let counter_unlocked t labels name =
  register_unlocked t name labels
    (fun () -> C_counter { count = 0 })
    (function C_counter _ -> true | _ -> false)

let incr_named t ?(labels = []) ?(by = 1) name =
  Mutex.protect t.lock (fun () -> add (counter_unlocked t labels name) by)

let set_named t ?(labels = []) name value =
  Mutex.protect t.lock (fun () ->
      set
        (register_unlocked t name labels
           (fun () -> C_gauge { value = 0. })
           (function C_gauge _ -> true | _ -> false))
        value)

let observe_named t ?(labels = []) name x =
  Mutex.protect t.lock (fun () ->
      observe
        (register_unlocked t name labels
           (fun () ->
             C_hist
               {
                 bounds = Array.copy default_latency_bounds;
                 counts = Array.make (Array.length default_latency_bounds + 1) 0;
                 sum = 0.;
                 n = 0;
               })
           (function
             | C_hist h ->
               Array.to_list h.bounds = Array.to_list default_latency_bounds
             | _ -> false))
        x)

type hist_snapshot = {
  bounds : float array;
  counts : int array;
  sum : float;
  count : int;
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of hist_snapshot

type entry = { name : string; labels : (string * string) list; value : value }

let snapshot t =
  Mutex.protect t.lock @@ fun () ->
  Hashtbl.fold
    (fun key cell acc ->
      let value =
        match cell with
        | C_counter c -> Counter c.count
        | C_gauge g -> Gauge g.value
        | C_hist h ->
          Histogram
            {
              bounds = Array.copy h.bounds;
              counts = Array.copy h.counts;
              sum = h.sum;
              count = h.n;
            }
      in
      { name = key.k_name; labels = key.k_labels; value } :: acc)
    t.cells []
  |> List.sort (fun a b ->
         match compare a.name b.name with
         | 0 -> compare a.labels b.labels
         | c -> c)

let get_counter t ?(labels = []) name =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.cells (key name labels) with
      | Some (C_counter c) -> c.count
      | _ -> 0)

(* Fold a snapshot from another registry (e.g. a finished worker's) into [t]:
   counters add, gauges take the absorbed value, histograms with identical
   bounds add bucket-wise. Commutative for counters and histograms, so the
   merged registry is independent of worker completion order. *)
let absorb t entries =
  Mutex.protect t.lock @@ fun () ->
  List.iter
    (fun e ->
      match e.value with
      | Counter n ->
        if n > 0 then
          add (counter_unlocked t e.labels e.name) n
      | Gauge v ->
        set
          (register_unlocked t e.name e.labels
             (fun () -> C_gauge { value = 0. })
             (function C_gauge _ -> true | _ -> false))
          v
      | Histogram h -> (
        let cell =
          register_unlocked t e.name e.labels
            (fun () ->
              C_hist
                {
                  bounds = Array.copy h.bounds;
                  counts = Array.make (Array.length h.bounds + 1) 0;
                  sum = 0.;
                  n = 0;
                })
            (function
              | C_hist existing ->
                Array.to_list existing.bounds = Array.to_list h.bounds
              | _ -> false)
        in
        match cell with
        | C_hist dst ->
          Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) h.counts;
          dst.sum <- dst.sum +. h.sum;
          dst.n <- dst.n + h.count
        | _ -> assert false))
    entries

let entry_to_json e =
  let base =
    [
      ("name", Json.String e.name);
      ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) e.labels));
    ]
  in
  let value =
    match e.value with
    | Counter n -> [ ("counter", Json.Int n) ]
    | Gauge v -> [ ("gauge", Json.Float v) ]
    | Histogram h ->
      [
        ( "histogram",
          Json.Obj [ ("sum", Json.Float h.sum); ("count", Json.Int h.count) ] );
      ]
  in
  Json.Obj (base @ value)

let hist_quantile h q =
  if h.count = 0 then 0.
  else (
    let q = Float.max 0. (Float.min 1. q) in
    let rank = int_of_float (ceil (q *. float_of_int h.count)) in
    let rank = max 1 rank in
    let nb = Array.length h.bounds in
    let rec walk i seen =
      if i > nb then h.bounds.(nb - 1)
      else (
        let seen = seen + h.counts.(i) in
        if seen >= rank then (if i >= nb then h.bounds.(nb - 1) else h.bounds.(i))
        else walk (i + 1) seen)
    in
    walk 0 0)
