(** The campaign telemetry handle: a metrics registry, an event sink, and a
    clock, behind one [enabled] switch.

    Every instrumentation hook in the pipeline goes through a [t]. The
    {!disabled} handle (also the initial {!global}) short-circuits each hook
    to a single branch, so an uninstrumented run pays no measurable cost;
    {!create} builds a live handle whose hooks update the registry and stream
    events to the sink.

    Instrumented entry points ([Fuzz.run], [Oracle.test], [Runner.run], …)
    take [?telemetry] defaulting to {!global}; deep hooks (solver engine,
    generator synthesis) always read {!global}. Install a live handle with
    {!set_global} (or scoped, with {!using}) to capture those too. *)

type t

val disabled : t
(** Never records anything. [enabled disabled = false]. *)

val create :
  ?sink:Sink.t -> ?clock:(unit -> float) -> ?labels:(string * string) list ->
  unit -> t
(** A live handle. [sink] defaults to {!Sink.null} (metrics only); [clock]
    defaults to [Unix.gettimeofday] and supplies event timestamps and span
    durations. [labels] are {e base labels} stamped onto every emitted event
    (as string fields), every span, every gauge and every histogram — but
    {e not} onto counters, so absorbing several workers' registries sums
    counters into campaign totals while latency cells stay per-worker. A
    parallel worker's handle carries [("worker", id)] here. *)

val monotonic_clock : unit -> unit -> float
(** [monotonic_clock ()] builds a fresh wall-clock that never returns the
    same or an earlier value twice (ties are nudged forward by 1 µs), so a
    worker's event stream is totally ordered by timestamp. Each worker should
    build its own. *)

val enabled : t -> bool
val metrics : t -> Metrics.t
val sink : t -> Sink.t
val now : t -> float

val base_labels : t -> (string * string) list

(** {1 Recording} *)

val emit : t -> string -> (string * Json.t) list -> unit
(** Send one event to the sink, timestamped with the handle's clock. *)

val forward : t -> Event.t -> unit
(** Send an already-stamped event to the sink verbatim (no re-timestamping,
    no base labels) — how the merge stage replays a worker's buffered events
    into the campaign log. *)

val incr : t -> ?labels:(string * string) list -> ?by:int -> string -> unit
val set_gauge : t -> ?labels:(string * string) list -> string -> float -> unit

val observe : t -> ?labels:(string * string) list -> string -> float -> unit
(** Record one observation into a fixed-bucket histogram (latency bounds). *)

val with_span : t -> ?labels:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span t stage f] times [f], records the duration into the
    ["stage.duration"] histogram (label [stage]), and emits a ["span"] event
    [{stage; dur_us}]. Spans nest: an inner span's event carries
    ["parent"] and ["depth"] fields. The duration is recorded even when [f]
    raises. *)

(** {1 Span hooks}

    A profiling layer (e.g. [O4a_profile.Profile]) can observe every span
    boundary on its domain without the telemetry pipeline being live: the
    ambient hook is domain-local, independent of any handle, and fires even
    for spans taken through {!disabled}. The leave callback runs even when
    the spanned function raises. *)

type span_hook = { on_enter : string -> unit; on_leave : string -> unit }

val with_span_hook : span_hook -> (unit -> 'a) -> 'a
(** Install [hook] as the calling domain's ambient span hook for the call,
    restoring the previous hook afterwards (also on exception). *)

(** {1 Snapshots} *)

val snapshot : t -> Metrics.entry list
val counter_value : t -> ?labels:(string * string) list -> string -> int

val absorb_metrics : t -> Metrics.entry list -> unit
(** Fold a worker handle's {!snapshot} into this handle's registry (see
    {!Metrics.absorb}). No-op on a disabled handle. *)

val flush : t -> unit
(** Flush/close the sink (see {!Sink.close}). *)

(** {1 The ambient handle} *)

val global : unit -> t
(** Initially {!disabled}. The ambient handle is {e domain-local}: each
    domain starts at {!disabled} and {!set_global}/{!using} only affect the
    calling domain, so a worker installing its private handle never disturbs
    the main domain's. *)

val set_global : t -> unit

val using : t -> (unit -> 'a) -> 'a
(** Install [t] as the calling domain's ambient handle for the call,
    restoring the previous handle afterwards (even on exceptions). *)
