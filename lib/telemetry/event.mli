(** One structured telemetry event — a timestamp, a dotted event name
    (["oracle.verdict"], ["span"], ["fuzz.test"], …), and free-form fields.

    On the wire an event is a single JSON object per line:
    [{"ts":1754.2,"event":"oracle.verdict","solver":"zeal","verdict":"sat"}].
    The ["ts"] and ["event"] keys are reserved; field keys must not collide
    with them. *)

type t = {
  ts : float;  (** seconds since the Unix epoch *)
  name : string;
  fields : (string * Json.t) list;
}

val make : ts:float -> name:string -> (string * Json.t) list -> t

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

val to_line : t -> string
(** Single-line JSON, no trailing newline. *)

val of_line : string -> (t, string) result

val parse_log : string -> t list * int * bool
(** [parse_log contents] reads a whole JSONL log: the events in file order,
    the number of malformed lines, and whether the log ends in a {e torn}
    line — a final line that both fails to parse and lacks its terminating
    newline, the signature of a writer killed mid-write. The torn line is
    skipped and not counted as malformed; blank lines are ignored. *)

val field : string -> t -> Json.t option

(** {1 Log schema versioning} *)

val schema_version : int
(** Version of the JSONL wire format this library writes. *)

val schema_event_name : string
(** ["telemetry.schema"] — the header event's name. *)

val schema_event : ts:float -> t
(** The header event [Sink.open_jsonl] writes as the first line of every
    log: [{"ts":…,"event":"telemetry.schema","version":N}]. *)

val log_schema_version : t list -> int option
(** The version declared by the first ["telemetry.schema"] event, if any.
    [None] means the log predates versioning (read it as version 1). *)

val equal : t -> t -> bool
(** Field-wise equality; timestamps compare with [Json.equal]'s numeric
    coercion so a round trip through the printer is stable. *)
