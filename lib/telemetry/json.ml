type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------- printing ------------------------------- *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else (
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f)

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
    Buffer.add_char buf '"';
    escape_into buf s;
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape_into buf k;
        Buffer.add_string buf "\":";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  write buf v;
  Buffer.contents buf

(* ------------------------------- parsing -------------------------------- *)

exception Bad of int * string

let parse_located input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let m = String.length word in
    if !pos + m <= n && String.sub input !pos m = word then (
      pos := !pos + m;
      value)
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else (
        let c = input.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' ->
          (if !pos >= n then fail "unterminated escape"
           else (
             let e = input.[!pos] in
             advance ();
             match e with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'u' ->
               if !pos + 4 > n then fail "truncated \\u escape"
               else (
                 let hex = String.sub input !pos 4 in
                 pos := !pos + 4;
                 match int_of_string_opt ("0x" ^ hex) with
                 | None -> fail "bad \\u escape"
                 | Some code ->
                   (* encode the code point as UTF-8 (BMP only) *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then (
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
                   else (
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))))
             | _ -> fail "unknown escape"));
          go ()
        | c -> Buffer.add_char buf c; go ())
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char input.[!pos] do
      advance ()
    done;
    let text = String.sub input start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number '%s'" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); Obj [])
      else (
        let rec fields acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields ((key, value) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((key, value) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        fields [])
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); List [])
      else (
        let rec elements acc =
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements (value :: acc)
          | Some ']' -> advance (); List (List.rev (value :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements [])
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match parse_value () with
  | value ->
    skip_ws ();
    if !pos <> n then Error (!pos, "trailing garbage") else Ok value
  | exception Bad (offset, msg) -> Error (offset, msg)

let parse input =
  match parse_located input with
  | Ok v -> Ok v
  | Error (offset, msg) -> Error (Printf.sprintf "%s at offset %d" msg offset)

(* ------------------------------ accessors ------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Int n -> Some (float_of_int n)
  | Float f -> Some f
  | _ -> None

let to_int = function Int n -> Some n | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | (Int _ | Float _), (Int _ | Float _) -> to_float a = to_float b
  | String x, String y -> x = y
  | List xs, List ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
    List.length xs = List.length ys
    && List.for_all2 (fun (k, v) (k', v') -> k = k' && equal v v') xs ys
  | _ -> false
