(** Where emitted events go. Three implementations:

    - {!null}: discards everything — the default, so an uninstrumented run
      pays only a branch per hook;
    - {!memory}: accumulates events in order, for tests and in-process
      consumers;
    - {!jsonl}: streams one JSON object per line to a channel, the format
      consumed by [once4all_cli stats] and offline analysis.

    {!emit} is thread-safe for every implementation (memory and channel sinks
    serialize writers behind a per-sink mutex), so several domains may share
    one sink. *)

type t

val null : t
val memory : unit -> t

val jsonl : out_channel -> t
(** The caller keeps ownership of the channel; {!close} flushes but only
    closes channels opened by {!open_jsonl}. *)

val callback : (Event.t -> unit) -> t
(** Hand every emitted event to [f] — the subscription hook the campaign
    server fans events out with. [f] runs on the emitting domain under no
    lock; it must be fast and must not raise. *)

val fanout : t list -> t
(** Deliver every event to each sink in order ([fanout [s] = s]). {!close}
    closes all of them; {!events} is empty (read the member sinks). *)

val open_jsonl : string -> t
(** Create/truncate the file and write the {!Event.schema_event} header as
    its first line, so readers can reject logs written by an incompatible
    future format. The channel is closed by {!close}. The sink
    also registers an [at_exit] close, so a process that dies on an uncaught
    exception (or forgets to close) still flushes every fully emitted line —
    at worst the file ends in one torn line from a hard kill, which
    {!Event.parse_log} tolerates. *)

val emit : t -> Event.t -> unit

val events : t -> Event.t list
(** Captured events, oldest first. Empty for non-memory sinks. *)

val close : t -> unit
(** Flush buffered output; close the file if {!open_jsonl} opened it.
    Idempotent. *)
