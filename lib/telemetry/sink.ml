type t =
  | Null
  | Memory of { events : Event.t list ref; lock : Mutex.t }
  | Channel of {
      oc : out_channel;
      owned : bool;
      mutable closed : bool;
      lock : Mutex.t;
    }
  | Callback of (Event.t -> unit)
  | Fanout of t list

let null = Null
let memory () = Memory { events = ref []; lock = Mutex.create () }
let jsonl oc = Channel { oc; owned = false; closed = false; lock = Mutex.create () }
let callback f = Callback f

let fanout = function [ s ] -> s | sinks -> Fanout sinks

let rec close = function
  | Null | Memory _ | Callback _ -> ()
  | Channel c ->
    Mutex.protect c.lock (fun () ->
        if not c.closed then (
          c.closed <- true;
          if c.owned then close_out c.oc else flush c.oc))
  | Fanout sinks -> List.iter close sinks

let open_jsonl path =
  let sink =
    Channel { oc = open_out path; owned = true; closed = false; lock = Mutex.create () }
  in
  (* flush-on-exit safety net: a campaign killed by an uncaught exception (or
     one that simply never calls [close]) still leaves complete JSONL lines
     behind. [close] is idempotent, so the normal shutdown path is unaffected. *)
  at_exit (fun () -> close sink);
  (* schema header, first line of every file this function creates. Memory
     sinks (workers) never write one, so a merged campaign log carries exactly
     one. Written before any fault injector can be armed on this domain. *)
  (match sink with
  | Channel c ->
    output_string c.oc (Event.to_line (Event.schema_event ~ts:(Unix.gettimeofday ())));
    output_char c.oc '\n'
  | Null | Memory _ | Callback _ | Fanout _ -> ());
  sink

(* Chaos hook: a worker's ambient fault injector may fail this write, the
   moral equivalent of a full disk or a closed pipe under the JSONL sink.
   Checked before taking the lock so an injected failure can never leave the
   sink lock held. The merge domain never arms an injector, so the campaign's
   own log writes are unaffected. *)
let faulted_write () =
  let module Faults = O4a_faults.Faults in
  if Faults.triggered Faults.Sink_write then Faults.raise_injected Faults.Sink_write

let rec emit sink event =
  match sink with
  | Null -> ()
  | Memory m ->
    faulted_write ();
    Mutex.protect m.lock (fun () -> m.events := event :: !(m.events))
  | Channel c ->
    faulted_write ();
    (* whole-line write under the lock so concurrent emitters never interleave
       within a JSONL line *)
    Mutex.protect c.lock (fun () ->
        if not c.closed then (
          output_string c.oc (Event.to_line event);
          output_char c.oc '\n'))
  | Callback f ->
    faulted_write ();
    f event
  | Fanout sinks -> List.iter (fun s -> emit s event) sinks

let events = function
  | Memory m -> Mutex.protect m.lock (fun () -> List.rev !(m.events))
  | Null | Channel _ | Callback _ | Fanout _ -> []
