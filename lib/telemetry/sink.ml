type t =
  | Null
  | Memory of Event.t list ref
  | Channel of { oc : out_channel; owned : bool; mutable closed : bool }

let null = Null
let memory () = Memory (ref [])
let jsonl oc = Channel { oc; owned = false; closed = false }

let open_jsonl path = Channel { oc = open_out path; owned = true; closed = false }

let emit sink event =
  match sink with
  | Null -> ()
  | Memory events -> events := event :: !events
  | Channel c ->
    if not c.closed then (
      output_string c.oc (Event.to_line event);
      output_char c.oc '\n')

let events = function
  | Memory events -> List.rev !events
  | Null | Channel _ -> []

let close = function
  | Null | Memory _ -> ()
  | Channel c ->
    if not c.closed then (
      c.closed <- true;
      if c.owned then close_out c.oc else flush c.oc)
