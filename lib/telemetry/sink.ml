type t =
  | Null
  | Memory of { events : Event.t list ref; lock : Mutex.t }
  | Channel of {
      oc : out_channel;
      owned : bool;
      mutable closed : bool;
      lock : Mutex.t;
    }

let null = Null
let memory () = Memory { events = ref []; lock = Mutex.create () }
let jsonl oc = Channel { oc; owned = false; closed = false; lock = Mutex.create () }

let close = function
  | Null | Memory _ -> ()
  | Channel c ->
    Mutex.protect c.lock (fun () ->
        if not c.closed then (
          c.closed <- true;
          if c.owned then close_out c.oc else flush c.oc))

let open_jsonl path =
  let sink =
    Channel { oc = open_out path; owned = true; closed = false; lock = Mutex.create () }
  in
  (* flush-on-exit safety net: a campaign killed by an uncaught exception (or
     one that simply never calls [close]) still leaves complete JSONL lines
     behind. [close] is idempotent, so the normal shutdown path is unaffected. *)
  at_exit (fun () -> close sink);
  sink

let emit sink event =
  match sink with
  | Null -> ()
  | Memory m ->
    Mutex.protect m.lock (fun () -> m.events := event :: !(m.events))
  | Channel c ->
    (* whole-line write under the lock so concurrent emitters never interleave
       within a JSONL line *)
    Mutex.protect c.lock (fun () ->
        if not c.closed then (
          output_string c.oc (Event.to_line event);
          output_char c.oc '\n'))

let events = function
  | Memory m -> Mutex.protect m.lock (fun () -> List.rev !(m.events))
  | Null | Channel _ -> []
