(** A minimal self-contained JSON value type, printer, and parser.

    The telemetry event log is JSONL (one object per line); the environment
    ships no JSON library, so this module implements the subset we need:
    objects, arrays, strings with the standard escapes, booleans, null, and
    numbers. Floats are always printed in a form JSON accepts (never [nan],
    [inf], or a bare trailing dot). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (no newlines, suitable for JSONL). *)

val parse : string -> (t, string) result
(** Parse one JSON document; trailing whitespace is allowed, trailing
    garbage is an error. *)

val parse_located : string -> (t, int * string) result
(** Like {!parse} but the error carries the byte offset separately, for
    callers that want to point at the failure position in their own
    diagnostics (e.g. truncated-checkpoint detection). [parse] is
    [parse_located] with the offset folded into the message. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** First binding of the field in an [Obj]; [None] otherwise. *)

val to_float : t -> float option
(** [Int] and [Float] both coerce. *)

val to_int : t -> int option
val to_str : t -> string option
val to_bool : t -> bool option

val equal : t -> t -> bool
(** Structural equality, except [Int n] and [Float f] compare equal when
    [float_of_int n = f] (the printer may legally narrow [2.0] to [2]). *)
