type t = {
  ts : float;
  name : string;
  fields : (string * Json.t) list;
}

let make ~ts ~name fields = { ts; name; fields }

let to_json { ts; name; fields } =
  Json.Obj (("ts", Json.Float ts) :: ("event", Json.String name) :: fields)

let of_json json =
  match json with
  | Json.Obj fields -> (
    let ts = Option.bind (List.assoc_opt "ts" fields) Json.to_float in
    let name = Option.bind (List.assoc_opt "event" fields) Json.to_str in
    match (ts, name) with
    | Some ts, Some name ->
      Ok
        {
          ts;
          name;
          fields = List.filter (fun (k, _) -> k <> "ts" && k <> "event") fields;
        }
    | None, _ -> Error "event is missing a numeric \"ts\" field"
    | _, None -> Error "event is missing a string \"event\" field")
  | _ -> Error "event is not a JSON object"

let to_line event = Json.to_string (to_json event)

let of_line line =
  match Json.parse line with
  | Error e -> Error e
  | Ok json -> of_json json

let parse_log content =
  let ends_nl =
    String.length content > 0 && content.[String.length content - 1] = '\n'
  in
  let lines =
    String.split_on_char '\n' content
    |> List.filter (fun l -> String.trim l <> "")
  in
  let last = List.length lines - 1 in
  let events = ref [] in
  let malformed = ref 0 in
  let torn = ref false in
  List.iteri
    (fun i line ->
      match of_line line with
      | Ok e -> events := e :: !events
      | Error _ ->
        (* an unparseable, unterminated final line is a torn write (the
           emitter died mid-line), not log corruption *)
        if i = last && not ends_nl then torn := true else incr malformed)
    lines;
  (List.rev !events, !malformed, !torn)

let field key event = List.assoc_opt key event.fields

(* The JSONL log format's version. Bumped when an event's wire shape changes
   incompatibly; the ["telemetry.schema"] header event (written once, first
   line of every log [Sink.open_jsonl] creates) lets readers reject logs
   newer than themselves instead of misparsing. Logs with no header predate
   versioning and are read as version 1. *)
let schema_version = 1
let schema_event_name = "telemetry.schema"

let schema_event ~ts =
  make ~ts ~name:schema_event_name [ ("version", Json.Int schema_version) ]

let log_schema_version events =
  List.find_map
    (fun e ->
      if e.name = schema_event_name then
        Option.bind (field "version" e) Json.to_int
      else None)
    events

let equal a b =
  a.name = b.name
  && Json.equal (Json.Float a.ts) (Json.Float b.ts)
  && List.length a.fields = List.length b.fields
  && List.for_all2
       (fun (k, v) (k', v') -> k = k' && Json.equal v v')
       a.fields b.fields
