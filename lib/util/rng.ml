type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 step: https://prng.di.unimi.it/splitmix64.c *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = bits64 t in
  { state = s }

(* O(1) jump into the seed's splitmix sequence: state_n = seed + n*gamma, so
   the shard stream derived for index i equals the one obtained by splitting
   the parent generator after i+1 draws — without touching the parent. *)
let split_indexed ~seed ~index =
  if index < 0 then invalid_arg "Rng.split_indexed: negative index";
  let t =
    {
      state =
        Int64.add (Int64.of_int seed)
          (Int64.mul (Int64.of_int (index + 1)) golden_gamma);
    }
  in
  split t

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the value stays non-negative as a native 63-bit int *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod n

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r /. 9007199254740992.0 (* 2^53 *)

let chance t p = float t < p

let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let choose_arr t a =
  if Array.length a = 0 then invalid_arg "Rng.choose_arr: empty array";
  a.(int t (Array.length a))

let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc + max 0 w) 0 choices in
  if total <= 0 then invalid_arg "Rng.weighted: no positive weight";
  let k = int t total in
  let rec pick k = function
    | [] -> invalid_arg "Rng.weighted: internal"
    | (w, x) :: rest -> if k < max 0 w then x else pick (k - max 0 w) rest
  in
  pick k choices

let shuffle t xs =
  let a = Array.of_list xs in
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let sample t k xs =
  let shuffled = shuffle t xs in
  let rec take n = function
    | [] -> []
    | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest
  in
  take k shuffled

let subset t p xs = List.filter (fun _ -> chance t p) xs
