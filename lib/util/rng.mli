(** Deterministic splittable pseudo-random number generator (splitmix64).

    All randomness in the code base flows through this module so that fuzzing
    campaigns and experiments are exactly reproducible from a single integer
    seed. The generator is mutable but cheap to [split] into independent
    streams, which keeps parallel-looking pipelines deterministic. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy evolves independently. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent from the remainder of [t]'s stream. *)

val split_indexed : seed:int -> index:int -> t
(** [split_indexed ~seed ~index] derives the [index]-th independent stream of
    the campaign identified by [seed] in O(1), without a parent generator.
    Equal [(seed, index)] pairs always yield the same stream, which is what
    makes sharded campaigns deterministic regardless of how shards are
    assigned to workers. Raises [Invalid_argument] on a negative index. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Raises [Invalid_argument] if [n <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val bool : t -> bool

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val choose : t -> 'a list -> 'a
(** Uniform choice. Raises [Invalid_argument] on the empty list. *)

val choose_arr : t -> 'a array -> 'a

val weighted : t -> (int * 'a) list -> 'a
(** [weighted t choices] picks proportionally to the integer weights.
    Raises [Invalid_argument] if the list is empty or total weight is 0. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs] takes [min k (length xs)] distinct elements, in a
    random order. *)

val shuffle : t -> 'a list -> 'a list

val subset : t -> float -> 'a list -> 'a list
(** [subset t p xs] keeps each element independently with probability [p]. *)
