(** Small descriptive-statistics helpers used by the experiment harnesses.

    Every function is total: on the empty list the float-valued helpers all
    return [0.] and {!histogram} returns [[]], so callers never need an
    emptiness guard before summarizing. *)

val mean : float list -> float
(** Arithmetic mean; [0.] on the empty list. *)

val median : float list -> float
(** [percentile 50.]; [0.] on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,100\]], nearest-rank method on the
    sorted data; [0.] on the empty list. Out-of-range [p] is clamped to the
    extremes of the data. *)

val stddev : float list -> float
(** Population standard deviation; [0.] on the empty and singleton lists. *)

val minimum : float list -> float
(** [0.] on the empty list (not [infinity] — callers render these directly). *)

val maximum : float list -> float
(** [0.] on the empty list (not [neg_infinity]). *)

val histogram : buckets:int -> float list -> (float * float * int) list
(** [(lo, hi, count)] per bucket over the data range, [hi] exclusive except in
    the last bucket. [[]] on the empty list or when [buckets <= 0]. When all
    data are equal the range degenerates to a width-1 span starting at the
    datum. *)
