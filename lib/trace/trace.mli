(** Per-formula provenance tracing: the campaign's flight recorder.

    Every synthesized formula owns a {e trace} — the ordered list of typed
    stage records the mutation pipeline appended while producing and judging
    it: which seed was picked (and its hash), where the skeleton holes were
    cut, which generator filled each hole, which variable adaptations were
    applied, and what every solver answered. Trace identity is a pure
    function of the campaign seed and the formula's campaign tick ({!id_of}),
    so a [--jobs N] campaign produces byte-identical traces to [--jobs 1].

    Traces deliberately contain {e no wall-clock time}: the per-solver
    "timing" is the engine's deterministic fuel accounting (steps, decisions,
    propagations — the repository's 10-second-timeout analog), which is what
    keeps traces reproducible across runs and worker counts. Wall-clock stage
    latency stays in the telemetry layer.

    Steady state is bounded by a per-worker ring buffer ({!Recorder}): only
    the last [ring_size] finished traces are retained. An oracle violation
    {e promotes} the current trace — captures it in full, together with the
    formula text and the finding — so the orchestrator can write a
    self-contained repro bundle ({!Bundle}) at the merge barrier. *)

(** One pipeline stage's provenance, in chronological order within a trace.
    [Adapted] records precede the [Hole_filled] record of the hole they were
    applied to (adaptation happens while the hole's term is built). *)
type record =
  | Seed_selected of { hash : string; bytes : int; size : int }
      (** the mutation base: MD5 of its printed SMT-LIB text, its byte
          length, and its node count ({!Smtlib.Script.size}) *)
  | Skeletonized of { mode : string; holes : int }
      (** ["boolean"] or ["typed"]; holes cut across the whole script *)
  | Skeleton_hole of { hole : int; path : string; sort : string option }
      (** one placeholder: its number, its dotted term path within the
          assertion, and (typed mode) the sort the hole expects *)
  | Hole_filled of { hole : int; theory : string; sort : string option; raw : bool }
      (** which generator theory filled the hole; [raw] when the generator
          output failed to parse and was spliced textually *)
  | Adapted of { substitutions : (string * string) list }
      (** sort-aware variable adaptation: generated name -> seed name *)
  | Direct_generated of { terms : int; theories : string list }
      (** skeleton-free generation (the w/oS ablation path) *)
  | Synthesized of { bytes : int; parse_ok : bool; theories : string list }
      (** the assembled formula *)
  | Parse_rejected of { error : string }
      (** the oracle could not parse the formula at all *)
  | Solver_run of {
      solver : string;
      commit : int;
      verdict : string;
      steps : int;
      decisions : int;
      propagations : int;
    }  (** one engine's verdict plus its deterministic fuel accounting *)
  | Oracle_verdict of {
      kind : string option;
      solver : string option;
      signature : string option;
      bug_id : string option;
      theory : string option;
      mode : string option;
          (** oracle mode ({!Once4all.Oracle.mode_to_string}); [None] in
              traces recorded before oracle modes existed *)
    }  (** the differential oracle's conclusion ([kind = None]: no finding) *)
  | Fault_injected of { site : string }
      (** a chaos-testing fault fired at the named site while this formula was
          in flight ({!Faults.site_name}); marks the trace as tainted so repro
          bundles can never pass injected chaos off as a real finding *)

type t = {
  id : string;
  campaign_seed : int;
  tick : int;  (** global campaign tick (shard [first_tick] + local test) *)
  records : record list;  (** chronological *)
}

(** The finding that promoted a trace, flattened to strings so bundles do not
    depend on the solver or oracle layers. *)
type finding_info = {
  kind : string;
  solver : string;  (** solver tag, ["zeal"] / ["cove"] *)
  solver_name : string;  (** versioned name, e.g. ["cove-trunk"] *)
  signature : string;  (** the oracle's finding signature *)
  bug_id : string option;  (** ground-truth bug-registry tag, if attributed *)
  theory : string;
  dedup_key : string;  (** {!Once4all.Dedup.signature_to_string} cluster key *)
  mode : string;
      (** oracle mode the finding was produced under (["differential"] or
          ["degraded:..."]); bundles written before oracle modes existed
          decode as ["differential"] *)
}

type promoted = {
  trace : t;
  source : string;  (** the exact SMT-LIB text that triggered the finding *)
  finding : finding_info;
}

val id_of : seed:int -> tick:int -> string
(** Deterministic trace id, e.g. ["t000123-9f3a2b1c"]: the zero-padded tick
    plus a 32-bit hash of [(seed, tick)]. Lexicographic order of ids from one
    campaign is campaign tick order. *)

val solvers_run : t -> (string * int) list
(** The [(solver name, commit)] pairs of the trace's [Solver_run] records,
    in run order. *)

(** {1 JSON codec} (reuses the telemetry JSON representation) *)

val record_to_json : record -> O4a_telemetry.Json.t
val record_of_json : O4a_telemetry.Json.t -> (record, string) result
val to_json : t -> O4a_telemetry.Json.t
val of_json : O4a_telemetry.Json.t -> (t, string) result
val finding_to_json : finding_info -> O4a_telemetry.Json.t
val finding_of_json : O4a_telemetry.Json.t -> (finding_info, string) result
val promoted_to_json : promoted -> O4a_telemetry.Json.t
val promoted_of_json : O4a_telemetry.Json.t -> (promoted, string) result

val render : t -> string
(** Human-readable stage tree: one line per record, holes and adaptations
    grouped under their fill, solver runs with their fuel accounting. What
    [once4all trace show] prints. *)

(** {1 The flight recorder} *)

module Recorder : sig
  type trace := t

  type t
  (** A per-worker recorder: the in-flight trace, a bounded ring of the last
      [ring_size] finished traces, and the promoted traces awaiting bundle
      writing. Not thread-safe — one recorder per worker domain, like solver
      engines. *)

  val default_ring_size : int
  (** 64. *)

  val disabled : t
  (** Records nothing; every hook short-circuits on one branch. *)

  val create : ?ring_size:int -> seed:int -> unit -> t
  (** A live recorder for the campaign identified by [seed] (trace ids derive
      from it). Raises [Invalid_argument] if [ring_size <= 0]. *)

  val enabled : t -> bool

  val start : t -> tick:int -> unit
  (** Open the trace for the formula at campaign [tick], discarding any
      unfinished trace. *)

  val active : t -> bool
  (** A trace is open — use to guard costly payload construction. *)

  val record : t -> record -> unit
  (** Append to the open trace; no-op when disabled or no trace is open. *)

  val promote : t -> source:string -> finding:finding_info -> unit
  (** Capture the open trace in full (it stays open; {!finish} it as usual).
      Promoted traces survive ring-buffer eviction. *)

  val finish : t -> unit
  (** Close the open trace into the ring, evicting the oldest entry when the
      ring is full. *)

  val recent : t -> trace list
  (** Ring contents, oldest first — at most [ring_size] traces. *)

  val promoted : t -> promoted list
  (** Promoted traces in promotion (= campaign tick) order. *)

  (** {2 The ambient recorder}

      Domain-local, initially {!disabled} — mirrors
      {!O4a_telemetry.Telemetry.global}. Deep pipeline stages append through
      it (see {!note}) so their signatures stay trace-free. *)

  val ambient : unit -> t
  val set_ambient : t -> unit

  val using : t -> (unit -> 'a) -> 'a
  (** Install [t] as the calling domain's ambient recorder for the call,
      restoring the previous recorder afterwards (even on exceptions). *)
end

val note : record -> unit
(** [record] on the ambient recorder. *)

val noting : unit -> bool
(** The ambient recorder has an open trace — guard for callers whose record
    payload is expensive to build (hashing, printing). *)
