module Json = O4a_telemetry.Json

let rec ensure_dir path =
  if not (Sys.file_exists path) then (
    ensure_dir (Filename.dirname path);
    try Sys.mkdir path 0o755 with Sys_error _ when Sys.file_exists path -> ())

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> Ok contents
  | exception Sys_error msg -> Error msg

let shell_quote s =
  "'" ^ String.concat "'\\''" (String.split_on_char '\'' s) ^ "'"

let meta_json (p : Trace.promoted) =
  Json.Obj
    [
      ("id", Json.String p.Trace.trace.Trace.id);
      ("campaign_seed", Json.Int p.Trace.trace.Trace.campaign_seed);
      ("tick", Json.Int p.Trace.trace.Trace.tick);
      ("finding", Trace.finding_to_json p.Trace.finding);
      ( "solvers",
        Json.List
          (List.map
             (fun (name, commit) ->
               Json.Obj [ ("name", Json.String name); ("commit", Json.Int commit) ])
             (Trace.solvers_run p.Trace.trace)) );
      ("source_bytes", Json.Int (String.length p.Trace.source));
    ]

let repro_sh (p : Trace.promoted) =
  let f = p.Trace.finding in
  Printf.sprintf
    "#!/bin/sh\n\
     # Repro bundle %s: %s in %s (signature %s)\n\
     # Re-runs the differential oracle on formula.smt2 and checks that the\n\
     # same finding signature reproduces. Point ONCE4ALL at the CLI if it is\n\
     # not on PATH, e.g.:\n\
     #   ONCE4ALL=/path/to/once4all_cli.exe ./repro.sh\n\
     cd \"$(dirname \"$0\")\"\n\
     exec ${ONCE4ALL:-once4all} replay formula.smt2 --expect %s\n"
    p.Trace.trace.Trace.id f.Trace.kind f.Trace.solver_name f.Trace.signature
    (shell_quote f.Trace.signature)

let write ~dir (p : Trace.promoted) =
  let bdir = Filename.concat dir p.Trace.trace.Trace.id in
  ensure_dir bdir;
  write_file (Filename.concat bdir "formula.smt2") p.Trace.source;
  write_file
    (Filename.concat bdir "trace.json")
    (Json.to_string (Trace.to_json p.Trace.trace) ^ "\n");
  write_file (Filename.concat bdir "meta.json") (Json.to_string (meta_json p) ^ "\n");
  let repro = Filename.concat bdir "repro.sh" in
  write_file repro (repro_sh p);
  Unix.chmod repro 0o755;
  bdir

let ( let* ) = Result.bind

let load ~path =
  let* source = read_file (Filename.concat path "formula.smt2") in
  let* trace_text = read_file (Filename.concat path "trace.json") in
  let* trace_json = Json.parse (String.trim trace_text) in
  let* trace = Trace.of_json trace_json in
  let* meta_text = read_file (Filename.concat path "meta.json") in
  let* meta = Json.parse (String.trim meta_text) in
  let* finding =
    match Json.member "finding" meta with
    | Some j -> Trace.finding_of_json j
    | None -> Error "bundle: meta.json has no \"finding\" field"
  in
  Ok { Trace.trace; source; finding }

let scan ~dir =
  let entries =
    match Sys.readdir dir with
    | entries -> Array.to_list entries
    | exception Sys_error _ -> []
  in
  let bundle_dirs =
    entries
    |> List.filter (fun e ->
           let path = Filename.concat dir e in
           Sys.is_directory path
           && Sys.file_exists (Filename.concat path "meta.json"))
    |> List.sort compare
  in
  List.fold_left
    (fun (bundles, warnings) e ->
      match load ~path:(Filename.concat dir e) with
      | Ok p -> (p :: bundles, warnings)
      | Error msg ->
        (bundles, Printf.sprintf "unreadable bundle %s: %s" e msg :: warnings))
    ([], []) bundle_dirs
  |> fun (bundles, warnings) -> (List.rev bundles, List.rev warnings)
