(** Self-contained repro bundles.

    A promoted trace becomes a directory named after its trace id:

    {v
    <dir>/<trace-id>/
      formula.smt2   the exact SMT-LIB text that triggered the finding
      trace.json     the provenance trace (Trace.to_json)
      meta.json      finding, dedup key, campaign seed/tick, solver commits
      repro.sh       re-runs the differential oracle on formula.smt2 and
                     checks the finding signature reproduces
    v}

    [repro.sh] invokes [$ONCE4ALL replay formula.smt2 --expect SIG]
    (defaulting to an [once4all] on [$PATH]), so a bundle reproduces anywhere
    the CLI binary exists — no campaign state needed. Every file's content is
    a pure function of the promoted trace, so bundles from [--jobs N] and
    [--jobs 1] campaigns are byte-identical. *)

val ensure_dir : string -> unit
(** [mkdir -p]. *)

val write : dir:string -> Trace.promoted -> string
(** Write the bundle under [dir] (created if missing); returns the bundle
    directory path. An existing bundle with the same id is overwritten. *)

val load : path:string -> (Trace.promoted, string) result
(** Read a bundle directory back into the promoted trace it was written
    from. *)

val scan : dir:string -> Trace.promoted list * string list
(** All bundles directly under [dir], sorted by trace id (= campaign tick
    order), plus a warning per unreadable bundle. A missing [dir] is an empty
    scan. *)
