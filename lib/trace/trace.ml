module Json = O4a_telemetry.Json

type record =
  | Seed_selected of { hash : string; bytes : int; size : int }
  | Skeletonized of { mode : string; holes : int }
  | Skeleton_hole of { hole : int; path : string; sort : string option }
  | Hole_filled of { hole : int; theory : string; sort : string option; raw : bool }
  | Adapted of { substitutions : (string * string) list }
  | Direct_generated of { terms : int; theories : string list }
  | Synthesized of { bytes : int; parse_ok : bool; theories : string list }
  | Parse_rejected of { error : string }
  | Solver_run of {
      solver : string;
      commit : int;
      verdict : string;
      steps : int;
      decisions : int;
      propagations : int;
    }
  | Oracle_verdict of {
      kind : string option;
      solver : string option;
      signature : string option;
      bug_id : string option;
      theory : string option;
      mode : string option;
    }
  | Fault_injected of { site : string }

type t = {
  id : string;
  campaign_seed : int;
  tick : int;
  records : record list;
}

type finding_info = {
  kind : string;
  solver : string;
  solver_name : string;
  signature : string;
  bug_id : string option;
  theory : string;
  dedup_key : string;
  mode : string;
}

type promoted = {
  trace : t;
  source : string;
  finding : finding_info;
}

let id_of ~seed ~tick =
  let bits = O4a_util.Rng.bits64 (O4a_util.Rng.split_indexed ~seed ~index:tick) in
  Printf.sprintf "t%06d-%08Lx" tick (Int64.logand bits 0xFFFF_FFFFL)

let solvers_run t =
  List.filter_map
    (function Solver_run { solver; commit; _ } -> Some (solver, commit) | _ -> None)
    t.records

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)
(* ------------------------------------------------------------------ *)

let opt_str = function Some s -> Json.String s | None -> Json.Null
let strings l = Json.List (List.map (fun s -> Json.String s) l)

let record_to_json = function
  | Seed_selected { hash; bytes; size } ->
    Json.Obj
      [
        ("stage", Json.String "seed");
        ("hash", Json.String hash);
        ("bytes", Json.Int bytes);
        ("size", Json.Int size);
      ]
  | Skeletonized { mode; holes } ->
    Json.Obj
      [
        ("stage", Json.String "skeletonize");
        ("mode", Json.String mode);
        ("holes", Json.Int holes);
      ]
  | Skeleton_hole { hole; path; sort } ->
    Json.Obj
      [
        ("stage", Json.String "hole");
        ("hole", Json.Int hole);
        ("path", Json.String path);
        ("sort", opt_str sort);
      ]
  | Hole_filled { hole; theory; sort; raw } ->
    Json.Obj
      [
        ("stage", Json.String "fill");
        ("hole", Json.Int hole);
        ("theory", Json.String theory);
        ("sort", opt_str sort);
        ("raw", Json.Bool raw);
      ]
  | Adapted { substitutions } ->
    Json.Obj
      [
        ("stage", Json.String "adapt");
        ( "substitutions",
          Json.Obj (List.map (fun (a, b) -> (a, Json.String b)) substitutions) );
      ]
  | Direct_generated { terms; theories } ->
    Json.Obj
      [
        ("stage", Json.String "direct");
        ("terms", Json.Int terms);
        ("theories", strings theories);
      ]
  | Synthesized { bytes; parse_ok; theories } ->
    Json.Obj
      [
        ("stage", Json.String "synthesize");
        ("bytes", Json.Int bytes);
        ("parse_ok", Json.Bool parse_ok);
        ("theories", strings theories);
      ]
  | Parse_rejected { error } ->
    Json.Obj [ ("stage", Json.String "parse_rejected"); ("error", Json.String error) ]
  | Solver_run { solver; commit; verdict; steps; decisions; propagations } ->
    Json.Obj
      [
        ("stage", Json.String "solver");
        ("solver", Json.String solver);
        ("commit", Json.Int commit);
        ("verdict", Json.String verdict);
        ("steps", Json.Int steps);
        ("decisions", Json.Int decisions);
        ("propagations", Json.Int propagations);
      ]
  | Oracle_verdict { kind; solver; signature; bug_id; theory; mode } ->
    Json.Obj
      [
        ("stage", Json.String "verdict");
        ("kind", opt_str kind);
        ("solver", opt_str solver);
        ("signature", opt_str signature);
        ("bug_id", opt_str bug_id);
        ("theory", opt_str theory);
        ("mode", opt_str mode);
      ]
  | Fault_injected { site } ->
    Json.Obj [ ("stage", Json.String "fault"); ("site", Json.String site) ]

let ( let* ) = Result.bind

let req name conv json =
  match Option.bind (Json.member name json) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "trace: missing or invalid field %S" name)

let opt name json = Option.bind (Json.member name json) Json.to_str

let string_list name json =
  match Json.member name json with
  | Some (Json.List l) ->
    Ok (List.filter_map (function Json.String s -> Some s | _ -> None) l)
  | _ -> Error (Printf.sprintf "trace: missing or invalid field %S" name)

let record_of_json json =
  let* stage = req "stage" Json.to_str json in
  match stage with
  | "seed" ->
    let* hash = req "hash" Json.to_str json in
    let* bytes = req "bytes" Json.to_int json in
    let* size = req "size" Json.to_int json in
    Ok (Seed_selected { hash; bytes; size })
  | "skeletonize" ->
    let* mode = req "mode" Json.to_str json in
    let* holes = req "holes" Json.to_int json in
    Ok (Skeletonized { mode; holes })
  | "hole" ->
    let* hole = req "hole" Json.to_int json in
    let* path = req "path" Json.to_str json in
    Ok (Skeleton_hole { hole; path; sort = opt "sort" json })
  | "fill" ->
    let* hole = req "hole" Json.to_int json in
    let* theory = req "theory" Json.to_str json in
    let* raw = req "raw" Json.to_bool json in
    Ok (Hole_filled { hole; theory; sort = opt "sort" json; raw })
  | "adapt" -> (
    match Json.member "substitutions" json with
    | Some (Json.Obj kvs) ->
      let* substitutions =
        List.fold_right
          (fun (k, v) acc ->
            let* acc = acc in
            match Json.to_str v with
            | Some s -> Ok ((k, s) :: acc)
            | None -> Error "trace: adapt substitution value not a string")
          kvs (Ok [])
      in
      Ok (Adapted { substitutions })
    | _ -> Error "trace: missing or invalid field \"substitutions\"")
  | "direct" ->
    let* terms = req "terms" Json.to_int json in
    let* theories = string_list "theories" json in
    Ok (Direct_generated { terms; theories })
  | "synthesize" ->
    let* bytes = req "bytes" Json.to_int json in
    let* parse_ok = req "parse_ok" Json.to_bool json in
    let* theories = string_list "theories" json in
    Ok (Synthesized { bytes; parse_ok; theories })
  | "parse_rejected" ->
    let* error = req "error" Json.to_str json in
    Ok (Parse_rejected { error })
  | "solver" ->
    let* solver = req "solver" Json.to_str json in
    let* commit = req "commit" Json.to_int json in
    let* verdict = req "verdict" Json.to_str json in
    let* steps = req "steps" Json.to_int json in
    let* decisions = req "decisions" Json.to_int json in
    let* propagations = req "propagations" Json.to_int json in
    Ok (Solver_run { solver; commit; verdict; steps; decisions; propagations })
  | "verdict" ->
    Ok
      (Oracle_verdict
         {
           kind = opt "kind" json;
           solver = opt "solver" json;
           signature = opt "signature" json;
           bug_id = opt "bug_id" json;
           theory = opt "theory" json;
           mode = opt "mode" json;
         })
  | "fault" ->
    let* site = req "site" Json.to_str json in
    Ok (Fault_injected { site })
  | other -> Error (Printf.sprintf "trace: unknown stage %S" other)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let to_json t =
  Json.Obj
    [
      ("id", Json.String t.id);
      ("campaign_seed", Json.Int t.campaign_seed);
      ("tick", Json.Int t.tick);
      ("records", Json.List (List.map record_to_json t.records));
    ]

let of_json json =
  let* id = req "id" Json.to_str json in
  let* campaign_seed = req "campaign_seed" Json.to_int json in
  let* tick = req "tick" Json.to_int json in
  let* records_json =
    match Json.member "records" json with
    | Some (Json.List l) -> Ok l
    | _ -> Error "trace: missing or invalid field \"records\""
  in
  let* records = map_result record_of_json records_json in
  Ok { id; campaign_seed; tick; records }

let finding_to_json f =
  Json.Obj
    [
      ("kind", Json.String f.kind);
      ("solver", Json.String f.solver);
      ("solver_name", Json.String f.solver_name);
      ("signature", Json.String f.signature);
      ("bug_id", opt_str f.bug_id);
      ("theory", Json.String f.theory);
      ("dedup_key", Json.String f.dedup_key);
      ("mode", Json.String f.mode);
    ]

let finding_of_json json =
  let* kind = req "kind" Json.to_str json in
  let* solver = req "solver" Json.to_str json in
  let* solver_name = req "solver_name" Json.to_str json in
  let* signature = req "signature" Json.to_str json in
  let bug_id = opt "bug_id" json in
  let* theory = req "theory" Json.to_str json in
  let* dedup_key = req "dedup_key" Json.to_str json in
  (* bundles written before oracle modes existed carry no "mode" member;
     they were all full differential comparisons *)
  let mode = Option.value (opt "mode" json) ~default:"differential" in
  Ok { kind; solver; solver_name; signature; bug_id; theory; dedup_key; mode }

let promoted_to_json p =
  Json.Obj
    [
      ("trace", to_json p.trace);
      ("source", Json.String p.source);
      ("finding", finding_to_json p.finding);
    ]

let promoted_of_json json =
  let* trace_json =
    match Json.member "trace" json with
    | Some j -> Ok j
    | None -> Error "trace: missing field \"trace\""
  in
  let* trace = of_json trace_json in
  let* source = req "source" Json.to_str json in
  let* finding_json =
    match Json.member "finding" json with
    | Some j -> Ok j
    | None -> Error "trace: missing field \"finding\""
  in
  let* finding = finding_of_json finding_json in
  Ok { trace; source; finding }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render t =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "trace %s  (campaign seed %d, tick %d)" t.id t.campaign_seed t.tick;
  (* an Adapted record belongs to the Hole_filled that follows it *)
  let pending_adapt = ref [] in
  List.iter
    (fun r ->
      match r with
      | Seed_selected { hash; bytes; size } ->
        line "  seed         %s  %d bytes, %d nodes" hash bytes size
      | Skeletonized { mode; holes } ->
        line "  skeletonize  %s mode, %d hole%s" mode holes
          (if holes = 1 then "" else "s")
      | Skeleton_hole { hole; path; sort } ->
        line "    hole %-3d   at %s%s" hole
          (if path = "" then "(root)" else path)
          (match sort with Some s -> "  : " ^ s | None -> "")
      | Adapted { substitutions } -> pending_adapt := substitutions
      | Hole_filled { hole; theory; sort; raw } ->
        line "  fill %-3d     theory %s%s  (%s)" hole theory
          (match sort with Some s -> " : " ^ s | None -> "")
          (if raw then "raw splice" else "ast");
        List.iter
          (fun (a, b) -> line "    adapted    %s -> %s" a b)
          !pending_adapt;
        pending_adapt := []
      | Direct_generated { terms; theories } ->
        line "  direct       %d term%s  [%s]" terms
          (if terms = 1 then "" else "s")
          (String.concat " " theories)
      | Synthesized { bytes; parse_ok; theories } ->
        line "  synthesize   %d bytes, parse %s  [%s]" bytes
          (if parse_ok then "ok" else "FAILED")
          (String.concat " " theories)
      | Parse_rejected { error } -> line "  parse        REJECTED: %s" error
      | Solver_run { solver; commit; verdict; steps; decisions; propagations } ->
        line "  %-12s %-8s steps=%d decisions=%d propagations=%d  (commit %d)"
          solver verdict steps decisions propagations commit
      | Oracle_verdict { kind; solver; signature; bug_id; mode; _ } -> (
        let degraded_tag =
          match mode with
          | Some m when m <> "differential" -> "  (" ^ m ^ ")"
          | _ -> ""
        in
        match kind with
        | None -> line "  verdict      agreement (no finding)%s" degraded_tag
        | Some k ->
          line "  verdict      %s in %s  [%s]%s%s" k
            (Option.value solver ~default:"?")
            (Option.value signature ~default:"?")
            (match bug_id with Some id -> "  -> " ^ id | None -> "")
            degraded_tag)
      | Fault_injected { site } -> line "  fault        INJECTED %s (chaos)" site)
    t.records;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* The flight recorder                                                 *)
(* ------------------------------------------------------------------ *)

module Recorder = struct
  type trace = t

  type nonrec t = {
    enabled : bool;
    seed : int;
    ring : trace option array;
    mutable ring_next : int;
    mutable in_trace : bool;
    mutable current_tick : int;
    mutable current_records : record list;  (* reversed *)
    mutable promoted_rev : promoted list;
  }

  let default_ring_size = 64

  let disabled =
    {
      enabled = false;
      seed = 0;
      ring = [||];
      ring_next = 0;
      in_trace = false;
      current_tick = 0;
      current_records = [];
      promoted_rev = [];
    }

  let create ?(ring_size = default_ring_size) ~seed () =
    if ring_size <= 0 then
      invalid_arg "Trace.Recorder.create: ring_size must be positive";
    {
      enabled = true;
      seed;
      ring = Array.make ring_size None;
      ring_next = 0;
      in_trace = false;
      current_tick = 0;
      current_records = [];
      promoted_rev = [];
    }

  let enabled r = r.enabled
  let active r = r.enabled && r.in_trace

  let start r ~tick =
    if r.enabled then (
      r.in_trace <- true;
      r.current_tick <- tick;
      r.current_records <- [])

  let record r rec_ =
    if active r then r.current_records <- rec_ :: r.current_records

  let assemble r =
    {
      id = id_of ~seed:r.seed ~tick:r.current_tick;
      campaign_seed = r.seed;
      tick = r.current_tick;
      records = List.rev r.current_records;
    }

  let promote r ~source ~finding =
    if active r then
      r.promoted_rev <- { trace = assemble r; source; finding } :: r.promoted_rev

  let finish r =
    if active r then (
      r.ring.(r.ring_next) <- Some (assemble r);
      r.ring_next <- (r.ring_next + 1) mod Array.length r.ring;
      r.in_trace <- false;
      r.current_records <- [])

  let recent r =
    if not r.enabled then []
    else (
      let n = Array.length r.ring in
      List.filter_map Fun.id
        (List.init n (fun i -> r.ring.((r.ring_next + i) mod n))))

  let promoted r = List.rev r.promoted_rev

  (* Domain-local, like the ambient telemetry handle: a worker installing its
     private recorder never disturbs another domain's. *)
  let ambient_key : t Domain.DLS.key = Domain.DLS.new_key (fun () -> disabled)

  let ambient () = Domain.DLS.get ambient_key
  let set_ambient r = Domain.DLS.set ambient_key r

  let using r f =
    let saved = Domain.DLS.get ambient_key in
    Domain.DLS.set ambient_key r;
    Fun.protect ~finally:(fun () -> Domain.DLS.set ambient_key saved) f
end

let note rec_ = Recorder.record (Recorder.ambient ()) rec_
let noting () = Recorder.active (Recorder.ambient ())
