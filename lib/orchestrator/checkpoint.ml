module Json = O4a_telemetry.Json
module Coverage = O4a_coverage.Coverage
module Bug_db = Solver.Bug_db

type shard_result = {
  shard : int;
  tests : int;
  parse_ok : int;
  solved : int;
  bytes_total : int;
  findings : Once4all.Dedup.found list;
}

type quarantine = {
  q_shard : int;
  q_first_tick : int;
  q_ticks : int;
  q_attempts : int;
  q_sites : string list;
}

type artifacts = {
  a_telemetry : bool;
  a_trace : bool;
  a_analytics : bool;
}

let no_artifacts = { a_telemetry = false; a_trace = false; a_analytics = false }

type t = {
  seed : int;
  budget : int;
  shard_size : int;
  extra : (string * string) list;
  completed : shard_result list;
  quarantined : quarantine list;
  coverage : (string * int) list;
  health : O4a_health.Health.entry list;
  analytics : O4a_analytics.Analytics.t;
  artifacts : artifacts;
}

(* version 2 added the quarantine list; version 3 added the merged health
   ledger and the per-finding oracle mode; version 4 the analytics series
   and the observability-artifact flags. Older files still load: version 1
   gets an empty quarantine, versions 1-2 an empty health ledger and
   Differential findings, versions 1-3 an empty analytics series and
   all-false artifact flags. *)
let version = 4
let min_version = 1

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let finding_to_json (f : Once4all.Oracle.finding) =
  Json.Obj
    [
      ("kind", Json.String (Bug_db.kind_to_string f.kind));
      ("solver", Json.String (Coverage.tag_to_string f.solver));
      ("solver_name", Json.String f.solver_name);
      ("signature", Json.String f.signature);
      ( "bug_id",
        match f.bug_id with Some id -> Json.String id | None -> Json.Null );
      ("theory", Json.String f.theory);
      ("mode", Json.String (Once4all.Oracle.mode_to_string f.mode));
    ]

let found_to_json (f : Once4all.Dedup.found) =
  Json.Obj
    [
      ("finding", finding_to_json f.Once4all.Dedup.finding);
      ("source", Json.String f.Once4all.Dedup.source);
    ]

let shard_result_to_json r =
  Json.Obj
    [
      ("shard", Json.Int r.shard);
      ("tests", Json.Int r.tests);
      ("parse_ok", Json.Int r.parse_ok);
      ("solved", Json.Int r.solved);
      ("bytes_total", Json.Int r.bytes_total);
      ("findings", Json.List (List.map found_to_json r.findings));
    ]

let quarantine_to_json q =
  Json.Obj
    [
      ("shard", Json.Int q.q_shard);
      ("first_tick", Json.Int q.q_first_tick);
      ("ticks", Json.Int q.q_ticks);
      ("attempts", Json.Int q.q_attempts);
      ("sites", Json.List (List.map (fun s -> Json.String s) q.q_sites));
    ]

let to_json t =
  Json.Obj
    [
      ("version", Json.Int version);
      ("seed", Json.Int t.seed);
      ("budget", Json.Int t.budget);
      ("shard_size", Json.Int t.shard_size);
      ( "extra",
        Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) t.extra) );
      ( "completed",
        Json.List
          (List.map shard_result_to_json
             (List.sort (fun a b -> compare a.shard b.shard) t.completed)) );
      ( "quarantined",
        Json.List
          (List.map quarantine_to_json
             (List.sort (fun a b -> compare a.q_shard b.q_shard) t.quarantined))
      );
      ( "coverage",
        Json.Obj (List.map (fun (k, c) -> (k, Json.Int c)) t.coverage) );
      ( "health",
        Json.List (List.map O4a_health.Health.entry_to_json t.health) );
      ("analytics", O4a_analytics.Analytics.to_json t.analytics);
      ( "artifacts",
        Json.Obj
          [
            ("telemetry", Json.Bool t.artifacts.a_telemetry);
            ("trace", Json.Bool t.artifacts.a_trace);
            ("analytics", Json.Bool t.artifacts.a_analytics);
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let req name conv json =
  match Option.bind (Json.member name json) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "checkpoint: missing or invalid field %S" name)

let list_field name json =
  match Json.member name json with
  | Some (Json.List l) -> Ok l
  | _ -> Error (Printf.sprintf "checkpoint: missing or invalid field %S" name)

let obj_field name json =
  match Json.member name json with
  | Some (Json.Obj kvs) -> Ok kvs
  | _ -> Error (Printf.sprintf "checkpoint: missing or invalid field %S" name)

let finding_of_json json =
  let* kind_s = req "kind" Json.to_str json in
  let* kind =
    match Bug_db.kind_of_string kind_s with
    | Some k -> Ok k
    | None -> Error (Printf.sprintf "checkpoint: unknown bug kind %S" kind_s)
  in
  let* solver_s = req "solver" Json.to_str json in
  let* solver =
    match Coverage.tag_of_string solver_s with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "checkpoint: unknown solver %S" solver_s)
  in
  let* solver_name = req "solver_name" Json.to_str json in
  let* signature = req "signature" Json.to_str json in
  let bug_id = Option.bind (Json.member "bug_id" json) Json.to_str in
  let* theory = req "theory" Json.to_str json in
  (* pre-v3 findings carry no mode; they were all full differential runs *)
  let* mode =
    match Json.member "mode" json with
    | None -> Ok Once4all.Oracle.Differential
    | Some j -> (
      match Option.bind (Json.to_str j) Once4all.Oracle.mode_of_string with
      | Some m -> Ok m
      | None -> Error "checkpoint: invalid finding mode")
  in
  Ok
    {
      Once4all.Oracle.kind;
      solver;
      solver_name;
      signature;
      bug_id;
      theory;
      mode;
    }

let found_of_json json =
  let* finding_json =
    match Json.member "finding" json with
    | Some j -> Ok j
    | None -> Error "checkpoint: missing field \"finding\""
  in
  let* finding = finding_of_json finding_json in
  let* source = req "source" Json.to_str json in
  Ok { Once4all.Dedup.finding; source }

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let shard_result_of_json json =
  let* shard = req "shard" Json.to_int json in
  let* tests = req "tests" Json.to_int json in
  let* parse_ok = req "parse_ok" Json.to_int json in
  let* solved = req "solved" Json.to_int json in
  let* bytes_total = req "bytes_total" Json.to_int json in
  let* findings_json = list_field "findings" json in
  let* findings = map_result found_of_json findings_json in
  Ok { shard; tests; parse_ok; solved; bytes_total; findings }

let quarantine_of_json json =
  let* q_shard = req "shard" Json.to_int json in
  let* q_first_tick = req "first_tick" Json.to_int json in
  let* q_ticks = req "ticks" Json.to_int json in
  let* q_attempts = req "attempts" Json.to_int json in
  let* sites_json = list_field "sites" json in
  let* q_sites =
    map_result
      (fun s ->
        match Json.to_str s with
        | Some s -> Ok s
        | None -> Error "checkpoint: quarantine site not a string")
      sites_json
  in
  Ok { q_shard; q_first_tick; q_ticks; q_attempts; q_sites }

let of_json json =
  let* v = req "version" Json.to_int json in
  let* () =
    if v >= min_version && v <= version then Ok ()
    else Error (Printf.sprintf "checkpoint: unsupported version %d" v)
  in
  let* seed = req "seed" Json.to_int json in
  let* budget = req "budget" Json.to_int json in
  let* shard_size = req "shard_size" Json.to_int json in
  let* extra_kvs = obj_field "extra" json in
  let* extra =
    map_result
      (fun (k, v) ->
        match Json.to_str v with
        | Some s -> Ok (k, s)
        | None -> Error (Printf.sprintf "checkpoint: extra field %S not a string" k))
      extra_kvs
  in
  let* completed_json = list_field "completed" json in
  let* completed = map_result shard_result_of_json completed_json in
  let* quarantined =
    match Json.member "quarantined" json with
    | None -> Ok [] (* version 1 *)
    | Some (Json.List l) -> map_result quarantine_of_json l
    | Some _ -> Error "checkpoint: missing or invalid field \"quarantined\""
  in
  let* coverage_kvs = obj_field "coverage" json in
  let* coverage =
    map_result
      (fun (k, v) ->
        match Json.to_int v with
        | Some c -> Ok (k, c)
        | None -> Error (Printf.sprintf "checkpoint: coverage count for %S not an int" k))
      coverage_kvs
  in
  let* health =
    match Json.member "health" json with
    | None -> Ok [] (* versions 1-2: no health ledger yet *)
    | Some (Json.List l) -> map_result O4a_health.Health.entry_of_json l
    | Some _ -> Error "checkpoint: missing or invalid field \"health\""
  in
  let* analytics =
    match Json.member "analytics" json with
    | None -> Ok O4a_analytics.Analytics.empty (* versions 1-3 *)
    | Some j -> O4a_analytics.Analytics.of_json j
  in
  let* artifacts =
    match Json.member "artifacts" json with
    | None -> Ok no_artifacts (* versions 1-3 *)
    | Some j ->
      let flag name =
        match Option.bind (Json.member name j) Json.to_bool with
        | Some b -> b
        | None -> false
      in
      Ok
        {
          a_telemetry = flag "telemetry";
          a_trace = flag "trace";
          a_analytics = flag "analytics";
        }
  in
  Ok
    { seed; budget; shard_size; extra; completed; quarantined; coverage;
      health; analytics; artifacts }

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

let save ~path t =
  (* write-then-rename so a crash mid-write never leaves a torn checkpoint *)
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json t));
      output_char oc '\n');
  Sys.rename tmp path

type load_error =
  | Io of string
  | Corrupt of { offset : int; reason : string }
  | Invalid of string

let load_error_to_string ~path = function
  | Io msg -> Printf.sprintf "cannot read checkpoint %s: %s" path msg
  | Corrupt { offset; reason } ->
    Printf.sprintf
      "checkpoint %s is truncated or corrupted: %s at byte offset %d\n\
       (likely a torn write from a crash mid-save; delete the file or restore \
       a backup, then re-run)"
      path reason offset
  | Invalid msg -> Printf.sprintf "checkpoint %s is not usable: %s" path msg

type info = { i_version : int; i_checkpoint : t }

let inspect ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error (Io msg)
  | contents -> (
    match Json.parse_located contents with
    | Error (offset, reason) -> Error (Corrupt { offset; reason })
    | Ok json -> (
      match of_json json with
      | Ok t ->
        (* of_json validated the version's presence and range already *)
        let i_version =
          match Option.bind (Json.member "version" json) Json.to_int with
          | Some v -> v
          | None -> version
        in
        Ok { i_version; i_checkpoint = t }
      | Error msg -> Error (Invalid msg)))

let load ~path = Result.map (fun i -> i.i_checkpoint) (inspect ~path)
