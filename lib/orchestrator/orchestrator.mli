(** The parallel campaign orchestrator: shard a fuzzing campaign across
    OCaml 5 domains and merge the results deterministically.

    The campaign's tick range is cut into {!Shard} units whose plan and RNGs
    depend only on [(seed, budget, shard_size)]. Workers pull shards from a
    shared queue; each worker owns its solver engines, each shard runs inside
    a private coverage ledger and a private telemetry handle (memory sink,
    monotonic clock, a [worker] base label). A single merge owner — the
    calling domain — folds finished shards back together: findings are
    re-ordered by shard index before {!Once4all.Dedup.cluster}, coverage
    merges commutatively by point identity, counters sum, worker events are
    forwarded to the campaign sink tagged with their shard. Consequently
    [run ~jobs:n] returns the same report for every [n].

    After every merged shard the campaign can be checkpointed
    ({!Checkpoint}); [run ~resume:true] skips the shards a checkpoint already
    covers and lands on the same final report as an uninterrupted run.

    With a chaos [plan] ({!O4a_faults.Faults.plan}) the orchestrator also
    supervises deterministic fault injection: each shard attempt runs under a
    per-(shard, attempt) injector, any attempt during which a fault fired is
    discarded wholesale and retried after a fuel-based backoff, and a shard
    that exhausts {!O4a_faults.Faults.max_retries} retries is quarantined —
    its tick range is reported (and persisted in the checkpoint) instead of
    aborting the campaign. Because only zero-fault attempts merge, a chaos
    run whose retries all eventually succeed produces a report, trace tree,
    and bundle set byte-identical to the fault-free run. *)

module Shard = Shard
module Checkpoint = Checkpoint

module Stop = Stop
(** The process-wide stop flag and the shared two-signal handler contract
    ({!Stop.install_handlers}). {!request_stop} / {!stop_requested} /
    {!reset_stop} below are aliases kept for existing callers. *)

type report = {
  stats : Once4all.Fuzz.stats;
      (** merged totals; findings in shard (= campaign tick) order *)
  clusters : Once4all.Dedup.cluster list;
  found_bug_ids : string list;  (** distinct ground-truth ids, sorted *)
  coverage : (string * int) list;
      (** merged {!O4a_coverage.Coverage.export} of the whole campaign *)
  coverage_zeal : O4a_coverage.Coverage.snapshot;
  coverage_cove : O4a_coverage.Coverage.snapshot;
  shards_total : int;
  shards_run : int;  (** executed by this process *)
  shards_resumed : int;  (** taken from the checkpoint *)
  interrupted : bool;  (** [stop_after] left shards unexecuted *)
  promoted : O4a_trace.Trace.promoted list;
      (** oracle-promoted traces in shard (= campaign tick) order; empty
          unless [trace_dir] was given *)
  bundles_written : int;  (** repro bundles written under [trace_dir] *)
  quarantined : Checkpoint.quarantine list;
      (** shards that exhausted their chaos retries, in shard order; their
          ticks are excluded from [stats] (degraded-mode merge) *)
  shard_retries : int;  (** tainted attempts that were retried *)
  faults_injected : int;  (** faults fired across all attempts *)
  health : O4a_health.Health.entry list;
      (** merged per-(solver, theory) health counters from every merged
          shard, sorted; empty when [health] was not given *)
  profile : O4a_profile.Profile.t;
      (** merged per-stage profile from the shards this process executed
          (resumed shards contribute nothing — checkpoints carry no
          profile); {!O4a_profile.Profile.empty} unless [profiling] was set.
          Its {!O4a_profile.Profile.strip_timing} projection is identical at
          any [jobs] *)
  analytics : O4a_analytics.Analytics.t;
      (** merged campaign time series — one sample per merged shard plus the
          yield-attribution table; always recorded (the ledger is cheap) and
          byte-identical at any [jobs]. Resumed shards contribute through
          the checkpoint, so an interrupted-and-resumed campaign's series
          equals the uninterrupted one's *)
  plateaus : O4a_analytics.Analytics.plateau list;
      (** saturation verdicts over the final series
          ({!O4a_analytics.Analytics.plateaus} at the default window) *)
  stopped : bool;
      (** a graceful stop ({!request_stop}) drained the campaign before all
          planned shards ran; everything merged so far is checkpointed *)
}

(** {1 Graceful shutdown}

    A process-wide stop flag, designed to be raised from a signal handler:
    workers finish the shard they are executing but claim no new ones, the
    merge owner drains and checkpoints what completed, and {!run} returns a
    partial report with [stopped = true]. Because stopping always lands on a
    shard boundary, resuming from the checkpoint reproduces the
    uninterrupted campaign byte-for-byte. *)

val request_stop : unit -> bool
(** Raise the stop flag. [true] if this call was the one that raised it —
    lets a signal handler escalate: first signal stops gracefully, second
    aborts. Async-signal-safe (a single atomic exchange). *)

val stop_requested : unit -> bool

val reset_stop : unit -> unit
(** Lower the flag — for tests that run several campaigns in one process. *)

val default_shard_size : int

(** {1 The pluggable shard pipeline}

    {!run} below is one assembly of these pieces: a shard source (the
    campaign's own plan), {!exec_shard} on a private worker pool, and a
    {!Merge.t} sink on the calling domain. The campaign server assembles the
    same pieces differently — one {!exec_env}/{!Merge.t} pair per submitted
    job, shards from many jobs interleaved on one shared pool. Because a
    shard outcome is a pure function of [(env, shard)] and merging is
    order-independent, both assemblies land every campaign on the same
    report. *)

type exec_env
(** Everything needed to execute one shard of a campaign — and nothing about
    which worker pool runs it or where the results merge. *)

val make_env :
  ?config:Once4all.Fuzz.config ->
  ?tel_enabled:bool ->
  ?tracing:bool ->
  ?ring_size:int ->
  ?chaos:O4a_faults.Faults.plan ->
  ?health:O4a_health.Health.config ->
  ?profiling:bool ->
  ?gen_profile:string ->
  ?engines:(unit -> Solver.Engine.t * Solver.Engine.t) ->
  seed:int ->
  generators:Gensynth.Generator.t list ->
  seeds:Smtlib.Script.t list ->
  unit ->
  exec_env
(** The optional arguments mirror {!run}'s (same defaults); [tel_enabled]
    decides whether workers buffer events for forwarding, [tracing] whether
    they record traces. A [chaos] plan whose profile is [Off] is normalized
    to no plan. [gen_profile] (default [""]) labels the analytics yield
    table with the LLM generator profile; {!run} derives it from the
    ["profile"] provenance extra. *)

(** Everything one clean shard execution hands the merge owner. Concrete so
    the campaign server's wire layer can ship it between hosts — a remote
    worker's payload must absorb exactly like a local one. *)
type shard_payload = {
  sr : Checkpoint.shard_result;
  events : O4a_telemetry.Event.t list;
  metric_entries : O4a_telemetry.Metrics.entry list;
  cov_export : (string * int) list;
  promoted : O4a_trace.Trace.promoted list;
  health_export : O4a_health.Health.entry list;
  profile_export : O4a_profile.Profile.t;
  analytics_export : O4a_analytics.Analytics.t;
}

type attempt_log = { attempt : int; fired : O4a_faults.Faults.site list }
(** One failed attempt at a shard: which faults fired before it was
    discarded. *)

(** Result of one supervised shard execution — produced by {!exec_shard},
    consumed by {!Merge.absorb} (possibly after a round trip through
    {!O4a_server}'s wire codecs). *)
type shard_outcome =
  | Merged of shard_payload * attempt_log list * O4a_faults.Faults.site list
      (** clean result, after the listed tainted attempts were retried; the
          final site list is the non-tainting faults (sick-solver hangs)
          that fired during the merged attempt itself *)
  | Quarantined of attempt_log list
      (** every attempt was tainted; results discarded, ticks reported *)
  | Failed of string  (** a genuine (non-injected) worker exception *)

val exec_shard :
  env:exec_env ->
  worker_id:int ->
  zeal:Solver.Engine.t ->
  cove:Solver.Engine.t ->
  Shard.t ->
  shard_outcome
(** Execute one shard under the env's chaos supervision. Safe to call from
    any domain; [zeal]/[cove] are the calling worker's private engines
    (profiled envs ignore them and build factory-fresh ones per attempt).
    The outcome is a pure function of [(env, shard)] — independent of
    [worker_id] (a telemetry label), of which domain runs it, and of
    whatever else that domain ran before. *)

(** The per-campaign merge accumulator: single-owner, order-independent.
    Whichever domain creates a [Merge.t] is the only one that may touch it;
    worker outcomes arrive in completion order, and everything absorbed is
    either commutative (counters, coverage, health) or re-canonicalized by
    shard index in {!Merge.finalize}, so the report never depends on
    interleaving. *)
module Merge : sig
  type t

  val create :
    env:exec_env ->
    tel:O4a_telemetry.Telemetry.t ->
    ?checkpoint_path:string ->
    ?base:Checkpoint.t ->
    ?on_progress:(O4a_profile.Hud.progress -> unit) ->
    jobs:int ->
    budget:int ->
    shard_size:int ->
    extra:(string * string) list ->
    unit ->
    t
  (** Emits the [campaign.start] event (call {!Solver.Engine.prewarm}
      first). [base] seeds the accumulator with a resumed checkpoint's
      completed/quarantined shards and coverage; [jobs] is provenance for
      the start event only. *)

  val absorb : t -> Shard.t -> shard_outcome -> unit
  (** Merge one outcome: forward its worker events (tagged with the shard),
      fold its counters/coverage/health/profile/analytics, record
      quarantines, run plateau detection over the contiguous settled shard
      prefix (emitting ["analytics.plateau"] at most once per series, at a
      point independent of completion order), then checkpoint (chaos may
      tear the write — it is verified and retried) and fire the progress
      callback. Owner domain only. *)

  val analytics_snapshot : t -> O4a_analytics.Analytics.t
  (** The series merged so far — the live [metrics] exposition reads this
      between shards; a pure snapshot, observing it perturbs nothing. Owner
      domain only. *)

  val processed : t -> int
  (** Outcomes absorbed so far (excluding shards resumed from [base]). *)

  val failed : t -> bool
  (** A genuine (non-injected) worker failure was absorbed;
      {!finalize} will raise. *)

  val notify_progress : t -> unit
  (** Fire the progress callback with current merged state — {!run} calls
      it once before any shard executes so HUDs render an initial frame. *)

  val checkpoint_now : t -> unit
  (** Plain checkpoint write, bypassing chaos supervision — for the
      before-any-shard-runs save and for server-side pause. *)

  val finalize :
    ?trace_dir:string -> interrupted:bool -> stopped:bool -> t -> report
  (** Canonicalize (findings, promoted traces, and quarantines re-sorted by
      shard index), write repro bundles under [trace_dir], emit
      [campaign.end], and build the report. Raises [Failure] describing the
      first failed shard if any worker failure was absorbed. *)
end

val run :
  ?jobs:int ->
  ?shard_size:int ->
  ?config:Once4all.Fuzz.config ->
  ?telemetry:O4a_telemetry.Telemetry.t ->
  ?checkpoint_path:string ->
  ?resume:bool ->
  ?stop_after:int ->
  ?extra:(string * string) list ->
  ?engines:(unit -> Solver.Engine.t * Solver.Engine.t) ->
  ?trace_dir:string ->
  ?ring_size:int ->
  ?chaos:O4a_faults.Faults.plan ->
  ?health:O4a_health.Health.config ->
  ?profiling:bool ->
  ?on_progress:(O4a_profile.Hud.progress -> unit) ->
  seed:int ->
  budget:int ->
  generators:Gensynth.Generator.t list ->
  seeds:Smtlib.Script.t list ->
  unit ->
  report
(** Run a sharded campaign of [budget] tests.

    - [jobs] (default 1): worker domains. The report is identical for every
      value; only wall-clock changes.
    - [shard_size] (default {!default_shard_size}): ticks per shard. Part of
      the campaign's provenance — changing it changes the shard RNG streams,
      so it must match across resumes (and between runs being compared).
    - [checkpoint_path]: serialize progress here after every merged shard.
    - [resume]: load [checkpoint_path] first and skip its completed shards.
      Fails if the checkpoint's [(seed, budget, shard_size)] differ.
    - [stop_after]: execute at most this many shards, then return (with
      [interrupted = true] if work remains) — the hook used to exercise the
      kill/resume path deterministically.
    - [extra]: opaque provenance stored in the checkpoint (defaults to the
      resumed checkpoint's own [extra] when resuming).
    - [engines]: fresh engine pair factory, called once per worker (default
      trunk Zeal + Cove). Engines carry unsynchronized per-query state and
      must never be shared across workers.
    - [generators] are shared across workers: they are immutable after
      construction.
    - [trace_dir]: enable provenance tracing ({!O4a_trace.Trace}) and write a
      repro bundle per promoted trace under this directory at the merge
      barrier, in shard order. Trace ids derive from [(seed, tick)] and
      traces record no wall-clock, so the bundle set is byte-identical for
      every [jobs]. Checkpoints do not carry promoted traces: a resumed
      campaign only writes bundles for the shards it actually executes.
    - [ring_size]: per-shard flight-recorder depth (default
      {!O4a_trace.Trace.Recorder.default_ring_size}).
    - [chaos]: deterministic fault-injection plan. [None] (and a plan whose
      profile is [Off]) injects nothing and skips supervision entirely. The
      plan is pure, so the same plan gives the same injections, retries, and
      quarantines at any [jobs] and across resume.
    - [health]: per-(solver, theory) circuit-breaker configuration
      ({!O4a_health.Health.config}). Each shard attempt runs under a fresh
      health ledger (the coverage-ledger pattern), so breaker trips depend
      only on (seed, shard, attempt) and the campaign report — including
      which findings are tagged degraded — is identical at any [jobs].
      [None] disables breakers entirely and changes nothing about existing
      campaigns.
    - [profiling]: run each shard under a fresh {!O4a_profile.Profile}
      ledger (the coverage-ledger pattern) and merge the exports into the
      report's [profile]. Profiling only samples counters at span
      boundaries — it never changes what the campaign computes.
    - [on_progress]: called by the merge owner once before any shard runs
      and again after every merged (or quarantined) shard, with a snapshot
      of already-merged state — the live-HUD hook. The callback runs on the
      calling domain, must not raise, and observes the campaign without
      perturbing it: a run with a callback produces byte-identical reports
      and telemetry to one without.

    Raises [Failure] if any shard raises a non-injected exception (after
    merging and checkpointing the shards that did finish). *)

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving map over a domain pool ([jobs] <= 1 degrades to
    [List.map]). [f] must be safe to call from any domain. Used by the
    experiment harnesses to fan out independent campaign runs. *)
