(* One process-wide flag: signal handlers (and tests) raise it, workers check
   it before claiming another shard. Stopping therefore always lands on a
   shard boundary — every shard is either fully merged and checkpointed or
   not started — which is exactly the granularity resume already handles, so
   a stopped-then-resumed campaign is byte-identical to an uninterrupted
   one. *)
let flag = Atomic.make false
let request () = not (Atomic.exchange flag true)
let requested () = Atomic.get flag
let reset () = Atomic.set flag false

(* First SIGINT/SIGTERM: raise the stop flag — workers drain at the next
   shard boundary, checkpoints and partial reports are flushed, and the
   process exits 0. A second signal aborts immediately with the conventional
   interrupted status. One definition serves fuzz, resume, and serve: every
   long-running entry point honors the same two-signal contract. *)
let install_handlers () =
  let handle _ = if not (request ()) then exit 130 in
  List.iter
    (fun signal ->
      try Sys.set_signal signal (Sys.Signal_handle handle)
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigterm; Sys.sigint ]
