module Rng = O4a_util.Rng

type t = { index : int; first_tick : int; ticks : int }

let plan ~budget ~shard_size =
  if budget < 0 then invalid_arg "Shard.plan: negative budget";
  if shard_size <= 0 then invalid_arg "Shard.plan: shard_size must be positive";
  let rec go acc index first =
    if first >= budget then List.rev acc
    else (
      let ticks = min shard_size (budget - first) in
      go ({ index; first_tick = first; ticks } :: acc) (index + 1) (first + ticks))
  in
  go [] 0 0

let rng ~seed t = Rng.split_indexed ~seed ~index:t.index
