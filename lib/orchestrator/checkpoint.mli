(** Campaign checkpoints: everything needed to resume an interrupted sharded
    campaign and land on the exact same final report.

    A checkpoint records the campaign's RNG provenance (seed, budget, shard
    size — together these determine the shard plan and every shard's RNG),
    the results of every completed shard, and the coverage merged from those
    shards. {!Orchestrator.run} refuses to resume from a checkpoint whose
    provenance differs from the requested campaign, because the remaining
    shards would then not line up with the completed ones. *)

type shard_result = {
  shard : int;
  tests : int;
  parse_ok : int;
  solved : int;
  bytes_total : int;
  findings : Once4all.Dedup.found list;  (** oldest first, as the shard found them *)
}

type t = {
  seed : int;
  budget : int;
  shard_size : int;
  extra : (string * string) list;
      (** opaque caller provenance (the CLI stores its seed/profile flags
          here so [resume] can rebuild the same generator pool) *)
  completed : shard_result list;
  coverage : (string * int) list;
      (** merged {!O4a_coverage.Coverage.export} of the completed shards *)
}

val to_json : t -> O4a_telemetry.Json.t
val of_json : O4a_telemetry.Json.t -> (t, string) result

val save : path:string -> t -> unit
(** Atomic: writes [path ^ ".tmp"] then renames over [path], so an interrupt
    mid-write never corrupts the previous checkpoint. *)

val load : path:string -> (t, string) result
