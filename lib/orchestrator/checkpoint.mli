(** Campaign checkpoints: everything needed to resume an interrupted sharded
    campaign and land on the exact same final report.

    A checkpoint records the campaign's RNG provenance (seed, budget, shard
    size — together these determine the shard plan and every shard's RNG),
    the results of every completed shard, and the coverage merged from those
    shards. {!Orchestrator.run} refuses to resume from a checkpoint whose
    provenance differs from the requested campaign, because the remaining
    shards would then not line up with the completed ones. *)

type shard_result = {
  shard : int;
  tests : int;
  parse_ok : int;
  solved : int;
  bytes_total : int;
  findings : Once4all.Dedup.found list;  (** oldest first, as the shard found them *)
}

(** A shard that exhausted its chaos retries: its results were discarded and
    its tick range is reported instead of merged. Site names are
    {!Faults.site_name} strings, distinct, sorted. *)
type quarantine = {
  q_shard : int;
  q_first_tick : int;
  q_ticks : int;
  q_attempts : int;  (** attempts made before giving up *)
  q_sites : string list;  (** fault sites that fired across those attempts *)
}

(** Which observability artifacts the campaign that wrote the checkpoint
    was recording — what a resume re-arms (given the matching flags) versus
    what it would start cold. [checkpoint info] prints these. *)
type artifacts = {
  a_telemetry : bool;  (** a JSONL telemetry sink was attached *)
  a_trace : bool;  (** provenance tracing / repro bundles were on *)
  a_analytics : bool;  (** the analytics series below is being extended *)
}

val no_artifacts : artifacts

type t = {
  seed : int;
  budget : int;
  shard_size : int;
  extra : (string * string) list;
      (** opaque caller provenance (the CLI stores its seed/profile flags
          here so [resume] can rebuild the same generator pool) *)
  completed : shard_result list;
  quarantined : quarantine list;
      (** shards the supervision layer gave up on; resume skips them too *)
  coverage : (string * int) list;
      (** merged {!O4a_coverage.Coverage.export} of the completed shards *)
  health : O4a_health.Health.entry list;
      (** merged {!O4a_health.Health.export} of the completed shards; empty
          when loaded from a pre-v3 checkpoint *)
  analytics : O4a_analytics.Analytics.t;
      (** merged campaign time series of the completed shards; empty when
          loaded from a pre-v4 checkpoint *)
  artifacts : artifacts;  (** all-false when loaded from a pre-v4 file *)
}

val to_json : t -> O4a_telemetry.Json.t
val of_json : O4a_telemetry.Json.t -> (t, string) result

val shard_result_to_json : shard_result -> O4a_telemetry.Json.t
val shard_result_of_json :
  O4a_telemetry.Json.t -> (shard_result, string) result
(** The per-shard codec on its own: the distributed campaign fabric ships a
    remote worker's shard result over the wire in exactly the encoding the
    checkpoint persists, so the two can never drift. *)

val save : path:string -> t -> unit
(** Atomic: writes [path ^ ".tmp"] then renames over [path], so an interrupt
    mid-write never corrupts the previous checkpoint. *)

(** Why a checkpoint file could not be loaded. [Corrupt] means the bytes are
    not one well-formed JSON document — the classic torn/truncated write —
    and names the byte offset where parsing gave up; [Invalid] means the JSON
    is well-formed but not a checkpoint this version understands. *)
type load_error =
  | Io of string
  | Corrupt of { offset : int; reason : string }
  | Invalid of string

val load_error_to_string : path:string -> load_error -> string
(** One clean printable diagnostic (may span two lines for [Corrupt], where
    it also suggests a remedy). *)

val load : path:string -> (t, load_error) result

type info = {
  i_version : int;
      (** the version the file was written at — {!load} upgrades older
          versions transparently, [inspect] preserves the original *)
  i_checkpoint : t;
}

val inspect : path:string -> (info, load_error) result
(** Like {!load} but also reports the on-disk format version — the
    [checkpoint info] subcommand's entry point. Shares {!load}'s typed
    diagnostics, so a torn or invalid file gets the same printable
    explanation instead of an exception. *)
