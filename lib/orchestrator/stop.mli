(** The process-wide graceful-stop flag and the two-signal shutdown contract
    shared by every long-running entry point ([fuzz], [resume], [serve]).

    The flag is designed to be raised from a signal handler: workers finish
    the shard they are executing but claim no new ones, merge owners drain
    and checkpoint what completed, and the process exits 0 with a resume
    hint. Because stopping always lands on a shard boundary, resuming from
    the checkpoint reproduces the uninterrupted campaign byte-for-byte. *)

val request : unit -> bool
(** Raise the stop flag. [true] if this call was the one that raised it —
    lets a signal handler escalate: first signal stops gracefully, second
    aborts. Async-signal-safe (a single atomic exchange). *)

val requested : unit -> bool

val reset : unit -> unit
(** Lower the flag — for tests that run several campaigns in one process. *)

val install_handlers : unit -> unit
(** Install the two-signal contract on SIGTERM and SIGINT: the first signal
    calls {!request} (graceful drain), the second exits 130 immediately.
    Safe to call in environments where the signals cannot be trapped (the
    handlers are then simply not installed). *)
