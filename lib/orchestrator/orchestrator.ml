module Shard = Shard
module Checkpoint = Checkpoint
module Rng = O4a_util.Rng
module Telemetry = O4a_telemetry.Telemetry
module Metrics = O4a_telemetry.Metrics
module Sink = O4a_telemetry.Sink
module Event = O4a_telemetry.Event
module Json = O4a_telemetry.Json
module Coverage = O4a_coverage.Coverage
module Engine = Solver.Engine
module Fuzz = Once4all.Fuzz
module Dedup = Once4all.Dedup
module Trace = O4a_trace.Trace
module Bundle = O4a_trace.Bundle

let log_src =
  Logs.Src.create "once4all.orchestrator" ~doc:"Parallel campaign orchestrator"

module Log = (val Logs.src_log log_src : Logs.LOG)

type report = {
  stats : Fuzz.stats;
  clusters : Dedup.cluster list;
  found_bug_ids : string list;
  coverage : (string * int) list;
  coverage_zeal : Coverage.snapshot;
  coverage_cove : Coverage.snapshot;
  shards_total : int;
  shards_run : int;
  shards_resumed : int;
  interrupted : bool;
  promoted : Trace.promoted list;
  bundles_written : int;
}

(* ------------------------------------------------------------------ *)
(* Generic parallel map                                                *)
(* ------------------------------------------------------------------ *)

let parallel_map ?(jobs = 1) f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then List.map f xs
  else (
    let out = Array.make n None in
    let next = Atomic.make 0 in
    let err : exn option Atomic.t = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then (
          (try out.(i) <- Some (f arr.(i))
           with e -> ignore (Atomic.compare_and_set err None (Some e)));
          loop ())
      in
      loop ()
    in
    let domains = List.init jobs (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains;
    (match Atomic.get err with Some e -> raise e | None -> ());
    Array.to_list (Array.map Option.get out))

(* ------------------------------------------------------------------ *)
(* One shard, in isolation                                             *)
(* ------------------------------------------------------------------ *)

type shard_payload = {
  sr : Checkpoint.shard_result;
  events : Event.t list;
  metric_entries : Metrics.entry list;
  cov_export : (string * int) list;
  promoted : Trace.promoted list;
}

let run_one_shard ~worker_id ~tel_enabled ~tracing ~ring_size ~config
    ~generators ~seeds ~zeal ~cove ~seed shard =
  let wtel =
    if tel_enabled then
      Telemetry.create ~sink:(Sink.memory ())
        ~clock:(Telemetry.monotonic_clock ())
        ~labels:[ ("worker", string_of_int worker_id) ]
        ()
    else Telemetry.disabled
  in
  (* one flight recorder per shard: trace ids come from (seed, tick), so a
     recorder carries no cross-shard state and promoted traces merge by
     shard order *)
  let recorder =
    if tracing then Trace.Recorder.create ?ring_size ~seed ()
    else Trace.Recorder.disabled
  in
  let ledger = Coverage.make_ledger () in
  let rng = Shard.rng ~seed shard in
  let stats =
    Coverage.with_ledger ledger (fun () ->
        Telemetry.using wtel (fun () ->
            Trace.Recorder.using recorder (fun () ->
                Fuzz.run_shard ~rng ~config ~telemetry:wtel
                  ~shard_index:shard.Shard.index
                  ~first_tick:shard.Shard.first_tick ~generators ~seeds ~zeal
                  ~cove ~budget:shard.Shard.ticks ())))
  in
  {
    sr =
      {
        Checkpoint.shard = shard.Shard.index;
        tests = stats.Fuzz.tests;
        parse_ok = stats.Fuzz.parse_ok;
        solved = stats.Fuzz.solved;
        bytes_total = stats.Fuzz.bytes_total;
        findings = stats.Fuzz.findings;
      };
    events = (if tel_enabled then Sink.events (Telemetry.sink wtel) else []);
    metric_entries = (if tel_enabled then Telemetry.snapshot wtel else []);
    cov_export = Coverage.export ledger;
    promoted = Trace.Recorder.promoted recorder;
  }

(* ------------------------------------------------------------------ *)
(* The campaign                                                        *)
(* ------------------------------------------------------------------ *)

let default_shard_size = 250

let take n xs =
  let rec go acc n = function
    | x :: rest when n > 0 -> go (x :: acc) (n - 1) rest
    | _ -> List.rev acc
  in
  go [] n xs

let load_base ~resume ~checkpoint_path ~seed ~budget ~shard_size =
  if not resume then None
  else (
    match checkpoint_path with
    | None -> invalid_arg "Orchestrator.run: resume requires a checkpoint path"
    | Some path -> (
      match Checkpoint.load ~path with
      | Error msg -> failwith (Printf.sprintf "cannot resume from %s: %s" path msg)
      | Ok cp ->
        if cp.Checkpoint.seed <> seed || cp.Checkpoint.budget <> budget
           || cp.Checkpoint.shard_size <> shard_size
        then
          failwith
            (Printf.sprintf
               "cannot resume from %s: checkpoint is for seed %d budget %d \
                shard-size %d, requested seed %d budget %d shard-size %d"
               path cp.Checkpoint.seed cp.Checkpoint.budget
               cp.Checkpoint.shard_size seed budget shard_size);
        Some cp))

let run ?(jobs = 1) ?(shard_size = default_shard_size)
    ?(config = Fuzz.default_config) ?telemetry ?checkpoint_path
    ?(resume = false) ?stop_after ?(extra = []) ?engines ?trace_dir ?ring_size
    ~seed ~budget ~generators ~seeds () =
  if jobs < 1 then invalid_arg "Orchestrator.run: jobs must be >= 1";
  let tel = match telemetry with Some t -> t | None -> Telemetry.global () in
  let engines =
    match engines with
    | Some f -> f
    | None -> fun () -> (Engine.zeal (), Engine.cove ())
  in
  let base = load_base ~resume ~checkpoint_path ~seed ~budget ~shard_size in
  let base_completed =
    match base with Some cp -> cp.Checkpoint.completed | None -> []
  in
  let extra =
    match base with Some cp when extra = [] -> cp.Checkpoint.extra | _ -> extra
  in
  let plan = Shard.plan ~budget ~shard_size in
  let done_set =
    List.fold_left
      (fun acc (r : Checkpoint.shard_result) -> r.Checkpoint.shard :: acc)
      [] base_completed
  in
  let remaining =
    List.filter (fun s -> not (List.mem s.Shard.index done_set)) plan
  in
  let to_run =
    match stop_after with Some k -> take (max 0 k) remaining | None -> remaining
  in
  let interrupted = List.length to_run < List.length remaining in
  (* populate the coverage point tables before any worker races to use them,
     and so that checkpoint merges resolve ids against a full registry *)
  Engine.prewarm ();
  Telemetry.emit tel "campaign.start"
    [
      ("budget", Json.Int budget);
      ("seeds", Json.Int (List.length seeds));
      ("generators", Json.Int (List.length generators));
      ("skeletons", Json.Bool config.Fuzz.use_skeletons);
      ("jobs", Json.Int jobs);
      ("shard_size", Json.Int shard_size);
      ("shards", Json.Int (List.length plan));
      ("resumed_shards", Json.Int (List.length base_completed));
    ];
  let campaign_ledger = Coverage.make_ledger () in
  (match base with
  | Some cp -> Coverage.merge_into ~into:campaign_ledger cp.Checkpoint.coverage
  | None -> ());
  let shard_arr = Array.of_list to_run in
  let n_to_run = Array.length shard_arr in
  let nworkers = max 1 (min jobs n_to_run) in
  (* a single results queue: workers push, the main domain is the only
     consumer — the merge stage has one owner *)
  let queue : (int * (shard_payload, string) Stdlib.result) Queue.t =
    Queue.create ()
  in
  let qmutex = Mutex.create () in
  let qcond = Condition.create () in
  let push r =
    Mutex.protect qmutex (fun () ->
        Queue.push r queue;
        Condition.signal qcond)
  in
  let pop () =
    Mutex.lock qmutex;
    while Queue.is_empty queue do
      Condition.wait qcond qmutex
    done;
    let r = Queue.pop queue in
    Mutex.unlock qmutex;
    r
  in
  let next = Atomic.make 0 in
  let tel_enabled = Telemetry.enabled tel in
  let tracing = trace_dir <> None in
  let worker worker_id () =
    let zeal, cove = engines () in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n_to_run then (
        let shard = shard_arr.(i) in
        (match
           run_one_shard ~worker_id ~tel_enabled ~tracing ~ring_size ~config
             ~generators ~seeds ~zeal ~cove ~seed shard
         with
        | payload -> push (shard.Shard.index, Ok payload)
        | exception e -> push (shard.Shard.index, Error (Printexc.to_string e)));
        loop ())
    in
    loop ()
  in
  let domains =
    if nworkers <= 1 || n_to_run = 0 then (
      (* degenerate case: run the whole queue on this domain, then drain *)
      worker 0 ();
      [])
    else List.init nworkers (fun wid -> Domain.spawn (worker wid))
  in
  (* merge stage: single owner (this domain). Worker payloads arrive in
     completion order; everything merged here is commutative (counters,
     coverage) or re-canonicalized afterwards (findings sorted by shard
     index), so the final report does not depend on that order. *)
  let completed = ref base_completed in
  let promoted_by_shard = ref [] in
  let errors = ref [] in
  let save_checkpoint () =
    match checkpoint_path with
    | None -> ()
    | Some path ->
      Checkpoint.save ~path
        {
          Checkpoint.seed;
          budget;
          shard_size;
          extra;
          completed = !completed;
          coverage = Coverage.export campaign_ledger;
        }
  in
  for _ = 1 to n_to_run do
    match pop () with
    | shard_idx, Error msg -> errors := (shard_idx, msg) :: !errors
    | shard_idx, Ok payload ->
      List.iter
        (fun (e : Event.t) ->
          Telemetry.forward tel
            (Event.make ~ts:e.Event.ts ~name:e.Event.name
               (e.Event.fields @ [ ("shard", Json.Int shard_idx) ])))
        payload.events;
      Telemetry.absorb_metrics tel payload.metric_entries;
      Coverage.merge_into ~into:campaign_ledger payload.cov_export;
      completed := payload.sr :: !completed;
      if payload.promoted <> [] then
        promoted_by_shard := (shard_idx, payload.promoted) :: !promoted_by_shard;
      save_checkpoint ();
      Log.debug (fun m ->
          m "shard %d merged (%d/%d done)" shard_idx (List.length !completed)
            (List.length plan))
  done;
  List.iter Domain.join domains;
  (match List.sort compare !errors with
  | (idx, msg) :: _ ->
    failwith (Printf.sprintf "Orchestrator.run: shard %d failed: %s" idx msg)
  | [] -> ());
  (* canonical order: shard index, i.e. campaign tick order — the merged
     finding stream a sequential run over the same plan would produce *)
  let all_results =
    List.sort
      (fun (a : Checkpoint.shard_result) b ->
        compare a.Checkpoint.shard b.Checkpoint.shard)
      !completed
  in
  let findings =
    List.concat_map (fun (r : Checkpoint.shard_result) -> r.Checkpoint.findings)
      all_results
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 all_results in
  let stats =
    {
      Fuzz.tests = sum (fun r -> r.Checkpoint.tests);
      parse_ok = sum (fun r -> r.Checkpoint.parse_ok);
      solved = sum (fun r -> r.Checkpoint.solved);
      bytes_total = sum (fun r -> r.Checkpoint.bytes_total);
      findings;
    }
  in
  let clusters = Dedup.cluster findings in
  let found_bug_ids =
    findings
    |> List.filter_map (fun (f : Dedup.found) -> f.Dedup.finding.Once4all.Oracle.bug_id)
    |> O4a_util.Listx.dedup |> List.sort compare
  in
  (* promoted traces in shard (= campaign tick) order, like the findings —
     a [--jobs n] campaign writes bundles in the sequential run's order *)
  let promoted =
    !promoted_by_shard
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.concat_map snd
  in
  let bundles_written =
    match trace_dir with
    | None -> 0
    | Some dir ->
      Bundle.ensure_dir dir;
      List.iter (fun p -> ignore (Bundle.write ~dir p)) promoted;
      Telemetry.emit tel "campaign.bundles"
        [
          ("dir", Json.String dir); ("bundles", Json.Int (List.length promoted));
        ];
      List.length promoted
  in
  Telemetry.emit tel "campaign.end" (Fuzz.stats_fields stats);
  Log.info (fun m ->
      m "campaign merged: %d shards (%d resumed), %d tests, %d findings, %d distinct bugs"
        (List.length all_results) (List.length base_completed) stats.Fuzz.tests
        (List.length findings) (List.length found_bug_ids));
  {
    stats;
    clusters;
    found_bug_ids;
    coverage = Coverage.export campaign_ledger;
    coverage_zeal = Coverage.snapshot ~ledger:campaign_ledger Coverage.Zeal;
    coverage_cove = Coverage.snapshot ~ledger:campaign_ledger Coverage.Cove;
    shards_total = List.length plan;
    shards_run = n_to_run - List.length !errors;
    shards_resumed = List.length base_completed;
    interrupted;
    promoted;
    bundles_written;
  }
