module Shard = Shard
module Checkpoint = Checkpoint
module Rng = O4a_util.Rng
module Telemetry = O4a_telemetry.Telemetry
module Metrics = O4a_telemetry.Metrics
module Sink = O4a_telemetry.Sink
module Event = O4a_telemetry.Event
module Json = O4a_telemetry.Json
module Coverage = O4a_coverage.Coverage
module Engine = Solver.Engine
module Fuzz = Once4all.Fuzz
module Dedup = Once4all.Dedup
module Trace = O4a_trace.Trace
module Bundle = O4a_trace.Bundle
module Faults = O4a_faults.Faults
module Health = O4a_health.Health
module Profile = O4a_profile.Profile
module Hud = O4a_profile.Hud

let log_src =
  Logs.Src.create "once4all.orchestrator" ~doc:"Parallel campaign orchestrator"

module Log = (val Logs.src_log log_src : Logs.LOG)

type report = {
  stats : Fuzz.stats;
  clusters : Dedup.cluster list;
  found_bug_ids : string list;
  coverage : (string * int) list;
  coverage_zeal : Coverage.snapshot;
  coverage_cove : Coverage.snapshot;
  shards_total : int;
  shards_run : int;
  shards_resumed : int;
  interrupted : bool;
  promoted : Trace.promoted list;
  bundles_written : int;
  quarantined : Checkpoint.quarantine list;
  shard_retries : int;
  faults_injected : int;
  health : Health.entry list;
  profile : Profile.t;
  stopped : bool;
}

(* ------------------------------------------------------------------ *)
(* Graceful shutdown                                                   *)
(* ------------------------------------------------------------------ *)

(* One process-wide flag: signal handlers (and tests) raise it, workers check
   it before claiming another shard. Stopping therefore always lands on a
   shard boundary — every shard is either fully merged and checkpointed or
   not started — which is exactly the granularity resume already handles, so
   a stopped-then-resumed campaign is byte-identical to an uninterrupted
   one. *)
let stop_flag = Atomic.make false
let request_stop () = not (Atomic.exchange stop_flag true)
let stop_requested () = Atomic.get stop_flag
let reset_stop () = Atomic.set stop_flag false

(* ------------------------------------------------------------------ *)
(* Generic parallel map                                                *)
(* ------------------------------------------------------------------ *)

let parallel_map ?(jobs = 1) f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then List.map f xs
  else (
    let out = Array.make n None in
    let next = Atomic.make 0 in
    let err : exn option Atomic.t = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then (
          (try out.(i) <- Some (f arr.(i))
           with e -> ignore (Atomic.compare_and_set err None (Some e)));
          loop ())
      in
      loop ()
    in
    let domains = List.init jobs (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains;
    (match Atomic.get err with Some e -> raise e | None -> ());
    Array.to_list (Array.map Option.get out))

(* ------------------------------------------------------------------ *)
(* One shard, in isolation                                             *)
(* ------------------------------------------------------------------ *)

type shard_payload = {
  sr : Checkpoint.shard_result;
  events : Event.t list;
  metric_entries : Metrics.entry list;
  cov_export : (string * int) list;
  promoted : Trace.promoted list;
  health_export : Health.entry list;
  profile_export : Profile.t;
}

let run_one_shard ~worker_id ~tel_enabled ~tracing ~ring_size ~config
    ~generators ~seeds ~zeal ~cove ~seed ~health ~profiling shard =
  let wtel =
    if tel_enabled then
      Telemetry.create ~sink:(Sink.memory ())
        ~clock:(Telemetry.monotonic_clock ())
        ~labels:[ ("worker", string_of_int worker_id) ]
        ()
    else Telemetry.disabled
  in
  (* one flight recorder per shard: trace ids come from (seed, tick), so a
     recorder carries no cross-shard state and promoted traces merge by
     shard order *)
  let recorder =
    if tracing then Trace.Recorder.create ?ring_size ~seed ()
    else Trace.Recorder.disabled
  in
  let ledger = Coverage.make_ledger () in
  (* like the coverage ledger, the health ledger is fresh per shard attempt:
     breaker windows never straddle a shard boundary, so trips depend only on
     (seed, shard, attempt) and are identical at any --jobs N — and a tainted
     attempt discards its ledger wholesale along with everything else *)
  let hledger =
    match health with
    | Some cfg -> Health.make_ledger cfg
    | None -> Health.disabled
  in
  (* the profile ledger follows the coverage/health pattern: fresh per shard
     attempt, ambient on the worker domain, merged commutatively at the
     barrier. It wraps only the fuzz loop itself — per-shard setup (engine
     state, telemetry handle, recorder) stays outside, which is part of what
     keeps the deterministic projection identical at any --jobs N. *)
  let pledger = if profiling then Profile.make_ledger () else Profile.disabled in
  let rng = Shard.rng ~seed shard in
  let stats =
    Coverage.with_ledger ledger (fun () ->
        Telemetry.using wtel (fun () ->
            Trace.Recorder.using recorder (fun () ->
                Health.using hledger (fun () ->
                    Profile.using pledger (fun () ->
                        Fuzz.run_shard ~rng ~config ~telemetry:wtel
                          ~shard_index:shard.Shard.index
                          ~first_tick:shard.Shard.first_tick ~generators ~seeds
                          ~zeal ~cove ~budget:shard.Shard.ticks ())))))
  in
  {
    sr =
      {
        Checkpoint.shard = shard.Shard.index;
        tests = stats.Fuzz.tests;
        parse_ok = stats.Fuzz.parse_ok;
        solved = stats.Fuzz.solved;
        bytes_total = stats.Fuzz.bytes_total;
        findings = stats.Fuzz.findings;
      };
    events = (if tel_enabled then Sink.events (Telemetry.sink wtel) else []);
    metric_entries = (if tel_enabled then Telemetry.snapshot wtel else []);
    cov_export = Coverage.export ledger;
    promoted = Trace.Recorder.promoted recorder;
    health_export = Health.export hledger;
    profile_export = Profile.export pledger;
  }

(* ------------------------------------------------------------------ *)
(* Supervision                                                         *)
(* ------------------------------------------------------------------ *)

(* one failed attempt at a shard: which faults fired before it was given up *)
type attempt_log = { attempt : int; fired : Faults.site list }

type shard_outcome =
  | Merged of shard_payload * attempt_log list * Faults.site list
      (** clean result, after the listed tainted attempts were retried; the
          final site list is the non-tainting faults (sick-solver hangs)
          that fired during the merged attempt itself *)
  | Quarantined of attempt_log list
      (** every attempt was tainted; results discarded, ticks reported *)
  | Failed of string  (** a genuine (non-injected) worker exception *)

(* What workers push to the single-owner merge queue. The sentinel lets the
   merge loop count live workers instead of expected shards, which is what
   makes early stop (graceful shutdown) drain cleanly. *)
type merge_msg = Msg_shard of Shard.t * shard_outcome | Msg_worker_done

(* Retry a shard until an attempt completes with zero tainting faults. Any
   tainting fault spoils the whole attempt — even one whose effect was merely
   a wrong solver answer — because only all-or-nothing discarding guarantees
   that the merged payload is byte-identical to the fault-free run's. (The
   sick-solver profile is the exception: its hangs are the subject under test
   for the health layer, so they merge.) The fault plan re-rolls per attempt
   (with decayed probability), so a retried shard is a pure function of
   (plan, shard index, attempt): the supervision outcome is the same at any
   --jobs N and on resume. *)
(* An injected fault can escape through a [Fun.protect] cleanup (e.g. a
   telemetry span emitting its end event into a faulted sink), arriving
   wrapped in [Fun.Finally_raised] — possibly several layers deep. *)
let rec is_injected = function
  | Faults.Injected _ -> true
  | Fun.Finally_raised e -> is_injected e
  | _ -> false

let run_supervised ~chaos ~run_attempt shard_index =
  match chaos with
  | None -> (
    match run_attempt () with
    | payload -> Merged (payload, [], [])
    | exception e -> Failed (Printexc.to_string e))
  | Some plan ->
    let rec go attempt failed_rev =
      let inj = Faults.Injector.create plan ~shard:shard_index ~attempt in
      let result =
        match Faults.using inj run_attempt with
        | payload -> Ok payload
        | exception e when is_injected e -> Error `Injected
        | exception e -> Error (`Fatal (Printexc.to_string e))
      in
      let fired = Faults.Injector.fired inj in
      let tainting = List.filter (Faults.taints plan) fired in
      match result with
      | Error (`Fatal msg) -> Failed msg
      | Ok payload when tainting = [] ->
        Merged (payload, List.rev failed_rev, fired)
      | Ok _ | Error `Injected ->
        let log = { attempt; fired } in
        if attempt >= Faults.max_retries then
          Quarantined (List.rev (log :: failed_rev))
        else (
          ignore (Faults.backoff ~attempt);
          go (attempt + 1) (log :: failed_rev))
    in
    go 0 []

let quarantine_of_logs (shard : Shard.t) logs =
  {
    Checkpoint.q_shard = shard.Shard.index;
    q_first_tick = shard.Shard.first_tick;
    q_ticks = shard.Shard.ticks;
    q_attempts = List.length logs;
    q_sites =
      logs
      |> List.concat_map (fun l -> List.map Faults.site_name l.fired)
      |> O4a_util.Listx.dedup |> List.sort compare;
  }

(* ------------------------------------------------------------------ *)
(* The campaign                                                        *)
(* ------------------------------------------------------------------ *)

let default_shard_size = 250

let take n xs =
  let rec go acc n = function
    | x :: rest when n > 0 -> go (x :: acc) (n - 1) rest
    | _ -> List.rev acc
  in
  go [] n xs

let load_base ~resume ~checkpoint_path ~seed ~budget ~shard_size =
  if not resume then None
  else (
    match checkpoint_path with
    | None -> invalid_arg "Orchestrator.run: resume requires a checkpoint path"
    | Some path -> (
      match Checkpoint.load ~path with
      | Error err -> failwith (Checkpoint.load_error_to_string ~path err)
      | Ok cp ->
        if cp.Checkpoint.seed <> seed || cp.Checkpoint.budget <> budget
           || cp.Checkpoint.shard_size <> shard_size
        then
          failwith
            (Printf.sprintf
               "cannot resume from %s: checkpoint is for seed %d budget %d \
                shard-size %d, requested seed %d budget %d shard-size %d"
               path cp.Checkpoint.seed cp.Checkpoint.budget
               cp.Checkpoint.shard_size seed budget shard_size);
        Some cp))

let run ?(jobs = 1) ?(shard_size = default_shard_size)
    ?(config = Fuzz.default_config) ?telemetry ?checkpoint_path
    ?(resume = false) ?stop_after ?(extra = []) ?engines ?trace_dir ?ring_size
    ?chaos ?health ?(profiling = false) ?on_progress ~seed ~budget ~generators
    ~seeds () =
  if jobs < 1 then invalid_arg "Orchestrator.run: jobs must be >= 1";
  let chaos =
    match chaos with Some p when Faults.enabled p -> Some p | _ -> None
  in
  let tel = match telemetry with Some t -> t | None -> Telemetry.global () in
  let engines =
    match engines with
    | Some f -> f
    | None -> fun () -> (Engine.zeal (), Engine.cove ())
  in
  let base = load_base ~resume ~checkpoint_path ~seed ~budget ~shard_size in
  let base_completed =
    match base with Some cp -> cp.Checkpoint.completed | None -> []
  in
  let base_quarantined =
    match base with Some cp -> cp.Checkpoint.quarantined | None -> []
  in
  let extra =
    match base with Some cp when extra = [] -> cp.Checkpoint.extra | _ -> extra
  in
  let plan = Shard.plan ~budget ~shard_size in
  (* quarantined shards count as handled: resume must not re-run them, or the
     resumed report would diverge from the uninterrupted chaos run *)
  let done_set =
    List.fold_left
      (fun acc (q : Checkpoint.quarantine) -> q.Checkpoint.q_shard :: acc)
      (List.fold_left
         (fun acc (r : Checkpoint.shard_result) -> r.Checkpoint.shard :: acc)
         [] base_completed)
      base_quarantined
  in
  let remaining =
    List.filter (fun s -> not (List.mem s.Shard.index done_set)) plan
  in
  let to_run =
    match stop_after with Some k -> take (max 0 k) remaining | None -> remaining
  in
  let interrupted = List.length to_run < List.length remaining in
  (* populate the coverage point tables before any worker races to use them,
     and so that checkpoint merges resolve ids against a full registry *)
  Engine.prewarm ();
  Telemetry.emit tel "campaign.start"
    [
      ("budget", Json.Int budget);
      ("seeds", Json.Int (List.length seeds));
      ("generators", Json.Int (List.length generators));
      ("skeletons", Json.Bool config.Fuzz.use_skeletons);
      ("jobs", Json.Int jobs);
      ("shard_size", Json.Int shard_size);
      ("shards", Json.Int (List.length plan));
      ("resumed_shards", Json.Int (List.length base_completed));
    ];
  let campaign_ledger = Coverage.make_ledger () in
  (match base with
  | Some cp -> Coverage.merge_into ~into:campaign_ledger cp.Checkpoint.coverage
  | None -> ());
  let shard_arr = Array.of_list to_run in
  let n_to_run = Array.length shard_arr in
  let nworkers = max 1 (min jobs n_to_run) in
  (* a single results queue: workers push, the main domain is the only
     consumer — the merge stage has one owner. Each worker pushes a final
     [Msg_worker_done] sentinel, so the merge loop terminates whether the
     campaign runs to completion or is stopped early by a signal. *)
  let queue : merge_msg Queue.t = Queue.create () in
  let qmutex = Mutex.create () in
  let qcond = Condition.create () in
  let push r =
    Mutex.protect qmutex (fun () ->
        Queue.push r queue;
        Condition.signal qcond)
  in
  let pop () =
    Mutex.lock qmutex;
    while Queue.is_empty queue do
      Condition.wait qcond qmutex
    done;
    let r = Queue.pop queue in
    Mutex.unlock qmutex;
    r
  in
  let next = Atomic.make 0 in
  let tel_enabled = Telemetry.enabled tel in
  let tracing = trace_dir <> None in
  let t_start = Unix.gettimeofday () in
  let attempt ~worker_id ~zeal ~cove shard () =
    (* Per-worker engines accumulate internal state across the shards a
       domain happens to execute, which leaves shard results untouched (the
       resume path already proves a shard run on a fresh engine merges
       identically) but makes per-stage allocation counts depend on the
       shard schedule. Profiled runs therefore give every shard attempt
       factory-fresh engines — constructed here, outside the profile
       ledger's scope, so construction is charged to no stage — keeping
       {!O4a_profile.Profile.strip_timing} byte-identical at any [jobs]. *)
    let zeal, cove = if profiling then engines () else (zeal, cove) in
    run_one_shard ~worker_id ~tel_enabled ~tracing ~ring_size ~config
      ~generators ~seeds ~zeal ~cove ~seed ~health ~profiling shard
  in
  (* backtrace recording is per-domain runtime state: a fresh domain starts
     from the OCAMLRUNPARAM default, silently dropping whatever the
     application (or test harness) enabled on the main domain. Mirror it so
     worker crashes keep their backtraces — and so a raise costs the same
     counted words on every path, keeping the profile's exact allocation
     total identical between the inline (jobs <= 1) and worker paths. *)
  let record_backtraces = Printexc.backtrace_status () in
  let worker worker_id () =
    Printexc.record_backtrace record_backtraces;
    let zeal, cove = engines () in
    let rec loop () =
      (* graceful stop lands on a shard boundary: a worker mid-shard finishes
         and merges it, but no new shard is claimed once the flag is up *)
      if not (stop_requested ()) then (
        let i = Atomic.fetch_and_add next 1 in
        if i < n_to_run then (
          let shard = shard_arr.(i) in
          let run_attempt = attempt ~worker_id ~zeal ~cove shard in
          push
            (Msg_shard (shard, run_supervised ~chaos ~run_attempt shard.Shard.index));
          loop ()))
    in
    loop ();
    push Msg_worker_done
  in
  (* merge stage: single owner (this domain). Worker payloads arrive in
     completion order; everything merged here is commutative (counters,
     coverage) or re-canonicalized afterwards (findings sorted by shard
     index), so the final report does not depend on that order. *)
  let completed = ref base_completed in
  let quarantined = ref base_quarantined in
  let campaign_health =
    ref (match base with Some cp -> cp.Checkpoint.health | None -> [])
  in
  (* profile counters cover the shards this process executed; resumed shards
     contribute nothing (the checkpoint carries no profile) *)
  let campaign_profile = ref Profile.empty in
  let promoted_by_shard = ref [] in
  let errors = ref [] in
  let shard_retries = ref 0 in
  let faults_injected = ref 0 in
  (* merge-time progress snapshot for the HUD callback: a pure function of
     already-merged state, so observing it cannot perturb the campaign *)
  let notify_progress () =
    match on_progress with
    | None -> ()
    | Some f ->
      let sum g = List.fold_left (fun acc r -> acc + g r) 0 !completed in
      f
        {
          Hud.shards_done = List.length !completed + List.length !quarantined;
          shards_total = List.length plan;
          ticks_done = sum (fun (r : Checkpoint.shard_result) -> r.Checkpoint.tests);
          budget;
          findings =
            sum (fun (r : Checkpoint.shard_result) ->
                List.length r.Checkpoint.findings);
          coverage_points = List.length (Coverage.export campaign_ledger);
          quarantined = List.length !quarantined;
          breaker_trips =
            List.fold_left
              (fun acc (e : Health.entry) -> acc + e.Health.opened)
              0 !campaign_health;
          elapsed_s = Unix.gettimeofday () -. t_start;
        }
  in
  (* Supervised save: the Checkpoint_corrupt site tears the write on the main
     domain (a truncated raw dump instead of the atomic write-then-rename),
     then the verify step detects the corruption through the same
     [Checkpoint.load] path [resume] uses and rewrites cleanly — bounded by
     the same retry budget as shard faults, and per-(shard, attempt)
     deterministic, so the injected count is identical at any --jobs N. *)
  let current_checkpoint () =
    {
      Checkpoint.seed;
      budget;
      shard_size;
      extra;
      completed = !completed;
      quarantined = !quarantined;
      coverage = Coverage.export campaign_ledger;
      health = !campaign_health;
    }
  in
  (* write a checkpoint before any shard runs, so a signal that lands in the
     campaign's first seconds still leaves a resumable file behind (plain
     save: the chaos tear site is keyed to merged shards, and nothing has
     merged yet) *)
  (match checkpoint_path with
  | Some path when n_to_run > 0 -> Checkpoint.save ~path (current_checkpoint ())
  | _ -> ());
  let save_checkpoint ~after_shard =
    match checkpoint_path with
    | None -> ()
    | Some path ->
      let cp = current_checkpoint () in
      let rec attempt_save attempt =
        let tear =
          attempt < Faults.max_retries
          && (match chaos with
             | None -> false
             | Some plan ->
               Faults.decide plan ~site:Faults.Checkpoint_corrupt
                 ~shard:after_shard ~attempt
               <> None)
        in
        if tear then (
          let s = Json.to_string (Checkpoint.to_json cp) in
          let cut = max 1 (String.length s / 2) in
          Out_channel.with_open_bin path (fun oc ->
              output_string oc (String.sub s 0 cut));
          incr faults_injected;
          Telemetry.emit tel "fault.injected"
            [
              ("site", Json.String (Faults.site_name Faults.Checkpoint_corrupt));
              ("shard", Json.Int after_shard);
              ("attempt", Json.Int attempt);
            ])
        else Checkpoint.save ~path cp;
        match Checkpoint.load ~path with
        | Ok _ -> ()
        | Error err when tear && attempt < Faults.max_retries ->
          Log.debug (fun m ->
              m "checkpoint write torn by chaos (%s), rewriting"
                (Checkpoint.load_error_to_string ~path err));
          attempt_save (attempt + 1)
        | Error err ->
          failwith
            (Printf.sprintf "checkpoint verify failed after save: %s"
               (Checkpoint.load_error_to_string ~path err))
      in
      attempt_save 0
  in
  let emit_attempt_faults shard_idx logs =
    List.iter
      (fun { attempt; fired } ->
        List.iter
          (fun site ->
            incr faults_injected;
            Telemetry.emit tel "fault.injected"
              [
                ("site", Json.String (Faults.site_name site));
                ("shard", Json.Int shard_idx);
                ("attempt", Json.Int attempt);
              ])
          fired)
      logs
  in
  let emit_retries shard_idx logs ~quarantining =
    (* every tainted attempt except a quarantining shard's last one was
       followed by a backoff + retry *)
    let retried =
      if quarantining then max 0 (List.length logs - 1) else List.length logs
    in
    List.iteri
      (fun i { attempt; _ } ->
        if i < retried then (
          incr shard_retries;
          Telemetry.emit tel "shard.retry"
            [
              ("shard", Json.Int shard_idx);
              ("attempt", Json.Int (attempt + 1));
              ( "backoff_fuel",
                Json.Int (1_000 * (1 lsl min attempt 10)) );
            ]))
      logs
  in
  let processed = ref 0 in
  let handle_msg shard outcome =
    incr processed;
    (match (shard, outcome) with
    | shard, Failed msg -> errors := (shard.Shard.index, msg) :: !errors
    | shard, Quarantined logs ->
      let shard_idx = shard.Shard.index in
      emit_attempt_faults shard_idx logs;
      emit_retries shard_idx logs ~quarantining:true;
      let q = quarantine_of_logs shard logs in
      quarantined := q :: !quarantined;
      Telemetry.emit tel "shard.quarantined"
        [
          ("shard", Json.Int shard_idx);
          ("first_tick", Json.Int q.Checkpoint.q_first_tick);
          ("ticks", Json.Int q.Checkpoint.q_ticks);
          ("attempts", Json.Int q.Checkpoint.q_attempts);
          ( "sites",
            Json.List
              (List.map (fun s -> Json.String s) q.Checkpoint.q_sites) );
        ];
      save_checkpoint ~after_shard:shard_idx;
      Log.warn (fun m ->
          m "shard %d quarantined after %d attempts (sites: %s)" shard_idx
            q.Checkpoint.q_attempts
            (String.concat " " q.Checkpoint.q_sites))
    | shard, Merged (payload, logs, merged_fired) ->
      let shard_idx = shard.Shard.index in
      (* the merged attempt's own non-tainting faults (sick-solver hangs)
         count as injected too; its attempt index is one past the tainted
         attempts that preceded it *)
      emit_attempt_faults shard_idx
        (logs
        @
        if merged_fired = [] then []
        else [ { attempt = List.length logs; fired = merged_fired } ]);
      emit_retries shard_idx logs ~quarantining:false;
      List.iter
        (fun (e : Event.t) ->
          Telemetry.forward tel
            (Event.make ~ts:e.Event.ts ~name:e.Event.name
               (e.Event.fields @ [ ("shard", Json.Int shard_idx) ])))
        payload.events;
      Telemetry.absorb_metrics tel payload.metric_entries;
      Coverage.merge_into ~into:campaign_ledger payload.cov_export;
      campaign_health := Health.merge !campaign_health payload.health_export;
      campaign_profile := Profile.merge !campaign_profile payload.profile_export;
      completed := payload.sr :: !completed;
      if payload.promoted <> [] then
        promoted_by_shard := (shard_idx, payload.promoted) :: !promoted_by_shard;
      save_checkpoint ~after_shard:shard_idx;
      Log.debug (fun m ->
          m "shard %d merged (%d/%d done)" shard_idx (List.length !completed)
            (List.length plan)));
    notify_progress ()
  in
  notify_progress ();
  (if nworkers <= 1 || n_to_run = 0 then (
     (* degenerate case: run and merge inline on this domain, shard by shard —
        same single-owner merge as the parallel path, but progress callbacks
        fire live instead of after a full drain *)
     let zeal, cove = engines () in
     let rec loop () =
       if not (stop_requested ()) then (
         let i = Atomic.fetch_and_add next 1 in
         if i < n_to_run then (
           let shard = shard_arr.(i) in
           let run_attempt = attempt ~worker_id:0 ~zeal ~cove shard in
           handle_msg shard (run_supervised ~chaos ~run_attempt shard.Shard.index);
           loop ()))
     in
     loop ())
   else (
     let domains = List.init nworkers (fun wid -> Domain.spawn (worker wid)) in
     let live_workers = ref (List.length domains) in
     while !live_workers > 0 do
       match pop () with
       | Msg_worker_done -> decr live_workers
       | Msg_shard (shard, outcome) -> handle_msg shard outcome
     done;
     List.iter Domain.join domains));
  let stopped = stop_requested () && !processed < n_to_run in
  if stopped then (
    Telemetry.emit tel "campaign.stopped"
      [
        ("shards_done", Json.Int !processed);
        ("shards_remaining", Json.Int (n_to_run - !processed));
      ];
    Log.info (fun m ->
        m "stop requested: drained %d/%d shards at the shard boundary"
          !processed n_to_run));
  (match List.sort compare !errors with
  | (idx, msg) :: _ ->
    failwith (Printf.sprintf "Orchestrator.run: shard %d failed: %s" idx msg)
  | [] -> ());
  (* canonical order: shard index, i.e. campaign tick order — the merged
     finding stream a sequential run over the same plan would produce *)
  let all_results =
    List.sort
      (fun (a : Checkpoint.shard_result) b ->
        compare a.Checkpoint.shard b.Checkpoint.shard)
      !completed
  in
  let findings =
    List.concat_map (fun (r : Checkpoint.shard_result) -> r.Checkpoint.findings)
      all_results
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 all_results in
  let stats =
    {
      Fuzz.tests = sum (fun r -> r.Checkpoint.tests);
      parse_ok = sum (fun r -> r.Checkpoint.parse_ok);
      solved = sum (fun r -> r.Checkpoint.solved);
      bytes_total = sum (fun r -> r.Checkpoint.bytes_total);
      findings;
    }
  in
  let clusters = Dedup.cluster findings in
  let found_bug_ids =
    findings
    |> List.filter_map (fun (f : Dedup.found) -> f.Dedup.finding.Once4all.Oracle.bug_id)
    |> O4a_util.Listx.dedup |> List.sort compare
  in
  (* promoted traces in shard (= campaign tick) order, like the findings —
     a [--jobs n] campaign writes bundles in the sequential run's order *)
  let promoted =
    !promoted_by_shard
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.concat_map snd
  in
  let bundles_written =
    match trace_dir with
    | None -> 0
    | Some dir ->
      Bundle.ensure_dir dir;
      List.iter (fun p -> ignore (Bundle.write ~dir p)) promoted;
      Telemetry.emit tel "campaign.bundles"
        [
          ("dir", Json.String dir); ("bundles", Json.Int (List.length promoted));
        ];
      List.length promoted
  in
  (* canonical quarantine order, like the findings: shard index *)
  let quarantined =
    List.sort
      (fun (a : Checkpoint.quarantine) b ->
        compare a.Checkpoint.q_shard b.Checkpoint.q_shard)
      !quarantined
  in
  Telemetry.emit tel "campaign.end"
    (Fuzz.stats_fields stats
    @
    if quarantined = [] then []
    else [ ("quarantined_shards", Json.Int (List.length quarantined)) ]);
  Log.info (fun m ->
      m "campaign merged: %d shards (%d resumed, %d quarantined), %d tests, \
         %d findings, %d distinct bugs"
        (List.length all_results) (List.length base_completed)
        (List.length quarantined) stats.Fuzz.tests (List.length findings)
        (List.length found_bug_ids));
  {
    stats;
    clusters;
    found_bug_ids;
    coverage = Coverage.export campaign_ledger;
    coverage_zeal = Coverage.snapshot ~ledger:campaign_ledger Coverage.Zeal;
    coverage_cove = Coverage.snapshot ~ledger:campaign_ledger Coverage.Cove;
    shards_total = List.length plan;
    shards_run = !processed - List.length !errors;
    shards_resumed = List.length base_completed;
    interrupted;
    promoted;
    bundles_written;
    quarantined;
    shard_retries = !shard_retries;
    faults_injected = !faults_injected;
    health = !campaign_health;
    profile = !campaign_profile;
    stopped;
  }
