module Shard = Shard
module Checkpoint = Checkpoint
module Stop = Stop
module Rng = O4a_util.Rng
module Telemetry = O4a_telemetry.Telemetry
module Metrics = O4a_telemetry.Metrics
module Sink = O4a_telemetry.Sink
module Event = O4a_telemetry.Event
module Json = O4a_telemetry.Json
module Coverage = O4a_coverage.Coverage
module Engine = Solver.Engine
module Fuzz = Once4all.Fuzz
module Dedup = Once4all.Dedup
module Trace = O4a_trace.Trace
module Bundle = O4a_trace.Bundle
module Faults = O4a_faults.Faults
module Health = O4a_health.Health
module Profile = O4a_profile.Profile
module Hud = O4a_profile.Hud
module Analytics = O4a_analytics.Analytics

let log_src =
  Logs.Src.create "once4all.orchestrator" ~doc:"Parallel campaign orchestrator"

module Log = (val Logs.src_log log_src : Logs.LOG)

type report = {
  stats : Fuzz.stats;
  clusters : Dedup.cluster list;
  found_bug_ids : string list;
  coverage : (string * int) list;
  coverage_zeal : Coverage.snapshot;
  coverage_cove : Coverage.snapshot;
  shards_total : int;
  shards_run : int;
  shards_resumed : int;
  interrupted : bool;
  promoted : Trace.promoted list;
  bundles_written : int;
  quarantined : Checkpoint.quarantine list;
  shard_retries : int;
  faults_injected : int;
  health : Health.entry list;
  profile : Profile.t;
  analytics : Analytics.t;
  plateaus : Analytics.plateau list;
  stopped : bool;
}

(* ------------------------------------------------------------------ *)
(* Graceful shutdown                                                   *)
(* ------------------------------------------------------------------ *)

(* The flag itself lives in {!Stop} so the signal-handling contract can be
   shared with the campaign server without a dependency cycle. *)
let request_stop = Stop.request
let stop_requested = Stop.requested
let reset_stop = Stop.reset

(* ------------------------------------------------------------------ *)
(* Generic parallel map                                                *)
(* ------------------------------------------------------------------ *)

let parallel_map ?(jobs = 1) f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then List.map f xs
  else (
    let out = Array.make n None in
    let next = Atomic.make 0 in
    let err : exn option Atomic.t = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then (
          (try out.(i) <- Some (f arr.(i))
           with e -> ignore (Atomic.compare_and_set err None (Some e)));
          loop ())
      in
      loop ()
    in
    let domains = List.init jobs (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains;
    (match Atomic.get err with Some e -> raise e | None -> ());
    Array.to_list (Array.map Option.get out))

(* ------------------------------------------------------------------ *)
(* One shard, in isolation                                             *)
(* ------------------------------------------------------------------ *)

type shard_payload = {
  sr : Checkpoint.shard_result;
  events : Event.t list;
  metric_entries : Metrics.entry list;
  cov_export : (string * int) list;
  promoted : Trace.promoted list;
  health_export : Health.entry list;
  profile_export : Profile.t;
  analytics_export : Analytics.t;
}

let run_one_shard ~worker_id ~tel_enabled ~tracing ~ring_size ~config
    ~generators ~seeds ~zeal ~cove ~seed ~health ~profiling ~gen_profile shard =
  let wtel =
    if tel_enabled then
      Telemetry.create ~sink:(Sink.memory ())
        ~clock:(Telemetry.monotonic_clock ())
        ~labels:[ ("worker", string_of_int worker_id) ]
        ()
    else Telemetry.disabled
  in
  (* one flight recorder per shard: trace ids come from (seed, tick), so a
     recorder carries no cross-shard state and promoted traces merge by
     shard order *)
  let recorder =
    if tracing then Trace.Recorder.create ?ring_size ~seed ()
    else Trace.Recorder.disabled
  in
  let ledger = Coverage.make_ledger () in
  (* like the coverage ledger, the health ledger is fresh per shard attempt:
     breaker windows never straddle a shard boundary, so trips depend only on
     (seed, shard, attempt) and are identical at any --jobs N — and a tainted
     attempt discards its ledger wholesale along with everything else *)
  let hledger =
    match health with
    | Some cfg -> Health.make_ledger cfg
    | None -> Health.disabled
  in
  (* the profile ledger follows the coverage/health pattern: fresh per shard
     attempt, ambient on the worker domain, merged commutatively at the
     barrier. It wraps only the fuzz loop itself — per-shard setup (engine
     state, telemetry handle, recorder) stays outside, which is part of what
     keeps the deterministic projection identical at any --jobs N. *)
  let pledger = if profiling then Profile.make_ledger () else Profile.disabled in
  (* the analytics ledger is always on: its counters are cheap, and keeping
     it unconditional means `analyze` works on every checkpoint a campaign
     ever writes. Same lifecycle as the coverage ledger — fresh per shard
     attempt, discarded wholesale with a tainted attempt. *)
  let aledger = Analytics.make_ledger ~profile:gen_profile () in
  let rng = Shard.rng ~seed shard in
  let stats =
    Coverage.with_ledger ledger (fun () ->
        Telemetry.using wtel (fun () ->
            Trace.Recorder.using recorder (fun () ->
                Health.using hledger (fun () ->
                    Profile.using pledger (fun () ->
                        Analytics.using aledger (fun () ->
                            Fuzz.run_shard ~rng ~config ~telemetry:wtel
                              ~shard_index:shard.Shard.index
                              ~first_tick:shard.Shard.first_tick ~generators
                              ~seeds ~zeal ~cove ~budget:shard.Shard.ticks ()))))))
  in
  {
    sr =
      {
        Checkpoint.shard = shard.Shard.index;
        tests = stats.Fuzz.tests;
        parse_ok = stats.Fuzz.parse_ok;
        solved = stats.Fuzz.solved;
        bytes_total = stats.Fuzz.bytes_total;
        findings = stats.Fuzz.findings;
      };
    events = (if tel_enabled then Sink.events (Telemetry.sink wtel) else []);
    metric_entries = (if tel_enabled then Telemetry.snapshot wtel else []);
    cov_export = Coverage.export ledger;
    promoted = Trace.Recorder.promoted recorder;
    health_export = Health.export hledger;
    profile_export = Profile.export pledger;
    analytics_export =
      Analytics.export aledger ~bucket:shard.Shard.index
        ~first_tick:shard.Shard.first_tick ~ticks:shard.Shard.ticks
        ~tests:stats.Fuzz.tests ~parse_ok:stats.Fuzz.parse_ok
        ~solved:stats.Fuzz.solved
        ~findings:(List.length stats.Fuzz.findings)
        ~cov_points:(List.map fst (Coverage.export ledger))
        ~clusters:
          (stats.Fuzz.findings
          |> List.map (fun (f : Dedup.found) ->
                 Dedup.signature_to_string (Dedup.signature f.Dedup.finding))
          |> List.sort_uniq compare);
  }

(* ------------------------------------------------------------------ *)
(* Supervision                                                         *)
(* ------------------------------------------------------------------ *)

(* one failed attempt at a shard: which faults fired before it was given up *)
type attempt_log = { attempt : int; fired : Faults.site list }

type shard_outcome =
  | Merged of shard_payload * attempt_log list * Faults.site list
      (** clean result, after the listed tainted attempts were retried; the
          final site list is the non-tainting faults (sick-solver hangs)
          that fired during the merged attempt itself *)
  | Quarantined of attempt_log list
      (** every attempt was tainted; results discarded, ticks reported *)
  | Failed of string  (** a genuine (non-injected) worker exception *)

(* Retry a shard until an attempt completes with zero tainting faults. Any
   tainting fault spoils the whole attempt — even one whose effect was merely
   a wrong solver answer — because only all-or-nothing discarding guarantees
   that the merged payload is byte-identical to the fault-free run's. (The
   sick-solver profile is the exception: its hangs are the subject under test
   for the health layer, so they merge.) The fault plan re-rolls per attempt
   (with decayed probability), so a retried shard is a pure function of
   (plan, shard index, attempt): the supervision outcome is the same at any
   --jobs N and on resume. *)
(* An injected fault can escape through a [Fun.protect] cleanup (e.g. a
   telemetry span emitting its end event into a faulted sink), arriving
   wrapped in [Fun.Finally_raised] — possibly several layers deep. *)
let rec is_injected = function
  | Faults.Injected _ -> true
  | Fun.Finally_raised e -> is_injected e
  | _ -> false

let run_supervised ~chaos ~run_attempt shard_index =
  match chaos with
  | None -> (
    match run_attempt () with
    | payload -> Merged (payload, [], [])
    | exception e -> Failed (Printexc.to_string e))
  | Some plan ->
    let rec go attempt failed_rev =
      let inj = Faults.Injector.create plan ~shard:shard_index ~attempt in
      let attempt_and_ship () =
        let payload = run_attempt () in
        (* the finished payload still has to survive its trip to the merge
           owner: a fired network site means it was lost on the wire, which
           taints the attempt exactly like an in-shard fault *)
        Faults.transit ();
        payload
      in
      let result =
        match Faults.using inj attempt_and_ship with
        | payload -> Ok payload
        | exception e when is_injected e -> Error `Injected
        | exception e -> Error (`Fatal (Printexc.to_string e))
      in
      let fired = Faults.Injector.fired inj in
      let tainting = List.filter (Faults.taints plan) fired in
      match result with
      | Error (`Fatal msg) -> Failed msg
      | Ok payload when tainting = [] ->
        Merged (payload, List.rev failed_rev, fired)
      | Ok _ | Error `Injected ->
        let log = { attempt; fired } in
        if attempt >= Faults.max_retries then
          Quarantined (List.rev (log :: failed_rev))
        else (
          ignore (Faults.backoff ~attempt);
          go (attempt + 1) (log :: failed_rev))
    in
    go 0 []

let quarantine_of_logs (shard : Shard.t) logs =
  {
    Checkpoint.q_shard = shard.Shard.index;
    q_first_tick = shard.Shard.first_tick;
    q_ticks = shard.Shard.ticks;
    q_attempts = List.length logs;
    q_sites =
      logs
      |> List.concat_map (fun l -> List.map Faults.site_name l.fired)
      |> O4a_util.Listx.dedup |> List.sort compare;
  }

(* ------------------------------------------------------------------ *)
(* The pluggable shard executor                                        *)
(* ------------------------------------------------------------------ *)

(* Everything a worker needs to execute one shard of a campaign, and nothing
   about which worker pool runs it or where the results merge. [run] builds
   one per campaign; the campaign server builds one per submitted job and
   executes shards from many envs on one shared pool — a shard result is a
   pure function of (env, shard), so multiplexing cannot perturb it. *)
type exec_env = {
  env_seed : int;
  env_config : Fuzz.config;
  env_generators : Gensynth.Generator.t list;
  env_seeds : Smtlib.Script.t list;
  env_tel_enabled : bool;
  env_tracing : bool;
  env_ring_size : int option;
  env_chaos : Faults.plan option;
  env_health : Health.config option;
  env_profiling : bool;
  env_gen_profile : string;
      (** the LLM generator profile, for yield attribution *)
  env_engines : unit -> Engine.t * Engine.t;
}

let make_env ?(config = Fuzz.default_config) ?(tel_enabled = false)
    ?(tracing = false) ?ring_size ?chaos ?health ?(profiling = false)
    ?(gen_profile = "") ?engines ~seed ~generators ~seeds () =
  (* a plan whose profile is Off injects nothing and skips supervision *)
  let chaos =
    match chaos with Some p when Faults.enabled p -> Some p | _ -> None
  in
  {
    env_seed = seed;
    env_config = config;
    env_generators = generators;
    env_seeds = seeds;
    env_tel_enabled = tel_enabled;
    env_tracing = tracing;
    env_ring_size = ring_size;
    env_chaos = chaos;
    env_health = health;
    env_profiling = profiling;
    env_gen_profile = gen_profile;
    env_engines =
      (match engines with
      | Some f -> f
      | None -> fun () -> (Engine.zeal (), Engine.cove ()));
  }

let exec_shard ~env ~worker_id ~zeal ~cove shard =
  let run_attempt () =
    (* Per-worker engines accumulate internal state across the shards a
       domain happens to execute, which leaves shard results untouched (the
       resume path already proves a shard run on a fresh engine merges
       identically) but makes per-stage allocation counts depend on the
       shard schedule. Profiled runs therefore give every shard attempt
       factory-fresh engines — constructed here, outside the profile
       ledger's scope, so construction is charged to no stage — keeping
       {!O4a_profile.Profile.strip_timing} byte-identical at any [jobs]. *)
    let zeal, cove =
      if env.env_profiling then env.env_engines () else (zeal, cove)
    in
    run_one_shard ~worker_id ~tel_enabled:env.env_tel_enabled
      ~tracing:env.env_tracing ~ring_size:env.env_ring_size
      ~config:env.env_config ~generators:env.env_generators
      ~seeds:env.env_seeds ~zeal ~cove ~seed:env.env_seed
      ~health:env.env_health ~profiling:env.env_profiling
      ~gen_profile:env.env_gen_profile shard
  in
  run_supervised ~chaos:env.env_chaos ~run_attempt shard.Shard.index

(* ------------------------------------------------------------------ *)
(* The merge sink                                                      *)
(* ------------------------------------------------------------------ *)

(* Per-campaign merge accumulator with a single owner: whichever domain
   created it is the only one that may call [absorb]/[finalize]. Worker
   payloads arrive in completion order; everything merged here is commutative
   (counters, coverage) or re-canonicalized at [finalize] (findings sorted by
   shard index), so the final report does not depend on that order — which is
   what lets the server interleave many campaigns on one pool and still land
   every one of them on its standalone report. *)
module Merge = struct
  type t = {
    env : exec_env;
    tel : Telemetry.t;
    checkpoint_path : string option;
    on_progress : (Hud.progress -> unit) option;
    budget : int;
    shard_size : int;
    extra : (string * string) list;
    plan_total : int;
    base_completed : int;
    ledger : Coverage.ledger;
    mutable completed : Checkpoint.shard_result list;
    mutable quarantined : Checkpoint.quarantine list;
    mutable health : Health.entry list;
    mutable profile : Profile.t;
    mutable analytics : Analytics.t;
    (* plateau detection state: [accounted.(i)] is true once shard [i] is
       merged or quarantined (or came in via the base checkpoint), [settled]
       is the length of the contiguous accounted prefix. Detection only ever
       runs over samples inside that prefix, so the event stream is a pure
       function of merged content — independent of shard completion order
       and therefore of [--jobs]. *)
    accounted : bool array;
    mutable settled : int;
    mutable plateau_emitted : string list;  (* series names already announced *)
    mutable promoted_by_shard : (int * Trace.promoted list) list;
    mutable errors : (int * string) list;
    mutable shard_retries : int;
    mutable faults_injected : int;
    mutable processed : int;
    t_start : float;
  }

  let create ~env ~tel ?checkpoint_path ?base ?on_progress ~jobs ~budget
      ~shard_size ~extra () =
    let plan = Shard.plan ~budget ~shard_size in
    let base_completed =
      match base with Some cp -> cp.Checkpoint.completed | None -> []
    in
    let base_quarantined =
      match base with Some cp -> cp.Checkpoint.quarantined | None -> []
    in
    Telemetry.emit tel "campaign.start"
      [
        ("budget", Json.Int budget);
        ("seeds", Json.Int (List.length env.env_seeds));
        ("generators", Json.Int (List.length env.env_generators));
        ("skeletons", Json.Bool env.env_config.Fuzz.use_skeletons);
        ("jobs", Json.Int jobs);
        ("shard_size", Json.Int shard_size);
        ("shards", Json.Int (List.length plan));
        ("resumed_shards", Json.Int (List.length base_completed));
      ];
    let ledger = Coverage.make_ledger () in
    (match base with
    | Some cp -> Coverage.merge_into ~into:ledger cp.Checkpoint.coverage
    | None -> ());
    let analytics =
      match base with
      | Some cp -> cp.Checkpoint.analytics
      | None -> Analytics.empty
    in
    let accounted = Array.make (List.length plan) false in
    List.iter
      (fun (r : Checkpoint.shard_result) ->
        if r.Checkpoint.shard < Array.length accounted then
          accounted.(r.Checkpoint.shard) <- true)
      base_completed;
    List.iter
      (fun (q : Checkpoint.quarantine) ->
        if q.Checkpoint.q_shard < Array.length accounted then
          accounted.(q.Checkpoint.q_shard) <- true)
      base_quarantined;
    let settled = ref 0 in
    while !settled < Array.length accounted && accounted.(!settled) do
      incr settled
    done;
    (* plateaus already visible in the resumed prefix were announced by the
       run that wrote the checkpoint; re-detect silently so a resumed
       campaign only emits events for plateaus it discovers itself *)
    let prefix_plateaus =
      Analytics.plateaus
        { analytics with
          Analytics.samples =
            List.filter
              (fun (s : Analytics.sample) -> s.Analytics.bucket < !settled)
              analytics.Analytics.samples }
    in
    {
      env;
      tel;
      checkpoint_path;
      on_progress;
      budget;
      shard_size;
      extra;
      plan_total = List.length plan;
      base_completed = List.length base_completed;
      ledger;
      completed = base_completed;
      quarantined = base_quarantined;
      health = (match base with Some cp -> cp.Checkpoint.health | None -> []);
      profile = Profile.empty;
      analytics;
      accounted;
      settled = !settled;
      plateau_emitted =
        List.map (fun (p : Analytics.plateau) -> p.Analytics.pl_series)
          prefix_plateaus;
      promoted_by_shard = [];
      errors = [];
      shard_retries = 0;
      faults_injected = 0;
      processed = 0;
      t_start = Unix.gettimeofday ();
    }

  let processed t = t.processed
  let failed t = t.errors <> []
  let analytics_snapshot t = t.analytics

  (* merge-time progress snapshot for the HUD callback: a pure function of
     already-merged state, so observing it cannot perturb the campaign *)
  let notify_progress t =
    match t.on_progress with
    | None -> ()
    | Some f ->
      let sum g = List.fold_left (fun acc r -> acc + g r) 0 t.completed in
      f
        {
          Hud.shards_done = List.length t.completed + List.length t.quarantined;
          shards_total = t.plan_total;
          ticks_done =
            sum (fun (r : Checkpoint.shard_result) -> r.Checkpoint.tests);
          budget = t.budget;
          findings =
            sum (fun (r : Checkpoint.shard_result) ->
                List.length r.Checkpoint.findings);
          coverage_points = List.length (Coverage.export t.ledger);
          cov_rate =
            (* derived from the analytics series — [None] (rendered as "–")
               until the first sample merges, instead of a stale 0.0 *)
            (let pts = Analytics.series t.analytics in
             let ticks =
               List.fold_left
                 (fun acc (p : Analytics.point) -> acc + p.Analytics.p_ticks)
                 0 pts
             in
             match List.rev pts with
             | last :: _ when ticks > 0 ->
               Some
                 (1000.
                 *. float_of_int last.Analytics.p_cum_cov
                 /. float_of_int ticks)
             | _ -> None);
          quarantined = List.length t.quarantined;
          breaker_trips =
            List.fold_left
              (fun acc (e : Health.entry) -> acc + e.Health.opened)
              0 t.health;
          elapsed_s = Unix.gettimeofday () -. t.t_start;
        }

  let current_checkpoint t =
    {
      Checkpoint.seed = t.env.env_seed;
      budget = t.budget;
      shard_size = t.shard_size;
      extra = t.extra;
      completed = t.completed;
      quarantined = t.quarantined;
      coverage = Coverage.export t.ledger;
      health = t.health;
      analytics = t.analytics;
      artifacts =
        {
          Checkpoint.a_telemetry = t.env.env_tel_enabled;
          a_trace = t.env.env_tracing;
          a_analytics = true;
        };
    }

  (* plain save, bypassing the chaos tear site — used for the write-before-
     any-shard-runs checkpoint, so a signal that lands in the campaign's
     first seconds still leaves a resumable file behind (the tear site is
     keyed to merged shards, and nothing has merged yet) *)
  let checkpoint_now t =
    match t.checkpoint_path with
    | None -> ()
    | Some path -> Checkpoint.save ~path (current_checkpoint t)

  (* Supervised save: the Checkpoint_corrupt site tears the write on the
     merge domain (a truncated raw dump instead of the atomic
     write-then-rename), then the verify step detects the corruption through
     the same [Checkpoint.load] path [resume] uses and rewrites cleanly —
     bounded by the same retry budget as shard faults, and
     per-(shard, attempt) deterministic, so the injected count is identical
     at any --jobs N. *)
  let save_checkpoint t ~after_shard =
    match t.checkpoint_path with
    | None -> ()
    | Some path ->
      let cp = current_checkpoint t in
      let rec attempt_save attempt =
        let tear =
          attempt < Faults.max_retries
          && (match t.env.env_chaos with
             | None -> false
             | Some plan ->
               Faults.decide plan ~site:Faults.Checkpoint_corrupt
                 ~shard:after_shard ~attempt
               <> None)
        in
        if tear then (
          let s = Json.to_string (Checkpoint.to_json cp) in
          let cut = max 1 (String.length s / 2) in
          Out_channel.with_open_bin path (fun oc ->
              output_string oc (String.sub s 0 cut));
          t.faults_injected <- t.faults_injected + 1;
          Telemetry.emit t.tel "fault.injected"
            [
              ("site", Json.String (Faults.site_name Faults.Checkpoint_corrupt));
              ("shard", Json.Int after_shard);
              ("attempt", Json.Int attempt);
            ])
        else Checkpoint.save ~path cp;
        match Checkpoint.load ~path with
        | Ok _ -> ()
        | Error err when tear && attempt < Faults.max_retries ->
          Log.debug (fun m ->
              m "checkpoint write torn by chaos (%s), rewriting"
                (Checkpoint.load_error_to_string ~path err));
          attempt_save (attempt + 1)
        | Error err ->
          failwith
            (Printf.sprintf "checkpoint verify failed after save: %s"
               (Checkpoint.load_error_to_string ~path err))
      in
      attempt_save 0

  let emit_attempt_faults t shard_idx logs =
    List.iter
      (fun { attempt; fired } ->
        List.iter
          (fun site ->
            t.faults_injected <- t.faults_injected + 1;
            Telemetry.emit t.tel "fault.injected"
              [
                ("site", Json.String (Faults.site_name site));
                ("shard", Json.Int shard_idx);
                ("attempt", Json.Int attempt);
              ])
          fired)
      logs

  let emit_retries t shard_idx logs ~quarantining =
    (* every tainted attempt except a quarantining shard's last one was
       followed by a backoff + retry *)
    let retried =
      if quarantining then max 0 (List.length logs - 1) else List.length logs
    in
    List.iteri
      (fun i { attempt; _ } ->
        if i < retried then (
          t.shard_retries <- t.shard_retries + 1;
          Telemetry.emit t.tel "shard.retry"
            [
              ("shard", Json.Int shard_idx);
              ("attempt", Json.Int (attempt + 1));
              ("backoff_fuel", Json.Int (1_000 * (1 lsl min attempt 10)));
            ]))
      logs

  (* Advance the settled cursor past newly accounted shards, then run
     plateau detection over the settled prefix. Detection is positional and
     monotone (see {!Analytics.plateaus}), so the first plateau a prefix
     exhibits is the one the full series reports — emitting here is safe and
     happens exactly once per series, at a point determined by shard
     *indices*, not completion order. *)
  let settle_and_detect t shard_idx =
    if shard_idx < Array.length t.accounted then
      t.accounted.(shard_idx) <- true;
    while
      t.settled < Array.length t.accounted && t.accounted.(t.settled)
    do
      t.settled <- t.settled + 1
    done;
    let prefix =
      { t.analytics with
        Analytics.samples =
          List.filter
            (fun (s : Analytics.sample) -> s.Analytics.bucket < t.settled)
            t.analytics.Analytics.samples }
    in
    List.iter
      (fun (pl : Analytics.plateau) ->
        if not (List.mem pl.Analytics.pl_series t.plateau_emitted) then (
          t.plateau_emitted <- pl.Analytics.pl_series :: t.plateau_emitted;
          Telemetry.emit t.tel Analytics.plateau_event_name
            [
              ("series", Json.String pl.Analytics.pl_series);
              ("bucket", Json.Int pl.Analytics.pl_bucket);
              ("tick", Json.Int pl.Analytics.pl_tick);
              ("window", Json.Int pl.Analytics.pl_window);
              ("value", Json.Int pl.Analytics.pl_value);
            ];
          Log.info (fun m ->
              m "%s plateaued at tick %d (%d after %d-shard window)"
                pl.Analytics.pl_series pl.Analytics.pl_tick
                pl.Analytics.pl_value pl.Analytics.pl_window)))
      (Analytics.plateaus prefix)

  let absorb t shard outcome =
    t.processed <- t.processed + 1;
    (match (shard, outcome) with
    | shard, Failed msg -> t.errors <- (shard.Shard.index, msg) :: t.errors
    | shard, Quarantined logs ->
      let shard_idx = shard.Shard.index in
      emit_attempt_faults t shard_idx logs;
      emit_retries t shard_idx logs ~quarantining:true;
      let q = quarantine_of_logs shard logs in
      t.quarantined <- q :: t.quarantined;
      Telemetry.emit t.tel "shard.quarantined"
        [
          ("shard", Json.Int shard_idx);
          ("first_tick", Json.Int q.Checkpoint.q_first_tick);
          ("ticks", Json.Int q.Checkpoint.q_ticks);
          ("attempts", Json.Int q.Checkpoint.q_attempts);
          ( "sites",
            Json.List (List.map (fun s -> Json.String s) q.Checkpoint.q_sites)
          );
        ];
      settle_and_detect t shard_idx;
      save_checkpoint t ~after_shard:shard_idx;
      Log.warn (fun m ->
          m "shard %d quarantined after %d attempts (sites: %s)" shard_idx
            q.Checkpoint.q_attempts
            (String.concat " " q.Checkpoint.q_sites))
    | shard, Merged (payload, logs, merged_fired) ->
      let shard_idx = shard.Shard.index in
      (* the merged attempt's own non-tainting faults (sick-solver hangs)
         count as injected too; its attempt index is one past the tainted
         attempts that preceded it *)
      emit_attempt_faults t shard_idx
        (logs
        @
        if merged_fired = [] then []
        else [ { attempt = List.length logs; fired = merged_fired } ]);
      emit_retries t shard_idx logs ~quarantining:false;
      List.iter
        (fun (e : Event.t) ->
          Telemetry.forward t.tel
            (Event.make ~ts:e.Event.ts ~name:e.Event.name
               (e.Event.fields @ [ ("shard", Json.Int shard_idx) ])))
        payload.events;
      Telemetry.absorb_metrics t.tel payload.metric_entries;
      Coverage.merge_into ~into:t.ledger payload.cov_export;
      t.health <- Health.merge t.health payload.health_export;
      t.profile <- Profile.merge t.profile payload.profile_export;
      t.analytics <- Analytics.merge t.analytics payload.analytics_export;
      t.completed <- payload.sr :: t.completed;
      if payload.promoted <> [] then
        t.promoted_by_shard <-
          (shard_idx, payload.promoted) :: t.promoted_by_shard;
      settle_and_detect t shard_idx;
      save_checkpoint t ~after_shard:shard_idx;
      Log.debug (fun m ->
          m "shard %d merged (%d/%d done)" shard_idx (List.length t.completed)
            t.plan_total));
    notify_progress t

  let finalize ?trace_dir ~interrupted ~stopped t =
    (match List.sort compare t.errors with
    | (idx, msg) :: _ ->
      failwith (Printf.sprintf "Orchestrator.run: shard %d failed: %s" idx msg)
    | [] -> ());
    (* canonical order: shard index, i.e. campaign tick order — the merged
       finding stream a sequential run over the same plan would produce *)
    let all_results =
      List.sort
        (fun (a : Checkpoint.shard_result) b ->
          compare a.Checkpoint.shard b.Checkpoint.shard)
        t.completed
    in
    let findings =
      List.concat_map
        (fun (r : Checkpoint.shard_result) -> r.Checkpoint.findings)
        all_results
    in
    let sum f = List.fold_left (fun acc r -> acc + f r) 0 all_results in
    let stats =
      {
        Fuzz.tests = sum (fun r -> r.Checkpoint.tests);
        parse_ok = sum (fun r -> r.Checkpoint.parse_ok);
        solved = sum (fun r -> r.Checkpoint.solved);
        bytes_total = sum (fun r -> r.Checkpoint.bytes_total);
        findings;
      }
    in
    let clusters = Dedup.cluster findings in
    let found_bug_ids =
      findings
      |> List.filter_map (fun (f : Dedup.found) ->
             f.Dedup.finding.Once4all.Oracle.bug_id)
      |> O4a_util.Listx.dedup |> List.sort compare
    in
    (* promoted traces in shard (= campaign tick) order, like the findings —
       a [--jobs n] campaign writes bundles in the sequential run's order *)
    let promoted =
      t.promoted_by_shard
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.concat_map snd
    in
    let bundles_written =
      match trace_dir with
      | None -> 0
      | Some dir ->
        Bundle.ensure_dir dir;
        List.iter (fun p -> ignore (Bundle.write ~dir p)) promoted;
        Telemetry.emit t.tel "campaign.bundles"
          [
            ("dir", Json.String dir);
            ("bundles", Json.Int (List.length promoted));
          ];
        List.length promoted
    in
    (* canonical quarantine order, like the findings: shard index *)
    let quarantined =
      List.sort
        (fun (a : Checkpoint.quarantine) b ->
          compare a.Checkpoint.q_shard b.Checkpoint.q_shard)
        t.quarantined
    in
    Telemetry.emit t.tel "campaign.end"
      (Fuzz.stats_fields stats
      @
      if quarantined = [] then []
      else [ ("quarantined_shards", Json.Int (List.length quarantined)) ]);
    Log.info (fun m ->
        m "campaign merged: %d shards (%d resumed, %d quarantined), %d tests, \
           %d findings, %d distinct bugs"
          (List.length all_results) t.base_completed (List.length quarantined)
          stats.Fuzz.tests (List.length findings)
          (List.length found_bug_ids));
    {
      stats;
      clusters;
      found_bug_ids;
      coverage = Coverage.export t.ledger;
      coverage_zeal = Coverage.snapshot ~ledger:t.ledger Coverage.Zeal;
      coverage_cove = Coverage.snapshot ~ledger:t.ledger Coverage.Cove;
      shards_total = t.plan_total;
      shards_run = t.processed - List.length t.errors;
      shards_resumed = t.base_completed;
      interrupted;
      promoted;
      bundles_written;
      quarantined;
      shard_retries = t.shard_retries;
      faults_injected = t.faults_injected;
      health = t.health;
      profile = t.profile;
      analytics = t.analytics;
      plateaus = Analytics.plateaus t.analytics;
      stopped;
    }
end

(* ------------------------------------------------------------------ *)
(* The campaign                                                        *)
(* ------------------------------------------------------------------ *)

let default_shard_size = 250

let take n xs =
  let rec go acc n = function
    | x :: rest when n > 0 -> go (x :: acc) (n - 1) rest
    | _ -> List.rev acc
  in
  go [] n xs

let load_base ~resume ~checkpoint_path ~seed ~budget ~shard_size =
  if not resume then None
  else (
    match checkpoint_path with
    | None -> invalid_arg "Orchestrator.run: resume requires a checkpoint path"
    | Some path -> (
      match Checkpoint.load ~path with
      | Error err -> failwith (Checkpoint.load_error_to_string ~path err)
      | Ok cp ->
        if cp.Checkpoint.seed <> seed || cp.Checkpoint.budget <> budget
           || cp.Checkpoint.shard_size <> shard_size
        then
          failwith
            (Printf.sprintf
               "cannot resume from %s: checkpoint is for seed %d budget %d \
                shard-size %d, requested seed %d budget %d shard-size %d"
               path cp.Checkpoint.seed cp.Checkpoint.budget
               cp.Checkpoint.shard_size seed budget shard_size);
        Some cp))

(* The shards a checkpoint already covers — completed or quarantined — must
   not re-run: a resumed report would otherwise diverge from the
   uninterrupted run's. *)
let remaining_shards ~plan base =
  let done_set =
    match base with
    | None -> []
    | Some cp ->
      List.fold_left
        (fun acc (q : Checkpoint.quarantine) -> q.Checkpoint.q_shard :: acc)
        (List.fold_left
           (fun acc (r : Checkpoint.shard_result) -> r.Checkpoint.shard :: acc)
           [] cp.Checkpoint.completed)
        cp.Checkpoint.quarantined
  in
  List.filter (fun s -> not (List.mem s.Shard.index done_set)) plan

let run ?(jobs = 1) ?(shard_size = default_shard_size)
    ?(config = Fuzz.default_config) ?telemetry ?checkpoint_path
    ?(resume = false) ?stop_after ?(extra = []) ?engines ?trace_dir ?ring_size
    ?chaos ?health ?(profiling = false) ?on_progress ~seed ~budget ~generators
    ~seeds () =
  if jobs < 1 then invalid_arg "Orchestrator.run: jobs must be >= 1";
  let tel = match telemetry with Some t -> t | None -> Telemetry.global () in
  let base = load_base ~resume ~checkpoint_path ~seed ~budget ~shard_size in
  let extra =
    match base with Some cp when extra = [] -> cp.Checkpoint.extra | _ -> extra
  in
  let plan = Shard.plan ~budget ~shard_size in
  let remaining = remaining_shards ~plan base in
  let to_run =
    match stop_after with Some k -> take (max 0 k) remaining | None -> remaining
  in
  let interrupted = List.length to_run < List.length remaining in
  (* populate the coverage point tables before any worker races to use them,
     and so that checkpoint merges resolve ids against a full registry *)
  Engine.prewarm ();
  (* yield attribution labels rows with the generator profile; the CLI
     records it in the provenance extras, which resume restores — so the
     label is a constant of the campaign, never of the run *)
  let gen_profile =
    match List.assoc_opt "profile" extra with Some p -> p | None -> ""
  in
  let env =
    make_env ~config ~tel_enabled:(Telemetry.enabled tel)
      ~tracing:(trace_dir <> None) ?ring_size ?chaos ?health ~profiling
      ~gen_profile ?engines ~seed ~generators ~seeds ()
  in
  let merge =
    Merge.create ~env ~tel ?checkpoint_path ?base ?on_progress ~jobs ~budget
      ~shard_size ~extra ()
  in
  let shard_arr = Array.of_list to_run in
  let n_to_run = Array.length shard_arr in
  let nworkers = max 1 (min jobs n_to_run) in
  (* a single results queue: workers push, the main domain is the only
     consumer — the merge stage has one owner. Each worker pushes a final
     [Msg_worker_done] sentinel, so the merge loop terminates whether the
     campaign runs to completion or is stopped early by a signal. *)
  let module Q = struct
    type msg = Msg_shard of Shard.t * shard_outcome | Msg_worker_done
  end in
  let queue : Q.msg Queue.t = Queue.create () in
  let qmutex = Mutex.create () in
  let qcond = Condition.create () in
  let push r =
    Mutex.protect qmutex (fun () ->
        Queue.push r queue;
        Condition.signal qcond)
  in
  let pop () =
    Mutex.lock qmutex;
    while Queue.is_empty queue do
      Condition.wait qcond qmutex
    done;
    let r = Queue.pop queue in
    Mutex.unlock qmutex;
    r
  in
  let next = Atomic.make 0 in
  (* write a checkpoint before any shard runs, so a signal that lands in the
     campaign's first seconds still leaves a resumable file behind *)
  if n_to_run > 0 then Merge.checkpoint_now merge;
  (* backtrace recording is per-domain runtime state: a fresh domain starts
     from the OCAMLRUNPARAM default, silently dropping whatever the
     application (or test harness) enabled on the main domain. Mirror it so
     worker crashes keep their backtraces — and so a raise costs the same
     counted words on every path, keeping the profile's exact allocation
     total identical between the inline (jobs <= 1) and worker paths. *)
  let record_backtraces = Printexc.backtrace_status () in
  let worker worker_id () =
    Printexc.record_backtrace record_backtraces;
    let zeal, cove = env.env_engines () in
    let rec loop () =
      (* graceful stop lands on a shard boundary: a worker mid-shard finishes
         and merges it, but no new shard is claimed once the flag is up *)
      if not (stop_requested ()) then (
        let i = Atomic.fetch_and_add next 1 in
        if i < n_to_run then (
          let shard = shard_arr.(i) in
          push (Q.Msg_shard (shard, exec_shard ~env ~worker_id ~zeal ~cove shard));
          loop ()))
    in
    loop ();
    push Q.Msg_worker_done
  in
  Merge.notify_progress merge;
  (if nworkers <= 1 || n_to_run = 0 then (
     (* degenerate case: run and merge inline on this domain, shard by shard —
        same single-owner merge as the parallel path, but progress callbacks
        fire live instead of after a full drain *)
     let zeal, cove = env.env_engines () in
     let rec loop () =
       if not (stop_requested ()) then (
         let i = Atomic.fetch_and_add next 1 in
         if i < n_to_run then (
           let shard = shard_arr.(i) in
           Merge.absorb merge shard
             (exec_shard ~env ~worker_id:0 ~zeal ~cove shard);
           loop ()))
     in
     loop ())
   else (
     let domains = List.init nworkers (fun wid -> Domain.spawn (worker wid)) in
     let live_workers = ref (List.length domains) in
     while !live_workers > 0 do
       match pop () with
       | Q.Msg_worker_done -> decr live_workers
       | Q.Msg_shard (shard, outcome) -> Merge.absorb merge shard outcome
     done;
     List.iter Domain.join domains));
  let stopped = stop_requested () && Merge.processed merge < n_to_run in
  if stopped then (
    Telemetry.emit tel "campaign.stopped"
      [
        ("shards_done", Json.Int (Merge.processed merge));
        ("shards_remaining", Json.Int (n_to_run - Merge.processed merge));
      ];
    Log.info (fun m ->
        m "stop requested: drained %d/%d shards at the shard boundary"
          (Merge.processed merge) n_to_run));
  Merge.finalize ?trace_dir ~interrupted ~stopped merge
