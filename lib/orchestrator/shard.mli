(** The unit of parallel work: a contiguous range of campaign ticks.

    The shard plan is a pure function of [budget] and [shard_size] — never of
    the worker count — and each shard's RNG derives from the campaign seed
    and the shard {e index} alone, so the formula stream inside every shard
    is identical however many workers execute the plan. That invariant is
    what makes [--jobs N] reproduce the [--jobs 1] campaign exactly. *)

type t = {
  index : int;  (** position in the plan, 0-based *)
  first_tick : int;  (** campaign tick of the shard's first test *)
  ticks : int;  (** how many tests this shard runs *)
}

val plan : budget:int -> shard_size:int -> t list
(** Cover [0 .. budget-1] with consecutive shards of [shard_size] ticks (the
    final shard may be shorter). Empty when [budget = 0]; raises
    [Invalid_argument] on a negative budget or non-positive shard size. *)

val rng : seed:int -> t -> O4a_util.Rng.t
(** The shard's deterministic RNG: {!O4a_util.Rng.split_indexed} of the
    campaign seed at the shard index. *)
