module Json = O4a_telemetry.Json

type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half_open"

type config = {
  window : int;
  threshold : int;
  cooldown : int;
  trip_on_error : bool;
}

(* The threshold is deliberately high: the simulated solvers time out or
   crash on 15-30% of queries when perfectly healthy, and those findings are
   the point of the campaign. Only a solver that is failing most of a window
   — the sick-solver signature — should trip. *)
let default_config =
  { window = 16; threshold = 12; cooldown = 16; trip_on_error = false }

type outcome_class = Good | Timeout | Error | Crash

type decision = Admit | Probe | Suppress

(* Per-(solver, theory) breaker state. The ring holds the last [window]
   recorded outcomes (true = bad); every transition depends only on these
   per-key query counters, so a ledger's history is a pure function of the
   query stream it saw. *)
type key_state = {
  mutable st : state;
  ring : bool array;
  mutable ring_next : int;
  mutable ring_filled : int;
  mutable bad_in_window : int;
  mutable since_open : int;  (* suppressed queries since the last trip *)
  (* cumulative counters, exported as the campaign-level entry *)
  mutable queries : int;
  mutable timeouts : int;
  mutable errors : int;
  mutable crashes : int;
  mutable fuel : int;
  mutable suppressed : int;
  mutable probes : int;
  mutable opened : int;
  mutable reclosed : int;
}

type ledger = {
  config : config;
  live : bool;
  table : (string * string, key_state) Hashtbl.t;
}

let make_ledger config =
  if config.window <= 0 then
    invalid_arg "Health.make_ledger: window must be positive";
  if config.threshold <= 0 then
    invalid_arg "Health.make_ledger: threshold must be positive";
  if config.cooldown <= 0 then
    invalid_arg "Health.make_ledger: cooldown must be positive";
  { config; live = true; table = Hashtbl.create 16 }

let disabled =
  { config = default_config; live = false; table = Hashtbl.create 0 }

let enabled l = l.live

let key_state l ~solver ~theory =
  let key = (solver, theory) in
  match Hashtbl.find_opt l.table key with
  | Some ks -> ks
  | None ->
    let ks =
      {
        st = Closed;
        ring = Array.make l.config.window false;
        ring_next = 0;
        ring_filled = 0;
        bad_in_window = 0;
        since_open = 0;
        queries = 0;
        timeouts = 0;
        errors = 0;
        crashes = 0;
        fuel = 0;
        suppressed = 0;
        probes = 0;
        opened = 0;
        reclosed = 0;
      }
    in
    Hashtbl.add l.table key ks;
    ks

let reset_window ks =
  Array.fill ks.ring 0 (Array.length ks.ring) false;
  ks.ring_next <- 0;
  ks.ring_filled <- 0;
  ks.bad_in_window <- 0

let admit l ~solver ~theory =
  if not l.live then (Admit, None)
  else (
    let ks = key_state l ~solver ~theory in
    match ks.st with
    | Closed -> (Admit, None)
    | Half_open ->
      (* a previous probe was admitted but never recorded (e.g. the whole
         oracle test was abandoned); probe again *)
      ks.probes <- ks.probes + 1;
      (Probe, None)
    | Open ->
      ks.since_open <- ks.since_open + 1;
      ks.suppressed <- ks.suppressed + 1;
      if ks.since_open >= l.config.cooldown then (
        ks.st <- Half_open;
        ks.probes <- ks.probes + 1;
        (Probe, Some Half_open))
      else (Suppress, None))

let record l ~solver ~theory ~probe ~fuel cls =
  if not l.live then None
  else (
    let ks = key_state l ~solver ~theory in
    ks.queries <- ks.queries + 1;
    ks.fuel <- ks.fuel + fuel;
    (match cls with
    | Good -> ()
    | Timeout -> ks.timeouts <- ks.timeouts + 1
    | Error -> ks.errors <- ks.errors + 1
    | Crash -> ks.crashes <- ks.crashes + 1);
    let bad =
      match cls with
      | Timeout | Crash -> true
      | Error -> l.config.trip_on_error
      | Good -> false
    in
    if probe && ks.st = Half_open then
      if bad then (
        ks.st <- Open;
        ks.since_open <- 0;
        ks.opened <- ks.opened + 1;
        reset_window ks;
        Some Open)
      else (
        ks.st <- Closed;
        ks.reclosed <- ks.reclosed + 1;
        ks.since_open <- 0;
        reset_window ks;
        Some Closed)
    else (
      (* sliding window: evict the outcome [window] queries ago *)
      let evicted = ks.ring.(ks.ring_next) in
      ks.ring.(ks.ring_next) <- bad;
      ks.ring_next <- (ks.ring_next + 1) mod Array.length ks.ring;
      if ks.ring_filled < Array.length ks.ring then
        ks.ring_filled <- ks.ring_filled + 1
      else if evicted then ks.bad_in_window <- ks.bad_in_window - 1;
      if bad then ks.bad_in_window <- ks.bad_in_window + 1;
      if ks.st = Closed && ks.bad_in_window >= l.config.threshold then (
        ks.st <- Open;
        ks.since_open <- 0;
        ks.opened <- ks.opened + 1;
        reset_window ks;
        Some Open)
      else None))

let state l ~solver ~theory =
  if not l.live then Closed
  else (
    match Hashtbl.find_opt l.table (solver, theory) with
    | Some ks -> ks.st
    | None -> Closed)

type entry = {
  e_solver : string;
  e_theory : string;
  queries : int;
  timeouts : int;
  errors : int;
  crashes : int;
  fuel : int;
  suppressed : int;
  probes : int;
  opened : int;
  reclosed : int;
}

let entry_of_key (solver, theory) (ks : key_state) =
  {
    e_solver = solver;
    e_theory = theory;
    queries = ks.queries;
    timeouts = ks.timeouts;
    errors = ks.errors;
    crashes = ks.crashes;
    fuel = ks.fuel;
    suppressed = ks.suppressed;
    probes = ks.probes;
    opened = ks.opened;
    reclosed = ks.reclosed;
  }

let compare_entries a b =
  compare (a.e_solver, a.e_theory) (b.e_solver, b.e_theory)

let export l =
  Hashtbl.fold (fun key ks acc -> entry_of_key key ks :: acc) l.table []
  |> List.sort compare_entries

let add_entries a b =
  {
    e_solver = a.e_solver;
    e_theory = a.e_theory;
    queries = a.queries + b.queries;
    timeouts = a.timeouts + b.timeouts;
    errors = a.errors + b.errors;
    crashes = a.crashes + b.crashes;
    fuel = a.fuel + b.fuel;
    suppressed = a.suppressed + b.suppressed;
    probes = a.probes + b.probes;
    opened = a.opened + b.opened;
    reclosed = a.reclosed + b.reclosed;
  }

let merge a b =
  let tbl = Hashtbl.create 16 in
  let absorb e =
    let key = (e.e_solver, e.e_theory) in
    match Hashtbl.find_opt tbl key with
    | Some prev -> Hashtbl.replace tbl key (add_entries prev e)
    | None -> Hashtbl.add tbl key e
  in
  List.iter absorb a;
  List.iter absorb b;
  Hashtbl.fold (fun _ e acc -> e :: acc) tbl [] |> List.sort compare_entries

let entry_to_json e =
  Json.Obj
    [
      ("solver", Json.String e.e_solver);
      ("theory", Json.String e.e_theory);
      ("queries", Json.Int e.queries);
      ("timeouts", Json.Int e.timeouts);
      ("errors", Json.Int e.errors);
      ("crashes", Json.Int e.crashes);
      ("fuel", Json.Int e.fuel);
      ("suppressed", Json.Int e.suppressed);
      ("probes", Json.Int e.probes);
      ("opened", Json.Int e.opened);
      ("reclosed", Json.Int e.reclosed);
    ]

let entry_to_string e =
  Printf.sprintf
    "%s/%s  queries %d  timeouts %d  errors %d  crashes %d  opened %d  \
     reclosed %d  suppressed %d  probes %d"
    e.e_solver e.e_theory e.queries e.timeouts e.errors e.crashes e.opened
    e.reclosed e.suppressed e.probes

let ( let* ) = Result.bind

let req name conv json =
  match Option.bind (Json.member name json) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "health: missing or invalid field %S" name)

let entry_of_json json =
  let* e_solver = req "solver" Json.to_str json in
  let* e_theory = req "theory" Json.to_str json in
  let* queries = req "queries" Json.to_int json in
  let* timeouts = req "timeouts" Json.to_int json in
  let* errors = req "errors" Json.to_int json in
  let* crashes = req "crashes" Json.to_int json in
  let* fuel = req "fuel" Json.to_int json in
  let* suppressed = req "suppressed" Json.to_int json in
  let* probes = req "probes" Json.to_int json in
  let* opened = req "opened" Json.to_int json in
  let* reclosed = req "reclosed" Json.to_int json in
  Ok
    {
      e_solver;
      e_theory;
      queries;
      timeouts;
      errors;
      crashes;
      fuel;
      suppressed;
      probes;
      opened;
      reclosed;
    }

(* Domain-local, like the coverage ledger and the ambient telemetry handle:
   each worker installs its per-shard-attempt ledger without disturbing
   other domains. *)
let ambient_key : ledger Domain.DLS.key = Domain.DLS.new_key (fun () -> disabled)

let ambient () = Domain.DLS.get ambient_key

let using l f =
  let prev = ambient () in
  Domain.DLS.set ambient_key l;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient_key prev) f
