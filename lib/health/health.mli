(** Per-(solver, theory) health ledgers and circuit breakers.

    A long campaign against a solver that has gone sick in one theory burns
    fuel on queries that will never answer and risks bogus soundness
    findings. The ledger counts each solver's outcomes per theory over a
    sliding window of queries; when the bad-outcome count inside the window
    reaches a threshold the breaker for that (solver, theory) trips Open and
    the oracle degrades to single-solver + model-validation for that theory.
    After a cooldown counted in suppressed queries the breaker moves to
    Half_open and admits one probe query: a good probe re-closes the
    breaker, a bad one re-opens it.

    Every transition is keyed to deterministic counters — the per-key query
    index and cumulative evaluator fuel — never wall-clock time, so breaker
    trips are byte-identical at any [--jobs N]. Ledgers follow the coverage
    ledger pattern: one fresh instance per shard attempt (ambient on the
    worker domain), exported as plain counter entries and merged
    commutatively by the single merge owner, so the campaign-level health
    report does not depend on completion order. *)

type state = Closed | Open | Half_open

val state_name : state -> string
(** ["closed"], ["open"], ["half_open"] — used in telemetry events. *)

type config = {
  window : int;  (** sliding window length, in recorded queries per key *)
  threshold : int;  (** bad outcomes within the window that trip the breaker *)
  cooldown : int;  (** suppressed queries while Open before a probe is admitted *)
  trip_on_error : bool;
      (** count solver errors as bad. Off by default: ill-typed or
          unsupported inputs produce symmetric errors on {e healthy}
          solvers, and tripping on them would open both breakers at once. *)
}

val default_config : config

type outcome_class = Good | Timeout | Error | Crash

(** What the breaker says about a query before it runs. *)
type decision =
  | Admit  (** breaker Closed: run the solver normally *)
  | Probe  (** breaker Half_open: run it, and let the outcome decide the state *)
  | Suppress  (** breaker Open: skip this solver for this query *)

type ledger

val make_ledger : config -> ledger

val disabled : ledger
(** Admits everything and records nothing; the ambient default. *)

val enabled : ledger -> bool

val admit : ledger -> solver:string -> theory:string -> decision * state option
(** Consult the breaker before a query. The returned state is the new
    breaker state when this consult itself caused a transition
    (Open → Half_open once the cooldown of suppressed queries elapses). *)

val record :
  ledger ->
  solver:string ->
  theory:string ->
  probe:bool ->
  fuel:int ->
  outcome_class ->
  state option
(** Record one admitted query's outcome and the fuel it consumed. [probe]
    must be [true] iff {!admit} answered [Probe]. Returns the new state when
    the outcome caused a transition: Closed → Open on the threshold,
    Half_open → Closed on a good probe, Half_open → Open on a bad one. *)

val state : ledger -> solver:string -> theory:string -> state

(** Campaign-level health: pure merged counters per (solver, theory). The
    window/breaker state itself is deliberately not exported — it is
    per-shard-attempt, which is what keeps trips jobs-invariant. *)
type entry = {
  e_solver : string;
  e_theory : string;
  queries : int;
  timeouts : int;
  errors : int;
  crashes : int;
  fuel : int;  (** cumulative evaluator steps across recorded queries *)
  suppressed : int;  (** queries skipped while the breaker was Open *)
  probes : int;  (** Half_open probe queries admitted *)
  opened : int;  (** transitions into Open (trips and re-opens) *)
  reclosed : int;  (** Half_open → Closed transitions *)
}

val export : ledger -> entry list
(** Canonical: sorted by (solver, theory). *)

val merge : entry list -> entry list -> entry list
(** Pointwise sum by (solver, theory); commutative and associative, output
    sorted — merging shard exports in any completion order gives the same
    campaign totals. *)

val entry_to_json : entry -> O4a_telemetry.Json.t
val entry_of_json : O4a_telemetry.Json.t -> (entry, string) result

val entry_to_string : entry -> string
(** One-line human rendering ([solver/theory] followed by the counters) —
    shared by [checkpoint info] and diagnostic dumps. *)

val ambient : unit -> ledger
(** The calling domain's ledger; {!disabled} unless inside {!using}. *)

val using : ledger -> (unit -> 'a) -> 'a
(** Run [f] with [ledger] ambient on this domain, restoring the previous
    ledger afterwards (also on exception). *)
