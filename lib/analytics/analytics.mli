(** Deterministic campaign time series, sampled at shard boundaries.

    Every per-tick observable the runtime already tracks in aggregate
    (coverage, findings, validity, solver consults and fuel) is bucketed
    here per shard — one {!sample} per shard index — following the
    coverage-ledger pattern: a fresh {!ledger} per shard attempt, ambient
    via [Domain.DLS], exported at the shard boundary, and merged with a
    commutative {!merge} by the single merge owner. Because a sample is a
    pure function of (campaign seed, shard index), the merged series — and
    everything derived from it: CSV, JSON, sparklines, plateau events — is
    byte-identical at any [--jobs N].

    Cumulative curves (coverage points, dedup clusters) are *derived* at
    analysis time by walking buckets in index order ({!series}), so they
    need no cross-shard state during the campaign and commute under
    merge. *)

(** One shard-sized bucket of the campaign time line. [cov_points] and
    [clusters] are the sorted distinct coverage-point and dedup-cluster
    identities observed inside the bucket; cumulative counts come from
    {!series}. *)
type sample = {
  bucket : int;  (** shard index *)
  first_tick : int;
  ticks : int;  (** planned ticks in this bucket *)
  tests : int;
  parse_ok : int;
  solved : int;
  findings : int;
  consults : int;  (** solver queries issued in this bucket *)
  fuel : int;  (** solver fuel burned in this bucket *)
  cov_points : string list;
  clusters : string list;
}

(** One row of the yield-attribution table: tests, valid parses, and
    findings credited to a (theory, generator profile, seed cluster)
    combination — the reward signal ROADMAP item 4's bandit will consume. *)
type yield_row = {
  y_theory : string;
  y_profile : string;  (** LLM generator profile the campaign ran with *)
  y_seed_cluster : string;  (** digest prefix of the originating seed *)
  y_tests : int;
  y_parse_ok : int;
  y_findings : int;
}

type t = {
  samples : sample list;  (** sorted by bucket *)
  yield : yield_row list;  (** sorted by (theory, profile, seed cluster) *)
}

val empty : t

val merge : t -> t -> t
(** Commutative, associative, [empty]-identity. Samples unify by bucket
    (counters sum, point/cluster sets union); yield rows unify by key
    (counters sum). Output is canonical: sorted, deduplicated. *)

val total_tests : t -> int
val total_findings : t -> int

val to_json : t -> O4a_telemetry.Json.t
(** Canonical rendering — checkpoints, [analyze --json], and the server
    [metrics] reply all use this, so their bytes compare equal. *)

val of_json : O4a_telemetry.Json.t -> (t, string) result

(** {1 Derived series} *)

(** A sample joined with the cumulative curves at its bucket. *)
type point = {
  p_bucket : int;
  p_first_tick : int;
  p_ticks : int;
  p_tests : int;
  p_parse_ok : int;
  p_solved : int;
  p_findings : int;
  p_consults : int;
  p_fuel : int;
  p_new_cov : int;  (** coverage points first seen in this bucket *)
  p_cum_cov : int;
  p_new_clusters : int;
  p_cum_clusters : int;
}

val series : t -> point list
(** Walk samples in bucket order, accumulating first-seen coverage points
    and dedup clusters. *)

(** {1 Saturation detection} *)

type plateau = {
  pl_series : string;  (** ["coverage"] or ["clusters"] *)
  pl_bucket : int;  (** bucket at which saturation was declared *)
  pl_tick : int;  (** end tick of that bucket *)
  pl_window : int;
  pl_value : int;  (** the cumulative value the curve flattened at *)
}

val default_window : int
(** 4 buckets. *)

val plateaus : ?window:int -> t -> plateau list
(** The first window of zero cumulative growth per series, if any: the
    earliest sample position [i >= window] whose cumulative value equals
    the value [window] samples earlier. Detection is positional over the
    sorted samples and monotone — once a prefix exhibits a plateau, every
    extension reports the same one — so the orchestrator can emit the
    event incrementally as the contiguous merged prefix grows, in an order
    independent of shard completion order. At most one plateau per
    series. *)

val plateau_event_name : string
(** ["analytics.plateau"] — the typed telemetry event the orchestrator
    emits (fields: [series], [bucket], [tick], [window], [value]). *)

(** {1 Rendering} *)

val sparkline : float list -> string
(** ASCII sparkline (levels [" .:-=+*#@"]), scaled to the list maximum. *)

val to_csv : t -> string
(** One row per bucket with every raw and cumulative column; byte-stable
    across [--jobs N]. *)

val to_prometheus : t -> string
(** Prometheus text-exposition snapshot of the campaign totals, plateau
    gauges, and the yield table. *)

(** {1 Recording ledger}

    Coverage-ledger pattern: the orchestrator installs a fresh ledger per
    shard attempt with {!using}; the fuzz loop and solver runner record
    through the ambient handle; {!export} turns the ledger plus the
    shard's aggregate stats into a single-sample {!t} merged at the
    barrier. *)

type ledger

val make_ledger : profile:string -> unit -> ledger
val disabled : ledger
(** Shared inert ledger; recording through it is a no-op. *)

val recording : unit -> bool
(** Whether the ambient ledger is live — lets call sites skip argument
    preparation entirely. *)

val using : ledger -> (unit -> 'a) -> 'a
(** Run with [ledger] ambient for the calling domain; restores the
    previous ambient ledger on exit (exceptions included). *)

val consult : ?fuel:int -> unit -> unit
(** Count one solver query (plus the fuel it burned) in the ambient
    ledger. *)

val record_test :
  theories:string list -> seed_cluster:string -> parse_ok:bool ->
  found:bool -> unit -> unit
(** Credit one test to the yield table under each distinct theory in
    [theories] (["none"] when empty). *)

val export :
  ledger ->
  bucket:int -> first_tick:int -> ticks:int ->
  tests:int -> parse_ok:int -> solved:int -> findings:int ->
  cov_points:string list -> clusters:string list ->
  t
(** The ledger's bucket as a mergeable single-sample series. *)
