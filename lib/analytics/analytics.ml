module Json = O4a_telemetry.Json

type sample = {
  bucket : int;
  first_tick : int;
  ticks : int;
  tests : int;
  parse_ok : int;
  solved : int;
  findings : int;
  consults : int;
  fuel : int;
  cov_points : string list;
  clusters : string list;
}

type yield_row = {
  y_theory : string;
  y_profile : string;
  y_seed_cluster : string;
  y_tests : int;
  y_parse_ok : int;
  y_findings : int;
}

type t = { samples : sample list; yield : yield_row list }

let empty = { samples = []; yield = [] }

(* ------------------------------ merge ------------------------------ *)

let union_sorted a b = List.sort_uniq compare (List.rev_append a b)

let add_sample a b =
  {
    bucket = a.bucket;
    first_tick = min a.first_tick b.first_tick;
    ticks = max a.ticks b.ticks;
    tests = a.tests + b.tests;
    parse_ok = a.parse_ok + b.parse_ok;
    solved = a.solved + b.solved;
    findings = a.findings + b.findings;
    consults = a.consults + b.consults;
    fuel = a.fuel + b.fuel;
    cov_points = union_sorted a.cov_points b.cov_points;
    clusters = union_sorted a.clusters b.clusters;
  }

let canon_sample s =
  { s with
    cov_points = List.sort_uniq compare s.cov_points;
    clusters = List.sort_uniq compare s.clusters }

let ykey r = (r.y_theory, r.y_profile, r.y_seed_cluster)

let add_yield a b =
  { a with
    y_tests = a.y_tests + b.y_tests;
    y_parse_ok = a.y_parse_ok + b.y_parse_ok;
    y_findings = a.y_findings + b.y_findings }

let merge a b =
  let stbl = Hashtbl.create 31 in
  let absorb_sample s =
    let s = canon_sample s in
    match Hashtbl.find_opt stbl s.bucket with
    | None -> Hashtbl.replace stbl s.bucket s
    | Some prev -> Hashtbl.replace stbl s.bucket (add_sample prev s)
  in
  List.iter absorb_sample a.samples;
  List.iter absorb_sample b.samples;
  let samples =
    Hashtbl.fold (fun _ s acc -> s :: acc) stbl []
    |> List.sort (fun x y -> compare x.bucket y.bucket)
  in
  let ytbl = Hashtbl.create 31 in
  let absorb_yield r =
    match Hashtbl.find_opt ytbl (ykey r) with
    | None -> Hashtbl.replace ytbl (ykey r) r
    | Some prev -> Hashtbl.replace ytbl (ykey r) (add_yield prev r)
  in
  List.iter absorb_yield a.yield;
  List.iter absorb_yield b.yield;
  let yield =
    Hashtbl.fold (fun _ r acc -> r :: acc) ytbl []
    |> List.sort (fun x y -> compare (ykey x) (ykey y))
  in
  { samples; yield }

let total_tests t = List.fold_left (fun acc s -> acc + s.tests) 0 t.samples
let total_findings t =
  List.fold_left (fun acc s -> acc + s.findings) 0 t.samples

(* ------------------------------ json ------------------------------- *)

let strings l = Json.List (List.map (fun s -> Json.String s) l)

let sample_to_json s =
  Json.Obj
    [
      ("bucket", Json.Int s.bucket);
      ("first_tick", Json.Int s.first_tick);
      ("ticks", Json.Int s.ticks);
      ("tests", Json.Int s.tests);
      ("parse_ok", Json.Int s.parse_ok);
      ("solved", Json.Int s.solved);
      ("findings", Json.Int s.findings);
      ("consults", Json.Int s.consults);
      ("fuel", Json.Int s.fuel);
      ("cov_points", strings s.cov_points);
      ("clusters", strings s.clusters);
    ]

let yield_to_json r =
  Json.Obj
    [
      ("theory", Json.String r.y_theory);
      ("profile", Json.String r.y_profile);
      ("seed_cluster", Json.String r.y_seed_cluster);
      ("tests", Json.Int r.y_tests);
      ("parse_ok", Json.Int r.y_parse_ok);
      ("findings", Json.Int r.y_findings);
    ]

let to_json t =
  Json.Obj
    [
      ("samples", Json.List (List.map sample_to_json t.samples));
      ("yield", Json.List (List.map yield_to_json t.yield));
    ]

let ( let* ) = Result.bind

let req_int name json =
  match Option.bind (Json.member name json) Json.to_int with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "analytics: missing int field %S" name)

let req_str name json =
  match Option.bind (Json.member name json) Json.to_str with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "analytics: missing string field %S" name)

let req_strings name json =
  match Json.member name json with
  | Some (Json.List l) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | Json.String s :: rest -> go (s :: acc) rest
      | _ -> Error (Printf.sprintf "analytics: %S holds a non-string" name)
    in
    go [] l
  | _ -> Error (Printf.sprintf "analytics: missing list field %S" name)

let sample_of_json json =
  let* bucket = req_int "bucket" json in
  let* first_tick = req_int "first_tick" json in
  let* ticks = req_int "ticks" json in
  let* tests = req_int "tests" json in
  let* parse_ok = req_int "parse_ok" json in
  let* solved = req_int "solved" json in
  let* findings = req_int "findings" json in
  let* consults = req_int "consults" json in
  let* fuel = req_int "fuel" json in
  let* cov_points = req_strings "cov_points" json in
  let* clusters = req_strings "clusters" json in
  Ok
    { bucket; first_tick; ticks; tests; parse_ok; solved; findings;
      consults; fuel; cov_points; clusters }

let yield_of_json json =
  let* y_theory = req_str "theory" json in
  let* y_profile = req_str "profile" json in
  let* y_seed_cluster = req_str "seed_cluster" json in
  let* y_tests = req_int "tests" json in
  let* y_parse_ok = req_int "parse_ok" json in
  let* y_findings = req_int "findings" json in
  Ok { y_theory; y_profile; y_seed_cluster; y_tests; y_parse_ok; y_findings }

let map_result f l =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest ->
      let* v = f x in
      go (v :: acc) rest
  in
  go [] l

let of_json json =
  let list_field name =
    match Json.member name json with
    | Some (Json.List l) -> Ok l
    | _ -> Error (Printf.sprintf "analytics: missing list field %S" name)
  in
  let* samples_json = list_field "samples" in
  let* yield_json = list_field "yield" in
  let* samples = map_result sample_of_json samples_json in
  let* yield = map_result yield_of_json yield_json in
  (* re-canonicalise so hand-edited or reordered checkpoints still merge
     and render deterministically *)
  Ok (merge { samples; yield } empty)

(* ------------------------- derived series -------------------------- *)

type point = {
  p_bucket : int;
  p_first_tick : int;
  p_ticks : int;
  p_tests : int;
  p_parse_ok : int;
  p_solved : int;
  p_findings : int;
  p_consults : int;
  p_fuel : int;
  p_new_cov : int;
  p_cum_cov : int;
  p_new_clusters : int;
  p_cum_clusters : int;
}

let series t =
  let seen_cov = Hashtbl.create 256 and seen_cl = Hashtbl.create 32 in
  let first_seen tbl keys =
    List.fold_left
      (fun acc k ->
        if Hashtbl.mem tbl k then acc
        else (Hashtbl.replace tbl k (); acc + 1))
      0 keys
  in
  List.map
    (fun s ->
      let new_cov = first_seen seen_cov s.cov_points in
      let new_cl = first_seen seen_cl s.clusters in
      {
        p_bucket = s.bucket;
        p_first_tick = s.first_tick;
        p_ticks = s.ticks;
        p_tests = s.tests;
        p_parse_ok = s.parse_ok;
        p_solved = s.solved;
        p_findings = s.findings;
        p_consults = s.consults;
        p_fuel = s.fuel;
        p_new_cov = new_cov;
        p_cum_cov = Hashtbl.length seen_cov;
        p_new_clusters = new_cl;
        p_cum_clusters = Hashtbl.length seen_cl;
      })
    t.samples

(* ------------------------ plateau detection ------------------------ *)

type plateau = {
  pl_series : string;
  pl_bucket : int;
  pl_tick : int;
  pl_window : int;
  pl_value : int;
}

let default_window = 4
let plateau_event_name = "analytics.plateau"

let plateaus ?(window = default_window) t =
  if window <= 0 then invalid_arg "Analytics.plateaus: window must be > 0";
  let pts = Array.of_list (series t) in
  let find name value =
    let rec go i =
      if i >= Array.length pts then None
      else if value pts.(i) = value pts.(i - window) then
        Some
          {
            pl_series = name;
            pl_bucket = pts.(i).p_bucket;
            pl_tick = pts.(i).p_first_tick + pts.(i).p_ticks;
            pl_window = window;
            pl_value = value pts.(i);
          }
      else go (i + 1)
    in
    if Array.length pts <= window then None else go window
  in
  List.filter_map Fun.id
    [
      find "coverage" (fun p -> p.p_cum_cov);
      find "clusters" (fun p -> p.p_cum_clusters);
    ]

(* ----------------------------- rendering --------------------------- *)

let sparkline values =
  let levels = " .:-=+*#@" in
  let n = String.length levels in
  match values with
  | [] -> ""
  | _ ->
    let hi = List.fold_left max 0. values in
    let cell v =
      if hi <= 0. then levels.[0]
      else
        let i = int_of_float (v /. hi *. float_of_int (n - 1) +. 0.5) in
        levels.[max 0 (min (n - 1) i)]
    in
    String.init (List.length values) (fun i -> cell (List.nth values i))

let to_csv t =
  let b = Buffer.create 512 in
  Buffer.add_string b
    "bucket,first_tick,ticks,tests,parse_ok,solved,findings,consults,fuel,\
     new_cov,cum_cov,new_clusters,cum_clusters\n";
  List.iter
    (fun p ->
      Buffer.add_string b
        (Printf.sprintf "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n" p.p_bucket
           p.p_first_tick p.p_ticks p.p_tests p.p_parse_ok p.p_solved
           p.p_findings p.p_consults p.p_fuel p.p_new_cov p.p_cum_cov
           p.p_new_clusters p.p_cum_clusters))
    (series t);
  Buffer.contents b

let escape_label s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_prometheus t =
  let b = Buffer.create 1024 in
  let metric ?(kind = "counter") ?help name value =
    Option.iter
      (fun h -> Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name h))
      help;
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind);
    Buffer.add_string b (Printf.sprintf "%s %d\n" name value)
  in
  let total f = List.fold_left (fun acc s -> acc + f s) 0 t.samples in
  let pts = series t in
  let last f = match List.rev pts with [] -> 0 | p :: _ -> f p in
  metric "once4all_ticks_total" ~help:"Planned ticks merged so far."
    (total (fun s -> s.ticks));
  metric "once4all_tests_total" ~help:"Tests executed." (total (fun s -> s.tests));
  metric "once4all_parse_ok_total" (total (fun s -> s.parse_ok));
  metric "once4all_solved_total" (total (fun s -> s.solved));
  metric "once4all_findings_total" (total (fun s -> s.findings));
  metric "once4all_consults_total" (total (fun s -> s.consults));
  metric "once4all_fuel_total" (total (fun s -> s.fuel));
  metric ~kind:"gauge" "once4all_samples" (List.length t.samples);
  metric ~kind:"gauge" "once4all_coverage_points"
    ~help:"Distinct coverage points over merged buckets."
    (last (fun p -> p.p_cum_cov));
  metric ~kind:"gauge" "once4all_dedup_clusters" (last (fun p -> p.p_cum_clusters));
  List.iter
    (fun pl ->
      Buffer.add_string b
        (Printf.sprintf "# TYPE once4all_plateau_tick gauge\n");
      Buffer.add_string b
        (Printf.sprintf "once4all_plateau_tick{series=\"%s\",window=\"%d\"} %d\n"
           (escape_label pl.pl_series) pl.pl_window pl.pl_tick))
    (plateaus t);
  let yield_metric name f =
    Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" name);
    List.iter
      (fun r ->
        Buffer.add_string b
          (Printf.sprintf
             "%s{theory=\"%s\",profile=\"%s\",seed_cluster=\"%s\"} %d\n" name
             (escape_label r.y_theory) (escape_label r.y_profile)
             (escape_label r.y_seed_cluster) (f r)))
      t.yield
  in
  if t.yield <> [] then begin
    yield_metric "once4all_yield_tests" (fun r -> r.y_tests);
    yield_metric "once4all_yield_findings" (fun r -> r.y_findings)
  end;
  Buffer.contents b

(* ------------------------------ ledger ----------------------------- *)

type ycell = {
  mutable c_tests : int;
  mutable c_parse_ok : int;
  mutable c_findings : int;
}

type ledger = {
  live : bool;
  profile : string;
  mutable l_consults : int;
  mutable l_fuel : int;
  ytbl : (string * string, ycell) Hashtbl.t;  (** (theory, seed cluster) *)
}

let make_ledger ~profile () =
  { live = true; profile; l_consults = 0; l_fuel = 0; ytbl = Hashtbl.create 31 }

let disabled =
  { live = false; profile = ""; l_consults = 0; l_fuel = 0;
    ytbl = Hashtbl.create 1 }

let ambient_key : ledger Domain.DLS.key =
  Domain.DLS.new_key (fun () -> disabled)

let recording () = (Domain.DLS.get ambient_key).live

let using l f =
  let saved = Domain.DLS.get ambient_key in
  Domain.DLS.set ambient_key l;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient_key saved) f

let consult ?(fuel = 0) () =
  let l = Domain.DLS.get ambient_key in
  if l.live then begin
    l.l_consults <- l.l_consults + 1;
    l.l_fuel <- l.l_fuel + fuel
  end

let record_test ~theories ~seed_cluster ~parse_ok ~found () =
  let l = Domain.DLS.get ambient_key in
  if l.live then begin
    let theories =
      match List.sort_uniq compare theories with [] -> [ "none" ] | ts -> ts
    in
    List.iter
      (fun theory ->
        let cell =
          match Hashtbl.find_opt l.ytbl (theory, seed_cluster) with
          | Some c -> c
          | None ->
            let c = { c_tests = 0; c_parse_ok = 0; c_findings = 0 } in
            Hashtbl.replace l.ytbl (theory, seed_cluster) c;
            c
        in
        cell.c_tests <- cell.c_tests + 1;
        if parse_ok then cell.c_parse_ok <- cell.c_parse_ok + 1;
        if found then cell.c_findings <- cell.c_findings + 1)
      theories
  end

let export l ~bucket ~first_tick ~ticks ~tests ~parse_ok ~solved ~findings
    ~cov_points ~clusters =
  let sample =
    canon_sample
      { bucket; first_tick; ticks; tests; parse_ok; solved; findings;
        consults = l.l_consults; fuel = l.l_fuel; cov_points; clusters }
  in
  let yield =
    Hashtbl.fold
      (fun (theory, cluster) c acc ->
        { y_theory = theory; y_profile = l.profile; y_seed_cluster = cluster;
          y_tests = c.c_tests; y_parse_ok = c.c_parse_ok;
          y_findings = c.c_findings }
        :: acc)
      l.ytbl []
    |> List.sort (fun a b -> compare (ykey a) (ykey b))
  in
  { samples = [ sample ]; yield }
