(** Regular expressions over strings, supporting the SMT-LIB [RegLan]
    operators. Matching uses Brzozowski derivatives, which keeps the
    implementation total on the small bounded strings the solvers handle. *)

type t =
  | Empty  (** re.none — matches nothing *)
  | Epsilon  (** the empty string only *)
  | Any_char  (** re.allchar *)
  | All  (** re.all *)
  | Lit of string  (** str.to_re of a literal *)
  | Range of char * char
  | Concat of t * t
  | Union of t * t
  | Inter of t * t
  | Star of t
  | Complement of t

val plus : t -> t
val opt : t -> t
val loop : int -> int -> t -> t
(** [loop i j r] matches between [i] and [j] repetitions. *)

val diff : t -> t -> t

val nullable : t -> bool
(** Whether the language contains the empty string. *)

val deriv : char -> t -> t
(** One Brzozowski derivative, built with simplifying smart constructors (the
    language is unchanged; successive derivatives stay small). *)

val matches : t -> string -> bool

val matches_bounded : max_nodes:int -> t -> string -> bool option
(** [matches] under a budget: at most [max_nodes] derivative-constructor
    visits across the whole match. [None] means the budget was exhausted —
    callers should surface it as a resource limit, not an answer. *)

val size : t -> int
