type t =
  | Empty
  | Epsilon
  | Any_char
  | All
  | Lit of string
  | Range of char * char
  | Concat of t * t
  | Union of t * t
  | Inter of t * t
  | Star of t
  | Complement of t

let plus r = Concat (r, Star r)

let opt r = Union (Epsilon, r)

let rec loop i j r =
  if j < i || j < 0 then Empty
  else if i > 0 then Concat (r, loop (i - 1) (j - 1) r)
  else if j = 0 then Epsilon
  else Union (Epsilon, Concat (r, loop 0 (j - 1) r))

let diff a b = Inter (a, Complement b)

let rec nullable = function
  | Empty -> false
  | Epsilon -> true
  | Any_char -> false
  | All -> true
  | Lit s -> s = ""
  | Range _ -> false
  | Concat (a, b) -> nullable a && nullable b
  | Union (a, b) -> nullable a || nullable b
  | Inter (a, b) -> nullable a && nullable b
  | Star _ -> true
  | Complement r -> not (nullable r)

(* Smart constructors for the derivative engine: collapse the Empty/Epsilon
   identities (and a few idempotency cases) so successive derivatives stay
   small. Without them a Concat/Star chain roughly doubles in size per input
   character — the language is unchanged, but one [str.in_re] evaluation can
   then outweigh a solver's entire fuel budget. *)
let concat a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | Epsilon, r | r, Epsilon -> r
  | _ -> Concat (a, b)

let union a b =
  match (a, b) with
  | Empty, r | r, Empty -> r
  | _ -> if a = b then a else Union (a, b)

let inter a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | _ -> if a = b then a else Inter (a, b)

let compl = function Complement r -> r | r -> Complement r

let rec deriv c = function
  | Empty -> Empty
  | Epsilon -> Empty
  | Any_char -> Epsilon
  | All -> All
  | Lit s ->
    if s <> "" && s.[0] = c then Lit (String.sub s 1 (String.length s - 1)) else Empty
  | Range (lo, hi) -> if c >= lo && c <= hi then Epsilon else Empty
  | Concat (a, b) ->
    let da = concat (deriv c a) b in
    if nullable a then union da (deriv c b) else da
  | Union (a, b) -> union (deriv c a) (deriv c b)
  | Inter (a, b) -> inter (deriv c a) (deriv c b)
  | Star r as star -> concat (deriv c r) star
  | Complement r -> compl (deriv c r)

exception Out_of_budget

(* Like {!deriv}, but charging each constructor visit against a shared node
   budget. Even with smart constructors, adversarial Inter/Complement nests
   can keep growing under differentiation; the budget turns that into a
   deterministic resource-limit signal instead of an unbounded stall. *)
let rec deriv_spending spend c r =
  spend ();
  match r with
  | Empty | Epsilon -> Empty
  | Any_char -> Epsilon
  | All -> All
  | Lit s ->
    if s <> "" && s.[0] = c then Lit (String.sub s 1 (String.length s - 1)) else Empty
  | Range (lo, hi) -> if c >= lo && c <= hi then Epsilon else Empty
  | Concat (a, b) ->
    let da = concat (deriv_spending spend c a) b in
    if nullable a then union da (deriv_spending spend c b) else da
  | Union (a, b) -> union (deriv_spending spend c a) (deriv_spending spend c b)
  | Inter (a, b) -> inter (deriv_spending spend c a) (deriv_spending spend c b)
  | Star r' as star -> concat (deriv_spending spend c r') star
  | Complement r' -> compl (deriv_spending spend c r')

let matches_bounded ~max_nodes r s =
  let nodes = ref 0 in
  let spend () =
    incr nodes;
    if !nodes > max_nodes then raise Out_of_budget
  in
  let rec go r i =
    if i >= String.length s then nullable r
    else go (deriv_spending spend s.[i] r) (i + 1)
  in
  match go r 0 with b -> Some b | exception Out_of_budget -> None

let matches r s =
  let rec go r i = if i >= String.length s then nullable r else go (deriv s.[i] r) (i + 1) in
  go r 0

let rec size = function
  | Empty | Epsilon | Any_char | All | Lit _ | Range _ -> 1
  | Concat (a, b) | Union (a, b) | Inter (a, b) -> 1 + size a + size b
  | Star r | Complement r -> 1 + size r
